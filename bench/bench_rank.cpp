// Ranking workload: LambdaRank (list-wise, per-query parallel gradients)
// vs a pointwise logistic baseline on query-grouped synthetic data.
//
// Three measurements:
//   grad-kernel   LambdaRank gradient pass throughput (rows/s) at the
//                 configured thread count — the O(docs^2) per-query kernel
//                 the boosting loop calls every iteration
//   lambdarank    full training, reporting NDCG@10 on held-out queries
//   pointwise     logistic on binarized grades (rel >= 3), same trees —
//                 the calibration-style baseline list-wise losses beat on
//                 query-relative labels
//
// Before timing anything the bench SELF-VERIFIES that the LambdaRank
// gradient pass is bitwise invariant to thread count (queries are disjoint
// row ranges, serial within a query) and aborts on the first mismatch:
// a racy kernel would silently corrupt every number below.
//
// Knobs: HARP_BENCH_SCALE scales the query count, HARP_BENCH_THREADS the
// worker pool, HARP_BENCH_TREES the trees per training measurement.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "core/objective.h"

namespace {

using namespace harp;
using namespace harp::bench;

RankingSpec BenchRankingSpec(double scale) {
  RankingSpec spec;
  spec.name = "RANKSET";
  spec.num_queries = static_cast<uint32_t>(std::max(50.0, 1500.0 * scale));
  spec.min_docs = 5;
  spec.max_docs = 40;
  spec.features = 16;
  spec.seed = 171;
  return spec;
}

// Aborts unless the gradient pass at `threads` workers reproduces the
// serial pass bit for bit.
void VerifyThreadInvariance(const Objective& objective,
                            const GradientContext& ctx,
                            const std::vector<GradientPair>& serial,
                            int threads) {
  ThreadPool pool(threads);
  std::vector<GradientPair> parallel;
  objective.ComputeGradients(ctx, &parallel, &pool);
  if (parallel.size() != serial.size()) {
    std::fprintf(stderr,
                 "FATAL: gradient count mismatch at %d threads\n", threads);
    std::abort();
  }
  for (size_t i = 0; i < serial.size(); ++i) {
    if (parallel[i].g != serial[i].g || parallel[i].h != serial[i].h) {
      std::fprintf(stderr,
                   "FATAL: lambdarank gradients depend on thread count "
                   "(row %zu, %d threads): g %.9g vs %.9g, h %.9g vs %.9g\n",
                   i, threads, parallel[i].g, serial[i].g, parallel[i].h,
                   serial[i].h);
      std::abort();
    }
  }
}

}  // namespace

int main() {
  PrintTitle("RANK", "LambdaRank vs pointwise logistic (NDCG@10)",
             "list-wise losses as first-class objectives; per-query "
             "parallel gradients stay deterministic");

  const RankingSpec spec = BenchRankingSpec(Scale());
  const Dataset all = GenerateRankingSynthetic(spec);
  // Hold out the last 20% of queries (split on a group boundary).
  const uint32_t test_group = spec.num_queries * 4 / 5;
  const uint32_t split_row = all.group_ptr()[test_group];
  const Dataset train = all.Slice(0, split_row);
  const Dataset test = all.Slice(split_row, all.num_rows());
  std::printf("queries: %u train / %u test  (%u docs total)\n",
              train.num_groups(), test.num_groups(), all.num_rows());

  // ---- self-verification: thread-count invariance of the kernel ----
  const auto objective = Objective::Create(ObjectiveKind::kLambdaRank);
  std::vector<double> margins(train.num_rows());
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    // Deterministic non-trivial margins (mid-training shape).
    margins[r] = 0.01 * static_cast<double>((r * 2654435761u) % 200) - 1.0;
  }
  GradientContext ctx;
  ctx.labels = &train.labels();
  ctx.margins = &margins;
  ctx.group_ptr = &train.group_ptr();
  std::vector<GradientPair> serial;
  objective->ComputeGradients(ctx, &serial);
  for (int threads : {2, 3, Threads()}) {
    VerifyThreadInvariance(*objective, ctx, serial, threads);
  }
  std::printf("gradient thread-invariance: OK (1/2/3/%d threads bitwise)\n",
              Threads());

  // ---- gradient kernel throughput ----
  {
    ThreadPool pool(Threads());
    std::vector<GradientPair> out;
    objective->ComputeGradients(ctx, &out, &pool);  // warm up
    const int passes = 20;
    Stopwatch watch;
    for (int p = 0; p < passes; ++p) {
      objective->ComputeGradients(ctx, &out, &pool);
    }
    const double ns = static_cast<double>(watch.ElapsedNs()) / passes;
    const double rows_per_sec =
        static_cast<double>(train.num_rows()) / (ns * 1e-9);
    std::printf("gradient pass: %.2f ms  (%.0f docs/s, %d threads)\n",
                ns * 1e-6, rows_per_sec, Threads());
    ReportResult("rank", "grad-kernel", passes, ns, rows_per_sec);
  }

  // ---- training: LambdaRank vs pointwise logistic ----
  // Lambda gradients are sparse and small; the list-wise advantage (using
  // grades 4-vs-3 that binarization erases) only shows once both models
  // are near convergence, so the rank bench trains 24x the default tree
  // budget (HARP_BENCH_TREES still scales it).
  const int trees = Trees() * 24;
  TrainParams rank_params = HarpParams(16, ParallelMode::kASYNC);
  rank_params.num_trees = trees;
  rank_params.objective = ObjectiveKind::kLambdaRank;
  rank_params.ndcg_k = 10;

  TrainStats rank_stats;
  Stopwatch rank_watch;
  const GbdtModel ranker =
      GbdtTrainer(rank_params).Train(train, &rank_stats);
  const double rank_sec = rank_watch.ElapsedSec();
  const double rank_ndcg = NdcgAtK(test.labels(),
                                   ranker.PredictMargins(test),
                                   test.group_ptr(), 10);

  std::vector<float> binary(train.num_rows());
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    binary[r] = train.labels()[r] >= 3.0f ? 1.0f : 0.0f;
  }
  const Dataset pointwise_train = Dataset::FromDense(
      train.num_rows(), train.num_features(),
      std::vector<float>(train.dense_values()), std::move(binary));
  TrainParams point_params = HarpParams(16, ParallelMode::kASYNC);
  point_params.num_trees = trees;
  Stopwatch point_watch;
  const GbdtModel pointwise =
      GbdtTrainer(point_params).Train(pointwise_train);
  const double point_sec = point_watch.ElapsedSec();
  const double point_ndcg = NdcgAtK(test.labels(),
                                    pointwise.PredictMargins(test),
                                    test.group_ptr(), 10);

  std::printf("%-12s NDCG@10=%.4f  (%.2fs, %d trees)\n", "lambdarank",
              rank_ndcg, rank_sec, trees);
  std::printf("%-12s NDCG@10=%.4f  (%.2fs, %d trees)\n", "pointwise",
              point_ndcg, point_sec, trees);
  std::printf("delta: %+.4f (list-wise should win: binarization erases "
              "the 4-vs-3 grades NDCG rewards)\n", rank_ndcg - point_ndcg);

  ReportResult("rank", "lambdarank", trees,
               rank_sec * 1e9 / std::max(1, trees),
               static_cast<double>(trees) / std::max(1e-12, rank_sec),
               rank_ndcg);
  ReportResult("rank", "pointwise", trees,
               point_sec * 1e9 / std::max(1, trees),
               static_cast<double>(trees) / std::max(1e-12, point_sec),
               point_ndcg);
  return 0;
}
