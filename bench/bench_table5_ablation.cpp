// Table V — Performance gain with itemized optimizations (SYNSET).
//
// Starting from standard Model Parallelism (feature_blk=1, K=1) and
// standard Data Parallelism (feature_blk=all, K=1), apply the paper's four
// optimization steps cumulatively and report the incremental speedup of
// each step, exactly as Table V does:
//   +Block    adjust feature_blk_size (4 for MP, 32 for DP)
//   +MemBuf   (rowid, g, h) node buffers
//   +K32      TopK growth with K=32 and node_blk_size raised accordingly
//   +MixMode  SYNC at D8, ASYNC at D12
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Table V", "itemized optimization gains (SYNSET)",
             "every step helps on average, but no single step helps "
             "everywhere (+Block alone loses 13% for DP at D8 until "
             "+MemBuf recovers it); MixMode's gain grows with tree size");

  Prepared data = Prepare(SynsetBenchSpec(Scale()));

  auto seconds_per_tree = [&](const TrainParams& p) {
    TrainStats stats;
    GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(), &stats);
    return stats.SecondsPerTree();
  };

  struct StepResult {
    const char* name;
    double gain_pct;
  };

  std::printf("%-6s %-5s %10s %10s %10s %10s\n", "Mode", "Size", "+Block",
              "+MemBuf", "+K32", "+MixMode");
  for (ParallelMode base_mode : {ParallelMode::kMP, ParallelMode::kDP}) {
    for (int d : {8, 12}) {
      TrainParams p;
      p.num_trees = Trees();
      p.tree_size = d;
      p.num_threads = Threads();
      p.mode = base_mode;
      p.grow_policy = GrowPolicy::kLeafwise;
      p.use_membuf = false;
      p.node_blk_size = 1;
      p.feature_blk_size =
          base_mode == ParallelMode::kMP ? 1 : 0;  // standard baselines

      auto report_step = [&](const char* step, double sec) {
        ReportResult(
            "table5",
            StrFormat("%s_D%d_%s", ToString(base_mode).c_str(), d, step),
            Trees(), sec * 1e9,
            static_cast<double>(data.train.num_rows()) / sec);
      };
      double prev = seconds_per_tree(p);
      report_step("base", prev);
      std::vector<StepResult> steps;

      // +Block
      p.feature_blk_size = base_mode == ParallelMode::kMP ? 4 : 32;
      double cur = seconds_per_tree(p);
      report_step("+Block", cur);
      steps.push_back({"+Block", (prev / cur - 1.0) * 100.0});
      prev = cur;

      // +MemBuf
      p.use_membuf = true;
      cur = seconds_per_tree(p);
      report_step("+MemBuf", cur);
      steps.push_back({"+MemBuf", (prev / cur - 1.0) * 100.0});
      prev = cur;

      // +K32 (and node blocks to match)
      p.grow_policy = GrowPolicy::kTopK;
      p.topk = 32;
      p.node_blk_size = base_mode == ParallelMode::kMP ? 32 : 4;
      cur = seconds_per_tree(p);
      report_step("+K32", cur);
      steps.push_back({"+K32", (prev / cur - 1.0) * 100.0});
      prev = cur;

      // +MixMode: SYNC at D8, ASYNC at D12.
      p.mode = d == 8 ? ParallelMode::kSYNC : ParallelMode::kASYNC;
      cur = seconds_per_tree(p);
      report_step("+MixMode", cur);
      steps.push_back({"+MixMode", (prev / cur - 1.0) * 100.0});

      std::printf("%-6s D%-4d", ToString(base_mode).c_str(), d);
      for (const StepResult& s : steps) std::printf(" %9.0f%%", s.gain_pct);
      std::printf("\n");
    }
  }
  std::printf("\npaper's Table V for reference (gains per step):\n"
              "  MP D8: 104%% 14%% 60%% 8%% | MP D12: 146%% 22%% 51%% 48%%\n"
              "  DP D8: -13%% 16%% 77%% 4%% | DP D12: 170%% 2%% 28%% 96%%\n"
              "shape check: cumulative product >> 1 for every row; MixMode "
              "matters more at D12 than D8.\n");
  return 0;
}
