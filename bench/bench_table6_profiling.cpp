// Table VI — Profiling of HarpGBDT (HIGGS, D=8), to compare against
// Table I's baseline numbers.
//
// Paper values (32 threads):
//   trainer      utilization  barrier-overhead  latency  memory-bound
//   Depth-DP     27.5%        9%                15 cyc   38%
//   Leaf-DP      28.5%        8%                16 cyc   41%
//   Leaf-ASYNC   28%          8%                15 cyc   40%
//
// i.e. roughly 2x the utilization and 1/4 the barrier overhead of the
// Table I baselines. We report the same measured columns as
// bench_table1_profiling so the two tables are directly comparable.
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Table VI", "profiling of HarpGBDT (HIGGS-like, D=8)",
             "barrier overhead drops from 23-42% to 8-9%; utilization "
             "roughly doubles vs Table I");

  Prepared data = Prepare(HiggsSpec(0.5 * Scale()));

  struct Case {
    const char* name;
    GrowPolicy policy;
    ParallelMode mode;
    double paper_util;
    double paper_barrier;
  };
  const Case cases[] = {
      {"Depth-DP", GrowPolicy::kDepthwise, ParallelMode::kDP, 27.5, 9.0},
      {"Leaf-DP", GrowPolicy::kTopK, ParallelMode::kDP, 28.5, 8.0},
      {"Leaf-ASYNC", GrowPolicy::kTopK, ParallelMode::kASYNC, 28.0, 8.0},
  };

  // Each trainer runs under BOTH grow schedulers so the table's barrier
  // column can be regenerated for either: "phase" relaunches one parallel
  // region per grow phase (the bit-identity oracle), "fused" keeps the
  // threads resident in ONE region per TopK batch and sequences the phases
  // through in-region barriers. ASYNC has its own one-region-per-tree
  // scheduler and ignores the flag, so it gets a single row.
  std::printf("%-17s %10s %10s %10s %12s %12s | %10s %10s\n", "trainer",
              "util", "barrier", "spin", "ns/update", "regions/tr",
              "paperUtil", "paperBarr");
  for (const Case& c : cases) {
    const bool has_fused = c.mode != ParallelMode::kASYNC;
    for (const bool fused : {false, true}) {
      if (fused && !has_fused) continue;
      TrainParams p = HarpParams(8, c.mode, c.policy, 32);
      p.use_fused_step = fused;
      TrainStats stats;
      GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(), &stats);
      const std::string label =
          std::string(c.name) + (has_fused ? (fused ? "/fused" : "/phase") : "");
      ReportStats("table6", label, stats);
      std::printf(
          "%-17s %9.1f%% %9.1f%% %9.1f%% %10.2fns %12lld | %9.1f%% %9.1f%%\n",
          label.c_str(), stats.sync.Utilization(stats.wall_ns) * 100.0,
          stats.sync.BarrierOverhead() * 100.0,
          stats.sync.SpinOverhead() * 100.0, stats.NsPerHistUpdate(),
          static_cast<long long>(stats.sync.parallel_regions /
                                 std::max(1, stats.trees)),
          c.paper_util, c.paper_barrier);
      // Grow-loop synchronization shape: the fused scheduler launches
      // EXACTLY one region per TopK batch and pays in-region phase
      // barriers instead; the region-per-phase oracle launches several
      // regions per batch and records zero phase barriers.
      std::printf("%-17s   grow: batches=%lld region_launches=%lld "
                  "phase_barriers=%lld (%.2f regions/batch)\n",
                  "", static_cast<long long>(stats.topk_batches),
                  static_cast<long long>(stats.grow_region_launches),
                  static_cast<long long>(stats.grow_phase_barriers),
                  static_cast<double>(stats.grow_region_launches) /
                      static_cast<double>(std::max<int64_t>(
                          1, stats.topk_batches)));
      // ApplySplit-phase counters: TopK trainers batch K splits per region
      // pair (batches << splits; small batches run serial and are not
      // counted), and allocs collapse to ~0 after the first tree grows the
      // arena scratch (a later tree only allocates if its frontier
      // outgrows every earlier one).
      std::printf("%-17s   apply: splits=%lld batches=%lld barriers=%lld "
                  "moved=%lldKB allocs=%lld\n",
                  "", static_cast<long long>(stats.apply_splits),
                  static_cast<long long>(stats.apply_batches),
                  static_cast<long long>(stats.apply_barriers),
                  static_cast<long long>(stats.apply_bytes_moved / 1024),
                  static_cast<long long>(stats.apply_allocs));
    }
  }
  std::printf("\nshape check vs bench_table1_profiling: regions/tree here "
              "are a small fraction of the baselines' (node blocks batch "
              "K=32 leaves per region; the fused scheduler collapses each "
              "batch's remaining phase launches into one region with "
              "in-region barriers; ASYNC uses ~1 region per tree), so "
              "barrier overhead is far below Table I's.\n");
  return 0;
}
