// Fig. 16 — Convergence speedup on the four datasets: ratio of wall time
// to reach the same AUC level (the paper's "training time to achieve the
// same highest accuracy" ratio).
//
// Paper: on average 8.5x over XGBoost and 2.6x over LightGBM; 1.9x over
// LightGBM on YFCC; <2x on AIRLINE; ~3x on CRITEO.
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 16", "convergence speedup on 4 dataset shapes (D=8)",
             "time-to-common-AUC ratio averages 8.5x vs XGBoost, 2.6x vs "
             "LightGBM");

  const int trees = std::max(30, Trees() * 6);

  struct DatasetCase {
    const char* name;
    SyntheticSpec spec;
  };
  const DatasetCase datasets[] = {
      {"HIGGS", HiggsSpec(0.25 * Scale())},
      {"AIRLINE", AirlineSpec(0.1 * Scale())},
      {"CRITEO", CriteoSpec(0.25 * Scale())},
      {"YFCC", YfccSpec(0.4 * Scale())},
  };

  std::vector<double> vs_xgb;
  std::vector<double> vs_lgbm;
  std::printf("%-9s %11s %12s %12s %12s %12s %12s\n", "dataset", "AUC goal",
              "XGB-Leaf", "LightGBM", "HarpGBDT", "speedupXGB",
              "speedupLGBM");
  for (const DatasetCase& dc : datasets) {
    Prepared data = Prepare(dc.spec, 0.2, true);

    auto series_for = [&](int which) {
      if (which == 0) {
        TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
        p.num_trees = trees;
        baselines::XgbHistTrainer trainer(p);
        return TrackConvergence(data.test, [&](const IterCallback& cb) {
          trainer.TrainBinned(data.matrix, data.train.labels(), nullptr, cb);
        });
      }
      if (which == 1) {
        TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
        p.num_trees = trees;
        baselines::LightGbmTrainer trainer(p);
        return TrackConvergence(data.test, [&](const IterCallback& cb) {
          trainer.TrainBinned(data.matrix, data.train.labels(), nullptr, cb);
        });
      }
      TrainParams p = HarpParams(8, ParallelMode::kSYNC);
      if (data.train.num_features() >= 1024) {
        p.mode = ParallelMode::kMP;
        p.feature_blk_size = 256;
        p.node_blk_size = 8;
      }
      p.num_trees = trees;
      GbdtTrainer trainer(p);
      return TrackConvergence(data.test, [&](const IterCallback& cb) {
        trainer.TrainBinned(data.matrix, data.train.labels(), nullptr, cb);
      });
    };

    const auto xgb = series_for(0);
    const auto lgbm = series_for(1);
    const auto harp_series = series_for(2);
    ReportSeries("fig16", StrFormat("%s_XGB-Leaf", dc.name), xgb);
    ReportSeries("fig16", StrFormat("%s_LightGBM", dc.name), lgbm);
    ReportSeries("fig16", StrFormat("%s_HarpGBDT", dc.name), harp_series);

    // Common goal: the minimum of the three final AUCs (every system
    // reaches it), slightly discounted for noise.
    double goal = std::min({xgb.back().auc, lgbm.back().auc,
                            harp_series.back().auc}) - 0.002;
    auto time_to = [&](const std::vector<ConvergencePoint>& s) {
      for (const auto& pt : s) {
        if (pt.auc >= goal) return pt.seconds;
      }
      return s.back().seconds;
    };
    const double tx = time_to(xgb);
    const double tl = time_to(lgbm);
    const double th = time_to(harp_series);
    vs_xgb.push_back(tx / th);
    vs_lgbm.push_back(tl / th);
    std::printf("%-9s %11.4f %11.2fs %11.2fs %11.2fs %11.2fx %11.2fx\n",
                dc.name, goal, tx, tl, th, tx / th, tl / th);
  }
  std::printf("\ngeometric-mean convergence speedup: %.2fx over XGB-Leaf, "
              "%.2fx over LightGBM (paper: 8.5x / 2.6x at 32 threads).\n",
              GeometricMean(vs_xgb), GeometricMean(vs_lgbm));
  return 0;
}
