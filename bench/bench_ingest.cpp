// Text ingestion throughput: seed serial parsers vs the chunked parallel
// pipeline, plus binary cache v2 round-trip speed.
//
// Generates synthetic CSV and LibSVM documents in memory (no disk in the
// timed region), verifies that every chunked configuration produces a
// bit-identical Dataset to the serial oracle, then times:
//   serial      the seed parser (Split + ParseDouble, line-at-a-time)
//   chunked x1  the new parser, one chunk (in-place scan + ParseFloat)
//   chunked xN  the new parser, N chunks on N threads
//
// Knobs: HARP_BENCH_INGEST_MB  document size per format (default 50)
//        HARP_BENCH_THREADS    worker threads (default 4)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "common/random.h"
#include "data/csv_reader.h"
#include "data/libsvm_reader.h"
#include "data/text_chunker.h"

namespace {

using namespace harp;

size_t TargetBytes() {
  return static_cast<size_t>(GetEnvDouble("HARP_BENCH_INGEST_MB", 50.0) *
                             1024.0 * 1024.0);
}

std::string MakeCsvText(size_t target_bytes, int columns, uint64_t seed) {
  Rng rng(seed);
  std::string doc;
  doc.reserve(target_bytes + 256);
  while (doc.size() < target_bytes) {
    doc += rng.Bernoulli(0.3) ? '1' : '0';
    for (int c = 0; c < columns; ++c) {
      doc += ',';
      const uint64_t kind = rng.NextBelow(20);
      if (kind == 0) {
        // missing value spellings
        doc += (rng.NextBelow(2) == 0) ? "" : "NA";
      } else if (kind == 1) {
        doc += StrFormat("%.3e", rng.Normal() * 1e-4);
      } else {
        doc += StrFormat("%.6f", rng.Normal() * 100.0);
      }
    }
    doc += '\n';
  }
  return doc;
}

std::string MakeLibsvmText(size_t target_bytes, uint64_t seed) {
  Rng rng(seed);
  std::string doc;
  doc.reserve(target_bytes + 256);
  while (doc.size() < target_bytes) {
    doc += rng.Bernoulli(0.5) ? "1" : "-1";
    int feature = 0;
    const int entries = 4 + static_cast<int>(rng.NextBelow(16));
    for (int e = 0; e < entries; ++e) {
      feature += 1 + static_cast<int>(rng.NextBelow(8));
      doc += StrFormat(" %d:%.5f", feature, rng.NextDouble() * 10.0);
    }
    doc += '\n';
  }
  return doc;
}

// memcmp only on non-empty vectors: empty ones have a null data().
template <typename T>
bool SameBytes(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

void RequireIdentical(const Dataset& a, const Dataset& b, const char* what) {
  const bool same =
      a.num_rows() == b.num_rows() && a.num_features() == b.num_features() &&
      a.layout() == b.layout() && a.row_ptr() == b.row_ptr() &&
      SameBytes(a.labels(), b.labels()) &&
      SameBytes(a.dense_values(), b.dense_values()) &&
      SameBytes(a.entries(), b.entries());
  if (!same) {
    std::fprintf(stderr, "FATAL: %s output differs from serial oracle\n",
                 what);
    std::abort();
  }
}

// Best-of-3 wall time for one parse configuration.
template <typename Fn>
double BestSeconds(Fn&& parse) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const Stopwatch watch;
    parse();
    best = std::min(best, NsToSec(watch.ElapsedNs()));
  }
  return best;
}

void PrintRow(const char* name, size_t bytes, uint64_t rows,
              double seconds, double baseline_seconds) {
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  std::printf("%-14s %8.3fs  %8.1f MB/s  %10.0f rows/s  %5.2fx\n", name,
              seconds, mb / seconds,
              static_cast<double>(rows) / seconds,
              baseline_seconds / seconds);
}

void BenchFormat(const char* format, const std::string& doc,
                 bool is_csv, int threads) {
  ThreadPool pool(threads);
  const int n_chunks = PickChunkCount(doc.size(), threads);
  if (threads > 1 && n_chunks < 2) {
    std::fprintf(stderr,
                 "FATAL: %s N-thread path picked %d chunk(s); "
                 "input too small to exercise the parallel parser\n",
                 format, n_chunks);
    std::abort();
  }

  const CsvOptions csv_options;
  const LibsvmOptions libsvm_options;
  Dataset serial;
  std::string error;
  bool ok = is_csv ? ParseCsv(doc, csv_options, &serial, &error)
                   : ParseLibsvm(doc, libsvm_options, &serial, &error);
  if (!ok) {
    std::fprintf(stderr, "FATAL: serial %s parse failed: %s\n", format,
                 error.c_str());
    std::abort();
  }

  // Correctness gate before any timing: every chunk count the timed
  // configurations use must reproduce the serial bytes exactly.
  for (int chunks : {1, n_chunks}) {
    Dataset chunked;
    ok = is_csv ? ParseCsvChunked(doc, csv_options, chunks, &pool, &chunked,
                                  &error)
                : ParseLibsvmChunked(doc, libsvm_options, chunks, &pool,
                                     &chunked, &error);
    if (!ok) {
      std::fprintf(stderr, "FATAL: chunked %s parse failed: %s\n", format,
                   error.c_str());
      std::abort();
    }
    RequireIdentical(serial, chunked, format);
  }

  std::printf("\n%s: %.1f MB, %u rows, %d threads, %d chunks\n", format,
              static_cast<double>(doc.size()) / (1024.0 * 1024.0),
              serial.num_rows(), threads, n_chunks);
  std::printf("%-14s %9s  %13s  %12s  %6s\n", "parser", "time", "throughput",
              "rows", "speedup");

  auto report = [&](const char* parser, double seconds) {
    harp::bench::ReportResult(
        "ingest", StrFormat("%s_%s", format, parser), 3, seconds * 1e9,
        static_cast<double>(doc.size()) / seconds);
  };
  Dataset out;
  const double serial_s = BestSeconds([&] {
    is_csv ? ParseCsv(doc, csv_options, &out, &error)
           : ParseLibsvm(doc, libsvm_options, &out, &error);
  });
  PrintRow("serial (seed)", doc.size(), serial.num_rows(), serial_s,
           serial_s);
  report("serial", serial_s);
  const double one_chunk_s = BestSeconds([&] {
    is_csv ? ParseCsvChunked(doc, csv_options, 1, nullptr, &out, &error)
           : ParseLibsvmChunked(doc, libsvm_options, 1, nullptr, &out,
                                &error);
  });
  PrintRow("chunked x1", doc.size(), serial.num_rows(), one_chunk_s,
           serial_s);
  report("chunked_x1", one_chunk_s);
  const double parallel_s = BestSeconds([&] {
    is_csv ? ParseCsvChunked(doc, csv_options, n_chunks, &pool, &out,
                             &error)
           : ParseLibsvmChunked(doc, libsvm_options, n_chunks, &pool, &out,
                                &error);
  });
  PrintRow(StrFormat("chunked x%d", n_chunks).c_str(), doc.size(),
           serial.num_rows(), parallel_s, serial_s);
  report("chunked_xN", parallel_s);

  // Cache v2 round-trip on the parsed dataset.
  const std::string cache_path =
      StrFormat("/tmp/harp_bench_ingest_%s.bin", format);
  const double write_s = BestSeconds([&] {
    if (!WriteDatasetCache(cache_path, serial, &error)) {
      std::fprintf(stderr, "FATAL: cache write failed: %s\n", error.c_str());
      std::abort();
    }
  });
  Dataset cached;
  const double read_s = BestSeconds([&] {
    if (!ReadDatasetCache(cache_path, &cached, &error)) {
      std::fprintf(stderr, "FATAL: cache read failed: %s\n", error.c_str());
      std::abort();
    }
  });
  RequireIdentical(serial, cached, "cache v2");
  report("cache_write", write_s);
  report("cache_read", read_s);
  const double cache_mb =
      static_cast<double>(serial.MemoryBytes()) / (1024.0 * 1024.0);
  std::printf("cache v2:      write %.1f MB/s, read %.1f MB/s (%.1f MB, "
              "read is %.1fx the x1 parse)\n",
              cache_mb / write_s, cache_mb / read_s, cache_mb,
              one_chunk_s / read_s);
  std::remove(cache_path.c_str());
}

}  // namespace

int main() {
  const int threads = harp::bench::Threads();
  const size_t target = TargetBytes();
  harp::bench::PrintTitle(
      "INGEST", "text parse + cache throughput",
      "parallel chunked parsing is bit-identical to the serial parser and "
      "several times faster");

  BenchFormat("csv", MakeCsvText(target, 27, 0x1234), /*is_csv=*/true,
              threads);
  BenchFormat("libsvm", MakeLibsvmText(target, 0x5678), /*is_csv=*/false,
              threads);
  std::printf("\nall chunked outputs verified bit-identical to serial\n");
  return 0;
}
