// Fig. 13 — Strong and weak scaling on HIGGS.
//
// Paper: strong scaling is poor for everyone on the (relatively small)
// HIGGS but HarpGBDT scales relatively better; under weak scaling
// (dataset duplicated proportionally to threads) HarpGBDT holds
// significantly higher efficiency.
//
// NOTE on hardware substitution: on a machine with fewer physical cores
// than the requested thread counts, wall-clock scaling is dominated by
// oversubscription. We therefore report, alongside wall time, the
// *measured busy/wait decomposition*: aggregate efficiency computed as
// busy / (busy + barrier_wait), which captures the synchronization
// component of the paper's result on any machine.
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 13", "strong & weak scaling (HIGGS-like)",
             "HarpGBDT keeps higher parallel efficiency than XGB-Leaf and "
             "LightGBM, especially under weak scaling");

  const std::vector<int> thread_counts{1, 2, 4, 8};
  const SyntheticSpec base_spec = HiggsSpec(0.25 * Scale());

  struct System {
    const char* name;
  };
  auto run = [&](const char* name, const Prepared& data, int threads) {
    TrainStats stats;
    const std::string n = name;
    if (n == "XGB-Leaf") {
      TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
      p.num_threads = threads;
      baselines::XgbHistTrainer(p).TrainBinned(data.matrix,
                                               data.train.labels(), &stats);
    } else if (n == "LightGBM") {
      TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
      p.num_threads = threads;
      // const_cast: EnsureColumnMajor was done at Prepare time.
      baselines::LightGbmTrainer(p).TrainBinned(
          const_cast<BinnedMatrix&>(data.matrix), data.train.labels(),
          &stats);
    } else {
      TrainParams p = HarpParams(8, ParallelMode::kASYNC);
      p.num_threads = threads;
      GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(), &stats);
    }
    return stats;
  };

  // ---- (a) strong scaling: fixed dataset ----
  Prepared strong_data = Prepare(base_spec, 0.0, true);
  std::printf("\n(a) strong scaling — sec/tree (sync-efficiency = "
              "busy/(busy+barrier+spin)):\n");
  std::printf("%-10s", "system");
  for (int t : thread_counts) std::printf("        T=%-7d", t);
  std::printf("\n");
  for (const char* name : {"XGB-Leaf", "LightGBM", "HarpGBDT"}) {
    std::printf("%-10s", name);
    for (int t : thread_counts) {
      const TrainStats s = run(name, strong_data, t);
      ReportStats("fig13", StrFormat("strong_%s_T%d", name, t), s);
      const double eff =
          static_cast<double>(s.sync.busy_ns) /
          std::max<int64_t>(1, s.sync.busy_ns + s.sync.barrier_wait_ns +
                                   s.sync.spin_wait_ns);
      std::printf("  %6.3fs (%3.0f%%)", s.SecondsPerTree(), eff * 100.0);
    }
    std::printf("\n");
  }

  // ---- (b) weak scaling: dataset duplicated with thread count ----
  std::printf("\n(b) weak scaling — dataset duplicated x threads; "
              "efficiency = T1_time / Tn_time (100%% is perfect):\n");
  std::printf("%-10s", "system");
  for (int t : thread_counts) std::printf("        T=%-7d", t);
  std::printf("\n");

  const Dataset base = LoadDataset(base_spec);
  for (const char* name : {"XGB-Leaf", "LightGBM", "HarpGBDT"}) {
    std::printf("%-10s", name);
    double t1_sec = 0.0;
    for (int t : thread_counts) {
      Dataset grown = base;
      for (int copies = 1; copies < t; ++copies) {
        grown = grown.ConcatRows(base);
      }
      ThreadPool pool(Threads());
      Prepared data;
      data.train = std::move(grown);
      data.matrix = BinnedMatrix::Build(
          data.train, QuantileCuts::Compute(data.train, 256, &pool), &pool);
      data.matrix.EnsureColumnMajor(&pool);
      const TrainStats s = run(name, data, t);
      ReportStats("fig13", StrFormat("weak_%s_T%d", name, t), s);
      if (t == thread_counts.front()) t1_sec = s.SecondsPerTree();
      std::printf("  %6.3fs (%3.0f%%)", s.SecondsPerTree(),
                  100.0 * t1_sec / std::max(1e-12, s.SecondsPerTree()));
    }
    std::printf("\n");
  }
  std::printf("\nshape check: HarpGBDT's sync-efficiency column dominates "
              "the baselines' at every thread count; under weak scaling "
              "its efficiency decays the slowest. (Wall-clock columns are "
              "oversubscription-distorted on small machines.)\n");
  return 0;
}
