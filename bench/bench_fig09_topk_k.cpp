// Fig. 9 — Influence of K on the convergence rate (D=8, ASYNC mode).
//
// Paper: "accuracy is robust for a large range of K. Accuracy under K=16
// can catch up very fast and exceed the standard method (K=1). K=32 shows
// a larger gap in the beginning and catches up slowly." The experiment is
// deliberately the worst case for large K: a small tree in ASYNC mode.
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 9", "influence of K on convergence (D=8, ASYNC)",
             "K<=16 catches up to K=1 within a few tens of trees; K=32 "
             "lags early and closes slowly");

  const int trees = std::max(40, Trees() * 8);
  const std::vector<int> checkpoints{1, 5, 10, 20, 40};

  struct DatasetCase {
    const char* name;
    SyntheticSpec spec;
  };
  const DatasetCase datasets[] = {
      {"HIGGS", HiggsSpec(0.3 * Scale())},
      {"AIRLINE", AirlineSpec(0.12 * Scale())},
  };

  for (const DatasetCase& dc : datasets) {
    Prepared data = Prepare(dc.spec, 0.2);
    std::printf("\n[%s] test AUC after N trees:\n", dc.name);
    std::printf("%-18s", "K");
    for (int cp : checkpoints) std::printf("  T=%-4d", cp);
    std::printf("\n");
    for (int k : {1, 4, 16, 32}) {
      TrainParams p = HarpParams(
          8, ParallelMode::kASYNC,
          k == 1 ? GrowPolicy::kLeafwise : GrowPolicy::kTopK, k);
      p.num_trees = trees;
      GbdtTrainer trainer(p);
      const auto series =
          TrackConvergence(data.test, [&](const IterCallback& cb) {
            trainer.TrainBinned(data.matrix, data.train.labels(), nullptr,
                                cb);
          });
      PrintSeries(StrFormat("K=%d", k), series, checkpoints);
      ReportSeries("fig09", StrFormat("%s_K%d", dc.name, k), series);
    }
  }
  std::printf("\nshape check: final-column AUCs agree within noise across "
              "K; the K=32 column at T=1..5 trails K=1, as in Fig. 9.\n");
  return 0;
}
