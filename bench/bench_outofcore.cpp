// Out-of-core training bench: trains a model whose bin matrix exceeds a
// heap budget by mapping the binned cache instead of loading it, and
// verifies the streamed runs are bit-identical to the resident run BEFORE
// any timing is reported.
//
// Protocol (Linux): the parent generates a synthetic dataset, writes the
// page-aligned binned cache, trains resident (heap) for the reference
// model, then fork+execs itself (`--ooc-child`) twice, so each child gets
// a fresh VmHWM (peak RSS resets on exec, not fork):
//
//   streamed  RLIMIT_DATA below the bin-matrix size. On Linux >= 4.7 the
//             limit covers brk plus private writable mappings but NOT the
//             read-only file mapping, so a heap load of the same matrix is
//             impossible while the mapped path trains normally. This run
//             carries the throughput claim: mapping instead of loading
//             should cost little when memory is not scarce.
//   capped    same heap cap plus a memory cgroup (v1 or v2) limiting
//             TOTAL memory — heap and resident mapped pages — with the
//             cache first dropped from the page cache so the child's
//             faults charge its own cgroup and refaults do real IO. This
//             run carries the residency claim: the kernel reclaims clean
//             mapped pages under the limit, so training completes with
//             peak usage pinned at the cap no matter how large the matrix
//             is. Cyclic histogram passes over a matrix bigger than the
//             budget miss on ~every page each pass (LRU's worst case), so
//             throughput here is reclaim-bound and reported honestly, not
//             held to the streamed bar. Skipped when the cgroup fs is not
//             writable.
//
// Knobs: HARP_BENCH_SCALE / HARP_BENCH_THREADS / HARP_BENCH_TREES as
// usual, plus
//   HARP_BENCH_OOC_CAP_MB     memory cap for the children (default
//                             64MB + bins/4 — below the bin matrix at
//                             scale >= 0.75)
//   HARP_BENCH_OOC_WINDOW_MB  prefetcher sweep window (default 8)
//   HARP_BENCH_OOC_CGROUP=0   skip the cgroup-capped run
//   HARP_BENCH_OOC_CAPPED_TREES  boosting rounds for the capped run
//                             (default trees/4: it is reclaim-bound and
//                             each tree costs minutes at full scale; it
//                             gets its own same-length resident reference
//                             so the identity check stays exact)
//
// The identity checks abort the bench; the memory-cap and throughput bars
// (cgroup peak <= cap, streamed >= 0.5x resident) WARN, since both depend
// on machine page-cache and scheduling behaviour at small scales.
#include "bench_common.h"

#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "common/file_util.h"
#include "common/mmap_util.h"

#if defined(__linux__)
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#define HARP_OOC_CHILD 1
#else
#define HARP_OOC_CHILD 0
#endif

namespace harp::bench {
namespace {

// Fat dense matrix so the bin image dominates the heap working set:
// 1M x 128 = 128MB of bins at scale 1, against ~50MB of per-row training
// state (labels + margins + gradients + positions) plus thread stacks.
SyntheticSpec OocSpec(double scale) {
  SyntheticSpec spec;
  spec.name = "OOC";
  spec.rows = static_cast<uint32_t>(std::max(2000.0, 1000000.0 * scale));
  spec.features = 128;
  spec.mean_distinct = 128.0;
  spec.active_features = 10;
  spec.seed = 411;
  return spec;
}

// Shared by parent and child: identical params are what make the models
// byte-comparable.
TrainParams OocParams(int trees, int threads) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = 6;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.mode = ParallelMode::kSYNC;
  p.num_threads = threads;
  p.feature_blk_size = 0;
  p.node_blk_size = 4;
  return p;
}

#if HARP_OOC_CHILD
// ---- cgroup memory cap (best effort) ----
//
// RLIMIT_DATA bounds what the child can ALLOCATE, but clean pages of the
// read-only mapping still accumulate in its resident set: evicting them
// is free for the kernel, so it only bothers under memory pressure. A
// memory cgroup provides that pressure — with limit_in_bytes (v1) or
// memory.max (v2) set below the bin matrix, the kernel reclaims clean
// mapped pages as the child touches new ones, and peak usage genuinely
// stays under the cap. Requires a writable cgroup fs (root or delegated);
// silently skipped otherwise.

bool WriteFileRaw(const std::string& path, const std::string& content) {
  const int fd = open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const ssize_t n = write(fd, content.data(), content.size());
  close(fd);
  return n == static_cast<ssize_t>(content.size());
}

std::string ReadFileRaw(const std::string& path) {
  std::string out;
  char buf[256];
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return out;
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) out.append(buf, static_cast<size_t>(n));
  close(fd);
  return out;
}

struct CgroupCap {
  std::string dir;        // empty when unavailable
  std::string peak_file;  // max_usage_in_bytes (v1) / memory.peak (v2)
};

CgroupCap TrySetupCgroup(uint64_t cap_bytes) {
  const std::string name = StrFormat("harp_ooc_%d", getpid());
  const std::string bytes = StrFormat("%llu",
                                      static_cast<unsigned long long>(cap_bytes));
  CgroupCap cg;
  // cgroup v1 memory controller.
  std::string dir = "/sys/fs/cgroup/memory/" + name;
  if (mkdir(dir.c_str(), 0755) == 0) {
    if (WriteFileRaw(dir + "/memory.limit_in_bytes", bytes)) {
      cg.dir = dir;
      cg.peak_file = dir + "/memory.max_usage_in_bytes";
      return cg;
    }
    rmdir(dir.c_str());
  }
  // cgroup v2 unified hierarchy.
  dir = "/sys/fs/cgroup/" + name;
  if (mkdir(dir.c_str(), 0755) == 0) {
    if (WriteFileRaw(dir + "/memory.max", bytes)) {
      cg.dir = dir;
      cg.peak_file = dir + "/memory.peak";
      return cg;
    }
    rmdir(dir.c_str());
  }
  return cg;
}

// Drops the cache file from the page cache, so the pages the child then
// faults in are charged to the CHILD's cgroup (the first toucher pays),
// and refaults after reclaim are honest disk reads.
void DropFromPageCache(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  fsync(fd);
  posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  close(fd);
}
#endif  // HARP_OOC_CHILD

struct ChildResult {
  int64_t wall_ns = 0;
  int64_t trees = 0;
  uint64_t peak_rss = 0;
  uint64_t mapped = 0;
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t advised = 0;
  int64_t retired = 0;
  int64_t sweeps = 0;
};

std::string FormatResult(const ChildResult& r) {
  return StrFormat(
      "wall_ns=%lld\ntrees=%lld\npeak_rss=%llu\nmapped=%llu\n"
      "minor_faults=%lld\nmajor_faults=%lld\nadvised=%lld\nretired=%lld\n"
      "sweeps=%lld\n",
      static_cast<long long>(r.wall_ns), static_cast<long long>(r.trees),
      static_cast<unsigned long long>(r.peak_rss),
      static_cast<unsigned long long>(r.mapped),
      static_cast<long long>(r.minor_faults),
      static_cast<long long>(r.major_faults),
      static_cast<long long>(r.advised), static_cast<long long>(r.retired),
      static_cast<long long>(r.sweeps));
}

bool ParseResult(const std::string& text, ChildResult* out) {
  long long wall = 0, trees = 0, minf = 0, majf = 0, adv = 0, ret = 0,
            sweeps = 0;
  unsigned long long rss = 0, mapped = 0;
  const int got = std::sscanf(
      text.c_str(),
      "wall_ns=%lld\ntrees=%lld\npeak_rss=%llu\nmapped=%llu\n"
      "minor_faults=%lld\nmajor_faults=%lld\nadvised=%lld\nretired=%lld\n"
      "sweeps=%lld",
      &wall, &trees, &rss, &mapped, &minf, &majf, &adv, &ret, &sweeps);
  if (got != 9) return false;
  out->wall_ns = wall;
  out->trees = trees;
  out->peak_rss = rss;
  out->mapped = mapped;
  out->minor_faults = minf;
  out->major_faults = majf;
  out->advised = adv;
  out->retired = ret;
  out->sweeps = sweeps;
  return true;
}

// Trains from the mapped cache and fills `result`; shared by the child
// process and the in-process fallback. Returns false (with a message) if
// the cache could not be mapped.
bool RunMappedTraining(const std::string& cache_path,
                       const std::string& model_path, int trees, int threads,
                       int64_t window_bytes, ChildResult* result,
                       std::string* error) {
  BinnedMatrix matrix;
  std::vector<float> labels;
  CacheReadOptions opts;
  opts.use_mmap = true;
  CacheReadInfo info;
  if (!ReadBinnedCache(cache_path, &matrix, &labels, error, opts, &info)) {
    return false;
  }
  if (!info.mapped) {
    *error = "cache did not map: " + info.note;
    return false;
  }
  TrainParams p = OocParams(trees, threads);
  p.prefetch_window_bytes = window_bytes;
  TrainStats stats;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.TrainBinned(matrix, labels, &stats);
  if (!SaveModel(model_path, model, error)) return false;
  result->wall_ns = stats.wall_ns;
  result->trees = stats.trees;
  result->peak_rss = PeakRssBytes();
  result->mapped = stats.mapped_bytes;
  result->minor_faults = stats.minor_faults;
  result->major_faults = stats.major_faults;
  result->advised = stats.oo_advised_bytes;
  result->retired = stats.oo_retired_bytes;
  result->sweeps = stats.oo_sweeps;
  return true;
}

#if HARP_OOC_CHILD
// argv: --ooc-child <cache> <model_out> <result_out> <trees> <threads>
//       <cap_mb> <window_mb> <cgroup_dir|->
int RunChild(int argc, char** argv) {
  if (argc != 10) return 2;
  const std::string cache_path = argv[2];
  const std::string model_path = argv[3];
  const std::string result_path = argv[4];
  const int trees = std::atoi(argv[5]);
  const int threads = std::atoi(argv[6]);
  const long cap_mb = std::atol(argv[7]);
  const long window_mb = std::atol(argv[8]);
  const std::string cgroup_dir = argv[9];

  // Join the memory cgroup before touching anything sizable ("0" = self).
  if (cgroup_dir != "-" &&
      !WriteFileRaw(cgroup_dir + "/cgroup.procs", "0")) {
    std::fprintf(stderr, "child: cannot join cgroup %s\n",
                 cgroup_dir.c_str());
    return 2;
  }

  if (cap_mb > 0) {
    struct rlimit lim;
    lim.rlim_cur = static_cast<rlim_t>(cap_mb) << 20;
    lim.rlim_max = lim.rlim_cur;
    if (setrlimit(RLIMIT_DATA, &lim) != 0) {
      std::fprintf(stderr, "child: setrlimit(RLIMIT_DATA) failed\n");
      return 2;
    }
  }

  ChildResult result;
  std::string error;
  if (!RunMappedTraining(cache_path, model_path, trees, threads,
                         static_cast<int64_t>(window_mb) << 20, &result,
                         &error)) {
    std::fprintf(stderr, "child: %s\n", error.c_str());
    return 3;
  }
  if (!WriteStringToFile(result_path, FormatResult(result), &error)) {
    std::fprintf(stderr, "child: %s\n", error.c_str());
    return 4;
  }
  return 0;
}

// Fork+execs the child and parses its result file. `cgroup_dir` is "-"
// for the rlimit-only run.
bool SpawnChild(const std::string& cache_path, const std::string& model_path,
                const std::string& result_path, int trees, int threads,
                long cap_mb, long window_mb, const std::string& cgroup_dir,
                ChildResult* out, std::string* error) {
  std::remove(result_path.c_str());
  const pid_t pid = fork();
  if (pid == 0) {
    const std::string trees_s = StrFormat("%d", trees);
    const std::string threads_s = StrFormat("%d", threads);
    const std::string cap_s = StrFormat("%ld", cap_mb);
    const std::string window_s = StrFormat("%ld", window_mb);
    // exec (not just fork) so the child's VmHWM starts from zero.
    execl("/proc/self/exe", "bench_outofcore", "--ooc-child",
          cache_path.c_str(), model_path.c_str(), result_path.c_str(),
          trees_s.c_str(), threads_s.c_str(), cap_s.c_str(),
          window_s.c_str(), cgroup_dir.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  if (pid <= 0 || waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    *error = StrFormat("child did not complete (status %d)", status);
    return false;
  }
  std::string text;
  if (!ReadFileToString(result_path, &text, error) ||
      !ParseResult(text, out)) {
    *error = "unreadable child result";
    return false;
  }
  return true;
}
#endif  // HARP_OOC_CHILD

// Byte-compares two serialized models; exits the bench on mismatch so a
// fast wrong model can never produce a timing row.
bool ModelsIdentical(const std::string& path_a, const std::string& path_b,
                     const char* what) {
  std::string bytes_a, bytes_b, error;
  if (!ReadFileToString(path_a, &bytes_a, &error) ||
      !ReadFileToString(path_b, &bytes_b, &error) || bytes_a != bytes_b) {
    std::fprintf(stderr,
                 "FAIL: %s model differs from resident model (%zu vs %zu "
                 "bytes)\n",
                 what, bytes_a.size(), bytes_b.size());
    return false;
  }
  std::printf("identity: %s model == resident model (%zu bytes)\n", what,
              bytes_a.size());
  return true;
}

int RunBench() {
  const double scale = Scale();
  const int threads = Threads();
  const int trees = Trees();
  const SyntheticSpec spec = OocSpec(scale);

  PrintTitle("OUT-OF-CORE", "mmap-backed bin matrix under a memory cap",
             "streamed training matches resident output bit-for-bit at "
             ">= 0.5x throughput");

  ThreadPool pool(threads);
  const Dataset data = GenerateSynthetic(spec, &pool);
  const BinnedMatrix matrix = BinnedMatrix::Build(
      data, QuantileCuts::Compute(data, 256, &pool), &pool);
  const uint64_t bins_bytes =
      static_cast<uint64_t>(matrix.num_rows()) * matrix.num_features();

  const std::string cache_path =
      StrFormat("/tmp/harp_ooc_%u.cache", spec.rows);
  const std::string model_ref = cache_path + ".model_ref";
  const std::string model_stream = cache_path + ".model_stream";
  const std::string model_capped = cache_path + ".model_capped";
  const std::string result_path = cache_path + ".result";
  std::string error;
  if (!WriteBinnedCache(cache_path, matrix, data.labels(), &error)) {
    std::fprintf(stderr, "FAIL: cache write: %s\n", error.c_str());
    return 1;
  }

  // Resident reference run on the exact same binned matrix. The capped
  // run trains fewer rounds (reclaim-bound, minutes per tree at full
  // scale), so it gets its own reference of the same length — byte
  // comparison requires equal tree counts.
  const int capped_trees =
      GetEnvInt("HARP_BENCH_OOC_CAPPED_TREES", std::max(1, trees / 4));
  TrainStats resident;
  GbdtTrainer trainer(OocParams(trees, threads));
  const GbdtModel ref = trainer.TrainBinned(matrix, data.labels(), &resident);
  if (!SaveModel(model_ref, ref, &error)) {
    std::fprintf(stderr, "FAIL: model save: %s\n", error.c_str());
    return 1;
  }
  const std::string model_ref_capped = cache_path + ".model_ref_capped";
  TrainStats resident_capped;
  {
    GbdtTrainer short_trainer(OocParams(capped_trees, threads));
    const GbdtModel short_ref =
        short_trainer.TrainBinned(matrix, data.labels(), &resident_capped);
    if (!SaveModel(model_ref_capped, short_ref, &error)) {
      std::fprintf(stderr, "FAIL: model save: %s\n", error.c_str());
      return 1;
    }
  }

  // Memory cap: enough for the per-row training state and thread stacks
  // (both count against RLIMIT_DATA) but below the bin matrix, so a heap
  // load of the bins would be impossible.
  const long cap_mb = static_cast<long>(GetEnvInt(
      "HARP_BENCH_OOC_CAP_MB",
      static_cast<int>(64 + bins_bytes / 4 / (1 << 20))));
  const long window_mb = GetEnvInt("HARP_BENCH_OOC_WINDOW_MB", 8);

  ChildResult stream;
  ChildResult capped;
  bool have_stream = false;
  bool have_capped = false;
  uint64_t cgroup_peak = 0;
#if HARP_OOC_CHILD
  // glibc reserves 64MB of virtual space per malloc arena, and RLIMIT_DATA
  // counts the reservation, not the touched pages — with per-thread arenas
  // the child would hit the cap before allocating anything. One arena
  // keeps the child's virtual heap close to its actual usage.
  setenv("MALLOC_ARENA_MAX", "1", 1);

  // Run 1: heap-capped, memory otherwise plentiful. The page cache is warm
  // from writing the cache, as it would be after any ingest — this times
  // the mapped path itself (fault + advise overhead), not the disk.
  if (!SpawnChild(cache_path, model_stream, result_path, trees, threads,
                  cap_mb, window_mb, "-", &stream, &error)) {
    std::fprintf(stderr, "FAIL: streamed run: %s\n", error.c_str());
    return 1;
  }
  have_stream = true;

  // Run 2: kernel-enforced total-memory cap (heap + resident mapping)
  // when the cgroup fs is writable. Cold page cache: the child's faults
  // then charge its own cgroup and post-reclaim refaults do real IO.
  if (GetEnvInt("HARP_BENCH_OOC_CGROUP", 1) != 0) {
    const CgroupCap cg = TrySetupCgroup(static_cast<uint64_t>(cap_mb) << 20);
    if (!cg.dir.empty()) {
      DropFromPageCache(cache_path);
      const bool ok =
          SpawnChild(cache_path, model_capped, result_path, capped_trees,
                     threads, cap_mb, window_mb, cg.dir, &capped, &error);
      cgroup_peak = std::strtoull(ReadFileRaw(cg.peak_file).c_str(),
                                  nullptr, 10);
      rmdir(cg.dir.c_str());
      if (!ok) {
        std::fprintf(stderr, "FAIL: cgroup-capped run: %s\n", error.c_str());
        return 1;
      }
      have_capped = true;
    } else {
      std::printf("NOTE: cgroup fs not writable — skipping the "
                  "kernel-capped run (heap cap still enforced above)\n");
    }
  }
#else
  // No fork/rlimit on this platform: run the mapped training in-process.
  // Identity and counters still verify; the memory caps do not apply.
  if (!RunMappedTraining(cache_path, model_stream, trees, threads,
                         static_cast<int64_t>(window_mb) << 20, &stream,
                         &error)) {
    std::fprintf(stderr, "FAIL: mapped training: %s\n", error.c_str());
    return 1;
  }
#endif

  // Identity gates FIRST, before any timing output.
  if (!ModelsIdentical(model_ref, model_stream, "streamed")) return 1;
  if (have_capped &&
      !ModelsIdentical(model_ref_capped, model_capped, "capped")) {
    return 1;
  }

  const double resident_sec = NsToSec(resident.wall_ns);
  const double resident_capped_sec = NsToSec(resident_capped.wall_ns);
  const double stream_sec = NsToSec(stream.wall_ns);
  const double capped_sec = NsToSec(capped.wall_ns);
  const double rows_trees =
      static_cast<double>(matrix.num_rows()) * trees;
  const double rows_trees_capped =
      static_cast<double>(matrix.num_rows()) * capped_trees;
  auto mrts = [&](double rt, double sec) {
    return StrFormat("%.2fM", rt / std::max(1e-12, sec) / 1e6);
  };

  std::printf("\n%-14s %12s %14s %14s\n", "", "resident", "streamed",
              have_capped ? "cgroup-capped" : "(no cgroup)");
  std::printf("%-14s %12d %14d %14d\n", "trees", trees, trees,
              have_capped ? capped_trees : 0);
  std::printf("%-14s %12s %14s %14s\n", "wall",
              HumanDuration(resident_sec).c_str(),
              HumanDuration(stream_sec).c_str(),
              have_capped ? HumanDuration(capped_sec).c_str() : "-");
  std::printf("%-14s %12s %14s %14s\n", "rows*trees/s",
              mrts(rows_trees, resident_sec).c_str(),
              mrts(rows_trees, stream_sec).c_str(),
              have_capped ? mrts(rows_trees_capped, capped_sec).c_str()
                          : "-");
  std::printf("%-14s %12s %14s %14s\n", "peak RSS", "-",
              HumanBytes(static_cast<double>(stream.peak_rss)).c_str(),
              have_capped
                  ? HumanBytes(static_cast<double>(capped.peak_rss)).c_str()
                  : "-");
  const ChildResult& detail = have_capped ? capped : stream;
  std::printf("bins=%s cap=%ldMB window=%ldMB faults=%lld minor/%lld major "
              "advised=%s retired=%s sweeps=%lld\n",
              HumanBytes(static_cast<double>(bins_bytes)).c_str(), cap_mb,
              window_mb, static_cast<long long>(detail.minor_faults),
              static_cast<long long>(detail.major_faults),
              HumanBytes(static_cast<double>(detail.advised)).c_str(),
              HumanBytes(static_cast<double>(detail.retired)).c_str(),
              static_cast<long long>(detail.sweeps));

  const uint64_t cap_bytes = static_cast<uint64_t>(cap_mb) << 20;
  if (bins_bytes > cap_bytes) {
    std::printf("cap check: bin matrix (%s) exceeds the %ldMB cap — a "
                "resident load could not fit\n",
                HumanBytes(static_cast<double>(bins_bytes)).c_str(), cap_mb);
  } else {
    std::printf("NOTE: bin matrix fits under the cap at this scale; run "
                "with HARP_BENCH_SCALE>=0.75 for the paper-style capped "
                "configuration\n");
  }
  if (have_capped) {
    // The cgroup's own accounting is the enforced bound: VmHWM also
    // counts resident pages the cgroup never charged — shared library
    // text, and clean page-cache pages of the cache file another process
    // (or the parent) faulted first, which the kernel reclaims from
    // whoever is charged, not from this child.
    if (cgroup_peak > cap_bytes) {
      std::printf("WARN: capped run exceeded the limit (cgroup peak %s of "
                  "%ldMB)\n",
                  HumanBytes(static_cast<double>(cgroup_peak)).c_str(),
                  cap_mb);
    } else {
      std::printf("rss check: kernel-accounted peak %s stayed within the "
                  "%ldMB cgroup cap\n",
                  HumanBytes(static_cast<double>(cgroup_peak)).c_str(),
                  cap_mb);
    }
    if (capped.peak_rss > cap_bytes + (8u << 20)) {
      std::printf("NOTE: VmHWM %s exceeds the cap — the excess is pages "
                  "charged to other cgroups (shared text, page-cache pages "
                  "of the cache file faulted first by another process); "
                  "the child's own charge stayed capped above\n",
                  HumanBytes(static_cast<double>(capped.peak_rss)).c_str());
    }
  } else if (have_stream) {
    std::printf("NOTE: streamed peak RSS %s — without a cgroup only the "
                "heap is capped, and the kernel keeps clean mapped pages "
                "resident while memory is plentiful\n",
                HumanBytes(static_cast<double>(stream.peak_rss)).c_str());
  }
  const double stream_x =
      stream_sec > 0.0 ? resident_sec / stream_sec : 0.0;
  if (stream_x > 0.0 && stream_x < 0.5) {
    std::printf("WARN: streamed throughput %.2fx resident (< 0.5x bar)\n",
                stream_x);
  } else if (stream_x > 0.0) {
    std::printf("throughput: streamed runs at %.2fx resident\n", stream_x);
  }
  if (have_capped && capped_sec > 0.0) {
    std::printf("throughput: cgroup-capped runs at %.2fx its %d-tree "
                "resident reference (reclaim-bound: every pass over a "
                "matrix larger than the budget refaults it)\n",
                resident_capped_sec / capped_sec, capped_trees);
  }

  ReportResult("outofcore", "resident", trees,
               static_cast<double>(resident.wall_ns) / std::max(1, trees),
               rows_trees / std::max(1e-12, resident_sec));
  ReportResult("outofcore", StrFormat("mmap_cap%ldMB", cap_mb), trees,
               static_cast<double>(stream.wall_ns) / std::max(1, trees),
               rows_trees / std::max(1e-12, stream_sec));
  if (have_capped) {
    ReportResult("outofcore", StrFormat("mmap_cgroup%ldMB", cap_mb),
                 capped_trees,
                 static_cast<double>(capped.wall_ns) /
                     std::max(1, capped_trees),
                 rows_trees_capped / std::max(1e-12, capped_sec));
  }
  (void)have_stream;
  return 0;
}

}  // namespace
}  // namespace harp::bench

int main(int argc, char** argv) {
#if HARP_OOC_CHILD
  if (argc > 1 && std::strcmp(argv[1], "--ooc-child") == 0) {
    return harp::bench::RunChild(argc, argv);
  }
#else
  (void)argc;
  (void)argv;
#endif
  return harp::bench::RunBench();
}
