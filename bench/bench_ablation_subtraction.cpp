// Ablation (extension beyond the paper's tables): the parent-minus-sibling
// histogram subtraction trick. XGBoost and LightGBM both ship it; the
// paper holds it out of the controlled comparison ("keeping the same
// workload of computation ... is essential"). This bench quantifies what
// it is worth on top of the block-wise design, and its memory cost
// (parent histograms stay live while children are pending).
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Ablation", "histogram subtraction trick (HIGGS-like)",
             "(not a paper table) subtraction halves BuildHist row scans "
             "per level in exchange for retained parent histograms");

  Prepared data = Prepare(HiggsSpec(0.5 * Scale()));

  std::printf("%-10s %6s %12s %14s %14s %12s\n", "mode", "D", "subtraction",
              "ms/tree", "hist-updates", "hist-peak");
  for (ParallelMode mode : {ParallelMode::kDP, ParallelMode::kMP}) {
    for (int d : {6, 8}) {
      for (bool subtraction : {false, true}) {
        TrainParams p = HarpParams(d, mode);
        p.use_hist_subtraction = subtraction;
        TrainStats stats;
        GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(), &stats);
        ReportStats("ablation_subtraction",
                    StrFormat("%s_D%d_sub_%s", ToString(mode).c_str(), d,
                              subtraction ? "on" : "off"),
                    stats);
        std::printf("%-10s %6d %12s %12.1fms %14lld %12s\n",
                    ToString(mode).c_str(), d, subtraction ? "on" : "off",
                    MsPerTree(stats),
                    static_cast<long long>(stats.hist_updates /
                                           std::max(1, stats.trees)),
                    HumanBytes(static_cast<double>(stats.hist_peak_bytes))
                        .c_str());
      }
    }
  }
  std::printf("\nexpected shape: 'on' rows show roughly half the histogram "
              "updates of 'off' rows (only the smaller sibling is scanned) "
              "at a higher histogram peak; trees are identical either way "
              "(verified by tests).\n");
  return 0;
}
