// Inference throughput — naive AoS RegTree walk vs the FlatForest
// block-wise Predictor (binned and raw inputs, 1 and N threads).
//
// The same memory-boundedness argument the paper makes for BuildHist
// (Table I) applies to ensemble traversal: the naive path chases ~72-byte
// TreeNode structs row by row, one dependent load per step; the flat path
// streams SoA node arrays in L2-resident tree groups with kInterleave
// rows in flight per tree. Margins are bit-identical by construction
// (verified here), so the comparison is purely layout + schedule.
#include "bench_common.h"
#include "common/logging.h"

namespace {

using namespace harp;
using namespace harp::bench;

// Naive reference: base + tree-order RegTree walk (the pre-FlatForest
// prediction path, kept as the oracle).
std::vector<double> NaiveBinned(const GbdtModel& model,
                                const BinnedMatrix& matrix,
                                ThreadPool* pool) {
  std::vector<double> margins(matrix.num_rows());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; ++r) {
      double m = model.base_margin();
      for (size_t t = 0; t < model.NumTrees(); ++t) {
        m += model.tree(t).PredictBinned(
            matrix.RowBins(static_cast<uint32_t>(r)));
      }
      margins[static_cast<size_t>(r)] = m;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(matrix.num_rows(), kernel);
  } else {
    kernel(0, matrix.num_rows(), 0);
  }
  return margins;
}

std::vector<double> NaiveRaw(const GbdtModel& model, const Dataset& dataset,
                             ThreadPool* pool) {
  std::vector<double> margins(dataset.num_rows());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; ++r) {
      margins[static_cast<size_t>(r)] =
          model.PredictMarginRow(dataset, static_cast<uint32_t>(r));
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(dataset.num_rows(), kernel);
  } else {
    kernel(0, dataset.num_rows(), 0);
  }
  return margins;
}

struct Measurement {
  double rows_per_sec = 0.0;
  std::vector<double> margins;
};

// Best-of-`reps` wall time for one prediction pass.
template <typename Fn>
Measurement Measure(uint32_t rows, const Fn& fn, int reps = 3) {
  Measurement m;
  int64_t best_ns = INT64_MAX;
  for (int i = 0; i < reps; ++i) {
    const Stopwatch watch;
    m.margins = fn();
    best_ns = std::min(best_ns, watch.ElapsedNs());
  }
  m.rows_per_sec = static_cast<double>(rows) / NsToSec(best_ns);
  return m;
}

void CheckIdentical(const std::vector<double>& a,
                    const std::vector<double>& b, const char* what) {
  HARP_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    HARP_CHECK(a[i] == b[i]) << what << ": margin mismatch at row " << i;
  }
}

}  // namespace

int main() {
  PrintTitle("Inference", "prediction throughput, naive vs FlatForest",
             "flat SoA layout + block-wise interleaved traversal vs the "
             "row-by-row AoS pointer chase (>= 1.5x single-thread binned "
             "is the PR acceptance bar)");

  // An inference-shaped config: more, smaller trees than the training
  // benches (a served ensemble), on the HIGGS-like dense shape.
  Prepared data = Prepare(HiggsSpec(0.25 * Scale()), /*test_fraction=*/0.3);
  TrainParams params = HarpParams(8, ParallelMode::kSYNC);
  params.num_trees = GetEnvInt("HARP_BENCH_PREDICT_TREES", 64);
  const GbdtModel model =
      GbdtTrainer(params).TrainBinned(data.matrix, data.train.labels());

  ThreadPool pool(Threads());
  const Dataset& test = data.test;
  const BinnedMatrix binned = model.BinDataset(test, &pool);
  const FlatForest flat = model.Flatten();
  const Predictor predictor(flat);
  std::printf("model: %zu trees, %lld nodes (flat arrays %.1f KB); "
              "test: %u rows x %u features\n\n",
              model.NumTrees(), static_cast<long long>(model.TotalNodes()),
              static_cast<double>(flat.MemoryBytes()) / 1024.0,
              test.num_rows(), test.num_features());

  struct Row {
    const char* name;
    Measurement naive;
    Measurement flat;
  };
  std::vector<Row> rows;

  rows.push_back({"binned 1T",
                  Measure(test.num_rows(),
                          [&] { return NaiveBinned(model, binned, nullptr); }),
                  Measure(test.num_rows(),
                          [&] { return predictor.PredictMargins(binned); })});
  rows.push_back(
      {"binned NT",
       Measure(test.num_rows(),
               [&] { return NaiveBinned(model, binned, &pool); }),
       Measure(test.num_rows(),
               [&] { return predictor.PredictMargins(binned, &pool); })});
  rows.push_back({"raw    1T",
                  Measure(test.num_rows(),
                          [&] { return NaiveRaw(model, test, nullptr); }),
                  Measure(test.num_rows(),
                          [&] { return predictor.PredictMargins(test); })});
  rows.push_back(
      {"raw    NT",
       Measure(test.num_rows(), [&] { return NaiveRaw(model, test, &pool); }),
       Measure(test.num_rows(),
               [&] { return predictor.PredictMargins(test, &pool); })});

  // Serving-shaped inputs: short batches (below the 256-row block, the
  // Predictor's scratch-free fast path) and one-row-at-a-time PredictRow.
  // Both verified bit-identical to the full-batch flat path.
  const uint32_t short_rows = std::min(64u, test.num_rows());
  const Dataset short_batch = test.Slice(0, short_rows);
  rows.push_back(
      {"short  64",
       Measure(short_rows,
               [&] { return NaiveRaw(model, short_batch, nullptr); }),
       Measure(short_rows,
               [&] { return predictor.PredictMargins(short_batch); })});

  std::vector<float> dense_rows(
      static_cast<size_t>(test.num_rows()) * test.num_features(),
      kMissingValue);
  for (uint32_t r = 0; r < test.num_rows(); ++r) {
    float* row = dense_rows.data() +
                 static_cast<size_t>(r) * test.num_features();
    test.ForEachInRow(r, [&](uint32_t f, float v) { row[f] = v; });
  }
  rows.push_back(
      {"row    x1",
       Measure(test.num_rows(),
               [&] { return NaiveRaw(model, test, nullptr); }),
       Measure(test.num_rows(), [&] {
         std::vector<double> margins(test.num_rows());
         for (uint32_t r = 0; r < test.num_rows(); ++r) {
           margins[r] = predictor.PredictRow(
               dense_rows.data() +
                   static_cast<size_t>(r) * test.num_features(),
               test.num_features());
         }
         return margins;
       })});

  for (const Row& r : rows) {
    CheckIdentical(r.naive.margins, r.flat.margins, r.name);
  }

  std::printf("%-10s %16s %16s %10s\n", "path", "naive rows/s",
              "flat rows/s", "speedup");
  for (const Row& r : rows) {
    const double n_rows = static_cast<double>(test.num_rows());
    ReportResult("predict", std::string(r.name) + "_naive", 3,
                 n_rows / r.naive.rows_per_sec * 1e9, r.naive.rows_per_sec);
    ReportResult("predict", std::string(r.name) + "_flat", 3,
                 n_rows / r.flat.rows_per_sec * 1e9, r.flat.rows_per_sec);
    std::printf("%-10s %14.0f/s %14.0f/s %9.2fx\n", r.name,
                r.naive.rows_per_sec, r.flat.rows_per_sec,
                r.flat.rows_per_sec / r.naive.rows_per_sec);
  }
  std::printf("\nall paths (incl. short-batch and single-row) verified "
              "bit-identical to the RegTree oracle before timing "
              "(NT = %d threads).\n", Threads());
  return 0;
}
