// Distributed histogram exchange bench (ISSUE 9 acceptance experiment).
//
// Three parts:
//   A. Correctness gate: for every worker count and quantization setting,
//      the sparse compressed exchange must produce a model BIT-IDENTICAL
//      to the dense f64 oracle (SerializeModel string equality). Timing
//      numbers from a wrong exchange are worthless, so the bench aborts
//      on any mismatch.
//   B. Exchange sweep on a sparse LibSVM-like synthetic: workers x
//      {dense,sparse} x {f64,quant}, reporting wall time, wire bytes and
//      the compression ratio vs the dense f64 payload. The acceptance
//      criterion is ratio >= 5x for the sparse encodings on this dataset.
//   C. Sparsity sweep: exchange bytes and ratio vs dataset density at a
//      fixed worker count (the EXPERIMENTS.md table).
//
// BENCH_JSON names: exchange rows are "w<W>_<compress>[_quant]"
// (throughput = compression ratio); sparsity rows are
// "sparsity_<density>[_quant]".
#include "bench_common.h"

#include "distributed/dist_gbdt.h"

namespace {

using namespace harp;
using namespace harp::bench;

// Sparse LibSVM-like shard workload: fat and sparse with skewed
// per-feature density (a few hot features, long cold tail) — the shape
// of one-hot CTR dumps (CRITEO / YFCC style). At ~10 present entries per
// row over thousands of features, deep tree nodes leave most FEATURES
// completely untouched, which is the regime the run-list wire format is
// built for (shallow nodes are dense no matter what; the per-tree volume
// is dominated by the deep, narrow ones).
SyntheticSpec DistSpec(double density, double scale) {
  SyntheticSpec spec;
  spec.name = StrFormat("DIST%04d", static_cast<int>(density * 1000));
  spec.rows = static_cast<uint32_t>(std::max(1.0, 6000.0 * scale));
  spec.features = 2000;
  spec.density = density;
  spec.density_skew = 1.0;
  spec.mean_distinct = 48.0;
  spec.distinct_cv = 0.5;
  spec.active_features = 16;
  spec.margin_scale = 3.0;
  spec.sparse_storage = density < 0.5;
  spec.seed = 977;
  return spec;
}

TrainParams DistParams(bool quant) {
  TrainParams p;
  p.num_trees = Trees();
  p.tree_size = 6;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.quantize_hist = quant;
  return p;
}

struct RunOutcome {
  DistributedResult result;
  std::string serialized;
  double ratio = 1.0;
};

RunOutcome Run(const Dataset& data, int workers, bool sparse, bool quant) {
  TrainParams params = DistParams(quant);
  params.comm_compress = sparse ? "sparse" : "dense";
  RunOutcome out;
  out.result = DistributedGbdt::Train(data, workers, params);
  out.serialized = SerializeModel(out.result.model);
  const CommStats& c = out.result.comm;
  out.ratio = c.hist_wire_bytes > 0
                  ? static_cast<double>(c.hist_dense_bytes) /
                        static_cast<double>(c.hist_wire_bytes)
                  : 1.0;
  return out;
}

std::string ConfigName(int workers, bool sparse, bool quant) {
  return StrFormat("w%d_%s%s", workers, sparse ? "sparse" : "dense",
                   quant ? "_quant" : "");
}

}  // namespace

int main() {
  PrintTitle("bench_dist",
             "compressed sparse histogram exchange for sharded training",
             "communication-efficient data parallelism (Section VI): "
             "exchange only touched bins, quantized, without changing the "
             "model");

  const SyntheticSpec spec = DistSpec(0.05, Scale());
  const Dataset data = LoadDataset(spec);
  std::printf("dataset: %u rows x %u features, density=%.2f (skewed)\n\n",
              data.num_rows(), data.num_features(), spec.density);

  // ---- Part A: sparse == dense oracle, bitwise, per worker count ----
  std::printf("A. model identity gate (SerializeModel equality)\n");
  int checked = 0;
  for (const bool quant : {false, true}) {
    for (const int workers : {1, 2, 3, 4}) {
      const RunOutcome dense = Run(data, workers, /*sparse=*/false, quant);
      const RunOutcome sparse = Run(data, workers, /*sparse=*/true, quant);
      if (sparse.serialized != dense.serialized) {
        std::printf(
            "   FAIL: sparse model differs from dense oracle at "
            "workers=%d quant=%d\n",
            workers, static_cast<int>(quant));
        return 1;
      }
      ++checked;
    }
  }
  std::printf("   ok: %d worker/quant configs bit-identical\n\n", checked);

  // ---- Part B: exchange sweep ----
  std::printf("B. exchange sweep (%d trees)\n", Trees());
  std::printf("%8s %8s %6s %10s %12s %12s %10s %8s\n", "workers", "comm",
              "quant", "time", "wire", "dense f64", "ratio", "AUC");
  bool met_5x = true;
  for (const int workers : {2, 4}) {
    for (const bool sparse : {false, true}) {
      for (const bool quant : {false, true}) {
        const RunOutcome out = Run(data, workers, sparse, quant);
        const CommStats& c = out.result.comm;
        const double auc =
            Auc(data.labels(), out.result.model.Predict(data));
        std::printf("%8d %8s %6s %9.2fs %12s %12s %9.2fx %8.4f\n", workers,
                    sparse ? "sparse" : "dense", quant ? "on" : "off",
                    out.result.seconds,
                    HumanBytes(static_cast<double>(c.hist_wire_bytes)).c_str(),
                    HumanBytes(static_cast<double>(c.hist_dense_bytes)).c_str(),
                    out.ratio, auc);
        ReportResult("dist", ConfigName(workers, sparse, quant), Trees(),
                     out.result.seconds * 1e9 / std::max(1, Trees()),
                     out.ratio, auc);
        if (sparse && quant && out.ratio < 5.0) met_5x = false;
      }
    }
  }
  if (met_5x) {
    std::printf(
        "   ok: compressed exchange >= 5x below dense f64 payload\n\n");
  } else {
    std::printf(
        "   WARN: compressed exchange under the 5x acceptance threshold\n\n");
  }

  // ---- Part C: ratio vs dataset sparsity ----
  std::printf("C. compression ratio vs density (workers=3)\n");
  std::printf("%10s %6s %12s %12s %10s\n", "density", "quant", "wire",
              "dense f64", "ratio");
  for (const double density : {0.005, 0.05, 0.5}) {
    const Dataset sweep = LoadDataset(DistSpec(density, Scale()));
    for (const bool quant : {false, true}) {
      const RunOutcome out = Run(sweep, /*workers=*/3, /*sparse=*/true, quant);
      const CommStats& c = out.result.comm;
      std::printf("%10.2f %6s %12s %12s %9.2fx\n", density,
                  quant ? "on" : "off",
                  HumanBytes(static_cast<double>(c.hist_wire_bytes)).c_str(),
                  HumanBytes(static_cast<double>(c.hist_dense_bytes)).c_str(),
                  out.ratio);
      ReportResult("dist",
                   StrFormat("sparsity_%.2f%s", density,
                             quant ? "_quant" : ""),
                   Trees(), out.result.seconds * 1e9 / std::max(1, Trees()),
                   out.ratio);
    }
  }
  std::printf(
      "\nThe ratio tracks the untouched-bin fraction: sparse, skewed "
      "datasets leave most histogram regions cold within a candidate "
      "batch, so the run-list format ships a small fraction of the dense "
      "payload; quantization halves the per-cell cost on top (16B GHPair "
      "-> 8B int64). Dense datasets converge to the quantization factor "
      "alone.\n");
  return 0;
}
