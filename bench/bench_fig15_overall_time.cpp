// Fig. 15 — Training-time speedup of HarpGBDT over the baselines on the
// four datasets, at D=8 and D=12.
//
// Paper: on average 8.7x faster than XGBoost and 3x faster than LightGBM;
// >10x over XGBoost on the fat YFCC; ~2x over LightGBM on AIRLINE; ~3x on
// CRITEO; gains grow with tree size.
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 15", "overall training-time speedup on 4 dataset shapes",
             "HarpGBDT beats XGBoost by large factors (esp. fat YFCC) and "
             "LightGBM by ~2-3x; speedups grow with tree size");

  struct DatasetCase {
    const char* name;
    SyntheticSpec spec;
  };
  const DatasetCase datasets[] = {
      {"HIGGS", HiggsSpec(0.3 * Scale())},
      {"AIRLINE", AirlineSpec(0.12 * Scale())},
      {"CRITEO", CriteoSpec(0.3 * Scale())},
      {"YFCC", YfccSpec(0.5 * Scale())},
  };

  std::vector<double> vs_xgb;
  std::vector<double> vs_lgbm;
  std::printf("%-9s %4s %12s %12s %12s %14s %14s\n", "dataset", "D",
              "XGB-Leaf", "LightGBM", "HarpGBDT", "speedupXGB",
              "speedupLGBM");
  for (const DatasetCase& dc : datasets) {
    Prepared data = Prepare(dc.spec, 0.0, true);
    for (int d : {8, 12}) {
      TrainStats xgb;
      {
        baselines::XgbHistTrainer(BaselineParams(d, GrowPolicy::kLeafwise))
            .TrainBinned(data.matrix, data.train.labels(), &xgb);
      }
      TrainStats lgbm;
      {
        baselines::LightGbmTrainer(BaselineParams(d, GrowPolicy::kLeafwise))
            .TrainBinned(data.matrix, data.train.labels(), &lgbm);
      }
      TrainStats harp_stats;
      {
        TrainParams p = HarpParams(
            d, d <= 8 ? ParallelMode::kSYNC : ParallelMode::kASYNC);
        // Fat matrices (Section V-F): standard DP writes a huge region and
        // per-leaf replicas reduce a multi-MB model — block-wise MP with
        // medium feature blocks is the right configuration.
        if (data.train.num_features() >= 1024) {
          p.mode = ParallelMode::kMP;
          p.feature_blk_size = 256;
          p.node_blk_size = 8;
        }
        GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(),
                                   &harp_stats);
      }
      ReportStats("fig15", StrFormat("%s_D%d_XGB-Leaf", dc.name, d), xgb);
      ReportStats("fig15", StrFormat("%s_D%d_LightGBM", dc.name, d), lgbm);
      ReportStats("fig15", StrFormat("%s_D%d_HarpGBDT", dc.name, d),
                  harp_stats);
      const double sx = xgb.SecondsPerTree() / harp_stats.SecondsPerTree();
      const double sl = lgbm.SecondsPerTree() / harp_stats.SecondsPerTree();
      vs_xgb.push_back(sx);
      vs_lgbm.push_back(sl);
      std::printf("%-9s %4d %10.1fms %10.1fms %10.1fms %13.2fx %13.2fx\n",
                  dc.name, d, MsPerTree(xgb), MsPerTree(lgbm),
                  MsPerTree(harp_stats), sx, sl);
    }
  }
  std::printf("\ngeometric-mean speedup: %.2fx over XGB-Leaf, %.2fx over "
              "LightGBM (paper: 8.7x / 3x on a 36-core machine at 32 "
              "threads; smaller machines give smaller but same-ordered "
              "factors).\n",
              GeometricMean(vs_xgb), GeometricMean(vs_lgbm));
  return 0;
}
