// Fig. 4 — Trend of training-time breakdown over tree size (HIGGS).
//
// The paper runs XGB-Depth, XGB-Leaf and LightGBM at tree sizes 8/10/12
// and shows BuildHist growing ~O(2^D) even for depthwise growth (where the
// algorithmic cost is O(N*D)): the growth is parallel overhead from
// leaf-by-leaf synchronization. We reproduce the per-phase breakdown and
// the normalized growth curves, plus the machine-independent evidence:
// parallel-region counts growing with the leaf count.
#include "bench_common.h"

namespace {

using namespace harp;
using namespace harp::bench;

struct Row {
  std::string trainer;
  int d;
  TrainStats stats;
};

}  // namespace

int main() {
  PrintTitle("Fig. 4", "training-time breakdown over tree size (HIGGS-like)",
             "BuildHist dominates and grows ~O(2^D) for XGBoost/LightGBM "
             "even in depthwise mode; barrier count is proportional to the "
             "number of leaves");

  Prepared data = Prepare(HiggsSpec(0.5 * Scale()), 0.0,
                          /*column_major=*/true);
  std::printf("dataset: %u rows x %u features\n\n", data.train.num_rows(),
              data.train.num_features());

  const std::vector<int> sizes{6, 8, 10};
  std::vector<Row> rows;
  for (int d : sizes) {
    {
      TrainStats stats;
      baselines::XgbHistTrainer(
          BaselineParams(d, GrowPolicy::kDepthwise))
          .TrainBinned(data.matrix, data.train.labels(), &stats);
      rows.push_back(Row{"XGB-Depth", d, stats});
    }
    {
      TrainStats stats;
      baselines::XgbHistTrainer(BaselineParams(d, GrowPolicy::kLeafwise))
          .TrainBinned(data.matrix, data.train.labels(), &stats);
      rows.push_back(Row{"XGB-Leaf", d, stats});
    }
    {
      TrainStats stats;
      baselines::LightGbmTrainer(BaselineParams(d, GrowPolicy::kLeafwise))
          .TrainBinned(data.matrix, data.train.labels(), &stats);
      rows.push_back(Row{"LightGBM", d, stats});
    }
  }

  for (const Row& r : rows) {
    ReportStats("fig04", StrFormat("%s_D%d", r.trainer.c_str(), r.d),
                r.stats);
  }
  std::printf("%-10s %3s %12s %12s %12s %12s %10s %8s\n", "trainer", "D",
              "BuildHist", "FindSplit", "ApplySplit", "ms/tree", "regions",
              "leaves");
  for (const Row& r : rows) {
    const double per_tree = 1.0 / std::max(1, r.stats.trees);
    std::printf("%-10s %3d %10.2fms %10.2fms %10.2fms %10.2fms %10lld %8lld\n",
                r.trainer.c_str(), r.d,
                NsToMs(r.stats.build_hist_ns + r.stats.reduce_ns) * per_tree,
                NsToMs(r.stats.find_split_ns) * per_tree,
                NsToMs(r.stats.apply_split_ns) * per_tree,
                MsPerTree(r.stats),
                static_cast<long long>(r.stats.sync.parallel_regions /
                                       std::max(1, r.stats.trees)),
                static_cast<long long>(r.stats.leaves /
                                       std::max(1, r.stats.trees)));
  }

  // ApplySplit-phase counters (the baselines apply per node, so batches
  // only counts their large-node parallel applications; allocs collapse
  // to ~0 after the first tree's arena warmup).
  std::printf("\n%-10s %3s %10s %10s %10s %12s %8s\n", "trainer", "D",
              "ap.splits", "ap.batch", "ap.barr", "ap.moved", "ap.alloc");
  for (const Row& r : rows) {
    std::printf("%-10s %3d %10lld %10lld %10lld %10lldKB %8lld\n",
                r.trainer.c_str(), r.d,
                static_cast<long long>(r.stats.apply_splits),
                static_cast<long long>(r.stats.apply_batches),
                static_cast<long long>(r.stats.apply_barriers),
                static_cast<long long>(r.stats.apply_bytes_moved / 1024),
                static_cast<long long>(r.stats.apply_allocs));
  }

  std::printf("\nBuildHist time normalized to D=%d (the paper's Fig. 4 "
              "curves, exponential for the leaf-by-leaf systems):\n",
              sizes.front());
  std::printf("%-10s", "trainer");
  for (int d : sizes) std::printf("    D%-4d", d);
  std::printf("\n");
  for (const char* name : {"XGB-Depth", "XGB-Leaf", "LightGBM"}) {
    std::printf("%-10s", name);
    double base = 0.0;
    for (const Row& r : rows) {
      if (r.trainer != name) continue;
      const double build =
          NsToMs(r.stats.build_hist_ns + r.stats.reduce_ns) /
          std::max(1, r.stats.trees);
      if (base == 0.0) base = build;
      std::printf(" %8.2fx", build / base);
    }
    std::printf("\n");
  }
  std::printf("\nbarrier (parallel-region) count per tree grows with the "
              "leaf count 2^D — the machine-independent form of the "
              "paper's claim.\n");

  // Contrast: HarpGBDT's SYNC trainer on the same workload under both grow
  // schedulers. The region-per-phase oracle already batches K leaves per
  // region; the fused scheduler then collapses each batch's phases into
  // ONE resident region, trading region launches for in-region barriers.
  std::printf("\nHarpGBDT SYNC (D=8, K=32) — fused vs region-per-phase:\n");
  std::printf("%-10s %12s %12s %12s %12s %10s %10s %10s\n", "scheduler",
              "BuildHist", "FindSplit", "ApplySplit", "ms/tree", "regions",
              "launch/bat", "barr/bat");
  for (const bool fused : {false, true}) {
    TrainParams p = HarpParams(8, ParallelMode::kSYNC);
    p.use_fused_step = fused;
    TrainStats stats;
    GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(), &stats);
    ReportStats("fig04", fused ? "harp_sync_fused" : "harp_sync_phase",
                stats);
    const double per_tree = 1.0 / std::max(1, stats.trees);
    const double per_batch =
        1.0 / static_cast<double>(std::max<int64_t>(1, stats.topk_batches));
    std::printf(
        "%-10s %10.2fms %10.2fms %10.2fms %10.2fms %10lld %10.2f %10.2f\n",
        fused ? "fused" : "phase",
        NsToMs(stats.build_hist_ns + stats.reduce_ns) * per_tree,
        NsToMs(stats.find_split_ns) * per_tree,
        NsToMs(stats.apply_split_ns) * per_tree, MsPerTree(stats),
        static_cast<long long>(stats.sync.parallel_regions /
                               std::max(1, stats.trees)),
        static_cast<double>(stats.grow_region_launches) * per_batch,
        static_cast<double>(stats.grow_phase_barriers) * per_batch);
  }
  return 0;
}
