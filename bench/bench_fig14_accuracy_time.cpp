// Fig. 14 — Accuracy (test AUC) vs training time on HIGGS, at D=8 and
// D=12.
//
// Paper: at D8 LightGBM is ~2x slower per tree than HarpGBDT but finishes
// with lower accuracy at the same wall time; at D12 HarpGBDT converges and
// finishes much faster.
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 14", "test AUC vs wall-clock training time (HIGGS-like)",
             "HarpGBDT reaches any given AUC level first; the gap widens "
             "at D=12");

  const int trees = std::max(30, Trees() * 6);

  for (int d : {8, 12}) {
    Prepared data = Prepare(HiggsSpec(0.3 * Scale()), 0.2, true);
    std::printf("\n[D=%d] time-to-AUC milestones (seconds of training to "
                "first reach the AUC level):\n",
                d);

    auto series_for = [&](const char* name)
        -> std::vector<ConvergencePoint> {
      if (std::string(name) == "XGB-Leaf") {
        TrainParams p = BaselineParams(d, GrowPolicy::kLeafwise);
        p.num_trees = trees;
        baselines::XgbHistTrainer trainer(p);
        return TrackConvergence(data.test, [&](const IterCallback& cb) {
          trainer.TrainBinned(data.matrix, data.train.labels(), nullptr, cb);
        });
      }
      if (std::string(name) == "LightGBM") {
        TrainParams p = BaselineParams(d, GrowPolicy::kLeafwise);
        p.num_trees = trees;
        baselines::LightGbmTrainer trainer(p);
        return TrackConvergence(data.test, [&](const IterCallback& cb) {
          trainer.TrainBinned(data.matrix, data.train.labels(), nullptr, cb);
        });
      }
      TrainParams p = HarpParams(
          d, d <= 8 ? ParallelMode::kDP : ParallelMode::kASYNC);
      p.num_trees = trees;
      GbdtTrainer trainer(p);
      return TrackConvergence(data.test, [&](const IterCallback& cb) {
        trainer.TrainBinned(data.matrix, data.train.labels(), nullptr, cb);
      });
    };

    struct SeriesRow {
      const char* name;
      std::vector<ConvergencePoint> series;
    };
    std::vector<SeriesRow> all;
    for (const char* name : {"XGB-Leaf", "LightGBM", "HarpGBDT"}) {
      all.push_back({name, series_for(name)});
      ReportSeries("fig14", StrFormat("D%d_%s", d, name),
                   all.back().series);
    }

    // Milestones: fractions of the best AUC any system reaches.
    double best_auc = 0.0;
    for (const auto& row : all) {
      for (const auto& pt : row.series) best_auc = std::max(best_auc, pt.auc);
    }
    const std::vector<double> levels{0.95 * best_auc, 0.99 * best_auc,
                                     best_auc};
    std::printf("%-10s", "system");
    for (double lv : levels) std::printf("   AUC>=%.4f", lv);
    std::printf("   final AUC   total time\n");
    for (const auto& row : all) {
      std::printf("%-10s", row.name);
      for (double lv : levels) {
        double t = -1.0;
        for (const auto& pt : row.series) {
          if (pt.auc >= lv) {
            t = pt.seconds;
            break;
          }
        }
        if (t < 0) {
          std::printf("   %11s", "never");
        } else {
          std::printf("   %10.2fs", t);
        }
      }
      std::printf("   %9.4f   %9.2fs\n", row.series.back().auc,
                  row.series.back().seconds);
    }
  }
  std::printf("\nshape check: HarpGBDT's milestone times are the smallest "
              "in (almost) every column, with a larger margin at D=12.\n");
  return 0;
}
