// Online serving — ModelServer (admission coalescing + snapshot hot
// swap) vs one-row-per-Predict, under closed- and open-loop load.
//
// The serving tentpole claims three things, and this bench checks all of
// them before and while timing:
//   1. Identity: every served margin is bit-identical to the batch
//      Predictor on the same rows — including requests that straddle a
//      mid-load hot swap, where each result must match the generation
//      that served it (the batch records its snapshot version).
//   2. Throughput: coalescing single-row submits into kRowBlock blocks
//      recovers the block path's cache amortization that one-row-per-
//      Predict forfeits (>= 3x rows/sec at high concurrency is the PR
//      bar; reported as PASS/WARN because CI machines are heavily
//      oversubscribed).
//   3. Bounded tails: an open-loop generator at a fraction of peak
//      reports p50/p99/p999 sojourn times from the server's log-bucketed
//      LatencyRecorders.
//
// Knobs: HARP_BENCH_SERVE_TREES (ensemble size, default 64) plus the
// usual HARP_BENCH_SCALE / HARP_BENCH_THREADS.
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "common/logging.h"

namespace {

using namespace harp;
using namespace harp::bench;

// Rows of `dataset` densified to `width` floats (NaN = missing), the
// wire format a serving client would send.
std::vector<float> DenseRows(const Dataset& dataset, uint32_t width) {
  std::vector<float> out(
      static_cast<size_t>(dataset.num_rows()) * width, kMissingValue);
  for (uint32_t r = 0; r < dataset.num_rows(); ++r) {
    float* row = out.data() + static_cast<size_t>(r) * width;
    dataset.ForEachInRow(r, [&](uint32_t f, float v) {
      if (f < width) row[f] = v;
    });
  }
  return out;
}

void CheckIdentical(const std::vector<double>& served,
                    const std::vector<double>& expect, const char* what) {
  HARP_CHECK_EQ(served.size(), expect.size());
  for (size_t i = 0; i < served.size(); ++i) {
    HARP_CHECK(served[i] == expect[i])
        << what << ": served margin differs at row " << i;
  }
}

// Serves every test row once through `server` and returns the margins.
std::vector<double> ServeAll(ModelServer& server,
                             const std::vector<float>& rows,
                             uint32_t num_rows) {
  const uint32_t width = server.row_width();
  std::vector<ServeTicket> tickets(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    tickets[r] =
        server.Submit(rows.data() + static_cast<size_t>(r) * width, width);
  }
  server.Flush();
  std::vector<double> out(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) out[r] = tickets[r].Wait();
  return out;
}

struct LoadResult {
  double rows_per_sec = 0.0;
  int64_t requests = 0;
};

// Closed-loop "naive server" baseline: `clients` threads, each request
// is an independent one-row PredictMargins call (the API shape a server
// without an admission queue would use).
LoadResult DirectLoad(const Predictor& predictor,
                      const std::vector<Dataset>& one_row,
                      const std::vector<double>& expect, int clients,
                      int64_t total_requests) {
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> threads;
  const int64_t per_client = total_requests / clients;
  const Stopwatch watch;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const size_t n = one_row.size();
      for (int64_t i = 0; i < per_client; ++i) {
        const size_t r = (static_cast<size_t>(c) * 7919 +
                          static_cast<size_t>(i)) % n;
        const std::vector<double> m = predictor.PredictMargins(one_row[r]);
        if (m[0] != expect[r]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = watch.ElapsedSec();
  HARP_CHECK_EQ(mismatches.load(), 0) << "direct baseline mismatch";
  LoadResult result;
  result.requests = per_client * clients;
  result.rows_per_sec = static_cast<double>(result.requests) / seconds;
  return result;
}

// Closed-loop coalesced load: `clients` threads keep a window of
// outstanding tickets against `server`, verifying every result bitwise.
LoadResult ServeLoad(ModelServer& server, const std::vector<float>& rows,
                     const std::vector<double>& expect, int clients,
                     int64_t total_requests, int window) {
  const uint32_t width = server.row_width();
  const size_t n = expect.size();
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> threads;
  const int64_t per_client = total_requests / clients;
  const Stopwatch watch;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::pair<ServeTicket, size_t>> inflight;
      inflight.reserve(static_cast<size_t>(window));
      size_t head = 0;
      auto drain_one = [&] {
        auto& [ticket, row] = inflight[head];
        if (ticket.Wait() != expect[row]) mismatches.fetch_add(1);
        ++head;
        if (head == inflight.size()) {
          inflight.clear();
          head = 0;
        }
      };
      for (int64_t i = 0; i < per_client; ++i) {
        const size_t r = (static_cast<size_t>(c) * 104729 +
                          static_cast<size_t>(i)) % n;
        if (inflight.size() - head >= static_cast<size_t>(window)) {
          drain_one();
        }
        inflight.emplace_back(
            server.Submit(rows.data() + r * width, width), r);
      }
      server.Flush();  // tail rows must not wait out the deadline
      while (head < inflight.size()) drain_one();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = watch.ElapsedSec();
  HARP_CHECK_EQ(mismatches.load(), 0) << "coalesced serve mismatch";
  LoadResult result;
  result.requests = per_client * clients;
  result.rows_per_sec = static_cast<double>(result.requests) / seconds;
  return result;
}

}  // namespace

int main() {
  PrintTitle("Serve", "online serving: coalescing + hot swap vs naive",
             "admission-queue coalescing into kRowBlock blocks recovers "
             "batch-path throughput for single-row traffic (>= 3x vs "
             "one-row-per-Predict at high concurrency is the PR bar)");

  Prepared data = Prepare(HiggsSpec(0.25 * Scale()), /*test_fraction=*/0.3);
  TrainParams params = HarpParams(8, ParallelMode::kSYNC);
  params.num_trees = GetEnvInt("HARP_BENCH_SERVE_TREES", 64);
  const GbdtModel model_a =
      GbdtTrainer(params).TrainBinned(data.matrix, data.train.labels());
  TrainParams params_b = params;
  params_b.num_trees = std::max(1, params.num_trees / 2);
  const GbdtModel model_b =
      GbdtTrainer(params_b).TrainBinned(data.matrix, data.train.labels());

  ThreadPool pool(Threads());
  const Dataset& test = data.test;
  const uint32_t num_rows = test.num_rows();
  const std::vector<double> expect_a = model_a.PredictMargins(test, &pool);
  const std::vector<double> expect_b = model_b.PredictMargins(test, &pool);

  ServeConfig config;
  config.num_threads = Threads();
  const uint32_t width = [&] {
    ModelServer probe(model_a, config);
    return probe.row_width();
  }();
  const std::vector<float> rows = DenseRows(test, width);
  std::printf("model A: %zu trees, model B: %zu trees; %u test rows x "
              "%u features, block=%u deadline=%lldus\n\n",
              model_a.NumTrees(), model_b.NumTrees(), num_rows, width,
              static_cast<unsigned>(config.block_rows),
              static_cast<long long>(config.flush_deadline_ns / 1000));

  // ---- phase 1: identity, including across a hot swap ----------------
  {
    ModelServer server(model_a, config);
    CheckIdentical(ServeAll(server, rows, num_rows), expect_a,
                   "initial model");
    server.Reload(model_b);
    CheckIdentical(ServeAll(server, rows, num_rows), expect_b,
                   "reloaded model");
    HARP_CHECK_EQ(server.ModelVersion(), 2u);
    server.Shutdown();
    std::printf("identity: %u rows bit-identical on v1 and on v2 after "
                "hot swap\n\n", num_rows);
  }

  // ---- phase 2: closed-loop throughput vs one-row-per-Predict --------
  const std::shared_ptr<const FlatForest> flat = model_a.FlatSnapshot();
  const Predictor predictor(*flat);
  std::vector<Dataset> one_row;
  one_row.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    one_row.push_back(test.Slice(r, r + 1));
  }
  const int64_t total_requests =
      std::max<int64_t>(4096, static_cast<int64_t>(num_rows) * 4);

  std::printf("%-12s %16s %16s %9s %10s %10s %10s\n", "closed loop",
              "direct rows/s", "serve rows/s", "speedup", "p50 us",
              "p99 us", "p999 us");
  double best_serve = 0.0;
  double speedup_high_c = 0.0;
  for (int clients : {1, 4, 16}) {
    const LoadResult direct =
        DirectLoad(predictor, one_row, expect_a, clients, total_requests);
    ModelServer server(model_a, config);
    const LoadResult served = ServeLoad(server, rows, expect_a, clients,
                                        total_requests, /*window=*/256);
    const ServeStats stats = server.Stats();
    server.Shutdown();
    const double speedup = served.rows_per_sec / direct.rows_per_sec;
    speedup_high_c = speedup;  // last iteration = highest concurrency
    best_serve = std::max(best_serve, served.rows_per_sec);
    std::printf("clients=%-4d %14.0f/s %14.0f/s %8.2fx %10.1f %10.1f "
                "%10.1f\n",
                clients, direct.rows_per_sec, served.rows_per_sec, speedup,
                stats.request_ns.PercentileNs(0.50) * 1e-3,
                stats.request_ns.PercentileNs(0.99) * 1e-3,
                stats.request_ns.PercentileNs(0.999) * 1e-3);
    ReportResult("serve", StrFormat("direct_c%d", clients),
                 direct.requests, 1e9 / direct.rows_per_sec,
                 direct.rows_per_sec);
    ReportResult("serve", StrFormat("coalesced_c%d", clients),
                 served.requests, 1e9 / served.rows_per_sec,
                 served.rows_per_sec);
  }
  std::printf("high-concurrency speedup %.2fx vs one-row-per-Predict: "
              "%s\n\n", speedup_high_c,
              speedup_high_c >= 3.0
                  ? "PASS"
                  : "WARN (below 3x bar; expected on oversubscribed "
                    "CI hosts)");

  // ---- phase 3: open-loop latency at a fraction of peak --------------
  {
    ModelServer server(model_a, config);
    const double target_rate = std::max(1000.0, 0.5 * best_serve);
    const int64_t requests =
        std::min<int64_t>(total_requests,
                          static_cast<int64_t>(target_rate));  // ~1s cap
    const int64_t interval_ns =
        static_cast<int64_t>(1e9 / target_rate);
    std::atomic<int64_t> done{0};
    std::atomic<int64_t> mismatches{0};
    const Stopwatch watch;
    const int64_t start = NowNs();
    for (int64_t i = 0; i < requests; ++i) {
      const size_t r = static_cast<size_t>(i) % num_rows;
      const double want = expect_a[r];
      server.SubmitWithCallback(
          rows.data() + r * width, width,
          [want, &done, &mismatches](double margin) {
            if (margin != want) mismatches.fetch_add(1);
            done.fetch_add(1, std::memory_order_release);
          });
      // Open loop: arrivals follow the schedule, not the completions.
      const int64_t next = start + (i + 1) * interval_ns;
      while (NowNs() < next) {
        const int64_t gap = next - NowNs();
        if (gap > 200 * 1000) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(gap - 100 * 1000));
        } else {
          std::this_thread::yield();
        }
      }
    }
    server.Flush();
    while (done.load(std::memory_order_acquire) < requests) {
      std::this_thread::yield();
    }
    const double seconds = watch.ElapsedSec();
    HARP_CHECK_EQ(mismatches.load(), 0) << "open-loop mismatch";
    const ServeStats stats = server.Stats();
    server.Shutdown();
    const double achieved =
        static_cast<double>(requests) / seconds;
    std::printf("open loop: target %.0f rows/s, achieved %.0f rows/s "
                "(%lld requests)\n", target_rate, achieved,
                static_cast<long long>(requests));
    std::printf("  %s\n  %s\n  %s\n",
                stats.request_ns.Summary("request sojourn").c_str(),
                stats.queue_ns.Summary("admission wait ").c_str(),
                stats.service_ns.Summary("batch service ").c_str());
    std::printf("  batches: %.1f rows avg fill, seals full=%lld "
                "deadline=%lld\n\n", stats.avg_batch_fill,
                static_cast<long long>(stats.full_seals),
                static_cast<long long>(stats.deadline_seals));
    ReportResult("serve", "openloop", requests, 1e9 / achieved, achieved);
    ReportResult("serve", "openloop_p99_us", requests,
                 stats.request_ns.PercentileNs(0.99),
                 stats.request_ns.PercentileNs(0.99) * 1e-3);
  }

  // ---- phase 4: hot swap under load, per-generation identity ---------
  {
    ModelServer server(model_a, config);
    std::atomic<bool> stop_swapper{false};
    std::thread swapper([&] {
      int flips = 0;
      while (!stop_swapper.load(std::memory_order_acquire)) {
        server.Reload(++flips % 2 == 1 ? model_b : model_a);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    const int clients = 2;
    std::atomic<int64_t> mismatches{0};
    std::vector<std::thread> threads;
    const int64_t per_client = total_requests / (2 * clients);
    const Stopwatch watch;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int64_t i = 0; i < per_client; ++i) {
          const size_t r = (static_cast<size_t>(c) * 7919 +
                            static_cast<size_t>(i)) % num_rows;
          ServeTicket ticket =
              server.Submit(rows.data() + r * width, width);
          const double margin = ticket.Wait();
          // Odd generations are A, even are B (swapper alternates).
          const uint64_t version = ticket.batch().served_version;
          const double want =
              version % 2 == 1 ? expect_a[r] : expect_b[r];
          if (margin != want) mismatches.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = watch.ElapsedSec();
    stop_swapper.store(true, std::memory_order_release);
    swapper.join();
    HARP_CHECK_EQ(mismatches.load(), 0)
        << "hot-swap phase served a torn or wrong-generation margin";
    const int64_t requests = per_client * clients;
    server.Shutdown();
    const ServeStats stats = server.Stats();
    std::printf("hot swap: %lld rows served across %lld reloads, all "
                "bit-identical to their generation; snapshots "
                "retired=%lld freed=%lld\n",
                static_cast<long long>(requests),
                static_cast<long long>(stats.reloads),
                static_cast<long long>(stats.snapshots_retired),
                static_cast<long long>(stats.snapshots_freed));
    HARP_CHECK_EQ(stats.snapshots_retired, stats.snapshots_freed)
        << "snapshot generations leaked past shutdown";
    ReportResult("serve", "hotswap", requests,
                 seconds * 1e9 / static_cast<double>(requests),
                 static_cast<double>(requests) / seconds);
  }

  std::printf("\nall served margins verified bit-identical to the batch "
              "Predictor (incl. across hot swaps) before reporting.\n");
  return 0;
}
