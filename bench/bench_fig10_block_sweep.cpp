// Fig. 10 — Training-time speedup over standard model parallelism as a
// function of <feature_blk_size x node_blk_size>, for DP and MP (SYNSET,
// leafwise-family growth with K=32).
//
// Paper claims reproduced:
//   - up to ~3x speedup from block sizing alone;
//   - medium feature blocks are best at node_blk=1 (read/write trade-off);
//   - with small feature blocks, bigger node blocks help; with big feature
//     blocks they hurt (mutual restriction; best MP configs sit near the
//     secondary diagonal).
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 10", "block-size sweep: speedup over standard MP "
             "(SYNSET, K=32)",
             "~3x attainable from block sizing alone; medium feature "
             "blocks win at node_blk=1; node and feature blocks restrict "
             "each other");

  Prepared data = Prepare(SynsetBenchSpec(Scale()));
  const uint32_t m = data.train.num_features();
  std::printf("dataset: %u x %u\n", data.train.num_rows(), m);

  auto run = [&](ParallelMode mode, GrowPolicy policy, int k,
                 int feature_blk, int node_blk) {
    TrainParams p;
    p.num_trees = Trees();
    p.tree_size = 8;
    p.grow_policy = policy;
    p.topk = k;
    p.mode = mode;
    p.num_threads = Threads();
    p.feature_blk_size = feature_blk;
    p.node_blk_size = node_blk;
    TrainStats stats;
    GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(), &stats);
    return stats.SecondsPerTree();
  };

  // Baseline: standard model parallelism = <feature_blk=1, K=1>.
  const double standard_mp =
      run(ParallelMode::kMP, GrowPolicy::kLeafwise, 1, 1, 1);
  std::printf("standard MP (feature_blk=1, K=1): %.1f ms/tree\n\n",
              standard_mp * 1e3);
  ReportResult("fig10", "standard_mp", Trees(), standard_mp * 1e9,
               static_cast<double>(data.train.num_rows()) / standard_mp);

  const std::vector<int> feature_blks{1, 4, 16, 64};
  const std::vector<int> node_blks{1, 4, 16, 32};

  for (ParallelMode mode : {ParallelMode::kMP, ParallelMode::kDP}) {
    std::printf("[%s, K=32] speedup over standard MP "
                "(rows: node_blk, cols: feature_blk)\n",
                ToString(mode).c_str());
    std::printf("%8s", "");
    for (int fb : feature_blks) std::printf("  f=%-5d", fb);
    std::printf("\n");
    for (int nb : node_blks) {
      std::printf("  n=%-4d", nb);
      for (int fb : feature_blks) {
        const double sec =
            run(mode, GrowPolicy::kTopK, 32, fb, nb);
        ReportResult("fig10",
                     StrFormat("%s_f%d_n%d", ToString(mode).c_str(), fb, nb),
                     Trees(), sec * 1e9,
                     static_cast<double>(data.train.num_rows()) / sec);
        std::printf("  %6.2fx", standard_mp / sec);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("shape check: the best cell should beat 1.00x by a clear "
              "factor; MP rows with small f improve as n grows, rows with "
              "large f degrade as n grows (secondary diagonal).\n");
  return 0;
}
