// Table I — Profiling of XGBoost and LightGBM (HIGGS, D=8).
//
// Paper values (VTune on 2x18-core Xeon, 32 threads):
//   trainer     utilization  barrier-overhead  latency  memory-bound
//   XGB-Depth   13.9%        42%               35 cyc   51.0%
//   XGB-Leaf    13.9%        42%               37 cyc   52.9%
//   LightGBM    19.2%        23%               25 cyc   54%
//
// We reproduce utilization and barrier overhead exactly (measured by the
// instrumented runtime) and replace the two hardware-counter columns with
// software proxies: ns per histogram update (latency proxy) and the
// histogram write-region working set (memory-bound proxy).
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Table I", "profiling of the XGBoost/LightGBM strategies "
             "(HIGGS-like, D=8)",
             "low CPU utilization (13.9-19.2%), high barrier overhead "
             "(42% XGB / 23% LightGBM)");

  Prepared data = Prepare(HiggsSpec(0.5 * Scale()), 0.0, true);

  struct Case {
    const char* name;
    double paper_util;
    double paper_barrier;
  };
  const Case cases[] = {{"XGB-Depth", 13.9, 42.0},
                        {"XGB-Leaf", 13.9, 42.0},
                        {"LightGBM", 19.2, 23.0}};

  std::printf("%-10s %12s %12s %14s %12s %10s | %10s %10s\n", "trainer",
              "util", "barrier", "ns/update", "regions/tr", "leaves",
              "paperUtil", "paperBarr");
  for (const Case& c : cases) {
    TrainStats stats;
    const std::string name = c.name;
    if (name == "XGB-Depth") {
      baselines::XgbHistTrainer(BaselineParams(8, GrowPolicy::kDepthwise))
          .TrainBinned(data.matrix, data.train.labels(), &stats);
    } else if (name == "XGB-Leaf") {
      baselines::XgbHistTrainer(BaselineParams(8, GrowPolicy::kLeafwise))
          .TrainBinned(data.matrix, data.train.labels(), &stats);
    } else {
      baselines::LightGbmTrainer(BaselineParams(8, GrowPolicy::kLeafwise))
          .TrainBinned(data.matrix, data.train.labels(), &stats);
    }
    ReportStats("table1", c.name, stats);
    std::printf("%-10s %11.1f%% %11.1f%% %12.2fns %12lld %10lld | %9.1f%% %9.1f%%\n",
                c.name, stats.sync.Utilization(stats.wall_ns) * 100.0,
                stats.sync.BarrierOverhead() * 100.0, stats.NsPerHistUpdate(),
                static_cast<long long>(stats.sync.parallel_regions /
                                       std::max(1, stats.trees)),
                static_cast<long long>(stats.leaves /
                                       std::max(1, stats.trees)),
                c.paper_util, c.paper_barrier);
  }
  std::printf("\nshape check: all three strategies synchronize per leaf, so "
              "regions/tree ~ leaves; XGB's per-leaf replica reduce gives "
              "it the higher barrier overhead, as in the paper.\n");
  return 0;
}
