// Fig. 8 — Convergence of the leafwise trainers on HIGGS and AIRLINE.
//
// Paper: HarpGBDT's TopK "starts from a lower accuracy but soon catches up
// and even gets better accuracy on both HIGGS and AIRLINE".
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 8", "convergence rate, leafwise mode, D=8",
             "TopK starts lower but catches up with / exceeds the strict "
             "leafwise baselines within a few tens of trees");

  const int trees = std::max(40, Trees() * 8);
  const std::vector<int> checkpoints{1, 5, 10, 20, 40};

  struct DatasetCase {
    const char* name;
    SyntheticSpec spec;
  };
  const DatasetCase datasets[] = {
      {"HIGGS", HiggsSpec(0.3 * Scale())},
      {"AIRLINE", AirlineSpec(0.12 * Scale())},
  };

  for (const DatasetCase& dc : datasets) {
    Prepared data = Prepare(dc.spec, /*test_fraction=*/0.2, true);
    std::printf("\n[%s] %u train rows, %u test rows; test AUC after N "
                "trees:\n",
                dc.name, data.train.num_rows(), data.test.num_rows());
    std::printf("%-18s", "trainer");
    for (int cp : checkpoints) std::printf("  T=%-4d", cp);
    std::printf("\n");

    {
      TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
      p.num_trees = trees;
      baselines::XgbHistTrainer trainer(p);
      PrintSeries("XGB-Leaf",
                  TrackConvergence(data.test,
                                   [&](const IterCallback& cb) {
                                     trainer.TrainBinned(
                                         data.matrix, data.train.labels(),
                                         nullptr, cb);
                                   }),
                  checkpoints);
    }
    {
      TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
      p.num_trees = trees;
      baselines::LightGbmTrainer trainer(p);
      PrintSeries("LightGBM",
                  TrackConvergence(data.test,
                                   [&](const IterCallback& cb) {
                                     trainer.TrainBinned(
                                         data.matrix, data.train.labels(),
                                         nullptr, cb);
                                   }),
                  checkpoints);
    }
    {
      TrainParams p = HarpParams(8, ParallelMode::kASYNC);
      p.num_trees = trees;
      GbdtTrainer trainer(p);
      PrintSeries("HarpGBDT-TopK32",
                  TrackConvergence(data.test,
                                   [&](const IterCallback& cb) {
                                     trainer.TrainBinned(
                                         data.matrix, data.train.labels(),
                                         nullptr, cb);
                                   }),
                  checkpoints);
    }
  }
  std::printf("\nshape check: the three curves converge to comparable AUC; "
              "TopK's early trees differ but the gap closes, as in Fig. 8.\n");
  return 0;
}
