// Fig. 8 — Convergence of the leafwise trainers on HIGGS and AIRLINE.
//
// Paper: HarpGBDT's TopK "starts from a lower accuracy but soon catches up
// and even gets better accuracy on both HIGGS and AIRLINE".
#include <cmath>

#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 8", "convergence rate, leafwise mode, D=8",
             "TopK starts lower but catches up with / exceeds the strict "
             "leafwise baselines within a few tens of trees");

  const int trees = std::max(40, Trees() * 8);
  const std::vector<int> checkpoints{1, 5, 10, 20, 40};

  struct DatasetCase {
    const char* name;
    SyntheticSpec spec;
  };
  const DatasetCase datasets[] = {
      {"HIGGS", HiggsSpec(0.3 * Scale())},
      {"AIRLINE", AirlineSpec(0.12 * Scale())},
  };

  for (const DatasetCase& dc : datasets) {
    Prepared data = Prepare(dc.spec, /*test_fraction=*/0.2, true);
    std::printf("\n[%s] %u train rows, %u test rows; test AUC after N "
                "trees:\n",
                dc.name, data.train.num_rows(), data.test.num_rows());
    std::printf("%-18s", "trainer");
    for (int cp : checkpoints) std::printf("  T=%-4d", cp);
    std::printf("\n");

    {
      TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
      p.num_trees = trees;
      baselines::XgbHistTrainer trainer(p);
      const auto series =
          TrackConvergence(data.test, [&](const IterCallback& cb) {
            trainer.TrainBinned(data.matrix, data.train.labels(), nullptr,
                                cb);
          });
      PrintSeries("XGB-Leaf", series, checkpoints);
      ReportSeries("fig08", StrFormat("%s_XGB-Leaf", dc.name), series);
    }
    {
      TrainParams p = BaselineParams(8, GrowPolicy::kLeafwise);
      p.num_trees = trees;
      baselines::LightGbmTrainer trainer(p);
      const auto series =
          TrackConvergence(data.test, [&](const IterCallback& cb) {
            trainer.TrainBinned(data.matrix, data.train.labels(), nullptr,
                                cb);
          });
      PrintSeries("LightGBM", series, checkpoints);
      ReportSeries("fig08", StrFormat("%s_LightGBM", dc.name), series);
    }
    std::vector<ConvergencePoint> harp_series;
    {
      TrainParams p = HarpParams(8, ParallelMode::kASYNC);
      p.num_trees = trees;
      GbdtTrainer trainer(p);
      harp_series =
          TrackConvergence(data.test, [&](const IterCallback& cb) {
            trainer.TrainBinned(data.matrix, data.train.labels(), nullptr,
                                cb);
          });
      PrintSeries("HarpGBDT-TopK32", harp_series, checkpoints);
      ReportSeries("fig08", StrFormat("%s_HarpGBDT-TopK32", dc.name),
                   harp_series);
    }
    {
      // Quantized-histogram accuracy oracle: same trainer with 16-bit
      // fixed-point gradients. Final-model AUC must stay within 1e-3 of
      // the f64 run (the PR acceptance bar); the full curve is archived.
      TrainParams p = HarpParams(8, ParallelMode::kASYNC);
      p.num_trees = trees;
      p.quantize_hist = true;
      GbdtTrainer trainer(p);
      const auto series =
          TrackConvergence(data.test, [&](const IterCallback& cb) {
            trainer.TrainBinned(data.matrix, data.train.labels(), nullptr,
                                cb);
          });
      PrintSeries("HarpGBDT-quant", series, checkpoints);
      ReportSeries("fig08", StrFormat("%s_HarpGBDT-quant", dc.name), series);
      const double auc_f = harp_series.back().auc;
      const double auc_q = series.back().auc;
      std::printf("%-18s  final AUC f64=%.5f quant=%.5f |delta|=%.2e %s\n",
                  "", auc_f, auc_q, std::fabs(auc_q - auc_f),
                  std::fabs(auc_q - auc_f) <= 1e-3 ? "(<=1e-3 ok)"
                                                   : "(EXCEEDS 1e-3)");
      if (std::fabs(auc_q - auc_f) > 1e-3) {
        std::fprintf(stderr,
                     "FATAL: quantized AUC diverged from f64 oracle\n");
        std::abort();
      }
    }
  }
  std::printf("\nshape check: the curves converge to comparable AUC; "
              "TopK's early trees differ but the gap closes, as in Fig. 8; "
              "the quantized trainer tracks the f64 oracle within 1e-3.\n");
  return 0;
}
