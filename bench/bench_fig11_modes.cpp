// Fig. 11 — Performance of the four parallelism modes over tree size
// (SYNSET), with two row-block settings.
//
// Paper claims reproduced:
//   - DP is best at D8 and degrades with tree size (replica reduction
//     grows with node count);
//   - MP scales better than DP over tree size;
//   - SYNC beats both pure modes; ASYNC scales best;
//   - at D16-like stress sizes, enlarging row_blk_size recovers ~50% for
//     DP/ASYNC (fewer, larger tasks).
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 11", "parallelism modes over tree size (SYNSET)",
             "DP wins small trees then degrades; MP scales; SYNC >= both; "
             "ASYNC scales best; larger row blocks help at stress sizes");

  Prepared data = Prepare(SynsetBenchSpec(Scale()));
  const int64_t n = data.train.num_rows();
  const int threads = Threads();

  auto run = [&](ParallelMode mode, int d, int64_t row_blk) {
    TrainParams p;
    p.num_trees = Trees();
    p.tree_size = d;
    p.grow_policy = GrowPolicy::kTopK;
    p.topk = 32;
    p.mode = mode;
    p.num_threads = threads;
    p.row_blk_size = row_blk;
    // Paper's Fig. 11 settings: <32,4> for DP at large trees, <4,32>
    // otherwise.
    if (mode == ParallelMode::kDP) {
      p.feature_blk_size = 32;
      p.node_blk_size = 4;
    } else {
      p.feature_blk_size = 4;
      p.node_blk_size = 32;
    }
    TrainStats stats;
    GbdtTrainer(p).TrainBinned(data.matrix, data.train.labels(), &stats);
    return stats;
  };

  const std::vector<int> sizes{6, 8, 10, 12};
  for (const auto& [label, row_blk] :
       std::vector<std::pair<const char*, int64_t>>{
           {"(a) row_blk = N/T", 0},
           {"(b) row_blk = 4N/T", 4 * n / threads}}) {
    std::printf("\n%s — ms/tree (and parallel regions/tree):\n", label);
    std::printf("%-8s", "mode");
    for (int d : sizes) std::printf("        D%-8d", d);
    std::printf("\n");
    for (ParallelMode mode : {ParallelMode::kDP, ParallelMode::kMP,
                              ParallelMode::kSYNC, ParallelMode::kASYNC}) {
      std::printf("%-8s", ToString(mode).c_str());
      for (int d : sizes) {
        const TrainStats stats = run(mode, d, row_blk);
        ReportStats("fig11",
                    StrFormat("%s_D%d_rowblk%lld", ToString(mode).c_str(), d,
                              static_cast<long long>(row_blk)),
                    stats);
        std::printf("  %7.1f (%4lld)", MsPerTree(stats),
                    static_cast<long long>(stats.sync.parallel_regions /
                                           std::max(1, stats.trees)));
      }
      std::printf("\n");
    }
  }
  std::printf("\nshape check: region counts — ASYNC stays O(1) per tree "
              "while DP/MP/SYNC grow with tree size; ms/tree curves follow "
              "the Fig. 11 ordering at the largest D.\n");
  return 0;
}
