// Fig. 12 — Trend of training time over tree size (HIGGS): XGBoost
// (depth & leaf), LightGBM, and HarpGBDT.
//
// Paper: HarpGBDT scales much better over tree size; the baselines'
// per-tree time grows ~O(2^D) with the leaf count while HarpGBDT's grows
// far slower (DP at D8, ASYNC at larger sizes).
#include "bench_common.h"

int main() {
  using namespace harp;
  using namespace harp::bench;

  PrintTitle("Fig. 12", "training time per tree vs tree size (HIGGS-like)",
             "baselines grow steeply with D; HarpGBDT (DP at D8, ASYNC "
             "above) scales much more gently");

  Prepared data = Prepare(HiggsSpec(0.5 * Scale()), 0.0, true);
  const std::vector<int> sizes{6, 8, 10, 12};

  std::printf("%-14s", "trainer");
  for (int d : sizes) std::printf("      D%-6d", d);
  std::printf("\n");

  auto print_row = [&](const char* name, auto&& runner) {
    std::printf("%-14s", name);
    for (int d : sizes) {
      const double sec = runner(d);
      ReportResult("fig12", StrFormat("%s_D%d", name, d), Trees(),
                   sec * 1e9,
                   static_cast<double>(data.train.num_rows()) / sec);
      std::printf("  %9.1fms", sec * 1e3);
    }
    std::printf("\n");
  };

  print_row("XGB-Depth", [&](int d) {
    TrainStats stats;
    baselines::XgbHistTrainer(BaselineParams(d, GrowPolicy::kDepthwise))
        .TrainBinned(data.matrix, data.train.labels(), &stats);
    return stats.SecondsPerTree();
  });
  print_row("XGB-Leaf", [&](int d) {
    TrainStats stats;
    baselines::XgbHistTrainer(BaselineParams(d, GrowPolicy::kLeafwise))
        .TrainBinned(data.matrix, data.train.labels(), &stats);
    return stats.SecondsPerTree();
  });
  print_row("LightGBM", [&](int d) {
    TrainStats stats;
    baselines::LightGbmTrainer(BaselineParams(d, GrowPolicy::kLeafwise))
        .TrainBinned(data.matrix, data.train.labels(), &stats);
    return stats.SecondsPerTree();
  });
  print_row("HarpGBDT", [&](int d) {
    // Paper Section V-E: DP for D8 and below, ASYNC for larger trees.
    const ParallelMode mode =
        d <= 8 ? ParallelMode::kDP : ParallelMode::kASYNC;
    TrainStats stats;
    GbdtTrainer(HarpParams(d, mode))
        .TrainBinned(data.matrix, data.train.labels(), &stats);
    return stats.SecondsPerTree();
  });

  std::printf("\nshape check: reading each row left to right, the "
              "baselines' growth factor D6->D12 should clearly exceed "
              "HarpGBDT's.\n");
  return 0;
}
