// Shared benchmark harness.
//
// Every bench binary regenerates one table/figure of the paper. Common
// knobs (environment variables):
//   HARP_BENCH_SCALE    multiplies dataset row counts (default 1.0 —
//                       seconds-per-experiment laptop scale; the paper's
//                       full datasets correspond to scales in the
//                       hundreds)
//   HARP_BENCH_THREADS  worker threads (default 4). NOTE: on machines
//                       with fewer physical cores the workers are
//                       oversubscribed; wall-clock speedups are then
//                       distorted, which is why each bench also reports
//                       machine-independent counters (parallel regions,
//                       barrier overhead, utilization, ns/update).
//   HARP_BENCH_TREES    trees per measurement (default 5; the paper
//                       averages the first 100)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harpgbdt.h"
#include "common/env.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/stats.h"
#include "data/binary_cache.h"

namespace harp::bench {

inline double Scale() { return GetEnvDouble("HARP_BENCH_SCALE", 1.0); }
inline int Threads() { return GetEnvInt("HARP_BENCH_THREADS", 4); }
inline int Trees() { return GetEnvInt("HARP_BENCH_TREES", 5); }

// Generates (or loads from /tmp cache) the dataset for a preset spec.
inline Dataset LoadDataset(const SyntheticSpec& spec) {
  const std::string path = StrFormat("/tmp/harp_bench_%s_%u_%llu.bin",
                                     spec.name.c_str(), spec.rows,
                                     static_cast<unsigned long long>(spec.seed));
  Dataset ds;
  std::string error;
  if (ReadDatasetCache(path, &ds, &error) &&
      ds.num_rows() == spec.rows &&
      ds.num_features() == spec.features) {
    return ds;
  }
  ds = GenerateSynthetic(spec);
  if (!WriteDatasetCache(path, ds, &error)) {
    std::fprintf(stderr, "(cache write skipped: %s)\n", error.c_str());
  }
  return ds;
}

// SYNSET variant for the block-sweep/mode/ablation benches. The paper's
// SYNSET has N/(M x B) ~ 300 rows per histogram slot (10M rows vs a 32k-
// slot model); naively shrinking only the row count would make replica
// zeroing/reduction dominate the row scan and invert the DP/MP trade-off.
// This variant keeps laptop-scale runtimes while restoring a paper-like
// compute-to-model ratio (~25 rows/slot): 64 features x ~64 bins.
inline SyntheticSpec SynsetBenchSpec(double scale) {
  SyntheticSpec spec = SynsetSpec(scale);
  spec.name = "SYNSETB";
  spec.rows = static_cast<uint32_t>(std::max(1.0, 100000.0 * scale));
  spec.features = 64;
  spec.mean_distinct = 64.0;
  spec.active_features = 12;
  return spec;
}

// A dataset prepared for training: binned once up front, so measurements
// exclude data loading and one-time initialization (Section V-A4).
struct Prepared {
  Dataset train;
  Dataset test;  // empty unless test_fraction > 0
  BinnedMatrix matrix;
};

inline Prepared Prepare(SyntheticSpec spec, double test_fraction = 0.0,
                        bool column_major = false) {
  ThreadPool pool(Threads());
  const Dataset all = LoadDataset(spec);
  Prepared prepared;
  const uint32_t test_rows =
      static_cast<uint32_t>(static_cast<double>(all.num_rows()) *
                            test_fraction);
  const uint32_t train_rows = all.num_rows() - test_rows;
  prepared.train = all.Slice(0, train_rows);
  prepared.test = all.Slice(train_rows, all.num_rows());
  prepared.matrix = BinnedMatrix::Build(
      prepared.train, QuantileCuts::Compute(prepared.train, 256, &pool),
      &pool);
  if (column_major) prepared.matrix.EnsureColumnMajor(&pool);
  return prepared;
}

inline void PrintTitle(const std::string& id, const std::string& what,
                       const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("config: scale=%.2f threads=%d trees/measure=%d\n", Scale(),
              Threads(), Trees());
  std::printf("================================================================\n");
}

// Milliseconds per tree from a stats object.
inline double MsPerTree(const TrainStats& stats) {
  return stats.SecondsPerTree() * 1e3;
}

// Convenience: configured HarpGBDT params used across benches.
inline TrainParams HarpParams(int tree_size, ParallelMode mode,
                              GrowPolicy policy = GrowPolicy::kTopK,
                              int k = 32) {
  TrainParams p;
  p.num_trees = Trees();
  p.tree_size = tree_size;
  p.grow_policy = policy;
  p.topk = k;
  p.mode = mode;
  p.num_threads = Threads();
  // The paper's Section V-E configuration is <feature_blk=4, node_blk=32>,
  // tuned for a 45MB-LLC Xeon where a HIGGS histogram exceeds cache. At
  // laptop scale the whole histogram fits, so feature tiling only adds
  // re-reads; node blocking (fewer barriers) transfers unchanged. Fat
  // inputs (YFCC) still get explicit feature blocks in their benches.
  p.feature_blk_size = 0;
  p.node_blk_size = 32;
  return p;
}

inline TrainParams BaselineParams(int tree_size, GrowPolicy policy) {
  TrainParams p;
  p.num_trees = Trees();
  p.tree_size = tree_size;
  p.grow_policy = policy;
  p.num_threads = Threads();
  return p;
}

// ---- convergence tracking (Figs. 8, 9, 14, 16) ----

struct ConvergencePoint {
  int trees = 0;
  double seconds = 0.0;  // cumulative training wall time
  double auc = 0.0;      // held-out AUC after this many trees
};

// Runs `train(callback)` and records test AUC after every iteration.
// `train` must invoke the callback per iteration (all trainer facades do,
// via RunBoosting).
template <typename TrainFn>
std::vector<ConvergencePoint> TrackConvergence(const Dataset& test,
                                               TrainFn&& train) {
  std::vector<ConvergencePoint> series;
  // Margins start from 0 rather than the model's base margin: a constant
  // shift is rank-preserving, so the AUC is unaffected.
  std::vector<double> test_margins(test.num_rows(), 0.0);
  double elapsed = 0.0;
  train([&](const IterationInfo& info) {
    for (uint32_t r = 0; r < test.num_rows(); ++r) {
      test_margins[r] += info.tree.PredictRaw(test, r);
    }
    elapsed += info.tree_seconds;
    series.push_back(ConvergencePoint{
        info.iteration + 1, elapsed, Auc(test.labels(), test_margins)});
  });
  return series;
}

// Prints a series at logarithmic-ish checkpoints.
inline void PrintSeries(const std::string& name,
                        const std::vector<ConvergencePoint>& series,
                        const std::vector<int>& checkpoints) {
  std::printf("%-18s", name.c_str());
  for (int cp : checkpoints) {
    if (cp >= 1 && cp <= static_cast<int>(series.size())) {
      std::printf("  %6.4f", series[static_cast<size_t>(cp - 1)].auc);
    } else {
      std::printf("  %6s", "-");
    }
  }
  std::printf("   (%.2fs total)\n", series.empty() ? 0.0 : series.back().seconds);
}

// ---- machine-readable results ----
//
// Every bench binary reports each measurement through ReportResult, which
// prints one `BENCH_JSON {...}` line to stdout (so CI and scripts can grep
// results out of the human-readable tables) and, when HARP_BENCH_JSON_DIR
// is set, appends the same object to $HARP_BENCH_JSON_DIR/BENCH_<bench>.json
// (JSON-lines, one object per measurement). Fields:
//   bench       bench id (one file per binary)
//   name        measurement label (config under test)
//   reps        repetitions averaged into `ns` (trees, passes, ...)
//   ns          nanoseconds per repetition
//   throughput  items per second (bench-specific item: rows, updates, ...)
//   auc         only for accuracy measurements (omitted when < 0)

// Labels are built from enum names and format strings; strip the two JSON
// metacharacters rather than pulling in a full escaper.
inline std::string JsonSafe(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '"' || c == '\\') c = '_';
  }
  return out;
}

inline void ReportResult(const std::string& bench, const std::string& name,
                         int64_t reps, double ns, double throughput,
                         double auc = -1.0) {
  std::string obj = StrFormat(
      "{\"bench\":\"%s\",\"name\":\"%s\",\"reps\":%lld,\"ns\":%.1f,"
      "\"throughput\":%.4f",
      JsonSafe(bench).c_str(), JsonSafe(name).c_str(),
      static_cast<long long>(reps), ns, throughput);
  if (auc >= 0.0) obj += StrFormat(",\"auc\":%.6f", auc);
  obj += "}";
  std::printf("BENCH_JSON %s\n", obj.c_str());
  const std::string dir = GetEnvString("HARP_BENCH_JSON_DIR", "");
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_" + JsonSafe(bench) + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "a")) {
      std::fprintf(f, "%s\n", obj.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "(json archive skipped: cannot open %s)\n",
                   path.c_str());
    }
  }
}

// TrainStats convenience: reps = trees, ns = per tree, throughput =
// histogram updates per second (the memory-bound figure of merit).
inline void ReportStats(const std::string& bench, const std::string& name,
                        const TrainStats& stats) {
  const int trees = std::max(1, stats.trees);
  ReportResult(bench, name, trees,
               static_cast<double>(stats.wall_ns) / trees,
               static_cast<double>(stats.hist_updates) /
                   std::max(1e-12, NsToSec(stats.wall_ns)));
}

// Convergence convenience: reps = trees, ns = per tree, throughput =
// trees per second, auc = final held-out AUC.
inline void ReportSeries(const std::string& bench, const std::string& name,
                         const std::vector<ConvergencePoint>& series) {
  if (series.empty()) return;
  const ConvergencePoint& last = series.back();
  const double seconds = std::max(1e-12, last.seconds);
  ReportResult(bench, name, last.trees, seconds * 1e9 / last.trees,
               static_cast<double>(last.trees) / seconds, last.auc);
}

}  // namespace harp::bench
