// Micro-benchmarks of the core kernels (google-benchmark).
//
// Not tied to a specific paper figure; used to sanity-check the building
// blocks behind them: histogram accumulation under different feature-block
// sizes (the Section IV-E write-region argument at kernel granularity),
// histogram reduction, row partitioning, split finding, quantile binning.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harpgbdt.h"
#include "common/random.h"
#include "core/hist_builder.h"
#include "core/hist_kernels.h"
#include "core/quantize.h"
#include "core/simd.h"

namespace {

using namespace harp;

struct KernelFixture {
  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;
  std::vector<MemBufEntry> entries;  // MemBuf row list over all rows
  std::vector<uint32_t> row_ids;     // gather row list over all rows
  QuantScales scales;                // round scales over `gh`
  AlignedVector<int32_t> packed;     // per-row packed quantized pairs

  static const KernelFixture& Get() {
    static KernelFixture* fixture = [] {
      auto* f = new KernelFixture();
      SyntheticSpec spec;
      spec.rows = 60000;
      spec.features = 64;
      spec.density = 0.9;
      spec.mean_distinct = 200;
      spec.seed = 1234;
      f->ds = GenerateSynthetic(spec);
      f->matrix =
          BinnedMatrix::Build(f->ds, QuantileCuts::Compute(f->ds, 256));
      Rng rng(99);
      f->gh.resize(spec.rows);
      for (auto& g : f->gh) {
        g.g = static_cast<float>(rng.Normal());
        g.h = static_cast<float>(rng.NextDouble() + 0.1);
      }
      f->entries.resize(spec.rows);
      f->row_ids.resize(spec.rows);
      for (uint32_t r = 0; r < spec.rows; ++r) {
        f->entries[r] = MemBufEntry{r, f->gh[r].g, f->gh[r].h};
        f->row_ids[r] = r;
      }
      f->scales = ComputeQuantScales(f->gh, nullptr);
      QuantizeGradients(f->gh, f->scales, /*stochastic=*/false, 0,
                        static_cast<int>(SimdLevel::kScalar), nullptr,
                        &f->packed);
      return f;
    }();
    return *fixture;
  }
};

// Histogram accumulation with a given feature-block size: the write-region
// vs redundant-read trade-off measured in isolation. Zeroing the histogram
// is BuildHist setup, not accumulation — keep it out of the timed region.
void BM_BuildHistFeatureBlocks(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const int feature_blk = static_cast<int>(state.range(0));
  const auto blocks = MakeFeatureBlocks(f.matrix.num_features(), feature_blk);
  std::vector<GHPair> hist(f.matrix.TotalBins());
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(hist.begin(), hist.end(), GHPair{});
    state.ResumeTiming();
    for (const Range& fb : blocks) {
      for (uint32_t r = 0; r < f.matrix.num_rows(); ++r) {
        AccumulateRow(f.matrix.RowBins(r), f.gh[r].g, f.gh[r].h, f.matrix,
                      hist.data(), fb, {0u, 256u});
      }
    }
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.num_rows() *
                          f.matrix.num_features());
}
BENCHMARK(BM_BuildHistFeatureBlocks)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The generic scalar AccumulateRow path (what the builders ran before the
// hist_kernels layer) against every specialized kernel, on the same 60k x
// 64 MemBuf/gather row lists. Variant 0 is the baseline; the others are
// SelectHistKernel/SelectQuantHistKernel results. Compare the per-variant
// items/s against variant 0 (or variant 1, the f64 DP hot path) to read
// the kernel-layer and quantization speedups. Every non-baseline variant
// self-verifies against the scalar f64 reference before any timing: f64
// variants must be bit-identical, quantized variants must dequantize
// within the per-slot analytic rounding bound AND match the scalar
// quantized kernel bit-for-bit.
struct KernelVariant {
  const char* label;
  bool membuf;
  bool full_bins;
  bool full_features;
  bool quant;
  SimdLevel level;
};
constexpr KernelVariant kVariants[] = {
    // baseline path
    {"generic_scalar_membuf", true, true, true, false, SimdLevel::kScalar},
    // the DP hot path (the PR 1 comparison anchor)
    {"kernel_membuf_full", true, true, true, false, SimdLevel::kScalar},
    {"kernel_membuf_full_tiled", true, true, false, false,
     SimdLevel::kScalar},
    {"kernel_membuf_filtered", true, false, true, false, SimdLevel::kScalar},
    {"kernel_gather_full", false, true, true, false, SimdLevel::kScalar},
    {"kernel_gather_full_tiled", false, true, false, false,
     SimdLevel::kScalar},
    {"kernel_gather_filtered", false, false, true, false,
     SimdLevel::kScalar},
    // explicit-AVX2 f64 and the quantized int64-cell path (the
    // quant_membuf_full_avx2 row is the ISSUE acceptance comparison
    // against kernel_membuf_full)
    {"kernel_membuf_full_avx2", true, true, true, false, SimdLevel::kAVX2},
    {"quant_membuf_full_scalar", true, true, true, true, SimdLevel::kScalar},
    {"quant_membuf_full_avx2", true, true, true, true, SimdLevel::kAVX2},
    {"quant_gather_full_avx2", false, true, true, true, SimdLevel::kAVX2},
};

void BM_AccumulateRowKernels(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const size_t variant = static_cast<size_t>(state.range(0));
  const KernelVariant& v = kVariants[variant];
  state.SetLabel(v.label);
  if (!SimdSupported(v.level)) {
    state.SkipWithError("simd level not available on this binary/CPU");
    return;
  }

  const uint32_t rows = f.matrix.num_rows();
  const uint32_t features = f.matrix.num_features();
  // Tiled variants run the same 16-feature blocking the builders would;
  // filtered variants pass a real sub-range so the filter actually prunes.
  const auto blocks = MakeFeatureBlocks(features, v.full_features ? 0 : 16);
  const Range bins = v.full_bins ? Range{0u, 256u} : Range{0u, 128u};

  HistKernelMatrix m;
  m.bins = f.matrix.BinData();
  m.bin_offsets = f.matrix.BinOffsetsData();
  m.num_features = features;
  m.gradients = f.gh.data();
  m.qgradients = f.packed.data();
  HistRowSource src;
  if (v.membuf) {
    src.entries = f.entries.data();
  } else {
    src.row_ids = f.row_ids.data();
  }
  const size_t total_bins = f.matrix.TotalBins();
  const HistKernelFn kernel =
      SelectHistKernel(v.membuf, v.full_bins, v.full_features, v.level);
  const QuantKernelFn qkernel =
      SelectQuantHistKernel(v.membuf, v.full_bins, v.full_features, v.level);

  // ---- correctness gate (untimed): scalar f64 reference over the same
  // feature blocks / bin filter this variant will run with ----
  if (variant != 0) {
    std::vector<GHPair> ref(total_bins);
    const HistKernelFn ref_kernel = SelectHistKernel(
        v.membuf, v.full_bins, v.full_features, SimdLevel::kScalar);
    for (const Range& fb : blocks) {
      ref_kernel(m, src, 0, rows, ref.data(), fb, bins);
    }
    if (!v.quant) {
      std::vector<GHPair> got(total_bins);
      for (const Range& fb : blocks) {
        kernel(m, src, 0, rows, got.data(), fb, bins);
      }
      if (std::memcmp(got.data(), ref.data(),
                      total_bins * sizeof(GHPair)) != 0) {
        std::fprintf(stderr, "FATAL: %s not bit-identical to scalar f64\n",
                     v.label);
        std::abort();
      }
    } else {
      std::vector<int64_t> qref(total_bins, 0);
      const QuantKernelFn qscalar = SelectQuantHistKernel(
          v.membuf, v.full_bins, v.full_features, SimdLevel::kScalar);
      for (const Range& fb : blocks) {
        qscalar(m, src, 0, rows, qref.data(), fb, bins);
      }
      std::vector<int64_t> qgot(total_bins, 0);
      for (const Range& fb : blocks) {
        qkernel(m, src, 0, rows, qgot.data(), fb, bins);
      }
      if (std::memcmp(qgot.data(), qref.data(),
                      total_bins * sizeof(int64_t)) != 0) {
        std::fprintf(stderr,
                     "FATAL: %s not bit-identical to scalar quant kernel\n",
                     v.label);
        std::abort();
      }
      // Dequantized cells vs the f64 reference: each slot absorbs at most
      // count * half-step of rounding error per channel.
      std::vector<uint32_t> counts(total_bins, 0);
      for (uint32_t r = 0; r < rows; ++r) {
        const uint8_t* row_bins = f.matrix.RowBins(r);
        for (const Range& fb : blocks) {
          for (uint32_t c = fb.first; c < fb.second; ++c) {
            const uint32_t bin = row_bins[c];
            if (bin < bins.first || bin >= bins.second) continue;
            ++counts[m.bin_offsets[c] + bin];
          }
        }
      }
      std::vector<GHPair> deq(total_bins);
      DequantizeHistogram(qgot.data(), deq.data(), total_bins, f.scales,
                          static_cast<int>(v.level));
      constexpr double kSlack = 1.0 + 1e-6;
      for (size_t s = 0; s < total_bins; ++s) {
        const double bound = static_cast<double>(counts[s]) * 0.5 * kSlack;
        if (std::abs(deq[s].g - ref[s].g) > bound * f.scales.g_inv ||
            std::abs(deq[s].h - ref[s].h) > bound * f.scales.h_inv) {
          std::fprintf(stderr,
                       "FATAL: %s slot %zu outside quantization bound\n",
                       v.label, s);
          std::abort();
        }
      }
    }
  }

  // ---- timed region ----
  if (v.quant) {
    std::vector<int64_t> qhist(total_bins, 0);
    for (auto _ : state) {
      state.PauseTiming();
      std::fill(qhist.begin(), qhist.end(), int64_t{0});
      state.ResumeTiming();
      for (const Range& fb : blocks) {
        qkernel(m, src, 0, rows, qhist.data(), fb, bins);
      }
      benchmark::DoNotOptimize(qhist.data());
    }
  } else {
    std::vector<GHPair> hist(total_bins);
    for (auto _ : state) {
      state.PauseTiming();
      std::fill(hist.begin(), hist.end(), GHPair{});
      state.ResumeTiming();
      if (variant == 0) {
        // Pre-kernel-layer inner loop: one scalar AccumulateRow per row.
        for (uint32_t r = 0; r < rows; ++r) {
          const MemBufEntry& e = f.entries[r];
          AccumulateRow(f.matrix.RowBins(e.rid), e.g, e.h, f.matrix,
                        hist.data(), {0u, features}, bins);
        }
      } else {
        for (const Range& fb : blocks) {
          kernel(m, src, 0, rows, hist.data(), fb, bins);
        }
      }
      benchmark::DoNotOptimize(hist.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * rows * features);
}
BENCHMARK(BM_AccumulateRowKernels)
    ->DenseRange(0, static_cast<int>(std::size(kVariants)) - 1);

void BM_HistogramReduce(benchmark::State& state) {
  const size_t bins = 32768;
  const int replicas = static_cast<int>(state.range(0));
  std::vector<std::vector<GHPair>> parts(static_cast<size_t>(replicas),
                                         std::vector<GHPair>(bins,
                                                             GHPair{1, 1}));
  std::vector<GHPair> dst(bins);
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(dst.begin(), dst.end(), GHPair{});
    state.ResumeTiming();
    for (const auto& part : parts) {
      AddHistogram(dst.data(), part.data(), bins);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * bins * replicas);
}
BENCHMARK(BM_HistogramReduce)->Arg(2)->Arg(8)->Arg(32);

void BM_HistogramSubtract(benchmark::State& state) {
  const size_t bins = 32768;
  std::vector<GHPair> parent(bins, GHPair{3, 3});
  std::vector<GHPair> sibling(bins, GHPair{1, 1});
  std::vector<GHPair> child(bins);
  for (auto _ : state) {
    SubtractHistogram(child.data(), parent.data(), sibling.data(), bins);
    benchmark::DoNotOptimize(child.data());
  }
  state.SetItemsProcessed(state.iterations() * bins);
}
BENCHMARK(BM_HistogramSubtract);

ThreadPool& BenchPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultThreads());
  return *pool;
}

// Bench-local replica of the pre-arena pooled ApplySplit (the path a
// 60k-row node actually took): pass 1 partitions each thread's range into
// chunk-private push_back buffers allocated per split, pass 2 resizes the
// per-node storage and concatenates the buffers into it. Every element is
// moved twice and every split allocates — the behaviour the arena
// partitioner removes.
template <typename Elem, typename GetRid>
void TwoPassPartition(const std::vector<Elem>& parent,
                      const BinnedMatrix& matrix, uint32_t feature,
                      uint32_t split_bin, bool default_left, GetRid get_rid,
                      std::vector<Elem>* left, std::vector<Elem>* right,
                      ThreadPool* pool) {
  const int64_t n = static_cast<int64_t>(parent.size());
  const int chunks = pool->num_threads();
  const int64_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::vector<Elem>> left_parts(static_cast<size_t>(chunks));
  std::vector<std::vector<Elem>> right_parts(static_cast<size_t>(chunks));
  pool->RunOnAllThreads([&](int thread_id) {
    const int64_t begin = static_cast<int64_t>(thread_id) * chunk;
    const int64_t end = std::min<int64_t>(n, begin + chunk);
    if (begin >= end) return;
    auto& lp = left_parts[static_cast<size_t>(thread_id)];
    auto& rp = right_parts[static_cast<size_t>(thread_id)];
    for (int64_t i = begin; i < end; ++i) {
      const Elem& e = parent[static_cast<size_t>(i)];
      const uint8_t bin = matrix.RowBins(get_rid(e))[feature];
      const bool goes_left = (bin == 0) ? default_left : (bin <= split_bin);
      (goes_left ? lp : rp).push_back(e);
    }
  });
  std::vector<size_t> left_offset(static_cast<size_t>(chunks) + 1, 0);
  std::vector<size_t> right_offset(static_cast<size_t>(chunks) + 1, 0);
  for (int c = 0; c < chunks; ++c) {
    left_offset[static_cast<size_t>(c) + 1] =
        left_offset[static_cast<size_t>(c)] +
        left_parts[static_cast<size_t>(c)].size();
    right_offset[static_cast<size_t>(c) + 1] =
        right_offset[static_cast<size_t>(c)] +
        right_parts[static_cast<size_t>(c)].size();
  }
  left->resize(left_offset[static_cast<size_t>(chunks)]);
  right->resize(right_offset[static_cast<size_t>(chunks)]);
  pool->RunOnAllThreads([&](int thread_id) {
    const size_t c = static_cast<size_t>(thread_id);
    std::copy(left_parts[c].begin(), left_parts[c].end(),
              left->begin() + static_cast<int64_t>(left_offset[c]));
    std::copy(right_parts[c].begin(), right_parts[c].end(),
              right->begin() + static_cast<int64_t>(right_offset[c]));
  });
}

// Single split of the 60k-row root under production conditions (pool
// given): arg 0 picks the old two-pass baseline (0) or the arena
// count/scan/scatter (1), arg 1 picks the layout (gather row ids vs
// MemBuf triples). The timed region is the full split transaction as the
// builder loop issues it — partition the node AND produce both children's
// gradient sums (the old path followed every split with O(n) child
// NodeSum scans; the arena fuses the sums into the count pass, so its
// NodeSum calls are O(1) lookups). Per-iteration state reset stays out of
// the timed region. The arena variant reports steady_allocs — partitioner
// grow events after the first iteration — which must be 0.
void BM_ApplySplit(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const bool arena = state.range(0) != 0;
  const bool membuf = state.range(1) != 0;
  state.SetLabel(std::string(arena ? "arena" : "two_pass") +
                 (membuf ? "_membuf" : "_gather"));
  ThreadPool& pool = BenchPool();
  const uint32_t feature = 3;
  const uint32_t split_bin = std::max(1u, f.matrix.NumBins(feature) / 2);

  if (!arena) {
    if (membuf) {
      std::vector<MemBufEntry> parent;
      std::vector<MemBufEntry> left;
      std::vector<MemBufEntry> right;
      for (auto _ : state) {
        state.PauseTiming();
        parent = f.entries;
        std::vector<MemBufEntry>().swap(left);
        std::vector<MemBufEntry>().swap(right);
        state.ResumeTiming();
        TwoPassPartition(parent, f.matrix, feature, split_bin, false,
                         [](const MemBufEntry& e) { return e.rid; }, &left,
                         &right, &pool);
        GHPair left_sum;
        GHPair right_sum;
        for (const MemBufEntry& e : left) left_sum.Add(e.g, e.h);
        for (const MemBufEntry& e : right) right_sum.Add(e.g, e.h);
        benchmark::DoNotOptimize(left_sum);
        benchmark::DoNotOptimize(right_sum);
        benchmark::DoNotOptimize(left.data());
        benchmark::DoNotOptimize(right.data());
      }
    } else {
      std::vector<uint32_t> parent;
      std::vector<uint32_t> left;
      std::vector<uint32_t> right;
      for (auto _ : state) {
        state.PauseTiming();
        parent = f.row_ids;
        std::vector<uint32_t>().swap(left);
        std::vector<uint32_t>().swap(right);
        state.ResumeTiming();
        TwoPassPartition(parent, f.matrix, feature, split_bin, false,
                         [](uint32_t rid) { return rid; }, &left, &right,
                         &pool);
        GHPair left_sum;
        GHPair right_sum;
        for (uint32_t rid : left) left_sum.Add(f.gh[rid].g, f.gh[rid].h);
        for (uint32_t rid : right) right_sum.Add(f.gh[rid].g, f.gh[rid].h);
        benchmark::DoNotOptimize(left_sum);
        benchmark::DoNotOptimize(right_sum);
        benchmark::DoNotOptimize(left.data());
        benchmark::DoNotOptimize(right.data());
      }
    }
  } else {
    RowPartitioner partitioner(f.matrix.num_rows(), membuf);
    int64_t warm_grow_events = -1;
    for (auto _ : state) {
      state.PauseTiming();
      partitioner.Reset(f.gh, 4, &pool);
      state.ResumeTiming();
      partitioner.ApplySplit(0, 1, 2, f.matrix, feature, split_bin, false,
                             &pool);
      GHPair left_sum = partitioner.NodeSum(1);
      GHPair right_sum = partitioner.NodeSum(2);
      benchmark::DoNotOptimize(left_sum);
      benchmark::DoNotOptimize(right_sum);
      benchmark::DoNotOptimize(partitioner.NodeSize(1));
      if (warm_grow_events < 0) {
        state.PauseTiming();
        warm_grow_events = partitioner.stats().grow_events;
        state.ResumeTiming();
      }
    }
    state.counters["steady_allocs"] = static_cast<double>(
        partitioner.stats().grow_events - std::max<int64_t>(0,
                                                            warm_grow_events));
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.num_rows());
}
BENCHMARK(BM_ApplySplit)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

// Applying a TopK batch of K node splits: per-node application (arg 1 = 0;
// one internally parallel ApplySplit per node) vs the batched path (arg 1
// = 1; one count region + one scatter region for the whole batch). The
// `barriers` counter is the partitioner's parallel-region count per
// iteration — batched stays at 2 regardless of K, per-node pays 2 per
// large node.
void BM_ApplySplitBatch(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const size_t batch_k = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  state.SetLabel(std::string(batched ? "batched" : "per_node") + "_k" +
                 std::to_string(batch_k));
  ThreadPool* pool = &BenchPool();
  // One feature per tree level so successive splits keep cutting.
  const uint32_t level_features[] = {3, 5, 7, 9};

  RowPartitioner partitioner(f.matrix.num_rows(), true);
  std::vector<SplitTask> tasks;
  int64_t barriers = 0;
  for (auto _ : state) {
    state.PauseTiming();
    partitioner.Reset(f.gh, 64, pool);
    // Pre-split (setup) until the frontier holds batch_k nodes.
    std::vector<int> frontier{0};
    int next_id = 1;
    size_t level = 0;
    while (frontier.size() < batch_k) {
      const uint32_t feat = level_features[level++];
      const uint32_t bin = std::max(1u, f.matrix.NumBins(feat) / 2);
      std::vector<int> next_frontier;
      for (int node : frontier) {
        partitioner.ApplySplit(node, next_id, next_id + 1, f.matrix, feat,
                               bin, false, nullptr);
        next_frontier.push_back(next_id);
        next_frontier.push_back(next_id + 1);
        next_id += 2;
      }
      frontier = std::move(next_frontier);
    }
    const uint32_t feat = level_features[level];
    const uint32_t bin = std::max(1u, f.matrix.NumBins(feat) / 2);
    tasks.clear();
    for (int node : frontier) {
      tasks.push_back(SplitTask{node, next_id, next_id + 1, feat, bin,
                                false});
      next_id += 2;
    }
    const int64_t barriers_before = partitioner.stats().barriers;
    state.ResumeTiming();
    if (batched) {
      partitioner.ApplySplitBatch(tasks, f.matrix, pool);
    } else {
      for (const SplitTask& t : tasks) {
        partitioner.ApplySplit(t.node_id, t.left_id, t.right_id, f.matrix,
                               t.feature, t.split_bin, t.default_left, pool);
      }
    }
    benchmark::DoNotOptimize(partitioner.NodeSize(tasks.back().left_id));
    state.PauseTiming();
    barriers += partitioner.stats().barriers - barriers_before;
    state.ResumeTiming();
  }
  state.counters["barriers"] = benchmark::Counter(
      static_cast<double>(barriers), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * f.matrix.num_rows());
}
BENCHMARK(BM_ApplySplitBatch)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_FindSplit(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  std::vector<GHPair> hist(f.matrix.TotalBins());
  GHPair total;
  for (uint32_t r = 0; r < f.matrix.num_rows(); ++r) {
    AccumulateRow(f.matrix.RowBins(r), f.gh[r].g, f.gh[r].h, f.matrix,
                  hist.data(), {0u, f.matrix.num_features()}, {0u, 256u});
    total.Add(f.gh[r].g, f.gh[r].h);
  }
  TrainParams params;
  const SplitEvaluator eval(params);
  for (auto _ : state) {
    SplitInfo split = eval.FindBestSplit(f.matrix, hist.data(), total, 0,
                                         f.matrix.num_features());
    benchmark::DoNotOptimize(split);
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.TotalBins());
}
BENCHMARK(BM_FindSplit);

void BM_QuantileCompute(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  for (auto _ : state) {
    QuantileCuts cuts = QuantileCuts::Compute(f.ds, 256);
    benchmark::DoNotOptimize(cuts.cuts().data());
  }
}
BENCHMARK(BM_QuantileCompute);

void BM_AucMetric(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  Rng rng(5);
  std::vector<double> scores(f.ds.num_rows());
  for (auto& s : scores) s = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Auc(f.ds.labels(), scores));
  }
  state.SetItemsProcessed(state.iterations() * f.ds.num_rows());
}
BENCHMARK(BM_AucMetric);

}  // namespace

BENCHMARK_MAIN();
