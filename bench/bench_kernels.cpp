// Micro-benchmarks of the core kernels (google-benchmark).
//
// Not tied to a specific paper figure; used to sanity-check the building
// blocks behind them: histogram accumulation under different feature-block
// sizes (the Section IV-E write-region argument at kernel granularity),
// histogram reduction, row partitioning, split finding, quantile binning.
#include <benchmark/benchmark.h>

#include "harpgbdt.h"
#include "common/random.h"
#include "core/hist_builder.h"
#include "core/hist_kernels.h"

namespace {

using namespace harp;

struct KernelFixture {
  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;
  std::vector<MemBufEntry> entries;  // MemBuf row list over all rows
  std::vector<uint32_t> row_ids;     // gather row list over all rows

  static const KernelFixture& Get() {
    static KernelFixture* fixture = [] {
      auto* f = new KernelFixture();
      SyntheticSpec spec;
      spec.rows = 60000;
      spec.features = 64;
      spec.density = 0.9;
      spec.mean_distinct = 200;
      spec.seed = 1234;
      f->ds = GenerateSynthetic(spec);
      f->matrix =
          BinnedMatrix::Build(f->ds, QuantileCuts::Compute(f->ds, 256));
      Rng rng(99);
      f->gh.resize(spec.rows);
      for (auto& g : f->gh) {
        g.g = static_cast<float>(rng.Normal());
        g.h = static_cast<float>(rng.NextDouble() + 0.1);
      }
      f->entries.resize(spec.rows);
      f->row_ids.resize(spec.rows);
      for (uint32_t r = 0; r < spec.rows; ++r) {
        f->entries[r] = MemBufEntry{r, f->gh[r].g, f->gh[r].h};
        f->row_ids[r] = r;
      }
      return f;
    }();
    return *fixture;
  }
};

// Histogram accumulation with a given feature-block size: the write-region
// vs redundant-read trade-off measured in isolation. Zeroing the histogram
// is BuildHist setup, not accumulation — keep it out of the timed region.
void BM_BuildHistFeatureBlocks(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const int feature_blk = static_cast<int>(state.range(0));
  const auto blocks = MakeFeatureBlocks(f.matrix.num_features(), feature_blk);
  std::vector<GHPair> hist(f.matrix.TotalBins());
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(hist.begin(), hist.end(), GHPair{});
    state.ResumeTiming();
    for (const Range& fb : blocks) {
      for (uint32_t r = 0; r < f.matrix.num_rows(); ++r) {
        AccumulateRow(f.matrix.RowBins(r), f.gh[r].g, f.gh[r].h, f.matrix,
                      hist.data(), fb, {0u, 256u});
      }
    }
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.num_rows() *
                          f.matrix.num_features());
}
BENCHMARK(BM_BuildHistFeatureBlocks)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The generic scalar AccumulateRow path (what the builders ran before the
// hist_kernels layer) against every specialized kernel, on the same 60k x
// 64 MemBuf/gather row lists. Variant 0 is the baseline; the others are
// SelectHistKernel results. Compare the per-variant items/s against
// variant 0 to read the kernel-layer speedup.
struct KernelVariant {
  const char* label;
  bool membuf;
  bool full_bins;
  bool full_features;
};
constexpr KernelVariant kVariants[] = {
    {"generic_scalar_membuf", true, true, true},       // baseline path
    {"kernel_membuf_full", true, true, true},          // the DP hot path
    {"kernel_membuf_full_tiled", true, true, false},   // feature-tiled
    {"kernel_membuf_filtered", true, false, true},     // bin-filtered
    {"kernel_gather_full", false, true, true},
    {"kernel_gather_full_tiled", false, true, false},
    {"kernel_gather_filtered", false, false, true},
};

void BM_AccumulateRowKernels(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const size_t variant = static_cast<size_t>(state.range(0));
  const KernelVariant& v = kVariants[variant];
  state.SetLabel(v.label);

  const uint32_t rows = f.matrix.num_rows();
  const uint32_t features = f.matrix.num_features();
  // Tiled variants run the same 16-feature blocking the builders would;
  // filtered variants pass a real sub-range so the filter actually prunes.
  const auto blocks = MakeFeatureBlocks(features, v.full_features ? 0 : 16);
  const Range bins = v.full_bins ? Range{0u, 256u} : Range{0u, 128u};

  HistKernelMatrix m;
  m.bins = f.matrix.BinData();
  m.bin_offsets = f.matrix.BinOffsetsData();
  m.num_features = features;
  m.gradients = f.gh.data();
  HistRowSource src;
  if (v.membuf) {
    src.entries = f.entries.data();
  } else {
    src.row_ids = f.row_ids.data();
  }
  const HistKernelFn kernel =
      SelectHistKernel(v.membuf, v.full_bins, v.full_features);

  std::vector<GHPair> hist(f.matrix.TotalBins());
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(hist.begin(), hist.end(), GHPair{});
    state.ResumeTiming();
    if (variant == 0) {
      // Pre-kernel-layer inner loop: one scalar AccumulateRow per row.
      for (uint32_t r = 0; r < rows; ++r) {
        const MemBufEntry& e = f.entries[r];
        AccumulateRow(f.matrix.RowBins(e.rid), e.g, e.h, f.matrix,
                      hist.data(), {0u, features}, bins);
      }
    } else {
      for (const Range& fb : blocks) {
        kernel(m, src, 0, rows, hist.data(), fb, bins);
      }
    }
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * features);
}
BENCHMARK(BM_AccumulateRowKernels)
    ->DenseRange(0, static_cast<int>(std::size(kVariants)) - 1);

void BM_HistogramReduce(benchmark::State& state) {
  const size_t bins = 32768;
  const int replicas = static_cast<int>(state.range(0));
  std::vector<std::vector<GHPair>> parts(static_cast<size_t>(replicas),
                                         std::vector<GHPair>(bins,
                                                             GHPair{1, 1}));
  std::vector<GHPair> dst(bins);
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(dst.begin(), dst.end(), GHPair{});
    state.ResumeTiming();
    for (const auto& part : parts) {
      AddHistogram(dst.data(), part.data(), bins);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * bins * replicas);
}
BENCHMARK(BM_HistogramReduce)->Arg(2)->Arg(8)->Arg(32);

void BM_HistogramSubtract(benchmark::State& state) {
  const size_t bins = 32768;
  std::vector<GHPair> parent(bins, GHPair{3, 3});
  std::vector<GHPair> sibling(bins, GHPair{1, 1});
  std::vector<GHPair> child(bins);
  for (auto _ : state) {
    SubtractHistogram(child.data(), parent.data(), sibling.data(), bins);
    benchmark::DoNotOptimize(child.data());
  }
  state.SetItemsProcessed(state.iterations() * bins);
}
BENCHMARK(BM_HistogramSubtract);

void BM_RowPartition(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const bool membuf = state.range(0) != 0;
  for (auto _ : state) {
    RowPartitioner partitioner(f.matrix.num_rows(), membuf);
    partitioner.Reset(f.gh, 4, nullptr);
    partitioner.ApplySplit(0, 1, 2, f.matrix, 3,
                           std::max(1u, f.matrix.NumBins(3) / 2), false,
                           nullptr);
    benchmark::DoNotOptimize(partitioner.NodeSize(1));
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.num_rows());
}
BENCHMARK(BM_RowPartition)->Arg(0)->Arg(1);

void BM_FindSplit(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  std::vector<GHPair> hist(f.matrix.TotalBins());
  GHPair total;
  for (uint32_t r = 0; r < f.matrix.num_rows(); ++r) {
    AccumulateRow(f.matrix.RowBins(r), f.gh[r].g, f.gh[r].h, f.matrix,
                  hist.data(), {0u, f.matrix.num_features()}, {0u, 256u});
    total.Add(f.gh[r].g, f.gh[r].h);
  }
  TrainParams params;
  const SplitEvaluator eval(params);
  for (auto _ : state) {
    SplitInfo split = eval.FindBestSplit(f.matrix, hist.data(), total, 0,
                                         f.matrix.num_features());
    benchmark::DoNotOptimize(split);
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.TotalBins());
}
BENCHMARK(BM_FindSplit);

void BM_QuantileCompute(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  for (auto _ : state) {
    QuantileCuts cuts = QuantileCuts::Compute(f.ds, 256);
    benchmark::DoNotOptimize(cuts.cuts().data());
  }
}
BENCHMARK(BM_QuantileCompute);

void BM_AucMetric(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  Rng rng(5);
  std::vector<double> scores(f.ds.num_rows());
  for (auto& s : scores) s = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Auc(f.ds.labels(), scores));
  }
  state.SetItemsProcessed(state.iterations() * f.ds.num_rows());
}
BENCHMARK(BM_AucMetric);

}  // namespace

BENCHMARK_MAIN();
