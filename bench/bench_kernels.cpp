// Micro-benchmarks of the core kernels (google-benchmark).
//
// Not tied to a specific paper figure; used to sanity-check the building
// blocks behind them: histogram accumulation under different feature-block
// sizes (the Section IV-E write-region argument at kernel granularity),
// histogram reduction, row partitioning, split finding, quantile binning.
#include <benchmark/benchmark.h>

#include "harpgbdt.h"
#include "common/random.h"
#include "core/hist_builder.h"

namespace {

using namespace harp;

struct KernelFixture {
  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;

  static const KernelFixture& Get() {
    static KernelFixture* fixture = [] {
      auto* f = new KernelFixture();
      SyntheticSpec spec;
      spec.rows = 60000;
      spec.features = 64;
      spec.density = 0.9;
      spec.mean_distinct = 200;
      spec.seed = 1234;
      f->ds = GenerateSynthetic(spec);
      f->matrix =
          BinnedMatrix::Build(f->ds, QuantileCuts::Compute(f->ds, 256));
      Rng rng(99);
      f->gh.resize(spec.rows);
      for (auto& g : f->gh) {
        g.g = static_cast<float>(rng.Normal());
        g.h = static_cast<float>(rng.NextDouble() + 0.1);
      }
      return f;
    }();
    return *fixture;
  }
};

// Histogram accumulation with a given feature-block size: the write-region
// vs redundant-read trade-off measured in isolation.
void BM_BuildHistFeatureBlocks(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const int feature_blk = static_cast<int>(state.range(0));
  const auto blocks = MakeFeatureBlocks(f.matrix.num_features(), feature_blk);
  std::vector<GHPair> hist(f.matrix.TotalBins());
  for (auto _ : state) {
    std::fill(hist.begin(), hist.end(), GHPair{});
    for (const Range& fb : blocks) {
      for (uint32_t r = 0; r < f.matrix.num_rows(); ++r) {
        AccumulateRow(f.matrix.RowBins(r), f.gh[r].g, f.gh[r].h, f.matrix,
                      hist.data(), fb, {0u, 256u});
      }
    }
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.num_rows() *
                          f.matrix.num_features());
}
BENCHMARK(BM_BuildHistFeatureBlocks)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_HistogramReduce(benchmark::State& state) {
  const size_t bins = 32768;
  const int replicas = static_cast<int>(state.range(0));
  std::vector<std::vector<GHPair>> parts(static_cast<size_t>(replicas),
                                         std::vector<GHPair>(bins,
                                                             GHPair{1, 1}));
  std::vector<GHPair> dst(bins);
  for (auto _ : state) {
    std::fill(dst.begin(), dst.end(), GHPair{});
    for (const auto& part : parts) {
      AddHistogram(dst.data(), part.data(), bins);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * bins * replicas);
}
BENCHMARK(BM_HistogramReduce)->Arg(2)->Arg(8)->Arg(32);

void BM_HistogramSubtract(benchmark::State& state) {
  const size_t bins = 32768;
  std::vector<GHPair> parent(bins, GHPair{3, 3});
  std::vector<GHPair> sibling(bins, GHPair{1, 1});
  std::vector<GHPair> child(bins);
  for (auto _ : state) {
    SubtractHistogram(child.data(), parent.data(), sibling.data(), bins);
    benchmark::DoNotOptimize(child.data());
  }
  state.SetItemsProcessed(state.iterations() * bins);
}
BENCHMARK(BM_HistogramSubtract);

void BM_RowPartition(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  const bool membuf = state.range(0) != 0;
  for (auto _ : state) {
    RowPartitioner partitioner(f.matrix.num_rows(), membuf);
    partitioner.Reset(f.gh, 4, nullptr);
    partitioner.ApplySplit(0, 1, 2, f.matrix, 3,
                           std::max(1u, f.matrix.NumBins(3) / 2), false,
                           nullptr);
    benchmark::DoNotOptimize(partitioner.NodeSize(1));
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.num_rows());
}
BENCHMARK(BM_RowPartition)->Arg(0)->Arg(1);

void BM_FindSplit(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  std::vector<GHPair> hist(f.matrix.TotalBins());
  GHPair total;
  for (uint32_t r = 0; r < f.matrix.num_rows(); ++r) {
    AccumulateRow(f.matrix.RowBins(r), f.gh[r].g, f.gh[r].h, f.matrix,
                  hist.data(), {0u, f.matrix.num_features()}, {0u, 256u});
    total.Add(f.gh[r].g, f.gh[r].h);
  }
  TrainParams params;
  const SplitEvaluator eval(params);
  for (auto _ : state) {
    SplitInfo split = eval.FindBestSplit(f.matrix, hist.data(), total, 0,
                                         f.matrix.num_features());
    benchmark::DoNotOptimize(split);
  }
  state.SetItemsProcessed(state.iterations() * f.matrix.TotalBins());
}
BENCHMARK(BM_FindSplit);

void BM_QuantileCompute(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  for (auto _ : state) {
    QuantileCuts cuts = QuantileCuts::Compute(f.ds, 256);
    benchmark::DoNotOptimize(cuts.cuts().data());
  }
}
BENCHMARK(BM_QuantileCompute);

void BM_AucMetric(benchmark::State& state) {
  const KernelFixture& f = KernelFixture::Get();
  Rng rng(5);
  std::vector<double> scores(f.ds.num_rows());
  for (auto& s : scores) s = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Auc(f.ds.labels(), scores));
  }
  state.SetItemsProcessed(state.iterations() * f.ds.num_rows());
}
BENCHMARK(BM_AucMetric);

}  // namespace

BENCHMARK_MAIN();
