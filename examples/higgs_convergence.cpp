// HIGGS-style physics classification: compare the three parallelization
// strategies on one learning problem and watch accuracy-per-second — the
// paper's headline scenario (Sections V-E, V-F) as a runnable example.
//
// Usage: higgs_convergence [scale] [trees]
#include <cstdio>
#include <cstdlib>

#include "harpgbdt.h"

int main(int argc, char** argv) {
  using namespace harp;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  const int trees = argc > 2 ? std::atoi(argv[2]) : 30;

  const Dataset all = GenerateSynthetic(HiggsSpec(scale));
  const uint32_t train_rows = all.num_rows() * 4 / 5;
  const Dataset train = all.Slice(0, train_rows);
  const Dataset test = all.Slice(train_rows, all.num_rows());
  std::printf("HIGGS-like: %u train / %u test rows, %u features\n",
              train.num_rows(), test.num_rows(), train.num_features());

  ThreadPool pool(ThreadPool::DefaultThreads());
  BinnedMatrix matrix = BinnedMatrix::Build(
      train, QuantileCuts::Compute(train, 256, &pool), &pool);
  matrix.EnsureColumnMajor(&pool);

  auto report = [&](const char* name, const GbdtModel& model,
                    const TrainStats& stats) {
    const double auc = Auc(test.labels(), model.Predict(test, &pool));
    std::printf("%-22s %8.1f ms/tree   test AUC %.4f   barrier %4.1f%%  "
                "regions/tree %lld\n",
                name, stats.SecondsPerTree() * 1e3, auc,
                stats.sync.BarrierOverhead() * 100.0,
                static_cast<long long>(stats.sync.parallel_regions /
                                       std::max(1, stats.trees)));
  };

  {
    TrainParams p;
    p.num_trees = trees;
    p.tree_size = 8;
    p.grow_policy = GrowPolicy::kLeafwise;
    TrainStats stats;
    baselines::XgbHistTrainer trainer(p);
    report("XGBoost-style (hist)",
           trainer.TrainBinned(matrix, train.labels(), &stats), stats);
  }
  {
    TrainParams p;
    p.num_trees = trees;
    p.tree_size = 8;
    p.grow_policy = GrowPolicy::kLeafwise;
    TrainStats stats;
    baselines::LightGbmTrainer trainer(p);
    report("LightGBM-style",
           trainer.TrainBinned(matrix, train.labels(), &stats), stats);
  }
  {
    TrainParams p;
    p.num_trees = trees;
    p.tree_size = 8;
    p.grow_policy = GrowPolicy::kTopK;
    p.topk = 32;
    p.mode = ParallelMode::kASYNC;
    p.node_blk_size = 32;
    TrainStats stats;
    GbdtTrainer trainer(p);
    report("HarpGBDT (TopK+ASYNC)",
           trainer.TrainBinned(matrix, train.labels(), &stats), stats);
  }
  return 0;
}
