// Fat-matrix block tuning: YFCC-shaped input (4096 features, 69% missing)
// and a walk through the block-parameter space, showing why standard data
// parallelism struggles on wide inputs and how <feature_blk, node_blk>
// tuning recovers the performance (Sections IV-A, V-F).
//
// Usage: yfcc_block_tuning [scale]
#include <cstdio>
#include <cstdlib>

#include "harpgbdt.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace harp;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.4;

  const Dataset train = GenerateSynthetic(YfccSpec(scale));
  ThreadPool pool(ThreadPool::DefaultThreads());
  const BinnedMatrix matrix = BinnedMatrix::Build(
      train, QuantileCuts::Compute(train, 256, &pool), &pool);
  std::printf("YFCC-like fat matrix: %u rows x %u features, S=%.2f, "
              "%u histogram slots (%.1f MB per node histogram)\n\n",
              train.num_rows(), train.num_features(), train.Sparseness(),
              matrix.TotalBins(),
              matrix.TotalBins() * 16.0 / (1024.0 * 1024.0));

  auto run = [&](const char* label, ParallelMode mode, int feature_blk,
                 int node_blk) {
    TrainParams p;
    p.num_trees = 3;
    p.tree_size = 8;
    p.grow_policy = GrowPolicy::kTopK;
    p.topk = 32;
    p.mode = mode;
    p.feature_blk_size = feature_blk;
    p.node_blk_size = node_blk;
    TrainStats stats;
    GbdtTrainer(p).TrainBinned(matrix, train.labels(), &stats);
    std::printf("%-34s %8.0f ms/tree   write-window %s\n", label,
                stats.SecondsPerTree() * 1e3,
                HumanBytes(16.0 *
                           (feature_blk == 0
                                ? matrix.TotalBins()
                                : matrix.TotalBins() /
                                      (train.num_features() /
                                       static_cast<uint32_t>(feature_blk))))
                    .c_str());
  };

  std::printf("-- standard configurations --\n");
  run("DP, whole-row writes (f=0, n=1)", ParallelMode::kDP, 0, 1);
  run("MP, classic feature-wise (f=1)", ParallelMode::kMP, 1, 1);
  std::printf("\n-- block-tuned (Section IV-A) --\n");
  run("MP, f=64,  n=4", ParallelMode::kMP, 64, 4);
  run("MP, f=256, n=8", ParallelMode::kMP, 256, 8);
  run("MP, f=1024, n=8", ParallelMode::kMP, 1024, 8);
  std::printf("\nThe block-tuned MP rows should be the fastest: the write "
              "window stays cache-sized while each row block is read far "
              "fewer times than classic feature-wise MP.\n");
  return 0;
}
