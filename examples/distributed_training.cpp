// Distributed training demo (the paper's Section VI future-work direction,
// simulated in process): shard rows over W workers, aggregate histograms
// through the compressed exchange, and verify that the model is identical
// for every worker count and both exchange encodings while communication
// volume grows.
//
// Usage: distributed_training [rows] [trees]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harpgbdt.h"
#include "distributed/dist_gbdt.h"

int main(int argc, char** argv) {
  using namespace harp;
  const uint32_t rows = argc > 1
                            ? static_cast<uint32_t>(std::atoi(argv[1]))
                            : 20000;
  const int trees = argc > 2 ? std::atoi(argv[2]) : 10;

  SyntheticSpec spec = HiggsSpec(1.0);
  spec.rows = rows;
  const Dataset data = GenerateSynthetic(spec);
  std::printf("dataset: %u rows x %u features\n\n", data.num_rows(),
              data.num_features());

  TrainParams params;
  params.num_trees = trees;
  params.tree_size = 6;
  params.grow_policy = GrowPolicy::kTopK;
  params.topk = 16;

  std::printf("%8s %8s %10s %10s %14s %14s %12s\n", "workers", "comm",
              "time", "AUC", "allreduces", "hist wire", "vs dense");
  for (int workers : {1, 2, 4, 8}) {
    std::string dense_model;
    for (const char* compress : {"dense", "sparse"}) {
      params.comm_compress = compress;
      DistributedResult result =
          DistributedGbdt::Train(data, workers, params);
      const double auc = Auc(data.labels(), result.model.Predict(data));
      const std::string serialized = SerializeModel(result.model);
      if (dense_model.empty()) {
        dense_model = serialized;
      } else if (serialized != dense_model) {
        std::printf("BUG: sparse model differs from dense at %d workers\n",
                    workers);
        return 1;
      }
      const CommStats& c = result.comm;
      const double ratio =
          c.hist_wire_bytes > 0
              ? static_cast<double>(c.hist_dense_bytes) /
                    static_cast<double>(c.hist_wire_bytes)
              : 1.0;
      std::printf("%8d %8s %9.2fs %10.4f %14lld %14s %11.2fx\n", workers,
                  compress, result.seconds, auc,
                  static_cast<long long>(c.allreduce_calls),
                  HumanBytes(static_cast<double>(c.hist_wire_bytes)).c_str(),
                  ratio);
    }
  }
  std::printf(
      "\nThe AUC column is constant and the dense/sparse models are "
      "bit-identical: histogram aggregation makes the learned model "
      "independent of the sharding, and the SparseHistogram exchange is an "
      "exact encoding. Wire bytes shrink with the touched-bin fraction — "
      "the communication-efficient direction (PV-Tree etc., Section VI) "
      "taken by this repo's compressed exchange.\n");
  return 0;
}
