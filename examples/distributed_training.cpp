// Distributed training demo (the paper's Section VI future-work direction,
// simulated in process): shard rows over W workers, aggregate histograms
// by allreduce, and verify that the model is identical for every worker
// count while communication volume grows.
//
// Usage: distributed_training [rows] [trees]
#include <cstdio>
#include <cstdlib>

#include "harpgbdt.h"
#include "distributed/dist_gbdt.h"

int main(int argc, char** argv) {
  using namespace harp;
  const uint32_t rows = argc > 1
                            ? static_cast<uint32_t>(std::atoi(argv[1]))
                            : 20000;
  const int trees = argc > 2 ? std::atoi(argv[2]) : 10;

  SyntheticSpec spec = HiggsSpec(1.0);
  spec.rows = rows;
  const Dataset data = GenerateSynthetic(spec);
  std::printf("dataset: %u rows x %u features\n\n", data.num_rows(),
              data.num_features());

  TrainParams params;
  params.num_trees = trees;
  params.tree_size = 6;
  params.grow_policy = GrowPolicy::kTopK;
  params.topk = 16;

  std::printf("%8s %10s %10s %14s %16s %12s\n", "workers", "time", "AUC",
              "allreduces", "comm volume", "per tree");
  for (int workers : {1, 2, 4, 8}) {
    const DistributedResult result =
        DistributedGbdt::Train(data, workers, params);
    const double auc = Auc(data.labels(), result.model.Predict(data));
    std::printf("%8d %9.2fs %10.4f %14lld %16s %12s\n", workers,
                result.seconds, auc,
                static_cast<long long>(result.comm.allreduce_calls),
                HumanBytes(static_cast<double>(result.comm.allreduce_bytes))
                    .c_str(),
                HumanBytes(static_cast<double>(result.comm.allreduce_bytes) /
                           trees)
                    .c_str());
  }
  std::printf("\nThe AUC column is constant: histogram aggregation makes "
              "the learned model independent of the sharding. Communication "
              "volume grows with the world size and with the model size "
              "(histogram bytes per tree), which is why communication-"
              "efficient variants (PV-Tree etc., Section VI) exist.\n");
  return 0;
}
