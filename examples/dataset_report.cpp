// Prints the Table III shape statistics for every built-in dataset preset,
// verifying that the synthetic generators match the paper's N/M/S/CV.
//
// Usage: dataset_report [scale]
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "harpgbdt.h"

int main(int argc, char** argv) {
  using namespace harp;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;

  std::printf("Table III shape statistics at scale %.2f (paper values in "
              "parentheses)\n\n%s\n",
              scale, ShapeHeader().c_str());
  struct Row {
    SyntheticSpec spec;
    const char* paper;
  };
  const Row rows[] = {
      {HiggsSpec(scale), "(paper: M=28   S=0.92 CV=0.40)"},
      {AirlineSpec(scale), "(paper: M=8    S=1.00 CV=0.89)"},
      {CriteoSpec(scale), "(paper: M=65   S=0.96 CV=0.58)"},
      {YfccSpec(scale), "(paper: M=4096 S=0.31 CV=0.06)"},
      {SynsetSpec(scale), "(paper: M=128  S=1.00 CV=0.00)"},
  };
  ThreadPool pool(ThreadPool::DefaultThreads());
  for (const Row& row : rows) {
    const Dataset ds = GenerateSynthetic(row.spec, &pool);
    IngestStats ingest;
    ingest.rows = ds.num_rows();
    ingest.bytes = ds.MemoryBytes();
    ingest.threads = pool.num_threads();
    const Stopwatch sketch_watch;
    QuantileCuts cuts = QuantileCuts::Compute(ds, 256, &pool);
    ingest.sketch_ns = sketch_watch.ElapsedNs();
    const Stopwatch bin_watch;
    const BinnedMatrix matrix =
        BinnedMatrix::Build(ds, std::move(cuts), &pool);
    ingest.bin_ns = bin_watch.ElapsedNs();
    const DatasetShape shape = ComputeShape(row.spec.name, ds, matrix);
    std::printf("%s  %s\n", FormatShapeRow(shape).c_str(), row.paper);
    std::printf("  %s\n", ingest.Summary().c_str());
  }
  return 0;
}
