// Prints the Table III shape statistics for every built-in dataset preset,
// verifying that the synthetic generators match the paper's N/M/S/CV.
//
// Usage: dataset_report [scale]
#include <cstdio>
#include <cstdlib>

#include "harpgbdt.h"

int main(int argc, char** argv) {
  using namespace harp;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;

  std::printf("Table III shape statistics at scale %.2f (paper values in "
              "parentheses)\n\n%s\n",
              scale, ShapeHeader().c_str());
  struct Row {
    SyntheticSpec spec;
    const char* paper;
  };
  const Row rows[] = {
      {HiggsSpec(scale), "(paper: M=28   S=0.92 CV=0.40)"},
      {AirlineSpec(scale), "(paper: M=8    S=1.00 CV=0.89)"},
      {CriteoSpec(scale), "(paper: M=65   S=0.96 CV=0.58)"},
      {YfccSpec(scale), "(paper: M=4096 S=0.31 CV=0.06)"},
      {SynsetSpec(scale), "(paper: M=128  S=1.00 CV=0.00)"},
  };
  ThreadPool pool(ThreadPool::DefaultThreads());
  for (const Row& row : rows) {
    const Dataset ds = GenerateSynthetic(row.spec, &pool);
    const BinnedMatrix matrix = BinnedMatrix::Build(
        ds, QuantileCuts::Compute(ds, 256, &pool), &pool);
    const DatasetShape shape = ComputeShape(row.spec.name, ds, matrix);
    std::printf("%s  %s\n", FormatShapeRow(shape).c_str(), row.paper);
  }
  return 0;
}
