// Thin-matrix regression: predict a continuous target on an AIRLINE-shaped
// dataset (8 features, very uneven feature cardinalities) with squared
// error loss, a validation set and early stopping — the travel-time-
// prediction use case the paper's introduction cites.
//
// Usage: airline_regression [rows] [trees]
#include <cstdio>
#include <cstdlib>

#include "harpgbdt.h"

int main(int argc, char** argv) {
  using namespace harp;
  const uint32_t rows = argc > 1
                            ? static_cast<uint32_t>(std::atoi(argv[1]))
                            : 30000;
  const int trees = argc > 2 ? std::atoi(argv[2]) : 80;

  SyntheticSpec spec = AirlineSpec(1.0);
  spec.rows = rows;
  spec.label = LabelKind::kRegression;
  spec.margin_scale = 3.0;
  const Dataset all = GenerateSynthetic(spec);
  const uint32_t train_rows = rows * 7 / 10;
  const uint32_t valid_rows = rows * 85 / 100;
  const Dataset train = all.Slice(0, train_rows);
  const Dataset valid = all.Slice(train_rows, valid_rows);
  const Dataset test = all.Slice(valid_rows, rows);

  TrainParams p;
  p.objective = ObjectiveKind::kSquaredError;
  p.num_trees = trees;
  p.tree_size = 6;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 16;
  p.mode = ParallelMode::kSYNC;
  p.subsample = 0.8;

  EvalSet eval;
  eval.data = &valid;
  eval.early_stopping_rounds = 8;

  TrainStats stats;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train, &stats, {}, &eval);

  std::printf("requested %d trees, trained %zu (early stopping at "
              "validation RMSE %.4f, iteration %d)\n",
              trees, model.NumTrees(), eval.best_metric,
              eval.best_iteration);
  std::printf("train RMSE %.4f | test RMSE %.4f\n",
              Rmse(train.labels(), model.Predict(train)),
              Rmse(test.labels(), model.Predict(test)));

  // Baseline comparison: predicting the training mean.
  double mean = 0.0;
  for (float y : train.labels()) mean += y;
  mean /= static_cast<double>(train.num_rows());
  std::vector<double> constant(test.num_rows(), mean);
  std::printf("mean-predictor test RMSE %.4f (model should be well below)\n",
              Rmse(test.labels(), constant));

  const FeatureImportance importance =
      ComputeImportance(model, train.num_features());
  std::printf("feature importance:\n%s",
              FormatImportance(importance, 8).c_str());
  return 0;
}
