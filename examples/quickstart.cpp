// Quickstart: generate a HIGGS-shaped synthetic dataset, train HarpGBDT
// with the TopK + ASYNC configuration, evaluate AUC on a held-out split,
// and save/reload the model.
//
// Usage: quickstart [rows] [trees]
#include <cstdio>
#include <cstdlib>

#include "harpgbdt.h"

int main(int argc, char** argv) {
  const uint32_t rows = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1]))
                                 : 20000;
  const int trees = argc > 2 ? std::atoi(argv[2]) : 20;

  // 1. Data: a synthetic binary-classification set shaped like HIGGS
  //    (28 features, 8% missing entries, uneven bin counts).
  harp::SyntheticSpec spec = harp::HiggsSpec(1.0);
  spec.rows = rows + rows / 4;  // train + test
  const harp::Dataset all = harp::GenerateSynthetic(spec);
  const harp::Dataset train = all.Slice(0, rows);
  const harp::Dataset test = all.Slice(rows, all.num_rows());
  std::printf("train: %u rows x %u features, sparseness %.2f\n",
              train.num_rows(), train.num_features(), train.Sparseness());

  // 2. Train: TopK growth (K=32) with the ASYNC node-parallel mode.
  harp::TrainParams params;
  params.num_trees = trees;
  params.tree_size = 6;  // up to 2^6 = 64 leaves per tree
  params.grow_policy = harp::GrowPolicy::kTopK;
  params.topk = 32;
  params.mode = harp::ParallelMode::kASYNC;

  harp::TrainStats stats;
  harp::GbdtTrainer trainer(params);
  const harp::GbdtModel model = trainer.Train(train, &stats);
  std::printf("%s", stats.Report().c_str());

  // 3. Evaluate.
  const std::vector<double> train_pred = model.Predict(train);
  const std::vector<double> test_pred = model.Predict(test);
  std::printf("train AUC %.4f logloss %.4f | test AUC %.4f logloss %.4f\n",
              harp::Auc(train.labels(), train_pred),
              harp::LogLoss(train.labels(), train_pred),
              harp::Auc(test.labels(), test_pred),
              harp::LogLoss(test.labels(), test_pred));

  // 4. Save, reload, verify predictions match bit-exactly.
  std::string error;
  const std::string path = "/tmp/harpgbdt_quickstart.model";
  if (!harp::SaveModel(path, model, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  harp::GbdtModel reloaded;
  if (!harp::LoadModel(path, &reloaded, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  const std::vector<double> reloaded_pred = reloaded.Predict(test);
  for (size_t i = 0; i < test_pred.size(); ++i) {
    if (test_pred[i] != reloaded_pred[i]) {
      std::fprintf(stderr, "prediction mismatch after reload at row %zu\n", i);
      return 1;
    }
  }
  std::printf("model saved to %s and reloaded: predictions identical\n",
              path.c_str());
  return 0;
}
