// harp_cli — command-line trainer/predictor, the downstream-user interface.
//
//   harp_cli train   --data train.csv [--format csv|libsvm] --model out.model
//                    [--trees 100] [--tree-size 8] [--grow topk]
//                    [--k 32] [--mode ASYNC] [--threads N] [--eta 0.1]
//                    [--lambda 1] [--gamma 1] [--min-child-weight 1]
//                    [--objective logistic|squared|quantile|poisson|
//                    lambdarank] [--alpha 0.5] [--max-delta-step 0.7]
//                    [--ndcg-k 10] [--metric NAME] [--subsample 1.0]
//                    [--colsample 1.0] [--valid valid.csv]
//                    [--early-stopping 0] [--label-column 0] [--header]
//                    [--quantize] [--quant-stochastic] [--simd auto]
//                    --quantize accumulates histograms in 16-bit
//                    fixed-point (faster, accuracy within the
//                    quantization error bound); --simd forces the
//                    kernel dispatch level (auto|scalar|avx2).
//                    --alpha sets the quantile for --objective quantile;
//                    --max-delta-step stabilizes poisson; lambdarank
//                    needs libsvm data with qid: columns and optimizes
//                    NDCG@<--ndcg-k>. --metric overrides the validation
//                    metric (logloss|rmse|auc|error|pinball|
//                    poisson-deviance|ndcg|ndcg@<k>) — early stopping
//                    maximizes or minimizes according to the metric.
//                    Out-of-core / cache options: --from-cache F trains
//                    straight from a binary cache (dataset cache or
//                    binned cache, auto-detected) instead of re-parsing
//                    text; --mmap backs the large payload with a file
//                    mapping instead of heap copies (the binned cache
//                    then streams row windows through madvise during
//                    training; --prefetch-off disables the sweep,
//                    --prefetch-window-mb sets its granularity).
//                    --save-cache F writes the loaded dataset as a
//                    page-aligned (mmap-ready) cache; --save-binned F
//                    writes the post-quantile binned artifact.
//   harp_cli predict --data test.csv --model in.model [--output preds.txt]
//                    [--raw] [--threads N]
//                    Batch inference via the flat block-wise Predictor.
//                    Default: bins the input with the model's cuts and
//                    traverses on 1-byte bin comparisons; --raw skips
//                    binning and compares raw float features (same
//                    predictions — use it when predicting few rows or
//                    when binning cost matters). Reports rows/sec
//                    throughput on stderr.
//   harp_cli eval    --data test.csv --model in.model
//   harp_cli inspect --model in.model [--top 10]
//   harp_cli dist-train
//                    (--data train.csv [--format csv|libsvm] |
//                     --synth ROWS,FEATURES,DENSITY,SKEW,SEED)
//                    [--workers N] [--rank R --world W --port P]
//                    [--compress dense|sparse] [--quantize]
//                    [--trees 20] [--tree-size 6] [--k 8] [--threads 1]
//                    [--model out.model]
//                    Sharded training over the collective layer. Default:
//                    N in-process workers (threads). With --rank/--world/
//                    --port, this process is ONE rank of a multi-process
//                    run over loopback TCP (rank 0 must be listening on
//                    --port; launch all W ranks with identical data and
//                    params). Every rank trains the bitwise-identical
//                    model and saves it to --model, so model files from
//                    different ranks/backends/encodings can be compared
//                    with cmp(1). --compress sparse ships compressed
//                    SparseHistogram frames (with 8-byte quantized cells
//                    under --quantize); dense is the f64 oracle. --synth
//                    generates the sparse LibSVM-like synthetic in every
//                    process deterministically (no file needed).
//   harp_cli serve   --data test.csv --model in.model [--threads N]
//                    [--deadline-us 200] [--reloads 0] [--output preds.txt]
//                    Serving smoke: replays every row as a single-row
//                    Submit() against a ModelServer (admission queue
//                    coalesces them into blocks), hot-swapping the model
//                    --reloads times mid-stream, then verifies each
//                    served margin bit-exactly against the batch
//                    Predictor and reports latency percentiles.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/timer.h"
#include "distributed/socket_transport.h"
#include "harpgbdt.h"

namespace {

using namespace harp;

struct Args {
  std::string command;
  std::map<std::string, std::string> values;
  std::map<std::string, bool> flags;

  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values.find(key);
    return it != values.end() ? it->second : dflt;
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values.find(key);
    return it != values.end() ? std::stod(it->second) : dflt;
  }
  int GetInt(const std::string& key, int dflt) const {
    auto it = values.find(key);
    return it != values.end() ? std::stoi(it->second) : dflt;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

int Usage() {
  std::fprintf(stderr,
               "usage: harp_cli <train|predict|eval|inspect|serve|"
               "dist-train> [options]\n"
               "  dist-train: (--data F | --synth R,F,DENS,SKEW,SEED)\n"
               "           [--workers N | --rank R --world W --port P]\n"
               "           [--compress dense|sparse] [--quantize]\n"
               "           [--trees N] [--tree-size D] [--k K] [--model F]\n"
               "  predict: --data F --model F [--output F] [--raw]\n"
               "           [--threads N]  (--raw predicts on raw floats\n"
               "           instead of binning first; both report rows/sec)\n"
               "  serve:   --data F --model F [--threads N]\n"
               "           [--deadline-us 200] [--reloads 0] [--output F]\n"
               "           (single-row Submit replay with verification)\n"
               "see the header comment of examples/harp_cli.cpp\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return false;
    arg = arg.substr(2);
    // Boolean switches take no value.
    if (arg == "header" || arg == "zero-based" || arg == "membuf-off" ||
        arg == "subtraction" || arg == "raw" || arg == "quantize" ||
        arg == "quant-stochastic" || arg == "mmap" ||
        arg == "prefetch-off") {
      args->flags[arg] = true;
    } else {
      if (i + 1 >= argc) return false;
      args->values[arg] = argv[++i];
    }
  }
  return true;
}

bool LoadData(const Args& args, const std::string& path, Dataset* out,
              IngestStats* ingest = nullptr) {
  std::string error;
  const std::string format = args.Get("format", "csv");
  // --threads governs parsing too; the readers spin up a transient pool
  // when the file is large enough for more than one chunk.
  const int threads = args.GetInt("threads", 0);
  ThreadPool pool(threads > 0 ? threads : ThreadPool::DefaultThreads());
  bool ok = false;
  if (format == "csv") {
    CsvOptions options;
    options.label_column = args.GetInt("label-column", 0);
    options.has_header = args.Has("header");
    ok = ReadCsv(path, options, out, &error, ingest, &pool);
  } else if (format == "libsvm") {
    LibsvmOptions options;
    options.zero_based = args.Has("zero-based");
    ok = ReadLibsvm(path, options, out, &error, ingest, &pool);
  } else {
    error = "unknown format " + format;
  }
  if (!ok) std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                        error.c_str());
  return ok;
}

int CmdTrain(const Args& args) {
  Dataset train;
  BinnedMatrix binned;
  std::vector<float> binned_labels;
  bool use_binned = false;  // training input is the binned artifact
  IngestStats ingest;
  const std::string from_cache = args.Get("from-cache", "");
  if (!from_cache.empty()) {
    // Train straight from a binary cache image — no text re-parse. The
    // file kind is sniffed: a binned cache feeds TrainBinned directly
    // (sketch + bin already done), a dataset cache feeds the normal path.
    std::string error;
    CacheReadOptions copts;
    copts.use_mmap = args.Has("mmap");
    CacheReadInfo cinfo;
    const Stopwatch read_watch;
    if (IsBinnedCacheFile(from_cache)) {
      if (!ReadBinnedCache(from_cache, &binned, &binned_labels, &error,
                           copts, &cinfo)) {
        std::fprintf(stderr, "failed to load %s: %s\n", from_cache.c_str(),
                     error.c_str());
        return 1;
      }
      use_binned = true;
      ingest.rows = binned.num_rows();
      ingest.bytes = binned.MemoryBytes() + binned.MappedBytes();
      std::printf("loaded binned cache: %u rows x %u features (%s)\n",
                  binned.num_rows(), binned.num_features(),
                  cinfo.mapped ? "mmap" : "heap");
    } else {
      if (!ReadDatasetCache(from_cache, &train, &error, copts, &cinfo)) {
        std::fprintf(stderr, "failed to load %s: %s\n", from_cache.c_str(),
                     error.c_str());
        return 1;
      }
      ingest.rows = train.num_rows();
      ingest.bytes = train.MemoryBytes() + train.MappedBytes();
      std::printf("loaded %u rows x %u features (S=%.2f, %s)\n",
                  train.num_rows(), train.num_features(),
                  train.Sparseness(), cinfo.mapped ? "mmap" : "heap");
    }
    ingest.read_ns = read_watch.ElapsedNs();
    ingest.mmap_bytes = cinfo.mapped_bytes;
    if (cinfo.mapped) ingest.peak_rss_bytes = PeakRssBytes();
    if (!cinfo.note.empty()) {
      std::fprintf(stderr, "cache note: %s\n", cinfo.note.c_str());
    }
  } else {
    if (!LoadData(args, args.Get("data", ""), &train, &ingest)) return 1;
    std::printf("loaded %u rows x %u features (S=%.2f)\n", train.num_rows(),
                train.num_features(), train.Sparseness());
  }

  TrainParams p;
  p.num_trees = args.GetInt("trees", 100);
  p.tree_size = args.GetInt("tree-size", 8);
  p.learning_rate = args.GetDouble("eta", 0.1);
  p.reg_lambda = args.GetDouble("lambda", 1.0);
  p.min_split_loss = args.GetDouble("gamma", 1.0);
  p.min_child_weight = args.GetDouble("min-child-weight", 1.0);
  p.topk = args.GetInt("k", 32);
  p.num_threads = args.GetInt("threads", 0);
  p.subsample = args.GetDouble("subsample", 1.0);
  p.colsample_bytree = args.GetDouble("colsample", 1.0);
  p.use_membuf = !args.Has("membuf-off");
  p.use_hist_subtraction = args.Has("subtraction");
  p.quantize_hist = args.Has("quantize");
  p.quant_stochastic = args.Has("quant-stochastic");
  p.simd = args.Get("simd", "auto");
  p.stream_prefetch = !args.Has("prefetch-off");
  p.prefetch_window_bytes =
      static_cast<int64_t>(args.GetInt("prefetch-window-mb", 16)) << 20;
  if (!ParseGrowPolicy(args.Get("grow", "topk"), &p.grow_policy)) {
    std::fprintf(stderr, "bad --grow\n");
    return 1;
  }
  if (!ParseParallelMode(args.Get("mode", "SYNC"), &p.mode)) {
    std::fprintf(stderr, "bad --mode\n");
    return 1;
  }
  if (!ParseObjectiveKind(args.Get("objective", "logistic"), &p.objective)) {
    std::fprintf(stderr, "bad --objective\n");
    return 1;
  }
  p.quantile_alpha = args.GetDouble("alpha", 0.5);
  p.max_delta_step = args.GetDouble("max-delta-step", 0.7);
  p.ndcg_k = args.GetInt("ndcg-k", 10);
  p.eval_metric = args.Get("metric", "");
  const std::vector<float>& train_labels =
      use_binned ? binned_labels : train.labels();
  const bool train_has_groups =
      use_binned ? binned.has_groups() : train.has_groups();
  if (p.objective == ObjectiveKind::kPoisson) {
    for (float y : train_labels) {
      if (y < 0.0f) {
        std::fprintf(stderr,
                     "poisson objective requires non-negative labels\n");
        return 1;
      }
    }
  }
  if (p.objective == ObjectiveKind::kLambdaRank && !train_has_groups) {
    std::fprintf(stderr,
                 "lambdarank requires qid: columns (libsvm format)\n");
    return 1;
  }

  // Cache writers: --save-cache persists the raw dataset page-aligned
  // (mmap-ready); --save-binned persists the post-quantile artifact the
  // out-of-core trainer maps. Both run before training so a cache exists
  // even if a long run is interrupted.
  const std::string save_cache = args.Get("save-cache", "");
  if (!save_cache.empty()) {
    if (use_binned) {
      std::fprintf(stderr,
                   "--save-cache needs raw data (input is a binned cache)\n");
      return 1;
    }
    CacheWriteOptions wopts;
    wopts.page_align = true;
    std::string error;
    if (!WriteDatasetCache(save_cache, train, &error, wopts)) {
      std::fprintf(stderr, "save-cache failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("dataset cache (page-aligned) saved to %s\n",
                save_cache.c_str());
  }
  const std::string save_binned = args.Get("save-binned", "");
  if (!save_binned.empty() && !use_binned) {
    // Sketch + bin here so the written artifact is exactly what training
    // uses; the run then continues on the binned matrix.
    ThreadPool pool(p.num_threads > 0 ? p.num_threads
                                      : ThreadPool::DefaultThreads());
    const Stopwatch sketch_watch;
    QuantileCuts cuts = QuantileCuts::Compute(train, p.max_bins, &pool);
    ingest.sketch_ns += sketch_watch.ElapsedNs();
    const Stopwatch bin_watch;
    binned = BinnedMatrix::Build(train, std::move(cuts), &pool);
    ingest.bin_ns += bin_watch.ElapsedNs();
    binned_labels = train.labels();
    use_binned = true;
    std::string error;
    if (!WriteBinnedCache(save_binned, binned, binned_labels, &error)) {
      std::fprintf(stderr, "save-binned failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("binned cache saved to %s\n", save_binned.c_str());
  }

  Dataset valid;
  EvalSet eval;
  EvalSet* eval_ptr = nullptr;
  if (!args.Get("valid", "").empty()) {
    if (!LoadData(args, args.Get("valid", ""), &valid)) return 1;
    eval.data = &valid;
    eval.early_stopping_rounds = args.GetInt("early-stopping", 0);
    eval_ptr = &eval;
  }

  TrainStats stats;
  GbdtTrainer trainer(p);
  const GbdtModel model =
      use_binned
          ? trainer.TrainBinned(binned, binned_labels, &stats, {}, eval_ptr)
          : trainer.Train(train, &stats, {}, eval_ptr, &ingest);
  std::printf("%s\n", ingest.Summary().c_str());
  std::printf("%s", stats.Report().c_str());
  if (eval_ptr != nullptr && !eval.history.empty()) {
    std::printf("validation %s (%s is better): first=%.5f best=%.5f "
                "(iter %d) last=%.5f\n",
                eval.metric_name.c_str(),
                eval.higher_is_better ? "higher" : "lower",
                eval.history.front(), eval.best_metric, eval.best_iteration,
                eval.history.back());
  }

  const std::string model_path = args.Get("model", "harp.model");
  std::string error;
  if (!SaveModel(model_path, model, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("model (%zu trees, %lld nodes) saved to %s\n",
              model.NumTrees(), static_cast<long long>(model.TotalNodes()),
              model_path.c_str());
  return 0;
}

int CmdPredict(const Args& args) {
  GbdtModel model;
  std::string error;
  if (!LoadModel(args.Get("model", "harp.model"), &model, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  Dataset data;
  IngestStats ingest;
  if (!LoadData(args, args.Get("data", ""), &data, &ingest)) return 1;

  const int threads = args.GetInt("threads", 0);
  ThreadPool pool(threads > 0 ? threads : ThreadPool::DefaultThreads());

  // Flatten once, then drive the block-wise Predictor; --raw traverses
  // on float features, the default bins first and compares bin bytes.
  const FlatForest flat = model.Flatten();
  const Predictor predictor(flat);
  const Stopwatch watch;
  std::vector<double> margins;
  if (args.Has("raw")) {
    margins = predictor.PredictMargins(data, &pool);
  } else {
    const Stopwatch bin_watch;
    const BinnedMatrix binned = model.BinDataset(data, &pool);
    ingest.bin_ns = bin_watch.ElapsedNs();
    margins = predictor.PredictMargins(binned, &pool);
  }
  const double seconds = watch.ElapsedSec();
  std::fprintf(stderr, "%s\n", ingest.Summary().c_str());
  std::fprintf(stderr,
               "predicted %u rows in %.3fs (%.0f rows/sec, %s path, "
               "%d threads)\n",
               data.num_rows(), seconds,
               static_cast<double>(data.num_rows()) / seconds,
               args.Has("raw") ? "raw" : "binned", pool.num_threads());
  const std::string out_path = args.Get("output", "");
  std::FILE* out = out_path.empty() ? stdout
                                    : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  for (double m : margins) {
    std::fprintf(out, "%.9g\n", model.Transform(m));
  }
  if (out != stdout) {
    std::fclose(out);
    std::printf("wrote %zu predictions to %s\n", margins.size(),
                out_path.c_str());
  }
  return 0;
}

int CmdEval(const Args& args) {
  GbdtModel model;
  std::string error;
  if (!LoadModel(args.Get("model", "harp.model"), &model, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  Dataset data;
  if (!LoadData(args, args.Get("data", ""), &data)) return 1;

  ThreadPool pool(ThreadPool::DefaultThreads());
  const std::vector<double> preds = model.Predict(data, &pool);
  switch (model.objective()) {
    case ObjectiveKind::kLogistic:
      std::printf("rows=%u AUC=%.5f logloss=%.5f error=%.5f\n",
                  data.num_rows(), Auc(data.labels(), preds),
                  LogLoss(data.labels(), preds),
                  ErrorRate(data.labels(), preds));
      break;
    case ObjectiveKind::kQuantile:
      std::printf("rows=%u pinball(alpha=%.3f)=%.5f\n", data.num_rows(),
                  model.quantile_alpha(),
                  PinballLoss(data.labels(), preds, model.quantile_alpha()));
      break;
    case ObjectiveKind::kPoisson:
      std::printf("rows=%u poisson-deviance=%.5f RMSE=%.5f\n",
                  data.num_rows(), MeanPoissonDeviance(data.labels(), preds),
                  Rmse(data.labels(), preds));
      break;
    case ObjectiveKind::kLambdaRank: {
      if (!data.has_groups()) {
        std::fprintf(stderr,
                     "eval of a lambdarank model needs qid: columns\n");
        return 1;
      }
      const int k = args.GetInt("ndcg-k", 10);
      std::printf("rows=%u queries=%u NDCG@%d=%.5f\n", data.num_rows(),
                  data.num_groups(), k,
                  NdcgAtK(data.labels(), preds, data.group_ptr(), k));
      break;
    }
    case ObjectiveKind::kSquaredError:
      std::printf("rows=%u RMSE=%.5f\n", data.num_rows(),
                  Rmse(data.labels(), preds));
      break;
  }
  return 0;
}

int CmdInspect(const Args& args) {
  GbdtModel model;
  std::string error;
  if (!LoadModel(args.Get("model", "harp.model"), &model, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("objective: %s\n", ToString(model.objective()).c_str());
  std::printf("trees: %zu, total nodes: %lld\n", model.NumTrees(),
              static_cast<long long>(model.TotalNodes()));
  int max_depth = 0;
  int64_t leaves = 0;
  for (const RegTree& tree : model.trees()) {
    max_depth = std::max(max_depth, tree.MaxDepth());
    leaves += tree.NumLeaves();
  }
  std::printf("max depth: %d, total leaves: %lld\n", max_depth,
              static_cast<long long>(leaves));
  const FeatureImportance importance =
      ComputeImportance(model, model.cuts().num_features());
  std::printf("top features by gain:\n%s",
              FormatImportance(importance,
                               static_cast<size_t>(args.GetInt("top", 10)))
                  .c_str());
  return 0;
}

int CmdServe(const Args& args) {
  GbdtModel model;
  std::string error;
  if (!LoadModel(args.Get("model", "harp.model"), &model, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  Dataset data;
  if (!LoadData(args, args.Get("data", ""), &data)) return 1;

  ServeConfig config;
  config.num_threads = args.GetInt("threads", 0);
  config.flush_deadline_ns =
      static_cast<int64_t>(args.GetInt("deadline-us", 200)) * 1000;
  ModelServer server(model, config);
  const uint32_t width = server.row_width();
  const uint32_t rows = data.num_rows();
  const int reloads = args.GetInt("reloads", 0);

  // Replay every row as an independent single-row request. Rows are
  // densified to the serving width (missing = NaN); tickets are collected
  // and drained afterwards so the admission queue actually coalesces.
  std::vector<float> dense(static_cast<size_t>(rows) * width,
                           kMissingValue);
  for (uint32_t r = 0; r < rows; ++r) {
    float* row = dense.data() + static_cast<size_t>(r) * width;
    data.ForEachInRow(r, [&](uint32_t f, float v) {
      if (f < width) row[f] = v;
    });
  }
  std::vector<ServeTicket> tickets(rows);
  const Stopwatch watch;
  for (uint32_t r = 0; r < rows; ++r) {
    if (reloads > 0 && r > 0 && r % (rows / (reloads + 1) + 1) == 0) {
      server.Reload(model);  // same trees, new snapshot generation
    }
    tickets[r] = server.Submit(
        dense.data() + static_cast<size_t>(r) * width, width);
  }
  server.Flush();
  std::vector<double> served(rows);
  for (uint32_t r = 0; r < rows; ++r) served[r] = tickets[r].Wait();
  const double seconds = watch.ElapsedSec();

  // Bit-exact cross-check against the batch raw-float Predictor.
  const std::vector<double> expect = model.PredictMargins(data);
  uint32_t mismatches = 0;
  for (uint32_t r = 0; r < rows; ++r) {
    if (served[r] != expect[r]) ++mismatches;
  }
  const ServeStats stats = server.Stats();
  server.Shutdown();
  std::fprintf(stderr, "%s\n", stats.Summary().c_str());
  std::fprintf(stderr,
               "served %u rows in %.3fs (%.0f rows/sec), model v%llu, "
               "verify: %u mismatches\n",
               rows, seconds, static_cast<double>(rows) / seconds,
               static_cast<unsigned long long>(stats.model_version),
               mismatches);
  if (mismatches != 0) return 1;

  const std::string out_path = args.Get("output", "");
  if (!out_path.empty()) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    for (double m : served) {
      std::fprintf(out, "%.9g\n", model.Transform(m));
    }
    std::fclose(out);
    std::printf("wrote %u predictions to %s\n", rows, out_path.c_str());
  }
  return 0;
}

// Shared by dist-train's two launch modes: the subset of TrainParams the
// distributed trainer honours.
TrainParams DistParams(const Args& args) {
  TrainParams p;
  p.num_trees = args.GetInt("trees", 20);
  p.tree_size = args.GetInt("tree-size", 6);
  p.learning_rate = args.GetDouble("eta", 0.1);
  p.reg_lambda = args.GetDouble("lambda", 1.0);
  p.min_split_loss = args.GetDouble("gamma", 1.0);
  p.min_child_weight = args.GetDouble("min-child-weight", 1.0);
  p.topk = args.GetInt("k", 8);
  p.grow_policy = GrowPolicy::kTopK;
  p.quantize_hist = args.Has("quantize");
  p.quant_stochastic = args.Has("quant-stochastic");
  p.comm_compress = args.Get("compress", "dense");
  p.simd = args.Get("simd", "auto");
  return p;
}

// --synth ROWS,FEATURES,DENSITY,SKEW,SEED: the sparse LibSVM-like
// synthetic, generated deterministically in every process.
bool ParseSynthSpec(const std::string& text, SyntheticSpec* spec) {
  unsigned rows = 0, features = 0;
  double density = 0.0, skew = 0.0;
  unsigned long long seed = 0;
  if (std::sscanf(text.c_str(), "%u,%u,%lf,%lf,%llu", &rows, &features,
                  &density, &skew, &seed) != 5) {
    return false;
  }
  spec->name = "dist-synth";
  spec->rows = rows;
  spec->features = features;
  spec->density = density;
  spec->density_skew = skew;
  spec->seed = seed;
  spec->mean_distinct = 48.0;
  spec->distinct_cv = 0.5;
  spec->active_features = std::min(16u, features);
  spec->margin_scale = 3.0;
  spec->sparse_storage = density < 0.5;
  return rows > 0 && features > 0 && density > 0.0 && density <= 1.0;
}

void PrintCommStats(const char* prefix, const CommStats& s) {
  std::printf(
      "%s: allreduce %lld calls / %lld B, broadcast %lld calls / %lld B, "
      "%lld barriers\n",
      prefix, static_cast<long long>(s.allreduce_calls),
      static_cast<long long>(s.allreduce_bytes),
      static_cast<long long>(s.broadcast_calls),
      static_cast<long long>(s.broadcast_bytes),
      static_cast<long long>(s.barriers));
  if (s.hist_exchanges > 0) {
    const double ratio =
        s.hist_wire_bytes > 0 ? static_cast<double>(s.hist_dense_bytes) /
                                    static_cast<double>(s.hist_wire_bytes)
                              : 0.0;
    std::printf(
        "%s: %lld hist exchanges, wire %lld B vs dense %lld B "
        "(compression %.2fx)\n",
        prefix, static_cast<long long>(s.hist_exchanges),
        static_cast<long long>(s.hist_wire_bytes),
        static_cast<long long>(s.hist_dense_bytes), ratio);
  }
}

int CmdDistTrain(const Args& args) {
  Dataset data;
  const std::string synth = args.Get("synth", "");
  if (!synth.empty()) {
    SyntheticSpec spec;
    if (!ParseSynthSpec(synth, &spec)) {
      std::fprintf(stderr,
                   "bad --synth (want ROWS,FEATURES,DENSITY,SKEW,SEED)\n");
      return 1;
    }
    ThreadPool pool(ThreadPool::DefaultThreads());
    data = GenerateSynthetic(spec, &pool);
  } else if (!LoadData(args, args.Get("data", ""), &data)) {
    return 1;
  }
  std::printf("loaded %u rows x %u features (S=%.2f)\n", data.num_rows(),
              data.num_features(), data.Sparseness());

  const TrainParams p = DistParams(args);
  const int worker_threads = std::max(1, args.GetInt("threads", 1));
  const std::string model_path = args.Get("model", "");
  GbdtModel model;

  if (args.values.count("rank") > 0) {
    // One rank of a multi-process run over loopback TCP.
    const int rank = args.GetInt("rank", 0);
    const int world = args.GetInt("world", 1);
    const int port = args.GetInt("port", 0);
    if (world < 1 || rank < 0 || rank >= world || port <= 0) {
      std::fprintf(stderr, "need --rank in [0,--world) and --port\n");
      return 1;
    }
    try {
      const auto transport = SocketTransport::Create(rank, world, port);
      Communicator comm(*transport);
      const Stopwatch watch;
      model = DistributedGbdt::TrainShard(data, comm, p, worker_threads);
      std::printf("rank %d/%d: trained %d trees in %.3fs (%s exchange)\n",
                  rank, world, p.num_trees, watch.ElapsedSec(),
                  p.comm_compress.c_str());
      PrintCommStats("rank", comm.stats());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rank %d failed: %s\n", rank, e.what());
      return 1;
    }
  } else {
    const int workers = std::max(1, args.GetInt("workers", 2));
    DistributedResult result =
        DistributedGbdt::Train(data, workers, p, worker_threads);
    std::printf("workers=%d: trained %d trees in %.3fs (%s exchange)\n",
                result.workers, p.num_trees, result.seconds,
                p.comm_compress.c_str());
    PrintCommStats("total", result.comm);
    for (size_t r = 0; r < result.per_rank.size(); ++r) {
      std::string prefix = "rank " + std::to_string(r);
      PrintCommStats(prefix.c_str(), result.per_rank[r]);
    }
    model = std::move(result.model);
  }

  if (!model_path.empty()) {
    std::string error;
    if (!SaveModel(model_path, model, &error)) {
      std::fprintf(stderr, "save failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("model (%zu trees) saved to %s\n", model.NumTrees(),
                model_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "predict") return CmdPredict(args);
  if (args.command == "eval") return CmdEval(args);
  if (args.command == "inspect") return CmdInspect(args);
  if (args.command == "serve") return CmdServe(args);
  if (args.command == "dist-train") return CmdDistTrain(args);
  return Usage();
}
