#include "distributed/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/logging.h"

namespace harp {
namespace {

constexpr uint32_t kWireMagic = 0x31505448u;  // "HTP1" (LE)
constexpr uint16_t kWireVersion = 1;
constexpr uint64_t kMaxWirePayload = 1ull << 30;

enum WireOp : uint16_t {
  kOpHello = 1,
  kOpSumF64 = 2,
  kOpSumI64 = 3,
  kOpMaxF64 = 4,
  kOpBroadcast = 5,
  kOpBarrier = 6,
  kOpBlob = 7,
  kOpResult = 8,
};

#pragma pack(push, 1)
struct WireHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  uint16_t opcode = 0;
  uint32_t rank = 0;
  uint64_t seq = 0;
  uint64_t payload_bytes = 0;
};
#pragma pack(pop)
static_assert(sizeof(WireHeader) == 28, "wire header layout");

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("SocketTransport: " + what);
}

[[noreturn]] void FailErrno(const std::string& what) {
  Fail(what + ": " + std::strerror(errno));
}

void ReadFull(int fd, void* buf, size_t bytes) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (bytes > 0) {
    const ssize_t n = ::recv(fd, p, bytes, 0);
    if (n > 0) {
      p += n;
      bytes -= static_cast<size_t>(n);
    } else if (n == 0) {
      Fail("peer closed connection");
    } else if (errno != EINTR) {
      FailErrno("recv");
    }
  }
}

void WriteFull(int fd, const void* buf, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n >= 0) {
      p += static_cast<size_t>(n);
      bytes -= static_cast<size_t>(n);
    } else if (errno != EINTR) {
      FailErrno("send");
    }
  }
}

void SendFrame(int fd, uint16_t opcode, uint32_t rank, uint64_t seq,
               const void* payload, size_t bytes) {
  WireHeader h;
  h.opcode = opcode;
  h.rank = rank;
  h.seq = seq;
  h.payload_bytes = bytes;
  WriteFull(fd, &h, sizeof(h));
  if (bytes > 0) WriteFull(fd, payload, bytes);
}

// Reads and validates one frame; payload lands in *payload (resized).
WireHeader RecvFrame(int fd, std::vector<uint8_t>* payload) {
  WireHeader h;
  ReadFull(fd, &h, sizeof(h));
  if (h.magic != kWireMagic) Fail("bad frame magic");
  if (h.version != kWireVersion) Fail("bad frame version");
  if (h.opcode < kOpHello || h.opcode > kOpResult) Fail("bad frame opcode");
  if (h.payload_bytes > kMaxWirePayload) Fail("frame payload too large");
  payload->resize(static_cast<size_t>(h.payload_bytes));
  if (h.payload_bytes > 0) ReadFull(fd, payload->data(), payload->size());
  return h;
}

// Validates a frame the root read from rank `from` during collective `seq`.
void ExpectFrame(const WireHeader& h, uint16_t opcode, int from,
                 uint64_t seq) {
  if (h.opcode != opcode) Fail("unexpected opcode (collective mismatch)");
  if (h.rank != static_cast<uint32_t>(from)) Fail("frame rank mismatch");
  if (h.seq != seq) Fail("frame sequence mismatch");
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

SocketTransport::~SocketTransport() {
  for (int& fd : peer_fds_) CloseIfOpen(fd);
}

std::unique_ptr<SocketTransport> SocketTransport::Create(int rank,
                                                         int world_size,
                                                         int port,
                                                         int timeout_ms) {
  HARP_CHECK_GE(world_size, 1);
  HARP_CHECK_GE(rank, 0);
  HARP_CHECK_LT(rank, world_size);
  std::unique_ptr<SocketTransport> t(new SocketTransport(rank, world_size));
  if (world_size > 1) t->Handshake(port, timeout_ms);
  return t;
}

void SocketTransport::Handshake(int port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  if (rank_ == 0) {
    peer_fds_.assign(static_cast<size_t>(world_), -1);
    int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) FailErrno("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int err = errno;
      ::close(listen_fd);
      errno = err;
      FailErrno("bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(listen_fd, world_) < 0) {
      ::close(listen_fd);
      FailErrno("listen");
    }
    try {
      for (int i = 1; i < world_; ++i) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready == 0) Fail("timed out waiting for peers");
        if (ready < 0) FailErrno("poll");
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) FailErrno("accept");
        SetNoDelay(fd);
        try {
          std::vector<uint8_t> hello;
          const WireHeader h = RecvFrame(fd, &hello);
          if (h.opcode != kOpHello) Fail("expected hello frame");
          if (h.seq != 0) Fail("hello sequence mismatch");
          if (hello.size() != sizeof(uint32_t)) Fail("bad hello payload");
          uint32_t peer_world = 0;
          std::memcpy(&peer_world, hello.data(), sizeof(peer_world));
          if (peer_world != static_cast<uint32_t>(world_)) {
            Fail("hello world-size mismatch");
          }
          if (h.rank == 0 || h.rank >= static_cast<uint32_t>(world_)) {
            Fail("hello rank out of range");
          }
          if (peer_fds_[h.rank] >= 0) Fail("duplicate hello rank");
          peer_fds_[h.rank] = fd;
        } catch (...) {
          ::close(fd);
          throw;
        }
      }
      // Ack in rank order: the handshake is collective #0.
      for (int r = 1; r < world_; ++r) {
        SendFrame(peer_fds_[static_cast<size_t>(r)], kOpResult, 0,
                  /*seq=*/0, nullptr, 0);
      }
    } catch (...) {
      ::close(listen_fd);
      for (int& fd : peer_fds_) CloseIfOpen(fd);
      throw;
    }
    ::close(listen_fd);
  } else {
    peer_fds_.assign(1, -1);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) FailErrno("socket");
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        break;
      }
      ::close(fd);
      fd = -1;
      if (std::chrono::steady_clock::now() >= deadline) {
        Fail("timed out connecting to root at 127.0.0.1:" +
             std::to_string(port));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    SetNoDelay(fd);
    peer_fds_[0] = fd;
    try {
      const uint32_t world = static_cast<uint32_t>(world_);
      SendFrame(fd, kOpHello, static_cast<uint32_t>(rank_), /*seq=*/0, &world,
                sizeof(world));
      std::vector<uint8_t> ack;
      const WireHeader h = RecvFrame(fd, &ack);
      ExpectFrame(h, kOpResult, /*from=*/0, /*seq=*/0);
      if (!ack.empty()) Fail("bad hello ack");
    } catch (...) {
      CloseIfOpen(peer_fds_[0]);
      throw;
    }
  }
  seq_ = 1;  // the handshake consumed collective #0
}

void SocketTransport::ClientRound(uint16_t opcode, const void* send,
                                  size_t send_bytes,
                                  std::vector<uint8_t>* result_payload) {
  const uint64_t seq = seq_++;
  SendFrame(peer_fds_[0], opcode, static_cast<uint32_t>(rank_), seq, send,
            send_bytes);
  const WireHeader h = RecvFrame(peer_fds_[0], result_payload);
  ExpectFrame(h, kOpResult, /*from=*/0, seq);
}

template <typename T, typename Op>
void SocketTransport::AllreduceImpl(uint16_t opcode, T* data, size_t count,
                                    Op op) {
  if (world_ == 1) return;
  const size_t bytes = count * sizeof(T);
  if (rank_ == 0) {
    const uint64_t seq = seq_++;
    // Gather and reduce in ascending rank order: rank 0's own buffer is
    // the accumulator, clients fold in as 1, 2, ..., W-1.
    for (int r = 1; r < world_; ++r) {
      const WireHeader h =
          RecvFrame(peer_fds_[static_cast<size_t>(r)], &scratch_);
      ExpectFrame(h, opcode, r, seq);
      if (scratch_.size() != bytes) Fail("allreduce payload size mismatch");
      const T* src = reinterpret_cast<const T*>(scratch_.data());
      for (size_t i = 0; i < count; ++i) op(data[i], src[i]);
    }
    for (int r = 1; r < world_; ++r) {
      SendFrame(peer_fds_[static_cast<size_t>(r)], kOpResult, 0, seq, data,
                bytes);
    }
  } else {
    ClientRound(opcode, data, bytes, &scratch_);
    if (scratch_.size() != bytes) Fail("allreduce result size mismatch");
    std::memcpy(data, scratch_.data(), bytes);
  }
}

void SocketTransport::AllreduceSum(double* data, size_t count) {
  AllreduceImpl(kOpSumF64, data, count,
                [](double& a, double b) { a += b; });
}

void SocketTransport::AllreduceSum(int64_t* data, size_t count) {
  AllreduceImpl(kOpSumI64, data, count,
                [](int64_t& a, int64_t b) { a += b; });
}

void SocketTransport::AllreduceMax(double* data, size_t count) {
  AllreduceImpl(kOpMaxF64, data, count,
                [](double& a, double b) { a = std::max(a, b); });
}

void SocketTransport::Broadcast(void* data, size_t bytes, int root) {
  if (world_ == 1) return;
  HARP_CHECK_GE(root, 0);
  HARP_CHECK_LT(root, world_);
  if (rank_ == 0) {
    const uint64_t seq = seq_++;
    for (int r = 1; r < world_; ++r) {
      const WireHeader h =
          RecvFrame(peer_fds_[static_cast<size_t>(r)], &scratch_);
      ExpectFrame(h, kOpBroadcast, r, seq);
      if (r == root) {
        if (scratch_.size() != bytes) Fail("broadcast payload size mismatch");
        std::memcpy(data, scratch_.data(), bytes);
      } else if (!scratch_.empty()) {
        Fail("unexpected broadcast payload");
      }
    }
    for (int r = 1; r < world_; ++r) {
      SendFrame(peer_fds_[static_cast<size_t>(r)], kOpResult, 0, seq, data,
                bytes);
    }
  } else {
    const bool is_source = rank_ == root;
    ClientRound(kOpBroadcast, is_source ? data : nullptr,
                is_source ? bytes : 0, &scratch_);
    if (scratch_.size() != bytes) Fail("broadcast result size mismatch");
    if (!is_source) std::memcpy(data, scratch_.data(), bytes);
  }
}

void SocketTransport::Barrier() {
  if (world_ == 1) return;
  if (rank_ == 0) {
    const uint64_t seq = seq_++;
    for (int r = 1; r < world_; ++r) {
      const WireHeader h =
          RecvFrame(peer_fds_[static_cast<size_t>(r)], &scratch_);
      ExpectFrame(h, kOpBarrier, r, seq);
      if (!scratch_.empty()) Fail("unexpected barrier payload");
    }
    for (int r = 1; r < world_; ++r) {
      SendFrame(peer_fds_[static_cast<size_t>(r)], kOpResult, 0, seq, nullptr,
                0);
    }
  } else {
    ClientRound(kOpBarrier, nullptr, 0, &scratch_);
    if (!scratch_.empty()) Fail("barrier result not empty");
  }
}

void SocketTransport::ReduceBlobs(const uint8_t* send, size_t send_bytes,
                                  const BlobReduceFn& reduce,
                                  std::vector<uint8_t>* result) {
  if (world_ == 1) {
    Frames frames;
    frames.emplace_back(send, send_bytes);
    reduce(frames, result);
    return;
  }
  if (rank_ == 0) {
    const uint64_t seq = seq_++;
    std::vector<std::vector<uint8_t>> blobs(static_cast<size_t>(world_));
    for (int r = 1; r < world_; ++r) {
      const WireHeader h =
          RecvFrame(peer_fds_[static_cast<size_t>(r)],
                    &blobs[static_cast<size_t>(r)]);
      ExpectFrame(h, kOpBlob, r, seq);
    }
    Frames frames;
    frames.reserve(static_cast<size_t>(world_));
    frames.emplace_back(send, send_bytes);
    for (int r = 1; r < world_; ++r) {
      const auto& blob = blobs[static_cast<size_t>(r)];
      frames.emplace_back(blob.data(), blob.size());
    }
    result->clear();
    reduce(frames, result);
    for (int r = 1; r < world_; ++r) {
      SendFrame(peer_fds_[static_cast<size_t>(r)], kOpResult, 0, seq,
                result->data(), result->size());
    }
  } else {
    ClientRound(kOpBlob, send, send_bytes, result);
  }
}

}  // namespace harp
