#include "distributed/communicator.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/logging.h"

namespace harp {

SimulatedCluster::SimulatedCluster(int world_size) : world_(world_size) {
  HARP_CHECK_GE(world_size, 1);
  rendezvous_.buffers.assign(static_cast<size_t>(world_size), nullptr);
}

void SimulatedCluster::Run(const std::function<void(Communicator&)>& fn) {
  total_stats_ = CommStats{};
  std::vector<Communicator> comms;
  comms.reserve(static_cast<size_t>(world_));
  for (int rank = 0; rank < world_; ++rank) {
    comms.push_back(Communicator(this, rank, world_));
  }

  std::exception_ptr first_exception;
  std::mutex exception_mutex;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(world_));
  for (int rank = 0; rank < world_; ++rank) {
    workers.emplace_back([&, rank] {
      try {
        fn(comms[static_cast<size_t>(rank)]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(exception_mutex);
        if (!first_exception) first_exception = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();

  for (const Communicator& comm : comms) {
    total_stats_.allreduce_calls += comm.stats_.allreduce_calls;
    total_stats_.allreduce_bytes += comm.stats_.allreduce_bytes;
    total_stats_.broadcast_calls += comm.stats_.broadcast_calls;
    total_stats_.barriers += comm.stats_.barriers;
  }
  if (first_exception) std::rethrow_exception(first_exception);
}

template <typename T>
void Communicator::AllreduceImpl(T* data, size_t count) {
  ++stats_.allreduce_calls;
  stats_.allreduce_bytes +=
      static_cast<int64_t>(count * sizeof(T)) * (world_ - 1);
  if (world_ == 1) return;

  auto& r = cluster_->rendezvous_;
  std::unique_lock<std::mutex> lock(r.mutex);
  const uint64_t generation = r.generation;
  r.buffers[static_cast<size_t>(rank_)] = data;
  if (++r.arrived == world_) {
    // Last arrival reduces every rank's buffer into rank 0's in rank
    // order (bitwise-deterministic), then replicates the result. All of
    // this happens under the lock, so waiters see finished buffers.
    T* dst = static_cast<T*>(r.buffers[0]);
    for (int t = 1; t < world_; ++t) {
      const T* src = static_cast<const T*>(r.buffers[static_cast<size_t>(t)]);
      for (size_t i = 0; i < count; ++i) dst[i] += src[i];
    }
    for (int t = 1; t < world_; ++t) {
      T* out = static_cast<T*>(r.buffers[static_cast<size_t>(t)]);
      std::copy(dst, dst + count, out);
    }
    r.arrived = 0;
    ++r.generation;
    r.cv.notify_all();
  } else {
    r.cv.wait(lock, [&] { return r.generation != generation; });
  }
}

void Communicator::AllreduceSum(GHPair* data, size_t count) {
  AllreduceImpl(data, count);
}
void Communicator::AllreduceSum(double* data, size_t count) {
  AllreduceImpl(data, count);
}
void Communicator::AllreduceSum(int64_t* data, size_t count) {
  AllreduceImpl(data, count);
}

void Communicator::Broadcast(void* data, size_t bytes, int root) {
  ++stats_.broadcast_calls;
  if (world_ == 1) return;
  HARP_CHECK_GE(root, 0);
  HARP_CHECK_LT(root, world_);

  auto& r = cluster_->rendezvous_;
  std::unique_lock<std::mutex> lock(r.mutex);
  const uint64_t generation = r.generation;
  r.buffers[static_cast<size_t>(rank_)] = data;
  if (++r.arrived == world_) {
    const char* src =
        static_cast<const char*>(r.buffers[static_cast<size_t>(root)]);
    for (int t = 0; t < world_; ++t) {
      if (t == root) continue;
      char* dst = static_cast<char*>(r.buffers[static_cast<size_t>(t)]);
      std::copy(src, src + bytes, dst);
    }
    r.arrived = 0;
    ++r.generation;
    r.cv.notify_all();
  } else {
    r.cv.wait(lock, [&] { return r.generation != generation; });
  }
}

void Communicator::Barrier() {
  ++stats_.barriers;
  if (world_ == 1) return;
  auto& r = cluster_->rendezvous_;
  std::unique_lock<std::mutex> lock(r.mutex);
  const uint64_t generation = r.generation;
  if (++r.arrived == world_) {
    r.arrived = 0;
    ++r.generation;
    r.cv.notify_all();
  } else {
    r.cv.wait(lock, [&] { return r.generation != generation; });
  }
}

}  // namespace harp
