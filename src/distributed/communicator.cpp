#include "distributed/communicator.h"

#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "distributed/inprocess_transport.h"
#include "distributed/sparse_hist.h"

namespace harp {

static_assert(sizeof(GHPair) == 2 * sizeof(double),
              "GHPair must be two packed doubles for the transport view");

void Communicator::AllreduceSum(GHPair* data, size_t count) {
  ++stats_.allreduce_calls;
  stats_.allreduce_bytes +=
      static_cast<int64_t>(count * sizeof(GHPair)) * (world_size() - 1);
  transport_->AllreduceSum(reinterpret_cast<double*>(data), count * 2);
}

void Communicator::AllreduceSum(double* data, size_t count) {
  ++stats_.allreduce_calls;
  stats_.allreduce_bytes +=
      static_cast<int64_t>(count * sizeof(double)) * (world_size() - 1);
  transport_->AllreduceSum(data, count);
}

void Communicator::AllreduceSum(int64_t* data, size_t count) {
  ++stats_.allreduce_calls;
  stats_.allreduce_bytes +=
      static_cast<int64_t>(count * sizeof(int64_t)) * (world_size() - 1);
  transport_->AllreduceSum(data, count);
}

void Communicator::AllreduceMax(double* data, size_t count) {
  ++stats_.allreduce_calls;
  stats_.allreduce_bytes +=
      static_cast<int64_t>(count * sizeof(double)) * (world_size() - 1);
  transport_->AllreduceMax(data, count);
}

void Communicator::Broadcast(void* data, size_t bytes, int root) {
  ++stats_.broadcast_calls;
  stats_.broadcast_bytes +=
      static_cast<int64_t>(bytes) * (world_size() - 1);
  transport_->Broadcast(data, bytes, root);
}

void Communicator::Barrier() {
  ++stats_.barriers;
  transport_->Barrier();
}

void Communicator::AllreduceHistograms(GHPair* const* hists,
                                       uint32_t num_hists, uint32_t cells,
                                       const HistExchangeOpts& opts) {
  if (num_hists == 0) return;
  ++stats_.hist_exchanges;
  const bool communicates = world_size() > 1;
  const int64_t dense_bytes = DenseHistBytes(num_hists, cells);
  if (communicates) stats_.hist_dense_bytes += 2 * dense_bytes;

  if (!opts.sparse) {
    // Dense oracle: concatenate the batch and run one rank-ordered f64
    // allreduce over it.
    const size_t total = static_cast<size_t>(num_hists) * cells;
    dense_scratch_.resize(total);
    for (uint32_t h = 0; h < num_hists; ++h) {
      std::memcpy(dense_scratch_.data() + static_cast<size_t>(h) * cells,
                  hists[h], static_cast<size_t>(cells) * sizeof(GHPair));
    }
    AllreduceSum(dense_scratch_.data(), total);
    for (uint32_t h = 0; h < num_hists; ++h) {
      std::memcpy(hists[h],
                  dense_scratch_.data() + static_cast<size_t>(h) * cells,
                  static_cast<size_t>(cells) * sizeof(GHPair));
    }
    if (communicates) stats_.hist_wire_bytes += 2 * dense_bytes;
    return;
  }

  SparseHistFormat fmt;
  fmt.quant = opts.quant;
  fmt.scales = opts.scales;
  EncodeSparseHist(hists, num_hists, cells, fmt, &send_frame_);
  transport_->ReduceBlobs(
      send_frame_.data(), send_frame_.size(),
      [&](const Transport::Frames& frames, std::vector<uint8_t>* out) {
        ReduceSparseHist(frames, num_hists, cells, fmt, out);
      },
      &recv_frame_);
  if (communicates) {
    stats_.hist_wire_bytes +=
        static_cast<int64_t>(send_frame_.size() + recv_frame_.size());
  }
  DecodeSparseHist(recv_frame_.data(), recv_frame_.size(), hists, num_hists,
                   cells, fmt);
}

SimulatedCluster::SimulatedCluster(int world_size) : world_(world_size) {
  HARP_CHECK_GE(world_size, 1);
}

void SimulatedCluster::Run(const std::function<void(Communicator&)>& fn) {
  total_stats_ = CommStats{};
  InProcessCluster cluster(world_);
  std::vector<Communicator> comms;
  comms.reserve(static_cast<size_t>(world_));
  for (int rank = 0; rank < world_; ++rank) {
    comms.push_back(Communicator(cluster.transport(rank)));
  }

  std::exception_ptr first_exception;
  std::mutex exception_mutex;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(world_));
  for (int rank = 0; rank < world_; ++rank) {
    workers.emplace_back([&, rank] {
      try {
        fn(comms[static_cast<size_t>(rank)]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(exception_mutex);
        if (!first_exception) first_exception = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();

  for (const Communicator& comm : comms) total_stats_ += comm.stats();
  if (first_exception) std::rethrow_exception(first_exception);
}

}  // namespace harp
