#include "distributed/sparse_hist.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/logging.h"
#include "parallel/touched_regions.h"

namespace harp {
namespace {

static_assert(kSparseRegionCells == 8,
              "region occupancy bitmap is one byte per region");

inline uint32_t RegionsPerHist(uint32_t cells) {
  return (cells + kSparseRegionCells - 1) / kSparseRegionCells;
}

// Cells in region `region` of the virtual concatenation (the last region of
// each histogram may be partial).
inline uint32_t CellsInRegion(uint32_t region, uint32_t regions_per_hist,
                              uint32_t cells) {
  const uint32_t local = region % regions_per_hist;
  const uint32_t begin = local * kSparseRegionCells;
  return std::min(kSparseRegionCells, cells - begin);
}

inline bool CellNonZero(const GHPair& cell) {
  uint64_t bits[2];
  std::memcpy(bits, &cell, sizeof(bits));
  return (bits[0] | bits[1]) != 0;
}

[[noreturn]] void Malformed(const std::string& what) {
  throw std::runtime_error("SparseHistogram: malformed frame: " + what);
}

struct ParsedFrame {
  SparseHistHeader header;
  const SparseHistRun* runs = nullptr;
  const uint8_t* bitmaps = nullptr;  // one byte per listed region
  const uint8_t* payload = nullptr;
  uint32_t listed_regions = 0;
  size_t cell_bytes = 0;
};

// Validates the full frame layout against the expected geometry/format and
// returns typed views into it. Frames can arrive from a real socket, so
// every derived size is checked before it is trusted.
ParsedFrame ParseFrame(const uint8_t* data, size_t bytes, uint32_t num_hists,
                       uint32_t cells, const SparseHistFormat& fmt) {
  ParsedFrame f;
  if (bytes < sizeof(SparseHistHeader)) Malformed("short header");
  std::memcpy(&f.header, data, sizeof(SparseHistHeader));
  const SparseHistHeader& h = f.header;
  if (h.magic != kSparseHistMagic) Malformed("bad magic");
  if (h.version != kSparseHistVersion) Malformed("bad version");
  if ((h.flags & ~kSparseHistFlagQuant) != 0) Malformed("unknown flags");
  const bool quant = (h.flags & kSparseHistFlagQuant) != 0;
  if (quant != fmt.quant) Malformed("format mismatch");
  if (h.num_hists != num_hists || h.cells_per_hist != cells) {
    Malformed("geometry mismatch");
  }
  const uint32_t regions_per_hist = RegionsPerHist(cells);
  const uint64_t total_regions =
      static_cast<uint64_t>(num_hists) * regions_per_hist;
  if (h.num_runs > total_regions) Malformed("too many runs");
  f.cell_bytes = quant ? sizeof(int64_t) : sizeof(GHPair);
  const size_t runs_bytes = static_cast<size_t>(h.num_runs) *
                            sizeof(SparseHistRun);

  // First pass over the run list: monotonicity, range, and the listed-
  // region count (which sizes the bitmap array).
  if (bytes < sizeof(SparseHistHeader) + runs_bytes) Malformed("short runs");
  f.runs = reinterpret_cast<const SparseHistRun*>(data +
                                                  sizeof(SparseHistHeader));
  uint64_t next_region = 0;
  uint64_t listed = 0;
  for (uint32_t i = 0; i < h.num_runs; ++i) {
    const SparseHistRun& run = f.runs[i];
    if (run.num_regions == 0) Malformed("empty run");
    if (i > 0 && run.first_region <= next_region) Malformed("unsorted runs");
    const uint64_t end =
        static_cast<uint64_t>(run.first_region) + run.num_regions;
    if (end > total_regions) Malformed("run out of range");
    listed += run.num_regions;
    next_region = end;
  }
  f.listed_regions = static_cast<uint32_t>(listed);
  const size_t want = sizeof(SparseHistHeader) + runs_bytes + listed +
                      static_cast<size_t>(h.payload_cells) * f.cell_bytes;
  if (bytes != want) Malformed("size mismatch");
  f.bitmaps = data + sizeof(SparseHistHeader) + runs_bytes;
  f.payload = f.bitmaps + listed;

  // Second pass: every listed region's bitmap must be nonzero (empty
  // regions must not be listed), must not set bits past a partial
  // region's end, and the total popcount must match the payload.
  uint64_t payload_cells = 0;
  uint32_t bitmap_idx = 0;
  for (uint32_t i = 0; i < h.num_runs; ++i) {
    const SparseHistRun& run = f.runs[i];
    const uint64_t end =
        static_cast<uint64_t>(run.first_region) + run.num_regions;
    for (uint64_t r = run.first_region; r < end; ++r, ++bitmap_idx) {
      const uint8_t bitmap = f.bitmaps[bitmap_idx];
      if (bitmap == 0) Malformed("empty region bitmap");
      const uint32_t n = CellsInRegion(static_cast<uint32_t>(r),
                                       regions_per_hist, cells);
      if (n < kSparseRegionCells &&
          (bitmap >> n) != 0) {
        Malformed("bitmap past region end");
      }
      payload_cells += std::popcount(bitmap);
    }
  }
  if (payload_cells != h.payload_cells) Malformed("payload count mismatch");
  return f;
}

// Appends a region range to a merged run list.
void PushRegion(std::vector<SparseHistRun>* runs, uint32_t region) {
  if (!runs->empty() &&
      runs->back().first_region + runs->back().num_regions == region) {
    ++runs->back().num_regions;
  } else {
    runs->push_back(SparseHistRun{region, 1});
  }
}

// Quantized wire cell from an f64 histogram cell. With power-of-two scales
// the f64 value is exactly k * 2^-s, so the product is the integer k with
// no rounding (llround only resolves the representation, never the value).
inline int64_t EncodeQuantCell(const GHPair& cell, const QuantScales& s) {
  const int64_t g = std::llround(cell.g * static_cast<double>(s.g_scale));
  const int64_t h = std::llround(cell.h * static_cast<double>(s.h_scale));
  return (g << 32) + h;
}

inline GHPair DecodeQuantCell(int64_t cell, const QuantScales& s) {
  return GHPair{static_cast<double>(CellG(cell)) * s.g_inv,
                static_cast<double>(CellH(cell)) * s.h_inv};
}

// Append-only builder for the variable parts of a frame: run list, one
// bitmap byte per listed region, and the set cells.
struct FrameBuilder {
  std::vector<SparseHistRun> runs;
  std::vector<uint8_t> bitmaps;
  std::vector<uint8_t> payload;
  size_t num_cells = 0;

  void AddRegion(uint32_t region, uint8_t bitmap) {
    PushRegion(&runs, region);
    bitmaps.push_back(bitmap);
    num_cells += static_cast<size_t>(std::popcount(bitmap));
  }
};

void WriteFrame(const FrameBuilder& b, uint32_t num_hists, uint32_t cells,
                const SparseHistFormat& fmt, std::vector<uint8_t>* out) {
  SparseHistHeader header;
  header.flags = fmt.quant ? kSparseHistFlagQuant : 0;
  header.num_hists = num_hists;
  header.cells_per_hist = cells;
  header.num_runs = static_cast<uint32_t>(b.runs.size());
  header.payload_cells = static_cast<uint32_t>(b.num_cells);
  out->resize(sizeof(header) + b.runs.size() * sizeof(SparseHistRun) +
              b.bitmaps.size() + b.payload.size());
  uint8_t* p = out->data();
  std::memcpy(p, &header, sizeof(header));
  p += sizeof(header);
  if (!b.runs.empty()) {
    std::memcpy(p, b.runs.data(), b.runs.size() * sizeof(SparseHistRun));
    p += b.runs.size() * sizeof(SparseHistRun);
  }
  if (!b.bitmaps.empty()) {
    std::memcpy(p, b.bitmaps.data(), b.bitmaps.size());
    p += b.bitmaps.size();
  }
  if (!b.payload.empty()) {
    std::memcpy(p, b.payload.data(), b.payload.size());
  }
}

}  // namespace

void EncodeSparseHist(const GHPair* const* hists, uint32_t num_hists,
                      uint32_t cells, const SparseHistFormat& fmt,
                      std::vector<uint8_t>* out) {
  HARP_CHECK_GT(cells, 0);
  const uint32_t regions_per_hist = RegionsPerHist(cells);
  FrameBuilder b;
  for (uint32_t h = 0; h < num_hists; ++h) {
    const GHPair* hist = hists[h];
    for (uint32_t lr = 0; lr < regions_per_hist; ++lr) {
      const uint32_t begin = lr * kSparseRegionCells;
      const uint32_t n = std::min(kSparseRegionCells, cells - begin);
      uint8_t bitmap = 0;
      for (uint32_t i = 0; i < n; ++i) {
        if (CellNonZero(hist[begin + i])) {
          bitmap |= static_cast<uint8_t>(1u << i);
        }
      }
      if (bitmap == 0) continue;
      b.AddRegion(h * regions_per_hist + lr, bitmap);
      const size_t off = b.payload.size();
      if (fmt.quant) {
        b.payload.resize(off + std::popcount(bitmap) * sizeof(int64_t));
        int64_t* cells_out =
            reinterpret_cast<int64_t*>(b.payload.data() + off);
        for (uint32_t i = 0; i < n; ++i) {
          if (bitmap & (1u << i)) {
            *cells_out++ = EncodeQuantCell(hist[begin + i], fmt.scales);
          }
        }
      } else {
        b.payload.resize(off + std::popcount(bitmap) * sizeof(GHPair));
        GHPair* cells_out = reinterpret_cast<GHPair*>(b.payload.data() + off);
        for (uint32_t i = 0; i < n; ++i) {
          if (bitmap & (1u << i)) *cells_out++ = hist[begin + i];
        }
      }
    }
  }
  WriteFrame(b, num_hists, cells, fmt, out);
}

void ReduceSparseHist(const Transport::Frames& frames, uint32_t num_hists,
                      uint32_t cells, const SparseHistFormat& fmt,
                      std::vector<uint8_t>* out) {
  HARP_CHECK_GT(cells, 0);
  const int world = static_cast<int>(frames.size());
  const uint32_t regions_per_hist = RegionsPerHist(cells);
  const uint32_t total_regions = num_hists * regions_per_hist;

  std::vector<ParsedFrame> parsed;
  parsed.reserve(frames.size());
  for (const auto& frame : frames) {
    parsed.push_back(ParseFrame(frame.first, frame.second, num_hists, cells,
                                fmt));
  }

  // Per-rank region -> (bitmap index, payload cell offset), and the union
  // touched map. TouchedRegions (PR 1) gives the cache-line-isolated
  // per-rank rows and the per-region contributor query.
  TouchedRegions touched;
  touched.Reset(world, static_cast<int>(total_regions));
  struct RegionRef {
    uint32_t bitmap_idx = 0;
    uint32_t cell_off = 0;
  };
  std::vector<std::vector<RegionRef>> refs(
      frames.size(), std::vector<RegionRef>(total_regions));
  for (int rank = 0; rank < world; ++rank) {
    const ParsedFrame& f = parsed[static_cast<size_t>(rank)];
    uint32_t bitmap_idx = 0;
    uint32_t cursor = 0;
    for (uint32_t i = 0; i < f.header.num_runs; ++i) {
      const SparseHistRun& run = f.runs[i];
      for (uint32_t r = run.first_region;
           r < run.first_region + run.num_regions; ++r, ++bitmap_idx) {
        touched.Mark(rank, static_cast<int>(r));
        refs[static_cast<size_t>(rank)][r] = RegionRef{bitmap_idx, cursor};
        cursor += static_cast<uint32_t>(std::popcount(f.bitmaps[bitmap_idx]));
      }
    }
  }

  // Sweep regions in ascending order; within each touched region sum the
  // contributing ranks' cells in ascending rank order (the first
  // contributor of each CELL assigns, later ones add) — the same per-cell
  // addition order as the dense rank-ordered reduction, hence bitwise
  // identical where both paths touch.
  FrameBuilder b;
  const size_t cell_bytes = fmt.quant ? sizeof(int64_t) : sizeof(GHPair);
  GHPair acc_f64[kSparseRegionCells];
  int64_t acc_i64[kSparseRegionCells];
  for (uint32_t region = 0; region < total_regions; ++region) {
    uint8_t seen = 0;  // bits already assigned in the accumulator
    for (int rank = 0; rank < world; ++rank) {
      if (!touched.Touched(rank, static_cast<int>(region))) continue;
      const ParsedFrame& f = parsed[static_cast<size_t>(rank)];
      const RegionRef ref = refs[static_cast<size_t>(rank)][region];
      const uint8_t bitmap = f.bitmaps[ref.bitmap_idx];
      const uint8_t* src =
          f.payload + static_cast<size_t>(ref.cell_off) * cell_bytes;
      if (fmt.quant) {
        const int64_t* src_cells = reinterpret_cast<const int64_t*>(src);
        for (uint32_t i = 0; i < kSparseRegionCells; ++i) {
          if (!(bitmap & (1u << i))) continue;
          const int64_t cell = *src_cells++;
          if (seen & (1u << i)) {
            acc_i64[i] += cell;
          } else {
            acc_i64[i] = cell;
          }
        }
      } else {
        const GHPair* src_cells = reinterpret_cast<const GHPair*>(src);
        for (uint32_t i = 0; i < kSparseRegionCells; ++i) {
          if (!(bitmap & (1u << i))) continue;
          const GHPair cell = *src_cells++;
          if (seen & (1u << i)) {
            acc_f64[i].g += cell.g;
            acc_f64[i].h += cell.h;
          } else {
            acc_f64[i] = cell;
          }
        }
      }
      seen |= bitmap;
    }
    if (seen == 0) continue;  // no rank touched this region
    b.AddRegion(region, seen);
    const size_t off = b.payload.size();
    b.payload.resize(off + std::popcount(seen) * cell_bytes);
    uint8_t* dst = b.payload.data() + off;
    for (uint32_t i = 0; i < kSparseRegionCells; ++i) {
      if (!(seen & (1u << i))) continue;
      const void* src = fmt.quant ? static_cast<const void*>(&acc_i64[i])
                                  : static_cast<const void*>(&acc_f64[i]);
      std::memcpy(dst, src, cell_bytes);
      dst += cell_bytes;
    }
  }
  WriteFrame(b, num_hists, cells, fmt, out);
}

void DecodeSparseHist(const uint8_t* data, size_t bytes,
                      GHPair* const* hists, uint32_t num_hists,
                      uint32_t cells, const SparseHistFormat& fmt) {
  const ParsedFrame f = ParseFrame(data, bytes, num_hists, cells, fmt);
  const uint32_t regions_per_hist = RegionsPerHist(cells);
  for (uint32_t h = 0; h < num_hists; ++h) {
    std::fill(hists[h], hists[h] + cells, GHPair{});
  }
  uint32_t bitmap_idx = 0;
  uint32_t cursor = 0;
  for (uint32_t i = 0; i < f.header.num_runs; ++i) {
    const SparseHistRun& run = f.runs[i];
    for (uint32_t r = run.first_region; r < run.first_region + run.num_regions;
         ++r, ++bitmap_idx) {
      const uint8_t bitmap = f.bitmaps[bitmap_idx];
      const uint32_t h = r / regions_per_hist;
      const uint32_t begin = (r % regions_per_hist) * kSparseRegionCells;
      GHPair* dst = hists[h] + begin;
      if (fmt.quant) {
        const int64_t* src =
            reinterpret_cast<const int64_t*>(f.payload) + cursor;
        for (uint32_t i2 = 0; i2 < kSparseRegionCells; ++i2) {
          if (bitmap & (1u << i2)) dst[i2] = DecodeQuantCell(*src++, fmt.scales);
        }
      } else {
        const GHPair* src =
            reinterpret_cast<const GHPair*>(f.payload) + cursor;
        for (uint32_t i2 = 0; i2 < kSparseRegionCells; ++i2) {
          if (bitmap & (1u << i2)) dst[i2] = *src++;
        }
      }
      cursor += static_cast<uint32_t>(std::popcount(bitmap));
    }
  }
}

}  // namespace harp
