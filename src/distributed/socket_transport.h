// Multi-process Transport backend over loopback TCP.
//
// W real processes form a star through rank 0: every collective is one
// framed request from each client to the root — which reduces the payloads
// in ascending rank order (its own contribution first) — followed by one
// framed result back to every client. Identical reduction order to the
// in-process backend, so a multi-process run produces the same model file
// byte for byte (CI launches world=3 processes via `harp_cli dist-train`
// and diffs the models).
//
// Wire protocol: every message is a fixed 28-byte header + payload. The
// header carries magic, version, opcode, sender rank and a per-transport
// sequence number that counts collectives; the root validates all of them
// on every frame (plus a payload-size cap) and throws std::runtime_error
// on any mismatch — malformed or out-of-protocol frames must never be
// silently reduced into a model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "distributed/transport.h"

namespace harp {

class SocketTransport final : public Transport {
 public:
  // Rank 0 listens on 127.0.0.1:port and accepts world-1 hello frames;
  // other ranks connect, retrying while the root comes up (up to
  // timeout_ms). Throws std::runtime_error on timeout, connection failure
  // or a malformed handshake.
  static std::unique_ptr<SocketTransport> Create(int rank, int world_size,
                                                 int port,
                                                 int timeout_ms = 15000);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  int rank() const override { return rank_; }
  int world_size() const override { return world_; }

  void AllreduceSum(double* data, size_t count) override;
  void AllreduceSum(int64_t* data, size_t count) override;
  void AllreduceMax(double* data, size_t count) override;
  void Broadcast(void* data, size_t bytes, int root) override;
  void Barrier() override;
  void ReduceBlobs(const uint8_t* send, size_t send_bytes,
                   const BlobReduceFn& reduce,
                   std::vector<uint8_t>* result) override;

 private:
  SocketTransport(int rank, int world_size) : rank_(rank), world_(world_size) {}

  void Handshake(int port, int timeout_ms);

  template <typename T, typename Op>
  void AllreduceImpl(uint16_t opcode, T* data, size_t count, Op op);

  // Client side: one request/result round trip with the root.
  void ClientRound(uint16_t opcode, const void* send, size_t send_bytes,
                   std::vector<uint8_t>* result_payload);

  int rank_;
  int world_;
  // Root: peer_fds_[r] is the socket to rank r (index 0 unused).
  // Clients: peer_fds_[0] is the socket to the root.
  std::vector<int> peer_fds_;
  // Collective counter; identical on every rank because collectives are
  // globally ordered. Stamped into every frame and validated on receipt.
  uint64_t seq_ = 0;
  std::vector<uint8_t> scratch_;
};

}  // namespace harp
