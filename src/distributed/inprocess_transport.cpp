#include "distributed/inprocess_transport.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace harp {

InProcessCluster::InProcessCluster(int world_size) : world_(world_size) {
  HARP_CHECK_GE(world_size, 1);
  rendezvous_.buffers.assign(static_cast<size_t>(world_size), nullptr);
  transports_.reserve(static_cast<size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    transports_.push_back(InProcessTransport(this, rank, world_size));
  }
}

template <typename StageFn>
void InProcessCluster::Arrive(StageFn&& stage) {
  auto& r = rendezvous_;
  std::unique_lock<std::mutex> lock(r.mutex);
  const uint64_t generation = r.generation;
  if (++r.arrived == world_) {
    r.arrived = 0;
    stage();
    ++r.generation;
    r.cv.notify_all();
  } else {
    r.cv.wait(lock, [&] { return r.generation != generation; });
  }
}

void InProcessCluster::Depart() {
  auto& r = rendezvous_;
  std::unique_lock<std::mutex> lock(r.mutex);
  const uint64_t generation = r.exit_generation;
  if (++r.departed == world_) {
    r.departed = 0;
    ++r.exit_generation;
    r.cv.notify_all();
  } else {
    r.cv.wait(lock, [&] { return r.exit_generation != generation; });
  }
}

template <typename T, typename Op>
void InProcessTransport::AllreduceImpl(T* data, size_t count, Op op) {
  if (world_ == 1) return;
  auto& r = cluster_->rendezvous_;
  constexpr size_t kChunk = InProcessCluster::kChunkElems;

  r.buffers[static_cast<size_t>(rank_)] = data;
  cluster_->Arrive([&] {
    r.cursor.store(0, std::memory_order_relaxed);
    r.chunks_done.store(0, std::memory_order_relaxed);
    r.num_chunks = static_cast<int64_t>((count + kChunk - 1) / kChunk);
  });

  // Work phase: every arrived thread claims chunks and reduces all ranks'
  // contributions for that chunk into rank 0's buffer — rank order is
  // preserved WITHIN each chunk, so the result is bit-identical to the
  // serial rank-ordered reduction regardless of which thread takes which
  // chunk.
  T* dst = static_cast<T*>(r.buffers[0]);
  const int64_t num_chunks = r.num_chunks;
  for (;;) {
    const int64_t c = r.cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) break;
    const size_t begin = static_cast<size_t>(c) * kChunk;
    const size_t end = std::min(count, begin + kChunk);
    for (int t = 1; t < world_; ++t) {
      const T* src = static_cast<const T*>(r.buffers[static_cast<size_t>(t)]);
      for (size_t i = begin; i < end; ++i) op(dst[i], src[i]);
    }
    r.chunks_done.fetch_add(1, std::memory_order_release);
  }
  while (r.chunks_done.load(std::memory_order_acquire) < num_chunks) {
    std::this_thread::yield();
  }
  // Replicate the finished result; every non-root rank copies its own
  // output (parallel across ranks by construction).
  if (rank_ != 0) std::copy(dst, dst + count, data);

  cluster_->Depart();
}

void InProcessTransport::AllreduceSum(double* data, size_t count) {
  AllreduceImpl(data, count, [](double& a, double b) { a += b; });
}

void InProcessTransport::AllreduceSum(int64_t* data, size_t count) {
  AllreduceImpl(data, count, [](int64_t& a, int64_t b) { a += b; });
}

void InProcessTransport::AllreduceMax(double* data, size_t count) {
  AllreduceImpl(data, count,
                [](double& a, double b) { a = std::max(a, b); });
}

void InProcessTransport::Broadcast(void* data, size_t bytes, int root) {
  if (world_ == 1) return;
  HARP_CHECK_GE(root, 0);
  HARP_CHECK_LT(root, world_);
  auto& r = cluster_->rendezvous_;
  r.buffers[static_cast<size_t>(rank_)] = data;
  cluster_->Arrive([] {});
  if (rank_ != root) {
    const char* src =
        static_cast<const char*>(r.buffers[static_cast<size_t>(root)]);
    std::memcpy(data, src, bytes);
  }
  cluster_->Depart();
}

void InProcessTransport::Barrier() {
  if (world_ == 1) return;
  cluster_->Arrive([] {});
}

void InProcessTransport::ReduceBlobs(const uint8_t* send, size_t send_bytes,
                                     const BlobReduceFn& reduce,
                                     std::vector<uint8_t>* result) {
  if (world_ == 1) {
    Frames frames;
    frames.emplace_back(send, send_bytes);
    reduce(frames, result);
    return;
  }
  auto& r = cluster_->rendezvous_;
  // Publish {ptr, size} through the shared pointer slots: the pointer slot
  // carries the frame, sizes ride in a per-collective descriptor.
  struct Slot {
    const uint8_t* data;
    size_t bytes;
  };
  Slot slot{send, send_bytes};
  r.buffers[static_cast<size_t>(rank_)] = &slot;
  cluster_->Arrive([&] {
    // Last arrival reduces all frames in rank order into the shared result
    // blob, under the lock, so released peers see the finished bytes.
    Frames frames;
    frames.reserve(static_cast<size_t>(world_));
    for (int t = 0; t < world_; ++t) {
      const Slot* s = static_cast<const Slot*>(r.buffers[static_cast<size_t>(t)]);
      frames.emplace_back(s->data, s->bytes);
    }
    r.blob_result.clear();
    reduce(frames, &r.blob_result);
  });
  result->assign(r.blob_result.begin(), r.blob_result.end());
  cluster_->Depart();
}

}  // namespace harp
