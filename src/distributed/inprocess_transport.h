// In-process Transport backend: W worker threads in one process meeting at
// rendezvous-based collectives.
//
// This is the CI-friendly simulated cluster. Dense allreduces are blocked
// into fixed element chunks reduced IN PARALLEL by the arrived worker
// threads (an atomic chunk cursor hands out chunks; within each chunk the
// rank contributions are still summed in ascending rank order, so the
// result is bitwise identical to the serial rank-ordered reduction — there
// is a regression test pinning that). The old design reduced the whole
// payload on the last-arriving thread while every peer waited; for
// histogram-sized payloads that serialized the dominant cost of the
// exchange.
//
// Every collective is a three-phase rendezvous:
//   1. arrival    all ranks publish their buffer pointer (mutex + cv);
//                 the last arrival stages the work descriptor and releases
//   2. work       lock-free: threads claim chunks / copy their own output
//   3. departure  mutex + cv again, so no rank can re-enter the next
//                 collective (and overwrite its buffer) while a peer is
//                 still reading shared memory
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "distributed/transport.h"

namespace harp {

class InProcessCluster;

class InProcessTransport final : public Transport {
 public:
  int rank() const override { return rank_; }
  int world_size() const override { return world_; }

  void AllreduceSum(double* data, size_t count) override;
  void AllreduceSum(int64_t* data, size_t count) override;
  void AllreduceMax(double* data, size_t count) override;
  void Broadcast(void* data, size_t bytes, int root) override;
  void Barrier() override;
  void ReduceBlobs(const uint8_t* send, size_t send_bytes,
                   const BlobReduceFn& reduce,
                   std::vector<uint8_t>* result) override;

 private:
  friend class InProcessCluster;
  InProcessTransport(InProcessCluster* cluster, int rank, int world)
      : cluster_(cluster), rank_(rank), world_(world) {}

  template <typename T, typename Op>
  void AllreduceImpl(T* data, size_t count, Op op);

  InProcessCluster* cluster_;
  int rank_;
  int world_;
};

// Shared rendezvous state plus one transport handle per rank. Thread r must
// be the only thread using transport(r); the cluster must outlive them.
class InProcessCluster {
 public:
  explicit InProcessCluster(int world_size);

  int world_size() const { return world_; }
  InProcessTransport& transport(int rank) {
    return transports_[static_cast<size_t>(rank)];
  }

  // Fixed dense-allreduce chunk size (elements). Chunk boundaries are part
  // of the determinism contract only in that they are FIXED — within a
  // chunk ranks reduce in rank order, so any chunking gives the serial
  // result bit for bit.
  static constexpr size_t kChunkElems = 8192;

 private:
  friend class InProcessTransport;

  struct Rendezvous {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    int departed = 0;
    uint64_t generation = 0;       // bumped when all ranks arrived
    uint64_t exit_generation = 0;  // bumped when all ranks departed
    std::vector<void*> buffers;
    // Chunked-reduce work descriptor (staged by the last arrival).
    alignas(64) std::atomic<int64_t> cursor{0};
    alignas(64) std::atomic<int64_t> chunks_done{0};
    int64_t num_chunks = 0;
    // ReduceBlobs scratch: the reducing rank's output, copied by everyone
    // during the work phase.
    std::vector<uint8_t> blob_result;
  };

  // Blocks until all ranks arrived; the last arrival runs `stage` (under
  // the lock — its writes happen-before every peer's release) and wakes
  // everyone.
  template <typename StageFn>
  void Arrive(StageFn&& stage);
  // Blocks until all ranks passed their work phase.
  void Depart();

  const int world_;
  Rendezvous rendezvous_;
  std::vector<InProcessTransport> transports_;
};

}  // namespace harp
