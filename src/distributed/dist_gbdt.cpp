#include "distributed/dist_gbdt.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "core/grow_policy.h"
#include "core/hist_builder.h"
#include "core/histogram.h"
#include "core/objective.h"
#include "core/row_partitioner.h"
#include "core/split_evaluator.h"

namespace harp {
namespace {

// One worker's training state and loop. Determinism argument: every
// worker sees identical global histograms (rank-ordered reduction),
// identical node sums, and runs the identical FindSplit / queue logic, so
// trees, margins-per-shard and models evolve in lockstep without any
// decision broadcast.
class Worker {
 public:
  Worker(Communicator& comm, const Dataset& shard, const QuantileCuts& cuts,
         const TrainParams& params)
      : comm_(comm),
        shard_(shard),
        params_(params),
        matrix_(BinnedMatrix::Build(shard, cuts)),
        evaluator_(params),
        hists_(matrix_.TotalBins()),
        partitioner_(matrix_.num_rows(), params.use_membuf) {}

  GbdtModel Run() {
    const auto objective = Objective::Create(params_.objective);
    const double base_margin = objective->InitialMargin(params_.base_score);
    GbdtModel model(params_.objective, base_margin, matrix_.cuts());
    std::vector<double> margins(shard_.num_rows(), base_margin);
    std::vector<GradientPair> gradients;

    for (int iter = 0; iter < params_.num_trees; ++iter) {
      objective->ComputeGradients(shard_.labels(), margins, &gradients);
      RegTree tree = BuildTree(gradients);
      // Leaf scatter on the local shard.
      for (int id = 0; id < tree.num_nodes(); ++id) {
        if (tree.node(id).IsLeaf()) {
          partitioner_.AddToMargins(id, tree.node(id).leaf_value, &margins);
        }
      }
      model.AddTree(std::move(tree));
    }
    return model;
  }

 private:
  // Builds global histograms for `nodes`: local serial build, then one
  // allreduce over the concatenated buffers.
  void BuildGlobalHists(const std::vector<int>& nodes,
                        std::vector<GHPair>* scratch) {
    const size_t total_bins = matrix_.TotalBins();
    scratch->assign(nodes.size() * total_bins, GHPair{});
    const BuildContext ctx{matrix_, params_, *null_pool_, partitioner_,
                           hists_};
    for (size_t i = 0; i < nodes.size(); ++i) {
      BuildHistSerial(ctx, nodes[i], scratch->data() + i * total_bins);
    }
    comm_.AllreduceSum(scratch->data(), scratch->size());
  }

  Candidate FindSplitFor(int node_id, int depth, const GHPair& sum,
                         const GHPair* hist) {
    Candidate cand;
    cand.node_id = node_id;
    cand.depth = depth;
    cand.split = evaluator_.FindBestSplit(matrix_, hist, sum, 0,
                                          matrix_.num_features());
    return cand;
  }

  RegTree BuildTree(const std::vector<GradientPair>& gradients) {
    const int64_t max_leaves = params_.MaxLeaves();
    const int max_depth = params_.MaxDepth();
    const int max_nodes = static_cast<int>(2 * max_leaves);
    partitioner_.Reset(gradients, max_nodes);

    RegTree tree;
    tree.mutable_nodes().reserve(static_cast<size_t>(max_nodes));
    // Global root sum.
    GHPair root_sum = partitioner_.NodeSum(0);
    comm_.AllreduceSum(&root_sum, 1);
    int64_t global_rows = partitioner_.num_rows();
    comm_.AllreduceSum(&global_rows, 1);
    tree.mutable_node(0).sum = root_sum;
    tree.mutable_node(0).num_rows = static_cast<uint32_t>(global_rows);

    std::vector<GHPair> scratch;
    GrowQueue queue(params_.grow_policy);
    {
      BuildGlobalHists({0}, &scratch);
      const Candidate root = FindSplitFor(0, 0, root_sum, scratch.data());
      if (root.split.IsValid() && max_leaves > 1 && max_depth > 0) {
        queue.Push(root);
      }
    }

    int64_t leaves = 1;
    const size_t total_bins = matrix_.TotalBins();
    while (!queue.Empty() && leaves < max_leaves) {
      const std::vector<Candidate> batch = queue.PopBatch(
          params_.EffectiveTopK(),
          static_cast<int>(std::min<int64_t>(max_leaves - leaves, 1 << 20)));
      if (batch.empty()) break;

      // Apply splits on the local shard; gather children and their GLOBAL
      // row counts (one int64 allreduce for the batch).
      std::vector<int> children;
      std::vector<int64_t> child_rows;
      for (const Candidate& cand : batch) {
        const float cut =
            matrix_.cuts().CutFor(cand.split.feature, cand.split.bin);
        const auto [left, right] =
            tree.ApplySplit(cand.node_id, cand.split, cut);
        partitioner_.ApplySplit(cand.node_id, left, right, matrix_,
                                cand.split.feature, cand.split.bin,
                                cand.split.default_left);
        children.push_back(left);
        children.push_back(right);
        child_rows.push_back(partitioner_.NodeSize(left));
        child_rows.push_back(partitioner_.NodeSize(right));
      }
      comm_.AllreduceSum(child_rows.data(), child_rows.size());
      for (size_t i = 0; i < children.size(); ++i) {
        tree.mutable_node(children[i]).num_rows =
            static_cast<uint32_t>(child_rows[i]);
      }
      leaves += static_cast<int64_t>(batch.size());

      BuildGlobalHists(children, &scratch);
      for (size_t i = 0; i < children.size(); ++i) {
        const int child = children[i];
        const Candidate cand =
            FindSplitFor(child, tree.node(child).depth,
                         tree.node(child).sum,
                         scratch.data() + i * total_bins);
        if (cand.split.IsValid() && cand.depth < max_depth) {
          queue.Push(cand);
        }
      }
    }

    for (int id = 0; id < tree.num_nodes(); ++id) {
      TreeNode& node = tree.mutable_node(id);
      if (node.IsLeaf()) node.leaf_value = evaluator_.LeafValue(node.sum);
    }
    return tree;
  }

  Communicator& comm_;
  const Dataset& shard_;
  const TrainParams& params_;
  BinnedMatrix matrix_;
  SplitEvaluator evaluator_;
  HistogramPool hists_;
  RowPartitioner partitioner_;
  // BuildContext wants a pool reference; the per-worker path is serial,
  // so a 1-thread pool shared by this worker suffices.
  std::unique_ptr<ThreadPool> null_pool_ = std::make_unique<ThreadPool>(1);
};

}  // namespace

DistributedResult DistributedGbdt::Train(const Dataset& dataset, int workers,
                                         const TrainParams& params) {
  params.Validate();
  HARP_CHECK_GE(workers, 1);
  HARP_CHECK_LE(static_cast<uint32_t>(workers), dataset.num_rows());

  // Global quantile cuts, computed once (a real deployment would merge
  // distributed sketches; see GkSketch::Merge).
  QuantileCuts cuts = QuantileCuts::Compute(dataset, params.max_bins);

  // Contiguous row shards.
  std::vector<Dataset> shards;
  shards.reserve(static_cast<size_t>(workers));
  const uint32_t rows = dataset.num_rows();
  for (int w = 0; w < workers; ++w) {
    const uint32_t begin =
        static_cast<uint32_t>(static_cast<uint64_t>(rows) * w / workers);
    const uint32_t end = static_cast<uint32_t>(
        static_cast<uint64_t>(rows) * (w + 1) / workers);
    shards.push_back(dataset.Slice(begin, end));
  }

  DistributedResult result;
  result.workers = workers;
  std::vector<GbdtModel> models(static_cast<size_t>(workers));

  const Stopwatch watch;
  SimulatedCluster cluster(workers);
  cluster.Run([&](Communicator& comm) {
    Worker worker(comm, shards[static_cast<size_t>(comm.rank())], cuts,
                  params);
    models[static_cast<size_t>(comm.rank())] = worker.Run();
  });
  result.seconds = watch.ElapsedSec();
  result.comm = cluster.TotalStats();
  result.model = std::move(models[0]);
  return result;
}

}  // namespace harp
