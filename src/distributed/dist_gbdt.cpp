#include "distributed/dist_gbdt.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "core/grow_policy.h"
#include "core/hist_builder.h"
#include "core/histogram.h"
#include "core/objective.h"
#include "core/quantize.h"
#include "core/row_partitioner.h"
#include "core/simd.h"
#include "core/split_evaluator.h"

namespace harp {
namespace {

// One worker's training state and loop. Determinism argument: every
// worker sees identical global histograms (rank-ordered reduction — and
// the sparse/quantized encodings are exact, see sparse_hist.h), identical
// node sums, and runs the identical FindSplit / queue logic, so trees,
// margins-per-shard and models evolve in lockstep without any decision
// broadcast.
class ShardWorker {
 public:
  ShardWorker(Communicator& comm, const Dataset& shard,
              const QuantileCuts& cuts, const TrainParams& params,
              int worker_threads)
      : comm_(comm),
        shard_(shard),
        params_(params),
        matrix_(BinnedMatrix::Build(shard, cuts)),
        evaluator_(params),
        hists_(matrix_.TotalBins()),
        partitioner_(matrix_.num_rows(), params.use_membuf),
        pool_(std::max(1, worker_threads)),
        use_quant_(params.quantize_hist),
        sparse_(params.comm_compress == "sparse"),
        simd_level_(ResolveSimdLevel(params.simd)) {}

  GbdtModel Run() {
    const auto objective = Objective::Create(params_.objective);
    const double base_margin = objective->InitialMargin(params_.base_score);
    GbdtModel model(params_.objective, base_margin, matrix_.cuts());
    std::vector<double> margins(shard_.num_rows(), base_margin);
    std::vector<GradientPair> gradients;

    for (int iter = 0; iter < params_.num_trees; ++iter) {
      objective->ComputeGradients(shard_.labels(), margins, &gradients);
      RegTree tree = BuildTree(gradients, iter);
      // Leaf scatter on the local shard.
      for (int id = 0; id < tree.num_nodes(); ++id) {
        if (tree.node(id).IsLeaf()) {
          partitioner_.AddToMargins(id, tree.node(id).leaf_value, &margins);
        }
      }
      model.AddTree(std::move(tree));
    }
    return model;
  }

 private:
  BuildContext Context() {
    return BuildContext{matrix_,       params_,
                        pool_,         partitioner_,
                        hists_,        use_quant_ ? &quant_round_ : nullptr,
                        simd_level_};
  }

  // Agrees on this round's quantization scales: maxima via AllreduceMax
  // (order-independent), sums and the row count via the rank-ordered f64
  // allreduce — every rank derives IDENTICAL scales from the agreed
  // totals, which the exact int64 wire encoding depends on.
  void AgreeQuantScales(const std::vector<GradientPair>& gradients,
                        int iter) {
    const QuantStats local = ComputeQuantStats(gradients, &pool_);
    double maxima[2] = {local.g_max, local.h_max};
    comm_.AllreduceMax(maxima, 2);
    double sums[3] = {local.g_sum, local.h_sum, local.rows};
    comm_.AllreduceSum(sums, 3);
    QuantStats global;
    global.g_max = maxima[0];
    global.h_max = maxima[1];
    global.g_sum = sums[0];
    global.h_sum = sums[1];
    global.rows = sums[2];
    quant_round_.scales = QuantScalesFromStats(global);
    QuantizeGradients(gradients, quant_round_.scales,
                      params_.quant_stochastic,
                      params_.seed + static_cast<uint64_t>(iter),
                      static_cast<int>(simd_level_), &pool_,
                      &quant_round_.packed);
  }

  // Builds global histograms for `nodes`: threaded local build on the DP
  // kernel layer (per-thread replicas, touched-region reduce), then one
  // histogram exchange.
  void BuildGlobalHists(const std::vector<int>& nodes) {
    for (const int node : nodes) hists_.Acquire(node);
    const BuildContext ctx = Context();
    dp_.Build(ctx, nodes);

    hist_ptrs_.clear();
    for (const int node : nodes) hist_ptrs_.push_back(hists_.Get(node));
    Communicator::HistExchangeOpts opts;
    opts.sparse = sparse_;
    opts.quant = use_quant_;
    opts.scales = quant_round_.scales;
    comm_.AllreduceHistograms(hist_ptrs_.data(),
                              static_cast<uint32_t>(nodes.size()),
                              static_cast<uint32_t>(matrix_.TotalBins()),
                              opts);
  }

  Candidate FindSplitFor(int node_id, int depth, const GHPair& sum,
                         const GHPair* hist) {
    Candidate cand;
    cand.node_id = node_id;
    cand.depth = depth;
    cand.split = evaluator_.FindBestSplit(matrix_, hist, sum, 0,
                                          matrix_.num_features());
    return cand;
  }

  RegTree BuildTree(const std::vector<GradientPair>& gradients, int iter) {
    const int64_t max_leaves = params_.MaxLeaves();
    const int max_depth = params_.MaxDepth();
    const int max_nodes = static_cast<int>(2 * max_leaves);
    partitioner_.Reset(gradients, max_nodes, &pool_);
    hists_.ReleaseAll();
    if (use_quant_) AgreeQuantScales(gradients, iter);

    RegTree tree;
    tree.mutable_nodes().reserve(static_cast<size_t>(max_nodes));
    // Global root sum.
    GHPair root_sum = partitioner_.NodeSum(0, &pool_);
    comm_.AllreduceSum(&root_sum, 1);
    int64_t global_rows = partitioner_.num_rows();
    comm_.AllreduceSum(&global_rows, 1);
    tree.mutable_node(0).sum = root_sum;
    tree.mutable_node(0).num_rows = static_cast<uint32_t>(global_rows);

    GrowQueue queue(params_.grow_policy);
    {
      BuildGlobalHists({0});
      const Candidate root = FindSplitFor(0, 0, root_sum, hists_.Get(0));
      hists_.Release(0);
      if (root.split.IsValid() && max_leaves > 1 && max_depth > 0) {
        queue.Push(root);
      }
    }

    int64_t leaves = 1;
    while (!queue.Empty() && leaves < max_leaves) {
      const std::vector<Candidate> batch = queue.PopBatch(
          params_.EffectiveTopK(),
          static_cast<int>(std::min<int64_t>(max_leaves - leaves, 1 << 20)));
      if (batch.empty()) break;

      // Apply splits on the local shard; gather children and their GLOBAL
      // row counts (one int64 allreduce for the batch).
      std::vector<int> children;
      std::vector<int64_t> child_rows;
      for (const Candidate& cand : batch) {
        const float cut =
            matrix_.cuts().CutFor(cand.split.feature, cand.split.bin);
        const auto [left, right] =
            tree.ApplySplit(cand.node_id, cand.split, cut);
        partitioner_.ApplySplit(cand.node_id, left, right, matrix_,
                                cand.split.feature, cand.split.bin,
                                cand.split.default_left);
        children.push_back(left);
        children.push_back(right);
        child_rows.push_back(partitioner_.NodeSize(left));
        child_rows.push_back(partitioner_.NodeSize(right));
      }
      comm_.AllreduceSum(child_rows.data(), child_rows.size());
      for (size_t i = 0; i < children.size(); ++i) {
        tree.mutable_node(children[i]).num_rows =
            static_cast<uint32_t>(child_rows[i]);
      }
      leaves += static_cast<int64_t>(batch.size());

      BuildGlobalHists(children);
      for (const int child : children) {
        const Candidate cand = FindSplitFor(child, tree.node(child).depth,
                                            tree.node(child).sum,
                                            hists_.Get(child));
        hists_.Release(child);
        if (cand.split.IsValid() && cand.depth < max_depth) {
          queue.Push(cand);
        }
      }
    }

    for (int id = 0; id < tree.num_nodes(); ++id) {
      TreeNode& node = tree.mutable_node(id);
      if (node.IsLeaf()) node.leaf_value = evaluator_.LeafValue(node.sum);
    }
    return tree;
  }

  Communicator& comm_;
  const Dataset& shard_;
  const TrainParams& params_;
  BinnedMatrix matrix_;
  SplitEvaluator evaluator_;
  HistogramPool hists_;
  RowPartitioner partitioner_;
  ThreadPool pool_;
  HistBuilderDP dp_;
  const bool use_quant_;
  const bool sparse_;
  const SimdLevel simd_level_;
  QuantRound quant_round_;
  std::vector<GHPair*> hist_ptrs_;
};

// Contiguous shard boundaries: rank r owns rows [rows*r/W, rows*(r+1)/W).
std::pair<uint32_t, uint32_t> ShardRange(uint32_t rows, int rank, int world) {
  const uint32_t begin =
      static_cast<uint32_t>(static_cast<uint64_t>(rows) * rank / world);
  const uint32_t end =
      static_cast<uint32_t>(static_cast<uint64_t>(rows) * (rank + 1) / world);
  return {begin, end};
}

}  // namespace

GbdtModel DistributedGbdt::TrainShard(const Dataset& dataset,
                                      Communicator& comm,
                                      const TrainParams& params,
                                      int worker_threads) {
  params.Validate();
  const int world = comm.world_size();
  HARP_CHECK_LE(static_cast<uint32_t>(world), dataset.num_rows());

  // Global quantile cuts, computed identically in every process (a real
  // deployment would merge distributed sketches; see GkSketch::Merge).
  const QuantileCuts cuts = QuantileCuts::Compute(dataset, params.max_bins);
  const auto [begin, end] = ShardRange(dataset.num_rows(), comm.rank(), world);
  const Dataset shard = dataset.Slice(begin, end);
  ShardWorker worker(comm, shard, cuts, params, worker_threads);
  return worker.Run();
}

DistributedResult DistributedGbdt::Train(const Dataset& dataset, int workers,
                                         const TrainParams& params,
                                         int worker_threads) {
  params.Validate();
  HARP_CHECK_GE(workers, 1);
  HARP_CHECK_LE(static_cast<uint32_t>(workers), dataset.num_rows());

  const QuantileCuts cuts = QuantileCuts::Compute(dataset, params.max_bins);
  std::vector<Dataset> shards;
  shards.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    const auto [begin, end] = ShardRange(dataset.num_rows(), w, workers);
    shards.push_back(dataset.Slice(begin, end));
  }

  DistributedResult result;
  result.workers = workers;
  std::vector<GbdtModel> models(static_cast<size_t>(workers));
  std::vector<CommStats> per_rank(static_cast<size_t>(workers));

  const Stopwatch watch;
  SimulatedCluster cluster(workers);
  cluster.Run([&](Communicator& comm) {
    ShardWorker worker(comm, shards[static_cast<size_t>(comm.rank())], cuts,
                       params, worker_threads);
    models[static_cast<size_t>(comm.rank())] = worker.Run();
    per_rank[static_cast<size_t>(comm.rank())] = comm.stats();
  });
  result.seconds = watch.ElapsedSec();
  result.comm = cluster.TotalStats();
  result.per_rank = std::move(per_rank);
  result.model = std::move(models[0]);
  return result;
}

}  // namespace harp
