// Collective-communication layer for sharded training.
//
// The paper's stated future work is distributed HarpGBDT: "Both XGBoost
// and LightGBM build distributed GBDT upon a collective communication
// layer" (Section VI). Communicator is that layer's front end: typed
// collectives with per-rank traffic accounting plus the compressed
// histogram exchange. The actual byte movement is delegated to a pluggable
// Transport backend (distributed/transport.h) — worker threads in one
// process for CI, or real processes over loopback TCP.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/gh.h"
#include "core/quantize.h"
#include "distributed/transport.h"

namespace harp {

struct CommStats {
  int64_t allreduce_calls = 0;
  int64_t allreduce_bytes = 0;  // payload size x (world - 1), per call
  int64_t broadcast_calls = 0;
  int64_t broadcast_bytes = 0;  // payload size x (world - 1), per call
  int64_t barriers = 0;
  // Histogram-exchange accounting (AllreduceHistograms only). Wire bytes
  // are what this rank physically moved — sent frame + received result —
  // and dense bytes are what the uncompressed f64 exchange would have
  // moved, so wire/dense is the measured compression ratio. Both are 0 at
  // world == 1 (no communication happens).
  int64_t hist_exchanges = 0;
  int64_t hist_wire_bytes = 0;
  int64_t hist_dense_bytes = 0;

  CommStats& operator+=(const CommStats& o) {
    allreduce_calls += o.allreduce_calls;
    allreduce_bytes += o.allreduce_bytes;
    broadcast_calls += o.broadcast_calls;
    broadcast_bytes += o.broadcast_bytes;
    barriers += o.barriers;
    hist_exchanges += o.hist_exchanges;
    hist_wire_bytes += o.hist_wire_bytes;
    hist_dense_bytes += o.hist_dense_bytes;
    return *this;
  }
};

// Per-rank handle over a Transport. Not thread-safe: one rank, one thread.
class Communicator {
 public:
  explicit Communicator(Transport& transport) : transport_(&transport) {}

  int rank() const { return transport_->rank(); }
  int world_size() const { return transport_->world_size(); }

  // Element-wise sum of every rank's `data` (all ranks receive the
  // result). Reduction combines ranks in ascending rank order, so the
  // result is bitwise identical on every rank, across runs, and across
  // transport backends.
  void AllreduceSum(GHPair* data, size_t count);
  void AllreduceSum(double* data, size_t count);
  void AllreduceSum(int64_t* data, size_t count);

  // Element-wise maximum (quantization scale agreement).
  void AllreduceMax(double* data, size_t count);

  // Copies `bytes` of root's buffer into every other rank's buffer.
  void Broadcast(void* data, size_t bytes, int root);

  void Barrier();

  // In-place global sum of a batch of node histograms (`num_hists`
  // pointers, `cells` GHPair slots each). opts.sparse selects the
  // compressed SparseHistogram wire format; opts.quant additionally ships
  // 8-byte int64 cells using the round's agreed scales. Every combination
  // produces bitwise-identical histograms (sparse_hist.h documents why).
  struct HistExchangeOpts {
    bool sparse = false;
    bool quant = false;
    QuantScales scales;
  };
  void AllreduceHistograms(GHPair* const* hists, uint32_t num_hists,
                           uint32_t cells, const HistExchangeOpts& opts);

  // This rank's accumulated communication counters.
  const CommStats& stats() const { return stats_; }

 private:
  Transport* transport_;
  CommStats stats_;
  // Exchange scratch, reused across batches.
  std::vector<GHPair> dense_scratch_;
  std::vector<uint8_t> send_frame_;
  std::vector<uint8_t> recv_frame_;
};

// W worker threads in one process, each with its own Communicator over an
// InProcessTransport. Retained front end for tests/examples; the transport
// lives in distributed/inprocess_transport.h.
class SimulatedCluster {
 public:
  explicit SimulatedCluster(int world_size);

  // Runs fn on world_size threads, each with its own Communicator.
  // Exceptions from workers are rethrown (first wins).
  void Run(const std::function<void(Communicator&)>& fn);

  // Sum of all ranks' counters from the last Run.
  CommStats TotalStats() const { return total_stats_; }

 private:
  const int world_;
  CommStats total_stats_;
};

}  // namespace harp
