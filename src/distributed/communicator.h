// In-process simulation of a collective-communication layer.
//
// The paper's stated future work is distributed HarpGBDT: "Both XGBoost
// and LightGBM build distributed GBDT upon a collective communication
// layer" (Section VI). We do not have a cluster, so per the substitution
// policy we build the closest synthetic equivalent: W worker threads, each
// owning a row shard, synchronizing through rendezvous-based collectives
// (allreduce / broadcast / barrier) with deterministic rank-ordered
// reduction. The exercised code path — local histograms, allreduce,
// replicated split decisions — is exactly the histogram-aggregation
// algorithm of distributed XGBoost, and communication volume is counted
// so the cost model is measurable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/gh.h"

namespace harp {

struct CommStats {
  int64_t allreduce_calls = 0;
  int64_t allreduce_bytes = 0;  // payload size x (world - 1), per call
  int64_t broadcast_calls = 0;
  int64_t barriers = 0;
};

class SimulatedCluster;

// Per-worker handle; valid only inside SimulatedCluster::Run.
class Communicator {
 public:
  int rank() const { return rank_; }
  int world_size() const { return world_; }

  // Element-wise sum of every rank's `data` (all ranks receive the
  // result). Reduction is performed in rank order by one thread, so the
  // result is bitwise identical on every rank and across runs.
  void AllreduceSum(GHPair* data, size_t count);
  void AllreduceSum(double* data, size_t count);
  void AllreduceSum(int64_t* data, size_t count);

  // Copies `bytes` of root's buffer into every other rank's buffer.
  void Broadcast(void* data, size_t bytes, int root);

  void Barrier();

  // This rank's accumulated communication counters.
  const CommStats& stats() const { return stats_; }

 private:
  friend class SimulatedCluster;
  Communicator(SimulatedCluster* cluster, int rank, int world)
      : cluster_(cluster), rank_(rank), world_(world) {}

  template <typename T>
  void AllreduceImpl(T* data, size_t count);

  SimulatedCluster* cluster_;
  int rank_;
  int world_;
  CommStats stats_;
};

class SimulatedCluster {
 public:
  explicit SimulatedCluster(int world_size);

  // Runs fn on world_size threads, each with its own Communicator.
  // Exceptions from workers are rethrown (first wins).
  void Run(const std::function<void(Communicator&)>& fn);

  // Sum of all ranks' counters from the last Run.
  CommStats TotalStats() const { return total_stats_; }

 private:
  friend class Communicator;

  // Two-phase rendezvous shared by all collectives: phase 1 collects
  // every rank's buffer pointer, the last arrival performs the operation,
  // phase 2 releases everyone after they have consumed the result.
  struct Rendezvous {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    int departed = 0;
    uint64_t generation = 0;
    std::vector<void*> buffers;
  };

  const int world_;
  Rendezvous rendezvous_;
  CommStats total_stats_;
};

}  // namespace harp
