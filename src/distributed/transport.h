// Collective-communication transport interface.
//
// The paper's stated future work is distributed HarpGBDT on a collective
// communication layer (Section VI). The training code talks to that layer
// through Communicator (stats, typed views, the compressed histogram
// exchange); Communicator talks to one of the pluggable Transport backends
// below:
//
//   InProcessTransport   W worker threads in one process, rendezvous-based
//                        collectives (the CI-friendly simulated cluster).
//   SocketTransport      W real processes over loopback TCP with framed
//                        messages (star topology through rank 0).
//
// Both backends honour the same determinism contract: every element-wise
// reduction combines rank contributions in ASCENDING RANK ORDER, so f64
// results are bitwise identical on every rank, across runs, and across
// backends — which is what lets CI diff a multi-process model file against
// the in-process run byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace harp {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int world_size() const = 0;

  // Element-wise sum of every rank's `data`; all ranks receive the result.
  // Reduction is rank-ordered (bitwise deterministic for f64).
  virtual void AllreduceSum(double* data, size_t count) = 0;
  virtual void AllreduceSum(int64_t* data, size_t count) = 0;

  // Element-wise maximum (order-independent; used by the quantization
  // scale-agreement round).
  virtual void AllreduceMax(double* data, size_t count) = 0;

  // Copies `bytes` of root's buffer into every other rank's buffer.
  virtual void Broadcast(void* data, size_t bytes, int root) = 0;

  virtual void Barrier() = 0;

  // Variable-length reduce — the primitive under the compressed sparse
  // histogram exchange. Every rank contributes one frame; `reduce` runs
  // exactly once per collective (on the reducing rank: rank 0 for the
  // socket backend, the last arrival in process) over all ranks' frames
  // presented in rank order, and fills the result frame, which every rank
  // then receives in *result. `reduce` must be a pure function of the
  // frames so the result is identical no matter which rank runs it.
  using Frames = std::vector<std::pair<const uint8_t*, size_t>>;
  using BlobReduceFn =
      std::function<void(const Frames&, std::vector<uint8_t>*)>;
  virtual void ReduceBlobs(const uint8_t* send, size_t send_bytes,
                           const BlobReduceFn& reduce,
                           std::vector<uint8_t>* result) = 0;
};

}  // namespace harp
