// SparseHistogram wire format for the compressed histogram exchange.
//
// Block-distributed GBDT (Vasiloudis et al., PAPERS.md) shows the per-batch
// histogram exchange dominates sharded training cost, and that most of the
// exchanged cells are zero: a node deep in the tree holds few rows, each
// row touches one bin per feature, and sparse datasets leave most non-
// missing bins empty. This codec ships only the touched cells:
//
//   header | run list | region bitmaps | cells
//
// The histograms of one exchange (a TopK batch: num_hists node histograms
// of cells_per_hist GHPair slots each) are viewed as one virtual
// concatenation, cut into REGIONS of kSparseRegionCells cells (regions
// never straddle a histogram boundary; the last region of each histogram
// may be partial). A region is TOUCHED when any of its cells has nonzero
// bits. The run list is the sorted, merged list of touched region ranges;
// each listed region carries a one-byte occupancy bitmap (bit i = cell
// begin+i is nonzero — kSparseRegionCells is 8 exactly so one region is
// one byte), and the payload stores ONLY the set cells, in region order
// then bit order. The bitmap matters because bin 0 of every feature is
// the missing-value bin: any node with rows touches it for every feature,
// so without per-cell occupancy every feature would drag a full region
// onto the wire — with it, a lone hot missing bin costs 9 bytes, not a
// region. Cells are raw f64 GHPairs (16 B) or — when the round's
// gradients are quantized — the int64 fixed-point cells of
// core/quantize.h (8 B). Quantized cells are EXACT re-encodings: power-
// of-two scales
// make the f64 histogram value k*2^-s, so multiplying by 2^s recovers the
// integer k bit for bit, and the integer sums dequantize back exactly.
//
// Determinism: ReduceSparseHist combines rank frames per cell in ascending
// rank order (the ranks touching each region are tracked with PR 1's
// TouchedRegions bookkeeping), so the reduced result is bitwise identical
// to the dense rank-ordered reduction whenever skipped cells are exact
// +0.0 — which this pipeline guarantees (cells with -0.0 bits count as
// touched and are shipped).
//
// All parsing entry points validate the frame (magic, version, geometry,
// run monotonicity, payload size) and throw std::runtime_error on
// malformed input — frames may arrive from a real socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/gh.h"
#include "core/quantize.h"
#include "distributed/transport.h"

namespace harp {

// Cells per touched-region flag. Exactly 8 so a region's occupancy bitmap
// is one byte; small enough that a deep node's handful of touched bins
// does not drag in whole features, large enough that the run list stays a
// fraction of the payload.
inline constexpr uint32_t kSparseRegionCells = 8;

inline constexpr uint32_t kSparseHistMagic = 0x31505348u;  // "HSP1" (LE)
inline constexpr uint16_t kSparseHistVersion = 1;

#pragma pack(push, 1)
struct SparseHistHeader {
  uint32_t magic = kSparseHistMagic;
  uint16_t version = kSparseHistVersion;
  uint16_t flags = 0;  // bit 0: quantized int64 cells
  uint32_t num_hists = 0;
  uint32_t cells_per_hist = 0;
  uint32_t num_runs = 0;
  uint32_t payload_cells = 0;  // total SET bits across all region bitmaps
};
struct SparseHistRun {
  uint32_t first_region = 0;
  uint32_t num_regions = 0;
};
#pragma pack(pop)

inline constexpr uint16_t kSparseHistFlagQuant = 1;

// How one exchange's cells are encoded. When `quant` is set the scales
// must be the round's globally agreed quantization scales.
struct SparseHistFormat {
  bool quant = false;
  QuantScales scales;
};

// Encodes `num_hists` histograms of `cells` GHPair slots each into *out.
void EncodeSparseHist(const GHPair* const* hists, uint32_t num_hists,
                      uint32_t cells, const SparseHistFormat& fmt,
                      std::vector<uint8_t>* out);

// Reduces every rank's frame (in rank order) into the union frame *out.
// All frames must describe the same geometry/format; throws
// std::runtime_error on malformed or inconsistent frames.
void ReduceSparseHist(const Transport::Frames& frames, uint32_t num_hists,
                      uint32_t cells, const SparseHistFormat& fmt,
                      std::vector<uint8_t>* out);

// Decodes a frame into dense histograms: untouched cells are zeroed,
// touched cells are copied (or exactly dequantized). Throws
// std::runtime_error on malformed frames.
void DecodeSparseHist(const uint8_t* data, size_t bytes,
                      GHPair* const* hists, uint32_t num_hists,
                      uint32_t cells, const SparseHistFormat& fmt);

// Bytes a dense f64 exchange of the same histograms would ship one way.
inline int64_t DenseHistBytes(uint32_t num_hists, uint32_t cells) {
  return static_cast<int64_t>(num_hists) * cells *
         static_cast<int64_t>(sizeof(GHPair));
}

}  // namespace harp
