// Distributed GBDT training (simulated cluster).
//
// Histogram-aggregation data parallelism, the design distributed XGBoost
// and LightGBM use and the paper names as future work: rows are sharded
// across W workers; every worker builds local histograms for the current
// candidate batch, one allreduce produces the global histograms, and each
// worker then makes the identical (deterministic) split decision — no
// split broadcast needed. The returned model is bitwise identical on every
// worker.
#pragma once

#include "core/gbdt.h"
#include "distributed/communicator.h"

namespace harp {

struct DistributedResult {
  GbdtModel model;   // rank 0's copy (all ranks build the same model)
  CommStats comm;    // aggregated communication counters
  int workers = 1;
  double seconds = 0.0;
};

class DistributedGbdt {
 public:
  // Shards `dataset` by contiguous row ranges over `workers` simulated
  // workers and trains params.num_trees trees. Within each worker the
  // computation is serial (the workers are the parallelism). Growth
  // policies and regularization behave exactly as in GbdtTrainer; the
  // mode/block parameters are not used (no intra-worker threading).
  static DistributedResult Train(const Dataset& dataset, int workers,
                                 const TrainParams& params);
};

}  // namespace harp
