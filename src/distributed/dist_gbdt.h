// Distributed GBDT training over a pluggable transport.
//
// Histogram-aggregation data parallelism, the design distributed XGBoost
// and LightGBM use and the paper names as future work: rows are sharded
// across W workers; every worker builds local histograms for the current
// candidate batch (on the PR 1 kernel layer, threaded inside the worker),
// one histogram exchange — dense f64 or the compressed SparseHistogram
// format, selected by TrainParams::comm_compress — produces the global
// histograms, and each worker then makes the identical (deterministic)
// split decision — no split broadcast needed. The returned model is
// bitwise identical on every worker, for both exchange encodings, and for
// both transport backends.
#pragma once

#include <vector>

#include "core/gbdt.h"
#include "distributed/communicator.h"

namespace harp {

struct DistributedResult {
  GbdtModel model;   // rank 0's copy (all ranks build the same model)
  CommStats comm;    // communication counters aggregated over all ranks
  std::vector<CommStats> per_rank;  // each rank's own counters
  int workers = 1;
  double seconds = 0.0;
};

class DistributedGbdt {
 public:
  // Shards `dataset` by contiguous row ranges over `workers` in-process
  // workers (threads over an InProcessTransport) and trains
  // params.num_trees trees. `worker_threads` sizes each worker's intra-
  // worker ThreadPool (default 1: the workers are the parallelism).
  static DistributedResult Train(const Dataset& dataset, int workers,
                                 const TrainParams& params,
                                 int worker_threads = 1);

  // One rank's share of a sharded run over an externally created
  // transport (e.g. SocketTransport in a real multi-process launch).
  // `dataset` is the FULL dataset: every rank computes identical quantile
  // cuts from it and trains on the comm.rank()-th contiguous row shard, so
  // separately launched processes stay in lockstep. Returns this rank's
  // model — bitwise identical on every rank.
  static GbdtModel TrainShard(const Dataset& dataset, Communicator& comm,
                              const TrainParams& params,
                              int worker_threads = 1);
};

}  // namespace harp
