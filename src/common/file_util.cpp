#include "common/file_util.h"

#include <cstdio>
#include <fstream>

namespace harp {

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  const std::streamoff size = file.tellg();
  if (size < 0) {
    *error = "cannot stat " + path;
    return false;
  }
  out->resize(static_cast<size_t>(size));
  file.seekg(0, std::ios::beg);
  if (size > 0) {
    file.read(out->data(), static_cast<std::streamsize>(size));
    if (file.gcount() != static_cast<std::streamsize>(size)) {
      *error = "short read from " + path;
      return false;
    }
  }
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& content,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      *error = "cannot open " + tmp;
      return false;
    }
    file.write(content.data(),
               static_cast<std::streamsize>(content.size()));
    if (!file.good()) {
      *error = "write failed for " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename failed for " + path;
    return false;
  }
  return true;
}

}  // namespace harp
