#include "common/file_util.h"

#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define HARP_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#else
#define HARP_HAVE_FSYNC 0
#endif

namespace harp {

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  const std::streamoff size = file.tellg();
  if (size < 0) {
    *error = "cannot stat " + path;
    return false;
  }
  out->resize(static_cast<size_t>(size));
  file.seekg(0, std::ios::beg);
  if (size > 0) {
    file.read(out->data(), static_cast<std::streamsize>(size));
    if (file.gcount() != static_cast<std::streamsize>(size)) {
      *error = "short read from " + path;
      return false;
    }
  }
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& content,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
#if HARP_HAVE_FSYNC
  // POSIX path: write + fsync the tmp file before the rename. Without the
  // fsync a crash after rename can leave the final name pointing at a file
  // whose data blocks never hit disk — a valid-looking but torn image that
  // the mmap cache backend would then happily map.
  const int fd =
      open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    *error = "cannot open " + tmp;
    return false;
  }
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      close(fd);
      *error = "write failed for " + tmp;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (fsync(fd) != 0) {
    close(fd);
    *error = "fsync failed for " + tmp;
    return false;
  }
  if (close(fd) != 0) {
    *error = "close failed for " + tmp;
    return false;
  }
#else
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      *error = "cannot open " + tmp;
      return false;
    }
    file.write(content.data(),
               static_cast<std::streamsize>(content.size()));
    if (!file.good()) {
      *error = "write failed for " + tmp;
      return false;
    }
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename failed for " + path;
    return false;
  }
  return true;
}

}  // namespace harp
