#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/env.h"

namespace harp {
namespace {

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{[] {
    return GetEnvInt("HARP_LOG_LEVEL",
                     static_cast<int>(LogLevel::kWarning));
  }()};
  return level;
}

// Serializes whole lines so multithreaded logs stay readable.
std::mutex& OutputMutex() {
  static std::mutex m;
  return m;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void EmitLine(LogLevel level, const char* file, int line,
              const std::string& text) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(OutputMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               text.c_str());
  std::fflush(stderr);
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStorage().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() { EmitLine(level_, file_, line_, stream_.str()); }

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ':' << line << ": " << condition
          << ' ';
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::fprintf(stderr, "[FATAL] %s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace detail
}  // namespace harp
