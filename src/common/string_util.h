// String parsing/formatting helpers for the text readers and model IO.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace harp {

// Splits on a single delimiter; keeps empty fields (CSV semantics).
std::vector<std::string_view> Split(std::string_view text, char delim);

// Splits on runs of whitespace; drops empty fields (LIBSVM semantics).
std::vector<std::string_view> SplitWhitespace(std::string_view text);

// Strips leading/trailing spaces, tabs and CR/LF.
std::string_view Trim(std::string_view text);

// Strict parsers: return false (leaving *out untouched) on malformed input.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt(std::string_view text, int64_t* out);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Formats seconds with an adaptive unit (ns/us/ms/s) for human-facing tables.
std::string HumanDuration(double seconds);

// Formats a byte count with an adaptive unit (B/KB/MB/GB).
std::string HumanBytes(double bytes);

}  // namespace harp
