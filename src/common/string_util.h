// String parsing/formatting helpers for the text readers and model IO.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace harp {

// Splits on a single delimiter; keeps empty fields (CSV semantics).
std::vector<std::string_view> Split(std::string_view text, char delim);

// Splits on runs of whitespace; drops empty fields (LIBSVM semantics).
std::vector<std::string_view> SplitWhitespace(std::string_view text);

// Strips leading/trailing spaces, tabs and CR/LF.
std::string_view Trim(std::string_view text);

// Strict parsers: return false (leaving *out untouched) on malformed input.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt(std::string_view text, int64_t* out);

namespace detail {

// Out-of-line tail of ParseFloat: std::from_chars when available, then
// ParseDouble for the inputs only strtod understands (leading '+', hex
// floats, subnormals, whitespace).
bool ParseFloatFallback(std::string_view text, float* out);

// Exact powers of ten: 10^k is representable without rounding for k <= 22.
inline constexpr double kExactPow10[23] = {
    1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
    1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};

}  // namespace detail

// Fast float parser for the reader hot loops. Accepts exactly the inputs
// ParseDouble accepts and returns the same narrowed result, so parallel-
// parser output stays bit-identical to the ParseDouble + cast the serial
// parsers use. The inline path is Clinger's exact case — a mantissa of at
// most 15 digits (< 2^53, exact in a double) scaled by one exact power of
// ten is a single correctly-rounded operation, which is the same value
// strtod produces — and everything else defers to the fallback.
inline bool ParseFloat(std::string_view text, float* out) {
  // Mirror ParseDouble's 63-char limit so all paths accept the same set.
  if (text.empty() || text.size() >= 64) return false;
  const char* p = text.data();
  const char* end = p + text.size();
  bool negative = false;
  if (*p == '-') {
    negative = true;
    ++p;
  }
  uint64_t mantissa = 0;
  int digits = 0;
  while (p != end && *p >= '0' && *p <= '9') {
    mantissa = mantissa * 10 + static_cast<uint64_t>(*p - '0');
    ++digits;
    ++p;
  }
  int exp10 = 0;
  if (p != end && *p == '.') {
    ++p;
    const char* fraction_start = p;
    while (p != end && *p >= '0' && *p <= '9') {
      mantissa = mantissa * 10 + static_cast<uint64_t>(*p - '0');
      ++digits;
      ++p;
    }
    exp10 = -static_cast<int>(p - fraction_start);
  }
  if (digits == 0 || digits > 15) {
    return detail::ParseFloatFallback(text, out);
  }
  if (p != end) {
    if (*p != 'e' && *p != 'E') {
      return detail::ParseFloatFallback(text, out);
    }
    ++p;
    bool exp_negative = false;
    if (p != end && (*p == '+' || *p == '-')) {
      exp_negative = *p == '-';
      ++p;
    }
    const char* exp_start = p;
    int exp_value = 0;
    while (p != end && *p >= '0' && *p <= '9' && exp_value < 1000) {
      exp_value = exp_value * 10 + (*p - '0');
      ++p;
    }
    if (p != end || p == exp_start) {
      return detail::ParseFloatFallback(text, out);
    }
    exp10 += exp_negative ? -exp_value : exp_value;
  }
  if (exp10 < -22 || exp10 > 22) {
    return detail::ParseFloatFallback(text, out);
  }
  double value = static_cast<double>(mantissa);
  value = exp10 >= 0 ? value * detail::kExactPow10[exp10]
                     : value / detail::kExactPow10[-exp10];
  *out = static_cast<float>(negative ? -value : value);
  return true;
}

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Formats seconds with an adaptive unit (ns/us/ms/s) for human-facing tables.
std::string HumanDuration(double seconds);

// Formats a byte count with an adaptive unit (B/KB/MB/GB).
std::string HumanBytes(double bytes);

}  // namespace harp
