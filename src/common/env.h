// Environment-variable configuration helpers.
//
// Benchmarks and examples use these so the same binaries can run at
// laptop scale (defaults) or be scaled up via HARP_BENCH_SCALE /
// HARP_BENCH_THREADS without recompiling.
#pragma once

#include <string>

namespace harp {

// Returns the integer value of `name`, or `fallback` when unset/unparsable.
int GetEnvInt(const char* name, int fallback);

// Returns the double value of `name`, or `fallback` when unset/unparsable.
double GetEnvDouble(const char* name, double fallback);

// Returns the string value of `name`, or `fallback` when unset.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace harp
