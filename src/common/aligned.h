// Cache-line-aligned allocation helpers.
//
// Per-thread histogram replicas in the data-parallel builder are placed in
// cache-line-aligned buffers so replica boundaries never share a line
// (false sharing would masquerade as the "memory bound" behaviour the paper
// measures, corrupting the experiment).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace harp {

inline constexpr size_t kCacheLineBytes = 64;

// THE histogram-storage alignment: per-thread replica strides, padded
// partial-sum structs (PaddedGHPair), and the quantized int64 accumulator
// buffers all derive their padding from this one constant, so a future
// alignment change cannot leave one of them behind.
inline constexpr size_t kHistAlignBytes = kCacheLineBytes;

// Rounds a slot count up so `n * sizeof(T)` is a whole number of aligned
// lines. Used wherever per-thread buffers are carved out of one flat
// allocation (replica strides): a boundary inside a line would put two
// threads' accumulators on the same line — false sharing that would
// masquerade as the memory-bound behaviour under study.
template <typename T>
constexpr size_t AlignedSlotCount(size_t n) {
  static_assert(kHistAlignBytes % sizeof(T) == 0,
                "histogram cell size must divide the alignment");
  constexpr size_t per_line = kHistAlignBytes / sizeof(T);
  return (n + per_line - 1) / per_line * per_line;
}

// Minimal aligned allocator for std::vector.
template <typename T, size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    void* ptr = std::aligned_alloc(Alignment, RoundUp(n * sizeof(T)));
    if (ptr == nullptr) throw std::bad_alloc();
    return static_cast<T*>(ptr);
  }

  void deallocate(T* ptr, size_t) noexcept { std::free(ptr); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const noexcept {
    return false;
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

 private:
  // aligned_alloc requires the size to be a multiple of the alignment.
  static size_t RoundUp(size_t bytes) {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace harp
