// Memory-mapped file access + process-memory introspection.
//
// The out-of-core trainer backs the bin matrix with a read-only mapping of
// the binary cache file and steers the kernel's paging with madvise: the
// RowBlockPrefetcher advises upcoming row windows in (MADV_WILLNEED) while
// retiring ones behind the sweep (MADV_DONTNEED), so resident set stays
// bounded by the advise window instead of the matrix size. Everything here
// is POSIX-gated; on other platforms MappedFile::Open reports failure and
// callers fall back to heap buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace harp {

enum class MemAdvice {
  kNormal,      // MADV_NORMAL: default kernel readahead
  kSequential,  // MADV_SEQUENTIAL: aggressive readahead, early reclaim
  kRandom,      // MADV_RANDOM: no readahead
  kWillNeed,    // MADV_WILLNEED: page in asynchronously
  kDontNeed,    // MADV_DONTNEED: drop resident pages (clean file pages
                // refault from page cache / disk on next touch)
};

// System page size (4096 on every target we build for; queried once).
size_t PageSize();

// Read-only private mapping of a whole file. The mapping lives until the
// object is destroyed; shared_ptr aliases into it (Dataset, BinnedMatrix)
// keep it alive via shared ownership.
class MappedFile {
 public:
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only. Returns nullptr with a message in *error on
  // open/map failure (including empty files and non-POSIX builds).
  static std::shared_ptr<MappedFile> Open(const std::string& path,
                                          std::string* error);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  // Applies `advice` to [offset, offset + length). The range is widened to
  // page boundaries (madvise requires a page-aligned start). Returns false
  // if the kernel rejected the hint; callers treat that as advisory.
  bool Advise(size_t offset, size_t length, MemAdvice advice) const;

 private:
  MappedFile(uint8_t* data, size_t size) : data_(data), size_(size) {}
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// Peak resident set size (VmHWM) in bytes; 0 when unavailable. Note VmHWM
// is reset by exec but not by fork — processes that must measure their own
// peak from a clean slate re-exec themselves (see bench_outofcore).
size_t PeakRssBytes();

// Current resident set size (VmRSS) in bytes; 0 when unavailable.
size_t CurrentRssBytes();

// Cumulative page-fault counts for this process (getrusage).
struct FaultCounts {
  int64_t minor = 0;  // satisfied without IO (page cache / zero page)
  int64_t major = 0;  // required IO
};
FaultCounts ProcessFaults();

}  // namespace harp
