#include "common/mmap_util.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define HARP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HARP_HAVE_MMAP 0
#endif

namespace harp {

size_t PageSize() {
#if HARP_HAVE_MMAP
  static const size_t kPage = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPage;
#else
  return 4096;
#endif
}

MappedFile::~MappedFile() {
#if HARP_HAVE_MMAP
  if (data_ != nullptr) munmap(data_, size_);
#endif
}

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path,
                                             std::string* error) {
#if HARP_HAVE_MMAP
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = "cannot open " + path;
    return nullptr;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size <= 0) {
    close(fd);
    *error = "cannot map empty or unstattable file " + path;
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // PROT_READ + MAP_PRIVATE: writes through the mapping fault (the
  // read-only-storage contract the death test pins down), and
  // MADV_DONTNEED drops clean PTEs without touching the file.
  void* addr = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);  // the mapping holds its own reference to the file
  if (addr == MAP_FAILED) {
    *error = "mmap failed for " + path;
    return nullptr;
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<uint8_t*>(addr), size));
#else
  *error = "mmap unavailable on this platform (" + path + ")";
  return nullptr;
#endif
}

bool MappedFile::Advise(size_t offset, size_t length, MemAdvice advice) const {
#if HARP_HAVE_MMAP
  if (data_ == nullptr || offset >= size_) return false;
  if (length > size_ - offset) length = size_ - offset;
  // Widen to page boundaries: madvise demands an aligned start, and a
  // partial tail page is advised whole (harmless for read-only data).
  const size_t page = PageSize();
  const size_t begin = offset & ~(page - 1);
  length += offset - begin;
  int hint = MADV_NORMAL;
  switch (advice) {
    case MemAdvice::kNormal: hint = MADV_NORMAL; break;
    case MemAdvice::kSequential: hint = MADV_SEQUENTIAL; break;
    case MemAdvice::kRandom: hint = MADV_RANDOM; break;
    case MemAdvice::kWillNeed: hint = MADV_WILLNEED; break;
    case MemAdvice::kDontNeed: hint = MADV_DONTNEED; break;
  }
  return madvise(const_cast<uint8_t*>(data_) + begin, length, hint) == 0;
#else
  (void)offset;
  (void)length;
  (void)advice;
  return false;
#endif
}

namespace {

// Parses "VmXXX:  123 kB" lines out of /proc/self/status.
size_t ReadProcStatusKb(const char* key) {
#if HARP_HAVE_MMAP
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = static_cast<size_t>(std::strtoull(line + key_len, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

size_t PeakRssBytes() { return ReadProcStatusKb("VmHWM:") * 1024; }

size_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS:") * 1024; }

FaultCounts ProcessFaults() {
  FaultCounts counts;
#if HARP_HAVE_MMAP
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    counts.minor = usage.ru_minflt;
    counts.major = usage.ru_majflt;
  }
#endif
  return counts;
}

}  // namespace harp
