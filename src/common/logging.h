// Minimal leveled logger.
//
// Severity is controlled by the HARP_LOG_LEVEL environment variable
// (0=debug, 1=info, 2=warning, 3=error; default 2 so library code is quiet
// in tests and benchmarks). CHECK macros are always active, including in
// release builds: histogram/partition invariants guard against silent data
// corruption, which is far more expensive than the branch.
#pragma once

#include <sstream>
#include <string>

namespace harp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Currently active level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Terminates the process after streaming the message (CHECK failures).
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows a streamed expression when a log statement is compiled out.
struct VoidifyStream {
  void operator&(std::ostream&) {}
};

}  // namespace detail
}  // namespace harp

#define HARP_LOG(level)                                                     \
  (static_cast<int>(::harp::LogLevel::k##level) <                           \
   static_cast<int>(::harp::GetLogLevel()))                                 \
      ? (void)0                                                             \
      : ::harp::detail::VoidifyStream() &                                   \
            ::harp::detail::LogMessage(::harp::LogLevel::k##level,          \
                                       __FILE__, __LINE__)                  \
                .stream()

#define HARP_CHECK(cond)                                                    \
  (cond) ? (void)0                                                          \
         : ::harp::detail::VoidifyStream() &                                \
               ::harp::detail::FatalMessage(__FILE__, __LINE__, #cond)      \
                   .stream()

#define HARP_CHECK_EQ(a, b) HARP_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define HARP_CHECK_NE(a, b) HARP_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define HARP_CHECK_LT(a, b) HARP_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define HARP_CHECK_LE(a, b) HARP_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define HARP_CHECK_GT(a, b) HARP_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define HARP_CHECK_GE(a, b) HARP_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
