// Deterministic, seedable PRNG used throughout the library.
//
// std::mt19937 distributions are not guaranteed bit-identical across
// standard library implementations; the synthetic dataset generators must be
// exactly reproducible (tests pin shape statistics), so we ship our own
// SplitMix64-seeded Xoshiro256** plus the few distributions we need.
#pragma once

#include <cmath>
#include <cstdint>

namespace harp {

// SplitMix64: used to expand a single seed into Xoshiro state.
inline uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Xoshiro256**: fast, high-quality, tiny state. Deterministic everywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Standard normal via Box-Muller (no cached second value: determinism is
  // simpler to reason about when each call consumes a fixed number of draws).
  double Normal() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Guard u1 == 0 which would take log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  // Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with rate lambda.
  double Exponential(double lambda) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace harp
