// Whole-file IO helpers shared by the text readers and the binary cache.
#pragma once

#include <string>

namespace harp {

// Reads the entire file at `path` into *out with a single read() into a
// pre-sized buffer (no stream double-copy). Returns false with a message
// in *error on open/read failure; *out is unspecified then.
bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error);

// Writes `content` to `path` in one write through a tmp file + fsync +
// rename, so readers never observe a partially written file and a crash
// cannot leave the final name pointing at torn data. Returns false with a
// message in *error on failure.
bool WriteStringToFile(const std::string& path, const std::string& content,
                       std::string* error);

}  // namespace harp
