#include "common/env.h"

#include <cstdlib>

namespace harp {

int GetEnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int>(parsed);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::string(value);
}

}  // namespace harp
