// Small descriptive-statistics helpers shared by the data-shape reports
// (Table III's S and CV columns) and the benchmark harness.
#pragma once

#include <cstdint>
#include <vector>

namespace harp {

// Streaming mean/variance/min/max (Welford). Numerically stable.
class RunningStats {
 public:
  void Add(double x);

  int64_t Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance/stddev (the paper's CV = stdev / mean).
  double Variance() const;
  double Stddev() const;
  // Coefficient of variation; 0 when the mean is 0.
  double CV() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample using linear interpolation; q in [0, 1].
// Sorts a copy; intended for reporting, not hot paths.
double Percentile(std::vector<double> values, double q);

// Mean of a sample (0 for empty input).
double Mean(const std::vector<double>& values);

// Geometric mean; all inputs must be > 0 (returns 0 for empty input).
double GeometricMean(const std::vector<double>& values);

}  // namespace harp
