// Small descriptive-statistics helpers shared by the data-shape reports
// (Table III's S and CV columns), the benchmark harness, and the serving
// layer's latency reporting.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace harp {

// Streaming mean/variance/min/max (Welford). Numerically stable.
class RunningStats {
 public:
  void Add(double x);

  int64_t Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance/stddev (the paper's CV = stdev / mean).
  double Variance() const;
  double Stddev() const;
  // Coefficient of variation; 0 when the mean is 0.
  double CV() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log-bucketed latency histogram with cheap percentile extraction.
//
// Values (int64 nanoseconds, the library's time base) are bucketed exactly
// below 32 ns and at 32 sub-buckets per power of two above, giving <= ~3%
// relative bucket width — more than enough for p50/p99/p999 reporting —
// while Record() stays a few ALU ops plus one array increment, cheap
// enough to sit on a per-request serving path. A recorder is
// single-writer; per-thread recorders are combined with Merge() at
// reporting time (the pattern bench_serve and ServeStats use).
class LatencyRecorder {
 public:
  void Record(int64_t ns);
  void Merge(const LatencyRecorder& other);
  void Reset();

  int64_t Count() const { return count_; }
  int64_t MinNs() const { return count_ > 0 ? min_ : 0; }
  int64_t MaxNs() const { return count_ > 0 ? max_ : 0; }
  double MeanNs() const;

  // Percentile (q in [0, 1]) reconstructed by linear interpolation inside
  // the covering bucket, clamped to the exact observed [min, max].
  double PercentileNs(double q) const;

  // One-line "label: n=... p50=...us p99=...us p999=...us max=...us"
  // summary (IngestStats-style reporting).
  std::string Summary(const std::string& label) const;

  static constexpr int kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr int kBuckets =
      ((63 - kSubBits + 1) << kSubBits) + (1 << kSubBits);

 private:
  static int BucketIndex(int64_t ns);
  // [lo, hi) value range covered by bucket `index`.
  static void BucketBounds(int index, int64_t* lo, int64_t* hi);

  std::array<int64_t, kBuckets> counts_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Percentile of a sample using linear interpolation; q in [0, 1].
// Sorts a copy; intended for reporting, not hot paths.
double Percentile(std::vector<double> values, double q);

// Mean of a sample (0 for empty input).
double Mean(const std::vector<double>& values);

// Geometric mean; all inputs must be > 0 (returns 0 for empty input).
double GeometricMean(const std::vector<double>& values);

}  // namespace harp
