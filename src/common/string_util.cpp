#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace harp {

std::vector<std::string_view> Split(std::string_view text, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> parts;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) parts.push_back(text.substr(start, i - start));
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  // strtod needs a NUL terminator; string_views from Split are not
  // NUL-terminated, so copy into a small buffer.
  char buf[64];
  if (text.size() >= sizeof(buf)) return false;
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool detail::ParseFloatFallback(std::string_view text, float* out) {
#if defined(__cpp_lib_to_chars)
  {
    double value = 0.0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec == std::errc() && result.ptr == end) {
      // Subnormal results fall through to the strtod path: glibc flags
      // them ERANGE and ParseDouble rejects, and the two paths must agree.
      if (value == 0.0 ||
          std::fabs(value) >= std::numeric_limits<double>::min()) {
        *out = static_cast<float>(value);
        return true;
      }
    } else if (result.ec == std::errc::result_out_of_range) {
      return false;
    }
  }
#endif
  double value = 0.0;
  if (!ParseDouble(text, &value)) return false;
  *out = static_cast<float>(value);
  return true;
}

bool ParseInt(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  char buf[32];
  if (text.size() >= sizeof(buf)) return false;
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(buf, &end, 10);
  if (end != buf + text.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string HumanDuration(double seconds) {
  if (seconds < 1e-6) return StrFormat("%.1fns", seconds * 1e9);
  if (seconds < 1e-3) return StrFormat("%.1fus", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2fms", seconds * 1e3);
  return StrFormat("%.3fs", seconds);
}

std::string HumanBytes(double bytes) {
  if (bytes < 1024.0) return StrFormat("%.0fB", bytes);
  if (bytes < 1024.0 * 1024.0) return StrFormat("%.1fKB", bytes / 1024.0);
  if (bytes < 1024.0 * 1024.0 * 1024.0) {
    return StrFormat("%.1fMB", bytes / (1024.0 * 1024.0));
  }
  return StrFormat("%.2fGB", bytes / (1024.0 * 1024.0 * 1024.0));
}

}  // namespace harp
