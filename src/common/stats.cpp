#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace harp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

double RunningStats::CV() const {
  if (count_ == 0 || mean_ == 0.0) return 0.0;
  return Stddev() / mean_;
}

double Percentile(std::vector<double> values, double q) {
  HARP_CHECK(!values.empty());
  HARP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    HARP_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace harp
