#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace harp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

double RunningStats::CV() const {
  if (count_ == 0 || mean_ == 0.0) return 0.0;
  return Stddev() / mean_;
}

int LatencyRecorder::BucketIndex(int64_t ns) {
  if (ns < 0) ns = 0;
  if (ns < (int64_t{1} << kSubBits)) return static_cast<int>(ns);
  // ns lies in [2^k, 2^(k+1)); the top kSubBits bits after the leading one
  // select the sub-bucket, so relative bucket width is 2^-kSubBits.
  const int k = std::bit_width(static_cast<uint64_t>(ns)) - 1;
  const int sub = static_cast<int>((ns >> (k - kSubBits)) -
                                   (int64_t{1} << kSubBits));
  return ((k - kSubBits + 1) << kSubBits) + sub;
}

void LatencyRecorder::BucketBounds(int index, int64_t* lo, int64_t* hi) {
  if (index < (1 << kSubBits)) {
    *lo = index;
    *hi = index + 1;
    return;
  }
  const int e = index >> kSubBits;
  const int sub = index & ((1 << kSubBits) - 1);
  const int k = e + kSubBits - 1;
  *lo = (int64_t{1} << k) +
        (static_cast<int64_t>(sub) << (k - kSubBits));
  *hi = *lo + (int64_t{1} << (k - kSubBits));
}

void LatencyRecorder::Record(int64_t ns) {
  if (ns < 0) ns = 0;
  if (count_ == 0) {
    min_ = ns;
    max_ = ns;
  } else {
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }
  ++count_;
  sum_ += ns;
  ++counts_[static_cast<size_t>(BucketIndex(ns))];
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) {
    counts_[static_cast<size_t>(i)] +=
        other.counts_[static_cast<size_t>(i)];
  }
}

void LatencyRecorder::Reset() { *this = LatencyRecorder(); }

double LatencyRecorder::MeanNs() const {
  return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                    : 0.0;
}

double LatencyRecorder::PercentileNs(double q) const {
  HARP_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  if (q >= 1.0) return static_cast<double>(max_);
  const double target =
      std::max(1.0, q * static_cast<double>(count_));  // rank in [1, count]
  double cum = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t c = counts_[static_cast<size_t>(i)];
    if (c == 0) continue;
    if (cum + static_cast<double>(c) >= target) {
      int64_t lo = 0;
      int64_t hi = 0;
      BucketBounds(i, &lo, &hi);
      // The bucket holds ranks (cum, cum + c]; place rank `target` at its
      // position within [lo, hi) so a single-value bucket reports lo
      // exactly (values below 2^kSubBits are therefore exact).
      const double within =
          std::max(0.0, (target - cum - 1.0) / static_cast<double>(c));
      const double value =
          static_cast<double>(lo) + static_cast<double>(hi - lo) * within;
      return std::clamp(value, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    cum += static_cast<double>(c);
  }
  return static_cast<double>(max_);
}

std::string LatencyRecorder::Summary(const std::string& label) const {
  return StrFormat(
      "%s: n=%lld p50=%.1fus p99=%.1fus p999=%.1fus max=%.1fus",
      label.c_str(), static_cast<long long>(count_),
      PercentileNs(0.50) * 1e-3, PercentileNs(0.99) * 1e-3,
      PercentileNs(0.999) * 1e-3, static_cast<double>(MaxNs()) * 1e-3);
}

double Percentile(std::vector<double> values, double q) {
  HARP_CHECK(!values.empty());
  HARP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    HARP_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace harp
