// Monotonic stopwatch used by all instrumentation.
//
// All durations in the library are carried as int64 nanoseconds; convert to
// seconds only at reporting boundaries so accumulation stays exact.
#pragma once

#include <chrono>
#include <cstdint>

namespace harp {

// Current monotonic time in nanoseconds.
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double NsToSec(int64_t ns) { return static_cast<double>(ns) * 1e-9; }
inline double NsToMs(int64_t ns) { return static_cast<double>(ns) * 1e-6; }

// Simple stopwatch: constructed running, Elapsed*() reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(NowNs()) {}

  void Restart() { start_ns_ = NowNs(); }
  int64_t ElapsedNs() const { return NowNs() - start_ns_; }
  double ElapsedSec() const { return NsToSec(ElapsedNs()); }
  double ElapsedMs() const { return NsToMs(ElapsedNs()); }

 private:
  int64_t start_ns_;
};

// Accumulates intervals across many start/stop pairs (phase timers).
class AccumTimer {
 public:
  void Start() { start_ns_ = NowNs(); }
  void Stop() { total_ns_ += NowNs() - start_ns_; ++count_; }
  void AddNs(int64_t ns) { total_ns_ += ns; ++count_; }
  void Reset() { total_ns_ = 0; count_ = 0; }

  int64_t TotalNs() const { return total_ns_; }
  double TotalSec() const { return NsToSec(total_ns_); }
  int64_t Count() const { return count_; }

 private:
  int64_t start_ns_ = 0;
  int64_t total_ns_ = 0;
  int64_t count_ = 0;
};

// RAII guard that adds the scope's duration to an AccumTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(AccumTimer& timer) : timer_(timer), start_ns_(NowNs()) {}
  ~ScopedTimer() { timer_.AddNs(NowNs() - start_ns_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  AccumTimer& timer_;
  int64_t start_ns_;
};

}  // namespace harp
