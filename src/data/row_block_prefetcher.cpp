#include "data/row_block_prefetcher.h"

#include <algorithm>
#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#define HARP_PREFETCH_RT 1
#else
#define HARP_PREFETCH_RT 0
#endif

namespace harp {
namespace {

// Target duration of one full eviction pass over the mapping. The sweep
// must retire pages faster than the trainer faults them in, and faults
// arrive in bursts at page-cache (or, under a memory cgroup, disk)
// bandwidth during each histogram pass — so the pace is a fixed aggressive
// period rather than an average derived from tree time. A 50ms pass over
// an N-window mapping costs roughly N * ~80us of madvise per 50ms
// (evicting an absent window is a near-free no-op), low single-digit
// percent of one core.
constexpr int64_t kSweepPeriodNs = 50 * 1000 * 1000;

// Upper bound on eviction passes per tree, so fast trees over small
// mappings don't churn pages more than a few times per tree.
constexpr int64_t kMinSweepsPerTree = 3;

constexpr int64_t kMinStepNs = 10 * 1000;          // 10 us
constexpr int64_t kMaxStepNs = 20 * 1000 * 1000;   // 20 ms
constexpr int64_t kDefaultStepNs = 2 * 1000 * 1000;
constexpr int64_t kMinSleepNs = 1000 * 1000;       // wakeup granularity

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RowBlockPrefetcher::RowBlockPrefetcher(const BinMatrixStorage& storage,
                                       size_t window_bytes)
    : storage_(storage),
      window_bytes_(std::max<size_t>(window_bytes, 64 * 1024)) {
  if (storage_.mapped() && storage_.size() > 0) {
    num_windows_ = (storage_.size() + window_bytes_ - 1) / window_bytes_;
  }
}

RowBlockPrefetcher::~RowBlockPrefetcher() { Stop(); }

void RowBlockPrefetcher::Start() {
  if (num_windows_ == 0 || thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread(&RowBlockPrefetcher::SweepLoop, this);
#if HARP_PREFETCH_RT
  // The sweep spends ~1% CPU in madvise but must wake promptly: on a box
  // whose cores are all saturated by trainer threads, a CFS-scheduled
  // sweeper can see wakeup latencies of hundreds of milliseconds and the
  // eviction rate collapses. Lowest real-time priority fixes the latency
  // without meaningfully competing for compute; failure (no privilege) is
  // fine — the catch-up batching still retires the owed windows, just
  // burstier.
  sched_param param;
  param.sched_priority = 1;
  (void)pthread_setschedparam(thread_.native_handle(), SCHED_FIFO, &param);
#endif
}

void RowBlockPrefetcher::Pulse() {
  const int64_t now = NowNs();
  const int64_t last = last_pulse_ns_.exchange(now, std::memory_order_relaxed);
  if (last != 0) {
    const int64_t dt = now - last;
    const int64_t ema = ema_tree_ns_.load(std::memory_order_relaxed);
    ema_tree_ns_.store(ema == 0 ? dt : (3 * ema + dt) / 4,
                       std::memory_order_relaxed);
  }
}

void RowBlockPrefetcher::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

RowBlockPrefetcher::Stats RowBlockPrefetcher::GetStats() const {
  Stats stats;
  stats.advised_bytes = advised_bytes_.load(std::memory_order_relaxed);
  stats.retired_bytes = retired_bytes_.load(std::memory_order_relaxed);
  stats.sweeps = sweeps_.load(std::memory_order_relaxed);
  return stats;
}

void RowBlockPrefetcher::SweepLoop() {
  const size_t n = num_windows_;
  auto window_len = [&](size_t w) {
    const size_t begin = w * window_bytes_;
    return std::min(window_bytes_, storage_.size() - begin);
  };
  size_t w = 0;
  int64_t deficit_ns = 0;
  int64_t last_wake = NowNs();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // One full pass per kSweepPeriodNs, slowed for fast trees so the
    // matrix is still churned at most kMinSweepsPerTree times per tree.
    const int64_t ema = ema_tree_ns_.load(std::memory_order_relaxed);
    int64_t period_ns = kSweepPeriodNs;
    if (ema > 0 && ema / kMinSweepsPerTree < period_ns) {
      period_ns = ema / kMinSweepsPerTree;
    }
    int64_t step_ns = period_ns / static_cast<int64_t>(n);
    if (step_ns <= 0) step_ns = kDefaultStepNs;
    step_ns = std::min(std::max(step_ns, kMinStepNs), kMaxStepNs);
    // Sleep at a granularity the scheduler can honour; the work loop below
    // catches up on however much time actually passed, so an overshoot
    // here only batches evictions, it does not slow them down.
    if (cv_.wait_for(lock,
                     std::chrono::nanoseconds(std::max(step_ns, kMinSleepNs)),
                     [&] { return stop_; })) {
      break;
    }
    lock.unlock();
    const int64_t now = NowNs();
    const int64_t elapsed = now - last_wake + deficit_ns;
    last_wake = now;
    int64_t todo = elapsed / step_ns;
    if (todo < 1) todo = 1;
    if (todo >= static_cast<int64_t>(n)) {
      todo = static_cast<int64_t>(n);  // one full pass per wakeup, max
      deficit_ns = 0;
    } else {
      deficit_ns = elapsed - todo * step_ns;
    }
    // WILLNEED readahead only while keeping pace comfortably (todo == 1):
    // in catch-up mode the system is under fault pressure, and readahead
    // into a full memory cgroup reclaims synchronously inside madvise —
    // the opposite of helping.
    const bool prefetch_ahead = todo == 1;
    for (int64_t i = 0; i < todo; ++i) {
      // Double-buffered advise around the sweep position: pull the next
      // window toward the page cache, drop the previous one's PTEs.
      const size_t ahead = (w + 1) % n;
      const size_t behind = (w + n - 1) % n;
      if (prefetch_ahead &&
          storage_.Advise(ahead * window_bytes_, window_len(ahead),
                          MemAdvice::kWillNeed)) {
        advised_bytes_.fetch_add(static_cast<int64_t>(window_len(ahead)),
                                 std::memory_order_relaxed);
      }
      if (storage_.Advise(behind * window_bytes_, window_len(behind),
                          MemAdvice::kDontNeed)) {
        retired_bytes_.fetch_add(static_cast<int64_t>(window_len(behind)),
                                 std::memory_order_relaxed);
      }
      w = (w + 1) % n;
      if (w == 0) sweeps_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

}  // namespace harp
