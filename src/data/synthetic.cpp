#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Deterministic per-stream seed derivation.
uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  uint64_t s = base ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  return SplitMix64Next(s);
}

// Per-feature generation plan drawn once from the spec seed.
struct FeaturePlan {
  std::vector<uint32_t> distinct;  // quantization levels per feature
  std::vector<double> weight;      // label weight (0 for inactive features)
  std::vector<double> shift;       // distribution shift per feature
  std::vector<double> density;     // per-feature presence probability
  // Multiclass: per-class weights over the active features, row-major
  // [class][active feature index].
  std::vector<double> class_weight;
};

FeaturePlan MakePlan(const SyntheticSpec& spec) {
  FeaturePlan plan;
  plan.distinct.resize(spec.features);
  plan.weight.resize(spec.features, 0.0);
  plan.shift.resize(spec.features, 0.0);
  Rng rng(DeriveSeed(spec.seed, 0x5eed));

  // Log-normal multiplier with unit mean and the requested CV.
  const double cv = std::max(0.0, spec.distinct_cv);
  const double sigma = std::sqrt(std::log(1.0 + cv * cv));
  const double mu = -0.5 * sigma * sigma;

  for (uint32_t f = 0; f < spec.features; ++f) {
    if (!spec.explicit_distinct.empty()) {
      plan.distinct[f] =
          spec.explicit_distinct[f % spec.explicit_distinct.size()];
    } else {
      const double mult = (cv > 0.0)
                              ? std::exp(mu + sigma * rng.Normal())
                              : 1.0;
      const double d = spec.mean_distinct * mult;
      plan.distinct[f] = static_cast<uint32_t>(std::clamp(
          d, 2.0, static_cast<double>(spec.max_distinct)));
    }
    plan.shift[f] = rng.Normal() * 0.5;
  }
  const uint32_t active = std::min(spec.active_features, spec.features);
  for (uint32_t f = 0; f < active; ++f) {
    // Alternate signs so the score is centered; magnitudes in [0.5, 1.5].
    plan.weight[f] = (f % 2 == 0 ? 1.0 : -1.0) * (0.5 + rng.NextDouble());
  }
  if (spec.label == LabelKind::kMulticlass) {
    plan.class_weight.resize(static_cast<size_t>(spec.num_classes) * active);
    for (double& w : plan.class_weight) w = rng.Normal();
  }

  // Per-feature density. Skewed draws use a FRESH derived stream so that
  // density_skew == 0 leaves every other draw — and therefore every
  // existing dataset — bit-identical to the pre-knob generator.
  plan.density.assign(spec.features, spec.density);
  if (spec.density_skew > 0.0) {
    Rng skew_rng(DeriveSeed(spec.seed, 0xD51CE));
    const double scv = spec.density_skew;
    const double ssigma = std::sqrt(std::log(1.0 + scv * scv));
    const double smu = -0.5 * ssigma * ssigma;
    for (uint32_t f = 0; f < spec.features; ++f) {
      const double mult = std::exp(smu + ssigma * skew_rng.Normal());
      plan.density[f] = std::clamp(spec.density * mult, 0.0, 1.0);
    }
  }
  return plan;
}

// One row's generated data.
struct RowDraw {
  std::vector<float> values;  // size M, NaN for missing
  float label = 0.0f;
};

void DrawRow(const SyntheticSpec& spec, const FeaturePlan& plan, uint32_t row,
             RowDraw* out) {
  Rng rng(DeriveSeed(spec.seed, row));
  out->values.assign(spec.features, kMissingValue);

  double score = 0.0;
  const uint32_t active = std::min(spec.active_features, spec.features);
  // Latent continuous values of the active features (used by the label even
  // when the stored entry is missing would leak; missing entries contribute
  // nothing, so sparser datasets genuinely carry less signal).
  std::vector<double> latent(active, 0.0);

  for (uint32_t f = 0; f < spec.features; ++f) {
    const double z = rng.Normal() + plan.shift[f];
    const bool present = rng.Bernoulli(plan.density[f]);
    if (present) {
      // Quantize the latent normal into the feature's distinct levels over
      // +/- 4 sigma; occupancy follows the normal density, so bins are
      // realistically uneven.
      const uint32_t levels = plan.distinct[f];
      const double unit = std::clamp((z + 4.0) / 8.0, 0.0, 1.0);
      const uint32_t level = std::min(
          levels - 1, static_cast<uint32_t>(unit * levels));
      out->values[f] = static_cast<float>(level);
      if (f < active) latent[f] = z;
    }
  }

  for (uint32_t f = 0; f < active; ++f) score += plan.weight[f] * latent[f];
  if (spec.label == LabelKind::kBinaryNonlinear && active >= 3) {
    score += 0.8 * latent[0] * latent[1];
    score += 0.6 * std::sin(2.0 * latent[2]);
  }
  score /= std::sqrt(static_cast<double>(std::max(1u, active)));

  double encoded = 0.0;
  if (spec.response_encoded_feature) {
    // Exponentially distributed latent that dominates the label score:
    // highly response-correlated with a heavy tail (see below).
    encoded = rng.Exponential(1.0);
    score = 0.3 * score + 2.0 * (encoded - 1.0);
  }

  if (spec.label == LabelKind::kRegression) {
    out->label = static_cast<float>(spec.margin_scale * score + rng.Normal());
  } else if (spec.label == LabelKind::kMulticlass) {
    // Argmax of per-class linear scores plus noise scaled inversely with
    // the margin (larger margin_scale => cleaner classes).
    int best_class = 0;
    double best_score = -1e300;
    for (uint32_t c = 0; c < spec.num_classes; ++c) {
      double s = 0.0;
      for (uint32_t f = 0; f < active; ++f) {
        s += plan.class_weight[static_cast<size_t>(c) * active + f] *
             latent[f];
      }
      s += rng.Normal() * (2.0 / std::max(0.5, spec.margin_scale));
      if (s > best_score) {
        best_score = s;
        best_class = static_cast<int>(c);
      }
    }
    out->label = static_cast<float>(best_class);
  } else {
    const double p = Sigmoid(spec.margin_scale * score);
    out->label = rng.Bernoulli(p) ? 1.0f : 0.0f;
  }

  if (spec.response_encoded_feature && spec.features > 0) {
    // Store the exponential latent as feature 0: monotone in the class
    // probability with an exponentially thin tail, so gain-greedy
    // (leafwise) growth keeps peeling slices off the tail branch and
    // builds a very deep chain — the CRITEO pathology of Section V-F.
    out->values[0] = static_cast<float>(std::round(encoded * 64.0) / 64.0);
  }
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec, ThreadPool* pool) {
  HARP_CHECK_GT(spec.rows, 0u);
  HARP_CHECK_GT(spec.features, 0u);
  const FeaturePlan plan = MakePlan(spec);

  std::vector<float> labels(spec.rows);

  if (!spec.sparse_storage) {
    std::vector<float> values(
        static_cast<size_t>(spec.rows) * spec.features);
    auto fill = [&](int64_t begin, int64_t end, int) {
      RowDraw draw;
      for (int64_t r = begin; r < end; ++r) {
        DrawRow(spec, plan, static_cast<uint32_t>(r), &draw);
        std::copy(draw.values.begin(), draw.values.end(),
                  values.begin() + static_cast<size_t>(r) * spec.features);
        labels[static_cast<size_t>(r)] = draw.label;
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(spec.rows, fill);
    } else {
      fill(0, spec.rows, 0);
    }
    return Dataset::FromDense(spec.rows, spec.features, std::move(values),
                              std::move(labels));
  }

  // CSR: draw rows (parallel), then concatenate (serial, cheap).
  std::vector<std::vector<Entry>> row_entries(spec.rows);
  auto fill_sparse = [&](int64_t begin, int64_t end, int) {
    RowDraw draw;
    for (int64_t r = begin; r < end; ++r) {
      DrawRow(spec, plan, static_cast<uint32_t>(r), &draw);
      auto& entries = row_entries[static_cast<size_t>(r)];
      for (uint32_t f = 0; f < spec.features; ++f) {
        if (!IsMissing(draw.values[f])) {
          entries.push_back(Entry{f, draw.values[f]});
        }
      }
      labels[static_cast<size_t>(r)] = draw.label;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(spec.rows, fill_sparse);
  } else {
    fill_sparse(0, spec.rows, 0);
  }

  std::vector<uint32_t> row_ptr(spec.rows + 1, 0);
  for (uint32_t r = 0; r < spec.rows; ++r) {
    row_ptr[r + 1] =
        row_ptr[r] + static_cast<uint32_t>(row_entries[r].size());
  }
  std::vector<Entry> entries;
  entries.reserve(row_ptr.back());
  for (const auto& row : row_entries) {
    entries.insert(entries.end(), row.begin(), row.end());
  }
  return Dataset::FromCsr(spec.rows, spec.features, std::move(row_ptr),
                          std::move(entries), std::move(labels));
}

Dataset GenerateRankingSynthetic(const RankingSpec& spec, ThreadPool* pool) {
  HARP_CHECK_GT(spec.num_queries, 0u);
  HARP_CHECK_GT(spec.features, 0u);
  HARP_CHECK_GE(spec.min_docs, 1u);
  HARP_CHECK_LE(spec.min_docs, spec.max_docs);
  HARP_CHECK_GE(spec.max_relevance, 1);
  const uint32_t active = std::min(spec.active_features, spec.features);
  HARP_CHECK_GE(active, 1u);

  // Utility weights over the active features, drawn once.
  std::vector<double> weight(spec.features, 0.0);
  {
    Rng rng(DeriveSeed(spec.seed, 0x5eed));
    for (uint32_t f = 0; f < active; ++f) {
      weight[f] = (f % 2 == 0 ? 1.0 : -1.0) * (0.5 + rng.NextDouble());
    }
  }

  // Per-query document counts (serial prefix sum -> group boundaries).
  std::vector<uint32_t> group_ptr(spec.num_queries + 1, 0);
  for (uint32_t q = 0; q < spec.num_queries; ++q) {
    Rng rng(DeriveSeed(spec.seed, 0xD0C5000ULL + q));
    const uint32_t docs =
        spec.min_docs +
        static_cast<uint32_t>(rng.NextBelow(spec.max_docs - spec.min_docs + 1));
    group_ptr[q + 1] = group_ptr[q] + docs;
  }
  const uint32_t rows = group_ptr.back();

  std::vector<float> values(static_cast<size_t>(rows) * spec.features);
  std::vector<float> labels(rows);

  auto fill = [&](int64_t begin, int64_t end, int) {
    std::vector<double> latent;
    std::vector<uint32_t> order;
    for (int64_t qi = begin; qi < end; ++qi) {
      const uint32_t q = static_cast<uint32_t>(qi);
      const uint32_t row0 = group_ptr[q];
      const uint32_t n = group_ptr[q + 1] - row0;
      Rng rng(DeriveSeed(spec.seed, q));

      // Query topic: a per-query shift of every feature. It moves the
      // absolute feature values but not the within-query utility order.
      latent.assign(n, 0.0);
      std::vector<double> topic(spec.features);
      for (double& t : topic) t = rng.Normal() * spec.topic_scale;

      for (uint32_t d = 0; d < n; ++d) {
        float* row = values.data() +
                     static_cast<size_t>(row0 + d) * spec.features;
        double utility = 0.0;
        for (uint32_t f = 0; f < spec.features; ++f) {
          const double z = rng.Normal();
          row[f] = static_cast<float>(topic[f] + z);
          if (f < active) utility += weight[f] * z;
        }
        latent[d] = utility + spec.noise * rng.Normal();
      }

      // Grade by within-query quantile of the latent utility: the top
      // docs get max_relevance, the bottom get 0.
      order.resize(n);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (latent[a] != latent[b]) return latent[a] > latent[b];
        return a < b;
      });
      const uint32_t grades = static_cast<uint32_t>(spec.max_relevance) + 1;
      for (uint32_t pos = 0; pos < n; ++pos) {
        const uint32_t bucket = (pos * grades) / n;  // 0 = best docs
        labels[row0 + order[pos]] =
            static_cast<float>(static_cast<uint32_t>(spec.max_relevance) -
                               bucket);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForDynamic(spec.num_queries, 8, fill);
  } else {
    fill(0, spec.num_queries, 0);
  }

  Dataset ds = Dataset::FromDense(rows, spec.features, std::move(values),
                                  std::move(labels));
  ds.SetGroupPtr(std::move(group_ptr));
  return ds;
}

SyntheticSpec SynsetSpec(double scale) {
  SyntheticSpec spec;
  spec.name = "SYNSET";
  spec.rows = static_cast<uint32_t>(std::max(1.0, 60000.0 * scale));
  spec.features = 128;
  spec.density = 1.0;
  spec.mean_distinct = 256.0;
  spec.distinct_cv = 0.0;  // even bins: the ideal balanced workload
  spec.active_features = 12;
  spec.seed = 1001;
  return spec;
}

SyntheticSpec HiggsSpec(double scale) {
  SyntheticSpec spec;
  spec.name = "HIGGS";
  spec.rows = static_cast<uint32_t>(std::max(1.0, 80000.0 * scale));
  spec.features = 28;
  spec.density = 0.92;
  spec.mean_distinct = 180.0;
  spec.distinct_cv = 0.40;
  spec.active_features = 10;
  spec.seed = 1002;
  return spec;
}

SyntheticSpec AirlineSpec(double scale) {
  SyntheticSpec spec;
  spec.name = "AIRLINE";
  spec.rows = static_cast<uint32_t>(std::max(1.0, 200000.0 * scale));
  spec.features = 8;  // thin matrix
  spec.density = 1.0;
  // Airline-style cardinalities (departure time, distance, date fields,
  // carrier): mean 81.5, stdev 72.9 -> CV ~0.89, Table III's value.
  spec.explicit_distinct = {220, 160, 120, 60, 40, 31, 12, 9};
  spec.active_features = 6;
  spec.seed = 1003;
  return spec;
}

SyntheticSpec CriteoSpec(double scale) {
  SyntheticSpec spec;
  spec.name = "CRITEO";
  spec.rows = static_cast<uint32_t>(std::max(1.0, 60000.0 * scale));
  spec.features = 65;
  spec.density = 0.96;
  spec.mean_distinct = 120.0;
  spec.distinct_cv = 0.58;
  spec.active_features = 16;
  spec.response_encoded_feature = true;
  spec.seed = 1004;
  return spec;
}

SyntheticSpec YfccSpec(double scale) {
  SyntheticSpec spec;
  spec.name = "YFCC";
  spec.rows = static_cast<uint32_t>(std::max(1.0, 6000.0 * scale));
  spec.features = 4096;  // fat matrix
  spec.density = 0.31;
  spec.mean_distinct = 32.0;
  spec.distinct_cv = 0.06;
  // Few strong features and a wide margin: with only ~30% of entries
  // present on a fat matrix, weaker signals are unlearnable at bench row
  // counts (convergence plots would sit at AUC ~0.5).
  spec.active_features = 16;
  spec.margin_scale = 5.0;
  spec.sparse_storage = true;
  spec.seed = 1005;
  return spec;
}

}  // namespace harp
