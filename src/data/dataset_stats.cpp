#include "data/dataset_stats.h"

#include "common/stats.h"
#include "common/string_util.h"

namespace harp {

DatasetShape ComputeShape(const std::string& name, const Dataset& dataset,
                          const BinnedMatrix& matrix) {
  DatasetShape shape;
  shape.name = name;
  shape.rows = dataset.num_rows();
  shape.features = dataset.num_features();
  shape.sparseness = dataset.Sparseness();

  RunningStats bins;
  for (uint32_t f = 0; f < matrix.num_features(); ++f) {
    // Count value bins only (excluding the reserved missing bin) to match
    // the paper's "number of bins" distribution.
    bins.Add(static_cast<double>(matrix.NumBins(f) - 1));
  }
  shape.bin_cv = bins.CV();
  shape.mean_bins = bins.Mean();
  shape.total_bins = matrix.TotalBins();
  shape.binned_bytes = matrix.MemoryBytes();
  return shape;
}

std::string ShapeHeader() {
  return StrFormat("%-10s %10s %6s %6s %6s %8s %10s", "dataset", "N", "M",
                   "S", "CV", "bins", "size");
}

std::string FormatShapeRow(const DatasetShape& shape) {
  return StrFormat("%-10s %10u %6u %6.2f %6.2f %8.1f %10s",
                   shape.name.c_str(), shape.rows, shape.features,
                   shape.sparseness, shape.bin_cv, shape.mean_bins,
                   HumanBytes(static_cast<double>(shape.binned_bytes)).c_str());
}

}  // namespace harp
