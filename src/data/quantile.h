// Per-feature quantile cut computation ("histogram initialization").
//
// The paper reuses XGBoost's histogram initialization; this is our
// equivalent. Each feature's present values are reduced to at most
// (max_bins - 1) cut points placed at evenly spaced quantiles of the
// distinct values, so features with few distinct values get exactly one bin
// per value. Bin 0 is reserved for missing entries; value bins are
// 1..num_cuts. A value x falls into the first bin whose cut is >= x
// (cuts are upper bounds, inclusive).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace harp {

class ThreadPool;

class QuantileCuts {
 public:
  // max_bins counts the missing bin, i.e. at most (max_bins - 1) cuts per
  // feature; max_bins <= 256 so bin ids fit in one byte (Section IV-E).
  static QuantileCuts Compute(const Dataset& dataset, int max_bins,
                              ThreadPool* pool = nullptr);

  // Streaming variant using Greenwald-Khanna sketches (per-thread sketches
  // merged per feature): O(M x 1/eps) memory instead of materializing all
  // values. Cut placement is eps-approximate, and — unlike Compute — it
  // depends on the thread count (chunk boundaries feed different
  // sketches). eps <= 0 picks 1 / (8 x max_bins).
  static QuantileCuts ComputeSketch(const Dataset& dataset, int max_bins,
                                    double eps = 0.0,
                                    ThreadPool* pool = nullptr);

  uint32_t num_features() const {
    return static_cast<uint32_t>(cut_ptr_.size()) - 1;
  }
  int max_bins() const { return max_bins_; }

  // Number of cuts for `feature` (its value bins are 1..NumCuts).
  uint32_t NumCuts(uint32_t feature) const {
    return cut_ptr_[feature + 1] - cut_ptr_[feature];
  }

  // Total bins for `feature`, including the missing bin 0.
  uint32_t NumBins(uint32_t feature) const { return NumCuts(feature) + 1; }

  // Bin id for a raw value: 0 for missing, otherwise in [1, NumCuts].
  // Values above the last cut clamp into the last bin.
  uint32_t BinFor(uint32_t feature, float value) const;

  // Upper-bound cut value of `bin` (1-based) for `feature`: every row
  // routed left by "bin <= split_bin" satisfies value <= CutFor(split_bin).
  float CutFor(uint32_t feature, uint32_t bin) const;

  const std::vector<float>& cuts() const { return cuts_; }
  const std::vector<uint32_t>& cut_ptr() const { return cut_ptr_; }

  // For model IO / binary cache.
  static QuantileCuts FromRaw(std::vector<float> cuts,
                              std::vector<uint32_t> cut_ptr, int max_bins);

 private:
  std::vector<float> cuts_;      // concatenated per-feature cut values
  std::vector<uint32_t> cut_ptr_;  // size num_features + 1
  int max_bins_ = 256;
};

}  // namespace harp
