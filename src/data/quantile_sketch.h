// Greenwald-Khanna epsilon-approximate quantile sketch.
//
// The sort-based QuantileCuts::Compute is exact but materializes every
// feature's values; production histogram initialization (what the paper
// reuses from XGBoost) streams the data through per-thread sketches and
// merges them. This is that component: GK tuples (value, g, delta) with
// periodic compression, guaranteeing rank error <= eps * n per sketch and
// eps_a + eps_b after a merge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harp {

class GkSketch {
 public:
  // eps: maximum rank error as a fraction of the stream length.
  explicit GkSketch(double eps);

  void Add(float value);

  // Folds `other` into this sketch. The merged rank error is the sum of
  // the two sketches' errors, so merge trees should stay shallow (one
  // level of thread-local sketches -> one global sketch).
  void Merge(const GkSketch& other);

  // Value whose rank is within eps*n of quantile*n. quantile in [0, 1].
  float Query(double quantile) const;

  // k cut candidates at evenly spaced quantiles (deduplicated, ascending).
  std::vector<float> EvenQuantiles(int k) const;

  int64_t count() const { return count_; }
  size_t TupleCount() const { return tuples_.size(); }
  double eps() const { return eps_; }

 private:
  struct Tuple {
    float value;
    int64_t g;      // rank_min(i) - rank_min(i-1)
    int64_t delta;  // rank_max(i) - rank_min(i)
  };

  void Compress();

  double eps_;
  int64_t count_ = 0;
  int64_t inserts_since_compress_ = 0;
  std::vector<Tuple> tuples_;  // ascending by value
};

}  // namespace harp
