#include "data/binned_matrix.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {

BinnedMatrix BinnedMatrix::Build(const Dataset& dataset, QuantileCuts cuts,
                                 ThreadPool* pool) {
  HARP_CHECK_EQ(dataset.num_features(), cuts.num_features());
  BinnedMatrix matrix;
  matrix.num_rows_ = dataset.num_rows();
  matrix.num_features_ = dataset.num_features();
  matrix.group_ptr_ = dataset.group_ptr();
  matrix.cuts_ = std::move(cuts);

  matrix.bin_offsets_.resize(matrix.num_features_ + 1, 0);
  for (uint32_t f = 0; f < matrix.num_features_; ++f) {
    matrix.bin_offsets_[f + 1] =
        matrix.bin_offsets_[f] + matrix.cuts_.NumBins(f);
    matrix.max_bins_ = std::max(matrix.max_bins_, matrix.cuts_.NumBins(f));
  }

  // Bin 0 (missing) is the fill value; present entries overwrite it.
  matrix.bins_.assign(
      static_cast<size_t>(matrix.num_rows_) * matrix.num_features_, 0);

  auto bin_rows = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; ++r) {
      uint8_t* row_bins =
          matrix.bins_.data() + static_cast<size_t>(r) * matrix.num_features_;
      dataset.ForEachInRow(static_cast<uint32_t>(r), [&](uint32_t f, float v) {
        const uint32_t bin = matrix.cuts_.BinFor(f, v);
        HARP_CHECK_LT(bin, matrix.cuts_.NumBins(f));
        row_bins[f] = static_cast<uint8_t>(bin);
      });
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(matrix.num_rows_, bin_rows);
  } else {
    bin_rows(0, matrix.num_rows_, 0);
  }
  return matrix;
}

void BinnedMatrix::EnsureColumnMajor(ThreadPool* pool) {
  if (HasColumnMajor()) return;
  col_bins_.resize(bins_.size());
  auto transpose = [&](int64_t begin, int64_t end, int) {
    for (int64_t f = begin; f < end; ++f) {
      uint8_t* col = col_bins_.data() + static_cast<size_t>(f) * num_rows_;
      for (uint32_t r = 0; r < num_rows_; ++r) {
        col[r] = bins_[static_cast<size_t>(r) * num_features_ +
                       static_cast<size_t>(f)];
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForDynamic(num_features_, 4, transpose);
  } else {
    transpose(0, num_features_, 0);
  }
}

}  // namespace harp
