#include "data/binned_matrix.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

// bin_offsets / max_bins are derived from the cuts in both construction
// paths; keeping one derivation guarantees Build and FromParts agree.
void DeriveOffsets(const QuantileCuts& cuts, uint32_t num_features,
                   std::vector<uint32_t>* bin_offsets, uint32_t* max_bins) {
  bin_offsets->assign(num_features + 1, 0);
  *max_bins = 0;
  for (uint32_t f = 0; f < num_features; ++f) {
    (*bin_offsets)[f + 1] = (*bin_offsets)[f] + cuts.NumBins(f);
    *max_bins = std::max(*max_bins, cuts.NumBins(f));
  }
}

}  // namespace

BinnedMatrix BinnedMatrix::Build(const Dataset& dataset, QuantileCuts cuts,
                                 ThreadPool* pool) {
  HARP_CHECK_EQ(dataset.num_features(), cuts.num_features());
  BinnedMatrix matrix;
  matrix.num_rows_ = dataset.num_rows();
  matrix.num_features_ = dataset.num_features();
  matrix.group_ptr_ = dataset.group_ptr();
  matrix.cuts_ = std::move(cuts);
  DeriveOffsets(matrix.cuts_, matrix.num_features_, &matrix.bin_offsets_,
                &matrix.max_bins_);

  // Bin 0 (missing) is the fill value; present entries overwrite it.
  matrix.storage_ = BinMatrixStorage::Heap(std::vector<uint8_t>(
      static_cast<size_t>(matrix.num_rows_) * matrix.num_features_, 0));

  uint8_t* bins = matrix.storage_.MutableHeap();
  auto bin_rows = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; ++r) {
      uint8_t* row_bins =
          bins + static_cast<size_t>(r) * matrix.num_features_;
      dataset.ForEachInRow(static_cast<uint32_t>(r), [&](uint32_t f, float v) {
        const uint32_t bin = matrix.cuts_.BinFor(f, v);
        HARP_CHECK_LT(bin, matrix.cuts_.NumBins(f));
        row_bins[f] = static_cast<uint8_t>(bin);
      });
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(matrix.num_rows_, bin_rows);
  } else {
    bin_rows(0, matrix.num_rows_, 0);
  }
  return matrix;
}

BinnedMatrix BinnedMatrix::FromParts(uint32_t num_rows, uint32_t num_features,
                                     QuantileCuts cuts,
                                     BinMatrixStorage storage,
                                     std::vector<uint32_t> group_ptr) {
  HARP_CHECK_EQ(num_features, cuts.num_features());
  HARP_CHECK_EQ(storage.size(),
                static_cast<size_t>(num_rows) * num_features);
  BinnedMatrix matrix;
  matrix.num_rows_ = num_rows;
  matrix.num_features_ = num_features;
  matrix.cuts_ = std::move(cuts);
  matrix.storage_ = std::move(storage);
  matrix.group_ptr_ = std::move(group_ptr);
  DeriveOffsets(matrix.cuts_, matrix.num_features_, &matrix.bin_offsets_,
                &matrix.max_bins_);
  return matrix;
}

void BinnedMatrix::EnsureColumnMajor(ThreadPool* pool) {
  if (HasColumnMajor()) return;
  const uint8_t* bins = storage_.data();
  col_bins_.resize(storage_.size());
  auto transpose = [&](int64_t begin, int64_t end, int) {
    for (int64_t f = begin; f < end; ++f) {
      uint8_t* col = col_bins_.data() + static_cast<size_t>(f) * num_rows_;
      for (uint32_t r = 0; r < num_rows_; ++r) {
        col[r] = bins[static_cast<size_t>(r) * num_features_ +
                      static_cast<size_t>(f)];
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForDynamic(num_features_, 4, transpose);
  } else {
    transpose(0, num_features_, 0);
  }
}

}  // namespace harp
