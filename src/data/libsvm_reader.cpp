#include "data/libsvm_reader.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace harp {

bool ParseLibsvm(const std::string& content, const LibsvmOptions& options,
                 Dataset* out, std::string* error) {
  std::vector<uint32_t> row_ptr{0};
  std::vector<Entry> entries;
  std::vector<float> labels;
  uint32_t max_feature = 0;

  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = SplitWhitespace(Trim(line));
    if (tokens.empty()) continue;
    double label = 0.0;
    if (!ParseDouble(tokens[0], &label)) {
      *error = StrFormat("line %d: bad label", line_number);
      return false;
    }
    labels.push_back(static_cast<float>(label));
    uint32_t prev_feature = 0;
    bool first = true;
    for (size_t t = 1; t < tokens.size(); ++t) {
      const auto parts = Split(tokens[t], ':');
      int64_t index = 0;
      double value = 0.0;
      if (parts.size() != 2 || !ParseInt(parts[0], &index) ||
          !ParseDouble(parts[1], &value)) {
        *error = StrFormat("line %d: bad entry '%.*s'", line_number,
                           static_cast<int>(tokens[t].size()),
                           tokens[t].data());
        return false;
      }
      if (!options.zero_based) --index;
      if (index < 0) {
        *error = StrFormat("line %d: feature index below base", line_number);
        return false;
      }
      const uint32_t feature = static_cast<uint32_t>(index);
      if (!first && feature <= prev_feature) {
        *error = StrFormat("line %d: indices must be strictly increasing",
                           line_number);
        return false;
      }
      first = false;
      prev_feature = feature;
      max_feature = std::max(max_feature, feature);
      entries.push_back(Entry{feature, static_cast<float>(value)});
    }
    row_ptr.push_back(static_cast<uint32_t>(entries.size()));
  }
  if (labels.empty()) {
    *error = "no data rows";
    return false;
  }
  uint32_t num_features =
      entries.empty() ? 1 : max_feature + 1;
  if (options.num_features > 0) {
    if (options.num_features < num_features) {
      *error = StrFormat("num_features=%u but saw index %u",
                         options.num_features, max_feature);
      return false;
    }
    num_features = options.num_features;
  }
  const uint32_t num_rows = static_cast<uint32_t>(labels.size());
  *out = Dataset::FromCsr(num_rows, num_features, std::move(row_ptr),
                          std::move(entries), std::move(labels));
  return true;
}

bool ReadLibsvm(const std::string& path, const LibsvmOptions& options,
                Dataset* out, std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseLibsvm(buffer.str(), options, out, error);
}

}  // namespace harp
