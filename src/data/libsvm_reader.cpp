#include "data/libsvm_reader.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

#include "common/file_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/text_chunker.h"
#include "parallel/thread_pool.h"

namespace harp {

bool ParseLibsvm(const std::string& content, const LibsvmOptions& options,
                 Dataset* out, std::string* error) {
  std::vector<uint32_t> row_ptr{0};
  std::vector<Entry> entries;
  std::vector<float> labels;
  uint32_t max_feature = 0;

  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = SplitWhitespace(Trim(line));
    if (tokens.empty()) continue;
    double label = 0.0;
    if (!ParseDouble(tokens[0], &label)) {
      *error = StrFormat("line %d: bad label", line_number);
      return false;
    }
    labels.push_back(static_cast<float>(label));
    uint32_t prev_feature = 0;
    bool first = true;
    for (size_t t = 1; t < tokens.size(); ++t) {
      const auto parts = Split(tokens[t], ':');
      int64_t index = 0;
      double value = 0.0;
      if (parts.size() != 2 || !ParseInt(parts[0], &index) ||
          !ParseDouble(parts[1], &value)) {
        *error = StrFormat("line %d: bad entry '%.*s'", line_number,
                           static_cast<int>(tokens[t].size()),
                           tokens[t].data());
        return false;
      }
      if (!options.zero_based) --index;
      if (index < 0) {
        *error = StrFormat("line %d: feature index below base", line_number);
        return false;
      }
      const uint32_t feature = static_cast<uint32_t>(index);
      if (!first && feature <= prev_feature) {
        *error = StrFormat("line %d: indices must be strictly increasing",
                           line_number);
        return false;
      }
      first = false;
      prev_feature = feature;
      max_feature = std::max(max_feature, feature);
      entries.push_back(Entry{feature, static_cast<float>(value)});
    }
    row_ptr.push_back(static_cast<uint32_t>(entries.size()));
  }
  if (labels.empty()) {
    *error = "no data rows";
    return false;
  }
  uint32_t num_features =
      entries.empty() ? 1 : max_feature + 1;
  if (options.num_features > 0) {
    if (options.num_features < num_features) {
      *error = StrFormat("num_features=%u but saw index %u",
                         options.num_features, max_feature);
      return false;
    }
    num_features = options.num_features;
  }
  const uint32_t num_rows = static_cast<uint32_t>(labels.size());
  *out = Dataset::FromCsr(num_rows, num_features, std::move(row_ptr),
                          std::move(entries), std::move(labels));
  return true;
}

namespace {

inline bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

// One chunk's CSR fragment. row_ptr is chunk-relative (starts at 0); the
// stitcher rebases it onto the global entry offsets.
struct LibsvmChunkResult {
  std::vector<float> labels;
  std::vector<Entry> entries;
  std::vector<uint32_t> row_ptr{0};
  uint32_t max_feature = 0;
  bool has_entries = false;
  int64_t lines = 0;
  int64_t error_line = -1;  // 1-based, relative to the chunk start
  std::string error;        // without the "line N: " prefix
};

// Scans one chunk in place: whitespace-delimited tokens are walked with
// two cursors (no SplitWhitespace vector, no per-token Split(':')
// vector), values parsed with the fast ParseFloat.
void ParseLibsvmChunk(std::string_view content, TextChunk chunk,
                      const LibsvmOptions& options,
                      LibsvmChunkResult* res) {
  // Rough pre-reservation from the chunk's byte size so the fragment
  // vectors do not regrow in the hot loop (":1.234567 " ~ 12 bytes/entry).
  const size_t bytes = chunk.end - chunk.begin;
  res->entries.reserve(bytes / 10);
  res->labels.reserve(bytes / 64 + 4);
  int64_t line_idx = 0;
  res->lines = ForEachLine(content, chunk.begin, chunk.end,
                           [&](std::string_view raw) {
    ++line_idx;
    const std::string_view line = Trim(raw);
    size_t i = 0;
    const size_t len = line.size();
    if (len == 0) return true;
    // Label token.
    size_t start = 0;
    while (i < len && !IsSpace(line[i])) ++i;
    float label = 0.0f;
    if (!ParseFloat(line.substr(start, i - start), &label)) {
      res->error_line = line_idx;
      res->error = "bad label";
      return false;
    }
    res->labels.push_back(label);
    uint32_t prev_feature = 0;
    bool first = true;
    for (;;) {
      while (i < len && IsSpace(line[i])) ++i;
      if (i >= len) break;
      start = i;
      while (i < len && !IsSpace(line[i])) ++i;
      const std::string_view token = line.substr(start, i - start);
      // An entry must be exactly "index:value" (one colon).
      const size_t colon = token.find(':');
      int64_t index = 0;
      float value = 0.0f;
      if (colon == std::string_view::npos ||
          token.find(':', colon + 1) != std::string_view::npos ||
          !ParseInt(token.substr(0, colon), &index) ||
          !ParseFloat(token.substr(colon + 1), &value)) {
        res->error_line = line_idx;
        res->error = StrFormat("bad entry '%.*s'",
                               static_cast<int>(token.size()), token.data());
        return false;
      }
      if (!options.zero_based) --index;
      if (index < 0) {
        res->error_line = line_idx;
        res->error = "feature index below base";
        return false;
      }
      const uint32_t feature = static_cast<uint32_t>(index);
      if (!first && feature <= prev_feature) {
        res->error_line = line_idx;
        res->error = "indices must be strictly increasing";
        return false;
      }
      first = false;
      prev_feature = feature;
      res->max_feature = std::max(res->max_feature, feature);
      res->has_entries = true;
      res->entries.push_back(Entry{feature, value});
    }
    res->row_ptr.push_back(static_cast<uint32_t>(res->entries.size()));
    return true;
  });
}

}  // namespace

bool ParseLibsvmChunked(std::string_view content,
                        const LibsvmOptions& options, int num_chunks,
                        ThreadPool* pool, Dataset* out, std::string* error,
                        IngestStats* stats) {
  const std::vector<TextChunk> chunks = ChunkLines(content, 0, num_chunks);
  const int c = static_cast<int>(chunks.size());
  std::vector<LibsvmChunkResult> results(chunks.size());
  RunChunks(pool, c, [&](int i) {
    const size_t k = static_cast<size_t>(i);
    ParseLibsvmChunk(content, chunks[k], options, &results[k]);
  });

  // Surface the first error in document order (lowest failing chunk).
  int64_t line_base = 0;
  for (const LibsvmChunkResult& res : results) {
    if (res.error_line >= 0) {
      *error = StrFormat("line %d: %s",
                         static_cast<int>(line_base + res.error_line),
                         res.error.c_str());
      return false;
    }
    line_base += res.lines;
  }

  // Stitch the fragments in chunk order: exact offsets first, then the
  // copies (parallel — every chunk writes a disjoint range).
  std::vector<size_t> row_base(chunks.size() + 1, 0);
  std::vector<size_t> entry_base(chunks.size() + 1, 0);
  uint32_t max_feature = 0;
  bool has_entries = false;
  for (size_t i = 0; i < results.size(); ++i) {
    row_base[i + 1] = row_base[i] + results[i].labels.size();
    entry_base[i + 1] = entry_base[i] + results[i].entries.size();
    max_feature = std::max(max_feature, results[i].max_feature);
    has_entries = has_entries || results[i].has_entries;
  }
  const size_t total_rows = row_base.back();
  if (total_rows == 0) {
    *error = "no data rows";
    return false;
  }
  std::vector<float> labels(total_rows);
  std::vector<Entry> entries(entry_base.back());
  std::vector<uint32_t> row_ptr(total_rows + 1);
  row_ptr[0] = 0;
  RunChunks(pool, c, [&](int i) {
    const size_t k = static_cast<size_t>(i);
    const LibsvmChunkResult& res = results[k];
    std::copy(res.labels.begin(), res.labels.end(),
              labels.begin() + static_cast<int64_t>(row_base[k]));
    std::copy(res.entries.begin(), res.entries.end(),
              entries.begin() + static_cast<int64_t>(entry_base[k]));
    const uint32_t base = static_cast<uint32_t>(entry_base[k]);
    for (size_t r = 1; r < res.row_ptr.size(); ++r) {
      row_ptr[row_base[k] + r] = base + res.row_ptr[r];
    }
  });

  uint32_t num_features = has_entries ? max_feature + 1 : 1;
  if (options.num_features > 0) {
    if (options.num_features < num_features) {
      *error = StrFormat("num_features=%u but saw index %u",
                         options.num_features, max_feature);
      return false;
    }
    num_features = options.num_features;
  }
  if (stats != nullptr) {
    stats->rows = total_rows;
    stats->chunks = c;
  }
  *out = Dataset::FromCsr(static_cast<uint32_t>(total_rows), num_features,
                          std::move(row_ptr), std::move(entries),
                          std::move(labels));
  return true;
}

bool ReadLibsvm(const std::string& path, const LibsvmOptions& options,
                Dataset* out, std::string* error, IngestStats* stats,
                ThreadPool* pool) {
  std::string content;
  const Stopwatch read_watch;
  if (!ReadFileToString(path, &content, error)) return false;
  const int64_t read_ns = read_watch.ElapsedNs();

  const int threads =
      pool != nullptr ? pool->num_threads() : ThreadPool::DefaultThreads();
  const int num_chunks = PickChunkCount(content.size(), threads);
  const Stopwatch parse_watch;
  bool ok;
  if (num_chunks > 1 && pool == nullptr) {
    ThreadPool local_pool(threads);
    ok = ParseLibsvmChunked(content, options, num_chunks, &local_pool, out,
                            error, stats);
  } else {
    ok = ParseLibsvmChunked(content, options, num_chunks, pool, out, error,
                            stats);
  }
  if (stats != nullptr) {
    stats->bytes = content.size();
    stats->read_ns = read_ns;
    stats->parse_ns = parse_watch.ElapsedNs();
    stats->threads = num_chunks > 1 ? threads : 1;
  }
  return ok;
}

}  // namespace harp
