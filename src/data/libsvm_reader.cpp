#include "data/libsvm_reader.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

#include "common/file_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/text_chunker.h"
#include "parallel/thread_pool.h"

namespace harp {

bool ParseLibsvm(const std::string& content, const LibsvmOptions& options,
                 Dataset* out, std::string* error) {
  std::vector<uint32_t> row_ptr{0};
  std::vector<Entry> entries;
  std::vector<float> labels;
  uint32_t max_feature = 0;
  // Query groups: qid must be present on every row or on none, and must be
  // non-decreasing (queries contiguous in file order).
  std::vector<uint32_t> group_boundaries;
  bool rows_have_qid = false;
  int64_t prev_qid = 0;

  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = SplitWhitespace(Trim(line));
    if (tokens.empty()) continue;
    double label = 0.0;
    if (!ParseDouble(tokens[0], &label)) {
      *error = StrFormat("line %d: bad label", line_number);
      return false;
    }
    size_t first_entry = 1;
    bool row_has_qid = false;
    int64_t qid = 0;
    if (tokens.size() > 1 && tokens[1].substr(0, 4) == "qid:") {
      row_has_qid = true;
      if (!ParseInt(tokens[1].substr(4), &qid) || qid < 0) {
        *error = StrFormat("line %d: bad qid '%.*s'", line_number,
                           static_cast<int>(tokens[1].size()),
                           tokens[1].data());
        return false;
      }
      first_entry = 2;
    }
    if (labels.empty()) {
      rows_have_qid = row_has_qid;
    } else if (row_has_qid != rows_have_qid) {
      *error = StrFormat("line %d: qid must appear on all rows or none",
                         line_number);
      return false;
    }
    if (row_has_qid && !labels.empty()) {
      if (qid < prev_qid) {
        *error = StrFormat("line %d: qid out of order (decreasing)",
                           line_number);
        return false;
      }
      if (qid != prev_qid) {
        group_boundaries.push_back(static_cast<uint32_t>(labels.size()));
      }
    }
    prev_qid = qid;
    labels.push_back(static_cast<float>(label));
    uint32_t prev_feature = 0;
    bool first = true;
    for (size_t t = first_entry; t < tokens.size(); ++t) {
      const auto parts = Split(tokens[t], ':');
      int64_t index = 0;
      double value = 0.0;
      if (parts.size() != 2 || !ParseInt(parts[0], &index) ||
          !ParseDouble(parts[1], &value)) {
        *error = StrFormat("line %d: bad entry '%.*s'", line_number,
                           static_cast<int>(tokens[t].size()),
                           tokens[t].data());
        return false;
      }
      if (!options.zero_based) --index;
      if (index < 0) {
        *error = StrFormat("line %d: feature index below base", line_number);
        return false;
      }
      const uint32_t feature = static_cast<uint32_t>(index);
      if (!first && feature <= prev_feature) {
        *error = StrFormat("line %d: indices must be strictly increasing",
                           line_number);
        return false;
      }
      first = false;
      prev_feature = feature;
      max_feature = std::max(max_feature, feature);
      entries.push_back(Entry{feature, static_cast<float>(value)});
    }
    row_ptr.push_back(static_cast<uint32_t>(entries.size()));
  }
  if (labels.empty()) {
    *error = "no data rows";
    return false;
  }
  uint32_t num_features =
      entries.empty() ? 1 : max_feature + 1;
  if (options.num_features > 0) {
    if (options.num_features < num_features) {
      *error = StrFormat("num_features=%u but saw index %u",
                         options.num_features, max_feature);
      return false;
    }
    num_features = options.num_features;
  }
  const uint32_t num_rows = static_cast<uint32_t>(labels.size());
  *out = Dataset::FromCsr(num_rows, num_features, std::move(row_ptr),
                          std::move(entries), std::move(labels));
  if (rows_have_qid) {
    std::vector<uint32_t> group_ptr;
    group_ptr.reserve(group_boundaries.size() + 2);
    group_ptr.push_back(0);
    group_ptr.insert(group_ptr.end(), group_boundaries.begin(),
                     group_boundaries.end());
    group_ptr.push_back(num_rows);
    out->SetGroupPtr(std::move(group_ptr));
  }
  return true;
}

namespace {

inline bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

// Within-line check order of the serial oracle. A chunk can only detect
// the syntactic stages (label, qid value, entry); the presence and
// ordering checks need cross-chunk state and run serially in the
// stitcher. Comparing (line, stage) pairs lexicographically then yields
// exactly the error the oracle would have reported first.
enum LibsvmErrorStage {
  kStageLabel = 0,     // "bad label"
  kStageQidValue = 1,  // "bad qid ..."
  kStagePresence = 2,  // "qid must appear on all rows or none"
  kStageOrder = 3,     // "qid out of order (decreasing)"
  kStageEntry = 4,     // "bad entry ..." and the index checks
};

// One chunk's CSR fragment. row_ptr is chunk-relative (starts at 0); the
// stitcher rebases it onto the global entry offsets.
struct LibsvmChunkResult {
  std::vector<float> labels;
  std::vector<Entry> entries;
  std::vector<uint32_t> row_ptr{0};
  uint32_t max_feature = 0;
  bool has_entries = false;
  int64_t lines = 0;
  int64_t error_line = -1;  // 1-based, relative to the chunk start
  int error_stage = kStageEntry;
  std::string error;        // without the "line N: " prefix

  // qid bookkeeping for the stitcher's serial semantic checks. qid_rows
  // lists every parsed row that carried a qid (chunk-relative line + id) —
  // including a row whose *entries* later failed, since the oracle checks
  // qid presence/order before entries. first_no_qid_line is the first
  // parsed data row without a qid (-1 if none).
  struct QidRow {
    int64_t line;
    int64_t qid;
  };
  std::vector<QidRow> qid_rows;
  int64_t first_no_qid_line = -1;
};

// Scans one chunk in place: whitespace-delimited tokens are walked with
// two cursors (no SplitWhitespace vector, no per-token Split(':')
// vector), values parsed with the fast ParseFloat.
void ParseLibsvmChunk(std::string_view content, TextChunk chunk,
                      const LibsvmOptions& options,
                      LibsvmChunkResult* res) {
  // Rough pre-reservation from the chunk's byte size so the fragment
  // vectors do not regrow in the hot loop (":1.234567 " ~ 12 bytes/entry).
  const size_t bytes = chunk.end - chunk.begin;
  res->entries.reserve(bytes / 10);
  res->labels.reserve(bytes / 64 + 4);
  int64_t line_idx = 0;
  res->lines = ForEachLine(content, chunk.begin, chunk.end,
                           [&](std::string_view raw) {
    ++line_idx;
    const std::string_view line = Trim(raw);
    size_t i = 0;
    const size_t len = line.size();
    if (len == 0) return true;
    // Label token.
    size_t start = 0;
    while (i < len && !IsSpace(line[i])) ++i;
    float label = 0.0f;
    if (!ParseFloat(line.substr(start, i - start), &label)) {
      res->error_line = line_idx;
      res->error_stage = kStageLabel;
      res->error = "bad label";
      return false;
    }
    // Optional qid token, only valid directly after the label.
    while (i < len && IsSpace(line[i])) ++i;
    if (i < len && line.substr(i).substr(0, 4) == "qid:") {
      start = i;
      while (i < len && !IsSpace(line[i])) ++i;
      const std::string_view token = line.substr(start, i - start);
      int64_t qid = 0;
      if (!ParseInt(token.substr(4), &qid) || qid < 0) {
        res->error_line = line_idx;
        res->error_stage = kStageQidValue;
        res->error = StrFormat("bad qid '%.*s'",
                               static_cast<int>(token.size()), token.data());
        return false;
      }
      res->qid_rows.push_back({line_idx, qid});
    } else if (res->first_no_qid_line < 0) {
      res->first_no_qid_line = line_idx;
    }
    res->labels.push_back(label);
    uint32_t prev_feature = 0;
    bool first = true;
    for (;;) {
      while (i < len && IsSpace(line[i])) ++i;
      if (i >= len) break;
      start = i;
      while (i < len && !IsSpace(line[i])) ++i;
      const std::string_view token = line.substr(start, i - start);
      // An entry must be exactly "index:value" (one colon).
      const size_t colon = token.find(':');
      int64_t index = 0;
      float value = 0.0f;
      if (colon == std::string_view::npos ||
          token.find(':', colon + 1) != std::string_view::npos ||
          !ParseInt(token.substr(0, colon), &index) ||
          !ParseFloat(token.substr(colon + 1), &value)) {
        res->error_line = line_idx;
        res->error = StrFormat("bad entry '%.*s'",
                               static_cast<int>(token.size()), token.data());
        return false;
      }
      if (!options.zero_based) --index;
      if (index < 0) {
        res->error_line = line_idx;
        res->error = "feature index below base";
        return false;
      }
      const uint32_t feature = static_cast<uint32_t>(index);
      if (!first && feature <= prev_feature) {
        res->error_line = line_idx;
        res->error = "indices must be strictly increasing";
        return false;
      }
      first = false;
      prev_feature = feature;
      res->max_feature = std::max(res->max_feature, feature);
      res->has_entries = true;
      res->entries.push_back(Entry{feature, value});
    }
    res->row_ptr.push_back(static_cast<uint32_t>(res->entries.size()));
    return true;
  });
}

}  // namespace

bool ParseLibsvmChunked(std::string_view content,
                        const LibsvmOptions& options, int num_chunks,
                        ThreadPool* pool, Dataset* out, std::string* error,
                        IngestStats* stats) {
  const std::vector<TextChunk> chunks = ChunkLines(content, 0, num_chunks);
  const int c = static_cast<int>(chunks.size());
  std::vector<LibsvmChunkResult> results(chunks.size());
  RunChunks(pool, c, [&](int i) {
    const size_t k = static_cast<size_t>(i);
    ParseLibsvmChunk(content, chunks[k], options, &results[k]);
  });

  // First *syntactic* error in document order (lowest failing chunk), as a
  // (global line, stage) pair.
  int64_t syntax_line = -1;
  int syntax_stage = kStageEntry;
  std::string syntax_message;
  {
    int64_t line_base = 0;
    for (const LibsvmChunkResult& res : results) {
      if (res.error_line >= 0) {
        syntax_line = line_base + res.error_line;
        syntax_stage = res.error_stage;
        syntax_message = res.error;
        break;
      }
      line_base += res.lines;
    }
  }

  // Serial qid semantic checks (presence and ordering) over the per-chunk
  // records, in document order. Any violation found past the syntactic
  // error is moot (the oracle never got there) and loses the (line, stage)
  // comparison below; violations at or before it are exact because every
  // row up to that line was parsed.
  int64_t semantic_line = -1;
  int semantic_stage = kStagePresence;
  const char* semantic_message = nullptr;
  std::vector<uint32_t> group_ptr;
  {
    // Global reference: does the first data row carry a qid?
    bool rows_have_qid = false;
    bool saw_any_row = false;
    for (const LibsvmChunkResult& res : results) {
      const bool has_qid_row = !res.qid_rows.empty();
      const bool has_plain_row = res.first_no_qid_line >= 0;
      if (!has_qid_row && !has_plain_row) continue;
      if (!has_qid_row) {
        rows_have_qid = false;
      } else if (!has_plain_row) {
        rows_have_qid = true;
      } else {
        rows_have_qid = res.qid_rows.front().line < res.first_no_qid_line;
      }
      saw_any_row = true;
      break;
    }
    if (saw_any_row && rows_have_qid) {
      // Presence: the first row lacking a qid.
      int64_t line_base = 0;
      for (const LibsvmChunkResult& res : results) {
        if (res.first_no_qid_line >= 0) {
          semantic_line = line_base + res.first_no_qid_line;
          semantic_stage = kStagePresence;
          semantic_message = "qid must appear on all rows or none";
          break;
        }
        line_base += res.lines;
      }
      // Ordering + group boundaries over the concatenated qid rows.
      int64_t prev_qid = 0;
      bool first = true;
      uint32_t row = 0;
      line_base = 0;
      group_ptr.push_back(0);
      for (const LibsvmChunkResult& res : results) {
        for (const LibsvmChunkResult::QidRow& qr : res.qid_rows) {
          const int64_t global_line = line_base + qr.line;
          if (!first && qr.qid < prev_qid &&
              (semantic_line < 0 || global_line < semantic_line)) {
            semantic_line = global_line;
            semantic_stage = kStageOrder;
            semantic_message = "qid out of order (decreasing)";
          }
          if (semantic_line >= 0 && global_line >= semantic_line) break;
          if (!first && qr.qid != prev_qid) group_ptr.push_back(row);
          prev_qid = qr.qid;
          first = false;
          ++row;
        }
        if (semantic_line >= 0) break;
        line_base += res.lines;
      }
    } else if (saw_any_row) {
      // First row had no qid: any qid row is a presence violation.
      int64_t line_base = 0;
      for (const LibsvmChunkResult& res : results) {
        if (!res.qid_rows.empty()) {
          semantic_line = line_base + res.qid_rows.front().line;
          semantic_stage = kStagePresence;
          semantic_message = "qid must appear on all rows or none";
          break;
        }
        line_base += res.lines;
      }
    }
  }

  // Lexicographic (line, stage) minimum picks the oracle's error.
  if (syntax_line >= 0 || semantic_line >= 0) {
    const bool semantic_wins =
        semantic_line >= 0 &&
        (syntax_line < 0 || semantic_line < syntax_line ||
         (semantic_line == syntax_line && semantic_stage < syntax_stage));
    if (semantic_wins) {
      *error = StrFormat("line %d: %s", static_cast<int>(semantic_line),
                         semantic_message);
    } else {
      *error = StrFormat("line %d: %s", static_cast<int>(syntax_line),
                         syntax_message.c_str());
    }
    return false;
  }

  // Stitch the fragments in chunk order: exact offsets first, then the
  // copies (parallel — every chunk writes a disjoint range).
  std::vector<size_t> row_base(chunks.size() + 1, 0);
  std::vector<size_t> entry_base(chunks.size() + 1, 0);
  uint32_t max_feature = 0;
  bool has_entries = false;
  for (size_t i = 0; i < results.size(); ++i) {
    row_base[i + 1] = row_base[i] + results[i].labels.size();
    entry_base[i + 1] = entry_base[i] + results[i].entries.size();
    max_feature = std::max(max_feature, results[i].max_feature);
    has_entries = has_entries || results[i].has_entries;
  }
  const size_t total_rows = row_base.back();
  if (total_rows == 0) {
    *error = "no data rows";
    return false;
  }
  std::vector<float> labels(total_rows);
  std::vector<Entry> entries(entry_base.back());
  std::vector<uint32_t> row_ptr(total_rows + 1);
  row_ptr[0] = 0;
  RunChunks(pool, c, [&](int i) {
    const size_t k = static_cast<size_t>(i);
    const LibsvmChunkResult& res = results[k];
    std::copy(res.labels.begin(), res.labels.end(),
              labels.begin() + static_cast<int64_t>(row_base[k]));
    std::copy(res.entries.begin(), res.entries.end(),
              entries.begin() + static_cast<int64_t>(entry_base[k]));
    const uint32_t base = static_cast<uint32_t>(entry_base[k]);
    for (size_t r = 1; r < res.row_ptr.size(); ++r) {
      row_ptr[row_base[k] + r] = base + res.row_ptr[r];
    }
  });

  uint32_t num_features = has_entries ? max_feature + 1 : 1;
  if (options.num_features > 0) {
    if (options.num_features < num_features) {
      *error = StrFormat("num_features=%u but saw index %u",
                         options.num_features, max_feature);
      return false;
    }
    num_features = options.num_features;
  }
  if (stats != nullptr) {
    stats->rows = total_rows;
    stats->chunks = c;
  }
  *out = Dataset::FromCsr(static_cast<uint32_t>(total_rows), num_features,
                          std::move(row_ptr), std::move(entries),
                          std::move(labels));
  if (!group_ptr.empty()) {
    group_ptr.push_back(static_cast<uint32_t>(total_rows));
    out->SetGroupPtr(std::move(group_ptr));
  }
  return true;
}

bool ReadLibsvm(const std::string& path, const LibsvmOptions& options,
                Dataset* out, std::string* error, IngestStats* stats,
                ThreadPool* pool) {
  std::string content;
  const Stopwatch read_watch;
  if (!ReadFileToString(path, &content, error)) return false;
  const int64_t read_ns = read_watch.ElapsedNs();

  const int threads =
      pool != nullptr ? pool->num_threads() : ThreadPool::DefaultThreads();
  const int num_chunks = PickChunkCount(content.size(), threads);
  const Stopwatch parse_watch;
  bool ok;
  if (num_chunks > 1 && pool == nullptr) {
    ThreadPool local_pool(threads);
    ok = ParseLibsvmChunked(content, options, num_chunks, &local_pool, out,
                            error, stats);
  } else {
    ok = ParseLibsvmChunked(content, options, num_chunks, pool, out, error,
                            stats);
  }
  if (stats != nullptr) {
    stats->bytes = content.size();
    stats->read_ns = read_ns;
    stats->parse_ns = parse_watch.ElapsedNs();
    stats->threads = num_chunks > 1 ? threads : 1;
  }
  return ok;
}

}  // namespace harp
