// Raw (pre-binning) dataset representation.
//
// Feature values are float32 with quiet-NaN marking missing entries
// (sparseness S in the paper's Table III is the fraction of *present*
// entries). Two storage layouts are supported behind one iteration API:
// dense row-major for mostly-full matrices (HIGGS, AIRLINE, CRITEO shapes)
// and CSR for matrices with many absent entries (the YFCC shape, S = 0.31).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace harp {

class MappedFile;

inline constexpr float kMissingValue = std::numeric_limits<float>::quiet_NaN();

inline bool IsMissing(float value) { return std::isnan(value); }

// One present entry of a sparse row.
struct Entry {
  uint32_t feature;
  float value;
};

class Dataset {
 public:
  enum class Layout { kDense, kSparse };

  Dataset() = default;

  // Dense constructor: `values` is row-major num_rows x num_features with
  // NaN for missing entries.
  static Dataset FromDense(uint32_t num_rows, uint32_t num_features,
                           std::vector<float> values,
                           std::vector<float> labels);

  // Sparse (CSR) constructor: row_ptr has num_rows + 1 entries; entries
  // within a row must have strictly increasing feature ids.
  static Dataset FromCsr(uint32_t num_rows, uint32_t num_features,
                         std::vector<uint32_t> row_ptr,
                         std::vector<Entry> entries,
                         std::vector<float> labels);

  // Dense constructor over an mmap'd cache region: `values` points at
  // num_rows x num_features floats inside *mapping, which is kept alive by
  // shared ownership (copies of the Dataset share it). The value matrix is
  // read-only; labels stay on the heap (objectives read them every round).
  static Dataset FromDenseMapped(uint32_t num_rows, uint32_t num_features,
                                 std::shared_ptr<MappedFile> mapping,
                                 const float* values,
                                 std::vector<float> labels);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_features() const { return num_features_; }
  Layout layout() const { return layout_; }

  const std::vector<float>& labels() const { return labels_; }
  std::vector<float>& mutable_labels() { return labels_; }

  // Query-group boundaries for ranking data (from LibSVM qid: columns):
  // num_groups + 1 entries, group g = rows [group_ptr[g], group_ptr[g+1]).
  // Empty when the dataset has no groups. CHECK-fails on malformed
  // boundaries (must start at 0, end at num_rows, strictly increase).
  void SetGroupPtr(std::vector<uint32_t> group_ptr);
  const std::vector<uint32_t>& group_ptr() const { return group_ptr_; }
  bool has_groups() const { return !group_ptr_.empty(); }
  uint32_t num_groups() const {
    return group_ptr_.empty()
               ? 0
               : static_cast<uint32_t>(group_ptr_.size()) - 1;
  }

  // Value at (row, feature); NaN when missing. O(1) dense,
  // O(log nnz(row)) sparse.
  float At(uint32_t row, uint32_t feature) const;

  // Number of present (non-missing) entries.
  uint64_t NumPresent() const;

  // Sparseness S = #present / (N x M), as defined in Table III.
  double Sparseness() const;

  // Calls fn(feature, value) for each *present* entry of `row`, in
  // increasing feature order.
  template <typename Fn>
  void ForEachInRow(uint32_t row, Fn&& fn) const {
    if (layout_ == Layout::kDense) {
      const float* row_values =
          dense_data() + static_cast<size_t>(row) * num_features_;
      for (uint32_t f = 0; f < num_features_; ++f) {
        if (!IsMissing(row_values[f])) fn(f, row_values[f]);
      }
    } else {
      for (uint32_t i = row_ptr_[row]; i < row_ptr_[row + 1]; ++i) {
        fn(entries_[i].feature, entries_[i].value);
      }
    }
  }

  // Selects a row subset (used by the benchmark harness for train/test
  // splits and by weak-scaling dataset duplication). Group boundaries are
  // sliced along: boundaries are clamped to the row range, so a cut that
  // falls inside a query leaves a truncated query at the slice edge.
  Dataset Slice(uint32_t begin_row, uint32_t end_row) const;

  // Concatenates rows of `other` (must have the same feature count) onto a
  // copy of this dataset. Used for weak-scaling duplication (Fig. 13b).
  // Both datasets must agree on groupedness; group lists are concatenated.
  Dataset ConcatRows(const Dataset& other) const;

  // Direct access for the binary cache and tests. dense_values() is the
  // heap vector (empty under the mmap backend); dense_data() is the
  // layout-agnostic pointer every dense read path goes through.
  const std::vector<float>& dense_values() const { return dense_; }
  const float* dense_data() const {
    return mapped_dense_ != nullptr ? mapped_dense_ : dense_.data();
  }
  const std::vector<uint32_t>& row_ptr() const { return row_ptr_; }
  const std::vector<Entry>& entries() const { return entries_; }

  // True when the dense value matrix lives in an mmap'd cache file rather
  // than on the heap.
  bool is_mapped() const { return mapped_dense_ != nullptr; }

  // Resident heap payload (values + CSR arrays + labels), for ingest
  // throughput and memory reporting. Mapped file bytes are deliberately
  // excluded — they are not resident heap — and reported separately by
  // MappedBytes() so summaries don't double-count under the mmap backend.
  size_t MemoryBytes() const {
    return dense_.size() * sizeof(float) +
           row_ptr_.size() * sizeof(uint32_t) +
           entries_.size() * sizeof(Entry) +
           labels_.size() * sizeof(float) +
           group_ptr_.size() * sizeof(uint32_t);
  }

  // Bytes of the value matrix backed by the file mapping (0 when heap).
  size_t MappedBytes() const {
    return is_mapped()
               ? static_cast<size_t>(num_rows_) * num_features_ * sizeof(float)
               : 0;
  }

 private:
  uint32_t num_rows_ = 0;
  uint32_t num_features_ = 0;
  Layout layout_ = Layout::kDense;
  std::vector<float> dense_;       // dense layout (heap backend)
  const float* mapped_dense_ = nullptr;      // dense layout (mmap backend)
  std::shared_ptr<MappedFile> mapping_;      // keeps mapped_dense_ alive
  std::vector<uint32_t> row_ptr_;  // sparse layout
  std::vector<Entry> entries_;     // sparse layout
  std::vector<float> labels_;
  std::vector<uint32_t> group_ptr_;  // query boundaries; empty = ungrouped
};

}  // namespace harp
