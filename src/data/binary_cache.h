// Binary dataset cache (format v2).
//
// Benchmarks regenerate the same synthetic datasets many times; caching
// the generated Dataset to disk makes re-runs start in milliseconds
// ("training time ... excludes the time spent on data loading and one-time
// initialization", Section V-A4).
//
// v2 layout (all little-endian, no padding):
//   u64  magic "HARPGB2"
//   u32  rows, u32 features, u8 layout (0 = dense, 1 = CSR)
//   per section: u64 byte count, then the raw payload bytes
//     dense:  labels, values
//     sparse: labels, row_ptr, entries
//     then, only for query-grouped (ranking) datasets: group_ptr —
//     ungrouped files stay byte-identical to the pre-group format
//   u64  FNV-1a checksum of every preceding byte
// Writes are buffered (the whole image is serialized in memory and written
// once, through a tmp file + rename). Loads read the file in one call,
// verify the checksum, and reject truncation, trailing garbage and v1
// files (with a "re-generate" message — v1 had no checksum, so a crafted
// short read of the last vector could pass its size checks).
#pragma once

#include <string>

#include "data/dataset.h"

namespace harp {

// Writes `dataset` to `path` (atomic: tmp file + rename). Returns false on
// IO failure with a message in *error.
bool WriteDatasetCache(const std::string& path, const Dataset& dataset,
                       std::string* error);

// Loads a dataset previously written by WriteDatasetCache. Returns false
// on missing/corrupt/stale-format files (callers then regenerate).
bool ReadDatasetCache(const std::string& path, Dataset* out,
                      std::string* error);

}  // namespace harp
