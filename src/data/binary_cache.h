// Binary dataset cache (format v2) + binned-matrix cache.
//
// Benchmarks regenerate the same synthetic datasets many times; caching
// the generated Dataset to disk makes re-runs start in milliseconds
// ("training time ... excludes the time spent on data loading and one-time
// initialization", Section V-A4).
//
// v2 layout (all little-endian, no padding):
//   u64  magic "HARPGB2"
//   u32  rows, u32 features, u8 layout (0 = dense, 1 = CSR)
//   per section: u64 byte count, then the raw payload bytes
//     dense:  labels, values
//     sparse: labels, row_ptr, entries
//     then, only for query-grouped (ranking) datasets: group_ptr —
//     ungrouped files stay byte-identical to the pre-group format
//   u64  FNV-1a checksum of every preceding byte
//
// Page-aligned variant (layout bit 0x80): identical section order, but a
// zero pad is inserted between each section's byte count and its payload
// so every payload starts on a 4096-byte boundary. That makes the dense
// value matrix mappable in place: ReadDatasetCache with use_mmap backs
// the Dataset's values with the file mapping instead of a heap copy.
// Files without the flag are byte-identical to the pre-alignment format,
// so existing caches keep loading (they just fall back to heap).
//
// Binned cache ("HARPGBB2"): the post-quantile artifact — labels, cuts and
// the row-major bin matrix in one checksummed image, with the bin payload
// page-aligned and its absolute offset recorded in the header. This is the
// out-of-core training input: the trainer maps the bins read-only and
// streams row windows through madvise while everything else stays heap.
//
// Writes are buffered (the whole image is serialized in memory and written
// once, through a tmp file + fsync + rename). Heap loads read the file in
// one call and verify the checksum; mmap loads verify the checksum by
// streaming windows over the mapping (retiring pages behind the scan so
// verification itself stays within an out-of-core memory budget), and both
// reject truncation, trailing garbage and v1 files (with a "re-generate"
// message — v1 had no checksum, so a crafted short read of the last vector
// could pass its size checks). Binned loads additionally validate every
// bin id against its feature's bin count — bin ids index histograms, so a
// corrupt byte would otherwise become an out-of-bounds write much later.
#pragma once

#include <string>
#include <vector>

#include "data/binned_matrix.h"
#include "data/dataset.h"

namespace harp {

struct CacheWriteOptions {
  // Page-align section payloads (layout bit 0x80) so the dense value
  // matrix can be mapped in place. Default off: the unaligned format is
  // byte-identical to what previous versions wrote.
  bool page_align = false;
};

struct CacheReadOptions {
  // Back the large payload (dense values / bin matrix) with a read-only
  // mapping of the cache file instead of heap copies. Falls back to heap
  // (with a note in CacheReadInfo) when the file is not page-aligned, the
  // layout is CSR, or the platform has no mmap.
  bool use_mmap = false;
};

struct CacheReadInfo {
  bool mapped = false;       // the large payload is file-backed
  size_t mapped_bytes = 0;   // bytes of that payload
  std::string note;          // why an mmap request fell back, if it did
};

// Writes `dataset` to `path` (atomic: tmp file + fsync + rename). Returns
// false on IO failure with a message in *error.
bool WriteDatasetCache(const std::string& path, const Dataset& dataset,
                       std::string* error,
                       const CacheWriteOptions& opts = {});

// Loads a dataset previously written by WriteDatasetCache. Returns false
// on missing/corrupt/stale-format files (callers then regenerate).
bool ReadDatasetCache(const std::string& path, Dataset* out,
                      std::string* error,
                      const CacheReadOptions& opts = {},
                      CacheReadInfo* info = nullptr);

// Writes the binned training artifact (bin matrix + cuts + labels) to
// `path`. The bin payload is always page-aligned. `labels` must have
// matrix.num_rows() entries.
bool WriteBinnedCache(const std::string& path, const BinnedMatrix& matrix,
                      const std::vector<float>& labels, std::string* error);

// Loads a binned cache. With opts.use_mmap the bin matrix stays in the
// file mapping (checksum + bin-id validation stream over it in windows);
// otherwise everything is copied to the heap. Returns false on
// missing/corrupt files.
bool ReadBinnedCache(const std::string& path, BinnedMatrix* matrix,
                     std::vector<float>* labels, std::string* error,
                     const CacheReadOptions& opts = {},
                     CacheReadInfo* info = nullptr);

// True if the file at `path` starts with the binned-cache magic (cheap
// sniff so the CLI can route --from-cache files to the right loader).
bool IsBinnedCacheFile(const std::string& path);

}  // namespace harp
