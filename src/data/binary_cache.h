// Binary dataset cache.
//
// Benchmarks regenerate the same synthetic datasets many times; caching
// the generated Dataset to disk makes re-runs start in milliseconds
// ("training time ... excludes the time spent on data loading and one-time
// initialization", Section V-A4).
#pragma once

#include <string>

#include "data/dataset.h"

namespace harp {

// Writes `dataset` to `path` (atomic: tmp file + rename). Returns false on
// IO failure with a message in *error.
bool WriteDatasetCache(const std::string& path, const Dataset& dataset,
                       std::string* error);

// Loads a dataset previously written by WriteDatasetCache. Returns false
// on missing/corrupt files (callers then regenerate).
bool ReadDatasetCache(const std::string& path, Dataset* out,
                      std::string* error);

}  // namespace harp
