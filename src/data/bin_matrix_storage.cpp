#include "data/bin_matrix_storage.h"

#include <utility>

#include "common/logging.h"

namespace harp {

BinMatrixStorage BinMatrixStorage::Heap(std::vector<uint8_t> bytes) {
  BinMatrixStorage storage;
  storage.heap_ = std::move(bytes);
  return storage;
}

BinMatrixStorage BinMatrixStorage::Mapped(std::shared_ptr<MappedFile> file,
                                          size_t offset, size_t length) {
  HARP_CHECK(file != nullptr);
  HARP_CHECK_LE(offset, file->size());
  HARP_CHECK_LE(length, file->size() - offset);
  BinMatrixStorage storage;
  storage.file_ = std::move(file);
  storage.file_offset_ = offset;
  storage.size_ = length;
  return storage;
}

uint8_t* BinMatrixStorage::MutableHeap() {
  HARP_CHECK(!mapped()) << "bin storage is a read-only file mapping";
  return heap_.data();
}

bool BinMatrixStorage::Advise(size_t offset, size_t length,
                              MemAdvice advice) const {
  if (!mapped() || offset >= size_) return false;
  if (length > size_ - offset) length = size_ - offset;
  return file_->Advise(file_offset_ + offset, length, advice);
}

}  // namespace harp
