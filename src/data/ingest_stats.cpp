#include "data/ingest_stats.h"

#include "common/string_util.h"
#include "common/timer.h"

namespace harp {

double IngestStats::ParseMBps() const {
  if (parse_ns <= 0) return 0.0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / NsToSec(parse_ns);
}

std::string IngestStats::Summary() const {
  std::string s = StrFormat(
      "ingest: %llu rows, %s in %s",
      static_cast<unsigned long long>(rows),
      HumanBytes(static_cast<double>(bytes)).c_str(),
      HumanDuration(NsToSec(TotalNs())).c_str());
  if (parse_ns > 0) {
    s += StrFormat(" (%.1fMB/s parse", ParseMBps());
  } else {
    s += " (";
  }
  const char* sep = parse_ns > 0 ? "; " : "";
  if (read_ns > 0) {
    s += StrFormat("%sread %s", sep, HumanDuration(NsToSec(read_ns)).c_str());
    sep = ", ";
  }
  if (parse_ns > 0) {
    s += StrFormat("%sparse %s", sep,
                   HumanDuration(NsToSec(parse_ns)).c_str());
    sep = ", ";
  }
  if (sketch_ns > 0) {
    s += StrFormat("%ssketch %s", sep,
                   HumanDuration(NsToSec(sketch_ns)).c_str());
    sep = ", ";
  }
  if (bin_ns > 0) {
    s += StrFormat("%sbin %s", sep, HumanDuration(NsToSec(bin_ns)).c_str());
    sep = ", ";
  }
  s += StrFormat("%s%d threads, %d chunks)", sep, threads, chunks);
  if (mmap_bytes > 0) {
    s += StrFormat(" [mmap %s",
                   HumanBytes(static_cast<double>(mmap_bytes)).c_str());
    if (peak_rss_bytes > 0) {
      s += StrFormat(", peak RSS %s",
                     HumanBytes(static_cast<double>(peak_rss_bytes)).c_str());
    }
    s += "]";
  }
  return s;
}

}  // namespace harp
