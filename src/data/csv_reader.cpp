#include "data/csv_reader.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace harp {

bool ParseCsv(const std::string& content, const CsvOptions& options,
              Dataset* out, std::string* error) {
  std::vector<float> values;
  std::vector<float> labels;
  int num_columns = -1;

  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  bool skipped_header = !options.has_header;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const auto fields = Split(trimmed, options.delimiter);
    if (num_columns < 0) {
      num_columns = static_cast<int>(fields.size());
      if (options.label_column >= num_columns) {
        *error = StrFormat("label column %d out of range (%d columns)",
                           options.label_column, num_columns);
        return false;
      }
    } else if (static_cast<int>(fields.size()) != num_columns) {
      *error = StrFormat("line %d: expected %d fields, got %zu", line_number,
                         num_columns, fields.size());
      return false;
    }
    for (int c = 0; c < num_columns; ++c) {
      const std::string_view field = Trim(fields[static_cast<size_t>(c)]);
      double parsed = 0.0;
      if (c == options.label_column) {
        if (!ParseDouble(field, &parsed)) {
          *error = StrFormat("line %d: bad label '%.*s'", line_number,
                             static_cast<int>(field.size()), field.data());
          return false;
        }
        labels.push_back(static_cast<float>(parsed));
      } else if (field.empty() || field == "NA" || field == "nan") {
        values.push_back(kMissingValue);
      } else if (ParseDouble(field, &parsed)) {
        values.push_back(static_cast<float>(parsed));
      } else {
        *error = StrFormat("line %d: bad value '%.*s'", line_number,
                           static_cast<int>(field.size()), field.data());
        return false;
      }
    }
  }
  if (labels.empty()) {
    *error = "no data rows";
    return false;
  }
  const uint32_t num_rows = static_cast<uint32_t>(labels.size());
  const uint32_t num_features = static_cast<uint32_t>(num_columns - 1);
  *out = Dataset::FromDense(num_rows, num_features, std::move(values),
                            std::move(labels));
  return true;
}

bool ReadCsv(const std::string& path, const CsvOptions& options, Dataset* out,
             std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), options, out, error);
}

}  // namespace harp
