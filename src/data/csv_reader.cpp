#include "data/csv_reader.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/text_chunker.h"
#include "parallel/thread_pool.h"

namespace harp {

bool ParseCsv(const std::string& content, const CsvOptions& options,
              Dataset* out, std::string* error) {
  std::vector<float> values;
  std::vector<float> labels;
  int num_columns = -1;

  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  bool skipped_header = !options.has_header;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const auto fields = Split(trimmed, options.delimiter);
    if (num_columns < 0) {
      num_columns = static_cast<int>(fields.size());
      if (options.label_column >= num_columns) {
        *error = StrFormat("label column %d out of range (%d columns)",
                           options.label_column, num_columns);
        return false;
      }
    } else if (static_cast<int>(fields.size()) != num_columns) {
      *error = StrFormat("line %d: expected %d fields, got %zu", line_number,
                         num_columns, fields.size());
      return false;
    }
    for (int c = 0; c < num_columns; ++c) {
      const std::string_view field = Trim(fields[static_cast<size_t>(c)]);
      double parsed = 0.0;
      if (c == options.label_column) {
        if (!ParseDouble(field, &parsed)) {
          *error = StrFormat("line %d: bad label '%.*s'", line_number,
                             static_cast<int>(field.size()), field.data());
          return false;
        }
        labels.push_back(static_cast<float>(parsed));
      } else if (field.empty() || field == "NA" || field == "nan") {
        values.push_back(kMissingValue);
      } else if (ParseDouble(field, &parsed)) {
        values.push_back(static_cast<float>(parsed));
      } else {
        *error = StrFormat("line %d: bad value '%.*s'", line_number,
                           static_cast<int>(field.size()), field.data());
        return false;
      }
    }
  }
  if (labels.empty()) {
    *error = "no data rows";
    return false;
  }
  const uint32_t num_rows = static_cast<uint32_t>(labels.size());
  const uint32_t num_features = static_cast<uint32_t>(num_columns - 1);
  *out = Dataset::FromDense(num_rows, num_features, std::move(values),
                            std::move(labels));
  return true;
}

namespace {

// Serial pre-scan: locates the start of the data region (after the
// optional header) and establishes the column count from the first data
// row, exactly as the serial parser's first iterations would.
struct CsvPrescan {
  size_t data_begin = 0;     // chunking starts here (a line start)
  int64_t lines_before = 0;  // physical lines in [0, data_begin)
  int num_columns = 0;
};

bool PrescanCsv(std::string_view content, const CsvOptions& options,
                CsvPrescan* out, std::string* error) {
  bool skipped_header = !options.has_header;
  bool found = false;
  size_t pos = 0;
  int64_t lines = 0;
  const size_t n = content.size();
  while (pos < n && !found) {
    const char* nl = static_cast<const char*>(
        std::memchr(content.data() + pos, '\n', n - pos));
    const size_t line_end = nl ? static_cast<size_t>(nl - content.data()) : n;
    const size_t next = nl ? line_end + 1 : n;
    ++lines;
    const std::string_view trimmed = Trim(content.substr(pos, line_end - pos));
    if (trimmed.empty()) {
      pos = next;
      continue;
    }
    if (!skipped_header) {
      skipped_header = true;
      out->data_begin = next;
      out->lines_before = lines;
      pos = next;
      continue;
    }
    int columns = 1;
    for (char c : trimmed) {
      if (c == options.delimiter) ++columns;
    }
    if (options.label_column >= columns) {
      *error = StrFormat("label column %d out of range (%d columns)",
                         options.label_column, columns);
      return false;
    }
    out->num_columns = columns;
    found = true;
  }
  if (!found) {
    *error = "no data rows";
    return false;
  }
  return true;
}

struct CsvChunkCounts {
  int64_t lines = 0;  // physical lines in the chunk
  int64_t rows = 0;   // non-empty (data) lines
};

CsvChunkCounts CountCsvChunk(std::string_view content, TextChunk chunk) {
  CsvChunkCounts counts;
  counts.lines = ForEachLine(content, chunk.begin, chunk.end,
                             [&](std::string_view line) {
                               if (!Trim(line).empty()) ++counts.rows;
                               return true;
                             });
  return counts;
}

struct CsvChunkError {
  int64_t line = -1;    // 1-based, relative to the chunk start
  std::string message;  // without the "line N: " prefix
};

// Scans one chunk's lines in place, writing parsed rows directly into the
// final arrays at `row_base` (no fragment copies — the count pass already
// fixed every chunk's output position). Field splitting walks delimiters
// with no Split vector; the field count is verified before any value is
// parsed, matching the serial parser's error order.
bool ParseCsvChunk(std::string_view content, TextChunk chunk,
                   const CsvOptions& options, int num_columns,
                   int64_t row_base, float* values, float* labels,
                   CsvChunkError* err) {
  const int64_t num_features = num_columns - 1;
  float* value_out = values + row_base * num_features;
  float* label_out = labels + row_base;
  int64_t line_idx = 0;
  bool ok = true;
  ForEachLine(content, chunk.begin, chunk.end, [&](std::string_view raw) {
    ++line_idx;
    const std::string_view line = Trim(raw);
    if (line.empty()) return true;
    // Single walk over the line: fields are split and parsed as they are
    // found. The serial parser reports a field-count mismatch before any
    // bad field on the same line, so failures fall through to a recount
    // that decides which error wins (lines are short; the slow path only
    // runs on the erroring line).
    const char* bad_kind = nullptr;  // "label" or "value"
    std::string_view bad_field;
    size_t fpos = 0;
    int c = 0;
    for (; c < num_columns && fpos <= line.size(); ++c) {
      size_t fend = line.find(options.delimiter, fpos);
      if (fend == std::string_view::npos) fend = line.size();
      const std::string_view field = Trim(line.substr(fpos, fend - fpos));
      fpos = fend + 1;
      float parsed = 0.0f;
      if (c == options.label_column) {
        if (!ParseFloat(field, &parsed)) {
          bad_kind = "label";
          bad_field = field;
          break;
        }
        *label_out++ = parsed;
      } else if (field.empty() || field == "NA" || field == "nan") {
        *value_out++ = kMissingValue;
      } else if (ParseFloat(field, &parsed)) {
        *value_out++ = parsed;
      } else {
        bad_kind = "value";
        bad_field = field;
        break;
      }
    }
    // fpos == line.size() + 1 exactly when the last field ended at
    // end-of-line with no trailing delimiter: all columns consumed.
    if (bad_kind == nullptr && c == num_columns && fpos == line.size() + 1) {
      return true;
    }
    int columns = 1;
    for (char ch : line) {
      if (ch == options.delimiter) ++columns;
    }
    err->line = line_idx;
    if (columns != num_columns) {
      err->message =
          StrFormat("expected %d fields, got %d", num_columns, columns);
    } else {
      err->message = StrFormat("bad %s '%.*s'", bad_kind,
                               static_cast<int>(bad_field.size()),
                               bad_field.data());
    }
    ok = false;
    return false;
  });
  return ok;
}

}  // namespace

bool ParseCsvChunked(std::string_view content, const CsvOptions& options,
                     int num_chunks, ThreadPool* pool, Dataset* out,
                     std::string* error, IngestStats* stats) {
  CsvPrescan pre;
  if (!PrescanCsv(content, options, &pre, error)) return false;

  const std::vector<TextChunk> chunks =
      ChunkLines(content, pre.data_begin, num_chunks);
  const int c = static_cast<int>(chunks.size());

  // Pass 1: per-chunk line/row counts, giving every chunk its exact output
  // slot (row base) and error line base.
  std::vector<CsvChunkCounts> counts(chunks.size());
  RunChunks(pool, c, [&](int i) {
    counts[static_cast<size_t>(i)] =
        CountCsvChunk(content, chunks[static_cast<size_t>(i)]);
  });
  std::vector<int64_t> row_base(chunks.size() + 1, 0);
  std::vector<int64_t> line_base(chunks.size() + 1, pre.lines_before);
  for (size_t i = 0; i < chunks.size(); ++i) {
    row_base[i + 1] = row_base[i] + counts[i].rows;
    line_base[i + 1] = line_base[i] + counts[i].lines;
  }
  const int64_t total_rows = row_base.back();
  if (total_rows == 0) {
    *error = "no data rows";
    return false;
  }

  // Pass 2: parse every chunk straight into the final arrays.
  const uint32_t num_features = static_cast<uint32_t>(pre.num_columns - 1);
  std::vector<float> values(static_cast<size_t>(total_rows) * num_features);
  std::vector<float> labels(static_cast<size_t>(total_rows));
  std::vector<CsvChunkError> errors(chunks.size());
  std::vector<uint8_t> chunk_ok(chunks.size(), 1);
  RunChunks(pool, c, [&](int i) {
    const size_t k = static_cast<size_t>(i);
    chunk_ok[k] = ParseCsvChunk(content, chunks[k], options, pre.num_columns,
                                row_base[k], values.data(), labels.data(),
                                &errors[k])
                      ? 1
                      : 0;
  });
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (!chunk_ok[i]) {
      // The lowest-indexed failing chunk holds the first error in document
      // order — the one the serial parser would have stopped at.
      *error = StrFormat("line %d: %s",
                         static_cast<int>(line_base[i] + errors[i].line),
                         errors[i].message.c_str());
      return false;
    }
  }

  if (stats != nullptr) {
    stats->rows = static_cast<uint64_t>(total_rows);
    stats->chunks = c;
  }
  *out = Dataset::FromDense(static_cast<uint32_t>(total_rows), num_features,
                            std::move(values), std::move(labels));
  return true;
}

bool ReadCsv(const std::string& path, const CsvOptions& options, Dataset* out,
             std::string* error, IngestStats* stats, ThreadPool* pool) {
  std::string content;
  const Stopwatch read_watch;
  if (!ReadFileToString(path, &content, error)) return false;
  const int64_t read_ns = read_watch.ElapsedNs();

  const int threads =
      pool != nullptr ? pool->num_threads() : ThreadPool::DefaultThreads();
  const int num_chunks = PickChunkCount(content.size(), threads);
  const Stopwatch parse_watch;
  bool ok;
  if (num_chunks > 1 && pool == nullptr) {
    ThreadPool local_pool(threads);
    ok = ParseCsvChunked(content, options, num_chunks, &local_pool, out,
                         error, stats);
  } else {
    ok = ParseCsvChunked(content, options, num_chunks, pool, out, error,
                         stats);
  }
  if (stats != nullptr) {
    stats->bytes = content.size();
    stats->read_ns = read_ns;
    stats->parse_ns = parse_watch.ElapsedNs();
    stats->threads = num_chunks > 1 ? threads : 1;
  }
  return ok;
}

}  // namespace harp
