#include "data/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace harp {

GkSketch::GkSketch(double eps) : eps_(eps) {
  HARP_CHECK_GT(eps, 0.0);
  HARP_CHECK_LT(eps, 0.5);
}

void GkSketch::Add(float value) {
  ++count_;

  // Position of the first tuple with tuple.value >= value.
  const auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, float v) { return t.value < v; });

  Tuple inserted{value, 1, 0};
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insertion: the new tuple's uncertainty is bounded by the
    // capacity of its position, floor(2 eps n) - 1.
    const int64_t cap =
        static_cast<int64_t>(std::floor(2.0 * eps_ * count_)) - 1;
    inserted.delta = std::max<int64_t>(0, cap);
  }
  tuples_.insert(it, inserted);

  if (++inserts_since_compress_ >=
      std::max<int64_t>(1, static_cast<int64_t>(1.0 / (2.0 * eps_)))) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) return;
  const int64_t threshold =
      static_cast<int64_t>(std::floor(2.0 * eps_ * count_));
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  kept.push_back(tuples_.front());
  // Walk right to left conceptually: a tuple may be absorbed into its
  // successor when their combined band fits the threshold. Implemented
  // left to right by accumulating g into the next survivor.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& current = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (current.g + next.g + next.delta <= threshold) {
      // Absorb current into next (defer: bump next's g in place).
      tuples_[i + 1].g += current.g;
    } else {
      kept.push_back(current);
    }
  }
  kept.push_back(tuples_.back());
  tuples_ = std::move(kept);
}

void GkSketch::Merge(const GkSketch& other) {
  if (other.tuples_.empty()) return;
  // Standard mergeable-summary construction: merge-sort the tuple lists,
  // keeping each tuple's (g, delta); the result's error is eps_a + eps_b.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) { return a.value < b.value; });
  tuples_ = std::move(merged);
  count_ += other.count_;
  Compress();
}

float GkSketch::Query(double quantile) const {
  HARP_CHECK(!tuples_.empty()) << "query on an empty sketch";
  const double clamped = std::clamp(quantile, 0.0, 1.0);
  const int64_t target =
      static_cast<int64_t>(std::ceil(clamped * static_cast<double>(count_)));
  const int64_t slack =
      static_cast<int64_t>(std::ceil(eps_ * static_cast<double>(count_)));

  // Largest value whose maximum possible rank stays within target + slack:
  // its true rank is then within eps*n of the target.
  int64_t rank_min = 0;
  float result = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    rank_min += t.g;
    if (rank_min + t.delta <= target + slack) {
      result = t.value;
    } else {
      break;
    }
  }
  return result;
}

std::vector<float> GkSketch::EvenQuantiles(int k) const {
  std::vector<float> cuts;
  if (tuples_.empty() || k <= 0) return cuts;
  cuts.reserve(static_cast<size_t>(k));
  for (int i = 1; i < k; ++i) {
    cuts.push_back(Query(static_cast<double>(i) / k));
  }
  cuts.push_back(tuples_.back().value);  // cover the maximum
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

}  // namespace harp
