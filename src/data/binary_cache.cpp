#include "data/binary_cache.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

namespace harp {
namespace {

constexpr uint64_t kMagic = 0x48415250474231ULL;  // "HARPGB1"

template <typename T>
bool WriteVector(std::ofstream& out, const std::vector<T>& v) {
  const uint64_t size = v.size();
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  if (size > 0) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(size * sizeof(T)));
  }
  return out.good();
}

template <typename T>
bool ReadVector(std::ifstream& in, std::vector<T>* v) {
  uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in.good()) return false;
  // 1 billion elements is far beyond any dataset this repo generates;
  // treat it as corruption rather than attempting the allocation.
  if (size > (1ULL << 30)) return false;
  v->resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(size * sizeof(T)));
  }
  return in.good();
}

}  // namespace

bool WriteDatasetCache(const std::string& path, const Dataset& dataset,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      *error = "cannot open " + tmp;
      return false;
    }
    const uint64_t magic = kMagic;
    const uint32_t rows = dataset.num_rows();
    const uint32_t features = dataset.num_features();
    const uint8_t layout =
        dataset.layout() == Dataset::Layout::kDense ? 0 : 1;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&features), sizeof(features));
    out.write(reinterpret_cast<const char*>(&layout), sizeof(layout));
    bool ok = WriteVector(out, dataset.labels());
    if (layout == 0) {
      ok = ok && WriteVector(out, dataset.dense_values());
    } else {
      ok = ok && WriteVector(out, dataset.row_ptr());
      ok = ok && WriteVector(out, dataset.entries());
    }
    if (!ok) {
      *error = "write failed for " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename failed for " + path;
    return false;
  }
  return true;
}

bool ReadDatasetCache(const std::string& path, Dataset* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  uint64_t magic = 0;
  uint32_t rows = 0;
  uint32_t features = 0;
  uint8_t layout = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&features), sizeof(features));
  in.read(reinterpret_cast<char*>(&layout), sizeof(layout));
  if (!in.good() || magic != kMagic) {
    *error = "bad header in " + path;
    return false;
  }
  std::vector<float> labels;
  if (!ReadVector(in, &labels) || labels.size() != rows) {
    *error = "bad labels in " + path;
    return false;
  }
  if (layout == 0) {
    std::vector<float> values;
    if (!ReadVector(in, &values) ||
        values.size() != static_cast<size_t>(rows) * features) {
      *error = "bad values in " + path;
      return false;
    }
    *out = Dataset::FromDense(rows, features, std::move(values),
                              std::move(labels));
  } else {
    std::vector<uint32_t> row_ptr;
    std::vector<Entry> entries;
    if (!ReadVector(in, &row_ptr) || row_ptr.size() != rows + 1 ||
        !ReadVector(in, &entries) || entries.size() != row_ptr.back()) {
      *error = "bad CSR data in " + path;
      return false;
    }
    *out = Dataset::FromCsr(rows, features, std::move(row_ptr),
                            std::move(entries), std::move(labels));
  }
  return true;
}

}  // namespace harp
