#include "data/binary_cache.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/file_util.h"

namespace harp {
namespace {

constexpr uint64_t kMagicV1 = 0x48415250474231ULL;  // "HARPGB1"
constexpr uint64_t kMagicV2 = 0x48415250474232ULL;  // "HARPGB2"

// Header = magic + rows + features + layout; footer = checksum.
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 1;
constexpr size_t kFooterBytes = 8;

// FNV-1a folded over 8-byte words (byte-wise on the tail): deterministic,
// fast enough to keep cache loads IO-bound, and any flipped payload bit
// changes the result.
uint64_t HashBytes(const char* data, size_t n) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    hash = (hash ^ word) * kPrime;
  }
  for (; i < n; ++i) {
    hash = (hash ^ static_cast<unsigned char>(data[i])) * kPrime;
  }
  return hash;
}

void AppendRaw(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendSection(std::string* buf, const std::vector<T>& v) {
  const uint64_t bytes = v.size() * sizeof(T);
  AppendRaw(buf, &bytes, sizeof(bytes));
  if (bytes > 0) AppendRaw(buf, v.data(), static_cast<size_t>(bytes));
}

// Cursor over the in-memory image's section area [kHeaderBytes, size -
// kFooterBytes). Every read is bounds-checked against that window.
class SectionReader {
 public:
  SectionReader(const std::string& blob)
      : data_(blob.data()), pos_(kHeaderBytes),
        limit_(blob.size() - kFooterBytes) {}

  // Reads one section into *v, requiring exactly `expected` elements
  // (byte count and element size must agree — a byte count that is not a
  // multiple of sizeof(T), overruns the section area, or disagrees with
  // the expected element count is corruption).
  template <typename T>
  bool ReadSection(std::vector<T>* v, uint64_t expected) {
    if (pos_ + 8 > limit_) return false;
    uint64_t bytes = 0;
    std::memcpy(&bytes, data_ + pos_, 8);
    pos_ += 8;
    if (bytes % sizeof(T) != 0 || bytes > limit_ - pos_) return false;
    if (bytes / sizeof(T) != expected) return false;
    v->resize(static_cast<size_t>(expected));
    if (bytes > 0) {
      std::memcpy(v->data(), data_ + pos_, static_cast<size_t>(bytes));
      pos_ += static_cast<size_t>(bytes);
    }
    return true;
  }

  // Reads one self-sized section into *v (element count taken from the
  // stored byte count). Used for the optional trailing group section.
  template <typename T>
  bool ReadSizedSection(std::vector<T>* v) {
    if (pos_ + 8 > limit_) return false;
    uint64_t bytes = 0;
    std::memcpy(&bytes, data_ + pos_, 8);
    pos_ += 8;
    if (bytes % sizeof(T) != 0 || bytes > limit_ - pos_) return false;
    v->resize(static_cast<size_t>(bytes / sizeof(T)));
    if (bytes > 0) {
      std::memcpy(v->data(), data_ + pos_, static_cast<size_t>(bytes));
      pos_ += static_cast<size_t>(bytes);
    }
    return true;
  }

  // True when every byte of the section area has been consumed.
  bool AtEnd() const { return pos_ == limit_; }

 private:
  const char* data_;
  size_t pos_;
  size_t limit_;
};

}  // namespace

bool WriteDatasetCache(const std::string& path, const Dataset& dataset,
                       std::string* error) {
  std::string image;
  // values (dense) or entries (sparse) dominate; labels + row_ptr + header
  // fit in the slack of one extra row per element section.
  image.reserve(kHeaderBytes + kFooterBytes + 64 +
                dataset.dense_values().size() * sizeof(float) +
                dataset.entries().size() * sizeof(Entry) +
                dataset.row_ptr().size() * sizeof(uint32_t) +
                dataset.labels().size() * sizeof(float));
  const uint64_t magic = kMagicV2;
  const uint32_t rows = dataset.num_rows();
  const uint32_t features = dataset.num_features();
  const uint8_t layout =
      dataset.layout() == Dataset::Layout::kDense ? 0 : 1;
  AppendRaw(&image, &magic, sizeof(magic));
  AppendRaw(&image, &rows, sizeof(rows));
  AppendRaw(&image, &features, sizeof(features));
  AppendRaw(&image, &layout, sizeof(layout));
  AppendSection(&image, dataset.labels());
  if (layout == 0) {
    AppendSection(&image, dataset.dense_values());
  } else {
    AppendSection(&image, dataset.row_ptr());
    AppendSection(&image, dataset.entries());
  }
  // Optional trailing query-group section: only grouped datasets write it,
  // so ungrouped cache files stay byte-identical to the pre-group format
  // and old files load unchanged.
  if (dataset.has_groups()) {
    AppendSection(&image, dataset.group_ptr());
  }
  const uint64_t checksum = HashBytes(image.data(), image.size());
  AppendRaw(&image, &checksum, sizeof(checksum));
  return WriteStringToFile(path, image, error);
}

bool ReadDatasetCache(const std::string& path, Dataset* out,
                      std::string* error) {
  std::string blob;
  if (!ReadFileToString(path, &blob, error)) return false;
  if (blob.size() < kHeaderBytes + kFooterBytes) {
    *error = "truncated cache file " + path;
    return false;
  }
  uint64_t magic = 0;
  uint32_t rows = 0;
  uint32_t features = 0;
  uint8_t layout = 0;
  std::memcpy(&magic, blob.data(), 8);
  std::memcpy(&rows, blob.data() + 8, 4);
  std::memcpy(&features, blob.data() + 12, 4);
  std::memcpy(&layout, blob.data() + 16, 1);
  if (magic == kMagicV1) {
    *error = path + " uses cache format v1; delete it and re-generate cache";
    return false;
  }
  if (magic != kMagicV2 || layout > 1) {
    *error = "bad header in " + path;
    return false;
  }
  uint64_t stored = 0;
  std::memcpy(&stored, blob.data() + blob.size() - kFooterBytes, 8);
  if (HashBytes(blob.data(), blob.size() - kFooterBytes) != stored) {
    *error = "checksum mismatch in " + path +
             " (corrupt cache; delete it and re-generate cache)";
    return false;
  }
  // Element counts are fully determined by the header; any disagreement
  // (including a short final section or bytes left over before the
  // checksum) is corruption.
  SectionReader reader(blob);
  std::vector<float> labels;
  if (!reader.ReadSection(&labels, rows)) {
    *error = "bad labels in " + path;
    return false;
  }
  if (layout == 0) {
    std::vector<float> values;
    if (!reader.ReadSection(&values,
                            static_cast<uint64_t>(rows) * features)) {
      *error = "bad values in " + path;
      return false;
    }
    *out = Dataset::FromDense(rows, features, std::move(values),
                              std::move(labels));
  } else {
    std::vector<uint32_t> row_ptr;
    std::vector<Entry> entries;
    if (!reader.ReadSection(&row_ptr, static_cast<uint64_t>(rows) + 1) ||
        row_ptr.back() > (1ULL << 31)) {
      *error = "bad CSR data in " + path;
      return false;
    }
    if (!reader.ReadSection(&entries, row_ptr.back())) {
      *error = "bad CSR data in " + path;
      return false;
    }
    *out = Dataset::FromCsr(rows, features, std::move(row_ptr),
                            std::move(entries), std::move(labels));
  }
  // Optional query-group section (absent in ungrouped and older files).
  if (!reader.AtEnd()) {
    std::vector<uint32_t> group_ptr;
    if (!reader.ReadSizedSection(&group_ptr) || group_ptr.size() < 2 ||
        group_ptr.front() != 0 || group_ptr.back() != rows) {
      *error = "bad group data in " + path;
      return false;
    }
    for (size_t g = 0; g + 1 < group_ptr.size(); ++g) {
      if (group_ptr[g] >= group_ptr[g + 1]) {
        *error = "bad group data in " + path;
        return false;
      }
    }
    if (!reader.AtEnd()) {
      *error = "trailing garbage in " + path;
      return false;
    }
    out->SetGroupPtr(std::move(group_ptr));
  }
  return true;
}

}  // namespace harp
