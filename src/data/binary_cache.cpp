#include "data/binary_cache.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/mmap_util.h"

namespace harp {
namespace {

constexpr uint64_t kMagicV1 = 0x48415250474231ULL;      // "HARPGB1"
constexpr uint64_t kMagicV2 = 0x48415250474232ULL;      // "HARPGB2"
constexpr uint64_t kMagicBinned = 0x4841525047424232ULL;  // "HARPGBB2"

// Header = magic + rows + features + layout; footer = checksum.
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 1;
constexpr size_t kFooterBytes = 8;

// Binned header = magic + rows + features + max_bins + flags + bins_offset.
constexpr size_t kBinnedHeaderBytes = 8 + 4 + 4 + 4 + 1 + 8;
constexpr uint8_t kBinnedHasGroups = 0x01;

// High bit of the dataset-cache layout byte: section payloads are padded
// to kCacheAlign boundaries (the mmap-ready variant).
constexpr uint8_t kAlignedLayoutFlag = 0x80;

// File-format alignment, a constant rather than the runtime page size so
// images are portable across page-size configurations. madvise alignment
// is handled separately (MappedFile::Advise widens to real pages).
constexpr size_t kCacheAlign = 4096;

// Window for streaming passes over a mapping (checksum, bin validation):
// hash/check a window, then drop its pages so verification of an
// arbitrarily large cache stays within an out-of-core memory budget.
// Multiple of 8 (checksum words) and of kCacheAlign.
constexpr size_t kStreamWindowBytes = 4U << 20;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// FNV-1a folded over 8-byte words (byte-wise on the tail): deterministic,
// fast enough to keep cache loads IO-bound, and any flipped payload bit
// changes the result. Chunked continuation is exact as long as every
// non-final chunk is a multiple of 8 bytes.
uint64_t HashUpdate(uint64_t hash, const char* data, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    hash = (hash ^ word) * kFnvPrime;
  }
  for (; i < n; ++i) {
    hash = (hash ^ static_cast<unsigned char>(data[i])) * kFnvPrime;
  }
  return hash;
}

uint64_t HashBytes(const char* data, size_t n) {
  return HashUpdate(kFnvOffset, data, n);
}

// Hashes [0, n) of a mapping in kStreamWindowBytes windows, retiring each
// window's pages after folding it so the checksum pass itself never holds
// more than one window resident.
uint64_t HashMappedStreaming(const MappedFile& file, size_t n) {
  const char* data = reinterpret_cast<const char*>(file.data());
  uint64_t hash = kFnvOffset;
  for (size_t pos = 0; pos < n; pos += kStreamWindowBytes) {
    const size_t len = std::min(kStreamWindowBytes, n - pos);
    hash = HashUpdate(hash, data + pos, len);
    file.Advise(pos, len, MemAdvice::kDontNeed);
  }
  return hash;
}

void AppendRaw(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

// Appends one section: u64 byte count, an optional zero pad bringing the
// payload onto a kCacheAlign boundary, then the payload bytes.
void AppendSectionBytes(std::string* buf, const void* data, uint64_t bytes,
                        bool aligned) {
  AppendRaw(buf, &bytes, sizeof(bytes));
  if (aligned) buf->append((kCacheAlign - buf->size() % kCacheAlign) %
                               kCacheAlign, '\0');
  if (bytes > 0) AppendRaw(buf, data, static_cast<size_t>(bytes));
}

template <typename T>
void AppendSection(std::string* buf, const std::vector<T>& v,
                   bool aligned = false) {
  AppendSectionBytes(buf, v.data(), v.size() * sizeof(T), aligned);
}

// Cursor over an image's section area [start, size - kFooterBytes). Every
// read is bounds-checked against that window. In aligned mode the cursor
// skips the zero pad between each section's byte count and its payload.
class SectionReader {
 public:
  SectionReader(const char* data, size_t size, size_t start, bool aligned)
      : data_(data), pos_(start), limit_(size - kFooterBytes),
        aligned_(aligned) {}

  // Reads one section into *v, requiring exactly `expected` elements
  // (byte count and element size must agree — a byte count that is not a
  // multiple of sizeof(T), overruns the section area, or disagrees with
  // the expected element count is corruption).
  template <typename T>
  bool ReadSection(std::vector<T>* v, uint64_t expected) {
    uint64_t bytes = 0;
    if (!ReadCount(&bytes)) return false;
    if (bytes % sizeof(T) != 0 || bytes > limit_ - pos_) return false;
    if (bytes / sizeof(T) != expected) return false;
    v->resize(static_cast<size_t>(expected));
    if (bytes > 0) {
      std::memcpy(v->data(), data_ + pos_, static_cast<size_t>(bytes));
      pos_ += static_cast<size_t>(bytes);
    }
    return true;
  }

  // Reads one self-sized section into *v (element count taken from the
  // stored byte count). Used for the optional trailing group section.
  template <typename T>
  bool ReadSizedSection(std::vector<T>* v) {
    uint64_t bytes = 0;
    if (!ReadCount(&bytes)) return false;
    if (bytes % sizeof(T) != 0 || bytes > limit_ - pos_) return false;
    v->resize(static_cast<size_t>(bytes / sizeof(T)));
    if (bytes > 0) {
      std::memcpy(v->data(), data_ + pos_, static_cast<size_t>(bytes));
      pos_ += static_cast<size_t>(bytes);
    }
    return true;
  }

  // Zero-copy variant: points *out at the payload of the next section,
  // requiring exactly `expected_bytes`. Used for payloads that stay in
  // the file mapping (dense values, bins).
  bool ViewSection(const char** out, uint64_t expected_bytes) {
    uint64_t bytes = 0;
    if (!ReadCount(&bytes)) return false;
    if (bytes > limit_ - pos_ || bytes != expected_bytes) return false;
    *out = data_ + pos_;
    pos_ += static_cast<size_t>(bytes);
    return true;
  }

  // Skips a self-sized section (the binned cache's alignment pad).
  bool SkipSizedSection() {
    uint64_t bytes = 0;
    if (!ReadCount(&bytes)) return false;
    if (bytes > limit_ - pos_) return false;
    pos_ += static_cast<size_t>(bytes);
    return true;
  }

  // True when every byte of the section area has been consumed.
  bool AtEnd() const { return pos_ == limit_; }

  // Absolute offset of the cursor within the image.
  size_t pos() const { return pos_; }

 private:
  bool ReadCount(uint64_t* bytes) {
    if (pos_ + 8 > limit_) return false;
    std::memcpy(bytes, data_ + pos_, 8);
    pos_ += 8;
    if (aligned_) {
      const size_t next =
          (pos_ + kCacheAlign - 1) / kCacheAlign * kCacheAlign;
      if (next > limit_) return false;
      pos_ = next;
    }
    return true;
  }

  const char* data_;
  size_t pos_;
  size_t limit_;
  bool aligned_;
};

bool ValidateGroupPtr(const std::vector<uint32_t>& group_ptr, uint32_t rows) {
  if (group_ptr.size() < 2 || group_ptr.front() != 0 ||
      group_ptr.back() != rows) {
    return false;
  }
  for (size_t g = 0; g + 1 < group_ptr.size(); ++g) {
    if (group_ptr[g] >= group_ptr[g + 1]) return false;
  }
  return true;
}

// Parses the section area of a dataset-cache image (header and checksum
// already verified by the caller). The mmap read path has its own section
// walk because the dense payload stays in the file mapping there.
bool ParseDatasetSections(const char* data, size_t size,
                          const std::string& path, uint32_t rows,
                          uint32_t features, uint8_t base_layout,
                          bool aligned, Dataset* out, std::string* error) {
  SectionReader reader(data, size, kHeaderBytes, aligned);
  std::vector<float> labels;
  if (!reader.ReadSection(&labels, rows)) {
    *error = "bad labels in " + path;
    return false;
  }
  if (base_layout == 0) {
    const uint64_t count = static_cast<uint64_t>(rows) * features;
    std::vector<float> values;
    if (!reader.ReadSection(&values, count)) {
      *error = "bad values in " + path;
      return false;
    }
    *out = Dataset::FromDense(rows, features, std::move(values),
                              std::move(labels));
  } else {
    std::vector<uint32_t> row_ptr;
    std::vector<Entry> entries;
    if (!reader.ReadSection(&row_ptr, static_cast<uint64_t>(rows) + 1) ||
        row_ptr.back() > (1ULL << 31)) {
      *error = "bad CSR data in " + path;
      return false;
    }
    if (!reader.ReadSection(&entries, row_ptr.back())) {
      *error = "bad CSR data in " + path;
      return false;
    }
    *out = Dataset::FromCsr(rows, features, std::move(row_ptr),
                            std::move(entries), std::move(labels));
  }
  // Optional query-group section (absent in ungrouped and older files).
  if (!reader.AtEnd()) {
    std::vector<uint32_t> group_ptr;
    if (!reader.ReadSizedSection(&group_ptr) ||
        !ValidateGroupPtr(group_ptr, rows)) {
      *error = "bad group data in " + path;
      return false;
    }
    if (!reader.AtEnd()) {
      *error = "trailing garbage in " + path;
      return false;
    }
    out->SetGroupPtr(std::move(group_ptr));
  }
  return true;
}

bool ReadHeader(const char* data, size_t size, const std::string& path,
                uint64_t* magic, uint32_t* rows, uint32_t* features,
                uint8_t* layout, std::string* error) {
  if (size < kHeaderBytes + kFooterBytes) {
    *error = "truncated cache file " + path;
    return false;
  }
  std::memcpy(magic, data, 8);
  std::memcpy(rows, data + 8, 4);
  std::memcpy(features, data + 12, 4);
  std::memcpy(layout, data + 16, 1);
  if (*magic == kMagicV1) {
    *error = path + " uses cache format v1; delete it and re-generate cache";
    return false;
  }
  if (*magic != kMagicV2 || (*layout & ~kAlignedLayoutFlag) > 1) {
    *error = "bad header in " + path;
    return false;
  }
  return true;
}

}  // namespace

bool WriteDatasetCache(const std::string& path, const Dataset& dataset,
                       std::string* error, const CacheWriteOptions& opts) {
  std::string image;
  // values (dense) or entries (sparse) dominate; labels + row_ptr + header
  // fit in the slack of one extra row per element section.
  const uint64_t dense_count = dataset.layout() == Dataset::Layout::kDense
                                   ? static_cast<uint64_t>(
                                         dataset.num_rows()) *
                                         dataset.num_features()
                                   : 0;
  image.reserve(kHeaderBytes + kFooterBytes + 64 +
                (opts.page_align ? 4 * kCacheAlign : 0) +
                static_cast<size_t>(dense_count) * sizeof(float) +
                dataset.entries().size() * sizeof(Entry) +
                dataset.row_ptr().size() * sizeof(uint32_t) +
                dataset.labels().size() * sizeof(float));
  const uint64_t magic = kMagicV2;
  const uint32_t rows = dataset.num_rows();
  const uint32_t features = dataset.num_features();
  const uint8_t layout =
      (dataset.layout() == Dataset::Layout::kDense ? 0 : 1) |
      (opts.page_align ? kAlignedLayoutFlag : 0);
  AppendRaw(&image, &magic, sizeof(magic));
  AppendRaw(&image, &rows, sizeof(rows));
  AppendRaw(&image, &features, sizeof(features));
  AppendRaw(&image, &layout, sizeof(layout));
  const bool aligned = opts.page_align;
  AppendSection(&image, dataset.labels(), aligned);
  if (dataset.layout() == Dataset::Layout::kDense) {
    // dense_data() rather than dense_values(): writing back a dataset that
    // is itself mmap-backed must serialize the mapped floats, not the
    // (empty) heap vector.
    AppendSectionBytes(&image, dataset.dense_data(),
                       dense_count * sizeof(float), aligned);
  } else {
    AppendSection(&image, dataset.row_ptr(), aligned);
    AppendSection(&image, dataset.entries(), aligned);
  }
  // Optional trailing query-group section: only grouped datasets write it,
  // so ungrouped cache files stay byte-identical to the pre-group format
  // and old files load unchanged.
  if (dataset.has_groups()) {
    AppendSection(&image, dataset.group_ptr(), aligned);
  }
  const uint64_t checksum = HashBytes(image.data(), image.size());
  AppendRaw(&image, &checksum, sizeof(checksum));
  return WriteStringToFile(path, image, error);
}

namespace {

// Outcome of the mmap read attempt: success, soft fallback to the heap
// reader (file fine but not mappable as requested), or hard corruption.
enum class MapResult { kMapped, kFallback, kError };

MapResult ReadDatasetCacheMapped(const std::string& path, Dataset* out,
                                 std::string* error, CacheReadInfo* info) {
  std::string map_error;
  std::shared_ptr<MappedFile> file = MappedFile::Open(path, &map_error);
  if (file == nullptr) {
    // Distinguish "cannot open" (missing file: hard error, matches the
    // heap path) from "platform has no mmap" (fallback).
    info->note = map_error;
    return MapResult::kFallback;
  }
  const char* data = reinterpret_cast<const char*>(file->data());
  const size_t size = file->size();
  uint64_t magic = 0;
  uint32_t rows = 0;
  uint32_t features = 0;
  uint8_t layout = 0;
  if (!ReadHeader(data, size, path, &magic, &rows, &features, &layout,
                  error)) {
    return MapResult::kError;
  }
  uint64_t stored = 0;
  std::memcpy(&stored, data + size - kFooterBytes, 8);
  if (HashMappedStreaming(*file, size - kFooterBytes) != stored) {
    *error = "checksum mismatch in " + path +
             " (corrupt cache; delete it and re-generate cache)";
    return MapResult::kError;
  }
  const uint8_t base_layout = layout & ~kAlignedLayoutFlag;
  const bool aligned = (layout & kAlignedLayoutFlag) != 0;
  if (base_layout != 0) {
    info->note = "CSR cache cannot be mapped in place; using heap";
    return MapResult::kFallback;
  }
  if (!aligned) {
    info->note =
        "cache written without page alignment; re-generate it to enable "
        "mmap (using heap)";
    return MapResult::kFallback;
  }
  // Sections: labels (copied), values (viewed in place), optional groups.
  SectionReader reader(data, size, kHeaderBytes, /*aligned=*/true);
  std::vector<float> labels;
  if (!reader.ReadSection(&labels, rows)) {
    *error = "bad labels in " + path;
    return MapResult::kError;
  }
  const char* values = nullptr;
  if (!reader.ViewSection(
          &values, static_cast<uint64_t>(rows) * features * sizeof(float))) {
    *error = "bad values in " + path;
    return MapResult::kError;
  }
  std::vector<uint32_t> group_ptr;
  if (!reader.AtEnd()) {
    if (!reader.ReadSizedSection(&group_ptr) ||
        !ValidateGroupPtr(group_ptr, rows)) {
      *error = "bad group data in " + path;
      return MapResult::kError;
    }
    if (!reader.AtEnd()) {
      *error = "trailing garbage in " + path;
      return MapResult::kError;
    }
  }
  info->mapped = true;
  info->mapped_bytes = static_cast<size_t>(rows) * features * sizeof(float);
  *out = Dataset::FromDenseMapped(rows, features, std::move(file),
                                  reinterpret_cast<const float*>(values),
                                  std::move(labels));
  if (!group_ptr.empty()) out->SetGroupPtr(std::move(group_ptr));
  return MapResult::kMapped;
}

}  // namespace

bool ReadDatasetCache(const std::string& path, Dataset* out,
                      std::string* error, const CacheReadOptions& opts,
                      CacheReadInfo* info) {
  CacheReadInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = CacheReadInfo();
  if (opts.use_mmap) {
    switch (ReadDatasetCacheMapped(path, out, error, info)) {
      case MapResult::kMapped: return true;
      case MapResult::kError: return false;
      case MapResult::kFallback: break;  // heap path below
    }
  }
  std::string blob;
  if (!ReadFileToString(path, &blob, error)) return false;
  uint64_t magic = 0;
  uint32_t rows = 0;
  uint32_t features = 0;
  uint8_t layout = 0;
  if (!ReadHeader(blob.data(), blob.size(), path, &magic, &rows, &features,
                  &layout, error)) {
    return false;
  }
  uint64_t stored = 0;
  std::memcpy(&stored, blob.data() + blob.size() - kFooterBytes, 8);
  if (HashBytes(blob.data(), blob.size() - kFooterBytes) != stored) {
    *error = "checksum mismatch in " + path +
             " (corrupt cache; delete it and re-generate cache)";
    return false;
  }
  // Element counts are fully determined by the header; any disagreement
  // (including a short final section or bytes left over before the
  // checksum) is corruption.
  return ParseDatasetSections(blob.data(), blob.size(), path, rows, features,
                              layout & ~kAlignedLayoutFlag,
                              (layout & kAlignedLayoutFlag) != 0, out, error);
}

bool WriteBinnedCache(const std::string& path, const BinnedMatrix& matrix,
                      const std::vector<float>& labels, std::string* error) {
  HARP_CHECK_EQ(labels.size(), static_cast<size_t>(matrix.num_rows()));
  const uint64_t bins_bytes =
      static_cast<uint64_t>(matrix.num_rows()) * matrix.num_features();
  const QuantileCuts& cuts = matrix.cuts();
  std::string image;
  image.reserve(static_cast<size_t>(bins_bytes) + 2 * kCacheAlign +
                labels.size() * sizeof(float) +
                cuts.cuts().size() * sizeof(float) +
                cuts.cut_ptr().size() * sizeof(uint32_t) + 128);
  const uint64_t magic = kMagicBinned;
  const uint32_t rows = matrix.num_rows();
  const uint32_t features = matrix.num_features();
  const int32_t max_bins = cuts.max_bins();
  const uint8_t flags = matrix.has_groups() ? kBinnedHasGroups : 0;
  uint64_t bins_offset = 0;  // patched below, once the pad is known
  AppendRaw(&image, &magic, sizeof(magic));
  AppendRaw(&image, &rows, sizeof(rows));
  AppendRaw(&image, &features, sizeof(features));
  AppendRaw(&image, &max_bins, sizeof(max_bins));
  AppendRaw(&image, &flags, sizeof(flags));
  const size_t bins_offset_pos = image.size();
  AppendRaw(&image, &bins_offset, sizeof(bins_offset));
  AppendSection(&image, labels);
  AppendSection(&image, cuts.cut_ptr());
  AppendSection(&image, cuts.cuts());
  if (matrix.has_groups()) AppendSection(&image, matrix.group_ptr());
  // Pad section sized so the bins *payload* (after the pad's and the bins
  // section's u64 counts) starts on a kCacheAlign boundary.
  const size_t pad =
      (kCacheAlign - (image.size() + 16) % kCacheAlign) % kCacheAlign;
  const uint64_t pad_bytes = pad;
  AppendRaw(&image, &pad_bytes, sizeof(pad_bytes));
  image.append(pad, '\0');
  AppendRaw(&image, &bins_bytes, sizeof(bins_bytes));
  bins_offset = image.size();
  HARP_CHECK_EQ(bins_offset % kCacheAlign, 0u);
  std::memcpy(&image[bins_offset_pos], &bins_offset, sizeof(bins_offset));
  if (bins_bytes > 0) {
    AppendRaw(&image, matrix.BinData(), static_cast<size_t>(bins_bytes));
  }
  const uint64_t checksum = HashBytes(image.data(), image.size());
  AppendRaw(&image, &checksum, sizeof(checksum));
  return WriteStringToFile(path, image, error);
}

namespace {

// Everything of a binned image except the bins themselves, plus a view of
// the bin payload inside the source buffer.
struct BinnedParse {
  uint32_t rows = 0;
  uint32_t features = 0;
  int32_t max_bins = 0;
  uint64_t bins_offset = 0;
  std::vector<float> labels;
  std::vector<uint32_t> cut_ptr;
  std::vector<float> cuts;
  std::vector<uint32_t> group_ptr;
  const char* bins = nullptr;
};

// Header + sections + structural validation (checksum is the caller's job
// because heap and mmap verify it differently).
bool ParseBinnedImage(const char* data, size_t size, const std::string& path,
                      BinnedParse* p, std::string* error) {
  if (size < kBinnedHeaderBytes + kFooterBytes) {
    *error = "truncated cache file " + path;
    return false;
  }
  uint64_t magic = 0;
  uint8_t flags = 0;
  std::memcpy(&magic, data, 8);
  std::memcpy(&p->rows, data + 8, 4);
  std::memcpy(&p->features, data + 12, 4);
  std::memcpy(&p->max_bins, data + 16, 4);
  std::memcpy(&flags, data + 20, 1);
  std::memcpy(&p->bins_offset, data + 21, 8);
  if (magic != kMagicBinned) {
    *error = "bad header in " + path + " (not a binned cache)";
    return false;
  }
  if (p->max_bins < 2 || p->max_bins > 256 ||
      (flags & ~kBinnedHasGroups) != 0) {
    *error = "bad header in " + path;
    return false;
  }
  SectionReader reader(data, size, kBinnedHeaderBytes, /*aligned=*/false);
  if (!reader.ReadSection(&p->labels, p->rows)) {
    *error = "bad labels in " + path;
    return false;
  }
  if (!reader.ReadSection(&p->cut_ptr,
                          static_cast<uint64_t>(p->features) + 1) ||
      p->cut_ptr.front() != 0) {
    *error = "bad cut_ptr in " + path;
    return false;
  }
  for (uint32_t f = 0; f < p->features; ++f) {
    const uint32_t bins_f = p->cut_ptr[f + 1] - p->cut_ptr[f] + 1;
    if (p->cut_ptr[f + 1] < p->cut_ptr[f] ||
        bins_f > static_cast<uint32_t>(p->max_bins)) {
      *error = "bad cut_ptr in " + path;
      return false;
    }
  }
  if (!reader.ReadSection(&p->cuts, p->cut_ptr.back())) {
    *error = "bad cuts in " + path;
    return false;
  }
  if ((flags & kBinnedHasGroups) != 0) {
    if (!reader.ReadSizedSection(&p->group_ptr) ||
        !ValidateGroupPtr(p->group_ptr, p->rows)) {
      *error = "bad group data in " + path;
      return false;
    }
  }
  if (!reader.SkipSizedSection()) {
    *error = "bad padding in " + path;
    return false;
  }
  const uint64_t bins_bytes =
      static_cast<uint64_t>(p->rows) * p->features;
  const size_t payload_pos = reader.pos() + 8;
  if (!reader.ViewSection(&p->bins, bins_bytes)) {
    *error = "bad bins in " + path;
    return false;
  }
  if (!reader.AtEnd()) {
    *error = "trailing garbage in " + path;
    return false;
  }
  if (p->bins_offset != payload_pos || p->bins_offset % kCacheAlign != 0) {
    *error = "misaligned bins in " + path;
    return false;
  }
  return true;
}

// Every bin id indexes a histogram later; an id >= NumBins(feature) in a
// corrupt or crafted file would become an out-of-bounds write deep inside
// the training kernels, so reject it at load time. `file` non-null makes
// the scan windowed with page retirement (the mmap path).
bool ValidateBinIds(const BinnedParse& p, const MappedFile* file,
                    const std::string& path, std::string* error) {
  std::vector<uint16_t> limit(p.features);
  for (uint32_t f = 0; f < p.features; ++f) {
    limit[f] = static_cast<uint16_t>(p.cut_ptr[f + 1] - p.cut_ptr[f] + 1);
  }
  const size_t row_bytes = p.features;
  const size_t window_rows =
      row_bytes == 0 ? 1
                     : std::max<size_t>(1, kStreamWindowBytes / row_bytes);
  const uint8_t* bins = reinterpret_cast<const uint8_t*>(p.bins);
  for (size_t r0 = 0; r0 < p.rows; r0 += window_rows) {
    const size_t r1 = std::min<size_t>(p.rows, r0 + window_rows);
    for (size_t r = r0; r < r1; ++r) {
      const uint8_t* row = bins + r * row_bytes;
      for (uint32_t f = 0; f < p.features; ++f) {
        if (row[f] >= limit[f]) {
          *error = "bin id out of range in " + path +
                   " (corrupt cache; delete it and re-generate cache)";
          return false;
        }
      }
    }
    if (file != nullptr) {
      file->Advise(p.bins_offset + r0 * row_bytes, (r1 - r0) * row_bytes,
                   MemAdvice::kDontNeed);
    }
  }
  return true;
}

void AssembleBinned(BinnedParse* p, BinMatrixStorage storage,
                    BinnedMatrix* matrix, std::vector<float>* labels) {
  QuantileCuts cuts = QuantileCuts::FromRaw(
      std::move(p->cuts), std::move(p->cut_ptr), p->max_bins);
  *matrix = BinnedMatrix::FromParts(p->rows, p->features, std::move(cuts),
                                    std::move(storage),
                                    std::move(p->group_ptr));
  *labels = std::move(p->labels);
}

}  // namespace

bool ReadBinnedCache(const std::string& path, BinnedMatrix* matrix,
                     std::vector<float>* labels, std::string* error,
                     const CacheReadOptions& opts, CacheReadInfo* info) {
  CacheReadInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = CacheReadInfo();
  if (opts.use_mmap) {
    std::string map_error;
    std::shared_ptr<MappedFile> file = MappedFile::Open(path, &map_error);
    if (file != nullptr) {
      const char* data = reinterpret_cast<const char*>(file->data());
      const size_t size = file->size();
      if (size < kBinnedHeaderBytes + kFooterBytes) {
        *error = "truncated cache file " + path;
        return false;
      }
      uint64_t stored = 0;
      std::memcpy(&stored, data + size - kFooterBytes, 8);
      if (HashMappedStreaming(*file, size - kFooterBytes) != stored) {
        *error = "checksum mismatch in " + path +
                 " (corrupt cache; delete it and re-generate cache)";
        return false;
      }
      BinnedParse parse;
      if (!ParseBinnedImage(data, size, path, &parse, error)) return false;
      if (!ValidateBinIds(parse, file.get(), path, error)) return false;
      const uint64_t bins_bytes =
          static_cast<uint64_t>(parse.rows) * parse.features;
      info->mapped = true;
      info->mapped_bytes = static_cast<size_t>(bins_bytes);
      BinMatrixStorage storage = BinMatrixStorage::Mapped(
          std::move(file), static_cast<size_t>(parse.bins_offset),
          static_cast<size_t>(bins_bytes));
      AssembleBinned(&parse, std::move(storage), matrix, labels);
      return true;
    }
    // Soft fallback (no mmap on this platform / cannot open read-only for
    // mapping): the heap path reports its own errors.
    info->note = map_error;
  }
  std::string blob;
  if (!ReadFileToString(path, &blob, error)) return false;
  if (blob.size() < kBinnedHeaderBytes + kFooterBytes) {
    *error = "truncated cache file " + path;
    return false;
  }
  uint64_t stored = 0;
  std::memcpy(&stored, blob.data() + blob.size() - kFooterBytes, 8);
  if (HashBytes(blob.data(), blob.size() - kFooterBytes) != stored) {
    *error = "checksum mismatch in " + path +
             " (corrupt cache; delete it and re-generate cache)";
    return false;
  }
  BinnedParse parse;
  if (!ParseBinnedImage(blob.data(), blob.size(), path, &parse, error)) {
    return false;
  }
  if (!ValidateBinIds(parse, nullptr, path, error)) return false;
  const size_t bins_bytes =
      static_cast<size_t>(parse.rows) * parse.features;
  std::vector<uint8_t> bins(bins_bytes);
  if (bins_bytes > 0) std::memcpy(bins.data(), parse.bins, bins_bytes);
  AssembleBinned(&parse, BinMatrixStorage::Heap(std::move(bins)), matrix,
                 labels);
  return true;
}

bool IsBinnedCacheFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint64_t magic = 0;
  const bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1;
  std::fclose(f);
  return ok && magic == kMagicBinned;
}

}  // namespace harp
