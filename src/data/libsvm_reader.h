// LIBSVM sparse-format loader: "label [qid:<id>] idx:value idx:value ...",
// indices 1-based by default. Absent features are missing; output is CSR.
// The optional qid column (ranking data) must appear on every row or on
// none, directly after the label, with non-decreasing ids — query groups
// land in Dataset::group_ptr().
//
// Two parsers produce bit-identical Datasets:
//   ParseLibsvm        — the original serial getline parser, kept as the
//                        correctness oracle for tests and bench_ingest;
//   ParseLibsvmChunked — splits the buffer at newline boundaries, scans
//                        tokens in place (no per-line Split vectors) into
//                        per-chunk CSR fragments on a ThreadPool, then
//                        stitches the fragments in chunk order.
// ReadLibsvm loads the file with one read() and runs the chunked parser.
#pragma once

#include <string>
#include <string_view>

#include "data/dataset.h"
#include "data/ingest_stats.h"

namespace harp {

class ThreadPool;

struct LibsvmOptions {
  bool zero_based = false;  // feature indices start at 0 instead of 1
  // When > 0, forces the feature count (otherwise inferred as max index+1).
  uint32_t num_features = 0;
};

// Loads `path` with a single pre-sized read and parses it with the chunked
// parser (`pool` may be null — a transient pool is created for inputs big
// enough to matter). Fills *stats when non-null.
bool ReadLibsvm(const std::string& path, const LibsvmOptions& options,
                Dataset* out, std::string* error,
                IngestStats* stats = nullptr, ThreadPool* pool = nullptr);

// Serial oracle parser (testing / in-memory data).
bool ParseLibsvm(const std::string& content, const LibsvmOptions& options,
                 Dataset* out, std::string* error);

// Chunked parallel parser: output (including error messages and their
// line numbers) is identical to ParseLibsvm for every input.
bool ParseLibsvmChunked(std::string_view content,
                        const LibsvmOptions& options, int num_chunks,
                        ThreadPool* pool, Dataset* out, std::string* error,
                        IngestStats* stats = nullptr);

}  // namespace harp
