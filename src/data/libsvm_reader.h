// LIBSVM sparse-format loader: "label idx:value idx:value ...", indices
// 1-based by default. Absent features are missing; output is CSR.
#pragma once

#include <string>

#include "data/dataset.h"

namespace harp {

struct LibsvmOptions {
  bool zero_based = false;  // feature indices start at 0 instead of 1
  // When > 0, forces the feature count (otherwise inferred as max index+1).
  uint32_t num_features = 0;
};

bool ReadLibsvm(const std::string& path, const LibsvmOptions& options,
                Dataset* out, std::string* error);

bool ParseLibsvm(const std::string& content, const LibsvmOptions& options,
                 Dataset* out, std::string* error);

}  // namespace harp
