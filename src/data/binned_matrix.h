// Binned feature matrix (the "Input" structure of Fig. 5).
//
// Feature values are replaced by 1-byte bin ids in a preprocessing step,
// reducing the training-set footprint to 1/4 of float32 (Section IV-E).
// The primary layout is dense row-major — the layout block-wise scans
// iterate: for each row, for each feature in the current feature block.
// A column-major copy can be materialized on demand for the feature-wise
// baseline (LightGBM scans one feature column at a time).
//
// Bin id semantics (shared with QuantileCuts): 0 = missing, 1..NumCuts(f)
// = value bins. Per-feature bin *offsets* linearize <feature, bin> into a
// single histogram index, so features with uneven bin counts (the CV
// statistic of Table III) occupy proportional histogram space and produce
// genuine workload imbalance.
#pragma once

#include <cstdint>
#include <vector>

#include "data/bin_matrix_storage.h"
#include "data/dataset.h"
#include "data/quantile.h"

namespace harp {

class ThreadPool;

class BinnedMatrix {
 public:
  BinnedMatrix() = default;

  // Bins every entry of `dataset` using `cuts`. The cuts object is copied
  // into the matrix so prediction-time binning uses identical boundaries.
  static BinnedMatrix Build(const Dataset& dataset, QuantileCuts cuts,
                            ThreadPool* pool = nullptr);

  // Assembles a matrix from pre-binned storage (the binned-cache read
  // path): `storage` holds rows x features row-major bin ids — heap or a
  // view into an mmap'd cache file — already validated against `cuts`.
  static BinnedMatrix FromParts(uint32_t num_rows, uint32_t num_features,
                                QuantileCuts cuts, BinMatrixStorage storage,
                                std::vector<uint32_t> group_ptr);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_features() const { return num_features_; }

  // Bin id of (row, feature); 0 means missing.
  uint8_t Bin(uint32_t row, uint32_t feature) const {
    return storage_.data()[static_cast<size_t>(row) * num_features_ + feature];
  }

  // Row-major raw pointer to `row`'s bins (num_features entries).
  const uint8_t* RowBins(uint32_t row) const {
    return storage_.data() + static_cast<size_t>(row) * num_features_;
  }

  // Base pointer of the row-major bin store (stride num_features); raw
  // view for the hist_kernels layer.
  const uint8_t* BinData() const { return storage_.data(); }

  // Number of bins of `feature`, including the missing bin 0.
  uint32_t NumBins(uint32_t feature) const { return cuts_.NumBins(feature); }

  // Largest per-feature bin count: every bin id in the matrix is < this.
  // Bin-range blocking (MakeBinRanges) only needs to cover [0, MaxBins()).
  uint32_t MaxBins() const { return max_bins_; }

  // Histogram offset of `feature`: the linear histogram slot of
  // <feature, bin> is BinOffset(feature) + bin.
  uint32_t BinOffset(uint32_t feature) const { return bin_offsets_[feature]; }

  // Raw per-feature offset array (num_features + 1 entries) for the
  // hist_kernels layer.
  const uint32_t* BinOffsetsData() const { return bin_offsets_.data(); }

  // Total histogram slots across all features (sum of per-feature bins).
  uint32_t TotalBins() const { return bin_offsets_[num_features_]; }

  const QuantileCuts& cuts() const { return cuts_; }

  // Query-group boundaries carried over from the source Dataset (empty for
  // ungrouped data); the trainer hands them to list-wise objectives and
  // group-aware metrics.
  const std::vector<uint32_t>& group_ptr() const { return group_ptr_; }
  bool has_groups() const { return !group_ptr_.empty(); }

  // Column-major access for the feature-parallel baseline. Call
  // EnsureColumnMajor() once (not thread safe) before using ColBins().
  void EnsureColumnMajor(ThreadPool* pool = nullptr);
  bool HasColumnMajor() const { return !col_bins_.empty(); }
  const uint8_t* ColBins(uint32_t feature) const {
    return col_bins_.data() + static_cast<size_t>(feature) * num_rows_;
  }

  // True when the bin store lives in an mmap'd cache file.
  bool IsMapped() const { return storage_.mapped(); }

  // The backing storage (the prefetcher drives madvise through it).
  const BinMatrixStorage& storage() const { return storage_; }

  // Approximate resident heap bytes (bench reporting). Bytes backed by
  // the file mapping are excluded and reported by MappedBytes().
  size_t MemoryBytes() const {
    return storage_.HeapBytes() + col_bins_.size() +
           (bin_offsets_.size() + group_ptr_.size()) * sizeof(uint32_t);
  }
  size_t MappedBytes() const { return storage_.MappedBytes(); }

 private:
  uint32_t num_rows_ = 0;
  uint32_t num_features_ = 0;
  uint32_t max_bins_ = 0;  // max over features of NumBins(f)
  BinMatrixStorage storage_;          // row-major bins, heap | mmap
  std::vector<uint8_t> col_bins_;     // column-major copy (optional)
  std::vector<uint32_t> bin_offsets_;  // size num_features + 1
  std::vector<uint32_t> group_ptr_;    // query boundaries; empty = none
  QuantileCuts cuts_;
};

}  // namespace harp
