// Deterministic synthetic dataset generators.
//
// The paper evaluates on HIGGS / AIRLINE / CRITEO / YFCC plus a synthetic
// SYNSET; its performance analysis depends on the *shape* statistics of
// Table III — row count N, feature count M, sparseness S (fraction of
// present entries), and CV (dispersion of per-feature bin counts, a proxy
// for workload imbalance). The generators below reproduce those statistics
// at configurable scale, with a learnable nonlinear label function so
// accuracy/convergence experiments (Figs. 8, 9, 14, 16) are meaningful.
//
// Generation is deterministic AND independent of thread count: every row
// draws from its own PRNG seeded by (spec.seed, row).
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace harp {

class ThreadPool;

enum class LabelKind {
  kBinaryNonlinear,  // logistic of a nonlinear score (default)
  kBinaryLinear,     // logistic of a linear score
  kRegression,       // continuous target = score + noise
  kMulticlass,       // argmax of num_classes noisy linear scores
};

struct SyntheticSpec {
  std::string name = "synthetic";
  uint32_t rows = 10000;
  uint32_t features = 32;

  // Fraction of entries that are present; Table III's S.
  double density = 1.0;

  // Dispersion of PER-FEATURE density around `density` (coefficient of
  // variation of a unit-mean log-normal multiplier, clamped to [0, 1]).
  // Real sparse datasets (LibSVM-style CRITEO / YFCC dumps) concentrate
  // their present entries in a few hot features with a long cold tail —
  // exactly the shape that makes the sparse histogram exchange pay off.
  // 0 (default) keeps the uniform density and is draw-for-draw identical
  // to the previous generator.
  double density_skew = 0.0;

  // Per-feature distinct-value counts are drawn log-normally with this mean
  // and coefficient of variation; CV of the resulting bin counts is
  // Table III's CV. distinct counts are clamped to [2, max_distinct].
  double mean_distinct = 128.0;
  double distinct_cv = 0.0;
  uint32_t max_distinct = 4000;

  // When non-empty, overrides the log-normal draw with explicit per-
  // feature cardinalities, cycled across features. Used by the AIRLINE
  // preset: with only 8 features, a random draw cannot reliably hit the
  // target CV, but real airline fields (times, dates, carriers) have
  // known, very uneven cardinalities.
  std::vector<uint32_t> explicit_distinct;

  LabelKind label = LabelKind::kBinaryNonlinear;
  // Class count for LabelKind::kMulticlass.
  uint32_t num_classes = 3;
  // Larger => more separable classes (higher reachable AUC).
  double margin_scale = 2.0;
  // Number of leading features that influence the label.
  uint32_t active_features = 8;

  // CRITEO pathology (Section V-F): overwrite feature 0 with a noisy copy
  // of the response, making leafwise growth split one branch very deep.
  bool response_encoded_feature = false;

  // Emit CSR storage instead of dense (for low-density fat matrices).
  bool sparse_storage = false;

  uint64_t seed = 42;
};

// Generates the dataset described by `spec`.
Dataset GenerateSynthetic(const SyntheticSpec& spec,
                          ThreadPool* pool = nullptr);

// Query-grouped ranking data (LambdaRank / NDCG experiments). Each query
// draws a topic vector; its documents are the topic plus per-doc noise,
// and relevance grades 0..max_relevance are assigned by the within-query
// quantile of a noisy latent utility of the *doc-specific* part. Grades
// are therefore query-relative — the same absolute feature vector can be
// grade 4 in a weak query and grade 1 in a strong one — which is what
// separates list-wise training from pointwise calibration. Labels are the
// grades; group boundaries land in Dataset::group_ptr(). Deterministic
// and thread-count independent (per-query PRNG streams).
struct RankingSpec {
  std::string name = "ranking";
  uint32_t num_queries = 200;
  uint32_t min_docs = 5;    // per-query document count, drawn uniformly
  uint32_t max_docs = 40;
  uint32_t features = 16;
  uint32_t active_features = 8;  // leading features that carry utility
  int max_relevance = 4;         // grades 0..max_relevance
  double noise = 0.5;            // latent-utility noise scale
  double topic_scale = 0.75;     // per-query feature shift scale
  uint64_t seed = 91;
};

Dataset GenerateRankingSynthetic(const RankingSpec& spec,
                                 ThreadPool* pool = nullptr);

// Presets matched to Table III's shapes. `scale` multiplies the row count
// (scale=1 targets seconds-per-experiment on a laptop; the paper's full
// sizes correspond to scale in the hundreds).
SyntheticSpec SynsetSpec(double scale);   // M=128,  S=1.00, CV~0
SyntheticSpec HiggsSpec(double scale);    // M=28,   S=0.92, CV~0.40
SyntheticSpec AirlineSpec(double scale);  // M=8,    S=1.00, CV~0.89
SyntheticSpec CriteoSpec(double scale);   // M=65,   S=0.96, CV~0.58
SyntheticSpec YfccSpec(double scale);     // M=4096, S=0.31, CV~0.06

}  // namespace harp
