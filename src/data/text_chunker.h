// Newline-aligned chunking for the parallel text parsers.
//
// A chunk is a half-open byte range [begin, end) of the input buffer that
// starts at a line start (offset 0 or one past a '\n') and ends one past a
// '\n' (or at end-of-buffer for the final chunk). No line ever spans two
// chunks, so each chunk can be scanned independently and the per-chunk
// results stitched back in chunk order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "parallel/thread_pool.h"

namespace harp {

struct TextChunk {
  size_t begin = 0;
  size_t end = 0;
};

// Splits text[start, text.size()) into at most `max_chunks` newline-aligned
// chunks of roughly equal byte size. Returns fewer chunks when the region
// has fewer lines than requested (possibly just one), and an empty vector
// for an empty region.
inline std::vector<TextChunk> ChunkLines(std::string_view text, size_t start,
                                         int max_chunks) {
  std::vector<TextChunk> chunks;
  const size_t n = text.size();
  if (start >= n) return chunks;
  if (max_chunks < 1) max_chunks = 1;
  const size_t span = n - start;
  size_t pos = start;
  for (int i = 1; i < max_chunks && pos < n; ++i) {
    // Ideal cut for an equal-byte split, advanced to the next line start.
    size_t goal = start + span * static_cast<size_t>(i) /
                              static_cast<size_t>(max_chunks);
    if (goal < pos) goal = pos;
    if (goal >= n) break;
    const char* nl = static_cast<const char*>(
        std::memchr(text.data() + goal, '\n', n - goal));
    if (nl == nullptr) break;
    const size_t cut = static_cast<size_t>(nl - text.data()) + 1;
    if (cut > pos && cut < n) {
      chunks.push_back(TextChunk{pos, cut});
      pos = cut;
    }
  }
  chunks.push_back(TextChunk{pos, n});
  return chunks;
}

// Calls fn(line, line_end_offset) for every '\n'-separated segment of
// text[begin, end), exactly mirroring std::getline: the '\n' is not part
// of the line, a trailing '\n' does not create an extra empty line, and a
// final segment without '\n' is still a line. Returns the number of lines
// visited. `fn` returns false to stop early (the aborted line still
// counts).
template <typename Fn>
inline int64_t ForEachLine(std::string_view text, size_t begin, size_t end,
                           Fn&& fn) {
  int64_t lines = 0;
  size_t pos = begin;
  while (pos < end) {
    const char* nl = static_cast<const char*>(
        std::memchr(text.data() + pos, '\n', end - pos));
    const size_t line_end =
        nl ? static_cast<size_t>(nl - text.data()) : end;
    ++lines;
    if (!fn(text.substr(pos, line_end - pos))) return lines;
    pos = nl ? line_end + 1 : end;
  }
  return lines;
}

// Runs fn(chunk_index) for every chunk, on the pool when one is given
// (each chunk writes only its own result slot, so no synchronization
// beyond the region barrier is needed).
template <typename Fn>
inline void RunChunks(ThreadPool* pool, int num_chunks, const Fn& fn) {
  if (pool != nullptr && num_chunks > 1) {
    pool->ParallelFor(num_chunks, [&](int64_t begin, int64_t end, int) {
      for (int64_t i = begin; i < end; ++i) fn(static_cast<int>(i));
    });
  } else {
    for (int i = 0; i < num_chunks; ++i) fn(i);
  }
}

// Chunk-count heuristic for the file readers: one chunk per 256KB up to
// the thread budget, so small files skip thread fan-out entirely.
inline int PickChunkCount(size_t bytes, int threads) {
  const int64_t by_size = static_cast<int64_t>(bytes >> 18);
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(threads, by_size)));
}

}  // namespace harp
