// Background touch-ahead for an mmap-backed bin matrix.
//
// Training touches every active row once per TopK batch: row order within
// a node is ascending, but the set of nodes interleaves over the whole
// matrix, so a strict "window behind the scan" protocol has no single scan
// to follow. Instead the prefetcher runs one background thread cycling
// over the mapping in fixed windows — advising the window ahead of its
// sweep in (MADV_WILLNEED) while retiring the one behind it
// (MADV_DONTNEED). The invariant that bounds memory is rate-based: as
// long as the sweep retires pages faster than the trainer faults them
// back, resident set stays near a few windows instead of the matrix size.
// Pulse() (called once per boosted tree) feeds an EMA of tree duration,
// from which the sweep derives the trainer's touch rate and paces itself
// to out-evict it. Because condvar waits overshoot their timeout by
// scheduler granularity, the loop does not rely on short sleeps for rate:
// each wakeup retires however many windows the elapsed wall time owes
// (catch-up batching), so oversleeping changes burstiness, not the rate.
//
// Retired pages that training still needs come back as minor faults (the
// data stays in the page cache); the TrainStats fault counters make that
// cost visible. Everything the thread shares with the trainer is either
// the read-only storage or relaxed atomics, so the component is trivially
// race-free; the stop handshake uses a mutex + condvar.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "data/bin_matrix_storage.h"

namespace harp {

class RowBlockPrefetcher {
 public:
  struct Stats {
    int64_t advised_bytes = 0;  // bytes hinted in with WILLNEED
    int64_t retired_bytes = 0;  // bytes dropped with DONTNEED
    int64_t sweeps = 0;         // completed full passes over the matrix
  };

  // `storage` must outlive the prefetcher and be a mapped backend;
  // `window_bytes` is the advise granularity (clamped to >= 64 KiB).
  RowBlockPrefetcher(const BinMatrixStorage& storage, size_t window_bytes);
  ~RowBlockPrefetcher();

  RowBlockPrefetcher(const RowBlockPrefetcher&) = delete;
  RowBlockPrefetcher& operator=(const RowBlockPrefetcher&) = delete;

  // Launches the sweep thread. No-op on heap storage.
  void Start();

  // Per-tree heartbeat: updates the tree-duration EMA the sweep paces by.
  void Pulse();

  // Stops and joins the sweep thread (idempotent).
  void Stop();

  Stats GetStats() const;

 private:
  void SweepLoop();

  const BinMatrixStorage& storage_;
  size_t window_bytes_;
  size_t num_windows_ = 0;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_

  std::atomic<int64_t> ema_tree_ns_{0};
  std::atomic<int64_t> last_pulse_ns_{0};
  std::atomic<int64_t> advised_bytes_{0};
  std::atomic<int64_t> retired_bytes_{0};
  std::atomic<int64_t> sweeps_{0};
};

}  // namespace harp
