// Per-load ingestion instrumentation, the data-pipeline counterpart of
// TrainStats: how many bytes/rows came in and where the wall time went
// (file read, text parse, quantile sketch, binning). Filled by the
// readers and GbdtTrainer::Train, printed by harp_cli and
// examples/dataset_report.
#pragma once

#include <cstdint>
#include <string>

namespace harp {

struct IngestStats {
  uint64_t bytes = 0;  // raw input bytes (file size for the text readers)
  uint64_t rows = 0;   // dataset rows produced

  int threads = 1;  // worker threads used by the parse phase
  int chunks = 1;   // newline-aligned chunks the input was split into

  // Phase wall times; zero means the phase did not run in this load.
  int64_t read_ns = 0;    // file -> memory
  int64_t parse_ns = 0;   // text -> Dataset
  int64_t sketch_ns = 0;  // quantile cut computation
  int64_t bin_ns = 0;     // raw values -> BinnedMatrix

  // mmap-backed loads: bytes left in the file mapping instead of copied to
  // the heap (0 for heap loads — the Summary line then omits the clause).
  uint64_t mmap_bytes = 0;
  // Peak RSS sampled after the load (mmap loads only), so the CLI can show
  // what streaming verification actually cost in resident memory.
  uint64_t peak_rss_bytes = 0;

  int64_t TotalNs() const { return read_ns + parse_ns + sketch_ns + bin_ns; }

  // Parse throughput in MB/s (bytes / parse time); 0 when unmeasured.
  double ParseMBps() const;

  // One-line human-readable summary, e.g.
  //   ingest: 1000000 rows, 47.6MB in 0.31s (182.4MB/s parse; read 12.1ms,
  //   parse 261.0ms, sketch 21.4ms, bin 18.0ms; 4 threads, 4 chunks)
  // Phases that did not run are omitted.
  std::string Summary() const;
};

}  // namespace harp
