#include "data/quantile.h"

#include "data/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

// Cuts for one feature given its sorted present values.
void CutsForFeature(std::vector<float>& values, int max_cuts,
                    std::vector<float>* out) {
  out->clear();
  if (values.empty()) return;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  const size_t distinct = values.size();

  if (distinct <= static_cast<size_t>(max_cuts)) {
    // One bin per distinct value; cut between adjacent values so binning is
    // exact. The last cut sits above the maximum so every value maps.
    out->reserve(distinct);
    for (size_t i = 0; i + 1 < distinct; ++i) {
      const float mid =
          values[i] + (values[i + 1] - values[i]) * 0.5f;
      // Guard degenerate midpoints from float rounding on close values.
      out->push_back(mid > values[i] ? mid : values[i]);
    }
    out->push_back(values.back());
    return;
  }

  // More distinct values than cuts: evenly spaced quantiles of the
  // distinct-value sequence. Using distinct values (not raw multiplicity)
  // matches the reuse of XGBoost's sketch at our data scale and keeps the
  // result deterministic.
  out->reserve(static_cast<size_t>(max_cuts));
  for (int c = 1; c < max_cuts; ++c) {
    const size_t idx = static_cast<size_t>(
        static_cast<double>(c) * static_cast<double>(distinct) / max_cuts);
    out->push_back(values[std::min(idx, distinct - 1)]);
  }
  // The final cut is always the maximum so every value maps; dedupe keeps
  // the cut count at most max_cuts.
  out->push_back(values.back());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace

QuantileCuts QuantileCuts::Compute(const Dataset& dataset, int max_bins,
                                   ThreadPool* pool) {
  HARP_CHECK_GE(max_bins, 2);
  HARP_CHECK_LE(max_bins, 256);
  const uint32_t num_features = dataset.num_features();
  const int max_cuts = max_bins - 1;

  // Gather per-feature value lists (one pass over the data).
  std::vector<std::vector<float>> feature_values(num_features);
  for (uint32_t r = 0; r < dataset.num_rows(); ++r) {
    dataset.ForEachInRow(r, [&](uint32_t f, float v) {
      feature_values[f].push_back(v);
    });
  }

  std::vector<std::vector<float>> feature_cuts(num_features);
  auto compute_range = [&](int64_t begin, int64_t end, int) {
    for (int64_t f = begin; f < end; ++f) {
      CutsForFeature(feature_values[static_cast<size_t>(f)], max_cuts,
                     &feature_cuts[static_cast<size_t>(f)]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForDynamic(num_features, 8, compute_range);
  } else {
    compute_range(0, num_features, 0);
  }

  QuantileCuts cuts;
  cuts.max_bins_ = max_bins;
  cuts.cut_ptr_.resize(num_features + 1, 0);
  for (uint32_t f = 0; f < num_features; ++f) {
    cuts.cut_ptr_[f + 1] =
        cuts.cut_ptr_[f] + static_cast<uint32_t>(feature_cuts[f].size());
  }
  cuts.cuts_.reserve(cuts.cut_ptr_.back());
  for (uint32_t f = 0; f < num_features; ++f) {
    cuts.cuts_.insert(cuts.cuts_.end(), feature_cuts[f].begin(),
                      feature_cuts[f].end());
  }
  return cuts;
}

QuantileCuts QuantileCuts::ComputeSketch(const Dataset& dataset,
                                         int max_bins, double eps,
                                         ThreadPool* pool) {
  HARP_CHECK_GE(max_bins, 2);
  HARP_CHECK_LE(max_bins, 256);
  const uint32_t num_features = dataset.num_features();
  const uint32_t num_rows = dataset.num_rows();
  const int max_cuts = max_bins - 1;
  if (eps <= 0.0) eps = 1.0 / (8.0 * max_bins);

  const int threads = pool != nullptr ? pool->num_threads() : 1;
  // per_thread[t][f]: sketch of feature f over thread t's row chunk.
  std::vector<std::vector<GkSketch>> per_thread(
      static_cast<size_t>(threads),
      std::vector<GkSketch>(num_features, GkSketch(eps)));

  auto feed = [&](int64_t begin, int64_t end, int thread_id) {
    auto& sketches = per_thread[static_cast<size_t>(thread_id)];
    for (int64_t r = begin; r < end; ++r) {
      dataset.ForEachInRow(static_cast<uint32_t>(r),
                           [&](uint32_t f, float v) { sketches[f].Add(v); });
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_rows, feed);
  } else {
    feed(0, num_rows, 0);
  }

  // One-level merge per feature, then even-quantile cuts.
  std::vector<std::vector<float>> feature_cuts(num_features);
  auto finalize = [&](int64_t begin, int64_t end, int) {
    for (int64_t f = begin; f < end; ++f) {
      GkSketch& merged = per_thread[0][static_cast<size_t>(f)];
      for (int t = 1; t < threads; ++t) {
        merged.Merge(per_thread[static_cast<size_t>(t)][static_cast<size_t>(f)]);
      }
      if (merged.count() > 0) {
        feature_cuts[static_cast<size_t>(f)] =
            merged.EvenQuantiles(max_cuts);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForDynamic(num_features, 8, finalize);
  } else {
    finalize(0, num_features, 0);
  }

  QuantileCuts cuts;
  cuts.max_bins_ = max_bins;
  cuts.cut_ptr_.resize(num_features + 1, 0);
  for (uint32_t f = 0; f < num_features; ++f) {
    cuts.cut_ptr_[f + 1] =
        cuts.cut_ptr_[f] + static_cast<uint32_t>(feature_cuts[f].size());
  }
  cuts.cuts_.reserve(cuts.cut_ptr_.back());
  for (uint32_t f = 0; f < num_features; ++f) {
    cuts.cuts_.insert(cuts.cuts_.end(), feature_cuts[f].begin(),
                      feature_cuts[f].end());
  }
  return cuts;
}

uint32_t QuantileCuts::BinFor(uint32_t feature, float value) const {
  if (IsMissing(value)) return 0;
  const float* begin = cuts_.data() + cut_ptr_[feature];
  const float* end = cuts_.data() + cut_ptr_[feature + 1];
  if (begin == end) return 0;  // feature never present at training time
  const float* it = std::lower_bound(begin, end, value);
  if (it == end) --it;  // clamp values above the last cut
  return static_cast<uint32_t>(it - begin) + 1;
}

float QuantileCuts::CutFor(uint32_t feature, uint32_t bin) const {
  HARP_CHECK_GE(bin, 1u);
  HARP_CHECK_LE(bin, NumCuts(feature));
  return cuts_[cut_ptr_[feature] + bin - 1];
}

QuantileCuts QuantileCuts::FromRaw(std::vector<float> cuts,
                                   std::vector<uint32_t> cut_ptr,
                                   int max_bins) {
  HARP_CHECK(!cut_ptr.empty());
  HARP_CHECK_EQ(cut_ptr.back(), cuts.size());
  QuantileCuts result;
  result.cuts_ = std::move(cuts);
  result.cut_ptr_ = std::move(cut_ptr);
  result.max_bins_ = max_bins;
  return result;
}

}  // namespace harp
