// Backing storage for the bin matrix: heap vector or mmap'd cache region.
//
// The tree builders only ever read the bin matrix through raw const
// pointers (BinData / RowBins), so the storage layer is a thin value type:
// it either owns a std::vector<uint8_t> or shares an mmap'd MappedFile and
// points into it. Bins are immutable once built, which is what makes heap
// and mmap training bit-identical by construction — the kernels cannot
// tell the difference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mmap_util.h"

namespace harp {

class BinMatrixStorage {
 public:
  BinMatrixStorage() = default;

  // Owning heap storage (the default, and the only writable kind).
  static BinMatrixStorage Heap(std::vector<uint8_t> bytes);

  // Read-only view of [offset, offset + length) inside `file`. The mapping
  // is kept alive by shared ownership; copies of the storage share it.
  static BinMatrixStorage Mapped(std::shared_ptr<MappedFile> file,
                                 size_t offset, size_t length);

  // Pointers are computed per call (never cached) so copies of heap
  // storage stay valid; the mapped pointer is stable for the mapping's
  // lifetime.
  const uint8_t* data() const {
    return file_ != nullptr ? file_->data() + file_offset_ : heap_.data();
  }
  size_t size() const { return file_ != nullptr ? size_ : heap_.size(); }
  bool empty() const { return size() == 0; }
  bool mapped() const { return file_ != nullptr; }

  // Resident heap bytes vs bytes backed by the file mapping — summed
  // separately so memory reports don't count the mapped image as RSS.
  size_t HeapBytes() const { return mapped() ? 0 : heap_.size(); }
  size_t MappedBytes() const { return mapped() ? size_ : 0; }

  // Mutable access to heap storage; CHECK-fails on a mapped backend (the
  // mapping is PROT_READ — writing through it would fault anyway).
  uint8_t* MutableHeap();

  // Forwards a paging hint for [offset, offset + length) of this storage
  // to the underlying mapping. No-op (returns false) on heap storage.
  bool Advise(size_t offset, size_t length, MemAdvice advice) const;

 private:
  std::vector<uint8_t> heap_;
  std::shared_ptr<MappedFile> file_;
  size_t file_offset_ = 0;  // of the view within *file_ (mapped only)
  size_t size_ = 0;         // view length (mapped only)
};

}  // namespace harp
