// Dataset shape statistics (the columns of the paper's Table III).
#pragma once

#include <string>

#include "data/binned_matrix.h"
#include "data/dataset.h"

namespace harp {

struct DatasetShape {
  std::string name;
  uint32_t rows = 0;
  uint32_t features = 0;
  double sparseness = 0.0;   // S = #present / (N x M)
  double bin_cv = 0.0;       // CV of per-feature bin counts
  double mean_bins = 0.0;
  uint32_t total_bins = 0;
  size_t binned_bytes = 0;
};

// Computes Table III statistics for a dataset and its binned form.
DatasetShape ComputeShape(const std::string& name, const Dataset& dataset,
                          const BinnedMatrix& matrix);

// One formatted row: "name  N  M  S  CV  bins  size".
std::string FormatShapeRow(const DatasetShape& shape);
std::string ShapeHeader();

}  // namespace harp
