#include "data/dataset.h"

#include <algorithm>

#include "common/logging.h"
#include "common/mmap_util.h"

namespace harp {

Dataset Dataset::FromDense(uint32_t num_rows, uint32_t num_features,
                           std::vector<float> values,
                           std::vector<float> labels) {
  HARP_CHECK_EQ(values.size(),
                static_cast<size_t>(num_rows) * num_features);
  HARP_CHECK_EQ(labels.size(), static_cast<size_t>(num_rows));
  Dataset ds;
  ds.num_rows_ = num_rows;
  ds.num_features_ = num_features;
  ds.layout_ = Layout::kDense;
  ds.dense_ = std::move(values);
  ds.labels_ = std::move(labels);
  return ds;
}

Dataset Dataset::FromCsr(uint32_t num_rows, uint32_t num_features,
                         std::vector<uint32_t> row_ptr,
                         std::vector<Entry> entries,
                         std::vector<float> labels) {
  HARP_CHECK_EQ(row_ptr.size(), static_cast<size_t>(num_rows) + 1);
  HARP_CHECK_EQ(row_ptr.back(), entries.size());
  HARP_CHECK_EQ(labels.size(), static_cast<size_t>(num_rows));
  for (uint32_t r = 0; r < num_rows; ++r) {
    for (uint32_t i = row_ptr[r]; i + 1 < row_ptr[r + 1]; ++i) {
      HARP_CHECK_LT(entries[i].feature, entries[i + 1].feature);
    }
    if (row_ptr[r] < row_ptr[r + 1]) {
      HARP_CHECK_LT(entries[row_ptr[r + 1] - 1].feature, num_features);
    }
  }
  Dataset ds;
  ds.num_rows_ = num_rows;
  ds.num_features_ = num_features;
  ds.layout_ = Layout::kSparse;
  ds.row_ptr_ = std::move(row_ptr);
  ds.entries_ = std::move(entries);
  ds.labels_ = std::move(labels);
  return ds;
}

Dataset Dataset::FromDenseMapped(uint32_t num_rows, uint32_t num_features,
                                 std::shared_ptr<MappedFile> mapping,
                                 const float* values,
                                 std::vector<float> labels) {
  HARP_CHECK(mapping != nullptr);
  HARP_CHECK(values != nullptr);
  const uint8_t* begin = reinterpret_cast<const uint8_t*>(values);
  const size_t bytes =
      static_cast<size_t>(num_rows) * num_features * sizeof(float);
  HARP_CHECK(begin >= mapping->data() &&
             begin + bytes <= mapping->data() + mapping->size())
      << "mapped values outside the file image";
  HARP_CHECK_EQ(labels.size(), static_cast<size_t>(num_rows));
  Dataset ds;
  ds.num_rows_ = num_rows;
  ds.num_features_ = num_features;
  ds.layout_ = Layout::kDense;
  ds.mapped_dense_ = values;
  ds.mapping_ = std::move(mapping);
  ds.labels_ = std::move(labels);
  return ds;
}

void Dataset::SetGroupPtr(std::vector<uint32_t> group_ptr) {
  if (group_ptr.empty()) {
    group_ptr_.clear();
    return;
  }
  HARP_CHECK_GE(group_ptr.size(), 2u);
  HARP_CHECK_EQ(group_ptr.front(), 0u);
  HARP_CHECK_EQ(group_ptr.back(), num_rows_);
  for (size_t g = 0; g + 1 < group_ptr.size(); ++g) {
    HARP_CHECK_LT(group_ptr[g], group_ptr[g + 1])
        << "empty query group at index " << g;
  }
  group_ptr_ = std::move(group_ptr);
}

float Dataset::At(uint32_t row, uint32_t feature) const {
  HARP_CHECK_LT(row, num_rows_);
  HARP_CHECK_LT(feature, num_features_);
  if (layout_ == Layout::kDense) {
    return dense_data()[static_cast<size_t>(row) * num_features_ + feature];
  }
  const Entry* begin = entries_.data() + row_ptr_[row];
  const Entry* end = entries_.data() + row_ptr_[row + 1];
  const Entry* it = std::lower_bound(
      begin, end, feature,
      [](const Entry& e, uint32_t f) { return e.feature < f; });
  if (it != end && it->feature == feature) return it->value;
  return kMissingValue;
}

uint64_t Dataset::NumPresent() const {
  if (layout_ == Layout::kSparse) return entries_.size();
  uint64_t present = 0;
  const float* values = dense_data();
  const size_t total = static_cast<size_t>(num_rows_) * num_features_;
  for (size_t i = 0; i < total; ++i) {
    if (!IsMissing(values[i])) ++present;
  }
  return present;
}

double Dataset::Sparseness() const {
  const double total =
      static_cast<double>(num_rows_) * static_cast<double>(num_features_);
  if (total == 0.0) return 0.0;
  return static_cast<double>(NumPresent()) / total;
}

Dataset Dataset::Slice(uint32_t begin_row, uint32_t end_row) const {
  HARP_CHECK_LE(begin_row, end_row);
  HARP_CHECK_LE(end_row, num_rows_);
  const uint32_t n = end_row - begin_row;
  std::vector<float> labels(labels_.begin() + begin_row,
                            labels_.begin() + end_row);
  Dataset out;
  if (layout_ == Layout::kDense) {
    // Always materializes a heap copy, even when this dataset is mapped —
    // slices are small bench fixtures, not streaming inputs.
    const float* base = dense_data();
    std::vector<float> values(
        base + static_cast<size_t>(begin_row) * num_features_,
        base + static_cast<size_t>(end_row) * num_features_);
    out = FromDense(n, num_features_, std::move(values), std::move(labels));
  } else {
    std::vector<uint32_t> row_ptr(n + 1);
    const uint32_t base = row_ptr_[begin_row];
    for (uint32_t r = 0; r <= n; ++r) {
      row_ptr[r] = row_ptr_[begin_row + r] - base;
    }
    std::vector<Entry> entries(entries_.begin() + base,
                               entries_.begin() + row_ptr_[end_row]);
    out = FromCsr(n, num_features_, std::move(row_ptr), std::move(entries),
                  std::move(labels));
  }
  if (has_groups() && n > 0) {
    // Clamp boundaries into the slice and drop duplicates (queries wholly
    // outside collapse onto the edge).
    std::vector<uint32_t> groups;
    groups.push_back(0);
    for (uint32_t b : group_ptr_) {
      const uint32_t clamped =
          std::min(std::max(b, begin_row), end_row) - begin_row;
      if (clamped > groups.back()) groups.push_back(clamped);
    }
    out.SetGroupPtr(std::move(groups));
  }
  return out;
}

Dataset Dataset::ConcatRows(const Dataset& other) const {
  HARP_CHECK_EQ(num_features_, other.num_features_);
  HARP_CHECK(layout_ == other.layout_);
  HARP_CHECK_EQ(has_groups(), other.has_groups())
      << "cannot concatenate grouped and ungrouped datasets";
  Dataset ds = *this;
  ds.num_rows_ = num_rows_ + other.num_rows_;
  ds.labels_.insert(ds.labels_.end(), other.labels_.begin(),
                    other.labels_.end());
  if (layout_ == Layout::kDense) {
    // The concatenation owns its values: if either side is mapped, its
    // rows are copied out and the result drops the mapping reference.
    const size_t this_n = static_cast<size_t>(num_rows_) * num_features_;
    const size_t other_n =
        static_cast<size_t>(other.num_rows_) * other.num_features_;
    std::vector<float> values;
    values.reserve(this_n + other_n);
    values.insert(values.end(), dense_data(), dense_data() + this_n);
    values.insert(values.end(), other.dense_data(),
                  other.dense_data() + other_n);
    ds.dense_ = std::move(values);
    ds.mapped_dense_ = nullptr;
    ds.mapping_.reset();
  } else {
    const uint32_t base = ds.row_ptr_.back();
    ds.row_ptr_.pop_back();
    for (uint32_t v : other.row_ptr_) ds.row_ptr_.push_back(base + v);
    ds.entries_.insert(ds.entries_.end(), other.entries_.begin(),
                       other.entries_.end());
  }
  if (has_groups()) {
    // Skip other's leading 0; shift its boundaries past this dataset.
    for (size_t g = 1; g < other.group_ptr_.size(); ++g) {
      ds.group_ptr_.push_back(num_rows_ + other.group_ptr_[g]);
    }
  }
  return ds;
}

}  // namespace harp
