// CSV loader: one row per line, label in a configurable column, empty
// fields = missing. Used by the examples so real downloaded datasets
// (e.g. the actual HIGGS csv) can be trained on directly.
#pragma once

#include <string>

#include "data/dataset.h"

namespace harp {

struct CsvOptions {
  char delimiter = ',';
  int label_column = 0;   // column index holding the label
  bool has_header = false;
};

// Loads `path`; CHECK-fails on unreadable files, returns false only for
// structurally malformed content (inconsistent column counts, bad floats).
bool ReadCsv(const std::string& path, const CsvOptions& options,
             Dataset* out, std::string* error);

// Parses CSV content from a string (testing / in-memory data).
bool ParseCsv(const std::string& content, const CsvOptions& options,
              Dataset* out, std::string* error);

}  // namespace harp
