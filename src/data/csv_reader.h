// CSV loader: one row per line, label in a configurable column, empty
// fields = missing. Used by the examples so real downloaded datasets
// (e.g. the actual HIGGS csv) can be trained on directly.
//
// Two parsers produce bit-identical Datasets:
//   ParseCsv        — the original serial getline parser, kept as the
//                     correctness oracle for tests and bench_ingest;
//   ParseCsvChunked — splits the buffer at newline boundaries into
//                     chunks, scans fields in place (no per-line Split
//                     vectors, no field copies) on a ThreadPool, and
//                     stitches per-chunk fragments in chunk order.
// ReadCsv loads the file with one read() and runs the chunked parser.
#pragma once

#include <string>
#include <string_view>

#include "data/dataset.h"
#include "data/ingest_stats.h"

namespace harp {

class ThreadPool;

struct CsvOptions {
  char delimiter = ',';
  int label_column = 0;   // column index holding the label
  bool has_header = false;
};

// Loads `path` with a single pre-sized read and parses it with the chunked
// parser (chunk count scales with file size up to the pool width; `pool`
// may be null — a transient pool is created for inputs big enough to
// matter). Returns false for unreadable files or structurally malformed
// content (inconsistent column counts, bad floats). Fills *stats when
// non-null.
bool ReadCsv(const std::string& path, const CsvOptions& options,
             Dataset* out, std::string* error,
             IngestStats* stats = nullptr, ThreadPool* pool = nullptr);

// Serial oracle parser (testing / in-memory data). Error messages carry
// exact 1-based line numbers.
bool ParseCsv(const std::string& content, const CsvOptions& options,
              Dataset* out, std::string* error);

// Chunked parallel parser: output (including error messages and their
// line numbers) is identical to ParseCsv for every input. `num_chunks` is
// an upper bound — short inputs produce fewer chunks. `pool` may be null,
// in which case chunks are scanned sequentially (still through the
// chunked stitching path).
bool ParseCsvChunked(std::string_view content, const CsvOptions& options,
                     int num_chunks, ThreadPool* pool, Dataset* out,
                     std::string* error, IngestStats* stats = nullptr);

}  // namespace harp
