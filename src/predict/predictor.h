// Block-wise batched traversal over a FlatForest.
//
// The same memory-boundedness argument the paper makes for BuildHist
// (Table I) applies to ensemble traversal: a naive row × tree walk is a
// chain of dependent loads with no reuse. The Predictor restructures the
// work along both axes:
//
//   * Trees are walked in groups whose node arrays fit in L2
//     (kGroupNodeBudget); a group's nodes are loaded once and reused for
//     every row before the next group starts, so the forest streams
//     through cache once per thread instead of once per row.
//   * Rows are processed in kRowBlock-sized blocks, and within a block
//     kInterleave rows step through the same tree in lockstep. The 8
//     independent walks hide the dependent-load latency a single walk
//     serializes on (the leaf self-loop in FlatForest makes every walk
//     take exactly tree_depth branch-free steps, so lanes never diverge
//     in trip count).
//
// Margins accumulate in tree order per row — group g's trees are added to
// every row before group g+1's — so results are bit-identical to the
// naive base + t0 + t1 + ... chain of RegTree::PredictBinned/PredictRaw,
// which tests keep as the reference oracle.
//
// Raw-Dataset and BinnedMatrix inputs share the same flat layout: the
// binned kernel compares 1-byte bin ids against split_bin, the raw kernel
// compares float values against split_value (missing routes to the
// default side in both).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harp {

class BinnedMatrix;
class Dataset;
class FlatForest;
class ThreadPool;

class Predictor {
 public:
  // Keeps a pointer to `forest`; the forest must outlive the Predictor.
  // The full-ensemble tree-group plan is computed once here, so per-call
  // setup on the serving paths is allocation-free.
  explicit Predictor(const FlatForest& forest);

  // Margins (base margin + tree sum) for every row of a matrix binned
  // with the model's own cuts, using the first `num_trees` trees (0 =
  // all). Row blocks fan out over `pool` when given.
  std::vector<double> PredictMargins(const BinnedMatrix& matrix,
                                     ThreadPool* pool = nullptr,
                                     size_t num_trees = 0) const;

  // Same on raw feature values (missing = NaN follows default sides).
  std::vector<double> PredictMargins(const Dataset& dataset,
                                     ThreadPool* pool = nullptr,
                                     size_t num_trees = 0) const;

  // margins[r] += sum of trees [tree_begin, tree_end) for every row; no
  // base margin is added. This is the incremental form the boosting
  // driver uses to fold each new tree into held-out eval margins.
  void AccumulateMargins(const BinnedMatrix& matrix, double* margins,
                         size_t tree_begin, size_t tree_end,
                         ThreadPool* pool = nullptr) const;
  void AccumulateMargins(const Dataset& dataset, double* margins,
                         size_t tree_begin, size_t tree_end,
                         ThreadPool* pool = nullptr) const;

  // Leaf reached in tree `tree_index` for every row, reported as RegTree
  // node ids (FlatForest keeps the original numbering per slot).
  std::vector<int> PredictLeafIndices(const BinnedMatrix& matrix,
                                      size_t tree_index,
                                      ThreadPool* pool = nullptr) const;

  // Sub-block entry point for the serving layer: margins[i] += trees
  // [tree_begin, tree_end) for `num_rows` dense float rows starting at
  // `values` with row stride `stride` floats (NaN = missing). Serial —
  // batch-level parallelism comes from the caller running many batches
  // concurrently. Bit-identical to the Dataset overloads on the same rows
  // (same kernel, same per-row tree order).
  void AccumulateMarginsDense(const float* values, uint32_t num_rows,
                              uint32_t stride, double* margins,
                              size_t tree_begin, size_t tree_end) const;

  // Single-row fast path: full-ensemble margin (base margin included) for
  // one dense float row of at least min_features() values. No block
  // scratch, no group plan allocation — the shape a one-request-at-a-time
  // caller wants. Bit-identical to PredictMargins on a one-row dataset.
  double PredictRow(const float* row, uint32_t num_features) const;

  const FlatForest& forest() const { return *forest_; }

  static constexpr uint32_t kRowBlock = 256;  // rows per cache block
  static constexpr int kInterleave = 8;       // rows in flight per tree
  static constexpr int32_t kGroupNodeBudget = 2048;  // nodes per tree group

 private:
  // Adds trees [t0, t1) of one group to rows [r0, r1); `margins` is the
  // full output array indexed by absolute row id.
  void AccumulateBlockBinned(const BinnedMatrix& matrix, uint32_t r0,
                             uint32_t r1, size_t t0, size_t t1,
                             double* margins) const;
  void AccumulateBlockRaw(const Dataset& dataset, uint32_t r0, uint32_t r1,
                          size_t t0, size_t t1, double* margins) const;

  // Interleaved traversal of trees [t0, t1) over `rows` dense float rows
  // at `base` (row stride `stride`); margins indexed 0..rows-1. The one
  // raw-input kernel every raw path funnels into.
  void TraverseDense(const float* base, size_t stride, uint32_t rows,
                     size_t t0, size_t t1, double* margins) const;

  // Short-batch path (rows < kRowBlock): no pool fan-out, no clamped
  // block scratch — sparse rows densify into one rows x features buffer.
  void AccumulateShortRaw(const Dataset& dataset, double* margins,
                          size_t tree_begin, size_t tree_end) const;

  // Group boundaries covering [tree_begin, tree_end): consecutive trees
  // packed until a group exceeds kGroupNodeBudget nodes.
  std::vector<size_t> TreeGroups(size_t tree_begin, size_t tree_end) const;

  size_t ClampTreeCount(size_t num_trees) const;

  const FlatForest* forest_;
  std::vector<size_t> full_groups_;  // TreeGroups(0, num_trees())
};

}  // namespace harp
