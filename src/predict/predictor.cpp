#include "predict/predictor.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "data/binned_matrix.h"
#include "data/dataset.h"
#include "parallel/thread_pool.h"
#include "predict/flat_forest.h"

namespace harp {
namespace {

// Largest sparse-row scratch (bytes) a thread materializes at once; the
// per-block row count shrinks when num_features is large.
constexpr size_t kMaxScratchBytes = size_t{4} << 20;

}  // namespace

Predictor::Predictor(const FlatForest& forest)
    : forest_(&forest), full_groups_(TreeGroups(0, forest.num_trees())) {}

size_t Predictor::ClampTreeCount(size_t num_trees) const {
  return num_trees == 0 ? forest_->num_trees()
                        : std::min(num_trees, forest_->num_trees());
}

std::vector<size_t> Predictor::TreeGroups(size_t tree_begin,
                                          size_t tree_end) const {
  std::vector<size_t> bounds;
  bounds.push_back(tree_begin);
  int32_t nodes_in_group = 0;
  for (size_t t = tree_begin; t < tree_end; ++t) {
    const int32_t nodes = forest_->NodesInTree(t);
    if (nodes_in_group > 0 && nodes_in_group + nodes > kGroupNodeBudget) {
      bounds.push_back(t);
      nodes_in_group = 0;
    }
    nodes_in_group += nodes;
  }
  bounds.push_back(tree_end);
  return bounds;
}

void Predictor::AccumulateBlockBinned(const BinnedMatrix& matrix, uint32_t r0,
                                      uint32_t r1, size_t t0, size_t t1,
                                      double* margins) const {
  const uint32_t* feat = forest_->split_feature();
  const uint8_t* sbin = forest_->split_bin();
  const uint8_t* dleft = forest_->default_left();
  const int32_t* left = forest_->left_child();
  const double* leaf = forest_->leaf_value();

  for (size_t t = t0; t < t1; ++t) {
    const int32_t root = forest_->tree_offset(t);
    const int32_t steps = forest_->tree_depth(t);
    for (uint32_t r = r0; r < r1; r += kInterleave) {
      const int lanes = static_cast<int>(
          std::min<uint32_t>(kInterleave, r1 - r));
      const uint8_t* rb[kInterleave];
      int32_t idx[kInterleave];
      for (int j = 0; j < lanes; ++j) {
        rb[j] = matrix.RowBins(r + static_cast<uint32_t>(j));
        idx[j] = root;
      }
      // kInterleave independent walks per step: the loads of step s + 1
      // depend only on the same lane's idx from step s, so the lanes keep
      // the load pipeline full while each walk waits on its node fetch.
      // Leaves self-loop (see FlatForest), so all lanes take exactly
      // `steps` iterations with no leaf branch.
      for (int32_t s = 0; s < steps; ++s) {
        for (int j = 0; j < lanes; ++j) {
          const int32_t i = idx[j];
          const uint8_t bin = rb[j][feat[i]];
          const bool go_left =
              (bin == 0) ? (dleft[i] != 0) : (bin <= sbin[i]);
          idx[j] = left[i] + static_cast<int32_t>(!go_left);
        }
      }
      for (int j = 0; j < lanes; ++j) {
        margins[r + static_cast<uint32_t>(j)] += leaf[idx[j]];
      }
    }
  }
}

void Predictor::TraverseDense(const float* base, size_t stride, uint32_t rows,
                              size_t t0, size_t t1, double* margins) const {
  const uint32_t* feat = forest_->split_feature();
  const float* sval = forest_->split_value();
  const uint8_t* dleft = forest_->default_left();
  const int32_t* left = forest_->left_child();
  const double* leaf = forest_->leaf_value();

  for (size_t t = t0; t < t1; ++t) {
    const int32_t root = forest_->tree_offset(t);
    const int32_t steps = forest_->tree_depth(t);
    for (uint32_t r = 0; r < rows; r += kInterleave) {
      const int lanes =
          static_cast<int>(std::min<uint32_t>(kInterleave, rows - r));
      const float* rv[kInterleave];
      int32_t idx[kInterleave];
      for (int j = 0; j < lanes; ++j) {
        rv[j] = base + static_cast<size_t>(r + j) * stride;
        idx[j] = root;
      }
      for (int32_t s = 0; s < steps; ++s) {
        for (int j = 0; j < lanes; ++j) {
          const int32_t i = idx[j];
          const float value = rv[j][feat[i]];
          // Leaf slots carry split_value = +inf, so any present value
          // "goes left" back into the leaf; NaN routes to the default
          // side, which leaves also point at themselves.
          const bool go_left =
              IsMissing(value) ? (dleft[i] != 0) : (value <= sval[i]);
          idx[j] = left[i] + static_cast<int32_t>(!go_left);
        }
      }
      for (int j = 0; j < lanes; ++j) {
        margins[r + static_cast<uint32_t>(j)] += leaf[idx[j]];
      }
    }
  }
}

void Predictor::AccumulateBlockRaw(const Dataset& dataset, uint32_t r0,
                                   uint32_t r1, size_t t0, size_t t1,
                                   double* margins) const {
  const uint32_t num_features = dataset.num_features();

  // Both layouts traverse from per-row dense float pointers. Sparse rows
  // are expanded once per block into a NaN-initialized scratch — O(M +
  // nnz) per row, repaid over every tree of the group, versus a binary
  // search per traversal step through Dataset::At.
  const bool dense = dataset.layout() == Dataset::Layout::kDense;
  std::vector<float> scratch;
  uint32_t block_rows = r1 - r0;
  if (!dense) {
    const size_t row_bytes = size_t{num_features} * sizeof(float);
    block_rows = static_cast<uint32_t>(std::clamp<size_t>(
        kMaxScratchBytes / std::max<size_t>(row_bytes, 1), 1, r1 - r0));
    scratch.resize(static_cast<size_t>(block_rows) * num_features);
  }

  for (uint32_t c0 = r0; c0 < r1; c0 += block_rows) {
    const uint32_t c1 = std::min(r1, c0 + block_rows);
    const float* base;
    size_t stride;
    if (dense) {
      base = dataset.dense_data() +
             static_cast<size_t>(c0) * num_features;
      stride = num_features;
    } else {
      std::fill(scratch.begin(),
                scratch.begin() +
                    static_cast<size_t>(c1 - c0) * num_features,
                kMissingValue);
      for (uint32_t r = c0; r < c1; ++r) {
        float* out = scratch.data() +
                     static_cast<size_t>(r - c0) * num_features;
        dataset.ForEachInRow(
            r, [&](uint32_t f, float value) { out[f] = value; });
      }
      base = scratch.data();
      stride = num_features;
    }

    TraverseDense(base, stride, c1 - c0, t0, t1, margins + c0);
  }
}

void Predictor::AccumulateMarginsDense(const float* values, uint32_t num_rows,
                                       uint32_t stride, double* margins,
                                       size_t tree_begin,
                                       size_t tree_end) const {
  HARP_CHECK_LE(tree_end, forest_->num_trees());
  HARP_CHECK_GE(stride, forest_->min_features());
  if (tree_begin >= tree_end || num_rows == 0) return;
  const bool full =
      tree_begin == 0 && tree_end == forest_->num_trees();
  std::vector<size_t> local;
  if (!full) local = TreeGroups(tree_begin, tree_end);
  const std::vector<size_t>& groups = full ? full_groups_ : local;
  // Blocks outer, groups inner: per row the groups still land in tree
  // order, so margins stay bit-identical to the Dataset paths.
  for (uint32_t r0 = 0; r0 < num_rows; r0 += kRowBlock) {
    const uint32_t r1 = std::min(num_rows, r0 + kRowBlock);
    for (size_t g = 0; g + 1 < groups.size(); ++g) {
      TraverseDense(values + static_cast<size_t>(r0) * stride, stride,
                    r1 - r0, groups[g], groups[g + 1], margins + r0);
    }
  }
}

double Predictor::PredictRow(const float* row, uint32_t num_features) const {
  HARP_CHECK_GE(num_features, forest_->min_features());
  const uint32_t* feat = forest_->split_feature();
  const float* sval = forest_->split_value();
  const uint8_t* dleft = forest_->default_left();
  const int32_t* left = forest_->left_child();
  const double* leaf = forest_->leaf_value();

  double margin = forest_->base_margin();
  const size_t num_trees = forest_->num_trees();
  for (size_t t = 0; t < num_trees; ++t) {
    int32_t idx = forest_->tree_offset(t);
    const int32_t steps = forest_->tree_depth(t);
    for (int32_t s = 0; s < steps; ++s) {
      const float value = row[feat[idx]];
      const bool go_left =
          IsMissing(value) ? (dleft[idx] != 0) : (value <= sval[idx]);
      idx = left[idx] + static_cast<int32_t>(!go_left);
    }
    margin += leaf[idx];
  }
  return margin;
}

void Predictor::AccumulateShortRaw(const Dataset& dataset, double* margins,
                                   size_t tree_begin, size_t tree_end) const {
  const uint32_t rows = dataset.num_rows();
  const uint32_t num_features = dataset.num_features();
  const bool full =
      tree_begin == 0 && tree_end == forest_->num_trees();
  std::vector<size_t> local;
  if (!full) local = TreeGroups(tree_begin, tree_end);
  const std::vector<size_t>& groups = full ? full_groups_ : local;

  const float* base;
  std::vector<float> scratch;
  if (dataset.layout() == Dataset::Layout::kDense) {
    base = dataset.dense_data();
  } else {
    scratch.assign(static_cast<size_t>(rows) * num_features, kMissingValue);
    for (uint32_t r = 0; r < rows; ++r) {
      float* out = scratch.data() + static_cast<size_t>(r) * num_features;
      dataset.ForEachInRow(r,
                           [&](uint32_t f, float value) { out[f] = value; });
    }
    base = scratch.data();
  }
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    TraverseDense(base, num_features, rows, groups[g], groups[g + 1],
                  margins);
  }
}

namespace {

// Shared driver: fans kRowBlock-sized row blocks out over the pool; each
// thread sweeps its rows once per tree group so a group's nodes are
// loaded into cache once and reused across every row the thread owns.
template <typename BlockFn>
void ForEachBlock(uint32_t num_rows, ThreadPool* pool,
                  const std::vector<size_t>& groups, const BlockFn& fn) {
  const int64_t num_blocks =
      (static_cast<int64_t>(num_rows) + Predictor::kRowBlock - 1) /
      Predictor::kRowBlock;
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (size_t g = 0; g + 1 < groups.size(); ++g) {
      for (int64_t b = begin; b < end; ++b) {
        const uint32_t r0 =
            static_cast<uint32_t>(b) * Predictor::kRowBlock;
        const uint32_t r1 =
            std::min(num_rows, r0 + Predictor::kRowBlock);
        fn(r0, r1, groups[g], groups[g + 1]);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_blocks, kernel);
  } else {
    kernel(0, num_blocks, 0);
  }
}

}  // namespace

void Predictor::AccumulateMargins(const BinnedMatrix& matrix, double* margins,
                                  size_t tree_begin, size_t tree_end,
                                  ThreadPool* pool) const {
  HARP_CHECK_LE(tree_end, forest_->num_trees());
  HARP_CHECK_GE(matrix.num_features(), forest_->min_features());
  if (tree_begin >= tree_end || matrix.num_rows() == 0) return;
  ForEachBlock(matrix.num_rows(), pool, TreeGroups(tree_begin, tree_end),
               [&](uint32_t r0, uint32_t r1, size_t t0, size_t t1) {
                 AccumulateBlockBinned(matrix, r0, r1, t0, t1, margins);
               });
}

void Predictor::AccumulateMargins(const Dataset& dataset, double* margins,
                                  size_t tree_begin, size_t tree_end,
                                  ThreadPool* pool) const {
  HARP_CHECK_LE(tree_end, forest_->num_trees());
  HARP_CHECK_GE(dataset.num_features(), forest_->min_features());
  if (tree_begin >= tree_end || dataset.num_rows() == 0) return;
  if (dataset.num_rows() < kRowBlock) {
    // Short-batch fast path: a single block cannot use a pool fan-out,
    // and the sub-4MB scratch clamp is pointless — skip both.
    AccumulateShortRaw(dataset, margins, tree_begin, tree_end);
    return;
  }
  ForEachBlock(dataset.num_rows(), pool, TreeGroups(tree_begin, tree_end),
               [&](uint32_t r0, uint32_t r1, size_t t0, size_t t1) {
                 AccumulateBlockRaw(dataset, r0, r1, t0, t1, margins);
               });
}

std::vector<double> Predictor::PredictMargins(const BinnedMatrix& matrix,
                                              ThreadPool* pool,
                                              size_t num_trees) const {
  std::vector<double> margins(matrix.num_rows(), forest_->base_margin());
  AccumulateMargins(matrix, margins.data(), 0, ClampTreeCount(num_trees),
                    pool);
  return margins;
}

std::vector<double> Predictor::PredictMargins(const Dataset& dataset,
                                              ThreadPool* pool,
                                              size_t num_trees) const {
  std::vector<double> margins(dataset.num_rows(), forest_->base_margin());
  AccumulateMargins(dataset, margins.data(), 0, ClampTreeCount(num_trees),
                    pool);
  return margins;
}

std::vector<int> Predictor::PredictLeafIndices(const BinnedMatrix& matrix,
                                               size_t tree_index,
                                               ThreadPool* pool) const {
  HARP_CHECK_LT(tree_index, forest_->num_trees());
  HARP_CHECK_GE(matrix.num_features(), forest_->min_features());
  const uint32_t* feat = forest_->split_feature();
  const uint8_t* sbin = forest_->split_bin();
  const uint8_t* dleft = forest_->default_left();
  const int32_t* left = forest_->left_child();
  const int32_t* orig = forest_->orig_node();
  const int32_t root = forest_->tree_offset(tree_index);
  const int32_t steps = forest_->tree_depth(tree_index);

  std::vector<int> leaves(matrix.num_rows());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; r += kInterleave) {
      const int lanes = static_cast<int>(
          std::min<int64_t>(kInterleave, end - r));
      const uint8_t* rb[kInterleave];
      int32_t idx[kInterleave];
      for (int j = 0; j < lanes; ++j) {
        rb[j] = matrix.RowBins(static_cast<uint32_t>(r + j));
        idx[j] = root;
      }
      for (int32_t s = 0; s < steps; ++s) {
        for (int j = 0; j < lanes; ++j) {
          const int32_t i = idx[j];
          const uint8_t bin = rb[j][feat[i]];
          const bool go_left =
              (bin == 0) ? (dleft[i] != 0) : (bin <= sbin[i]);
          idx[j] = left[i] + static_cast<int32_t>(!go_left);
        }
      }
      for (int j = 0; j < lanes; ++j) {
        leaves[static_cast<size_t>(r + j)] = orig[idx[j]];
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(matrix.num_rows(), kernel);
  } else {
    kernel(0, matrix.num_rows(), 0);
  }
  return leaves;
}

}  // namespace harp
