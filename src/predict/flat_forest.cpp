#include "predict/flat_forest.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/logging.h"
#include "core/model.h"
#include "core/tree.h"

namespace harp {

void FlatForest::AppendTree(const RegTree& tree) {
  const int32_t base = static_cast<int32_t>(left_.size());
  const int32_t count = tree.num_nodes();
  split_feature_.resize(split_feature_.size() + count, 0u);
  split_bin_.resize(split_bin_.size() + count, uint8_t{255});
  split_value_.resize(split_value_.size() + count,
                      std::numeric_limits<float>::infinity());
  default_left_.resize(default_left_.size() + count, uint8_t{1});
  left_.resize(left_.size() + count, 0);
  leaf_value_.resize(leaf_value_.size() + count, 0.0);
  orig_node_.resize(orig_node_.size() + count, -1);

  // Lay nodes out so siblings land in consecutive slots (right = left + 1,
  // the stepping invariant), renumbering freely; a pre-order walk that
  // reserves both child slots on visiting their parent does exactly that.
  // ApplySplit-built trees already satisfy the invariant, but flattening
  // must not depend on how a tree was produced (model IO hands us nodes
  // verbatim, tests hand-build shapes).
  int32_t next = base + 1;  // slot 0 of the tree is the root
  int32_t max_depth = 0;
  // {RegTree id, flat slot, depth}; depth is re-derived rather than read
  // from TreeNode::depth so hand-assembled trees flatten correctly too.
  std::vector<std::tuple<int32_t, int32_t, int32_t>> stack;
  stack.emplace_back(0, base, 0);
  while (!stack.empty()) {
    const auto [orig_id, flat, depth] = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(orig_id);
    orig_node_[flat] = orig_id;
    max_depth = std::max(max_depth, depth);
    if (n.IsLeaf()) {
      // Self-loop defaults from the resize fills stay in place; every
      // input routes "left" back into this slot.
      left_[flat] = flat;
      leaf_value_[flat] = n.leaf_value;
      continue;
    }
    const int32_t left_slot = next;
    next += 2;
    HARP_CHECK_LE(next - base, count) << "tree has more children than nodes";
    split_feature_[flat] = n.split_feature;
    split_bin_[flat] = static_cast<uint8_t>(n.split_bin);
    split_value_[flat] = n.split_value;
    default_left_[flat] = n.default_left ? 1 : 0;
    left_[flat] = left_slot;
    min_features_ = std::max(min_features_, n.split_feature + 1);
    stack.emplace_back(n.right, left_slot + 1, depth + 1);
    stack.emplace_back(n.left, left_slot, depth + 1);
  }
  HARP_CHECK_EQ(next - base, count) << "tree has unreachable nodes";
  tree_offset_.push_back(base + count);
  tree_depth_.push_back(max_depth);
}

FlatForest FlatForest::BuildFromTrees(const RegTree* trees, size_t num_trees,
                                      double base_margin) {
  FlatForest forest;
  forest.base_margin_ = base_margin;
  forest.tree_offset_.reserve(num_trees + 1);
  forest.tree_offset_.push_back(0);
  int64_t total = 0;
  for (size_t t = 0; t < num_trees; ++t) total += trees[t].num_nodes();
  forest.split_feature_.reserve(total);
  forest.split_bin_.reserve(total);
  forest.split_value_.reserve(total);
  forest.default_left_.reserve(total);
  forest.left_.reserve(total);
  forest.leaf_value_.reserve(total);
  forest.orig_node_.reserve(total);
  for (size_t t = 0; t < num_trees; ++t) forest.AppendTree(trees[t]);
  return forest;
}

FlatForest FlatForest::Build(const GbdtModel& model) {
  return BuildFromTrees(model.trees().data(), model.NumTrees(),
                        model.base_margin());
}

size_t FlatForest::MemoryBytes() const {
  return split_feature_.size() * sizeof(uint32_t) + split_bin_.size() +
         split_value_.size() * sizeof(float) + default_left_.size() +
         left_.size() * sizeof(int32_t) + leaf_value_.size() * sizeof(double) +
         orig_node_.size() * sizeof(int32_t) +
         (tree_offset_.size() + tree_depth_.size()) * sizeof(int32_t);
}

}  // namespace harp
