// Flattened tree ensemble for batched inference (the inference-side
// analogue of Section IV-E's compact training layout).
//
// RegTree stores ~72-byte TreeNode structs; a traversal touches one cache
// line per step and uses only ~10 bytes of it. FlatForest repacks every
// tree of a GbdtModel into structure-of-arrays form — per node: split
// feature, 1-byte bin threshold, float raw threshold, default-left flag,
// left-child index, leaf value — with trees laid out back-to-back behind a
// per-tree offset table. Like the GPU GBDT engines in PAPERS.md (Zhang et
// al.; Mitchell et al.), the flat layout exists so a batched traversal
// streams a small, dense working set instead of chasing AoS pointers.
//
// Layout invariants the Predictor kernels rely on:
//   * Siblings occupy consecutive slots: right child = left child + 1, so
//     a step is `idx = left[idx] + !go_left` with no second array.
//   * Leaves self-loop: left[i] = i, split_bin = 255, split_value = +inf,
//     default_left = 1. Every possible input therefore "goes left" into
//     the node itself, so a traversal can take a fixed tree_depth steps
//     with no per-step leaf branch — rows that reach a leaf early simply
//     spin in place.
//   * Child indices are absolute (into the concatenated arrays), so the
//     inner loop never adds a per-tree base.
//
// Nodes are renumbered during flattening (any RegTree shape is accepted);
// orig_node keeps each flat slot's RegTree node id so leaf-index output
// stays in the model's numbering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harp {

class GbdtModel;
class RegTree;

class FlatForest {
 public:
  FlatForest() = default;

  // Flattens every tree of `model`; captures its base margin.
  static FlatForest Build(const GbdtModel& model);

  // Flattens `num_trees` trees starting at `trees` (e.g. just the newest
  // tree during eval-while-training). No base margin is captured.
  static FlatForest BuildFromTrees(const RegTree* trees, size_t num_trees,
                                   double base_margin = 0.0);

  size_t num_trees() const {
    return tree_offset_.empty() ? 0 : tree_offset_.size() - 1;
  }
  int64_t num_nodes() const { return static_cast<int64_t>(left_.size()); }
  double base_margin() const { return base_margin_; }

  // Smallest feature count an input must have to be traversed safely.
  uint32_t min_features() const { return min_features_; }

  // Per-tree views (tree-local node ranges are
  // [tree_offset(t), tree_offset(t + 1)) in the node arrays).
  int32_t tree_offset(size_t t) const { return tree_offset_[t]; }
  int32_t tree_depth(size_t t) const { return tree_depth_[t]; }
  int32_t NodesInTree(size_t t) const {
    return tree_offset_[t + 1] - tree_offset_[t];
  }

  // Raw SoA arrays (size num_nodes each) for the traversal kernels.
  const uint32_t* split_feature() const { return split_feature_.data(); }
  const uint8_t* split_bin() const { return split_bin_.data(); }
  const float* split_value() const { return split_value_.data(); }
  const uint8_t* default_left() const { return default_left_.data(); }
  const int32_t* left_child() const { return left_.data(); }
  const double* leaf_value() const { return leaf_value_.data(); }
  const int32_t* orig_node() const { return orig_node_.data(); }

  // Resident bytes of the flat arrays (model-size reporting).
  size_t MemoryBytes() const;

 private:
  void AppendTree(const RegTree& tree);

  std::vector<uint32_t> split_feature_;
  std::vector<uint8_t> split_bin_;
  std::vector<float> split_value_;
  std::vector<uint8_t> default_left_;
  std::vector<int32_t> left_;        // absolute; self for leaves
  std::vector<double> leaf_value_;   // 0.0 for internal nodes
  std::vector<int32_t> orig_node_;   // RegTree node id of each flat slot
  std::vector<int32_t> tree_offset_;  // size num_trees + 1
  std::vector<int32_t> tree_depth_;   // steps to guarantee a leaf
  double base_margin_ = 0.0;
  uint32_t min_features_ = 0;  // 1 + max split feature referenced
};

}  // namespace harp
