// Feature importance from a trained ensemble.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"

namespace harp {

struct FeatureImportance {
  // Indexed by feature id.
  std::vector<double> total_gain;   // sum of split gains using the feature
  std::vector<double> total_cover;  // sum of hessian mass at those splits
  std::vector<int64_t> split_count;

  uint32_t num_features() const {
    return static_cast<uint32_t>(total_gain.size());
  }
};

// Aggregates gain/cover/count over every internal node of every tree.
FeatureImportance ComputeImportance(const GbdtModel& model,
                                    uint32_t num_features);

// Feature ids sorted by descending total gain (count-tie-broken, stable).
std::vector<uint32_t> TopFeaturesByGain(const FeatureImportance& importance,
                                        size_t k);

// Human-readable table of the top-k features.
std::string FormatImportance(const FeatureImportance& importance, size_t k);

}  // namespace harp
