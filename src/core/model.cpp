#include "core/model.h"

#include "common/logging.h"
#include "parallel/thread_pool.h"
#include "predict/flat_forest.h"
#include "predict/predictor.h"

namespace harp {

GbdtModel::GbdtModel(const GbdtModel& other)
    : trees_(other.trees_),
      objective_(other.objective_),
      quantile_alpha_(other.quantile_alpha_),
      base_margin_(other.base_margin_),
      cuts_(other.cuts_) {
  std::lock_guard<std::mutex> lock(other.flat_mutex_);
  flat_cache_ = other.flat_cache_;
}

GbdtModel& GbdtModel::operator=(const GbdtModel& other) {
  if (this == &other) return *this;
  trees_ = other.trees_;
  objective_ = other.objective_;
  quantile_alpha_ = other.quantile_alpha_;
  base_margin_ = other.base_margin_;
  cuts_ = other.cuts_;
  std::shared_ptr<const FlatForest> cache;
  {
    std::lock_guard<std::mutex> lock(other.flat_mutex_);
    cache = other.flat_cache_;
  }
  std::lock_guard<std::mutex> lock(flat_mutex_);
  flat_cache_ = std::move(cache);
  return *this;
}

GbdtModel::GbdtModel(GbdtModel&& other) noexcept
    : trees_(std::move(other.trees_)),
      objective_(other.objective_),
      quantile_alpha_(other.quantile_alpha_),
      base_margin_(other.base_margin_),
      cuts_(std::move(other.cuts_)),
      flat_cache_(std::move(other.flat_cache_)) {}

GbdtModel& GbdtModel::operator=(GbdtModel&& other) noexcept {
  if (this == &other) return *this;
  trees_ = std::move(other.trees_);
  objective_ = other.objective_;
  quantile_alpha_ = other.quantile_alpha_;
  base_margin_ = other.base_margin_;
  cuts_ = std::move(other.cuts_);
  flat_cache_ = std::move(other.flat_cache_);
  return *this;
}

double GbdtModel::PredictMarginRow(const Dataset& dataset, uint32_t row,
                                   size_t num_trees) const {
  const size_t limit =
      num_trees == 0 ? trees_.size() : std::min(num_trees, trees_.size());
  double margin = base_margin_;
  for (size_t t = 0; t < limit; ++t) {
    margin += trees_[t].PredictRaw(dataset, row);
  }
  return margin;
}

FlatForest GbdtModel::Flatten() const { return FlatForest::Build(*this); }

std::shared_ptr<const FlatForest> GbdtModel::FlatSnapshot() const {
  std::lock_guard<std::mutex> lock(flat_mutex_);
  if (!flat_cache_) {
    flat_cache_ = std::make_shared<const FlatForest>(FlatForest::Build(*this));
  }
  return flat_cache_;
}

std::vector<double> GbdtModel::PredictMargins(const Dataset& dataset,
                                              ThreadPool* pool,
                                              size_t num_trees) const {
  const std::shared_ptr<const FlatForest> flat = FlatSnapshot();
  return Predictor(*flat).PredictMargins(dataset, pool, num_trees);
}

std::vector<double> GbdtModel::Predict(const Dataset& dataset,
                                       ThreadPool* pool,
                                       size_t num_trees) const {
  std::vector<double> out = PredictMargins(dataset, pool, num_trees);
  const auto objective = Objective::Create(objective_);
  for (double& v : out) v = objective->Transform(v);
  return out;
}

std::vector<double> GbdtModel::PredictMarginsBinned(const BinnedMatrix& matrix,
                                                    ThreadPool* pool,
                                                    size_t num_trees) const {
  const std::shared_ptr<const FlatForest> flat = FlatSnapshot();
  return Predictor(*flat).PredictMargins(matrix, pool, num_trees);
}

BinnedMatrix GbdtModel::BinDataset(const Dataset& dataset,
                                   ThreadPool* pool) const {
  return BinnedMatrix::Build(dataset, cuts_, pool);
}

std::vector<int> GbdtModel::PredictLeafIndices(const BinnedMatrix& matrix,
                                               size_t tree_index,
                                               ThreadPool* pool) const {
  HARP_CHECK_LT(tree_index, trees_.size());
  // Flatten only the requested tree; leaf ids come back in RegTree
  // numbering via the forest's orig_node table.
  const FlatForest flat =
      FlatForest::BuildFromTrees(&trees_[tree_index], 1);
  return Predictor(flat).PredictLeafIndices(matrix, 0, pool);
}

double GbdtModel::Transform(double margin) const {
  return Objective::Create(objective_)->Transform(margin);
}

int64_t GbdtModel::TotalNodes() const {
  int64_t total = 0;
  for (const RegTree& tree : trees_) total += tree.num_nodes();
  return total;
}

}  // namespace harp
