#include "core/model.h"

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {

double GbdtModel::PredictMarginRow(const Dataset& dataset, uint32_t row,
                                   size_t num_trees) const {
  const size_t limit =
      num_trees == 0 ? trees_.size() : std::min(num_trees, trees_.size());
  double margin = base_margin_;
  for (size_t t = 0; t < limit; ++t) {
    margin += trees_[t].PredictRaw(dataset, row);
  }
  return margin;
}

std::vector<double> GbdtModel::PredictMargins(const Dataset& dataset,
                                              ThreadPool* pool,
                                              size_t num_trees) const {
  std::vector<double> margins(dataset.num_rows());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; ++r) {
      margins[static_cast<size_t>(r)] =
          PredictMarginRow(dataset, static_cast<uint32_t>(r), num_trees);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(dataset.num_rows(), kernel);
  } else {
    kernel(0, dataset.num_rows(), 0);
  }
  return margins;
}

std::vector<double> GbdtModel::Predict(const Dataset& dataset,
                                       ThreadPool* pool,
                                       size_t num_trees) const {
  std::vector<double> out = PredictMargins(dataset, pool, num_trees);
  const auto objective = Objective::Create(objective_);
  for (double& v : out) v = objective->Transform(v);
  return out;
}

std::vector<double> GbdtModel::PredictMarginsBinned(const BinnedMatrix& matrix,
                                                    ThreadPool* pool,
                                                    size_t num_trees) const {
  const size_t limit =
      num_trees == 0 ? trees_.size() : std::min(num_trees, trees_.size());
  std::vector<double> margins(matrix.num_rows());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; ++r) {
      const uint8_t* row = matrix.RowBins(static_cast<uint32_t>(r));
      double margin = base_margin_;
      for (size_t t = 0; t < limit; ++t) {
        margin += trees_[t].PredictBinned(row);
      }
      margins[static_cast<size_t>(r)] = margin;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(matrix.num_rows(), kernel);
  } else {
    kernel(0, matrix.num_rows(), 0);
  }
  return margins;
}

BinnedMatrix GbdtModel::BinDataset(const Dataset& dataset,
                                   ThreadPool* pool) const {
  return BinnedMatrix::Build(dataset, cuts_, pool);
}

std::vector<int> GbdtModel::PredictLeafIndices(const BinnedMatrix& matrix,
                                               size_t tree_index,
                                               ThreadPool* pool) const {
  HARP_CHECK_LT(tree_index, trees_.size());
  const RegTree& tree = trees_[tree_index];
  std::vector<int> leaves(matrix.num_rows());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t r = begin; r < end; ++r) {
      leaves[static_cast<size_t>(r)] = tree.PredictLeafBinned(
          matrix.RowBins(static_cast<uint32_t>(r)));
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(matrix.num_rows(), kernel);
  } else {
    kernel(0, matrix.num_rows(), 0);
  }
  return leaves;
}

double GbdtModel::Transform(double margin) const {
  return Objective::Create(objective_)->Transform(margin);
}

int64_t GbdtModel::TotalNodes() const {
  int64_t total = 0;
  for (const RegTree& tree : trees_) total += tree.num_nodes();
  return total;
}

}  // namespace harp
