// Model serialization: a line-oriented text format with hex floats, so
// save -> load -> predict is bit-exact.
#pragma once

#include <string>

#include "core/model.h"

namespace harp {

// Serializes the model (trees, cuts, objective, base margin).
std::string SerializeModel(const GbdtModel& model);

// Parses a serialized model; returns false with *error set on malformed
// input.
bool DeserializeModel(const std::string& text, GbdtModel* out,
                      std::string* error);

// File wrappers.
bool SaveModel(const std::string& path, const GbdtModel& model,
               std::string* error);
bool LoadModel(const std::string& path, GbdtModel* out, std::string* error);

}  // namespace harp
