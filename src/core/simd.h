// Runtime SIMD dispatch for the histogram kernel layer.
//
// The kernel templates are compiled twice: once portably (the scalar TU,
// hist_kernels.cpp) and once with -mavx2 -mfma (hist_kernels_avx2.cpp,
// guarded by the HARP_ENABLE_AVX2 CMake option). No TU outside that one
// uses AVX2 flags, so every binary runs on any x86-64 (or non-x86)
// machine; which table executes is decided HERE, at runtime, from a cpuid
// probe — overridable for testing via TrainParams::simd or the HARP_SIMD
// environment variable ("scalar" / "avx2" / "auto").
#pragma once

#include <string>

namespace harp {

enum class SimdLevel {
  kScalar = 0,  // portable build, no ISA assumptions beyond the baseline
  kAVX2 = 1,    // the -mavx2 -mfma kernel TU (needs cpu + build support)
};

// Highest level this binary can actually run: requires both the AVX2
// kernel TU to have been compiled in (HARP_ENABLE_AVX2) and the executing
// CPU to report the feature. Probed once, cached.
SimdLevel DetectSimdLevel();

// True when `level`'s kernel table is available in this binary on this CPU.
bool SimdSupported(SimdLevel level);

// "scalar" / "avx2".
std::string ToString(SimdLevel level);

// Parses "scalar" / "avx2" (exact match); returns false otherwise.
bool ParseSimdLevel(const std::string& text, SimdLevel* out);

// Resolves a TrainParams::simd-style request to a runnable level:
//   "auto"   -> HARP_SIMD env override if set, else DetectSimdLevel()
//   "scalar" / "avx2" -> that level, downgraded (with a warning) to
//                        kScalar when the binary/CPU cannot run it.
// CHECK-fails on any other string (Validate() rejects them up front).
SimdLevel ResolveSimdLevel(const std::string& request);

}  // namespace harp
