#include "core/params.h"

#include <limits>

#include "common/logging.h"

namespace harp {

int TrainParams::MaxDepth() const {
  if (grow_policy == GrowPolicy::kDepthwise) return tree_size;
  // Leafwise / TopK trees are depth-unbounded in the paper; cap at a value
  // no finite leaf budget can exceed (2^tree_size leaves implies fewer than
  // 2^tree_size internal splits on any path).
  return std::numeric_limits<int>::max() - 1;
}

int TrainParams::EffectiveTopK() const {
  switch (grow_policy) {
    case GrowPolicy::kLeafwise:
      return 1;
    case GrowPolicy::kTopK:
      return topk;
    case GrowPolicy::kDepthwise:
      // Depthwise pops whole levels; the value is unused but a sane
      // default keeps instrumentation uniform.
      return topk;
  }
  return 1;
}

const TrainParams& TrainParams::Validate() const {
  HARP_CHECK_GE(num_trees, 1);
  HARP_CHECK_GT(learning_rate, 0.0);
  HARP_CHECK_GE(reg_lambda, 0.0);
  HARP_CHECK_GE(min_split_loss, 0.0);
  HARP_CHECK_GE(min_child_weight, 0.0);
  // base_score lives in probability space for logistic (sigmoid inverse)
  // and in rate space for Poisson (log link); the regression objectives
  // take it as a raw initial margin, so any finite value is legal there.
  if (objective == ObjectiveKind::kLogistic) {
    HARP_CHECK_GT(base_score, 0.0);
    HARP_CHECK_LT(base_score, 1.0);
  } else if (objective == ObjectiveKind::kPoisson) {
    HARP_CHECK_GT(base_score, 0.0);
  }
  HARP_CHECK_GT(quantile_alpha, 0.0);
  HARP_CHECK_LT(quantile_alpha, 1.0);
  HARP_CHECK_GE(max_delta_step, 0.0);
  HARP_CHECK_GE(ndcg_k, 1);
  HARP_CHECK_GE(max_bins, 2);
  HARP_CHECK_LE(max_bins, 256);
  HARP_CHECK_GE(tree_size, 1);
  HARP_CHECK_LE(tree_size, 24);  // 2^24 leaves: beyond any sane setting
  HARP_CHECK_GE(topk, 1);
  HARP_CHECK_GE(num_threads, 0);
  HARP_CHECK_GE(row_blk_size, 0);
  HARP_CHECK_GE(node_blk_size, 1);
  HARP_CHECK_GE(feature_blk_size, 0);
  HARP_CHECK_GE(bin_blk_size, 1);
  HARP_CHECK_LE(bin_blk_size, 256);
  HARP_CHECK_GE(prefetch_window_bytes, 64 * 1024);
  HARP_CHECK_GT(subsample, 0.0);
  HARP_CHECK_LE(subsample, 1.0);
  HARP_CHECK_GT(colsample_bytree, 0.0);
  HARP_CHECK_LE(colsample_bytree, 1.0);
  HARP_CHECK(simd == "auto" || simd == "scalar" || simd == "avx2")
      << "simd must be auto|scalar|avx2, got '" << simd << "'";
  HARP_CHECK(comm_compress == "dense" || comm_compress == "sparse")
      << "comm_compress must be dense|sparse, got '" << comm_compress << "'";
  return *this;
}

std::string ToString(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kLogistic: return "logistic";
    case ObjectiveKind::kSquaredError: return "squared";
    case ObjectiveKind::kQuantile: return "quantile";
    case ObjectiveKind::kPoisson: return "poisson";
    case ObjectiveKind::kLambdaRank: return "lambdarank";
  }
  return "?";
}

std::string ToString(GrowPolicy policy) {
  switch (policy) {
    case GrowPolicy::kDepthwise: return "depthwise";
    case GrowPolicy::kLeafwise: return "leafwise";
    case GrowPolicy::kTopK: return "topk";
  }
  return "?";
}

std::string ToString(ParallelMode mode) {
  switch (mode) {
    case ParallelMode::kDP: return "DP";
    case ParallelMode::kMP: return "MP";
    case ParallelMode::kSYNC: return "SYNC";
    case ParallelMode::kASYNC: return "ASYNC";
  }
  return "?";
}

bool ParseObjectiveKind(const std::string& text, ObjectiveKind* out) {
  if (text == "logistic") { *out = ObjectiveKind::kLogistic; return true; }
  if (text == "squared") { *out = ObjectiveKind::kSquaredError; return true; }
  if (text == "quantile") { *out = ObjectiveKind::kQuantile; return true; }
  if (text == "poisson") { *out = ObjectiveKind::kPoisson; return true; }
  if (text == "lambdarank") { *out = ObjectiveKind::kLambdaRank; return true; }
  return false;
}

bool ParseGrowPolicy(const std::string& text, GrowPolicy* out) {
  if (text == "depthwise") { *out = GrowPolicy::kDepthwise; return true; }
  if (text == "leafwise") { *out = GrowPolicy::kLeafwise; return true; }
  if (text == "topk") { *out = GrowPolicy::kTopK; return true; }
  return false;
}

bool ParseParallelMode(const std::string& text, ParallelMode* out) {
  if (text == "DP") { *out = ParallelMode::kDP; return true; }
  if (text == "MP") { *out = ParallelMode::kMP; return true; }
  if (text == "SYNC") { *out = ParallelMode::kSYNC; return true; }
  if (text == "ASYNC") { *out = ParallelMode::kASYNC; return true; }
  return false;
}

}  // namespace harp
