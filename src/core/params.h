// Training hyper-parameters and the HarpGBDT system parameters (Table IV).
#pragma once

#include <cstdint>
#include <string>

namespace harp {

enum class ObjectiveKind {
  kLogistic,       // binary classification, logloss
  kSquaredError,   // regression
  kQuantile,       // quantile (pinball) regression at quantile_alpha
  kPoisson,        // count regression, log link, Poisson deviance
  kLambdaRank,     // list-wise ranking, NDCG@ndcg_k (needs qid groups)
};

// Tree growth methods (Section IV-B). TopK generalizes both: K=1 is
// leafwise; depthwise is its own policy (level order, same tree as TopK
// with K = all leaves of the level).
enum class GrowPolicy { kDepthwise, kLeafwise, kTopK };

// Parallelism modes (Table II).
enum class ParallelMode {
  kDP,     // data parallelism: per-thread model replicas over row blocks
  kMP,     // model parallelism: tasks over <node_blk x feature_blk> blocks
  kSYNC,   // mixed (DP, MP, DP) chosen per batch by growth phase
  kASYNC,  // node-level tasks + spin mutex, no barriers (Section IV-D)
};

struct TrainParams {
  // --- boosting ---
  int num_trees = 100;
  double learning_rate = 0.1;      // the paper's fixed 0.1
  double reg_lambda = 1.0;         // L2 regularization (lambda)
  double min_split_loss = 1.0;     // gamma
  double min_child_weight = 1.0;   // minimum hessian sum per child
  double base_score = 0.5;         // initial prediction (probability space)
  ObjectiveKind objective = ObjectiveKind::kLogistic;
  // kQuantile: the target quantile (0 < alpha < 1). Persisted with the
  // model so prediction-time reporting knows which quantile it serves.
  double quantile_alpha = 0.5;
  // kPoisson: hessian stabilizer — h = exp(margin + max_delta_step) caps
  // the per-round leaf step at ~max_delta_step in log space.
  double max_delta_step = 0.7;
  // kLambdaRank: NDCG truncation depth, used for both the lambda weights
  // (|delta NDCG@k|) and the default eval metric.
  int ndcg_k = 10;
  // Validation metric name ("logloss", "rmse", "auc", "error", "pinball",
  // "poisson-deviance", "ndcg", "ndcg@<k>"); empty = derived from the
  // objective. See Metric::DefaultName.
  std::string eval_metric;
  int max_bins = 256;

  // --- tree shape ---
  // The paper's tree size D: the tree grows to at most 2^D leaves. For the
  // depthwise policy the depth is also limited to D; leafwise/TopK trees
  // may grow much deeper (the CRITEO discussion: depth > 150).
  int tree_size = 8;
  GrowPolicy grow_policy = GrowPolicy::kTopK;
  int topk = 32;                   // K: candidates popped per step

  // --- parallelism (Table IV) ---
  ParallelMode mode = ParallelMode::kSYNC;
  int num_threads = 0;             // 0 = ThreadPool::DefaultThreads()
  // Row block size for DP task scheduling; 0 = auto (batch_rows / threads).
  int64_t row_blk_size = 0;
  // Candidate nodes grouped per task/replica (1..K).
  int node_blk_size = 1;
  // Features per block; 0 = all features in one block (pure DP layout).
  int feature_blk_size = 0;
  // Bins per histogram pass; 256 disables bin-level blocking.
  int bin_blk_size = 256;
  // Fused-step scheduler: run each TopK batch (apply / build / reduce /
  // subtract / find) inside ONE persistent parallel region with in-region
  // phase barriers instead of one region launch per phase. Off = the
  // region-per-phase path, kept as the bit-identity oracle (outputs are
  // identical either way). Ignored by ASYNC, which has its own one-region
  // node-task scheduler.
  bool use_fused_step = true;

  // --- memory optimizations (Section IV-E) ---
  bool use_membuf = true;           // (rowid, g, h) node buffers, Fig. 7
  bool use_hist_subtraction = false;  // parent - sibling trick (ablatable)
  // Quantized histograms (core/quantize.h): per-round fixed-point packing
  // of (g, h) into one int32 and int64 accumulator cells, halving the hot
  // loop's gradient-read and GHSum-write traffic. Off = the f64 accuracy
  // oracle. Ignored (with a warning) by ASYNC. Results change within the
  // quantization error bound, but are deterministic for a fixed config.
  bool quantize_hist = false;
  // Stochastic (unbiased, row-hashed) rounding instead of round-to-
  // nearest-even when quantizing. Only meaningful with quantize_hist.
  bool quant_stochastic = false;
  // Histogram-kernel dispatch level: "auto" (cpuid probe, overridable via
  // the HARP_SIMD env var), "scalar", or "avx2". Named levels that the
  // binary/CPU cannot run fall back to scalar with a warning.
  std::string simd = "auto";

  // --- distributed training (DistributedGbdt) ---
  // Histogram-exchange encoding: "dense" (full f64 buffers, the bit-
  // identity oracle) or "sparse" (SparseHistogram compressed frames —
  // touched-region runs, and 8-byte quantized cells when quantize_hist is
  // on). Both produce bitwise-identical models; single-node training
  // ignores this.
  std::string comm_compress = "dense";

  // --- out-of-core streaming (only active when the bin matrix is backed
  // by an mmap'd cache file; heap training ignores both) ---
  // Run the RowBlockPrefetcher sweep (WILLNEED ahead / DONTNEED behind)
  // that bounds resident set during training. Off = rely on the kernel's
  // default paging (RSS grows to the full matrix under no memory cap).
  bool stream_prefetch = true;
  // Advise window granularity for the sweep; steady-state RSS of the bin
  // matrix is a small multiple of this.
  int64_t prefetch_window_bytes = 16 << 20;

  // --- stochastic boosting (excluded from the paper's controlled timing
  // experiments, Section V-A4, but part of any production GBDT) ---
  double subsample = 1.0;           // row fraction per tree
  double colsample_bytree = 1.0;    // feature fraction per tree

  uint64_t seed = 7;

  // Maximum leaves implied by tree_size.
  int64_t MaxLeaves() const { return int64_t{1} << tree_size; }
  // Depth limit: tree_size for depthwise, effectively unbounded otherwise.
  int MaxDepth() const;
  // Effective K per pop for the configured policy.
  int EffectiveTopK() const;

  // CHECK-fails on out-of-range values; returns *this for chaining.
  const TrainParams& Validate() const;
};

// Enum <-> string helpers (model IO, CLI flags in the examples).
std::string ToString(ObjectiveKind kind);
std::string ToString(GrowPolicy policy);
std::string ToString(ParallelMode mode);
bool ParseObjectiveKind(const std::string& text, ObjectiveKind* out);
bool ParseGrowPolicy(const std::string& text, GrowPolicy* out);
bool ParseParallelMode(const std::string& text, ParallelMode* out);

}  // namespace harp
