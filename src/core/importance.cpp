#include "core/importance.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace harp {

FeatureImportance ComputeImportance(const GbdtModel& model,
                                    uint32_t num_features) {
  FeatureImportance importance;
  importance.total_gain.assign(num_features, 0.0);
  importance.total_cover.assign(num_features, 0.0);
  importance.split_count.assign(num_features, 0);
  for (const RegTree& tree : model.trees()) {
    for (const TreeNode& node : tree.nodes()) {
      if (node.IsLeaf()) continue;
      HARP_CHECK_LT(node.split_feature, num_features);
      importance.total_gain[node.split_feature] += node.gain;
      importance.total_cover[node.split_feature] += node.sum.h;
      ++importance.split_count[node.split_feature];
    }
  }
  return importance;
}

std::vector<uint32_t> TopFeaturesByGain(const FeatureImportance& importance,
                                        size_t k) {
  std::vector<uint32_t> order(importance.num_features());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (importance.total_gain[a] != importance.total_gain[b]) {
      return importance.total_gain[a] > importance.total_gain[b];
    }
    return importance.split_count[a] > importance.split_count[b];
  });
  order.resize(std::min(k, order.size()));
  return order;
}

std::string FormatImportance(const FeatureImportance& importance, size_t k) {
  std::string out = StrFormat("%8s %12s %12s %8s\n", "feature", "gain",
                              "cover", "splits");
  for (uint32_t f : TopFeaturesByGain(importance, k)) {
    out += StrFormat("%8u %12.4f %12.1f %8lld\n", f,
                     importance.total_gain[f], importance.total_cover[f],
                     static_cast<long long>(importance.split_count[f]));
  }
  return out;
}

}  // namespace harp
