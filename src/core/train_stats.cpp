#include "core/train_stats.h"

#include "common/string_util.h"
#include "common/timer.h"

namespace harp {

double TrainStats::SecondsPerTree() const {
  if (trees == 0) return 0.0;
  return NsToSec(wall_ns) / static_cast<double>(trees);
}

double TrainStats::NsPerHistUpdate() const {
  if (hist_updates == 0) return 0.0;
  return static_cast<double>(build_hist_ns) /
         static_cast<double>(hist_updates);
}

std::string TrainStats::Report() const {
  std::string out;
  out += StrFormat("trees=%d wall=%s (%.1f ms/tree)\n", trees,
                   HumanDuration(NsToSec(wall_ns)).c_str(),
                   SecondsPerTree() * 1e3);
  out += StrFormat(
      "phases: build_hist=%s reduce=%s find_split=%s apply_split=%s "
      "gradients=%s quantize=%s update=%s\n",
      HumanDuration(NsToSec(build_hist_ns)).c_str(),
      HumanDuration(NsToSec(reduce_ns)).c_str(),
      HumanDuration(NsToSec(find_split_ns)).c_str(),
      HumanDuration(NsToSec(apply_split_ns)).c_str(),
      HumanDuration(NsToSec(gradient_ns)).c_str(),
      HumanDuration(NsToSec(quantize_ns)).c_str(),
      HumanDuration(NsToSec(update_ns)).c_str());
  out += StrFormat("tree: splits=%lld leaves=%lld max_depth=%d\n",
                   static_cast<long long>(nodes_split),
                   static_cast<long long>(leaves), max_tree_depth);
  out += StrFormat(
      "memory: hist_updates=%lld (%.2f ns/update) cell=%zuB hist_peak=%s "
      "write_region=%s\n",
      static_cast<long long>(hist_updates), NsPerHistUpdate(),
      hist_cell_bytes,
      HumanBytes(static_cast<double>(hist_peak_bytes)).c_str(),
      HumanBytes(static_cast<double>(write_region_bytes)).c_str());
  out += StrFormat(
      "apply: splits=%lld batches=%lld barriers=%lld moved=%s allocs=%lld\n",
      static_cast<long long>(apply_splits),
      static_cast<long long>(apply_batches),
      static_cast<long long>(apply_barriers),
      HumanBytes(static_cast<double>(apply_bytes_moved)).c_str(),
      static_cast<long long>(apply_allocs));
  out += StrFormat(
      "grow: batches=%lld region_launches=%lld phase_barriers=%lld "
      "(%.2f regions/batch)\n",
      static_cast<long long>(topk_batches),
      static_cast<long long>(grow_region_launches),
      static_cast<long long>(grow_phase_barriers),
      topk_batches == 0 ? 0.0
                        : static_cast<double>(grow_region_launches) /
                              static_cast<double>(topk_batches));
  if (mapped_bytes > 0) {
    out += StrFormat(
        "out-of-core: mapped=%s advised=%s retired=%s sweeps=%lld "
        "faults=%lld minor/%lld major peak_rss=%s\n",
        HumanBytes(static_cast<double>(mapped_bytes)).c_str(),
        HumanBytes(static_cast<double>(oo_advised_bytes)).c_str(),
        HumanBytes(static_cast<double>(oo_retired_bytes)).c_str(),
        static_cast<long long>(oo_sweeps),
        static_cast<long long>(minor_faults),
        static_cast<long long>(major_faults),
        HumanBytes(static_cast<double>(peak_rss_bytes)).c_str());
  }
  out += StrFormat(
      "sync: threads=%d regions=%lld phase_barriers=%lld "
      "utilization=%.1f%% barrier_overhead=%.1f%% spin_overhead=%.1f%% "
      "(acquires=%lld contended=%lld)\n",
      sync.threads, static_cast<long long>(sync.parallel_regions),
      static_cast<long long>(sync.phase_barriers),
      sync.Utilization(wall_ns) * 100.0, sync.BarrierOverhead() * 100.0,
      sync.SpinOverhead() * 100.0, static_cast<long long>(sync.spin_acquires),
      static_cast<long long>(sync.spin_contended));
  return out;
}

}  // namespace harp
