// Regression tree: structure, growth mutations, prediction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gh.h"
#include "core/split.h"
#include "data/binned_matrix.h"
#include "data/dataset.h"

namespace harp {

struct TreeNode {
  int32_t parent = -1;
  int32_t left = -1;    // < 0 while a leaf
  int32_t right = -1;
  int32_t depth = 0;

  // Split (valid when not a leaf). Binned test: bin 0 -> default side,
  // else bin <= split_bin goes left. Raw test: missing -> default side,
  // else value <= split_value goes left.
  uint32_t split_feature = 0;
  uint32_t split_bin = 0;
  float split_value = 0.0f;
  bool default_left = false;
  double gain = 0.0;

  // Leaf output (already scaled by the learning rate).
  double leaf_value = 0.0;

  // Node statistics (useful for tests and model inspection).
  GHPair sum;
  uint32_t num_rows = 0;

  bool IsLeaf() const { return left < 0; }
};

class RegTree {
 public:
  RegTree() { nodes_.emplace_back(); }  // starts as a single-leaf root

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int NumLeaves() const;
  int MaxDepth() const;

  const TreeNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  TreeNode& mutable_node(int id) { return nodes_[static_cast<size_t>(id)]; }

  // Turns leaf `node_id` into an internal node with the given split;
  // returns {left_child_id, right_child_id}. split_value must be the raw
  // cut corresponding to split.bin so raw and binned prediction agree.
  std::pair<int, int> ApplySplit(int node_id, const SplitInfo& split,
                                 float split_value);

  // Leaf id reached by a binned row (row-major bin pointer).
  int PredictLeafBinned(const uint8_t* row_bins) const;

  // Leaf value for a binned row.
  double PredictBinned(const uint8_t* row_bins) const {
    return nodes_[static_cast<size_t>(PredictLeafBinned(row_bins))].leaf_value;
  }

  // Leaf value for a raw row of `dataset`.
  double PredictRaw(const Dataset& dataset, uint32_t row) const;

  // Structural invariants (tests): parent/child links consistent, every
  // internal node has two children, leaf values finite.
  bool CheckValid() const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace harp
