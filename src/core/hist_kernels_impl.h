// Histogram-kernel template bodies, compiled once per ISA level.
//
// This header is the single source of the accumulation kernels and their
// elementwise companions (quantize / dequantize / int64 reduce). It is
// included by exactly two translation units:
//
//   hist_kernels.cpp       portable baseline flags -> the scalar table
//   hist_kernels_avx2.cpp  -mavx2 -mfma (HARP_ENABLE_AVX2 CMake option)
//                          -> the AVX2 table
//
// Each includer defines HARP_KERNEL_NS (the namespace the instantiation
// lands in) before including, so the two compilations never collide and
// which one runs is a pure runtime decision (core/simd.h). Inside the
// AVX2 TU, __AVX2__ is defined by the flags and the explicit-intrinsic
// paths below replace the portable loops.
//
// Bit-identity contract (enforced by tests/test_hist_kernels.cpp and
// tests/test_quantize.cpp):
//   * f64 kernels: per-slot accumulation order is ascending row-list
//     order and every update is the same pair of IEEE-754 double adds,
//     so scalar-TU and AVX2-TU histograms are bit-identical to the
//     AccumulateRow reference.
//   * quant kernels: integer accumulation is order-independent, the
//     scalar round (nearbyintf under the default rounding mode) matches
//     the AVX2 cvtps round (RNE), and dequantization multiplies exact
//     integers by exact powers of two — so forced-scalar and forced-AVX2
//     runs are bit-identical end to end.
#ifndef HARP_KERNEL_NS
#error "define HARP_KERNEL_NS before including hist_kernels_impl.h"
#endif

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "core/hist_kernels.h"
#include "core/quantize.h"

namespace harp {
namespace HARP_KERNEL_NS {
namespace {

// Rows accumulated per inner iteration. Four gives one histogram sweep per
// four rows and four independent add chains per feature; it is also the
// group size the remainder-path tests exercise.
constexpr uint32_t kRowGroup = 4;
// Bin bytes (and gathered gradient pairs) are prefetched this many rows
// ahead — two groups, far enough to cover a row's worth of accumulation.
constexpr uint32_t kRowPrefetchDist = 2 * kRowGroup;
// Two-level cache blocking for the full-feature kernels: rows are walked
// in tiles small enough that their bin rows stay cache-resident while the
// feature loop re-visits them, and features in tiles that confine the
// histogram write window (16 features x 256 bins x 16 B = 64 KB worst
// case, L1/L2-resident; the quantized cells halve that). Per-slot
// accumulation order is still ascending row id — a slot belongs to exactly
// one feature — so tiling cannot change results, only locality.
constexpr uint32_t kRowTile = 2048;
constexpr uint32_t kFeatureTile = 16;
// Write-prefetching the histogram slots of the next row group measured as
// a clear net loss on the bench fixture (the feature-tiled write window is
// already cache-resident, so the extra 4 bin loads + 4 prefetches per
// feature only cost ports). The code path is kept compiled behind this
// switch for write windows that outgrow the cache.
constexpr bool kPrefetchHistSlots = false;

#if defined(__GNUC__) || defined(__clang__)
#define HARP_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 3)
#define HARP_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define HARP_PREFETCH_READ(addr) ((void)(addr))
#define HARP_PREFETCH_WRITE(addr) ((void)(addr))
#endif

#if defined(__SSE2__)
// One fused 16-byte load/add/store per slot update. addpd performs the
// same two IEEE-754 double additions as GHPair::Add, so results stay
// bit-identical to the scalar reference — only the instruction count per
// update drops (1 load + 1 add + 1 store instead of 2 of each).
struct GHVec {
  __m128d v;
  GHVec() = default;
  explicit GHVec(float gf, float hf)
      : v(_mm_set_pd(static_cast<double>(hf), static_cast<double>(gf))) {}
  inline void AddTo(GHPair* slot) const {
    _mm_storeu_pd(reinterpret_cast<double*>(slot),
                  _mm_add_pd(_mm_loadu_pd(reinterpret_cast<double*>(slot)),
                             v));
  }
};
#else
struct GHVec {
  double g, h;
  GHVec() = default;
  explicit GHVec(float gf, float hf)
      : g(static_cast<double>(gf)), h(static_cast<double>(hf)) {}
  inline void AddTo(GHPair* slot) const {
    slot->g += g;
    slot->h += h;
  }
};
#endif

template <bool kMemBuf>
inline uint32_t RowIdAt(const HistKernelMatrix& m, const HistRowSource& src,
                        uint32_t i) {
  (void)m;
  if constexpr (kMemBuf) {
    return src.entries[i].rid;
  } else {
    return src.row_ids[i];
  }
}

template <bool kMemBuf>
inline void LoadRow(const HistKernelMatrix& m, const HistRowSource& src,
                    uint32_t i, const uint8_t** row_bins, float* g, float* h) {
  if constexpr (kMemBuf) {
    const MemBufEntry& e = src.entries[i];
    *row_bins = m.bins + static_cast<size_t>(e.rid) * m.num_features;
    *g = e.g;
    *h = e.h;
  } else {
    const uint32_t rid = src.row_ids[i];
    *row_bins = m.bins + static_cast<size_t>(rid) * m.num_features;
    *g = m.gradients[rid].g;
    *h = m.gradients[rid].h;
  }
}

// One row, scalar — the ramp-down path for groups smaller than kRowGroup.
template <bool kFullBins>
inline void AccumulateOne(const uint8_t* row_bins, float g, float h,
                          const uint32_t* offsets, GHPair* hist,
                          uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                          uint32_t bin_hi) {
  for (uint32_t f = f_begin; f < f_end; ++f) {
    const uint8_t bin = row_bins[f];
    if constexpr (!kFullBins) {
      if (bin < bin_lo || bin >= bin_hi) continue;
    }
    hist[offsets[f] + bin].Add(g, h);
  }
}

// Feature sweep over one 4-row group. While the group is accumulated, the
// histogram slots the NEXT group will touch are prefetched (pf[0..3] are
// that group's bin rows); kPrefetchHist is compile-time so the common tail
// group pays no per-feature branch.
template <bool kFullBins, bool kPrefetchHist>
inline void AccumulateGroup(const uint8_t* const b[kRowGroup],
                            const float g[kRowGroup], const float h[kRowGroup],
                            const uint8_t* const pf[kRowGroup],
                            const uint32_t* offsets, GHPair* hist,
                            uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                            uint32_t bin_hi) {
  // float->double widening hoisted out of the feature sweep: once per
  // group instead of once per slot update. (Constant-bound u loops below
  // fully unroll at the kernel TU's -O3.)
  GHVec vs[kRowGroup];
  for (uint32_t u = 0; u < kRowGroup; ++u) vs[u] = GHVec(g[u], h[u]);
  for (uint32_t f = f_begin; f < f_end; ++f) {
    const uint32_t off = offsets[f];
    if constexpr (kPrefetchHist) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        HARP_PREFETCH_WRITE(hist + off + pf[u][f]);
      }
    }
    if constexpr (kFullBins) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        vs[u].AddTo(hist + off + b[u][f]);
      }
    } else {
      // Slot order within the group is still ascending row index, so the
      // filtered variant stays bit-identical to the scalar reference.
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        const uint8_t bin = b[u][f];
        if (bin >= bin_lo && bin < bin_hi) vs[u].AddTo(hist + off + bin);
      }
    }
  }
}

// The 4-row interleaved sweep over one (row range, feature range) tile.
template <bool kMemBuf, bool kFullBins>
void AccumulateTile(const HistKernelMatrix& m, const HistRowSource& src,
                    uint32_t begin, uint32_t end, GHPair* hist,
                    uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                    uint32_t bin_hi) {
  const uint32_t* const offsets = m.bin_offsets;

  const uint8_t* b[kRowGroup];
  const uint8_t* pf[kRowGroup];
  float g[kRowGroup];
  float h[kRowGroup];

  uint32_t i = begin;
  for (; i + kRowGroup <= end; i += kRowGroup) {
    // Stream-ahead prefetch: bin bytes (and gathered gradients) of the
    // group after next, so they are resident by the time it is loaded.
    if (i + kRowPrefetchDist + kRowGroup <= end) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        const uint32_t rid = RowIdAt<kMemBuf>(m, src, i + kRowPrefetchDist + u);
        HARP_PREFETCH_READ(m.bins + static_cast<size_t>(rid) * m.num_features +
                           f_begin);
        if constexpr (!kMemBuf) HARP_PREFETCH_READ(m.gradients + rid);
      }
    }
    for (uint32_t u = 0; u < kRowGroup; ++u) {
      LoadRow<kMemBuf>(m, src, i + u, &b[u], &g[u], &h[u]);
    }
    if (kPrefetchHistSlots && i + 2 * kRowGroup <= end) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        pf[u] = m.bins + static_cast<size_t>(RowIdAt<kMemBuf>(
                             m, src, i + kRowGroup + u)) *
                             m.num_features;
      }
      AccumulateGroup<kFullBins, true>(b, g, h, pf, offsets, hist, f_begin,
                                       f_end, bin_lo, bin_hi);
    } else {
      AccumulateGroup<kFullBins, false>(b, g, h, b, offsets, hist, f_begin,
                                        f_end, bin_lo, bin_hi);
    }
  }
  // Remainder rows (row lists are rarely multiples of four).
  for (; i < end; ++i) {
    const uint8_t* row_bins;
    float gr;
    float hr;
    LoadRow<kMemBuf>(m, src, i, &row_bins, &gr, &hr);
    AccumulateOne<kFullBins>(row_bins, gr, hr, offsets, hist, f_begin, f_end,
                             bin_lo, bin_hi);
  }
}

template <bool kMemBuf, bool kFullBins, bool kFullFeatures>
void AccumulateRange(const HistKernelMatrix& m, const HistRowSource& src,
                     uint32_t begin, uint32_t end, GHPair* hist, Range fb,
                     Range bins) {
  const uint32_t bin_lo = bins.first;
  const uint32_t bin_hi = bins.second;
  if constexpr (kFullFeatures) {
    // The kernel owns the whole feature space, so it is free to impose
    // the cache blocking itself: feature tiles keep the histogram write
    // window resident, row tiles keep the re-visited bin rows resident.
    const uint32_t nf = m.num_features;
    if (nf <= kFeatureTile) {
      AccumulateTile<kMemBuf, kFullBins>(m, src, begin, end, hist, 0u, nf,
                                         bin_lo, bin_hi);
      return;
    }
    for (uint32_t r = begin; r < end; r += kRowTile) {
      const uint32_t r_end = std::min(end, r + kRowTile);
      for (uint32_t f = 0; f < nf; f += kFeatureTile) {
        AccumulateTile<kMemBuf, kFullBins>(m, src, r, r_end, hist, f,
                                           std::min(nf, f + kFeatureTile),
                                           bin_lo, bin_hi);
      }
    }
  } else {
    // Caller-tiled feature block: accumulate it as one tile.
    AccumulateTile<kMemBuf, kFullBins>(m, src, begin, end, hist, fb.first,
                                       fb.second, bin_lo, bin_hi);
  }
}

// ---------------------------------------------------------------------
// Quantized kernels: 8-byte int64 cells fed by 4-byte packed pairs.
// Same interleaving/tiling/prefetch skeleton as the f64 kernels; the
// per-update work drops from two double adds on a 16-byte cell to one
// integer add on an 8-byte cell, and the per-row gradient read drops
// from 8-12 bytes to 4 (quantize.h has the Section III-B arithmetic).
// ---------------------------------------------------------------------

template <bool kMemBuf>
inline void LoadRowQ(const HistKernelMatrix& m, const HistRowSource& src,
                     uint32_t i, const uint8_t** row_bins, int32_t* packed) {
  // Both layouts read the packed pair through m.qgradients: the MemBuf
  // entries' float g/h stay authoritative for the partitioner's fused
  // child sums, so they cannot carry the packed bits. Row ids within a
  // node are ascending (stable partition), so this "gather" walks
  // qgradients monotonically.
  const uint32_t rid = RowIdAt<kMemBuf>(m, src, i);
  *row_bins = m.bins + static_cast<size_t>(rid) * m.num_features;
  *packed = m.qgradients[rid];
}

// Widens a 4-row group of packed pairs into int64 cell addends, hoisted
// out of the feature sweep like the f64 GHVec construction.
inline void WidenQuantGroup(const int32_t p[kRowGroup],
                            int64_t w[kRowGroup]) {
#if defined(__AVX2__)
  // Explicit-intrinsic widen: all four rows at once.
  //   hi32 = packed >> 16 (arithmetic: signed g), lo32 = packed & 0xFFFF
  //   cell addend = (int64)hi32 << 32 | lo32
  const __m128i packed =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i hi32 = _mm_srai_epi32(packed, 16);
  const __m128i lo32 = _mm_and_si128(packed, _mm_set1_epi32(0xFFFF));
  const __m256i hi = _mm256_slli_epi64(_mm256_cvtepi32_epi64(hi32), 32);
  const __m256i lo = _mm256_cvtepi32_epi64(lo32);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(w),
                      _mm256_add_epi64(hi, lo));
#else
  for (uint32_t u = 0; u < kRowGroup; ++u) w[u] = WidenQuant(p[u]);
#endif
}

template <bool kFullBins>
inline void AccumulateOneQ(const uint8_t* row_bins, int32_t packed,
                           const uint32_t* offsets, int64_t* hist,
                           uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                           uint32_t bin_hi) {
  const int64_t w = WidenQuant(packed);
  for (uint32_t f = f_begin; f < f_end; ++f) {
    const uint8_t bin = row_bins[f];
    if constexpr (!kFullBins) {
      if (bin < bin_lo || bin >= bin_hi) continue;
    }
    hist[offsets[f] + bin] += w;
  }
}

template <bool kFullBins>
inline void AccumulateGroupQ(const uint8_t* const b[kRowGroup],
                             const int64_t w[kRowGroup],
                             const uint32_t* offsets, int64_t* hist,
                             uint32_t f_begin, uint32_t f_end,
                             uint32_t bin_lo, uint32_t bin_hi) {
  for (uint32_t f = f_begin; f < f_end; ++f) {
    const uint32_t off = offsets[f];
    if constexpr (kFullBins) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        hist[off + b[u][f]] += w[u];
      }
    } else {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        const uint8_t bin = b[u][f];
        if (bin >= bin_lo && bin < bin_hi) hist[off + bin] += w[u];
      }
    }
  }
}

#if defined(__AVX2__)
// Full-bins fast path for an exactly-16-feature tile, one row per
// iteration. Because integer accumulation is order-independent, the
// quant kernel is free to abandon the f64 kernel's 4-row interleave and
// instead vectorize the ADDRESS ARITHMETIC: one 16-byte bin load plus
// two YMM adds against the preloaded bin offsets yield all 16 slot
// indices of the row, and each 64-bit extraction carries two packed
// 32-bit indices. A slot update is then a single fused load-add plus
// store with no per-update movzx/lea chain — the f64 kernel cannot do
// this because its per-slot accumulation ORDER is part of its
// bit-identity contract. ILP comes from the 16 updates of one row being
// guaranteed independent (offsets partition the histogram by feature,
// so slots of different features never alias).
// One 16-feature chunk of one row: 16 slot updates from one bin load and
// two YMM index adds, extracted as packed 32-bit index pairs. (The
// compiler turns the `pairs` buffer into vpextrq/shr register extraction;
// forcing the memory form instead measures WORSE because the 32-byte
// vector store does not forward cheaply to 4-byte scalar reloads.) The 16
// updates are independent because bin offsets partition the histogram by
// feature — no two slots in a chunk alias.
inline void AccumulateChunk16Q(const uint8_t* chunk_bins,
                               const uint32_t* chunk_offsets, int64_t w,
                               int64_t* hist) {
  const __m256i off_lo = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(chunk_offsets));
  const __m256i off_hi = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(chunk_offsets + 8));
  const __m256i idx_lo = _mm256_add_epi32(
      _mm256_cvtepu8_epi32(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(chunk_bins))),
      off_lo);
  const __m256i idx_hi = _mm256_add_epi32(
      _mm256_cvtepu8_epi32(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(chunk_bins + 8))),
      off_hi);
  alignas(32) uint64_t pairs[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(pairs), idx_lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(pairs + 4), idx_hi);
  for (uint32_t j = 0; j < 8; ++j) {
    const uint64_t p = pairs[j];
    hist[static_cast<uint32_t>(p)] += w;
    hist[p >> 32] += w;
  }
}

// Row-major quant sweep over a feature window whose width is a multiple
// of 16: the per-row costs (row-id fetch, widen, prefetch) are paid once
// per ROW, not once per 16-feature tile, and each row's bin line is read
// exactly once.
template <bool kMemBuf>
void AccumulateTile16Q(const HistKernelMatrix& m, const HistRowSource& src,
                       uint32_t begin, uint32_t end, int64_t* hist,
                       uint32_t f_begin, uint32_t f_count) {
  const uint32_t* const offsets = m.bin_offsets + f_begin;
  for (uint32_t i = begin; i < end; ++i) {
    if (i + kRowPrefetchDist < end) {
      const uint32_t prid = RowIdAt<kMemBuf>(m, src, i + kRowPrefetchDist);
      HARP_PREFETCH_READ(m.bins + static_cast<size_t>(prid) * m.num_features +
                         f_begin);
      HARP_PREFETCH_READ(m.qgradients + prid);
    }
    const uint32_t rid = RowIdAt<kMemBuf>(m, src, i);
    const int64_t w = WidenQuant(m.qgradients[rid]);
    const uint8_t* row_bins =
        m.bins + static_cast<size_t>(rid) * m.num_features + f_begin;
    for (uint32_t c = 0; c < f_count; c += 16) {
      AccumulateChunk16Q(row_bins + c, offsets + c, w, hist);
    }
  }
}
#endif

template <bool kMemBuf, bool kFullBins>
void AccumulateTileQ(const HistKernelMatrix& m, const HistRowSource& src,
                     uint32_t begin, uint32_t end, int64_t* hist,
                     uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                     uint32_t bin_hi) {
#if defined(__AVX2__)
  if constexpr (kFullBins) {
    if ((f_end - f_begin) % 16 == 0 && f_end > f_begin) {
      AccumulateTile16Q<kMemBuf>(m, src, begin, end, hist, f_begin,
                                 f_end - f_begin);
      return;
    }
  }
#endif
  const uint32_t* const offsets = m.bin_offsets;

  const uint8_t* b[kRowGroup];
  alignas(16) int32_t p[kRowGroup];
  alignas(32) int64_t w[kRowGroup];

  uint32_t i = begin;
  for (; i + kRowGroup <= end; i += kRowGroup) {
    if (i + kRowPrefetchDist + kRowGroup <= end) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        const uint32_t rid = RowIdAt<kMemBuf>(m, src, i + kRowPrefetchDist + u);
        HARP_PREFETCH_READ(m.bins + static_cast<size_t>(rid) * m.num_features +
                           f_begin);
        HARP_PREFETCH_READ(m.qgradients + rid);
      }
    }
    for (uint32_t u = 0; u < kRowGroup; ++u) {
      LoadRowQ<kMemBuf>(m, src, i + u, &b[u], &p[u]);
    }
    WidenQuantGroup(p, w);
    AccumulateGroupQ<kFullBins>(b, w, offsets, hist, f_begin, f_end, bin_lo,
                                bin_hi);
  }
  for (; i < end; ++i) {
    const uint8_t* row_bins;
    int32_t packed;
    LoadRowQ<kMemBuf>(m, src, i, &row_bins, &packed);
    AccumulateOneQ<kFullBins>(row_bins, packed, offsets, hist, f_begin, f_end,
                              bin_lo, bin_hi);
  }
}

template <bool kMemBuf, bool kFullBins, bool kFullFeatures>
void AccumulateRangeQ(const HistKernelMatrix& m, const HistRowSource& src,
                      uint32_t begin, uint32_t end, int64_t* hist, Range fb,
                      Range bins) {
  const uint32_t bin_lo = bins.first;
  const uint32_t bin_hi = bins.second;
  if constexpr (kFullFeatures) {
    const uint32_t nf = m.num_features;
#if defined(__AVX2__)
    if constexpr (kFullBins) {
      // Row-major single pass: every row's bin line is read once and the
      // per-row costs amortize over all nf updates. Bounded so the write
      // window (nf x 256 bins x 8 B worst case) stays L2-resident; wider
      // matrices fall through to the feature-tiled walk.
      if (nf % 16 == 0 && nf <= 256) {
        AccumulateTile16Q<kMemBuf>(m, src, begin, end, hist, 0u, nf);
        return;
      }
    }
#endif
    if (nf <= kFeatureTile) {
      AccumulateTileQ<kMemBuf, kFullBins>(m, src, begin, end, hist, 0u, nf,
                                          bin_lo, bin_hi);
      return;
    }
    for (uint32_t r = begin; r < end; r += kRowTile) {
      const uint32_t r_end = std::min(end, r + kRowTile);
      for (uint32_t f = 0; f < nf; f += kFeatureTile) {
        AccumulateTileQ<kMemBuf, kFullBins>(m, src, r, r_end, hist, f,
                                            std::min(nf, f + kFeatureTile),
                                            bin_lo, bin_hi);
      }
    }
  } else {
    AccumulateTileQ<kMemBuf, kFullBins>(m, src, begin, end, hist, fb.first,
                                        fb.second, bin_lo, bin_hi);
  }
}

// ---------------------------------------------------------------------
// Elementwise companions (quantize / dequantize / replica reduce).
// ---------------------------------------------------------------------

// Round-to-nearest-even quantization of [begin, end) rows. The scalar
// nearbyintf (default FE_TONEAREST mode) and the AVX2 cvtps conversion
// (default MXCSR mode) implement the same rounding, so the two TUs'
// outputs are bit-identical.
void QuantizeRows(const GradientPair* gh, uint32_t begin, uint32_t end,
                  float g_scale, float h_scale, int32_t* out) {
  uint32_t i = begin;
#if defined(__AVX2__)
  // Eight (g, h) pairs per iteration: two 256-bit loads of the
  // interleaved float pairs, one multiply by the (g, h, g, h, ...) scale
  // vector, RNE conversion, then a 64-bit-lane shift/mask pack into
  // (qg << 16) | qh and a cross-lane compaction of the eight packed
  // words.
  const __m256 scale =
      _mm256_setr_ps(g_scale, h_scale, g_scale, h_scale, g_scale, h_scale,
                     g_scale, h_scale);
  const __m256i low16 = _mm256_set1_epi64x(0xFFFF);
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  for (; i + 8 <= end; i += 8) {
    const float* base = reinterpret_cast<const float*>(gh + i);
    const __m256i q0 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_loadu_ps(base), scale));
    const __m256i q1 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_loadu_ps(base + 8), scale));
    // Each 64-bit lane holds (qh << 32) | (uint32)qg; the packed word is
    // ((qg << 16) truncated to 32 bits) | (qh & 0xFFFF), which lands in
    // the lane's low 32 bits.
    const __m256i c0 =
        _mm256_or_si256(_mm256_slli_epi64(q0, 16),
                        _mm256_and_si256(_mm256_srli_epi64(q0, 32), low16));
    const __m256i c1 =
        _mm256_or_si256(_mm256_slli_epi64(q1, 16),
                        _mm256_and_si256(_mm256_srli_epi64(q1, 32), low16));
    const __m128i lo =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(c0, pick));
    const __m128i hi =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(c1, pick));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_set_m128i(hi, lo));
  }
#endif
  for (; i < end; ++i) {
    const int32_t qg = static_cast<int32_t>(std::nearbyintf(gh[i].g * g_scale));
    const int32_t qh = static_cast<int32_t>(std::nearbyintf(gh[i].h * h_scale));
    out[i] = PackQuant(qg, qh);
  }
}

// int64 cells -> f64 GHPairs. Exact both ways of computing it: the cell
// fields are integers < 2^31 and the inverse scales are powers of two, so
// every product is exactly representable and scalar/AVX2 agree bitwise.
void Dequantize(const int64_t* cells, GHPair* out, size_t n, double g_inv,
                double h_inv) {
  size_t i = 0;
#if defined(__AVX2__)
  // Four cells per iteration: split each 64-bit cell into its g (high
  // 32, signed) and h (low 32; < 2^31 by the scale headroom, so the
  // signed int32->double convert is exact) fields, convert, scale, and
  // re-interleave into (g, h) double pairs.
  const __m256i gpick = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
  const __m256i hpick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256d gmul = _mm256_set1_pd(g_inv);
  const __m256d hmul = _mm256_set1_pd(h_inv);
  for (; i + 4 <= n; i += 4) {
    const __m256i c = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cells + i));
    const __m128i g32 =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(c, gpick));
    const __m128i h32 =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(c, hpick));
    const __m256d gd = _mm256_mul_pd(_mm256_cvtepi32_pd(g32), gmul);
    const __m256d hd = _mm256_mul_pd(_mm256_cvtepi32_pd(h32), hmul);
    const __m256d ab = _mm256_unpacklo_pd(gd, hd);  // g0 h0 g2 h2
    const __m256d cd = _mm256_unpackhi_pd(gd, hd);  // g1 h1 g3 h3
    double* dst = reinterpret_cast<double*>(out + i);
    _mm256_storeu_pd(dst, _mm256_permute2f128_pd(ab, cd, 0x20));
    _mm256_storeu_pd(dst + 4, _mm256_permute2f128_pd(ab, cd, 0x31));
  }
#endif
  for (; i < n; ++i) {
    out[i].g = static_cast<double>(CellG(cells[i])) * g_inv;
    out[i].h = static_cast<double>(CellH(cells[i])) * h_inv;
  }
}

// dst[i] += src[i] over n cells: the DP replica reduction in the
// quantized domain (order-independent, so any schedule is bit-identical).
void AddI64(int64_t* dst, const int64_t* src, size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(a, b));
  }
#endif
  for (; i < n; ++i) dst[i] += src[i];
}

#undef HARP_PREFETCH_READ
#undef HARP_PREFETCH_WRITE

}  // namespace

// The includer's table, [membuf][full bins][full features] as
// SelectHistKernel indexes — one instantiation of the whole kernel layer
// at this TU's ISA level.
const HistKernelTables& Tables() {
  static const HistKernelTables tables = [] {
    HistKernelTables t;
    t.f64[0][0][0] = &AccumulateRange<false, false, false>;
    t.f64[0][0][1] = &AccumulateRange<false, false, true>;
    t.f64[0][1][0] = &AccumulateRange<false, true, false>;
    t.f64[0][1][1] = &AccumulateRange<false, true, true>;
    t.f64[1][0][0] = &AccumulateRange<true, false, false>;
    t.f64[1][0][1] = &AccumulateRange<true, false, true>;
    t.f64[1][1][0] = &AccumulateRange<true, true, false>;
    t.f64[1][1][1] = &AccumulateRange<true, true, true>;
    t.quant[0][0][0] = &AccumulateRangeQ<false, false, false>;
    t.quant[0][0][1] = &AccumulateRangeQ<false, false, true>;
    t.quant[0][1][0] = &AccumulateRangeQ<false, true, false>;
    t.quant[0][1][1] = &AccumulateRangeQ<false, true, true>;
    t.quant[1][0][0] = &AccumulateRangeQ<true, false, false>;
    t.quant[1][0][1] = &AccumulateRangeQ<true, false, true>;
    t.quant[1][1][0] = &AccumulateRangeQ<true, true, false>;
    t.quant[1][1][1] = &AccumulateRangeQ<true, true, true>;
    t.quantize_rows = &QuantizeRows;
    t.dequantize = &Dequantize;
    t.add_i64 = &AddI64;
    return t;
  }();
  return tables;
}

}  // namespace HARP_KERNEL_NS
}  // namespace harp
