#include "core/multiclass.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/model_io.h"
#include "core/objective.h"
#include "parallel/thread_pool.h"
#include "predict/flat_forest.h"
#include "predict/predictor.h"

namespace harp {

std::vector<double> MulticlassModel::PredictProbs(const Dataset& dataset,
                                                  ThreadPool* pool) const {
  const int k = num_classes();
  HARP_CHECK_GE(k, 2);
  const uint32_t rows = dataset.num_rows();
  std::vector<double> probs(static_cast<size_t>(rows) * k);

  // One-vs-rest ensembles trained by MulticlassTrainer share a single
  // binned matrix, so every class carries identical cuts: bin the input
  // once and run all k flat traversals on byte comparisons. Hand-
  // assembled models with divergent cuts fall back to per-class raw
  // traversal (same leaf routing either way, so outputs are unchanged).
  bool shared_cuts = true;
  for (int c = 1; c < k && shared_cuts; ++c) {
    const QuantileCuts& a = per_class_[0].cuts();
    const QuantileCuts& b = per_class_[static_cast<size_t>(c)].cuts();
    shared_cuts = a.cut_ptr() == b.cut_ptr() && a.cuts() == b.cuts();
  }
  BinnedMatrix binned;
  if (shared_cuts) binned = per_class_[0].BinDataset(dataset, pool);

  // Per-class transformed scores (each flat forest walk is independent);
  // FlatSnapshot caches each class's flat layout across repeated calls.
  // The transform comes from each class model's objective — sigmoid for
  // the usual one-vs-rest logistic ensembles — instead of a hardcoded
  // sigmoid, so hand-assembled ensembles of other objectives normalize
  // their own score scale.
  for (int c = 0; c < k; ++c) {
    const GbdtModel& class_model = per_class_[static_cast<size_t>(c)];
    const auto objective = Objective::Create(class_model.objective());
    const std::shared_ptr<const FlatForest> flat = class_model.FlatSnapshot();
    const Predictor predictor(*flat);
    const std::vector<double> margins =
        shared_cuts ? predictor.PredictMargins(binned, pool)
                    : predictor.PredictMargins(dataset, pool);
    for (uint32_t r = 0; r < rows; ++r) {
      probs[static_cast<size_t>(r) * k + static_cast<size_t>(c)] =
          objective->Transform(margins[r]);
    }
  }
  // Normalize rows to a distribution.
  for (uint32_t r = 0; r < rows; ++r) {
    double* row = probs.data() + static_cast<size_t>(r) * k;
    double sum = 0.0;
    for (int c = 0; c < k; ++c) sum += row[c];
    if (sum <= 0.0) sum = 1.0;
    for (int c = 0; c < k; ++c) row[c] /= sum;
  }
  return probs;
}

std::vector<int> MulticlassModel::PredictClasses(const Dataset& dataset,
                                                 ThreadPool* pool) const {
  const std::vector<double> probs = PredictProbs(dataset, pool);
  const int k = num_classes();
  std::vector<int> classes(dataset.num_rows());
  for (uint32_t r = 0; r < dataset.num_rows(); ++r) {
    const double* row = probs.data() + static_cast<size_t>(r) * k;
    classes[r] = static_cast<int>(
        std::max_element(row, row + k) - row);
  }
  return classes;
}

MulticlassTrainer::MulticlassTrainer(TrainParams params)
    : params_(std::move(params)) {
  HARP_CHECK(params_.objective == ObjectiveKind::kLogistic)
      << "one-vs-rest uses the logistic objective per class";
  params_.Validate();
}

MulticlassModel MulticlassTrainer::Train(const Dataset& dataset,
                                         TrainStats* stats) {
  int num_classes = 0;
  for (float y : dataset.labels()) {
    HARP_CHECK_GE(y, 0.0f);
    HARP_CHECK_EQ(static_cast<float>(static_cast<int>(y)), y)
        << "labels must be integers";
    num_classes = std::max(num_classes, static_cast<int>(y) + 1);
  }
  HARP_CHECK_GE(num_classes, 2) << "need at least two classes";

  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  const BinnedMatrix matrix = BinnedMatrix::Build(
      dataset, QuantileCuts::Compute(dataset, params_.max_bins, &pool),
      &pool);

  std::vector<GbdtModel> per_class;
  per_class.reserve(static_cast<size_t>(num_classes));
  std::vector<float> binary(dataset.num_rows());
  for (int c = 0; c < num_classes; ++c) {
    for (uint32_t r = 0; r < dataset.num_rows(); ++r) {
      binary[r] = static_cast<int>(dataset.labels()[r]) == c ? 1.0f : 0.0f;
    }
    HarpTreeBuilder builder(matrix, params_, pool);
    per_class.push_back(
        RunBoosting(matrix, binary, params_, pool, builder, stats));
  }
  return MulticlassModel(std::move(per_class));
}

double MulticlassAccuracy(const std::vector<float>& labels,
                          const std::vector<int>& predicted) {
  HARP_CHECK_EQ(labels.size(), predicted.size());
  HARP_CHECK(!labels.empty());
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (static_cast<int>(labels[i]) == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double MulticlassLogLoss(const std::vector<float>& labels,
                         const std::vector<double>& probs, int num_classes) {
  HARP_CHECK_EQ(probs.size(), labels.size() * static_cast<size_t>(num_classes));
  HARP_CHECK(!labels.empty());
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double p = std::clamp(
        probs[i * static_cast<size_t>(num_classes) +
              static_cast<size_t>(labels[i])],
        1e-15, 1.0);
    sum += -std::log(p);
  }
  return sum / static_cast<double>(labels.size());
}

bool SaveMulticlassModel(const std::string& path,
                         const MulticlassModel& model, std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  file << "harpgbdt-multiclass v1 " << model.num_classes() << "\n";
  for (int c = 0; c < model.num_classes(); ++c) {
    const std::string text = SerializeModel(model.class_model(c));
    file << "class " << c << " bytes " << text.size() << "\n" << text;
  }
  if (!file.good()) {
    *error = "write failed for " + path;
    return false;
  }
  return true;
}

bool LoadMulticlassModel(const std::string& path, MulticlassModel* out,
                         std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::string header;
  std::getline(file, header);
  const auto head_parts = SplitWhitespace(header);
  int64_t num_classes = 0;
  if (head_parts.size() != 3 || head_parts[0] != "harpgbdt-multiclass" ||
      head_parts[1] != "v1" || !ParseInt(head_parts[2], &num_classes) ||
      num_classes < 2) {
    *error = "bad multiclass header";
    return false;
  }
  std::vector<GbdtModel> per_class;
  for (int64_t c = 0; c < num_classes; ++c) {
    std::string class_line;
    std::getline(file, class_line);
    const auto parts = SplitWhitespace(class_line);
    int64_t index = 0;
    int64_t bytes = 0;
    if (parts.size() != 4 || parts[0] != "class" ||
        !ParseInt(parts[1], &index) || index != c ||
        parts[2] != "bytes" || !ParseInt(parts[3], &bytes) || bytes <= 0) {
      *error = StrFormat("bad class header for class %lld",
                         static_cast<long long>(c));
      return false;
    }
    std::string text(static_cast<size_t>(bytes), '\0');
    file.read(text.data(), bytes);
    if (!file.good()) {
      *error = "truncated multiclass model";
      return false;
    }
    GbdtModel model;
    if (!DeserializeModel(text, &model, error)) return false;
    per_class.push_back(std::move(model));
  }
  *out = MulticlassModel(std::move(per_class));
  return true;
}

}  // namespace harp
