#include "core/gbdt.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/objective.h"
#include "predict/flat_forest.h"
#include "predict/predictor.h"

namespace harp {
namespace {

// Validation metric (lower is better): logloss for logistic, RMSE for
// squared error. Margins are raw scores.
double EvalMetric(ObjectiveKind kind, const Objective& objective,
                  const std::vector<float>& labels,
                  const std::vector<double>& margins) {
  std::vector<double> predictions(margins.size());
  for (size_t i = 0; i < margins.size(); ++i) {
    predictions[i] = objective.Transform(margins[i]);
  }
  return kind == ObjectiveKind::kLogistic ? LogLoss(labels, predictions)
                                          : Rmse(labels, predictions);
}

}  // namespace

GbdtModel RunBoosting(const BinnedMatrix& matrix,
                      const std::vector<float>& labels,
                      const TrainParams& params, ThreadPool& pool,
                      TreeBuilderBase& builder, TrainStats* stats,
                      const IterCallback& callback, EvalSet* eval) {
  HARP_CHECK_EQ(labels.size(), static_cast<size_t>(matrix.num_rows()));
  params.Validate();

  const auto objective = Objective::Create(params.objective);
  const double base_margin = objective->InitialMargin(params.base_score);
  GbdtModel model(params.objective, base_margin, matrix.cuts());

  std::vector<double> margins(labels.size(), base_margin);
  std::vector<GradientPair> gradients;

  const bool row_sampling = params.subsample < 1.0;
  const bool col_sampling = params.colsample_bytree < 1.0;
  std::vector<uint8_t> column_mask;
  std::vector<double> eval_margins;
  if (eval != nullptr) {
    HARP_CHECK(eval->data != nullptr);
    eval->history.clear();
    eval->best_iteration = -1;
    eval_margins.assign(eval->data->num_rows(), base_margin);
  }

  const SyncSnapshot sync_before = pool.Snapshot();
  const Stopwatch total_watch;

  for (int iter = 0; iter < params.num_trees; ++iter) {
    const Stopwatch tree_watch;

    {
      const Stopwatch watch;
      objective->ComputeGradients(labels, margins, &gradients, &pool);
      if (row_sampling) {
        // Rows outside the sample contribute nothing to this tree's
        // statistics; zeroed gradients keep every partitioner code path
        // unchanged. Deterministic per (seed, iteration, row).
        pool.ParallelFor(
            static_cast<int64_t>(gradients.size()),
            [&](int64_t begin, int64_t end, int) {
              for (int64_t r = begin; r < end; ++r) {
                Rng rng(params.seed ^
                        (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(iter)) ^
                        static_cast<uint64_t>(r) * 0xD1B54A32D192ED03ULL);
                if (!rng.Bernoulli(params.subsample)) {
                  gradients[static_cast<size_t>(r)] = GradientPair{};
                }
              }
            });
      }
      if (stats != nullptr) stats->gradient_ns += watch.ElapsedNs();
    }

    if (col_sampling) {
      Rng rng(params.seed + 0xC01u + static_cast<uint64_t>(iter));
      column_mask.assign(matrix.num_features(), 0);
      uint32_t kept = 0;
      for (auto& bit : column_mask) {
        bit = rng.Bernoulli(params.colsample_bytree) ? 1 : 0;
        kept += bit;
      }
      if (kept == 0) column_mask[rng.NextBelow(column_mask.size())] = 1;
      builder.SetColumnMask(&column_mask);
    }

    RegTree tree = builder.BuildTree(gradients, stats);

    {
      const Stopwatch watch;
      builder.UpdateMargins(tree, &margins);
      if (stats != nullptr) stats->update_ns += watch.ElapsedNs();
    }

    const double tree_seconds = tree_watch.ElapsedSec();
    if (stats != nullptr) {
      stats->tree_seconds.push_back(tree_seconds);
      ++stats->trees;
    }
    model.AddTree(std::move(tree));
    if (callback) {
      callback(IterationInfo{iter, model.trees().back(), margins,
                             tree_seconds});
    }

    if (eval != nullptr) {
      // Fold only the newest tree into the held-out margins: flatten it
      // alone and accumulate block-wise (margins[r] += leaf, the same
      // operation order as walking the tree per row).
      const FlatForest last_flat =
          FlatForest::BuildFromTrees(&model.trees().back(), 1);
      Predictor(last_flat).AccumulateMargins(*eval->data,
                                             eval_margins.data(), 0, 1,
                                             &pool);
      const double metric = EvalMetric(params.objective, *objective,
                                       eval->data->labels(), eval_margins);
      eval->history.push_back(metric);
      if (eval->best_iteration < 0 || metric < eval->best_metric) {
        eval->best_iteration = iter;
        eval->best_metric = metric;
      }
      if (eval->early_stopping_rounds > 0 &&
          iter - eval->best_iteration >= eval->early_stopping_rounds) {
        break;
      }
    }
  }
  builder.SetColumnMask(nullptr);

  if (stats != nullptr) {
    stats->wall_ns += total_watch.ElapsedNs();
    stats->sync = pool.Snapshot() - sync_before;
  }
  return model;
}

GbdtTrainer::GbdtTrainer(TrainParams params) : params_(std::move(params)) {
  params_.Validate();
}

GbdtModel GbdtTrainer::Train(const Dataset& dataset, TrainStats* stats,
                             const IterCallback& callback, EvalSet* eval,
                             IngestStats* ingest) {
  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  const Stopwatch sketch_watch;
  QuantileCuts cuts = QuantileCuts::Compute(dataset, params_.max_bins, &pool);
  if (ingest != nullptr) ingest->sketch_ns = sketch_watch.ElapsedNs();
  const Stopwatch bin_watch;
  const BinnedMatrix matrix =
      BinnedMatrix::Build(dataset, std::move(cuts), &pool);
  if (ingest != nullptr) ingest->bin_ns = bin_watch.ElapsedNs();
  HarpTreeBuilder builder(matrix, params_, pool);
  return RunBoosting(matrix, dataset.labels(), params_, pool, builder, stats,
                     callback, eval);
}

GbdtModel GbdtTrainer::TrainBinned(const BinnedMatrix& matrix,
                                   const std::vector<float>& labels,
                                   TrainStats* stats,
                                   const IterCallback& callback,
                                   EvalSet* eval) {
  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  HarpTreeBuilder builder(matrix, params_, pool);
  return RunBoosting(matrix, labels, params_, pool, builder, stats, callback,
                     eval);
}

}  // namespace harp
