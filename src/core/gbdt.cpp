#include "core/gbdt.h"

#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/mmap_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/objective.h"
#include "data/row_block_prefetcher.h"
#include "predict/flat_forest.h"
#include "predict/predictor.h"

namespace harp {

GbdtModel RunBoosting(const BinnedMatrix& matrix,
                      const std::vector<float>& labels,
                      const TrainParams& params, ThreadPool& pool,
                      TreeBuilderBase& builder, TrainStats* stats,
                      const IterCallback& callback, EvalSet* eval) {
  HARP_CHECK_EQ(labels.size(), static_cast<size_t>(matrix.num_rows()));
  params.Validate();

  const auto objective = Objective::Create(Objective::ConfigFromParams(params));
  if (objective->NeedsGroups()) {
    HARP_CHECK(matrix.has_groups())
        << "objective '" << ToString(params.objective)
        << "' requires query groups (qid: columns in the training data)";
  }
  const double base_margin = objective->InitialMargin(params.base_score);
  GbdtModel model(params.objective, base_margin, matrix.cuts());
  if (params.objective == ObjectiveKind::kQuantile) {
    model.set_quantile_alpha(params.quantile_alpha);
  }

  GradientContext grad_ctx;
  std::vector<double> margins(labels.size(), base_margin);
  std::vector<GradientPair> gradients;
  grad_ctx.labels = &labels;
  grad_ctx.margins = &margins;
  grad_ctx.group_ptr = matrix.has_groups() ? &matrix.group_ptr() : nullptr;

  const bool row_sampling = params.subsample < 1.0;
  const bool col_sampling = params.colsample_bytree < 1.0;
  std::vector<uint8_t> column_mask;
  std::vector<double> eval_margins;
  std::vector<double> eval_predictions;
  std::unique_ptr<Metric> metric_fn;
  if (eval != nullptr) {
    HARP_CHECK(eval->data != nullptr);
    eval->history.clear();
    eval->best_iteration = -1;
    eval_margins.assign(eval->data->num_rows(), base_margin);
    MetricConfig metric_config;
    metric_config.quantile_alpha = params.quantile_alpha;
    metric_config.ndcg_k = params.ndcg_k;
    std::string name = !eval->metric.empty() ? eval->metric
                       : !params.eval_metric.empty()
                           ? params.eval_metric
                           : Metric::DefaultName(params.objective,
                                                 metric_config);
    metric_fn = Metric::Create(name, metric_config);
    eval->metric_name = metric_fn->name();
    eval->higher_is_better = metric_fn->higher_is_better();
    if (metric_fn->needs_groups()) {
      HARP_CHECK(eval->data->has_groups())
          << "metric '" << eval->metric_name
          << "' requires query groups in the validation data";
    }
  }

  // Out-of-core mode: when the bin matrix lives in a file mapping, run the
  // background sweep that bounds resident set, and record fault/RSS deltas
  // so the streaming cost shows up in the report.
  std::unique_ptr<RowBlockPrefetcher> prefetcher;
  FaultCounts faults_before;
  if (matrix.IsMapped()) {
    faults_before = ProcessFaults();
    if (params.stream_prefetch) {
      prefetcher = std::make_unique<RowBlockPrefetcher>(
          matrix.storage(),
          static_cast<size_t>(params.prefetch_window_bytes));
      prefetcher->Start();
    }
  }

  const SyncSnapshot sync_before = pool.Snapshot();
  const Stopwatch total_watch;

  for (int iter = 0; iter < params.num_trees; ++iter) {
    const Stopwatch tree_watch;

    {
      const Stopwatch watch;
      objective->ComputeGradients(grad_ctx, &gradients, &pool);
      if (row_sampling) {
        // Rows outside the sample contribute nothing to this tree's
        // statistics; zeroed gradients keep every partitioner code path
        // unchanged. Deterministic per (seed, iteration, row).
        pool.ParallelFor(
            static_cast<int64_t>(gradients.size()),
            [&](int64_t begin, int64_t end, int) {
              for (int64_t r = begin; r < end; ++r) {
                Rng rng(params.seed ^
                        (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(iter)) ^
                        static_cast<uint64_t>(r) * 0xD1B54A32D192ED03ULL);
                if (!rng.Bernoulli(params.subsample)) {
                  gradients[static_cast<size_t>(r)] = GradientPair{};
                }
              }
            });
      }
      if (stats != nullptr) stats->gradient_ns += watch.ElapsedNs();
    }

    if (col_sampling) {
      Rng rng(params.seed + 0xC01u + static_cast<uint64_t>(iter));
      column_mask.assign(matrix.num_features(), 0);
      uint32_t kept = 0;
      for (auto& bit : column_mask) {
        bit = rng.Bernoulli(params.colsample_bytree) ? 1 : 0;
        kept += bit;
      }
      if (kept == 0) column_mask[rng.NextBelow(column_mask.size())] = 1;
      builder.SetColumnMask(&column_mask);
    }

    RegTree tree = builder.BuildTree(gradients, stats);

    {
      const Stopwatch watch;
      builder.UpdateMargins(tree, &margins);
      if (stats != nullptr) stats->update_ns += watch.ElapsedNs();
    }

    const double tree_seconds = tree_watch.ElapsedSec();
    if (stats != nullptr) {
      stats->tree_seconds.push_back(tree_seconds);
      ++stats->trees;
    }
    model.AddTree(std::move(tree));
    if (prefetcher != nullptr) prefetcher->Pulse();
    if (callback) {
      callback(IterationInfo{iter, model.trees().back(), margins,
                             tree_seconds});
    }

    if (eval != nullptr) {
      // Fold only the newest tree into the held-out margins: flatten it
      // alone and accumulate block-wise (margins[r] += leaf, the same
      // operation order as walking the tree per row).
      const FlatForest last_flat =
          FlatForest::BuildFromTrees(&model.trees().back(), 1);
      Predictor(last_flat).AccumulateMargins(*eval->data,
                                             eval_margins.data(), 0, 1,
                                             &pool);
      eval_predictions.resize(eval_margins.size());
      for (size_t i = 0; i < eval_margins.size(); ++i) {
        eval_predictions[i] = objective->Transform(eval_margins[i]);
      }
      const double metric = metric_fn->Evaluate(
          eval->data->labels(), eval_predictions,
          eval->data->has_groups() ? &eval->data->group_ptr() : nullptr);
      eval->history.push_back(metric);
      const bool improved = eval->best_iteration < 0 ||
                            (eval->higher_is_better
                                 ? metric > eval->best_metric
                                 : metric < eval->best_metric);
      if (improved) {
        eval->best_iteration = iter;
        eval->best_metric = metric;
      }
      if (eval->early_stopping_rounds > 0 &&
          iter - eval->best_iteration >= eval->early_stopping_rounds) {
        break;
      }
    }
  }
  builder.SetColumnMask(nullptr);

  if (prefetcher != nullptr) prefetcher->Stop();
  if (stats != nullptr) {
    stats->wall_ns += total_watch.ElapsedNs();
    stats->sync = pool.Snapshot() - sync_before;
    if (matrix.IsMapped()) {
      stats->mapped_bytes = matrix.MappedBytes();
      const FaultCounts faults_after = ProcessFaults();
      stats->minor_faults += faults_after.minor - faults_before.minor;
      stats->major_faults += faults_after.major - faults_before.major;
      stats->peak_rss_bytes = PeakRssBytes();
      if (prefetcher != nullptr) {
        const RowBlockPrefetcher::Stats ps = prefetcher->GetStats();
        stats->oo_advised_bytes += ps.advised_bytes;
        stats->oo_retired_bytes += ps.retired_bytes;
        stats->oo_sweeps += ps.sweeps;
      }
    }
  }
  return model;
}

GbdtTrainer::GbdtTrainer(TrainParams params) : params_(std::move(params)) {
  params_.Validate();
}

GbdtModel GbdtTrainer::Train(const Dataset& dataset, TrainStats* stats,
                             const IterCallback& callback, EvalSet* eval,
                             IngestStats* ingest) {
  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  const Stopwatch sketch_watch;
  QuantileCuts cuts = QuantileCuts::Compute(dataset, params_.max_bins, &pool);
  if (ingest != nullptr) ingest->sketch_ns = sketch_watch.ElapsedNs();
  const Stopwatch bin_watch;
  const BinnedMatrix matrix =
      BinnedMatrix::Build(dataset, std::move(cuts), &pool);
  if (ingest != nullptr) ingest->bin_ns = bin_watch.ElapsedNs();
  HarpTreeBuilder builder(matrix, params_, pool);
  return RunBoosting(matrix, dataset.labels(), params_, pool, builder, stats,
                     callback, eval);
}

GbdtModel GbdtTrainer::TrainBinned(const BinnedMatrix& matrix,
                                   const std::vector<float>& labels,
                                   TrainStats* stats,
                                   const IterCallback& callback,
                                   EvalSet* eval) {
  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  HarpTreeBuilder builder(matrix, params_, pool);
  return RunBoosting(matrix, labels, params_, pool, builder, stats, callback,
                     eval);
}

}  // namespace harp
