#include "core/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "core/hist_kernels.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

// Chunk size for the deterministic scale scan: per-chunk partial maxima /
// sums are combined serially in chunk order, so the result is independent
// of thread count and schedule.
constexpr uint32_t kScaleChunk = 4096;

struct ChunkStats {
  float g_max = 0.0f;
  float h_max = 0.0f;
  double g_sum = 0.0;  // sum of |g| over the chunk
  double h_sum = 0.0;
};

// Largest exponent k with 2^k * max_abs <= fit_limit and
// 2^k * sum_abs + n <= kQuantSumLimit. The +n slack covers worst-case
// rounding drift: deterministic rounding moves each row by at most 1/2,
// stochastic by at most 1 — one whole unit per row bounds both modes.
// The exponent is clamped to a range where 2^k is a normal float/double
// (so g_scale / g_inv never overflow, underflow, or lose exactness).
int PickExponent(double max_abs, double sum_abs, double fit_limit, double n) {
  constexpr int kMinExp = -126;
  constexpr int kMaxExp = 126;
  if (max_abs <= 0.0) return kMaxExp;  // all-zero stream: any scale is exact
  const double sum_room = kQuantSumLimit - n;
  HARP_CHECK_GT(sum_room, 0.0) << "too many rows for 32-bit histogram cells";
  int k = kMaxExp;
  while (k > kMinExp &&
         (std::ldexp(max_abs, k) > fit_limit ||
          std::ldexp(sum_abs, k) > sum_room)) {
    --k;
  }
  return k;
}

// 2^32-periodic mix of (seed, row): SplitMix64's finalizer, whose low bits
// are well distributed. Drives the stochastic-rounding threshold.
inline uint64_t HashRow(uint64_t seed, uint64_t row) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (row + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Stochastic rounding of v: floor(v) + Bernoulli(frac(v)), i.e. round up
// with probability equal to the fractional part. Unbiased: E[result] = v.
inline int32_t StochasticRound(float v, uint64_t hash) {
  const float f = std::floor(v);
  const float frac = v - f;
  // Compare against a uniform in [0, 1) derived from the hash's top bits.
  const float u =
      static_cast<float>(hash >> 40) * (1.0f / 16777216.0f);  // 2^-24
  return static_cast<int32_t>(f) + (u < frac ? 1 : 0);
}

}  // namespace

QuantStats ComputeQuantStats(const std::vector<GradientPair>& gradients,
                             ThreadPool* pool) {
  const size_t n = gradients.size();
  const size_t num_chunks = (n + kScaleChunk - 1) / kScaleChunk;
  std::vector<ChunkStats> partials(num_chunks);
  auto scan_chunk = [&](size_t c) {
    const size_t begin = c * kScaleChunk;
    const size_t end = std::min(n, begin + kScaleChunk);
    ChunkStats s;
    for (size_t i = begin; i < end; ++i) {
      const float ag = std::fabs(gradients[i].g);
      const float h = gradients[i].h;
      HARP_CHECK_GE(h, 0.0f) << "negative hessian at row " << i;
      s.g_max = std::max(s.g_max, ag);
      s.h_max = std::max(s.h_max, h);
      s.g_sum += static_cast<double>(ag);
      s.h_sum += static_cast<double>(h);
    }
    partials[c] = s;
  };
  if (pool != nullptr && num_chunks > 1) {
    pool->ParallelFor(static_cast<int64_t>(num_chunks),
                      [&](int64_t begin, int64_t end, int) {
                        for (int64_t c = begin; c < end; ++c) {
                          scan_chunk(static_cast<size_t>(c));
                        }
                      });
  } else {
    for (size_t c = 0; c < num_chunks; ++c) scan_chunk(c);
  }
  ChunkStats total;
  for (const ChunkStats& s : partials) {
    total.g_max = std::max(total.g_max, s.g_max);
    total.h_max = std::max(total.h_max, s.h_max);
    total.g_sum += s.g_sum;
    total.h_sum += s.h_sum;
  }

  QuantStats stats;
  stats.g_max = static_cast<double>(total.g_max);
  stats.h_max = static_cast<double>(total.h_max);
  stats.g_sum = total.g_sum;
  stats.h_sum = total.h_sum;
  stats.rows = static_cast<double>(n);
  return stats;
}

QuantScales QuantScalesFromStats(const QuantStats& stats) {
  QuantScales scales;
  scales.g_exp = PickExponent(stats.g_max, stats.g_sum,
                              static_cast<double>(kQuantGMax), stats.rows);
  scales.h_exp = PickExponent(stats.h_max, stats.h_sum,
                              static_cast<double>(kQuantHMax), stats.rows);
  scales.g_scale = std::ldexp(1.0f, scales.g_exp);
  scales.h_scale = std::ldexp(1.0f, scales.h_exp);
  scales.g_inv = std::ldexp(1.0, -scales.g_exp);
  scales.h_inv = std::ldexp(1.0, -scales.h_exp);
  return scales;
}

QuantScales ComputeQuantScales(const std::vector<GradientPair>& gradients,
                               ThreadPool* pool) {
  return QuantScalesFromStats(ComputeQuantStats(gradients, pool));
}

void QuantizeGradients(const std::vector<GradientPair>& gradients,
                       const QuantScales& scales, bool stochastic,
                       uint64_t seed, int simd_level, ThreadPool* pool,
                       AlignedVector<int32_t>* out) {
  const size_t n = gradients.size();
  out->resize(n);
  if (n == 0) return;
  const GradientPair* gh = gradients.data();
  int32_t* dst = out->data();

  if (stochastic) {
    // Scalar-only: row-hashed rounding, identical for every thread count
    // and dispatch level. Clamped to the fit range — stochastic rounding
    // may round UP past the deterministic fit bound (the +n sum slack in
    // PickExponent already budgets for the extra unit).
    const float gs = scales.g_scale;
    const float hs = scales.h_scale;
    auto quantize_range = [&](int64_t begin, int64_t end) {
      constexpr int32_t kGMax = 32767;
      constexpr int32_t kHMax = 65535;
      for (int64_t i = begin; i < end; ++i) {
        const uint64_t hash = HashRow(seed, static_cast<uint64_t>(i));
        int32_t qg = StochasticRound(gh[i].g * gs, hash);
        // Independent threshold for h: reuse the hash's other half.
        int32_t qh = StochasticRound(gh[i].h * hs,
                                     hash * 0xDA942042E4DD58B5ull);
        qg = std::clamp(qg, -kGMax, kGMax);
        qh = std::clamp(qh, 0, kHMax);
        dst[i] = PackQuant(qg, qh);
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<int64_t>(n),
                        [&](int64_t begin, int64_t end, int) {
                          quantize_range(begin, end);
                        });
    } else {
      quantize_range(0, static_cast<int64_t>(n));
    }
    return;
  }

  const HistKernelTables& tables =
      KernelTables(static_cast<SimdLevel>(simd_level));
  auto quantize_range = [&](int64_t begin, int64_t end) {
    tables.quantize_rows(gh, static_cast<uint32_t>(begin),
                         static_cast<uint32_t>(end), scales.g_scale,
                         scales.h_scale, dst);
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(n),
                      [&](int64_t begin, int64_t end, int) {
                        quantize_range(begin, end);
                      });
  } else {
    quantize_range(0, static_cast<int64_t>(n));
  }
}

void DequantizeHistogram(const int64_t* cells, GHPair* out, size_t n,
                         const QuantScales& scales, int simd_level) {
  KernelTables(static_cast<SimdLevel>(simd_level))
      .dequantize(cells, out, n, scales.g_inv, scales.h_inv);
}

void AddHistogramI64(int64_t* dst, const int64_t* src, size_t n,
                     int simd_level) {
  KernelTables(static_cast<SimdLevel>(simd_level)).add_i64(dst, src, n);
}

void ClearHistogramI64(int64_t* cells, size_t n) {
  if (n != 0) std::memset(cells, 0, n * sizeof(int64_t));
}

}  // namespace harp
