// Tree growth policies: the priority queue of Algorithm 1 with the pop
// rule parameterized (Section IV-B).
//
//   depthwise: pop every candidate of the shallowest open depth (level
//              order; same tree as classic depthwise growth).
//   leafwise:  pop the single candidate with the largest loss change.
//   topk:      pop the best K candidates (the paper's new method;
//              K=1 degenerates to leafwise).
#pragma once

#include <vector>

#include "core/params.h"
#include "core/split.h"

namespace harp {

// A leaf with a valid split waiting to be applied.
struct Candidate {
  int node_id = -1;
  int depth = 0;
  SplitInfo split;
};

class GrowQueue {
 public:
  explicit GrowQueue(GrowPolicy policy) : policy_(policy) {}

  void Push(const Candidate& candidate) { heap_.push_back(candidate); FixUp(); }
  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // Pops the next batch per the policy; `k` is the TopK budget (ignored by
  // depthwise/leafwise). `max_batch` additionally caps the batch (the
  // remaining leaf budget). Never returns an empty vector unless empty.
  std::vector<Candidate> PopBatch(int k, int max_batch);

  // Same pop rule, appending into `out` (cleared first) so steady-state
  // growth can reuse one batch vector instead of allocating per step.
  void PopBatchInto(int k, int max_batch, std::vector<Candidate>* out);

  // Drops all queued candidates (start of a new tree on a reused queue).
  void Clear() { heap_.clear(); }

 private:
  // Ordering: depthwise prefers shallower depth (then node id) so whole
  // levels drain in order; gain-based policies prefer larger gain with
  // the deterministic SplitInfo tie-break.
  bool Before(const Candidate& a, const Candidate& b) const;
  void FixUp();
  Candidate PopTop();

  GrowPolicy policy_;
  std::vector<Candidate> heap_;  // binary heap ordered by Before()
};

}  // namespace harp
