// ASYNC growth (Section IV-D): every candidate node is one task; worker
// threads pop the best available candidate from a shared spin-mutex-guarded
// priority queue, do the node's ApplySplit + BuildHist + FindSplit
// themselves, and push the children — no parallel-for barriers at all.
// This is the paper's "loosely coupled TopK": K threads each take the best
// candidate they can get, so no global synchronization selects a strict
// top-K set.
#include <atomic>

#include "common/logging.h"
#include "common/timer.h"
#include "core/tree_builder.h"
#include "parallel/spin_mutex.h"
#include "parallel/work_queue.h"

namespace harp {
namespace {

// Pop order for the shared queue: larger gain first, deterministic
// node-id tie-break.
struct CandidateWorse {
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.split.gain != b.split.gain) return a.split.gain < b.split.gain;
    return a.node_id > b.node_id;
  }
};

// Per-worker phase accounting, padded against false sharing.
struct alignas(64) WorkerPhase {
  int64_t build_ns = 0;
  int64_t find_ns = 0;
  int64_t apply_ns = 0;
  int64_t starve_ns = 0;  // empty-queue spinning, reclassified as wait
  int64_t hist_updates = 0;
};

}  // namespace

void HarpTreeBuilder::AsyncGrow(RegTree& tree, GrowQueue& queue,
                                int64_t& leaves, TrainStats* stats) {
  const int64_t max_leaves = params_.MaxLeaves();
  const int max_depth = params_.MaxDepth();
  const uint32_t num_features = matrix_.num_features();

  // Phase 1 (the leading "X" of mix mode (X, node parallelism, X)): grow
  // batch-synchronously with DP until there is at least one candidate per
  // thread, so node-level parallelism has enough width.
  const size_t ramp_target = static_cast<size_t>(pool_.num_threads());
  SyncGrow(tree, queue, leaves, stats,
           [&] { return queue.Size() >= ramp_target; });
  if (queue.Empty() || leaves >= max_leaves) return;

  // Phase 2: node-parallel. Move the remaining candidates into the shared
  // queue.
  SharedPriorityQueue<Candidate, CandidateWorse> shared;
  WorkTracker tracker;
  while (!queue.Empty()) {
    for (const Candidate& cand : queue.PopBatch(1 << 20, 1 << 20)) {
      shared.Push(cand);
      tracker.Add();
    }
  }

  const int64_t initial_leaves = leaves;
  std::atomic<int64_t> leaf_count{leaves};
  SpinMutex tree_mutex;
  std::vector<WorkerPhase> phase(
      static_cast<size_t>(pool_.num_threads()));
  const BuildContext ctx = Context();

  pool_.RunOnAllThreads([&](int thread_id) {
    WorkerPhase& ph = phase[static_cast<size_t>(thread_id)];
    for (;;) {
      Candidate cand;
      if (!shared.TryPop(&cand)) {
        if (tracker.Quiescent()) break;
        const int64_t starve_start = NowNs();
        std::this_thread::yield();
        ph.starve_ns += NowNs() - starve_start;
        continue;
      }

      // Claim one unit of the leaf budget; failure means the tree is full
      // and this candidate stays a leaf.
      int64_t current = leaf_count.load(std::memory_order_relaxed);
      bool claimed = false;
      while (current < max_leaves) {
        if (leaf_count.compare_exchange_weak(current, current + 1,
                                             std::memory_order_acq_rel)) {
          claimed = true;
          break;
        }
      }
      if (!claimed) {
        tracker.Done();
        continue;
      }

      // --- ApplySplit: tree mutation under the spin mutex, row partition
      // outside it. Workers use the partitioner's serial path (pool ==
      // nullptr): disjoint nodes own disjoint arena windows in both
      // buffers and the serial path keeps its scratch thread-local, so
      // concurrent partitions of distinct nodes never share state.
      const int64_t apply_start = NowNs();
      int left = -1;
      int right = -1;
      {
        std::lock_guard<SpinMutex> lock(tree_mutex);
        const float cut =
            matrix_.cuts().CutFor(cand.split.feature, cand.split.bin);
        const auto ids = tree.ApplySplit(cand.node_id, cand.split, cut);
        left = ids.first;
        right = ids.second;
      }
      partitioner_.ApplySplit(cand.node_id, left, right, matrix_,
                              cand.split.feature, cand.split.bin,
                              cand.split.default_left, nullptr);
      const uint32_t left_rows = partitioner_.NodeSize(left);
      const uint32_t right_rows = partitioner_.NodeSize(right);
      {
        std::lock_guard<SpinMutex> lock(tree_mutex);
        tree.mutable_node(left).num_rows = left_rows;
        tree.mutable_node(right).num_rows = right_rows;
      }
      ph.apply_ns += NowNs() - apply_start;

      // --- BuildHist: this worker scans both children alone (the whole
      // node is one task).
      const int64_t build_start = NowNs();
      GHPair* left_hist = hists_.Acquire(left);
      GHPair* right_hist = hists_.Acquire(right);
      BuildHistSerial(ctx, left, left_hist);
      BuildHistSerial(ctx, right, right_hist);
      ph.hist_updates += static_cast<int64_t>(left_rows + right_rows) *
                         static_cast<int64_t>(num_features);
      ph.build_ns += NowNs() - build_start;

      // --- FindSplit for both children.
      const int64_t find_start = NowNs();
      const GHPair left_sum = cand.split.left_sum;
      const GHPair right_sum = cand.split.right_sum;
      const uint8_t* mask =
          column_mask_ != nullptr ? column_mask_->data() : nullptr;
      const SplitInfo left_split = evaluator_.FindBestSplit(
          matrix_, left_hist, left_sum, 0, num_features, mask);
      const SplitInfo right_split = evaluator_.FindBestSplit(
          matrix_, right_hist, right_sum, 0, num_features, mask);
      ph.find_ns += NowNs() - find_start;

      hists_.Release(left);
      hists_.Release(right);

      const int child_depth = cand.depth + 1;
      if (left_split.IsValid() && child_depth < max_depth) {
        tracker.Add();
        shared.Push(Candidate{left, child_depth, left_split});
      }
      if (right_split.IsValid() && child_depth < max_depth) {
        tracker.Add();
        shared.Push(Candidate{right, child_depth, right_split});
      }
      tracker.Done();
      pool_.CountTask(thread_id);
    }
  });

  leaves = leaf_count.load(std::memory_order_relaxed);
  if (stats != nullptr) stats->nodes_split += leaves - initial_leaves;

  // Fold worker phase times (thread-time, phases overlap across workers)
  // and the spin-lock contention into the shared accounting. Starvation
  // spinning is moved from busy to wait so utilization stays honest.
  for (size_t t = 0; t < phase.size(); ++t) {
    const WorkerPhase& ph = phase[t];
    build_ns_ += ph.build_ns;
    find_ns_ += ph.find_ns;
    apply_ns_ += ph.apply_ns;
    hist_updates_ += ph.hist_updates;
    pool_.ReclassifyBusyAsWait(static_cast<int>(t), ph.starve_ns);
  }
  pool_.AddSpinCounters(shared.LockCounters());
  pool_.AddSpinCounters(tree_mutex.GetCounters());
}

}  // namespace harp
