// Multiclass classification via one-vs-rest binary ensembles.
//
// The paper's system (like XGBoost's multi:softmax at heart) trains one
// tree ensemble per class on shared binned data. Binning is done once;
// each class reuses the matrix, so the parallel-efficiency machinery is
// exercised identically to the binary case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/gbdt.h"
#include "core/model.h"
#include "core/params.h"

namespace harp {

class MulticlassModel {
 public:
  MulticlassModel() = default;
  explicit MulticlassModel(std::vector<GbdtModel> per_class)
      : per_class_(std::move(per_class)) {}

  int num_classes() const { return static_cast<int>(per_class_.size()); }
  const GbdtModel& class_model(int c) const {
    return per_class_[static_cast<size_t>(c)];
  }

  // Row-major N x num_classes probabilities (per-class sigmoid scores
  // normalized to sum to 1). When every class shares the training-time
  // cuts (always true for MulticlassTrainer output), the input is binned
  // once and all k ensembles run the flat binned Predictor on it.
  std::vector<double> PredictProbs(const Dataset& dataset,
                                   ThreadPool* pool = nullptr) const;

  // Argmax class per row.
  std::vector<int> PredictClasses(const Dataset& dataset,
                                  ThreadPool* pool = nullptr) const;

  std::vector<GbdtModel>& mutable_per_class() { return per_class_; }

 private:
  std::vector<GbdtModel> per_class_;
};

class MulticlassTrainer {
 public:
  // params.objective must be kLogistic (per-class binary loss).
  explicit MulticlassTrainer(TrainParams params);

  // Labels must be integers 0..num_classes-1 (num_classes inferred as
  // max label + 1; must be >= 2). Bins once, trains one ensemble per
  // class.
  MulticlassModel Train(const Dataset& dataset,
                        TrainStats* stats = nullptr);

 private:
  TrainParams params_;
};

// Fraction of rows whose argmax class matches the integer label.
double MulticlassAccuracy(const std::vector<float>& labels,
                          const std::vector<int>& predicted);

// Mean negative log of the true class's normalized probability.
double MulticlassLogLoss(const std::vector<float>& labels,
                         const std::vector<double>& probs, int num_classes);

// File persistence: concatenated per-class models with a small header.
bool SaveMulticlassModel(const std::string& path,
                         const MulticlassModel& model, std::string* error);
bool LoadMulticlassModel(const std::string& path, MulticlassModel* out,
                         std::string* error);

}  // namespace harp
