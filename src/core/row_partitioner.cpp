#include "core/row_partitioner.h"

#include <algorithm>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

// Predicate shared by all partition paths: does this row go left?
inline bool GoesLeft(const BinnedMatrix& matrix, uint32_t rid,
                     uint32_t feature, uint32_t split_bin,
                     bool default_left) {
  const uint8_t bin = matrix.RowBins(rid)[feature];
  return (bin == 0) ? default_left : (bin <= split_bin);
}

}  // namespace

void RowPartitioner::Reset(const std::vector<GradientPair>& gradients,
                           int max_nodes, ThreadPool* pool) {
  HARP_CHECK_EQ(gradients.size(), static_cast<size_t>(num_rows_));
  HARP_CHECK_GE(max_nodes, 1);
  gradients_ = &gradients;
  max_nodes_ = max_nodes;
  entries_.clear();
  row_ids_.clear();
  if (use_membuf_) {
    entries_.resize(static_cast<size_t>(max_nodes));
    auto& root = entries_[0];
    root.resize(num_rows_);
    auto fill = [&](int64_t begin, int64_t end, int) {
      for (int64_t r = begin; r < end; ++r) {
        const auto i = static_cast<size_t>(r);
        root[i] = MemBufEntry{static_cast<uint32_t>(r), gradients[i].g,
                              gradients[i].h};
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(num_rows_, fill);
    } else {
      fill(0, num_rows_, 0);
    }
  } else {
    row_ids_.resize(static_cast<size_t>(max_nodes));
    auto& root = row_ids_[0];
    root.resize(num_rows_);
    for (uint32_t r = 0; r < num_rows_; ++r) root[r] = r;
  }
}

void RowPartitioner::CheckNode(int node_id) const {
  HARP_CHECK_GE(node_id, 0);
  HARP_CHECK_LT(node_id, max_nodes_);
}

uint32_t RowPartitioner::NodeSize(int node_id) const {
  CheckNode(node_id);
  const size_t idx = static_cast<size_t>(node_id);
  return static_cast<uint32_t>(use_membuf_ ? entries_[idx].size()
                                           : row_ids_[idx].size());
}

std::span<const uint32_t> RowPartitioner::NodeRowIds(int node_id) const {
  CheckNode(node_id);
  HARP_CHECK(!use_membuf_);
  return row_ids_[static_cast<size_t>(node_id)];
}

std::span<const MemBufEntry> RowPartitioner::NodeEntries(int node_id) const {
  CheckNode(node_id);
  HARP_CHECK(use_membuf_);
  return entries_[static_cast<size_t>(node_id)];
}

GHPair RowPartitioner::NodeSum(int node_id, ThreadPool* pool) const {
  CheckNode(node_id);
  const uint32_t n = NodeSize(node_id);
  if (pool == nullptr || n < 4096) {
    GHPair sum;
    ForEachRow(node_id, [&](uint32_t, float g, float h) { sum.Add(g, h); });
    return sum;
  }
  std::vector<GHPair> partial(static_cast<size_t>(pool->num_threads()) * 8);
  pool->ParallelFor(n, [&](int64_t begin, int64_t end, int thread_id) {
    GHPair local;
    ForEachRowRange(node_id, static_cast<uint32_t>(begin),
                    static_cast<uint32_t>(end),
                    [&](uint32_t, float g, float h) { local.Add(g, h); });
    partial[static_cast<size_t>(thread_id) * 8] = local;
  });
  GHPair sum;
  for (int t = 0; t < pool->num_threads(); ++t) {
    sum += partial[static_cast<size_t>(t) * 8];
  }
  return sum;
}

namespace {

// Stable partition of one node's list into left/right child lists.
// Template over the element type (MemBufEntry or uint32_t) with an id
// extractor so both layouts share one implementation.
template <typename Elem, typename GetRid>
void PartitionSerial(const std::vector<Elem>& parent,
                     const BinnedMatrix& matrix, uint32_t feature,
                     uint32_t split_bin, bool default_left, GetRid get_rid,
                     std::vector<Elem>* left, std::vector<Elem>* right) {
  for (const Elem& e : parent) {
    if (GoesLeft(matrix, get_rid(e), feature, split_bin, default_left)) {
      left->push_back(e);
    } else {
      right->push_back(e);
    }
  }
}

template <typename Elem, typename GetRid>
void PartitionParallel(const std::vector<Elem>& parent,
                       const BinnedMatrix& matrix, uint32_t feature,
                       uint32_t split_bin, bool default_left, GetRid get_rid,
                       std::vector<Elem>* left, std::vector<Elem>* right,
                       ThreadPool* pool) {
  const int64_t n = static_cast<int64_t>(parent.size());
  const int chunks = pool->num_threads();
  const int64_t chunk = (n + chunks - 1) / chunks;

  // Pass 1: each chunk partitions into private buffers (stable within the
  // chunk); pass 2 concatenates in chunk order (stable overall).
  std::vector<std::vector<Elem>> left_parts(static_cast<size_t>(chunks));
  std::vector<std::vector<Elem>> right_parts(static_cast<size_t>(chunks));
  pool->RunOnAllThreads([&](int thread_id) {
    const int64_t begin = static_cast<int64_t>(thread_id) * chunk;
    const int64_t end = std::min<int64_t>(n, begin + chunk);
    if (begin >= end) return;
    auto& lp = left_parts[static_cast<size_t>(thread_id)];
    auto& rp = right_parts[static_cast<size_t>(thread_id)];
    for (int64_t i = begin; i < end; ++i) {
      const Elem& e = parent[static_cast<size_t>(i)];
      if (GoesLeft(matrix, get_rid(e), feature, split_bin, default_left)) {
        lp.push_back(e);
      } else {
        rp.push_back(e);
      }
    }
  });

  size_t left_total = 0;
  size_t right_total = 0;
  for (int c = 0; c < chunks; ++c) {
    left_total += left_parts[static_cast<size_t>(c)].size();
    right_total += right_parts[static_cast<size_t>(c)].size();
  }
  left->resize(left_total);
  right->resize(right_total);

  std::vector<size_t> left_offset(static_cast<size_t>(chunks) + 1, 0);
  std::vector<size_t> right_offset(static_cast<size_t>(chunks) + 1, 0);
  for (int c = 0; c < chunks; ++c) {
    left_offset[static_cast<size_t>(c) + 1] =
        left_offset[static_cast<size_t>(c)] +
        left_parts[static_cast<size_t>(c)].size();
    right_offset[static_cast<size_t>(c) + 1] =
        right_offset[static_cast<size_t>(c)] +
        right_parts[static_cast<size_t>(c)].size();
  }
  pool->RunOnAllThreads([&](int thread_id) {
    const size_t c = static_cast<size_t>(thread_id);
    std::copy(left_parts[c].begin(), left_parts[c].end(),
              left->begin() + static_cast<int64_t>(left_offset[c]));
    std::copy(right_parts[c].begin(), right_parts[c].end(),
              right->begin() + static_cast<int64_t>(right_offset[c]));
  });
}

}  // namespace

void RowPartitioner::ApplySplit(int node_id, int left_id, int right_id,
                                const BinnedMatrix& matrix, uint32_t feature,
                                uint32_t split_bin, bool default_left,
                                ThreadPool* pool) {
  CheckNode(node_id);
  CheckNode(left_id);
  CheckNode(right_id);
  HARP_CHECK_GE(split_bin, 1u);

  // Small nodes are not worth a parallel region even when a pool is given.
  const bool parallel = pool != nullptr && NodeSize(node_id) >= 8192;

  if (use_membuf_) {
    auto& parent = entries_[static_cast<size_t>(node_id)];
    auto& left = entries_[static_cast<size_t>(left_id)];
    auto& right = entries_[static_cast<size_t>(right_id)];
    HARP_CHECK(left.empty() && right.empty());
    auto get_rid = [](const MemBufEntry& e) { return e.rid; };
    if (parallel) {
      PartitionParallel(parent, matrix, feature, split_bin, default_left,
                        get_rid, &left, &right, pool);
    } else {
      left.reserve(parent.size() / 2);
      right.reserve(parent.size() / 2);
      PartitionSerial(parent, matrix, feature, split_bin, default_left,
                      get_rid, &left, &right);
    }
    HARP_CHECK_EQ(left.size() + right.size(), parent.size());
    std::vector<MemBufEntry>().swap(parent);  // free parent storage
  } else {
    auto& parent = row_ids_[static_cast<size_t>(node_id)];
    auto& left = row_ids_[static_cast<size_t>(left_id)];
    auto& right = row_ids_[static_cast<size_t>(right_id)];
    HARP_CHECK(left.empty() && right.empty());
    auto get_rid = [](uint32_t rid) { return rid; };
    if (parallel) {
      PartitionParallel(parent, matrix, feature, split_bin, default_left,
                        get_rid, &left, &right, pool);
    } else {
      left.reserve(parent.size() / 2);
      right.reserve(parent.size() / 2);
      PartitionSerial(parent, matrix, feature, split_bin, default_left,
                      get_rid, &left, &right);
    }
    HARP_CHECK_EQ(left.size() + right.size(), parent.size());
    std::vector<uint32_t>().swap(parent);
  }
}

void RowPartitioner::AddToMargins(int node_id, double value,
                                  std::vector<double>* margins) const {
  CheckNode(node_id);
  ForEachRow(node_id, [&](uint32_t rid, float, float) {
    (*margins)[rid] += value;
  });
}

}  // namespace harp
