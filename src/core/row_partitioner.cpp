#include "core/row_partitioner.h"

#include <algorithm>
#include <type_traits>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

// The two arena layouts share every partition/scan kernel through these
// traits: Elem is what the arena stores, Rid recovers the row id, AddGH
// accumulates the element's gradient pair (from the element itself for
// MemBuf, from the global gradient array otherwise).
struct MemBufLayout {
  using Elem = MemBufEntry;
  static uint32_t Rid(const Elem& e) { return e.rid; }
  static void AddGH(const Elem& e, const GradientPair*, GHPair* sum) {
    sum->Add(e.g, e.h);
  }
};

struct RidLayout {
  using Elem = uint32_t;
  static uint32_t Rid(uint32_t rid) { return rid; }
  static void AddGH(uint32_t rid, const GradientPair* grads, GHPair* sum) {
    sum->Add(grads[rid].g, grads[rid].h);
  }
};

// Count pass over one chunk: evaluates the predicate once per element
// (the only bin-matrix read of the whole split), caches it in `flags`,
// fuses the chunk's child gradient-pair partial sums, and returns the
// chunk's left count. The sums ride here — not in the scatter — because
// this pass is already stalled on the strided bin-matrix reads, so the
// acc[go_left] accumulation is hidden under those misses, while adding it
// to the (otherwise branch-free) scatter would serialize it.
template <typename L>
uint32_t CountChunk(const typename L::Elem* src, uint32_t n, uint8_t* flags,
                    const uint8_t* bins, uint32_t stride, uint32_t feature,
                    uint32_t split_bin, bool default_left,
                    const GradientPair* grads, GHPair* left_sum,
                    GHPair* right_sum) {
  // The go-left predicate "bin == 0 ? default_left : bin <= split_bin"
  // folded into one unsigned compare: with sub = default_left ? 0 : 1,
  // go_left == (bin - sub) <= (split_bin - sub). Bin 0 wraps to
  // UINT32_MAX when defaulting right, and split_bin >= 1 (checked by
  // CheckTask) keeps the threshold from wrapping.
  const uint32_t sub = default_left ? 0u : 1u;
  const uint32_t thresh = split_bin - sub;
  uint32_t count = 0;
  GHPair acc[2];  // [0] = right, [1] = left; indexed, not branched
  for (uint32_t i = 0; i < n; ++i) {
    const typename L::Elem e = src[i];
    const uint32_t bin =
        bins[static_cast<size_t>(L::Rid(e)) * stride + feature];
    const uint8_t go_left = (bin - sub) <= thresh ? 1 : 0;
    flags[i] = go_left;
    count += go_left;
    L::AddGH(e, grads, &acc[go_left]);
  }
  *left_sum = acc[1];
  *right_sum = acc[0];
  return count;
}

// Scatter pass over one chunk: moves each element once, steered by the
// cached flag byte. Branch-free both-sides write: every element is stored
// at both cursors and only the right cursor advances. The spurious store
// lands on a slot of this chunk's own destination range that a later real
// store overwrites — it never crosses into another chunk's range, because
// the main loop stops as soon as either side's range is full (at which
// point every remaining element belongs to the other side and the tail is
// a straight copy). That keeps concurrent chunk scatters disjoint and the
// result schedule-independent.
template <typename L>
void ScatterChunk(const typename L::Elem* src, const uint8_t* flags,
                  typename L::Elem* left_dst, uint32_t left_count,
                  typename L::Elem* right_dst, uint32_t right_count) {
  using Elem = typename L::Elem;
  Elem* const left_end = left_dst + left_count;
  Elem* const right_end = right_dst + right_count;
  uint32_t i = 0;
  while (left_dst < left_end && right_dst < right_end) {
    const Elem e = src[i];
    const uint8_t go_left = flags[i];
    ++i;
    *left_dst = e;
    *right_dst = e;
    left_dst += go_left;
    right_dst += 1 - go_left;
  }
  for (; left_dst < left_end; ++i) *left_dst++ = src[i];
  for (; right_dst < right_end; ++i) *right_dst++ = src[i];
}

// Grows `v` to at least `n` elements; returns 1 if backing storage was
// reallocated (a grow event), 0 otherwise. Never shrinks.
template <typename Vec>
int64_t GrowTo(Vec* v, size_t n) {
  if (v->size() >= n) return 0;
  const int64_t grew = n > v->capacity() ? 1 : 0;
  v->resize(n);
  return grew;
}

}  // namespace

void RowPartitioner::Reset(const std::vector<GradientPair>& gradients,
                           int max_nodes, ThreadPool* pool) {
  HARP_CHECK_EQ(gradients.size(), static_cast<size_t>(num_rows_));
  HARP_CHECK_GE(max_nodes, 1);
  gradients_ = &gradients;
  max_nodes_ = max_nodes;

  // Grow-only storage: after the first tree at this (num_rows, max_nodes)
  // size, Reset allocates nothing.
  int64_t grew = 0;
  const size_t nodes = static_cast<size_t>(max_nodes);
  grew += GrowTo(&spans_, nodes);
  grew += GrowTo(&fused_sums_, nodes);
  grew += GrowTo(&fused_valid_, nodes);
  grew += GrowTo(&left_flags_, num_rows_);
  if (use_membuf_) {
    for (auto& arena : entry_arena_) grew += GrowTo(&arena, num_rows_);
  } else {
    for (auto& arena : rid_arena_) grew += GrowTo(&arena, num_rows_);
  }
  if (grew != 0) grow_events_.fetch_add(grew, std::memory_order_relaxed);

  std::fill_n(spans_.begin(), nodes, NodeSpan{});
  std::fill_n(fused_valid_.begin(), nodes, uint8_t{0});
  spans_[0] = NodeSpan{0, num_rows_, 0};

  // Root fill: a bandwidth-bound streaming write in both layouts, so both
  // go parallel when a pool is given.
  if (use_membuf_) {
    MemBufEntry* root = entry_arena_[0].data();
    auto fill = [&](int64_t begin, int64_t end, int) {
      for (int64_t r = begin; r < end; ++r) {
        const auto i = static_cast<size_t>(r);
        root[i] = MemBufEntry{static_cast<uint32_t>(r), gradients[i].g,
                              gradients[i].h};
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(num_rows_, fill);
    } else {
      fill(0, num_rows_, 0);
    }
  } else {
    uint32_t* root = rid_arena_[0].data();
    auto fill = [&](int64_t begin, int64_t end, int) {
      for (int64_t r = begin; r < end; ++r) {
        root[static_cast<size_t>(r)] = static_cast<uint32_t>(r);
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(num_rows_, fill);
    } else {
      fill(0, num_rows_, 0);
    }
  }
}

void RowPartitioner::CheckNode(int node_id) const {
  HARP_CHECK_GE(node_id, 0);
  HARP_CHECK_LT(node_id, max_nodes_);
}

void RowPartitioner::CheckTask(const SplitTask& t) const {
  CheckNode(t.node_id);
  CheckNode(t.left_id);
  CheckNode(t.right_id);
  HARP_CHECK_GE(t.split_bin, 1u);
  HARP_CHECK_EQ(NodeSize(t.left_id), 0u);
  HARP_CHECK_EQ(NodeSize(t.right_id), 0u);
}

uint32_t RowPartitioner::NodeSize(int node_id) const {
  CheckNode(node_id);
  const NodeSpan& s = spans_[static_cast<size_t>(node_id)];
  return s.end - s.begin;
}

std::span<const uint32_t> RowPartitioner::NodeRowIds(int node_id) const {
  CheckNode(node_id);
  HARP_CHECK(!use_membuf_);
  const NodeSpan& s = spans_[static_cast<size_t>(node_id)];
  return {rid_arena_[s.buf].data() + s.begin, s.end - s.begin};
}

std::span<const MemBufEntry> RowPartitioner::NodeEntries(int node_id) const {
  CheckNode(node_id);
  HARP_CHECK(use_membuf_);
  const NodeSpan& s = spans_[static_cast<size_t>(node_id)];
  return {entry_arena_[s.buf].data() + s.begin, s.end - s.begin};
}

template <typename Layout>
GHPair RowPartitioner::NodeSumScan(int node_id, ThreadPool* pool) const {
  const NodeSpan& s = spans_[static_cast<size_t>(node_id)];
  const uint32_t n = s.end - s.begin;
  const typename Layout::Elem* src = [&] {
    if constexpr (std::is_same_v<typename Layout::Elem, MemBufEntry>) {
      return entry_arena_[s.buf].data() + s.begin;
    } else {
      return rid_arena_[s.buf].data() + s.begin;
    }
  }();
  const GradientPair* grads =
      gradients_ != nullptr ? gradients_->data() : nullptr;

  // Chunk-grid reduction: per-chunk partials accumulated sequentially,
  // then reduced in ascending chunk order. The grid depends only on n, so
  // serial and parallel (any thread count) produce bit-identical sums —
  // and match the fused sums the scatter pass computes on the same grid.
  const uint32_t chunks = (n + kChunkRows - 1) / kChunkRows;
  auto chunk_sum = [&](uint32_t c) {
    GHPair partial;
    const uint32_t begin = c * kChunkRows;
    const uint32_t end = std::min(n, begin + kChunkRows);
    for (uint32_t i = begin; i < end; ++i) {
      Layout::AddGH(src[i], grads, &partial);
    }
    return partial;
  };

  GHPair total;
  if (pool == nullptr || n < kParallelRows) {
    for (uint32_t c = 0; c < chunks; ++c) total += chunk_sum(c);
    return total;
  }
  const int64_t grew = GrowTo(&sum_scratch_, chunks);
  if (grew != 0) grow_events_.fetch_add(grew, std::memory_order_relaxed);
  pool->ParallelForDynamic(chunks, 1, [&](int64_t begin, int64_t end, int) {
    for (int64_t c = begin; c < end; ++c) {
      sum_scratch_[static_cast<size_t>(c)].value =
          chunk_sum(static_cast<uint32_t>(c));
    }
  });
  for (uint32_t c = 0; c < chunks; ++c) total += sum_scratch_[c].value;
  return total;
}

GHPair RowPartitioner::NodeSum(int node_id, ThreadPool* pool) const {
  CheckNode(node_id);
  if (fused_valid_[static_cast<size_t>(node_id)] != 0) {
    return fused_sums_[static_cast<size_t>(node_id)];
  }
  return use_membuf_ ? NodeSumScan<MemBufLayout>(node_id, pool)
                     : NodeSumScan<RidLayout>(node_id, pool);
}

bool RowPartitioner::HasFusedSum(int node_id) const {
  CheckNode(node_id);
  return fused_valid_[static_cast<size_t>(node_id)] != 0;
}

void RowPartitioner::FinishSplit(const SplitTask& t, uint32_t left_count,
                                 const GHPair& left_sum,
                                 const GHPair& right_sum) {
  NodeSpan& parent = spans_[static_cast<size_t>(t.node_id)];
  const uint32_t n = parent.end - parent.begin;
  HARP_CHECK_LE(left_count, n);
  const uint8_t child_buf = static_cast<uint8_t>(1 - parent.buf);
  spans_[static_cast<size_t>(t.left_id)] =
      NodeSpan{parent.begin, parent.begin + left_count, child_buf};
  spans_[static_cast<size_t>(t.right_id)] =
      NodeSpan{parent.begin + left_count, parent.end, child_buf};
  fused_sums_[static_cast<size_t>(t.left_id)] = left_sum;
  fused_sums_[static_cast<size_t>(t.right_id)] = right_sum;
  fused_valid_[static_cast<size_t>(t.left_id)] = 1;
  fused_valid_[static_cast<size_t>(t.right_id)] = 1;
  // The parent's window now belongs to its children: empty it (NodeSize
  // becomes 0, matching the old freed-parent semantics) and drop any
  // cached sum.
  fused_valid_[static_cast<size_t>(t.node_id)] = 0;
  parent.end = parent.begin;

  splits_.fetch_add(1, std::memory_order_relaxed);
  bytes_moved_.fetch_add(
      static_cast<int64_t>(n) *
          static_cast<int64_t>(use_membuf_ ? sizeof(MemBufEntry)
                                           : sizeof(uint32_t)),
      std::memory_order_relaxed);
}

template <typename Layout>
void RowPartitioner::PartitionSerial(const SplitTask& t,
                                     const BinnedMatrix& matrix) {
  using Elem = typename Layout::Elem;
  auto arena_data = [&](uint8_t buf) -> Elem* {
    if constexpr (std::is_same_v<Elem, MemBufEntry>) {
      return entry_arena_[buf].data();
    } else {
      return rid_arena_[buf].data();
    }
  };
  const NodeSpan& parent = spans_[static_cast<size_t>(t.node_id)];
  const uint32_t n = parent.end - parent.begin;
  const Elem* src = arena_data(parent.buf) + parent.begin;
  Elem* dst = arena_data(static_cast<uint8_t>(1 - parent.buf)) + parent.begin;
  const GradientPair* grads = gradients_->data();

  // Same fixed chunk grid as the parallel paths, executed in order on one
  // thread — identical arithmetic, hence identical results. thread_local
  // so ASYNC workers can split disjoint nodes concurrently; grows to the
  // deepest node a thread ever splits, then never again.
  const uint32_t chunks = (n + kChunkRows - 1) / kChunkRows;
  thread_local std::vector<uint32_t> offsets;
  if (offsets.size() < chunks) {
    offsets.resize(chunks);
    grow_events_.fetch_add(1, std::memory_order_relaxed);
  }

  uint8_t* flags = left_flags_.data() + parent.begin;
  const uint8_t* bins = matrix.RowBins(0);
  const uint32_t stride = matrix.num_features();
  GHPair left_sum;
  GHPair right_sum;
  for (uint32_t c = 0; c < chunks; ++c) {
    const uint32_t begin = c * kChunkRows;
    GHPair lp;
    GHPair rp;
    offsets[c] = CountChunk<Layout>(src + begin,
                                    std::min(n - begin, kChunkRows),
                                    flags + begin, bins, stride, t.feature,
                                    t.split_bin, t.default_left, grads, &lp,
                                    &rp);
    // Ascending chunk order — the canonical fused-sum reduction.
    left_sum += lp;
    right_sum += rp;
  }
  // In-place exclusive scan: offsets[c] becomes the chunk's first left
  // slot; left_total the left child's size.
  uint32_t left_total = 0;
  for (uint32_t c = 0; c < chunks; ++c) {
    const uint32_t count = offsets[c];
    offsets[c] = left_total;
    left_total += count;
  }

  for (uint32_t c = 0; c < chunks; ++c) {
    const uint32_t begin = c * kChunkRows;
    const uint32_t len = std::min(n - begin, kChunkRows);
    const uint32_t next_left =
        c + 1 < chunks ? offsets[c + 1] : left_total;
    ScatterChunk<Layout>(src + begin, flags + begin, dst + offsets[c],
                         next_left - offsets[c],
                         dst + left_total + (begin - offsets[c]),
                         len - (next_left - offsets[c]));
  }
  FinishSplit(t, left_total, left_sum, right_sum);
}

void RowPartitioner::BuildChunkGrid(std::span<const SplitTask> tasks) {
  // Flatten every task's parent window onto one chunk-task list (grouped
  // by task, chunks in window order) so the whole batch is covered by a
  // single count pass and a single scatter pass.
  int64_t grew = GrowTo(&task_left_total_, tasks.size());
  const size_t refs_capacity = chunk_refs_.capacity();
  chunk_refs_.clear();
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const NodeSpan& p = spans_[static_cast<size_t>(tasks[ti].node_id)];
    for (uint32_t begin = p.begin; begin < p.end; begin += kChunkRows) {
      chunk_refs_.push_back(ChunkRef{static_cast<uint32_t>(ti), begin,
                                     std::min(p.end, begin + kChunkRows)});
    }
  }
  prepared_chunks_ = chunk_refs_.size();
  grew += chunk_refs_.capacity() != refs_capacity ? 1 : 0;
  grew += GrowTo(&chunk_left_, prepared_chunks_);
  grew += GrowTo(&chunk_left_sum_, prepared_chunks_);
  grew += GrowTo(&chunk_right_sum_, prepared_chunks_);
  if (grew != 0) grow_events_.fetch_add(grew, std::memory_order_relaxed);
}

// Count pass over chunks [begin, end): counts + fused per-chunk child
// sums. Chunk boundaries come from the fixed grid, not the schedule, so
// any thread may process any chunk.
template <typename Layout>
void RowPartitioner::CountChunkRangeT(std::span<const SplitTask> tasks,
                                      const BinnedMatrix& matrix,
                                      int64_t begin, int64_t end) {
  using Elem = typename Layout::Elem;
  const GradientPair* grads = gradients_->data();
  const uint8_t* bins = matrix.RowBins(0);
  const uint32_t stride = matrix.num_features();
  for (int64_t i = begin; i < end; ++i) {
    const size_t ci = static_cast<size_t>(i);
    const ChunkRef& ref = chunk_refs_[ci];
    const SplitTask& t = tasks[ref.task];
    const NodeSpan& p = spans_[static_cast<size_t>(t.node_id)];
    const Elem* src = [&] {
      if constexpr (std::is_same_v<Elem, MemBufEntry>) {
        return entry_arena_[p.buf].data();
      } else {
        return rid_arena_[p.buf].data();
      }
    }();
    GHPair lp;
    GHPair rp;
    chunk_left_[ci] = CountChunk<Layout>(
        src + ref.begin, ref.end - ref.begin, left_flags_.data() + ref.begin,
        bins, stride, t.feature, t.split_bin, t.default_left, grads, &lp,
        &rp);
    chunk_left_sum_[ci].value = lp;
    chunk_right_sum_[ci].value = rp;
  }
}

void RowPartitioner::CountChunkRange(std::span<const SplitTask> tasks,
                                     const BinnedMatrix& matrix,
                                     int64_t begin, int64_t end) {
  if (use_membuf_) {
    CountChunkRangeT<MemBufLayout>(tasks, matrix, begin, end);
  } else {
    CountChunkRangeT<RidLayout>(tasks, matrix, begin, end);
  }
}

// Serial per-task exclusive scan (chunk counts -> chunk left offsets);
// cheap: one pass over ~n/kChunkRows entries.
void RowPartitioner::ScanTasksSerial(std::span<const SplitTask> tasks) {
  size_t i = 0;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    uint32_t running = 0;
    for (; i < prepared_chunks_ && chunk_refs_[i].task == ti; ++i) {
      const uint32_t count = chunk_left_[i];
      chunk_left_[i] = running;
      running += count;
    }
    task_left_total_[ti] = running;
  }
}

// Scatter pass over chunks [begin, end). Every element has a unique
// destination computed from the scan, so chunks write disjoint ranges
// (the both-sides-write trick never leaves a chunk's own range — see
// ScatterChunk).
template <typename Layout>
void RowPartitioner::ScatterChunkRangeT(std::span<const SplitTask> tasks,
                                        const BinnedMatrix& matrix,
                                        int64_t begin, int64_t end) {
  (void)matrix;
  using Elem = typename Layout::Elem;
  auto arena_data = [&](uint8_t buf) -> Elem* {
    if constexpr (std::is_same_v<Elem, MemBufEntry>) {
      return entry_arena_[buf].data();
    } else {
      return rid_arena_[buf].data();
    }
  };
  for (int64_t i = begin; i < end; ++i) {
    const size_t ci = static_cast<size_t>(i);
    const ChunkRef& ref = chunk_refs_[ci];
    const SplitTask& t = tasks[ref.task];
    const NodeSpan& p = spans_[static_cast<size_t>(t.node_id)];
    const Elem* src = arena_data(p.buf);
    Elem* dst = arena_data(static_cast<uint8_t>(1 - p.buf));
    // The chunk's own left count: next in-task offset minus its own
    // (the scan overwrote chunk_left_ with offsets).
    const uint32_t next_left =
        (ci + 1 < prepared_chunks_ && chunk_refs_[ci + 1].task == ref.task)
            ? chunk_left_[ci + 1]
            : task_left_total_[ref.task];
    const uint32_t left_count = next_left - chunk_left_[ci];
    Elem* left_dst = dst + p.begin + chunk_left_[ci];
    Elem* right_dst = dst + p.begin + task_left_total_[ref.task] +
                      (ref.begin - p.begin) - chunk_left_[ci];
    ScatterChunk<Layout>(src + ref.begin, left_flags_.data() + ref.begin,
                         left_dst, left_count, right_dst,
                         (ref.end - ref.begin) - left_count);
  }
}

void RowPartitioner::ScatterChunkRange(std::span<const SplitTask> tasks,
                                       const BinnedMatrix& matrix,
                                       int64_t begin, int64_t end) {
  if (use_membuf_) {
    ScatterChunkRangeT<MemBufLayout>(tasks, matrix, begin, end);
  } else {
    ScatterChunkRangeT<RidLayout>(tasks, matrix, begin, end);
  }
}

// Reduces fused partials in ascending chunk order — the same grid and
// order as the serial path, so the sums are bit-identical — and publishes
// the child windows. `barriers` counts the two passes (count + scatter)
// regardless of which scheduler drove them.
void RowPartitioner::FinishBatchSerial(std::span<const SplitTask> tasks) {
  size_t i = 0;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    GHPair left_sum;
    GHPair right_sum;
    for (; i < prepared_chunks_ && chunk_refs_[i].task == ti; ++i) {
      left_sum += chunk_left_sum_[i].value;
      right_sum += chunk_right_sum_[i].value;
    }
    FinishSplit(tasks[ti], task_left_total_[ti], left_sum, right_sum);
  }
  barriers_.fetch_add(2, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
}

void RowPartitioner::PartitionBatchSerial(std::span<const SplitTask> tasks,
                                          const BinnedMatrix& matrix) {
  for (const SplitTask& t : tasks) {
    if (use_membuf_) {
      PartitionSerial<MemBufLayout>(t, matrix);
    } else {
      PartitionSerial<RidLayout>(t, matrix);
    }
  }
}

bool RowPartitioner::PrepareSplitBatch(std::span<const SplitTask> tasks) {
  prepared_parallel_ = false;
  prepared_chunks_ = 0;
  if (tasks.empty()) return false;
  int64_t total_rows = 0;
  for (const SplitTask& t : tasks) {
    CheckTask(t);
    total_rows += NodeSize(t.node_id);
  }
  prepared_parallel_ = total_rows >= static_cast<int64_t>(kParallelRows);
  if (prepared_parallel_) BuildChunkGrid(tasks);
  return true;
}

void RowPartitioner::ApplySplitBatchInRegion(
    std::span<const SplitTask> tasks, const BinnedMatrix& matrix,
    ThreadPool::FusedRegion& region, int thread_id,
    const std::function<void()>& after_finish) {
  if (!prepared_parallel_) {
    // Small batch: per-task serial partition on thread 0 (same work the
    // region-per-phase path does on the orchestration thread), peers go
    // straight to the barrier.
    if (thread_id == 0 && !tasks.empty()) {
      PartitionBatchSerial(tasks, matrix);
    }
    region.Barrier(thread_id, after_finish);
    return;
  }
  region.ForDynamic(thread_id, static_cast<int64_t>(prepared_chunks_), 1,
                    [&](int64_t begin, int64_t end, int) {
                      CountChunkRange(tasks, matrix, begin, end);
                    });
  region.Barrier(thread_id, [&] { ScanTasksSerial(tasks); });
  region.ForDynamic(thread_id, static_cast<int64_t>(prepared_chunks_), 1,
                    [&](int64_t begin, int64_t end, int) {
                      ScatterChunkRange(tasks, matrix, begin, end);
                    });
  region.Barrier(thread_id, [&] {
    FinishBatchSerial(tasks);
    after_finish();
  });
}

void RowPartitioner::ApplySplit(int node_id, int left_id, int right_id,
                                const BinnedMatrix& matrix, uint32_t feature,
                                uint32_t split_bin, bool default_left,
                                ThreadPool* pool) {
  const SplitTask t{node_id, left_id, right_id, feature, split_bin,
                    default_left};
  // Small nodes are not worth a parallel region even when a pool is given.
  if (pool != nullptr && NodeSize(node_id) >= kParallelRows) {
    ApplySplitBatch(std::span<const SplitTask>(&t, 1), matrix, pool);
    return;
  }
  CheckTask(t);
  if (use_membuf_) {
    PartitionSerial<MemBufLayout>(t, matrix);
  } else {
    PartitionSerial<RidLayout>(t, matrix);
  }
}

void RowPartitioner::ApplySplitBatch(std::span<const SplitTask> tasks,
                                     const BinnedMatrix& matrix,
                                     ThreadPool* pool) {
  if (!PrepareSplitBatch(tasks)) return;
  if (pool == nullptr || !prepared_parallel_) {
    PartitionBatchSerial(tasks, matrix);
    return;
  }
  // Region-per-phase execution of the same pieces the fused path drives
  // through in-region barriers: one region per pass.
  pool->ParallelForDynamic(static_cast<int64_t>(prepared_chunks_), 1,
                           [&](int64_t begin, int64_t end, int) {
                             CountChunkRange(tasks, matrix, begin, end);
                           });
  ScanTasksSerial(tasks);
  pool->ParallelForDynamic(static_cast<int64_t>(prepared_chunks_), 1,
                           [&](int64_t begin, int64_t end, int) {
                             ScatterChunkRange(tasks, matrix, begin, end);
                           });
  FinishBatchSerial(tasks);
}

void RowPartitioner::AddToMargins(int node_id, double value,
                                  std::vector<double>* margins) const {
  CheckNode(node_id);
  ForEachRow(node_id, [&](uint32_t rid, float, float) {
    (*margins)[rid] += value;
  });
}

PartitionStats RowPartitioner::stats() const {
  PartitionStats s;
  s.grow_events = grow_events_.load(std::memory_order_relaxed);
  s.splits = splits_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.barriers = barriers_.load(std::memory_order_relaxed);
  s.bytes_moved = bytes_moved_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace harp
