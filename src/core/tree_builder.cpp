#include "core/tree_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace harp {

void ScatterLeafValues(const RegTree& tree, const RowPartitioner& partitioner,
                       ThreadPool& pool, std::vector<double>* margins) {
  std::vector<int> leaf_ids;
  for (int id = 0; id < tree.num_nodes(); ++id) {
    if (tree.node(id).IsLeaf()) leaf_ids.push_back(id);
  }
  pool.ParallelForDynamic(
      static_cast<int64_t>(leaf_ids.size()), 1,
      [&](int64_t begin, int64_t end, int) {
        for (int64_t i = begin; i < end; ++i) {
          const int leaf = leaf_ids[static_cast<size_t>(i)];
          partitioner.AddToMargins(leaf, tree.node(leaf).leaf_value, margins);
        }
      });
}

HarpTreeBuilder::HarpTreeBuilder(const BinnedMatrix& matrix,
                                 const TrainParams& params, ThreadPool& pool)
    : matrix_(matrix),
      params_(params.Validate()),
      pool_(pool),
      evaluator_(params),
      hists_(matrix.TotalBins()),
      partitioner_(matrix.num_rows(), params.use_membuf),
      queue_(params.grow_policy),
      use_subtraction_(params.use_hist_subtraction &&
                       params.mode != ParallelMode::kASYNC),
      use_fused_(params.use_fused_step &&
                 params.mode != ParallelMode::kASYNC),
      use_quant_(params.quantize_hist &&
                 params.mode != ParallelMode::kASYNC),
      simd_level_(ResolveSimdLevel(params.simd)) {
  if (params.use_hist_subtraction && params.mode == ParallelMode::kASYNC) {
    HARP_LOG(Warning) << "histogram subtraction is not supported in ASYNC "
                         "mode (node tasks build children directly); "
                         "ignoring use_hist_subtraction";
  }
  if (params.quantize_hist && params.mode == ParallelMode::kASYNC) {
    HARP_LOG(Warning) << "quantized histograms are not supported in ASYNC "
                         "mode (serial node tasks use the f64 path); "
                         "ignoring quantize_hist";
  }
  // FindSplit parallel grid: nodes x feature chunks. When feature blocks
  // are configured reuse them; otherwise chunk so every thread has work
  // even for small batches. Fixed here so fused find-task ids stay stable.
  const uint32_t num_features = matrix_.num_features();
  int fb_size = params_.feature_blk_size;
  if (fb_size <= 0) {
    fb_size = static_cast<int>(std::max<uint32_t>(
        1, num_features / static_cast<uint32_t>(
                              std::max(1, pool_.num_threads()))));
  }
  fblocks_ = MakeFeatureBlocks(num_features, fb_size);
}

size_t HarpTreeBuilder::ScratchCapacity() const {
  return split_tasks_.capacity() + batch_.capacity() + children_.capacity() +
         build_list_.capacity() + subtract_list_.capacity() +
         found_.capacity() + find_partial_.capacity() +
         find_hist_.capacity() + find_sums_.capacity() + slots_cap_ +
         node_remaining_cap_ + build_pos_.capacity() +
         build_child_pos_.capacity() + sub_of_build_.capacity();
}

ParallelMode HarpTreeBuilder::ChooseMode(size_t batch_nodes,
                                         int64_t batch_rows) const {
  switch (params_.mode) {
    case ParallelMode::kDP:
      return ParallelMode::kDP;
    case ParallelMode::kMP:
      return ParallelMode::kMP;
    case ParallelMode::kASYNC:
      // Only the ramp-up phase reaches here; the paper's ASYNC is
      // (X, node parallelism, X) with DP as the X phase.
      return ParallelMode::kDP;
    case ParallelMode::kSYNC:
      break;
  }
  // Phase mixing by a per-node cost model. DP's fixed overhead per node is
  // the replica traffic (zero + reduce): threads x total_bins histogram
  // slots. Its useful work per node is the row scan: avg_rows x M updates.
  // Early in the tree (few big nodes) the scan dominates and DP's
  // conflict-free row blocks win; late in the tree (many tiny nodes) the
  // replica traffic dominates and MP's shared-histogram blocks win. This
  // realizes Table II's mixed schedule with a machine-independent switch.
  if (batch_nodes < 2) return ParallelMode::kDP;
  const int64_t avg_rows =
      batch_rows / static_cast<int64_t>(std::max<size_t>(1, batch_nodes));
  const int64_t scan_per_node =
      avg_rows * static_cast<int64_t>(matrix_.num_features());
  const int64_t replica_per_node =
      static_cast<int64_t>(pool_.num_threads()) *
      static_cast<int64_t>(matrix_.TotalBins());
  return scan_per_node >= replica_per_node ? ParallelMode::kDP
                                           : ParallelMode::kMP;
}

void HarpTreeBuilder::StageApply(RegTree& tree) {
  children_.clear();
  for (const Candidate& cand : batch_) {
    const float cut =
        matrix_.cuts().CutFor(cand.split.feature, cand.split.bin);
    const auto [left, right] = tree.ApplySplit(cand.node_id, cand.split, cut);
    children_.push_back(left);
    children_.push_back(right);
  }
  split_tasks_.clear();
  for (size_t i = 0; i < batch_.size(); ++i) {
    const Candidate& cand = batch_[i];
    split_tasks_.push_back(SplitTask{cand.node_id, children_[2 * i],
                                     children_[2 * i + 1], cand.split.feature,
                                     cand.split.bin,
                                     cand.split.default_left});
  }
}

void HarpTreeBuilder::ApplySplitBatch(RegTree& tree) {
  StageApply(tree);
  // Row partitioning: the whole TopK batch goes through the partitioner's
  // batched count/scatter — one pair of parallel regions for all K nodes
  // instead of regions (or a region of serial partitions) per node, the
  // ApplySplit-phase analogue of the barriers ∝ 2^D/K argument.
  partitioner_.ApplySplitBatch(split_tasks_, matrix_, &pool_);
  for (int child : children_) {
    tree.mutable_node(child).num_rows = partitioner_.NodeSize(child);
  }
}

void HarpTreeBuilder::PrepareFind(const RegTree& tree,
                                  std::span<const int> nodes) {
  find_nodes_ = nodes;
  const size_t grid = nodes.size() * fblocks_.size();
  if (find_partial_.size() < grid) find_partial_.resize(grid);
  if (find_hist_.size() < nodes.size()) find_hist_.resize(nodes.size());
  if (find_sums_.size() < nodes.size()) find_sums_.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    find_hist_[i] = hists_.Get(nodes[i]);
    find_sums_[i] = tree.node(nodes[i]).sum;
  }
}

void HarpTreeBuilder::RunFindTask(size_t grid_index) {
  const size_t node_idx = grid_index / fblocks_.size();
  const size_t fb_idx = grid_index % fblocks_.size();
  const Range fb = fblocks_[fb_idx];
  find_partial_[grid_index] = evaluator_.FindBestSplit(
      matrix_, find_hist_[node_idx], find_sums_[node_idx], fb.first,
      fb.second, column_mask_ != nullptr ? column_mask_->data() : nullptr);
}

void HarpTreeBuilder::MergeFound(const RegTree& tree) {
  found_.clear();
  const size_t nfb = fblocks_.size();
  for (size_t i = 0; i < find_nodes_.size(); ++i) {
    SplitInfo best;
    for (size_t fb = 0; fb < nfb; ++fb) {
      const SplitInfo& s = find_partial_[i * nfb + fb];
      if (s.BetterThan(best)) best = s;
    }
    found_.push_back(
        Candidate{find_nodes_[i], tree.node(find_nodes_[i]).depth, best});
  }
}

void HarpTreeBuilder::FindSplitsBatch(const RegTree& tree,
                                      std::span<const int> nodes) {
  PrepareFind(tree, nodes);
  const size_t grid = nodes.size() * fblocks_.size();
  pool_.ParallelForDynamic(
      static_cast<int64_t>(grid), 1, [&](int64_t begin, int64_t end, int) {
        for (int64_t g = begin; g < end; ++g) {
          RunFindTask(static_cast<size_t>(g));
        }
      });
  MergeFound(tree);
}

void HarpTreeBuilder::PlanBuild(RegTree& tree) {
  // Decide which children get a direct build. With subtraction, only the
  // smaller sibling is scanned; the larger one is parent - sibling.
  build_list_.clear();
  build_child_pos_.clear();
  subtract_list_.clear();
  sub_of_build_.clear();
  for (size_t i = 0; i < batch_.size(); ++i) {
    const int left = children_[2 * i];
    const int right = children_[2 * i + 1];
    if (!use_subtraction_) {
      build_list_.push_back(left);
      build_child_pos_.push_back(static_cast<uint32_t>(2 * i));
      sub_of_build_.push_back(-1);
      build_list_.push_back(right);
      build_child_pos_.push_back(static_cast<uint32_t>(2 * i + 1));
      sub_of_build_.push_back(-1);
      continue;
    }
    const bool left_smaller =
        tree.node(left).num_rows <= tree.node(right).num_rows;
    const int small = left_smaller ? left : right;
    const int large = left_smaller ? right : left;
    build_list_.push_back(small);
    build_child_pos_.push_back(
        static_cast<uint32_t>(2 * i + (left_smaller ? 0 : 1)));
    sub_of_build_.push_back(static_cast<int32_t>(subtract_list_.size()));
    subtract_list_.push_back(SubtractJob{
        large, small, batch_[i].node_id,
        static_cast<uint32_t>(2 * i + (left_smaller ? 1 : 0)), nullptr,
        nullptr, nullptr});
  }

  for (int child : children_) hists_.Acquire(child);
  for (SubtractJob& job : subtract_list_) {
    job.child_h = hists_.Get(job.child);
    job.parent_h = hists_.Get(job.parent);
    job.sibling_h = hists_.Get(job.sibling);
  }

  build_rows_ = 0;
  for (int node : build_list_) build_rows_ += partitioner_.NodeSize(node);
  plan_mode_ = ChooseMode(build_list_.size(), build_rows_);
  hist_updates_ +=
      build_rows_ * static_cast<int64_t>(matrix_.num_features());
}

void HarpTreeBuilder::BuildAndFind(RegTree& tree) {
  const size_t total_bins = matrix_.TotalBins();
  const BuildContext ctx = Context();
  PlanBuild(tree);

  {
    const Stopwatch watch;
    if (plan_mode_ == ParallelMode::kDP) {
      reduce_ns_ += dp_.Build(ctx, build_list_);
    } else {
      mp_.Build(ctx, build_list_);
    }

    if (!subtract_list_.empty()) {
      pool_.ParallelForDynamic(
          static_cast<int64_t>(subtract_list_.size()), 1,
          [&](int64_t begin, int64_t end, int) {
            for (int64_t i = begin; i < end; ++i) {
              const SubtractJob& job = subtract_list_[static_cast<size_t>(i)];
              SubtractHistogram(job.child_h, job.parent_h, job.sibling_h,
                                total_bins);
            }
          });
      // Parent histograms have served their purpose.
      for (const Candidate& cand : batch_) hists_.Release(cand.node_id);
    }
    build_ns_ += watch.ElapsedNs();
  }

  const Stopwatch find_watch;
  FindSplitsBatch(tree, children_);
  find_ns_ += find_watch.ElapsedNs();
}

void HarpTreeBuilder::SyncGrow(RegTree& tree, GrowQueue& queue,
                               int64_t& leaves, TrainStats* stats,
                               const std::function<bool()>& stop) {
  const int64_t max_leaves = params_.MaxLeaves();
  const int max_depth = params_.MaxDepth();

  while (!queue.Empty() && leaves < max_leaves && !stop()) {
    const size_t cap_before = ScratchCapacity();
    const int64_t remaining = max_leaves - leaves;
    queue.PopBatchInto(
        params_.EffectiveTopK(),
        static_cast<int>(std::min<int64_t>(remaining, 1 << 20)), &batch_);
    if (batch_.empty()) break;
    ++topk_batches_;

    if (use_fused_) {
      FusedStep(tree);
    } else {
      const Stopwatch apply_watch;
      ApplySplitBatch(tree);
      apply_ns_ += apply_watch.ElapsedNs();
      BuildAndFind(tree);
    }
    leaves += static_cast<int64_t>(batch_.size());
    if (stats != nullptr) {
      stats->nodes_split += static_cast<int64_t>(batch_.size());
    }

    for (const Candidate& cand : found_) {
      const bool eligible =
          cand.split.IsValid() && cand.depth < max_depth;
      if (eligible) {
        queue.Push(cand);
        // Without subtraction the histogram is only needed for FindSplit.
        if (!use_subtraction_) hists_.Release(cand.node_id);
      } else {
        hists_.Release(cand.node_id);
      }
    }
    if (ScratchCapacity() != cap_before) ++scratch_grows_;
  }
}

void HarpTreeBuilder::FinalizeLeaves(RegTree& tree) const {
  for (int id = 0; id < tree.num_nodes(); ++id) {
    TreeNode& node = tree.mutable_node(id);
    if (node.IsLeaf()) node.leaf_value = evaluator_.LeafValue(node.sum);
  }
}

RegTree HarpTreeBuilder::BuildTree(const std::vector<GradientPair>& gradients,
                                   TrainStats* stats) {
  build_ns_ = reduce_ns_ = find_ns_ = apply_ns_ = quantize_ns_ = 0;
  hist_updates_ = 0;
  topk_batches_ = 0;
  const PartitionStats apply_before = partitioner_.stats();

  const int64_t max_leaves = params_.MaxLeaves();
  const int max_nodes = static_cast<int>(2 * max_leaves);
  partitioner_.Reset(gradients, max_nodes, &pool_);
  hists_.ReleaseAll();

  if (use_quant_) {
    // Fresh scales + packed rows every round: the gradient distribution
    // shifts as boosting progresses, and a per-round power-of-two scale
    // keeps the full int16 resolution on the current range. The seed
    // varies per tree so stochastic rounding errors stay uncorrelated
    // across rounds.
    const Stopwatch quant_watch;
    quant_round_.scales = ComputeQuantScales(gradients, &pool_);
    QuantizeGradients(gradients, quant_round_.scales,
                      params_.quant_stochastic,
                      params_.seed + static_cast<uint64_t>(trees_built_),
                      static_cast<int>(simd_level_), &pool_,
                      &quant_round_.packed);
    quantize_ns_ += quant_watch.ElapsedNs();
  }

  RegTree tree;
  tree.mutable_nodes().reserve(static_cast<size_t>(max_nodes));
  TreeNode& root = tree.mutable_node(0);
  root.sum = partitioner_.NodeSum(0, &pool_);
  root.num_rows = partitioner_.num_rows();

  // Root histogram + split.
  hists_.Acquire(0);
  {
    const Stopwatch watch;
    const BuildContext ctx = Context();
    const int root_nodes[] = {0};
    if (ChooseMode(1, root.num_rows) == ParallelMode::kDP) {
      reduce_ns_ += dp_.Build(ctx, root_nodes);
    } else {
      mp_.Build(ctx, root_nodes);
    }
    hist_updates_ += static_cast<int64_t>(root.num_rows) *
                     static_cast<int64_t>(matrix_.num_features());
    build_ns_ += watch.ElapsedNs();
  }

  queue_.Clear();
  int64_t leaves = 1;
  {
    const Stopwatch find_watch;
    const int root_nodes[] = {0};
    FindSplitsBatch(tree, root_nodes);
    find_ns_ += find_watch.ElapsedNs();
    const bool eligible = found_[0].split.IsValid() && max_leaves > 1 &&
                          params_.MaxDepth() > 0;
    if (eligible) {
      queue_.Push(found_[0]);
      if (!use_subtraction_) hists_.Release(0);
    } else {
      hists_.Release(0);
    }
  }

  const SyncSnapshot grow_before = pool_.Snapshot();
  if (params_.mode == ParallelMode::kASYNC) {
    AsyncGrow(tree, queue_, leaves, stats);
  } else {
    SyncGrow(tree, queue_, leaves, stats, [] { return false; });
  }
  const SyncSnapshot grow_after = pool_.Snapshot();

  FinalizeLeaves(tree);

  if (stats != nullptr) {
    // Approximate GHSum write window of one histogram task (Section IV-E:
    // 16 x bin_blk x feature_blk x node_blk bytes).
    const size_t fblocks =
        MakeFeatureBlocks(matrix_.num_features(), params_.feature_blk_size)
            .size();
    const size_t bins_per_block = matrix_.TotalBins() / std::max<size_t>(1, fblocks);
    const size_t node_span =
        params_.mode == ParallelMode::kMP
            ? static_cast<size_t>(params_.node_blk_size)
            : 1;
    // max, not =, for consistency with hist_peak_bytes: the value is a
    // per-configuration constant, and accumulating with = silently kept
    // only the last tree's (identical) value anyway. Quantized mode
    // halves the cell the hot loop writes (8-byte int64 vs 16-byte
    // GHPair) — the Section III-B bytes-per-update lever this PR pulls.
    const size_t cell_bytes =
        use_quant_ ? sizeof(int64_t) : sizeof(GHPair);
    stats->hist_cell_bytes = cell_bytes;
    stats->write_region_bytes =
        std::max(stats->write_region_bytes,
                 cell_bytes * bins_per_block * node_span);
    stats->topk_batches += topk_batches_;
    stats->grow_region_launches +=
        grow_after.parallel_regions - grow_before.parallel_regions;
    stats->grow_phase_barriers +=
        grow_after.phase_barriers - grow_before.phase_barriers;
    stats->build_hist_ns += build_ns_;
    stats->reduce_ns += reduce_ns_;
    stats->find_split_ns += find_ns_;
    stats->apply_split_ns += apply_ns_;
    stats->quantize_ns += quantize_ns_;
    stats->hist_updates += hist_updates_;
    const PartitionStats apply_after = partitioner_.stats();
    stats->apply_splits += apply_after.splits - apply_before.splits;
    stats->apply_batches += apply_after.batches - apply_before.batches;
    stats->apply_barriers += apply_after.barriers - apply_before.barriers;
    stats->apply_bytes_moved +=
        apply_after.bytes_moved - apply_before.bytes_moved;
    stats->apply_allocs += apply_after.grow_events - apply_before.grow_events;
    stats->leaves += leaves;
    stats->max_tree_depth = std::max(stats->max_tree_depth, tree.MaxDepth());
    stats->hist_peak_bytes = std::max(stats->hist_peak_bytes,
                                      hists_.PeakBytes());
  }
  ++trees_built_;
  return tree;
}

}  // namespace harp
