#include "core/tree_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace harp {

void ScatterLeafValues(const RegTree& tree, const RowPartitioner& partitioner,
                       ThreadPool& pool, std::vector<double>* margins) {
  std::vector<int> leaf_ids;
  for (int id = 0; id < tree.num_nodes(); ++id) {
    if (tree.node(id).IsLeaf()) leaf_ids.push_back(id);
  }
  pool.ParallelForDynamic(
      static_cast<int64_t>(leaf_ids.size()), 1,
      [&](int64_t begin, int64_t end, int) {
        for (int64_t i = begin; i < end; ++i) {
          const int leaf = leaf_ids[static_cast<size_t>(i)];
          partitioner.AddToMargins(leaf, tree.node(leaf).leaf_value, margins);
        }
      });
}

HarpTreeBuilder::HarpTreeBuilder(const BinnedMatrix& matrix,
                                 const TrainParams& params, ThreadPool& pool)
    : matrix_(matrix),
      params_(params.Validate()),
      pool_(pool),
      evaluator_(params),
      hists_(matrix.TotalBins()),
      partitioner_(matrix.num_rows(), params.use_membuf),
      use_subtraction_(params.use_hist_subtraction &&
                       params.mode != ParallelMode::kASYNC) {
  if (params.use_hist_subtraction && params.mode == ParallelMode::kASYNC) {
    HARP_LOG(Warning) << "histogram subtraction is not supported in ASYNC "
                         "mode (node tasks build children directly); "
                         "ignoring use_hist_subtraction";
  }
}

ParallelMode HarpTreeBuilder::ChooseMode(size_t batch_nodes,
                                         int64_t batch_rows) const {
  switch (params_.mode) {
    case ParallelMode::kDP:
      return ParallelMode::kDP;
    case ParallelMode::kMP:
      return ParallelMode::kMP;
    case ParallelMode::kASYNC:
      // Only the ramp-up phase reaches here; the paper's ASYNC is
      // (X, node parallelism, X) with DP as the X phase.
      return ParallelMode::kDP;
    case ParallelMode::kSYNC:
      break;
  }
  // Phase mixing by a per-node cost model. DP's fixed overhead per node is
  // the replica traffic (zero + reduce): threads x total_bins histogram
  // slots. Its useful work per node is the row scan: avg_rows x M updates.
  // Early in the tree (few big nodes) the scan dominates and DP's
  // conflict-free row blocks win; late in the tree (many tiny nodes) the
  // replica traffic dominates and MP's shared-histogram blocks win. This
  // realizes Table II's mixed schedule with a machine-independent switch.
  if (batch_nodes < 2) return ParallelMode::kDP;
  const int64_t avg_rows =
      batch_rows / static_cast<int64_t>(std::max<size_t>(1, batch_nodes));
  const int64_t scan_per_node =
      avg_rows * static_cast<int64_t>(matrix_.num_features());
  const int64_t replica_per_node =
      static_cast<int64_t>(pool_.num_threads()) *
      static_cast<int64_t>(matrix_.TotalBins());
  return scan_per_node >= replica_per_node ? ParallelMode::kDP
                                           : ParallelMode::kMP;
}

std::vector<int> HarpTreeBuilder::ApplySplitBatch(
    RegTree& tree, std::span<const Candidate> batch) {
  std::vector<int> children;
  children.reserve(batch.size() * 2);
  for (const Candidate& cand : batch) {
    const float cut =
        matrix_.cuts().CutFor(cand.split.feature, cand.split.bin);
    const auto [left, right] = tree.ApplySplit(cand.node_id, cand.split, cut);
    children.push_back(left);
    children.push_back(right);
  }

  // Row partitioning: the whole TopK batch goes through the partitioner's
  // batched count/scatter — one pair of parallel regions for all K nodes
  // instead of regions (or a region of serial partitions) per node, the
  // ApplySplit-phase analogue of the barriers ∝ 2^D/K argument.
  split_tasks_.clear();
  for (size_t i = 0; i < batch.size(); ++i) {
    const Candidate& cand = batch[i];
    split_tasks_.push_back(SplitTask{cand.node_id, children[2 * i],
                                     children[2 * i + 1], cand.split.feature,
                                     cand.split.bin,
                                     cand.split.default_left});
  }
  partitioner_.ApplySplitBatch(split_tasks_, matrix_, &pool_);
  for (int child : children) {
    tree.mutable_node(child).num_rows = partitioner_.NodeSize(child);
  }
  return children;
}

std::vector<Candidate> HarpTreeBuilder::FindSplitsBatch(
    const RegTree& tree, std::span<const int> nodes) {
  const uint32_t num_features = matrix_.num_features();
  // FindSplit parallel grid: nodes x feature chunks. When feature blocks
  // are configured reuse them; otherwise chunk so every thread has work
  // even for small batches.
  int fb_size = params_.feature_blk_size;
  if (fb_size <= 0) {
    fb_size = static_cast<int>(std::max<uint32_t>(
        1, num_features / static_cast<uint32_t>(
                              std::max(1, pool_.num_threads()))));
  }
  const auto fblocks = MakeFeatureBlocks(num_features, fb_size);
  const size_t grid = nodes.size() * fblocks.size();

  std::vector<SplitInfo> partial(grid);
  std::vector<const GHPair*> hist_of(nodes.size());
  std::vector<GHPair> sums(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    hist_of[i] = hists_.Get(nodes[i]);
    sums[i] = tree.node(nodes[i]).sum;
  }

  pool_.ParallelForDynamic(
      static_cast<int64_t>(grid), 1, [&](int64_t begin, int64_t end, int) {
        for (int64_t g = begin; g < end; ++g) {
          const size_t node_idx = static_cast<size_t>(g) / fblocks.size();
          const size_t fb_idx = static_cast<size_t>(g) % fblocks.size();
          const Range fb = fblocks[fb_idx];
          partial[static_cast<size_t>(g)] = evaluator_.FindBestSplit(
              matrix_, hist_of[node_idx], sums[node_idx], fb.first,
              fb.second,
              column_mask_ != nullptr ? column_mask_->data() : nullptr);
        }
      });

  std::vector<Candidate> result(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    SplitInfo best;
    for (size_t fb = 0; fb < fblocks.size(); ++fb) {
      const SplitInfo& s = partial[i * fblocks.size() + fb];
      if (s.BetterThan(best)) best = s;
    }
    result[i] = Candidate{nodes[i], tree.node(nodes[i]).depth, best};
  }
  return result;
}

std::vector<Candidate> HarpTreeBuilder::BuildAndFind(
    RegTree& tree, std::span<const Candidate> batch,
    std::span<const int> children, TrainStats* stats) {
  const size_t total_bins = matrix_.TotalBins();
  const BuildContext ctx = Context();

  // Decide which children get a direct build. With subtraction, only the
  // smaller sibling is scanned; the larger one is parent - sibling.
  std::vector<int> build_list;
  struct SubtractJob {
    int child;
    int sibling;
    int parent;
  };
  std::vector<SubtractJob> subtract_list;
  for (size_t i = 0; i < batch.size(); ++i) {
    const int left = children[2 * i];
    const int right = children[2 * i + 1];
    if (!use_subtraction_) {
      build_list.push_back(left);
      build_list.push_back(right);
      continue;
    }
    const bool left_smaller =
        tree.node(left).num_rows <= tree.node(right).num_rows;
    const int small = left_smaller ? left : right;
    const int large = left_smaller ? right : left;
    build_list.push_back(small);
    subtract_list.push_back(SubtractJob{large, small, batch[i].node_id});
  }

  for (int child : children) hists_.Acquire(child);

  {
    const Stopwatch watch;
    int64_t build_rows = 0;
    for (int node : build_list) build_rows += partitioner_.NodeSize(node);
    const ParallelMode mode =
        ChooseMode(build_list.size(), build_rows);
    if (mode == ParallelMode::kDP) {
      reduce_ns_ += dp_.Build(ctx, build_list);
    } else {
      mp_.Build(ctx, build_list);
    }
    hist_updates_ +=
        build_rows * static_cast<int64_t>(matrix_.num_features());

    if (!subtract_list.empty()) {
      pool_.ParallelForDynamic(
          static_cast<int64_t>(subtract_list.size()), 1,
          [&](int64_t begin, int64_t end, int) {
            for (int64_t i = begin; i < end; ++i) {
              const SubtractJob& job = subtract_list[static_cast<size_t>(i)];
              SubtractHistogram(hists_.Get(job.child),
                                hists_.Get(job.parent),
                                hists_.Get(job.sibling), total_bins);
            }
          });
      // Parent histograms have served their purpose.
      for (const Candidate& cand : batch) hists_.Release(cand.node_id);
    }
    build_ns_ += watch.ElapsedNs();
  }

  const Stopwatch find_watch;
  std::vector<Candidate> found = FindSplitsBatch(tree, children);
  find_ns_ += find_watch.ElapsedNs();
  (void)stats;
  return found;
}

void HarpTreeBuilder::SyncGrow(RegTree& tree, GrowQueue& queue,
                               int64_t& leaves, TrainStats* stats,
                               const std::function<bool()>& stop) {
  const int64_t max_leaves = params_.MaxLeaves();
  const int max_depth = params_.MaxDepth();

  while (!queue.Empty() && leaves < max_leaves && !stop()) {
    const int64_t remaining = max_leaves - leaves;
    const std::vector<Candidate> batch = queue.PopBatch(
        params_.EffectiveTopK(),
        static_cast<int>(std::min<int64_t>(remaining, 1 << 20)));
    if (batch.empty()) break;

    const Stopwatch apply_watch;
    const std::vector<int> children = ApplySplitBatch(tree, batch);
    apply_ns_ += apply_watch.ElapsedNs();
    leaves += static_cast<int64_t>(batch.size());
    if (stats != nullptr) {
      stats->nodes_split += static_cast<int64_t>(batch.size());
    }

    std::vector<Candidate> found = BuildAndFind(tree, batch, children, stats);

    for (size_t i = 0; i < found.size(); ++i) {
      const Candidate& cand = found[i];
      const bool eligible =
          cand.split.IsValid() && cand.depth < max_depth;
      if (eligible) {
        queue.Push(cand);
        // Without subtraction the histogram is only needed for FindSplit.
        if (!use_subtraction_) hists_.Release(cand.node_id);
      } else {
        hists_.Release(cand.node_id);
      }
    }
  }
}

void HarpTreeBuilder::FinalizeLeaves(RegTree& tree) const {
  for (int id = 0; id < tree.num_nodes(); ++id) {
    TreeNode& node = tree.mutable_node(id);
    if (node.IsLeaf()) node.leaf_value = evaluator_.LeafValue(node.sum);
  }
}

RegTree HarpTreeBuilder::BuildTree(const std::vector<GradientPair>& gradients,
                                   TrainStats* stats) {
  build_ns_ = reduce_ns_ = find_ns_ = apply_ns_ = 0;
  hist_updates_ = 0;
  const PartitionStats apply_before = partitioner_.stats();

  const int64_t max_leaves = params_.MaxLeaves();
  const int max_nodes = static_cast<int>(2 * max_leaves);
  partitioner_.Reset(gradients, max_nodes, &pool_);
  hists_.ReleaseAll();

  RegTree tree;
  tree.mutable_nodes().reserve(static_cast<size_t>(max_nodes));
  TreeNode& root = tree.mutable_node(0);
  root.sum = partitioner_.NodeSum(0, &pool_);
  root.num_rows = partitioner_.num_rows();

  // Root histogram + split.
  hists_.Acquire(0);
  {
    const Stopwatch watch;
    const BuildContext ctx = Context();
    const int root_nodes[] = {0};
    if (ChooseMode(1, root.num_rows) == ParallelMode::kDP) {
      reduce_ns_ += dp_.Build(ctx, root_nodes);
    } else {
      mp_.Build(ctx, root_nodes);
    }
    hist_updates_ += static_cast<int64_t>(root.num_rows) *
                     static_cast<int64_t>(matrix_.num_features());
    build_ns_ += watch.ElapsedNs();
  }

  GrowQueue queue(params_.grow_policy);
  int64_t leaves = 1;
  {
    const Stopwatch find_watch;
    const int root_nodes[] = {0};
    std::vector<Candidate> root_cand = FindSplitsBatch(tree, root_nodes);
    find_ns_ += find_watch.ElapsedNs();
    const bool eligible = root_cand[0].split.IsValid() && max_leaves > 1 &&
                          params_.MaxDepth() > 0;
    if (eligible) {
      queue.Push(root_cand[0]);
      if (!use_subtraction_) hists_.Release(0);
    } else {
      hists_.Release(0);
    }
  }

  if (params_.mode == ParallelMode::kASYNC) {
    AsyncGrow(tree, queue, leaves, stats);
  } else {
    SyncGrow(tree, queue, leaves, stats, [] { return false; });
  }

  FinalizeLeaves(tree);

  if (stats != nullptr) {
    // Approximate GHSum write window of one histogram task (Section IV-E:
    // 16 x bin_blk x feature_blk x node_blk bytes).
    const size_t fblocks =
        MakeFeatureBlocks(matrix_.num_features(), params_.feature_blk_size)
            .size();
    const size_t bins_per_block = matrix_.TotalBins() / std::max<size_t>(1, fblocks);
    const size_t node_span =
        params_.mode == ParallelMode::kMP
            ? static_cast<size_t>(params_.node_blk_size)
            : 1;
    stats->write_region_bytes =
        sizeof(GHPair) * bins_per_block * node_span;
    stats->build_hist_ns += build_ns_;
    stats->reduce_ns += reduce_ns_;
    stats->find_split_ns += find_ns_;
    stats->apply_split_ns += apply_ns_;
    stats->hist_updates += hist_updates_;
    const PartitionStats apply_after = partitioner_.stats();
    stats->apply_splits += apply_after.splits - apply_before.splits;
    stats->apply_batches += apply_after.batches - apply_before.batches;
    stats->apply_barriers += apply_after.barriers - apply_before.barriers;
    stats->apply_bytes_moved +=
        apply_after.bytes_moved - apply_before.bytes_moved;
    stats->apply_allocs += apply_after.grow_events - apply_before.grow_events;
    stats->leaves += leaves;
    stats->max_tree_depth = std::max(stats->max_tree_depth, tree.MaxDepth());
    stats->hist_peak_bytes = std::max(stats->hist_peak_bytes,
                                      hists_.PeakBytes());
  }
  return tree;
}

}  // namespace harp
