// Fixed-point gradient quantization for the histogram hot loop.
//
// The paper's Section III-B arithmetic makes BuildHist memory-bound on the
// 16-byte-per-update GHSum traffic plus per-row gradient reads. Following
// the GPU systems that quantize gradient pairs (Mitchell et al.; Zhang et
// al.), this module packs each (g, h) GradientPair into ONE int32 —
// g as a signed 16-bit and h as an unsigned 16-bit fixed-point value — and
// accumulates histograms in int64 cells (g sum in the high 32 bits, h sum
// in the low 32), halving both streams: 8-byte cells instead of 16, 4-byte
// gradient reads instead of 8-12.
//
// Scale selection (per boosting round, from a deterministic pass over the
// gradients): scales are POWERS OF TWO, 2^k, with k the largest exponent
// satisfying both
//   fit:  2^k * max|g|  <= 32767          (every row fits int16)
//   sum:  2^k * sum|g| + N/2 <= 2^30      (any per-cell subset sum, plus
//                                          the worst-case +-1/2 rounding
//                                          per row, fits the 32-bit field)
// (h analogously against 65535 / 2^30, with h >= 0 by construction for
// both objectives). The h field never goes negative, so the low 32 bits
// never borrow from the g field.
//
// Power-of-two scales make dequantization EXACT: every integer sum times
// 2^-k is exactly representable in double (sums are < 2^53), so
// f64 subtraction of two dequantized histograms equals the quantized-
// domain subtraction — the existing parent-minus-sibling SubtractHistogram
// is reused unchanged, and forced-scalar vs forced-AVX2 runs stay
// bit-identical (integer accumulation is order-independent).
//
// Rounding is round-to-nearest-even (scalar std::nearbyintf matches the
// AVX2 cvtps conversion under the default MXCSR mode) or, optionally,
// stochastic (unbiased, hashed from (seed, row), scalar-only so results
// stay independent of thread count and dispatch level).
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "core/gh.h"

namespace harp {

class ThreadPool;

// Fixed-point bounds. g uses the symmetric int16 range so negation is
// safe; h uses the full unsigned 16-bit range (h >= 0).
inline constexpr float kQuantGMax = 32767.0f;
inline constexpr float kQuantHMax = 65535.0f;
// Per-cell 32-bit sum headroom (fit + rounding slack must stay below it).
inline constexpr double kQuantSumLimit = static_cast<double>(1u << 30);

// Per-round quantization scales: scale = 2^exp (exact in float/double).
struct QuantScales {
  int g_exp = 0;
  int h_exp = 0;
  float g_scale = 1.0f;   // 2^g_exp, applied per row at quantize time
  float h_scale = 1.0f;
  double g_inv = 1.0;     // 2^-g_exp, applied per cell at dequantize time
  double h_inv = 1.0;
};

// Packs one quantized pair. qg in [-32767, 32767], qh in [0, 65535].
inline int32_t PackQuant(int32_t qg, int32_t qh) {
  return static_cast<int32_t>((static_cast<uint32_t>(qg) << 16) |
                              (static_cast<uint32_t>(qh) & 0xFFFFu));
}
inline int32_t QuantG(int32_t packed) { return packed >> 16; }
inline int32_t QuantH(int32_t packed) {
  return static_cast<int32_t>(static_cast<uint32_t>(packed) & 0xFFFFu);
}

// Widens a packed pair into the int64 histogram-cell addend: g goes to the
// high 32 bits, h to the low 32. h contributions are non-negative and the
// scale headroom keeps every per-cell h sum below 2^31, so the low field
// never carries into or borrows from the g field.
inline int64_t WidenQuant(int32_t packed) {
  return (static_cast<int64_t>(QuantG(packed)) << 32) +
         static_cast<int64_t>(QuantH(packed));
}

// Field extraction from an accumulated cell (see WidenQuant's invariant).
inline int64_t CellG(int64_t cell) { return cell >> 32; }
inline int64_t CellH(int64_t cell) {
  return static_cast<int64_t>(static_cast<uint32_t>(cell));
}

// Gradient-stream statistics the scale choice depends on. Kept as a
// separate value so distributed workers can aggregate shard-local stats
// (max -> AllreduceMax, sum/rows -> rank-ordered AllreduceSum) and derive
// IDENTICAL scales on every rank from the agreed totals.
struct QuantStats {
  double g_max = 0.0;  // max |g|
  double h_max = 0.0;  // max h
  double g_sum = 0.0;  // sum |g|
  double h_sum = 0.0;  // sum h
  double rows = 0.0;   // row count (double: rides the f64 allreduce exactly)
};

// Scans the gradient array. Deterministic for a fixed input regardless of
// thread count: per-chunk partials (fixed 4096-row chunks) are combined
// serially in chunk order. CHECK-fails on negative hessians (all supported
// objectives produce h >= 0).
QuantStats ComputeQuantStats(const std::vector<GradientPair>& gradients,
                             ThreadPool* pool);

// Largest power-of-two exponents satisfying the fit and sum constraints
// above for the given stats.
QuantScales QuantScalesFromStats(const QuantStats& stats);

// Single-node shorthand: QuantScalesFromStats(ComputeQuantStats(...)).
QuantScales ComputeQuantScales(const std::vector<GradientPair>& gradients,
                               ThreadPool* pool);

// Quantizes every row into `out` (resized to gradients.size()).
// Deterministic rounding dispatches to the simd level's kernel table;
// stochastic rounding (unbiased, hash of (seed, row)) is scalar-only.
// `level` is an int to keep this header free of the kernel-layer types;
// pass static_cast<int>(SimdLevel).
void QuantizeGradients(const std::vector<GradientPair>& gradients,
                       const QuantScales& scales, bool stochastic,
                       uint64_t seed, int simd_level, ThreadPool* pool,
                       AlignedVector<int32_t>* out);

// out[i] = {CellG(cells[i]) * g_inv, CellH(cells[i]) * h_inv} over n slots;
// dispatches to the simd level's table. Overwrites every slot, which is
// what lets the pool skip zero-filling f64 buffers in quantized mode.
void DequantizeHistogram(const int64_t* cells, GHPair* out, size_t n,
                         const QuantScales& scales, int simd_level);

// dst[i] += src[i] over n int64 cells (the DP replica reduction in the
// quantized domain); dispatches to the simd level's table.
void AddHistogramI64(int64_t* dst, const int64_t* src, size_t n,
                     int simd_level);

// Zeroes n cells.
void ClearHistogramI64(int64_t* cells, size_t n);

// Round-trip error bound of one quantized value: |x - deq(q(x))| is at
// most half a quantization step (deterministic rounding) or one full step
// (stochastic). Exposed for the accuracy tests.
inline double QuantStep(double inv_scale) { return inv_scale; }

// One boosting round's quantization state: the scales plus every row's
// packed pair. Owned by the tree builder (refreshed per tree, since the
// gradient distribution shifts every round); builders receive it through
// BuildContext and index `packed` by row id.
struct QuantRound {
  QuantScales scales;
  AlignedVector<int32_t> packed;
};

}  // namespace harp
