// Per-training instrumentation.
//
// Fills three reporting roles:
//   - Fig. 4-style phase breakdown (BuildHist / FindSplit / ApplySplit,
//     plus the DP reduce);
//   - Table I / Table VI-style profiling (utilization, barrier overhead,
//     spin overhead) via the embedded SyncSnapshot delta;
//   - memory-behaviour proxies replacing VTune's hardware counters:
//     ns per histogram update and the configured write-region size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/sync_stats.h"

namespace harp {

struct TrainStats {
  // Phase wall times, summed over trees (orchestration-level timestamps).
  // For ASYNC the phases overlap across threads, so build/find/apply hold
  // summed per-thread task time instead (documented where reported).
  int64_t build_hist_ns = 0;
  int64_t reduce_ns = 0;      // DP model-replica reduction
  int64_t find_split_ns = 0;
  int64_t apply_split_ns = 0;
  int64_t gradient_ns = 0;    // per-iteration gradient computation
  int64_t quantize_ns = 0;    // per-tree gradient quantization (scale scan
                              // + packing; zero on the f64 path)
  int64_t update_ns = 0;      // margin updates after each tree
  int64_t wall_ns = 0;        // total training wall time

  int trees = 0;
  int64_t nodes_split = 0;
  int64_t leaves = 0;
  int max_tree_depth = 0;

  // Memory-behaviour proxies.
  int64_t hist_updates = 0;       // number of (row, feature) increments
  size_t hist_peak_bytes = 0;     // peak live histogram memory
  size_t hist_cell_bytes = 0;     // accumulator cell size the hot loop
                                  // writes: 16 (f64 GHPair) or 8 (int64)
  size_t write_region_bytes = 0;  // cell x bins in one task's write window

  // ApplySplit-phase counters (RowPartitioner PartitionStats deltas over
  // the measured interval). With the arena partitioner, bytes_moved is
  // exactly one element write per row per split, barriers is 2 per
  // *batch* (count + scatter regions, ~1/K of per-node application for
  // TopK batches of K), and allocs stays 0 once storage has grown to the
  // working-set high-water mark.
  int64_t apply_splits = 0;       // nodes partitioned
  int64_t apply_batches = 0;      // batched (single-region-pair) applies
  int64_t apply_barriers = 0;     // parallel regions issued by partitions
  int64_t apply_bytes_moved = 0;  // payload bytes written by scatters
  int64_t apply_allocs = 0;       // partitioner grow events

  // Grow-phase scheduler accounting (pool Snapshot deltas taken around
  // the grow loop of each tree). With the fused-step scheduler a TopK
  // batch costs exactly ONE region launch and pays its synchronization as
  // in-region phase barriers; the region-per-phase path launches >= 5
  // regions per batch and records zero phase barriers. Table VI's
  // barrier-overhead rows are regenerated from these.
  int64_t topk_batches = 0;          // TopK batches popped (grow steps)
  int64_t grow_region_launches = 0;  // RunOnAllThreads launches while growing
  int64_t grow_phase_barriers = 0;   // in-region phase barriers while growing

  // Out-of-core streaming counters, populated only when the bin matrix is
  // backed by an mmap'd cache file (mapped_bytes > 0 is the flag the
  // report keys off, so heap training output is unchanged).
  size_t mapped_bytes = 0;        // bin-matrix bytes living in the mapping
  int64_t oo_advised_bytes = 0;   // prefetcher WILLNEED volume
  int64_t oo_retired_bytes = 0;   // prefetcher DONTNEED volume
  int64_t oo_sweeps = 0;          // full eviction passes over the matrix
  int64_t minor_faults = 0;       // page-fault deltas over training
  int64_t major_faults = 0;
  size_t peak_rss_bytes = 0;      // VmHWM when training finished

  // Synchronization counters accumulated over the measured interval.
  SyncSnapshot sync;

  // Wall seconds of each tree (convergence-vs-time benches).
  std::vector<double> tree_seconds;

  double SecondsPerTree() const;
  // ns per histogram update: latency proxy for the paper's "Average
  // Latency (cycles)" column (monotone in the same memory behaviour).
  double NsPerHistUpdate() const;

  std::string Report() const;
};

}  // namespace harp
