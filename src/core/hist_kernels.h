// Specialized histogram-accumulation kernels: the BuildHist hot path.
//
// The paper's hotspot analysis (Section III, Fig. 4, Table I) shows
// BuildHist dominates training and is memory-bound. The generic
// AccumulateRow reference (hist_builder.h) walks one row at a time through
// a per-row callback and re-tests the bin filter on every feature. The
// kernels here attack exactly that access pattern:
//
//   * 4-row interleaving: each inner iteration accumulates four rows
//     feature-by-feature, so one sweep over the histogram serves four rows
//     (4x less GHSum traffic) and every feature step issues four
//     independent read-modify-write chains for the out-of-order core to
//     overlap.
//   * software prefetching: the bin bytes of upcoming rows (MemBuf entries
//     or gathered rows) and the histogram slots the *next* row group will
//     touch are prefetched while the current group is processed.
//   * compile-time dispatch over {MemBuf, gather} x {full bin range,
//     filtered bin range} x {full feature block, tiled feature block}, so
//     the common DP configuration (MemBuf, no bin filter, one feature
//     block) runs a branch-free inner loop instead of the generic filtered
//     one. The variant is selected ONCE per Build call, not per row.
//
// Accumulation order is preserved: for any histogram slot, contributing
// rows are added in ascending row-list order, exactly as the scalar
// reference does, so histograms — and therefore trees — are bit-identical
// to the generic path (enforced by tests/test_hist_kernels.cpp).
#pragma once

#include <cstdint>
#include <utility>

#include "core/gh.h"
#include "core/row_partitioner.h"
#include "core/simd.h"
#include "data/binned_matrix.h"

namespace harp {

// Contiguous half-open ranges [first, second). (Also re-exported by
// hist_builder.h; kept here so the kernel layer is self-contained.)
using Range = std::pair<uint32_t, uint32_t>;

// Per-matrix constants captured once per Build call (non-owning).
struct HistKernelMatrix {
  const uint8_t* bins = nullptr;          // row-major bin ids
  const uint32_t* bin_offsets = nullptr;  // per-feature histogram offsets
  uint32_t num_features = 0;              // row stride of `bins`
  const GradientPair* gradients = nullptr;  // gather source only
  // Packed per-row quantized pairs (quantize.h layout), indexed by row id.
  // Quantized kernels always gather through this array — the MemBuf
  // entries' float g/h stay authoritative for the partitioner's fused
  // child sums, so they cannot carry the packed bits.
  const int32_t* qgradients = nullptr;
};

// One node's row list; exactly one pointer is set, matching the
// RowPartitioner layout (MemBuf on/off). Points into the node's window of
// the partitioner's flat arena, so it is invalidated when that node is
// split (kernels run strictly before their node's split, so this is safe).
struct HistRowSource {
  const MemBufEntry* entries = nullptr;  // (rid, g, h) triples
  const uint32_t* row_ids = nullptr;     // ids into `gradients`
};

// Accumulates rows [begin, end) of `src` into `hist` over features
// [fb.first, fb.second), restricted to bin ids in [bins.first, bins.second).
// Variants compiled for the full bin range / full feature block ignore the
// corresponding argument.
using HistKernelFn = void (*)(const HistKernelMatrix& m,
                              const HistRowSource& src, uint32_t begin,
                              uint32_t end, GHPair* hist, Range fb,
                              Range bins);

// Quantized counterpart: accumulates WidenQuant(m.qgradients[rid]) addends
// into 8-byte int64 cells (quantize.h layout) instead of 16-byte GHPairs.
using QuantKernelFn = void (*)(const HistKernelMatrix& m,
                               const HistRowSource& src, uint32_t begin,
                               uint32_t end, int64_t* hist, Range fb,
                               Range bins);

// One compiled instantiation of the kernel layer. The scalar TU fills one
// portably; the AVX2 TU (-mavx2 -mfma, HARP_ENABLE_AVX2) fills another.
// Which table runs is a pure runtime decision (core/simd.h).
struct HistKernelTables {
  // [membuf][full bins][full features], as SelectHistKernel indexes.
  HistKernelFn f64[2][2][2];
  QuantKernelFn quant[2][2][2];
  // Elementwise companions that share the table's ISA level:
  // round-to-nearest-even quantization of [begin, end) rows,
  void (*quantize_rows)(const GradientPair* gh, uint32_t begin, uint32_t end,
                        float g_scale, float h_scale, int32_t* out);
  // int64 cells -> f64 GHPairs (exact: integers times a power of two),
  void (*dequantize)(const int64_t* cells, GHPair* out, size_t n,
                     double g_inv, double h_inv);
  // and the quantized-domain replica reduction.
  void (*add_i64)(int64_t* dst, const int64_t* src, size_t n);
};

// The portable table (always available).
const HistKernelTables& ScalarKernelTables();
// The -mavx2 table, or nullptr when the binary was built without
// HARP_ENABLE_AVX2. Availability on the running CPU is the dispatcher's
// job (core/simd.h), not this accessor's.
const HistKernelTables* Avx2KernelTables();
// Table for a resolved level (level must be runnable; see SimdSupported).
const HistKernelTables& KernelTables(SimdLevel level);

// Picks the specialized kernel for a Build call. `full_bin_range` means the
// bin filter passed to every call covers all bin ids the matrix produces;
// `full_feature_block` means fb covers [0, num_features).
HistKernelFn SelectHistKernel(bool use_membuf, bool full_bin_range,
                              bool full_feature_block,
                              SimdLevel level = SimdLevel::kScalar);
QuantKernelFn SelectQuantHistKernel(bool use_membuf, bool full_bin_range,
                                    bool full_feature_block,
                                    SimdLevel level = SimdLevel::kScalar);

// Kernel-call views over the existing structures. `qgradients` may be null
// (f64 path); quantized kernel selection requires it.
HistKernelMatrix MakeHistKernelMatrix(const BinnedMatrix& matrix,
                                      const RowPartitioner& partitioner,
                                      const int32_t* qgradients = nullptr);
HistRowSource MakeHistRowSource(const RowPartitioner& partitioner,
                                int node_id);

}  // namespace harp
