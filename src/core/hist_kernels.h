// Specialized histogram-accumulation kernels: the BuildHist hot path.
//
// The paper's hotspot analysis (Section III, Fig. 4, Table I) shows
// BuildHist dominates training and is memory-bound. The generic
// AccumulateRow reference (hist_builder.h) walks one row at a time through
// a per-row callback and re-tests the bin filter on every feature. The
// kernels here attack exactly that access pattern:
//
//   * 4-row interleaving: each inner iteration accumulates four rows
//     feature-by-feature, so one sweep over the histogram serves four rows
//     (4x less GHSum traffic) and every feature step issues four
//     independent read-modify-write chains for the out-of-order core to
//     overlap.
//   * software prefetching: the bin bytes of upcoming rows (MemBuf entries
//     or gathered rows) and the histogram slots the *next* row group will
//     touch are prefetched while the current group is processed.
//   * compile-time dispatch over {MemBuf, gather} x {full bin range,
//     filtered bin range} x {full feature block, tiled feature block}, so
//     the common DP configuration (MemBuf, no bin filter, one feature
//     block) runs a branch-free inner loop instead of the generic filtered
//     one. The variant is selected ONCE per Build call, not per row.
//
// Accumulation order is preserved: for any histogram slot, contributing
// rows are added in ascending row-list order, exactly as the scalar
// reference does, so histograms — and therefore trees — are bit-identical
// to the generic path (enforced by tests/test_hist_kernels.cpp).
#pragma once

#include <cstdint>
#include <utility>

#include "core/gh.h"
#include "core/row_partitioner.h"
#include "data/binned_matrix.h"

namespace harp {

// Contiguous half-open ranges [first, second). (Also re-exported by
// hist_builder.h; kept here so the kernel layer is self-contained.)
using Range = std::pair<uint32_t, uint32_t>;

// Per-matrix constants captured once per Build call (non-owning).
struct HistKernelMatrix {
  const uint8_t* bins = nullptr;          // row-major bin ids
  const uint32_t* bin_offsets = nullptr;  // per-feature histogram offsets
  uint32_t num_features = 0;              // row stride of `bins`
  const GradientPair* gradients = nullptr;  // gather source only
};

// One node's row list; exactly one pointer is set, matching the
// RowPartitioner layout (MemBuf on/off). Points into the node's window of
// the partitioner's flat arena, so it is invalidated when that node is
// split (kernels run strictly before their node's split, so this is safe).
struct HistRowSource {
  const MemBufEntry* entries = nullptr;  // (rid, g, h) triples
  const uint32_t* row_ids = nullptr;     // ids into `gradients`
};

// Accumulates rows [begin, end) of `src` into `hist` over features
// [fb.first, fb.second), restricted to bin ids in [bins.first, bins.second).
// Variants compiled for the full bin range / full feature block ignore the
// corresponding argument.
using HistKernelFn = void (*)(const HistKernelMatrix& m,
                              const HistRowSource& src, uint32_t begin,
                              uint32_t end, GHPair* hist, Range fb,
                              Range bins);

// Picks the specialized kernel for a Build call. `full_bin_range` means the
// bin filter passed to every call covers all bin ids the matrix produces;
// `full_feature_block` means fb covers [0, num_features).
HistKernelFn SelectHistKernel(bool use_membuf, bool full_bin_range,
                              bool full_feature_block);

// Kernel-call views over the existing structures.
HistKernelMatrix MakeHistKernelMatrix(const BinnedMatrix& matrix,
                                      const RowPartitioner& partitioner);
HistRowSource MakeHistRowSource(const RowPartitioner& partitioner,
                                int node_id);

}  // namespace harp
