// FindSplit: the Eq. 2 / Eq. 3 arithmetic and histogram enumeration.
#pragma once

#include <cstdint>

#include "core/gh.h"
#include "core/params.h"
#include "core/split.h"
#include "data/binned_matrix.h"

namespace harp {

class SplitEvaluator {
 public:
  explicit SplitEvaluator(const TrainParams& params)
      : reg_lambda_(params.reg_lambda),
        min_split_loss_(params.min_split_loss),
        min_child_weight_(params.min_child_weight),
        learning_rate_(params.learning_rate) {}

  // Optimal leaf weight w* = -G / (H + lambda)  (Eq. 2).
  double RawLeafWeight(const GHPair& sum) const {
    return -sum.g / (sum.h + reg_lambda_);
  }

  // Leaf value as stored in the tree: learning_rate * w*.
  double LeafValue(const GHPair& sum) const {
    return learning_rate_ * RawLeafWeight(sum);
  }

  // G^2 / (H + lambda), the per-child term of the score function.
  double ChildScore(const GHPair& sum) const {
    return sum.g * sum.g / (sum.h + reg_lambda_);
  }

  // Split gain S(L, R) of Eq. 3 (gamma already subtracted).
  double SplitGain(const GHPair& parent, const GHPair& left,
                   const GHPair& right) const {
    return 0.5 * (ChildScore(left) + ChildScore(right) - ChildScore(parent)) -
           min_split_loss_;
  }

  bool SatisfiesChildWeight(const GHPair& sum) const {
    return sum.h >= min_child_weight_;
  }

  // Scans node histogram `hist` (TotalBins() GHPair slots, indexed by
  // matrix.BinOffset(f) + bin) over features [feature_begin, feature_end)
  // and returns the best split. `node_sum` is the node's gradient total.
  // For each feature both missing-value directions are evaluated.
  //
  // Deterministic: features/bins are scanned in ascending order and ties
  // are resolved by SplitInfo::BetterThan, so any partition of the feature
  // range yields the same overall winner after merging.
  //
  // `column_mask` (optional, num_features bytes) restricts the search to
  // features with a non-zero mask byte (per-tree column sampling).
  SplitInfo FindBestSplit(const BinnedMatrix& matrix, const GHPair* hist,
                          const GHPair& node_sum, uint32_t feature_begin,
                          uint32_t feature_end,
                          const uint8_t* column_mask = nullptr) const;

 private:
  double reg_lambda_;
  double min_split_loss_;
  double min_child_weight_;
  double learning_rate_;
};

}  // namespace harp
