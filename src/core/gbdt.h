// Boosting driver and the HarpGBDT trainer facade.
//
// RunBoosting is trainer-agnostic: HarpGBDT and the reimplemented XGBoost/
// LightGBM baselines all plug their TreeBuilderBase into the same loop, so
// comparisons hold gradient computation, margin updates, metrics and
// instrumentation identical — the controlled-experiment setup the paper's
// Section V-A2 argues for.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/model.h"
#include "core/params.h"
#include "core/train_stats.h"
#include "core/tree_builder.h"
#include "data/binned_matrix.h"
#include "data/dataset.h"
#include "data/ingest_stats.h"
#include "parallel/thread_pool.h"

namespace harp {

// Invoked after each boosting iteration. `margins` are the updated raw
// training-set margins; `tree_seconds` is the wall time of this tree's
// gradient+build+update cycle.
struct IterationInfo {
  int iteration;
  const RegTree& tree;
  const std::vector<double>& margins;
  double tree_seconds;
};
using IterCallback = std::function<void(const IterationInfo&)>;

// Validation-set tracking and early stopping. Pass to RunBoosting/Train;
// history/best_* are filled during training.
struct EvalSet {
  const Dataset* data = nullptr;  // raw validation rows + labels

  // Stop after this many consecutive iterations without metric improvement
  // (0 = never stop early, just record). Improvement respects the metric's
  // direction: AUC/NDCG stop when they cease to *increase*, the loss
  // metrics when they cease to decrease.
  int early_stopping_rounds = 0;

  // Metric name override (see Metric::Create). Resolution order: this
  // field, then params.eval_metric, then Metric::DefaultName(objective).
  std::string metric;

  // Outputs.
  std::vector<double> history;   // metric after each iteration
  int best_iteration = -1;       // 0-based iteration with the best metric
  double best_metric = 0.0;
  std::string metric_name;       // resolved canonical name
  bool higher_is_better = false; // direction of the resolved metric
};

// Trains params.num_trees trees with `builder`. Fills stats (when non-null)
// with phase times, tree stats and the pool's synchronization delta for the
// training interval. Honours params.subsample / colsample_bytree (the
// latter only for builders implementing SetColumnMask) and optional early
// stopping on `eval`.
GbdtModel RunBoosting(const BinnedMatrix& matrix,
                      const std::vector<float>& labels,
                      const TrainParams& params, ThreadPool& pool,
                      TreeBuilderBase& builder, TrainStats* stats = nullptr,
                      const IterCallback& callback = {},
                      EvalSet* eval = nullptr);

// HarpGBDT's user-facing trainer: binning + boosting with HarpTreeBuilder.
class GbdtTrainer {
 public:
  explicit GbdtTrainer(TrainParams params);

  // End-to-end: quantile cuts, binning, boosting. When `ingest` is
  // non-null its sketch/bin wall times are filled in (the parse phases
  // were already recorded by whichever reader produced `dataset`), so
  // callers can print one ingest summary covering the whole pipeline.
  GbdtModel Train(const Dataset& dataset, TrainStats* stats = nullptr,
                  const IterCallback& callback = {},
                  EvalSet* eval = nullptr, IngestStats* ingest = nullptr);

  // Boosting only, on a pre-binned matrix (benchmarks pre-bin once so
  // "training time ... excludes data loading and one-time initialization").
  GbdtModel TrainBinned(const BinnedMatrix& matrix,
                        const std::vector<float>& labels,
                        TrainStats* stats = nullptr,
                        const IterCallback& callback = {},
                        EvalSet* eval = nullptr);

  const TrainParams& params() const { return params_; }

 private:
  TrainParams params_;
};

}  // namespace harp
