// The AVX2 kernel TU: the one translation unit in the whole build that is
// compiled with -mavx2 -mfma (see the HARP_ENABLE_AVX2 option in
// src/CMakeLists.txt). It re-instantiates the kernel layer from
// hist_kernels_impl.h with the explicit-intrinsic paths enabled; nothing
// here runs unless the runtime dispatcher (core/simd.h) selected kAVX2
// after probing the CPU, so linking this TU never breaks portability.
#if !defined(__AVX2__)
#error "hist_kernels_avx2.cpp must be compiled with -mavx2 (HARP_ENABLE_AVX2)"
#endif

#define HARP_KERNEL_NS kernels_avx2
#include "core/hist_kernels_impl.h"
#undef HARP_KERNEL_NS
