// Split candidate descriptor and deterministic comparison.
#pragma once

#include <cstdint>
#include <limits>

#include "core/gh.h"

namespace harp {

struct SplitInfo {
  // Loss reduction of Eq. 3 (already minus gamma); <= 0 means "do not
  // split". Initialized invalid.
  double gain = -std::numeric_limits<double>::infinity();
  uint32_t feature = 0;
  // Rows with bin in [1, split_bin] go left; bin must be >= 1.
  uint32_t bin = 0;
  // Direction for missing values (bin 0).
  bool default_left = false;
  // Gradient sums of the would-be children (missing bucket included on the
  // default side). Used to seed child candidates without a re-scan.
  GHPair left_sum;
  GHPair right_sum;

  bool IsValid() const { return gain > 0.0; }

  // Strict-weak deterministic ordering: higher gain wins; ties broken by
  // lower feature, then lower bin, then missing-right before missing-left.
  // Determinism here is what makes DP/MP/SYNC produce identical trees no
  // matter how FindSplit work is partitioned across threads.
  bool BetterThan(const SplitInfo& other) const {
    if (gain != other.gain) return gain > other.gain;
    if (feature != other.feature) return feature < other.feature;
    if (bin != other.bin) return bin < other.bin;
    return !default_left && other.default_left;
  }
};

}  // namespace harp
