// Block-wise BuildHist implementations (Section IV-A).
//
// Both builders fill per-node histograms for a *batch* of nodes; they
// differ in how the <row, node, bin, feature> iteration space is cut into
// tasks:
//
//   DP (data parallelism): rows of a node block are chunked into row
//   blocks; each thread accumulates into a private replica of the node
//   block's histograms, then replicas are reduced. Few redundant reads,
//   but replica memory/zeroing/reduction grows with node_blk_size and the
//   write region spans the whole feature space unless feature blocks tile
//   the inner loop.
//
//   MP (model parallelism): tasks are <node_blk x feature_blk x bin_blk>
//   cubes writing disjoint histogram regions of the *shared* histograms —
//   no replicas, no reduction — at the cost of re-reading the node's rows
//   once per feature block / bin range (redundant reads of MemBuf or the
//   gradient array).
//
// Both honour Table IV's block parameters; standard designs fall out as
// special cases (feature_blk=1,node_blk=1 = classic feature-wise MP;
// feature_blk=0,node_blk=1,row blocks = XGB-Hist-style DP).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "core/gh.h"
#include "core/hist_kernels.h"
#include "core/histogram.h"
#include "core/params.h"
#include "core/quantize.h"
#include "core/row_partitioner.h"
#include "core/train_stats.h"
#include "data/binned_matrix.h"
#include "parallel/thread_pool.h"
#include "parallel/touched_regions.h"

namespace harp {

// Everything a builder needs for one tree. Non-owning.
struct BuildContext {
  const BinnedMatrix& matrix;
  const TrainParams& params;
  ThreadPool& pool;
  RowPartitioner& partitioner;
  HistogramPool& hists;
  // Non-null selects the quantized accumulation path: kernels gather the
  // packed pairs, accumulate int64 cells, and the builder dequantizes into
  // the pool's f64 histograms before any reader (find / subtract) sees
  // them. Null (the default) is the f64 accuracy-oracle path.
  const QuantRound* quant = nullptr;
  // Resolved kernel-table level for this tree (see core/simd.h).
  SimdLevel simd = SimdLevel::kScalar;
};

// (`Range` — contiguous half-open [first, second) — comes from
// hist_kernels.h, the layer the builders dispatch into.)

// Feature ranges of at most `feature_blk_size` features (0 = one block).
std::vector<Range> MakeFeatureBlocks(uint32_t num_features,
                                     int feature_blk_size);
// In-place variant reusing `out`'s capacity (steady-state zero-alloc
// staging in the builders).
void FillFeatureBlocks(uint32_t num_features, int feature_blk_size,
                       std::vector<Range>* out);
// Likewise for MakeBinRanges.
void FillBinRanges(int bin_blk_size, uint32_t num_bins,
                   std::vector<Range>* out);

// Bin-id ranges of at most `bin_blk_size` bins covering [0, num_bins).
// Pass the matrix's actual MaxBins() so bin blocking never schedules
// passes over bin ids no feature produces. bin_blk_size >= num_bins yields
// the single full range (blocking disabled).
std::vector<Range> MakeBinRanges(int bin_blk_size, uint32_t num_bins = 256);

// Groups `nodes` into blocks of `node_blk_size`.
std::vector<std::span<const int>> MakeNodeBlocks(std::span<const int> nodes,
                                                 int node_blk_size);

// Accumulates one row into `hist` over the features of `fb`, restricted to
// bin ids in `bins` (pass {0, 256} for no filtering). This is the REFERENCE
// scalar kernel: the builders run the specialized hist_kernels variants,
// which must stay bit-identical to iterating rows through this function
// (tests/test_hist_kernels.cpp); baselines and tests still call it.
inline void AccumulateRow(const uint8_t* row_bins, float g, float h,
                          const BinnedMatrix& matrix, GHPair* hist,
                          Range fb, Range bins) {
  if (bins.first == 0 && bins.second >= 256) {
    for (uint32_t f = fb.first; f < fb.second; ++f) {
      hist[matrix.BinOffset(f) + row_bins[f]].Add(g, h);
    }
  } else {
    for (uint32_t f = fb.first; f < fb.second; ++f) {
      const uint8_t bin = row_bins[f];
      if (bin >= bins.first && bin < bins.second) {
        hist[matrix.BinOffset(f) + bin].Add(g, h);
      }
    }
  }
}

// Data-parallel builder. Replica scratch persists across node blocks AND
// trees: storage only ever grows, regions a thread dirtied are tracked per
// thread per node block and cleared lazily at the start of the NEXT
// Build's accumulation region (each thread wipes the dirty bytes inside
// its own replica range, so no extra parallel region / barrier is spent on
// clearing), and untouched replicas are skipped in the reduction entirely.
class HistBuilderDP {
 public:
  // Counters for the replica lifecycle (tests and diagnostics).
  struct ReplicaStats {
    int64_t grow_events = 0;      // storage (re)allocations
    int64_t node_blocks = 0;      // node blocks processed
    int64_t regions_touched = 0;  // (thread, node) regions dirtied+cleared
    int64_t regions_total = 0;    // threads x block nodes, summed
  };

  // Builds histograms for `nodes` (already acquired in ctx.hists).
  // Returns the wall nanoseconds spent in the reduction step (reported
  // separately in the Fig. 4 breakdown).
  int64_t Build(const BuildContext& ctx, std::span<const int> nodes);

  // Fused-step form: collective — every region thread calls it with its
  // id; per-block serial glue (task staging, reduce prep, dirty-ledger
  // update) runs in barrier epilogues instead of between region launches.
  // Bit-identical to Build (same tasks, same kernels, same ascending-
  // thread-order reduction). Adds the reduce wall time (epilogue-to-
  // epilogue) to *reduce_ns.
  void BuildInRegion(const BuildContext& ctx, std::span<const int> nodes,
                     ThreadPool::FusedRegion& region, int thread_id,
                     int64_t* reduce_ns);

  const ReplicaStats& replica_stats() const { return replica_stats_; }
  // Currently retained replica storage, in GHPair slots.
  size_t replica_capacity() const { return replicas_.size(); }

 private:
  struct RowTask {
    uint32_t local_node;
    uint32_t begin;
    uint32_t end;
  };

  // Serial per-Build setup (kernel selection, feature blocks) and per-
  // block staging (row tasks, replica growth, touched reset); the phase
  // loops execute what these staged. Shared by both schedulers.
  void BeginBuild(const BuildContext& ctx);
  void StageBlock(const BuildContext& ctx, std::span<const int> nodes,
                  size_t block_begin);
  void ClearThread(int thread_id);
  void RunRowTask(const BuildContext& ctx, int thread_id, size_t task_index);
  void PrepReduce(const BuildContext& ctx);
  void ReduceRange(int64_t begin, int64_t end);
  // Quantized-domain counterpart: sums contributors' int64 cells (order-
  // independent) and dequantizes straight into the pool histograms.
  void ReduceRangeQuant(int64_t begin, int64_t end);
  void UpdateLedger();

  AlignedVector<GHPair> replicas_;
  // Quantized-mode replica storage (int64 cells; same layout/ledger as
  // replicas_). A builder instance uses exactly one of the two arrays for
  // its whole lifetime — the dirty ledger cannot mix cell types (checked).
  AlignedVector<int64_t> qreplicas_;
  TouchedRegions touched_;
  // Dirtied-but-not-yet-cleared [begin, end) slot intervals of replicas_.
  // Flat offsets, so they survive layout (stride) changes across blocks.
  std::vector<std::pair<size_t, size_t>> dirty_;
  ReplicaStats replica_stats_;

  // Per-Build / per-block staging (grow-only member scratch; serial glue
  // writes it, phase loops read it).
  std::vector<Range> feature_blocks_;
  HistKernelMatrix km_;
  HistKernelFn kernel_ = nullptr;
  QuantKernelFn qkernel_ = nullptr;
  const QuantRound* quant_ = nullptr;
  SimdLevel simd_ = SimdLevel::kScalar;
  int quant_mode_ = -1;  // -1 unset, else 0/1: fixed per instance
  std::span<const int> block_;
  std::vector<RowTask> tasks_;
  std::vector<HistRowSource> sources_;
  std::vector<GHPair*> dst_;
  std::vector<std::vector<int>> contributors_;
  size_t total_bins_ = 0;
  // Slots actually holding histogram content per replica (block nodes x
  // total bins): the reduce domain. replica_stride_ is this rounded up to
  // a whole number of kHistAlignBytes lines so thread boundaries never
  // share a cache line; the padding is never written and stays zero.
  size_t content_slots_ = 0;
  size_t replica_stride_ = 0;
  int threads_ = 0;
  int64_t reduce_start_ns_ = 0;
};

// Model-parallel (block-wise) builder; writes shared histograms.
class HistBuilderMP {
 public:
  void Build(const BuildContext& ctx, std::span<const int> nodes);

  // Fused-step support: stages the <node_blk x feature_blk x bin_blk>
  // cube task list for `nodes` into member scratch (serial; grow-only)
  // and returns the task count. Distinct tasks write disjoint histogram
  // regions, so any thread may RunTask any staged index in any order —
  // this is what lets the builder's overlap scheduler start a node's
  // subtract/find as soon as that node's cubes drain.
  size_t StageTasks(const BuildContext& ctx, std::span<const int> nodes);
  void RunTask(const BuildContext& ctx, size_t task_index) const;
  // Nodes written by staged task `task_index` (its node block).
  std::span<const int> TaskNodes(size_t task_index) const;

  // Quantized mode: converts `node`'s staged int64 accumulator into its
  // pool f64 histogram (no-op otherwise). The fused overlap scheduler
  // calls this from the cube-drain event, BEFORE publishing the node's
  // subtract/find tasks — exactly one thread per node reaches that event,
  // so no synchronization beyond the existing publish is needed.
  void DequantizeNode(int node) const;

  int64_t grow_events() const { return grow_events_; }

 private:
  struct Task {
    uint32_t node_block;
    uint32_t feature_block;
    uint32_t bin_range;
  };

  // Cached geometry + per-call staging (grow-only member scratch).
  std::vector<Range> feature_blocks_;
  std::vector<Range> bin_ranges_;
  std::vector<std::span<const int>> node_blocks_;
  std::vector<Task> tasks_;
  std::vector<GHPair*> hist_of_;
  std::vector<HistRowSource> source_of_;
  std::vector<uint32_t> rows_of_;
  std::vector<size_t> node_pos_;
  HistKernelMatrix km_;
  HistKernelFn kernel_ = nullptr;
  QuantKernelFn qkernel_ = nullptr;
  const QuantRound* quant_ = nullptr;
  SimdLevel simd_ = SimdLevel::kScalar;
  // Quantized mode: one flat arena of int64 accumulators, one aligned
  // stride per staged node (cube tasks write disjoint regions of these
  // instead of the shared f64 histograms; DequantizeNode converts).
  AlignedVector<int64_t> qhists_;
  std::vector<int64_t*> qhist_of_;
  size_t qstride_ = 0;
  size_t staged_nodes_ = 0;
  size_t total_bins_ = 0;
  int64_t grow_events_ = 0;
};

// Serial per-node build used by ASYNC node tasks (one thread builds the
// whole node, tiled by feature blocks).
void BuildHistSerial(const BuildContext& ctx, int node_id, GHPair* hist);

}  // namespace harp
