// Block-wise BuildHist implementations (Section IV-A).
//
// Both builders fill per-node histograms for a *batch* of nodes; they
// differ in how the <row, node, bin, feature> iteration space is cut into
// tasks:
//
//   DP (data parallelism): rows of a node block are chunked into row
//   blocks; each thread accumulates into a private replica of the node
//   block's histograms, then replicas are reduced. Few redundant reads,
//   but replica memory/zeroing/reduction grows with node_blk_size and the
//   write region spans the whole feature space unless feature blocks tile
//   the inner loop.
//
//   MP (model parallelism): tasks are <node_blk x feature_blk x bin_blk>
//   cubes writing disjoint histogram regions of the *shared* histograms —
//   no replicas, no reduction — at the cost of re-reading the node's rows
//   once per feature block / bin range (redundant reads of MemBuf or the
//   gradient array).
//
// Both honour Table IV's block parameters; standard designs fall out as
// special cases (feature_blk=1,node_blk=1 = classic feature-wise MP;
// feature_blk=0,node_blk=1,row blocks = XGB-Hist-style DP).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "core/gh.h"
#include "core/histogram.h"
#include "core/params.h"
#include "core/row_partitioner.h"
#include "core/train_stats.h"
#include "data/binned_matrix.h"
#include "parallel/thread_pool.h"

namespace harp {

// Everything a builder needs for one tree. Non-owning.
struct BuildContext {
  const BinnedMatrix& matrix;
  const TrainParams& params;
  ThreadPool& pool;
  RowPartitioner& partitioner;
  HistogramPool& hists;
};

// Contiguous half-open ranges [first, second).
using Range = std::pair<uint32_t, uint32_t>;

// Feature ranges of at most `feature_blk_size` features (0 = one block).
std::vector<Range> MakeFeatureBlocks(uint32_t num_features,
                                     int feature_blk_size);

// Bin-id ranges of at most `bin_blk_size` bins covering [0, 256).
// bin_blk_size >= 256 yields the single full range (blocking disabled).
std::vector<Range> MakeBinRanges(int bin_blk_size);

// Groups `nodes` into blocks of `node_blk_size`.
std::vector<std::span<const int>> MakeNodeBlocks(std::span<const int> nodes,
                                                 int node_blk_size);

// Accumulates one row into `hist` over the features of `fb`, restricted to
// bin ids in `bins` (pass {0, 256} for no filtering). The innermost kernel
// of every trainer in this repo.
inline void AccumulateRow(const uint8_t* row_bins, float g, float h,
                          const BinnedMatrix& matrix, GHPair* hist,
                          Range fb, Range bins) {
  if (bins.first == 0 && bins.second >= 256) {
    for (uint32_t f = fb.first; f < fb.second; ++f) {
      hist[matrix.BinOffset(f) + row_bins[f]].Add(g, h);
    }
  } else {
    for (uint32_t f = fb.first; f < fb.second; ++f) {
      const uint8_t bin = row_bins[f];
      if (bin >= bins.first && bin < bins.second) {
        hist[matrix.BinOffset(f) + bin].Add(g, h);
      }
    }
  }
}

// Data-parallel builder. Holds reusable replica scratch across batches.
class HistBuilderDP {
 public:
  // Builds histograms for `nodes` (already acquired in ctx.hists).
  // Returns the wall nanoseconds spent in the reduction step (reported
  // separately in the Fig. 4 breakdown).
  int64_t Build(const BuildContext& ctx, std::span<const int> nodes);

 private:
  AlignedVector<GHPair> replicas_;
};

// Model-parallel (block-wise) builder; writes shared histograms.
class HistBuilderMP {
 public:
  void Build(const BuildContext& ctx, std::span<const int> nodes);
};

// Serial per-node build used by ASYNC node tasks (one thread builds the
// whole node, tiled by feature blocks).
void BuildHistSerial(const BuildContext& ctx, int node_id, GHPair* hist);

}  // namespace harp
