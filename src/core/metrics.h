// Evaluation metrics. AUC is the paper's accuracy metric (Section V-A4).
#pragma once

#include <vector>

namespace harp {

// Area under the ROC curve. `scores` may be margins or probabilities (any
// monotone transform gives the same AUC). Ties contribute 1/2. Returns 0.5
// when either class is absent.
double Auc(const std::vector<float>& labels, const std::vector<double>& scores);

// Mean negative log-likelihood of binary labels given probabilities.
double LogLoss(const std::vector<float>& labels,
               const std::vector<double>& probabilities);

// Root mean squared error.
double Rmse(const std::vector<float>& labels,
            const std::vector<double>& predictions);

// Fraction misclassified at a 0.5 probability threshold.
double ErrorRate(const std::vector<float>& labels,
                 const std::vector<double>& probabilities);

}  // namespace harp
