// Evaluation metrics. AUC is the paper's accuracy metric (Section V-A4).
//
// Two layers:
//   - free functions (Auc, LogLoss, ...): the hand-checkable kernels;
//   - the Metric interface: a named, direction-aware registry the
//     trainer's EvalSet / early stopping runs against. Metrics evaluate on
//     *transformed* predictions (probabilities for logistic, rates for
//     Poisson, raw scores for the regression/ranking losses) — every
//     transform is monotone, so rank metrics (AUC, NDCG) are unaffected.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace harp {

enum class ObjectiveKind;

// Area under the ROC curve. `scores` may be margins or probabilities (any
// monotone transform gives the same AUC). Ties contribute 1/2. Returns 0.5
// when either class is absent.
double Auc(const std::vector<float>& labels, const std::vector<double>& scores);

// Mean negative log-likelihood of binary labels given probabilities.
double LogLoss(const std::vector<float>& labels,
               const std::vector<double>& probabilities);

// Root mean squared error.
double Rmse(const std::vector<float>& labels,
            const std::vector<double>& predictions);

// Fraction misclassified at a 0.5 probability threshold.
double ErrorRate(const std::vector<float>& labels,
                 const std::vector<double>& probabilities);

// Mean pinball loss at quantile `alpha`: (y - p)(alpha - 1[y < p]).
double PinballLoss(const std::vector<float>& labels,
                   const std::vector<double>& predictions, double alpha);

// Mean Poisson deviance 2 (y log(y/mu) - y + mu) of non-negative labels
// against predicted rates `mu` (clamped to >= 1e-15).
double MeanPoissonDeviance(const std::vector<float>& labels,
                           const std::vector<double>& rates);

// Mean NDCG@k over query groups (group g = rows [group_ptr[g],
// group_ptr[g+1])), with exponential gains 2^rel - 1 and log2 discounts.
// Docs are ranked by score desc, ties broken by row index asc (matching
// the LambdaRank objective). Queries whose ideal DCG is 0 (no relevant
// docs) are skipped; returns 1.0 if every query is skipped.
double NdcgAtK(const std::vector<float>& labels,
               const std::vector<double>& scores,
               const std::vector<uint32_t>& group_ptr, int k);

// Knobs for parameterized metrics.
struct MetricConfig {
  double quantile_alpha = 0.5;  // "pinball"
  int ndcg_k = 10;              // "ndcg" without an explicit @k
};

// Named validation metric (EvalSet / early stopping).
class Metric {
 public:
  virtual ~Metric() = default;

  // Canonical name ("ndcg@10", "pinball", ...).
  virtual std::string name() const = 0;

  // Direction for best-iteration tracking and early stopping.
  virtual bool higher_is_better() const { return false; }

  // True when Evaluate requires query groups (NDCG).
  virtual bool needs_groups() const { return false; }

  // `predictions` are objective-transformed margins; `group_ptr` may be
  // null for ungrouped data.
  virtual double Evaluate(const std::vector<float>& labels,
                          const std::vector<double>& predictions,
                          const std::vector<uint32_t>* group_ptr) const = 0;

  // Accepted names: "logloss", "rmse", "auc", "error", "pinball",
  // "poisson-deviance", "ndcg", "ndcg@<k>". CHECK-fails on unknown names.
  static std::unique_ptr<Metric> Create(const std::string& name,
                                        const MetricConfig& config = {});

  // The metric an objective is conventionally evaluated with: logloss,
  // rmse, pinball, poisson-deviance, ndcg@<config.ndcg_k>.
  static std::string DefaultName(ObjectiveKind kind,
                                 const MetricConfig& config = {});
};

}  // namespace harp
