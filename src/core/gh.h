// Gradient-pair types.
//
// Per-row gradients are float32 (they are read billions of times and float
// precision is ample for first/second-order gradients); histogram
// accumulators are float64 pairs — 16 bytes per GHSum element, matching the
// paper's memory-access arithmetic in Section III-B ("one read operation
// and one write operation to GHSum, 16 Bytes in Double").
#pragma once

#include <cstdint>

namespace harp {

// Histogram accumulator element (one GHSum cell).
struct GHPair {
  double g = 0.0;
  double h = 0.0;

  GHPair& operator+=(const GHPair& other) {
    g += other.g;
    h += other.h;
    return *this;
  }

  GHPair& operator-=(const GHPair& other) {
    g -= other.g;
    h -= other.h;
    return *this;
  }

  friend GHPair operator+(GHPair a, const GHPair& b) { return a += b; }
  friend GHPair operator-(GHPair a, const GHPair& b) { return a -= b; }

  void Add(float gf, float hf) {
    g += static_cast<double>(gf);
    h += static_cast<double>(hf);
  }

  bool operator==(const GHPair& other) const = default;
};

// Per-row gradient storage.
struct GradientPair {
  float g = 0.0f;
  float h = 0.0f;
};

}  // namespace harp
