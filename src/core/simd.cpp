#include "core/simd.h"

#include "common/env.h"
#include "common/logging.h"
#include "core/hist_kernels.h"

namespace harp {

SimdLevel DetectSimdLevel() {
  static const SimdLevel detected = [] {
    if (Avx2KernelTables() == nullptr) return SimdLevel::kScalar;
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
#endif
    return SimdLevel::kScalar;
  }();
  return detected;
}

bool SimdSupported(SimdLevel level) {
  return level == SimdLevel::kScalar || DetectSimdLevel() == SimdLevel::kAVX2;
}

std::string ToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAVX2: return "avx2";
  }
  return "?";
}

bool ParseSimdLevel(const std::string& text, SimdLevel* out) {
  if (text == "scalar") { *out = SimdLevel::kScalar; return true; }
  if (text == "avx2") { *out = SimdLevel::kAVX2; return true; }
  return false;
}

SimdLevel ResolveSimdLevel(const std::string& request) {
  std::string text = request;
  if (text == "auto") {
    text = GetEnvString("HARP_SIMD", "auto");
    if (text == "auto") return DetectSimdLevel();
  }
  SimdLevel level = SimdLevel::kScalar;
  HARP_CHECK(ParseSimdLevel(text, &level))
      << "unknown simd level '" << text << "' (want auto|scalar|avx2)";
  if (!SimdSupported(level)) {
    HARP_LOG(Warning) << "simd level '" << text
                      << "' not available in this binary/CPU; "
                         "falling back to scalar kernels";
    return SimdLevel::kScalar;
  }
  return level;
}

}  // namespace harp
