#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/logging.h"
#include "common/timer.h"
#include "core/hist_builder.h"

namespace harp {

void FillFeatureBlocks(uint32_t num_features, int feature_blk_size,
                       std::vector<Range>* out) {
  out->clear();
  const uint32_t step = feature_blk_size <= 0
                            ? num_features
                            : static_cast<uint32_t>(feature_blk_size);
  for (uint32_t begin = 0; begin < num_features; begin += step) {
    out->emplace_back(begin, std::min(num_features, begin + step));
  }
}

std::vector<Range> MakeFeatureBlocks(uint32_t num_features,
                                     int feature_blk_size) {
  std::vector<Range> blocks;
  FillFeatureBlocks(num_features, feature_blk_size, &blocks);
  return blocks;
}

void FillBinRanges(int bin_blk_size, uint32_t num_bins,
                   std::vector<Range>* out) {
  out->clear();
  if (bin_blk_size >= static_cast<int>(num_bins)) {
    out->emplace_back(0u, num_bins);
    return;
  }
  const uint32_t step = static_cast<uint32_t>(std::max(1, bin_blk_size));
  for (uint32_t begin = 0; begin < num_bins; begin += step) {
    out->emplace_back(begin, std::min(num_bins, begin + step));
  }
}

std::vector<Range> MakeBinRanges(int bin_blk_size, uint32_t num_bins) {
  std::vector<Range> ranges;
  FillBinRanges(bin_blk_size, num_bins, &ranges);
  return ranges;
}

std::vector<std::span<const int>> MakeNodeBlocks(std::span<const int> nodes,
                                                 int node_blk_size) {
  std::vector<std::span<const int>> blocks;
  const size_t step = static_cast<size_t>(std::max(1, node_blk_size));
  for (size_t begin = 0; begin < nodes.size(); begin += step) {
    blocks.push_back(nodes.subspan(begin,
                                   std::min(step, nodes.size() - begin)));
  }
  return blocks;
}

void HistBuilderDP::BeginBuild(const BuildContext& ctx) {
  total_bins_ = ctx.matrix.TotalBins();
  threads_ = ctx.pool.num_threads();
  quant_ = ctx.quant;
  simd_ = ctx.simd;
  // The dirty ledger tracks slot intervals of ONE storage array; letting a
  // builder instance alternate between f64 and int64 replicas would leave
  // stale garbage in whichever array the ledger was not tracking.
  const int mode = quant_ != nullptr ? 1 : 0;
  HARP_CHECK(quant_mode_ == -1 || quant_mode_ == mode)
      << "a HistBuilderDP instance cannot switch histogram storage modes";
  quant_mode_ = mode;
  FillFeatureBlocks(ctx.matrix.num_features(), ctx.params.feature_blk_size,
                    &feature_blocks_);
  // Kernel selected once per Build call. DP never bin-filters, so the full
  // bin-range variant applies; one feature block additionally drops the
  // fb-range indirection from the inner loop.
  km_ = MakeHistKernelMatrix(ctx.matrix, ctx.partitioner,
                             quant_ != nullptr ? quant_->packed.data()
                                               : nullptr);
  const bool full_features = feature_blocks_.size() == 1;
  if (quant_ != nullptr) {
    qkernel_ = SelectQuantHistKernel(ctx.partitioner.use_membuf(),
                                     /*full_bin_range=*/true, full_features,
                                     simd_);
  } else {
    kernel_ = SelectHistKernel(ctx.partitioner.use_membuf(),
                               /*full_bin_range=*/true, full_features, simd_);
  }
}

void HistBuilderDP::StageBlock(const BuildContext& ctx,
                               std::span<const int> nodes,
                               size_t block_begin) {
  const size_t step =
      static_cast<size_t>(std::max(1, ctx.params.node_blk_size));
  block_ = nodes.subspan(block_begin,
                         std::min(step, nodes.size() - block_begin));
  const size_t block_nodes = block_.size();

  // Row-block task list: (node index in block, row range).
  int64_t total_rows = 0;
  for (int node : block_) total_rows += ctx.partitioner.NodeSize(node);
  const int64_t auto_blk =
      std::max<int64_t>(1, total_rows / std::max(1, threads_));
  const int64_t row_blk = ctx.params.row_blk_size > 0
                              ? ctx.params.row_blk_size
                              : auto_blk;
  tasks_.clear();
  if (sources_.size() < block_nodes) sources_.resize(block_nodes);
  for (size_t i = 0; i < block_nodes; ++i) {
    sources_[i] = MakeHistRowSource(ctx.partitioner, block_[i]);
    const uint32_t n = ctx.partitioner.NodeSize(block_[i]);
    for (uint32_t begin = 0; begin < n;
         begin += static_cast<uint32_t>(row_blk)) {
      tasks_.push_back(RowTask{
          static_cast<uint32_t>(i), begin,
          std::min(n, begin + static_cast<uint32_t>(row_blk))});
    }
  }

  // Per-thread replicas covering the node block. Replica layout:
  // [thread][local_node][total_bins]. Storage persists across node
  // blocks and trees under the invariant that it is all-zero outside
  // Build, so no per-block assign/zeroing happens here — only growth.
  // The stride is padded to whole kHistAlignBytes lines (a multiple of 8
  // slots covers both cell types) so thread boundaries never share a
  // cache line; the padding slots are never written and stay zero.
  content_slots_ = block_nodes * total_bins_;
  replica_stride_ = AlignedSlotCount<int64_t>(content_slots_);
  const size_t needed = static_cast<size_t>(threads_) * replica_stride_;
  if (quant_ != nullptr) {
    if (qreplicas_.size() < needed) {
      qreplicas_.resize(needed, 0);
      ++replica_stats_.grow_events;
    }
  } else if (replicas_.size() < needed) {
    replicas_.resize(needed, GHPair{});
    ++replica_stats_.grow_events;
  }
  touched_.Reset(threads_, block_nodes);
  ++replica_stats_.node_blocks;
  replica_stats_.regions_total +=
      static_cast<int64_t>(threads_) * static_cast<int64_t>(block_nodes);
}

void HistBuilderDP::ClearThread(int thread_id) {
  // Lazy clear: wipe the dirty leftovers of previous blocks that fall
  // inside THIS thread's replica range, before any accumulation. Other
  // threads never write this range, so no synchronization is needed,
  // and the clear costs no extra parallel region.
  const size_t own_begin = static_cast<size_t>(thread_id) * replica_stride_;
  const size_t own_end = own_begin + replica_stride_;
  for (const auto& [d_begin, d_end] : dirty_) {
    const size_t lo = std::max(d_begin, own_begin);
    const size_t hi = std::min(d_end, own_end);
    if (lo < hi) {
      if (quant_ != nullptr) {
        ClearHistogramI64(qreplicas_.data() + lo, hi - lo);
      } else {
        ClearHistogram(replicas_.data() + lo, hi - lo);
      }
    }
  }
}

void HistBuilderDP::RunRowTask(const BuildContext& ctx, int thread_id,
                               size_t task_index) {
  (void)ctx;
  const RowTask& task = tasks_[task_index];
  touched_.Mark(thread_id, task.local_node);
  const size_t slot0 =
      static_cast<size_t>(thread_id) * replica_stride_ +
      task.local_node * total_bins_;
  const Range all_bins{0u, 256u};
  // Feature-block tiling: re-reads the row block once per feature
  // block but confines writes to the block's histogram region.
  if (quant_ != nullptr) {
    int64_t* node_hist = qreplicas_.data() + slot0;
    for (const Range& fb : feature_blocks_) {
      qkernel_(km_, sources_[task.local_node], task.begin, task.end,
               node_hist, fb, all_bins);
    }
  } else {
    GHPair* node_hist = replicas_.data() + slot0;
    for (const Range& fb : feature_blocks_) {
      kernel_(km_, sources_[task.local_node], task.begin, task.end,
              node_hist, fb, all_bins);
    }
  }
}

void HistBuilderDP::PrepReduce(const BuildContext& ctx) {
  const size_t block_nodes = block_.size();
  if (dst_.size() < block_nodes) dst_.resize(block_nodes);
  if (contributors_.size() < block_nodes) contributors_.resize(block_nodes);
  for (size_t i = 0; i < block_nodes; ++i) {
    dst_[i] = ctx.hists.Get(block_[i]);
    contributors_[i] = touched_.ThreadsTouching(i);
    replica_stats_.regions_touched +=
        static_cast<int64_t>(contributors_[i].size());
  }
}

void HistBuilderDP::ReduceRange(int64_t begin, int64_t end) {
  // Deterministic reduction, blocked: each thread sums contiguous slot
  // runs with AddHistogram (vectorizable), in ascending thread order per
  // slot — the same floating-point order as before — and replicas of
  // threads that never touched a node are skipped outright.
  int64_t s = begin;
  while (s < end) {
    const size_t local_node = static_cast<size_t>(s) / total_bins_;
    const size_t slot = static_cast<size_t>(s) % total_bins_;
    const size_t len =
        std::min(static_cast<size_t>(end - s), total_bins_ - slot);
    GHPair* out = dst_[local_node] + slot;
    for (int t : contributors_[local_node]) {
      AddHistogram(out,
                   replicas_.data() +
                       static_cast<size_t>(t) * replica_stride_ +
                       static_cast<size_t>(s),
                   len);
    }
    s += static_cast<int64_t>(len);
  }
}

void HistBuilderDP::ReduceRangeQuant(int64_t begin, int64_t end) {
  // Quantized reduction: per contiguous run, sum the contributors' int64
  // cells into a stack buffer and dequantize straight into the pool's f64
  // histogram. Integer addition is order-independent and dequantization is
  // exact (integer x power of two), so the result is bit-identical for any
  // thread count, schedule, and kernel table. Nodes no thread touched are
  // skipped: their pool histogram is already zero from Acquire.
  constexpr size_t kChunk = 1024;
  alignas(kHistAlignBytes) int64_t tmp[kChunk];
  const int simd = static_cast<int>(simd_);
  int64_t s = begin;
  while (s < end) {
    const size_t local_node = static_cast<size_t>(s) / total_bins_;
    const size_t slot = static_cast<size_t>(s) % total_bins_;
    const size_t len = std::min(
        {static_cast<size_t>(end - s), total_bins_ - slot, kChunk});
    const std::vector<int>& contrib = contributors_[local_node];
    if (!contrib.empty()) {
      std::memcpy(tmp,
                  qreplicas_.data() +
                      static_cast<size_t>(contrib[0]) * replica_stride_ +
                      static_cast<size_t>(s),
                  len * sizeof(int64_t));
      for (size_t c = 1; c < contrib.size(); ++c) {
        AddHistogramI64(tmp,
                        qreplicas_.data() +
                            static_cast<size_t>(contrib[c]) * replica_stride_ +
                            static_cast<size_t>(s),
                        len, simd);
      }
      DequantizeHistogram(tmp, dst_[local_node] + slot, len, quant_->scales,
                          simd);
    }
    s += static_cast<int64_t>(len);
  }
}

void HistBuilderDP::UpdateLedger() {
  // Update the dirty ledger: everything inside the current layout's
  // thread ranges was cleared at region start, so only intervals beyond
  // them survive; regions touched in this block become newly dirty.
  const size_t block_nodes = block_.size();
  const size_t covered = static_cast<size_t>(threads_) * replica_stride_;
  std::erase_if(dirty_, [covered](const std::pair<size_t, size_t>& d) {
    return d.second <= covered;
  });
  for (auto& d : dirty_) d.first = std::max(d.first, covered);
  for (int t = 0; t < threads_; ++t) {
    for (size_t i = 0; i < block_nodes; ++i) {
      if (touched_.Touched(t, i)) {
        const size_t begin =
            static_cast<size_t>(t) * replica_stride_ + i * total_bins_;
        dirty_.emplace_back(begin, begin + total_bins_);
      }
    }
  }
}

int64_t HistBuilderDP::Build(const BuildContext& ctx,
                             std::span<const int> nodes) {
  BeginBuild(ctx);
  int64_t reduce_ns = 0;

  // One "parallel for" per node block: node_blk_size trades fewer barriers
  // against larger per-thread replicas (Section IV-D).
  const size_t step =
      static_cast<size_t>(std::max(1, ctx.params.node_blk_size));
  for (size_t begin = 0; begin < nodes.size(); begin += step) {
    StageBlock(ctx, nodes, begin);

    std::atomic<int64_t> cursor{0};
    ctx.pool.RunOnAllThreads([&](int thread_id) {
      ClearThread(thread_id);
      for (;;) {
        const int64_t t = cursor.fetch_add(1, std::memory_order_relaxed);
        if (t >= static_cast<int64_t>(tasks_.size())) break;
        RunRowTask(ctx, thread_id, static_cast<size_t>(t));
        ctx.pool.CountTask(thread_id);
      }
    });

    const Stopwatch reduce_watch;
    PrepReduce(ctx);
    // The reduce domain is the CONTENT slots only — the alignment padding
    // beyond them belongs to no node.
    ctx.pool.ParallelFor(static_cast<int64_t>(content_slots_),
                         [&](int64_t b, int64_t e, int) {
                           quant_ != nullptr ? ReduceRangeQuant(b, e)
                                             : ReduceRange(b, e);
                         });
    reduce_ns += reduce_watch.ElapsedNs();

    UpdateLedger();
  }
  return reduce_ns;
}

void HistBuilderDP::BuildInRegion(const BuildContext& ctx,
                                  std::span<const int> nodes,
                                  ThreadPool::FusedRegion& region,
                                  int thread_id, int64_t* reduce_ns) {
  const size_t step =
      static_cast<size_t>(std::max(1, ctx.params.node_blk_size));
  const size_t num_blocks =
      nodes.empty() ? 0 : (nodes.size() + step - 1) / step;

  // Leading barrier: serial setup + first block staged before any thread
  // starts accumulating. All subsequent staging piggybacks on the dirty-
  // ledger barrier of the previous block, so the per-block phase count
  // matches the region-per-phase path's launch count one-for-one.
  region.Barrier(thread_id, [&] {
    BeginBuild(ctx);
    if (num_blocks > 0) StageBlock(ctx, nodes, 0);
  });

  for (size_t b = 0; b < num_blocks; ++b) {
    ClearThread(thread_id);
    region.ForDynamic(thread_id, static_cast<int64_t>(tasks_.size()), 1,
                      [&](int64_t begin, int64_t end, int tid) {
                        for (int64_t t = begin; t < end; ++t) {
                          RunRowTask(ctx, tid, static_cast<size_t>(t));
                        }
                      });
    region.Barrier(thread_id, [&] {
      reduce_start_ns_ = NowNs();
      PrepReduce(ctx);
    });
    region.ForStatic(thread_id, static_cast<int64_t>(content_slots_),
                     [&](int64_t rb, int64_t re, int) {
                       quant_ != nullptr ? ReduceRangeQuant(rb, re)
                                         : ReduceRange(rb, re);
                     });
    region.Barrier(thread_id, [&] {
      *reduce_ns += NowNs() - reduce_start_ns_;
      UpdateLedger();
      if (b + 1 < num_blocks) StageBlock(ctx, nodes, (b + 1) * step);
    });
  }
}

}  // namespace harp
