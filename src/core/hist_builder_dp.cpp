#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/timer.h"
#include "core/hist_builder.h"

namespace harp {

std::vector<Range> MakeFeatureBlocks(uint32_t num_features,
                                     int feature_blk_size) {
  std::vector<Range> blocks;
  const uint32_t step = feature_blk_size <= 0
                            ? num_features
                            : static_cast<uint32_t>(feature_blk_size);
  for (uint32_t begin = 0; begin < num_features; begin += step) {
    blocks.emplace_back(begin, std::min(num_features, begin + step));
  }
  return blocks;
}

std::vector<Range> MakeBinRanges(int bin_blk_size) {
  std::vector<Range> ranges;
  if (bin_blk_size >= 256) {
    ranges.emplace_back(0u, 256u);
    return ranges;
  }
  const uint32_t step = static_cast<uint32_t>(std::max(1, bin_blk_size));
  for (uint32_t begin = 0; begin < 256; begin += step) {
    ranges.emplace_back(begin, std::min(256u, begin + step));
  }
  return ranges;
}

std::vector<std::span<const int>> MakeNodeBlocks(std::span<const int> nodes,
                                                 int node_blk_size) {
  std::vector<std::span<const int>> blocks;
  const size_t step = static_cast<size_t>(std::max(1, node_blk_size));
  for (size_t begin = 0; begin < nodes.size(); begin += step) {
    blocks.push_back(nodes.subspan(begin,
                                   std::min(step, nodes.size() - begin)));
  }
  return blocks;
}

int64_t HistBuilderDP::Build(const BuildContext& ctx,
                             std::span<const int> nodes) {
  const size_t total_bins = ctx.matrix.TotalBins();
  const int threads = ctx.pool.num_threads();
  const auto feature_blocks = MakeFeatureBlocks(
      ctx.matrix.num_features(), ctx.params.feature_blk_size);
  int64_t reduce_ns = 0;

  // One "parallel for" per node block: node_blk_size trades fewer barriers
  // against larger per-thread replicas (Section IV-D).
  for (std::span<const int> block :
       MakeNodeBlocks(nodes, ctx.params.node_blk_size)) {
    const size_t block_nodes = block.size();

    // Row-block task list: (node index in block, row range).
    struct RowTask {
      uint32_t local_node;
      uint32_t begin;
      uint32_t end;
    };
    int64_t total_rows = 0;
    for (int node : block) total_rows += ctx.partitioner.NodeSize(node);
    const int64_t auto_blk =
        std::max<int64_t>(1, total_rows / std::max(1, threads));
    const int64_t row_blk = ctx.params.row_blk_size > 0
                                ? ctx.params.row_blk_size
                                : auto_blk;
    std::vector<RowTask> tasks;
    for (size_t i = 0; i < block_nodes; ++i) {
      const uint32_t n = ctx.partitioner.NodeSize(block[i]);
      for (uint32_t begin = 0; begin < n;
           begin += static_cast<uint32_t>(row_blk)) {
        tasks.push_back(RowTask{
            static_cast<uint32_t>(i), begin,
            std::min(n, begin + static_cast<uint32_t>(row_blk))});
      }
    }

    // Per-thread replicas covering the node block, zeroed. Replica layout:
    // [thread][local_node][total_bins].
    const size_t replica_stride = block_nodes * total_bins;
    replicas_.assign(static_cast<size_t>(threads) * replica_stride,
                     GHPair{});

    std::atomic<int64_t> cursor{0};
    ctx.pool.RunOnAllThreads([&](int thread_id) {
      GHPair* replica =
          replicas_.data() + static_cast<size_t>(thread_id) * replica_stride;
      for (;;) {
        const int64_t t = cursor.fetch_add(1, std::memory_order_relaxed);
        if (t >= static_cast<int64_t>(tasks.size())) break;
        const RowTask& task = tasks[static_cast<size_t>(t)];
        GHPair* node_hist = replica + task.local_node * total_bins;
        // Feature-block tiling: re-reads the row block once per feature
        // block but confines writes to the block's histogram region.
        for (const Range& fb : feature_blocks) {
          ctx.partitioner.ForEachRowRange(
              block[task.local_node], task.begin, task.end,
              [&](uint32_t rid, float g, float h) {
                AccumulateRow(ctx.matrix.RowBins(rid), g, h, ctx.matrix,
                              node_hist, fb, {0u, 256u});
              });
        }
        ctx.pool.CountTask(thread_id);
      }
    });

    // Deterministic reduction: slot-parallel, fixed thread order.
    const Stopwatch reduce_watch;
    std::vector<GHPair*> dst(block_nodes);
    for (size_t i = 0; i < block_nodes; ++i) dst[i] = ctx.hists.Get(block[i]);
    ctx.pool.ParallelFor(
        static_cast<int64_t>(replica_stride),
        [&](int64_t begin, int64_t end, int) {
          for (int64_t s = begin; s < end; ++s) {
            GHPair sum;
            for (int t = 0; t < threads; ++t) {
              sum += replicas_[static_cast<size_t>(t) * replica_stride +
                               static_cast<size_t>(s)];
            }
            const size_t local_node = static_cast<size_t>(s) / total_bins;
            const size_t slot = static_cast<size_t>(s) % total_bins;
            dst[local_node][slot] += sum;
          }
        });
    reduce_ns += reduce_watch.ElapsedNs();
  }
  return reduce_ns;
}

}  // namespace harp
