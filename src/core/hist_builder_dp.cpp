#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/timer.h"
#include "core/hist_builder.h"

namespace harp {

std::vector<Range> MakeFeatureBlocks(uint32_t num_features,
                                     int feature_blk_size) {
  std::vector<Range> blocks;
  const uint32_t step = feature_blk_size <= 0
                            ? num_features
                            : static_cast<uint32_t>(feature_blk_size);
  for (uint32_t begin = 0; begin < num_features; begin += step) {
    blocks.emplace_back(begin, std::min(num_features, begin + step));
  }
  return blocks;
}

std::vector<Range> MakeBinRanges(int bin_blk_size, uint32_t num_bins) {
  std::vector<Range> ranges;
  if (bin_blk_size >= static_cast<int>(num_bins)) {
    ranges.emplace_back(0u, num_bins);
    return ranges;
  }
  const uint32_t step = static_cast<uint32_t>(std::max(1, bin_blk_size));
  for (uint32_t begin = 0; begin < num_bins; begin += step) {
    ranges.emplace_back(begin, std::min(num_bins, begin + step));
  }
  return ranges;
}

std::vector<std::span<const int>> MakeNodeBlocks(std::span<const int> nodes,
                                                 int node_blk_size) {
  std::vector<std::span<const int>> blocks;
  const size_t step = static_cast<size_t>(std::max(1, node_blk_size));
  for (size_t begin = 0; begin < nodes.size(); begin += step) {
    blocks.push_back(nodes.subspan(begin,
                                   std::min(step, nodes.size() - begin)));
  }
  return blocks;
}

int64_t HistBuilderDP::Build(const BuildContext& ctx,
                             std::span<const int> nodes) {
  const size_t total_bins = ctx.matrix.TotalBins();
  const int threads = ctx.pool.num_threads();
  const auto feature_blocks = MakeFeatureBlocks(
      ctx.matrix.num_features(), ctx.params.feature_blk_size);
  // Kernel selected once per Build call. DP never bin-filters, so the full
  // bin-range variant applies; one feature block additionally drops the
  // fb-range indirection from the inner loop.
  const HistKernelMatrix km =
      MakeHistKernelMatrix(ctx.matrix, ctx.partitioner);
  const HistKernelFn kernel =
      SelectHistKernel(ctx.partitioner.use_membuf(), /*full_bin_range=*/true,
                       /*full_feature_block=*/feature_blocks.size() == 1);
  const Range all_bins{0u, 256u};
  int64_t reduce_ns = 0;

  // One "parallel for" per node block: node_blk_size trades fewer barriers
  // against larger per-thread replicas (Section IV-D).
  for (std::span<const int> block :
       MakeNodeBlocks(nodes, ctx.params.node_blk_size)) {
    const size_t block_nodes = block.size();

    // Row-block task list: (node index in block, row range).
    struct RowTask {
      uint32_t local_node;
      uint32_t begin;
      uint32_t end;
    };
    int64_t total_rows = 0;
    for (int node : block) total_rows += ctx.partitioner.NodeSize(node);
    const int64_t auto_blk =
        std::max<int64_t>(1, total_rows / std::max(1, threads));
    const int64_t row_blk = ctx.params.row_blk_size > 0
                                ? ctx.params.row_blk_size
                                : auto_blk;
    std::vector<RowTask> tasks;
    std::vector<HistRowSource> sources(block_nodes);
    for (size_t i = 0; i < block_nodes; ++i) {
      sources[i] = MakeHistRowSource(ctx.partitioner, block[i]);
      const uint32_t n = ctx.partitioner.NodeSize(block[i]);
      for (uint32_t begin = 0; begin < n;
           begin += static_cast<uint32_t>(row_blk)) {
        tasks.push_back(RowTask{
            static_cast<uint32_t>(i), begin,
            std::min(n, begin + static_cast<uint32_t>(row_blk))});
      }
    }

    // Per-thread replicas covering the node block. Replica layout:
    // [thread][local_node][total_bins]. Storage persists across node
    // blocks and trees under the invariant that it is all-zero outside
    // Build, so no per-block assign/zeroing happens here — only growth.
    const size_t replica_stride = block_nodes * total_bins;
    const size_t needed = static_cast<size_t>(threads) * replica_stride;
    if (replicas_.size() < needed) {
      replicas_.resize(needed, GHPair{});
      ++replica_stats_.grow_events;
    }
    touched_.Reset(threads, block_nodes);
    ++replica_stats_.node_blocks;
    replica_stats_.regions_total +=
        static_cast<int64_t>(threads) * static_cast<int64_t>(block_nodes);

    std::atomic<int64_t> cursor{0};
    ctx.pool.RunOnAllThreads([&](int thread_id) {
      GHPair* replica =
          replicas_.data() + static_cast<size_t>(thread_id) * replica_stride;
      // Lazy clear: wipe the dirty leftovers of previous blocks that fall
      // inside THIS thread's replica range, before any accumulation. Other
      // threads never write this range, so no synchronization is needed,
      // and the clear costs no extra parallel region.
      const size_t own_begin = static_cast<size_t>(thread_id) * replica_stride;
      const size_t own_end = own_begin + replica_stride;
      for (const auto& [d_begin, d_end] : dirty_) {
        const size_t lo = std::max(d_begin, own_begin);
        const size_t hi = std::min(d_end, own_end);
        if (lo < hi) ClearHistogram(replicas_.data() + lo, hi - lo);
      }
      for (;;) {
        const int64_t t = cursor.fetch_add(1, std::memory_order_relaxed);
        if (t >= static_cast<int64_t>(tasks.size())) break;
        const RowTask& task = tasks[static_cast<size_t>(t)];
        touched_.Mark(thread_id, task.local_node);
        GHPair* node_hist = replica + task.local_node * total_bins;
        // Feature-block tiling: re-reads the row block once per feature
        // block but confines writes to the block's histogram region.
        for (const Range& fb : feature_blocks) {
          kernel(km, sources[task.local_node], task.begin, task.end,
                 node_hist, fb, all_bins);
        }
        ctx.pool.CountTask(thread_id);
      }
    });

    // Deterministic reduction, blocked: each thread sums contiguous slot
    // runs with AddHistogram (vectorizable), in ascending thread order per
    // slot — the same floating-point order as before — and replicas of
    // threads that never touched a node are skipped outright.
    const Stopwatch reduce_watch;
    std::vector<GHPair*> dst(block_nodes);
    std::vector<std::vector<int>> contributors(block_nodes);
    for (size_t i = 0; i < block_nodes; ++i) {
      dst[i] = ctx.hists.Get(block[i]);
      contributors[i] = touched_.ThreadsTouching(i);
      replica_stats_.regions_touched +=
          static_cast<int64_t>(contributors[i].size());
    }
    ctx.pool.ParallelFor(
        static_cast<int64_t>(replica_stride),
        [&](int64_t begin, int64_t end, int) {
          int64_t s = begin;
          while (s < end) {
            const size_t local_node = static_cast<size_t>(s) / total_bins;
            const size_t slot = static_cast<size_t>(s) % total_bins;
            const size_t len = std::min(static_cast<size_t>(end - s),
                                        total_bins - slot);
            GHPair* out = dst[local_node] + slot;
            for (int t : contributors[local_node]) {
              AddHistogram(out,
                           replicas_.data() +
                               static_cast<size_t>(t) * replica_stride +
                               static_cast<size_t>(s),
                           len);
            }
            s += static_cast<int64_t>(len);
          }
        });
    reduce_ns += reduce_watch.ElapsedNs();

    // Update the dirty ledger: everything inside the current layout's
    // thread ranges was cleared at region start, so only intervals beyond
    // them survive; regions touched in this block become newly dirty.
    const size_t covered = static_cast<size_t>(threads) * replica_stride;
    std::erase_if(dirty_, [covered](const std::pair<size_t, size_t>& d) {
      return d.second <= covered;
    });
    for (auto& d : dirty_) d.first = std::max(d.first, covered);
    for (int t = 0; t < threads; ++t) {
      for (size_t i = 0; i < block_nodes; ++i) {
        if (touched_.Touched(t, i)) {
          const size_t begin =
              static_cast<size_t>(t) * replica_stride + i * total_bins;
          dirty_.emplace_back(begin, begin + total_bins);
        }
      }
    }
  }
  return reduce_ns;
}

}  // namespace harp
