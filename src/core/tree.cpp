#include "core/tree.h"

#include <cmath>

#include "common/logging.h"

namespace harp {

int RegTree::NumLeaves() const {
  int leaves = 0;
  for (const auto& n : nodes_) {
    if (n.IsLeaf()) ++leaves;
  }
  return leaves;
}

int RegTree::MaxDepth() const {
  int depth = 0;
  for (const auto& n : nodes_) depth = std::max(depth, static_cast<int>(n.depth));
  return depth;
}

std::pair<int, int> RegTree::ApplySplit(int node_id, const SplitInfo& split,
                                        float split_value) {
  HARP_CHECK_GE(node_id, 0);
  HARP_CHECK_LT(node_id, num_nodes());
  HARP_CHECK(nodes_[static_cast<size_t>(node_id)].IsLeaf());
  HARP_CHECK_GE(split.bin, 1u);

  const int left_id = num_nodes();
  const int right_id = left_id + 1;
  nodes_.emplace_back();
  nodes_.emplace_back();

  TreeNode& parent = nodes_[static_cast<size_t>(node_id)];
  parent.left = left_id;
  parent.right = right_id;
  parent.split_feature = split.feature;
  parent.split_bin = split.bin;
  parent.split_value = split_value;
  parent.default_left = split.default_left;
  parent.gain = split.gain;

  TreeNode& left = nodes_[static_cast<size_t>(left_id)];
  left.parent = node_id;
  left.depth = parent.depth + 1;
  left.sum = split.left_sum;

  TreeNode& right = nodes_[static_cast<size_t>(right_id)];
  right.parent = node_id;
  right.depth = parent.depth + 1;
  right.sum = split.right_sum;

  return {left_id, right_id};
}

int RegTree::PredictLeafBinned(const uint8_t* row_bins) const {
  int id = 0;
  while (!nodes_[static_cast<size_t>(id)].IsLeaf()) {
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    const uint8_t bin = row_bins[n.split_feature];
    const bool go_left =
        (bin == 0) ? n.default_left : (bin <= n.split_bin);
    id = go_left ? n.left : n.right;
  }
  return id;
}

double RegTree::PredictRaw(const Dataset& dataset, uint32_t row) const {
  int id = 0;
  while (!nodes_[static_cast<size_t>(id)].IsLeaf()) {
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    const float value = dataset.At(row, n.split_feature);
    const bool go_left =
        IsMissing(value) ? n.default_left : (value <= n.split_value);
    id = go_left ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(id)].leaf_value;
}

bool RegTree::CheckValid() const {
  for (int id = 0; id < num_nodes(); ++id) {
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    if (n.IsLeaf()) {
      if (n.right >= 0) return false;
      if (!std::isfinite(n.leaf_value)) return false;
      continue;
    }
    if (n.left >= num_nodes() || n.right >= num_nodes()) return false;
    if (n.left == n.right) return false;
    if (nodes_[static_cast<size_t>(n.left)].parent != id) return false;
    if (nodes_[static_cast<size_t>(n.right)].parent != id) return false;
    if (n.split_bin < 1) return false;
  }
  if (nodes_[0].parent != -1) return false;
  return true;
}

}  // namespace harp
