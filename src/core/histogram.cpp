#include "core/histogram.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace harp {

GHPair* HistogramPool::Acquire(int node_id) {
  std::lock_guard<SpinMutex> lock(mutex_);
  HARP_CHECK(in_use_.find(node_id) == in_use_.end())
      << "node " << node_id << " already owns a histogram";
  Buffer buffer;
  if (!free_list_.empty()) {
    buffer = std::move(free_list_.back());
    free_list_.pop_back();
    std::fill(buffer.begin(), buffer.end(), GHPair{});
  } else {
    buffer.assign(total_bins_, GHPair{});
  }
  auto [it, inserted] = in_use_.emplace(node_id, std::move(buffer));
  HARP_CHECK(inserted);
  peak_in_use_ = std::max(peak_in_use_, in_use_.size());
  return it->second.data();
}

GHPair* HistogramPool::Get(int node_id) {
  std::lock_guard<SpinMutex> lock(mutex_);
  auto it = in_use_.find(node_id);
  HARP_CHECK(it != in_use_.end()) << "node " << node_id << " has no histogram";
  return it->second.data();
}

const GHPair* HistogramPool::Get(int node_id) const {
  std::lock_guard<SpinMutex> lock(mutex_);
  auto it = in_use_.find(node_id);
  HARP_CHECK(it != in_use_.end()) << "node " << node_id << " has no histogram";
  return it->second.data();
}

bool HistogramPool::Has(int node_id) const {
  std::lock_guard<SpinMutex> lock(mutex_);
  return in_use_.find(node_id) != in_use_.end();
}

void HistogramPool::Release(int node_id) {
  std::lock_guard<SpinMutex> lock(mutex_);
  auto it = in_use_.find(node_id);
  HARP_CHECK(it != in_use_.end()) << "node " << node_id << " has no histogram";
  free_list_.push_back(std::move(it->second));
  in_use_.erase(it);
}

void HistogramPool::ReleaseAll() {
  std::lock_guard<SpinMutex> lock(mutex_);
  for (auto& [id, buffer] : in_use_) {
    free_list_.push_back(std::move(buffer));
  }
  in_use_.clear();
}

size_t HistogramPool::PeakBytes() const {
  std::lock_guard<SpinMutex> lock(mutex_);
  return peak_in_use_ * total_bins_ * sizeof(GHPair);
}

// The blocked DP reduction leans on these loops vectorizing; the restrict
// qualifiers license it (callers never pass overlapping histograms).
void AddHistogram(GHPair* __restrict dst, const GHPair* __restrict src,
                  size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void SubtractHistogram(GHPair* __restrict out, const GHPair* __restrict parent,
                       const GHPair* __restrict sibling, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = parent[i] - sibling[i];
}

void ClearHistogram(GHPair* hist, size_t n) {
  std::fill(hist, hist + n, GHPair{});
}

GHPair SumHistogramFeature(const GHPair* hist, uint32_t offset,
                           uint32_t num_bins) {
  GHPair sum;
  for (uint32_t b = 0; b < num_bins; ++b) sum += hist[offset + b];
  return sum;
}

}  // namespace harp
