#include <algorithm>

#include "common/logging.h"
#include "core/hist_builder.h"

namespace harp {

void HistBuilderMP::Build(const BuildContext& ctx,
                          std::span<const int> nodes) {
  const auto feature_blocks = MakeFeatureBlocks(
      ctx.matrix.num_features(), ctx.params.feature_blk_size);
  const auto bin_ranges = MakeBinRanges(ctx.params.bin_blk_size);
  const auto node_blocks = MakeNodeBlocks(nodes, ctx.params.node_blk_size);

  // Task = one <node_blk x feature_blk x bin_blk> cube. Distinct tasks
  // write disjoint regions of the shared histograms, so no replicas and no
  // reduction are needed; the price is one re-read of the node's rows per
  // (feature block, bin range).
  struct Task {
    uint32_t node_block;
    uint32_t feature_block;
    uint32_t bin_range;
  };
  std::vector<Task> tasks;
  tasks.reserve(node_blocks.size() * feature_blocks.size() *
                bin_ranges.size());
  for (uint32_t nb = 0; nb < node_blocks.size(); ++nb) {
    for (uint32_t fb = 0; fb < feature_blocks.size(); ++fb) {
      for (uint32_t bb = 0; bb < bin_ranges.size(); ++bb) {
        tasks.push_back(Task{nb, fb, bb});
      }
    }
  }

  // Histogram pointers resolved up front: Get() takes the pool lock, and
  // resolving inside tasks would serialize them.
  std::vector<GHPair*> hist_of(nodes.size());
  std::vector<size_t> node_pos(static_cast<size_t>(
      nodes.empty() ? 0 : 1 + *std::max_element(nodes.begin(), nodes.end())));
  for (size_t i = 0; i < nodes.size(); ++i) {
    hist_of[i] = ctx.hists.Get(nodes[i]);
    node_pos[static_cast<size_t>(nodes[i])] = i;
  }

  ctx.pool.ParallelForDynamic(
      static_cast<int64_t>(tasks.size()), 1,
      [&](int64_t begin, int64_t end, int) {
        for (int64_t t = begin; t < end; ++t) {
          const Task& task = tasks[static_cast<size_t>(t)];
          const Range fb = feature_blocks[task.feature_block];
          const Range bins = bin_ranges[task.bin_range];
          for (int node : node_blocks[task.node_block]) {
            GHPair* hist = hist_of[node_pos[static_cast<size_t>(node)]];
            ctx.partitioner.ForEachRow(
                node, [&](uint32_t rid, float g, float h) {
                  AccumulateRow(ctx.matrix.RowBins(rid), g, h, ctx.matrix,
                                hist, fb, bins);
                });
          }
        }
      });
}

void BuildHistSerial(const BuildContext& ctx, int node_id, GHPair* hist) {
  const auto feature_blocks = MakeFeatureBlocks(
      ctx.matrix.num_features(), ctx.params.feature_blk_size);
  for (const Range& fb : feature_blocks) {
    ctx.partitioner.ForEachRow(node_id, [&](uint32_t rid, float g, float h) {
      AccumulateRow(ctx.matrix.RowBins(rid), g, h, ctx.matrix, hist, fb,
                    {0u, 256u});
    });
  }
}

}  // namespace harp
