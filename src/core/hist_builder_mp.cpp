#include <algorithm>

#include "common/logging.h"
#include "core/hist_builder.h"

namespace harp {

void HistBuilderMP::Build(const BuildContext& ctx,
                          std::span<const int> nodes) {
  const auto feature_blocks = MakeFeatureBlocks(
      ctx.matrix.num_features(), ctx.params.feature_blk_size);
  // Bin ranges only need to cover the bin ids the matrix actually
  // produces; with max_bins < 256 the tail of [0, 256) used to schedule
  // passes that re-read every row and matched nothing.
  const auto bin_ranges =
      MakeBinRanges(ctx.params.bin_blk_size, ctx.matrix.MaxBins());
  const auto node_blocks = MakeNodeBlocks(nodes, ctx.params.node_blk_size);

  // Kernel selected once per Build: with a single bin range there is no
  // filtering, and with a single feature block the fb indirection drops
  // out of the inner loop.
  const HistKernelMatrix km =
      MakeHistKernelMatrix(ctx.matrix, ctx.partitioner);
  const HistKernelFn kernel = SelectHistKernel(
      ctx.partitioner.use_membuf(), /*full_bin_range=*/bin_ranges.size() == 1,
      /*full_feature_block=*/feature_blocks.size() == 1);

  // Task = one <node_blk x feature_blk x bin_blk> cube. Distinct tasks
  // write disjoint regions of the shared histograms, so no replicas and no
  // reduction are needed; the price is one re-read of the node's rows per
  // (feature block, bin range).
  struct Task {
    uint32_t node_block;
    uint32_t feature_block;
    uint32_t bin_range;
  };
  std::vector<Task> tasks;
  tasks.reserve(node_blocks.size() * feature_blocks.size() *
                bin_ranges.size());
  for (uint32_t nb = 0; nb < node_blocks.size(); ++nb) {
    for (uint32_t fb = 0; fb < feature_blocks.size(); ++fb) {
      for (uint32_t bb = 0; bb < bin_ranges.size(); ++bb) {
        tasks.push_back(Task{nb, fb, bb});
      }
    }
  }

  // Histogram pointers and row sources resolved up front: Get() takes the
  // pool lock, and resolving inside tasks would serialize them.
  std::vector<GHPair*> hist_of(nodes.size());
  std::vector<HistRowSource> source_of(nodes.size());
  std::vector<uint32_t> rows_of(nodes.size());
  std::vector<size_t> node_pos(static_cast<size_t>(
      nodes.empty() ? 0 : 1 + *std::max_element(nodes.begin(), nodes.end())));
  for (size_t i = 0; i < nodes.size(); ++i) {
    hist_of[i] = ctx.hists.Get(nodes[i]);
    source_of[i] = MakeHistRowSource(ctx.partitioner, nodes[i]);
    rows_of[i] = ctx.partitioner.NodeSize(nodes[i]);
    node_pos[static_cast<size_t>(nodes[i])] = i;
  }

  ctx.pool.ParallelForDynamic(
      static_cast<int64_t>(tasks.size()), 1,
      [&](int64_t begin, int64_t end, int) {
        for (int64_t t = begin; t < end; ++t) {
          const Task& task = tasks[static_cast<size_t>(t)];
          const Range fb = feature_blocks[task.feature_block];
          const Range bins = bin_ranges[task.bin_range];
          for (int node : node_blocks[task.node_block]) {
            const size_t pos = node_pos[static_cast<size_t>(node)];
            kernel(km, source_of[pos], 0, rows_of[pos], hist_of[pos], fb,
                   bins);
          }
        }
      });
}

void BuildHistSerial(const BuildContext& ctx, int node_id, GHPair* hist) {
  const auto feature_blocks = MakeFeatureBlocks(
      ctx.matrix.num_features(), ctx.params.feature_blk_size);
  const HistKernelMatrix km =
      MakeHistKernelMatrix(ctx.matrix, ctx.partitioner);
  const HistKernelFn kernel =
      SelectHistKernel(ctx.partitioner.use_membuf(), /*full_bin_range=*/true,
                       /*full_feature_block=*/feature_blocks.size() == 1);
  const HistRowSource src = MakeHistRowSource(ctx.partitioner, node_id);
  const uint32_t rows = ctx.partitioner.NodeSize(node_id);
  for (const Range& fb : feature_blocks) {
    kernel(km, src, 0, rows, hist, fb, {0u, 256u});
  }
}

}  // namespace harp
