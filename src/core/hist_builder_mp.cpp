#include <algorithm>

#include "common/logging.h"
#include "core/hist_builder.h"

namespace harp {

size_t HistBuilderMP::StageTasks(const BuildContext& ctx,
                                 std::span<const int> nodes) {
  FillFeatureBlocks(ctx.matrix.num_features(), ctx.params.feature_blk_size,
                    &feature_blocks_);
  // Bin ranges only need to cover the bin ids the matrix actually
  // produces; with max_bins < 256 the tail of [0, 256) used to schedule
  // passes that re-read every row and matched nothing.
  FillBinRanges(ctx.params.bin_blk_size, ctx.matrix.MaxBins(), &bin_ranges_);
  const size_t nstep =
      static_cast<size_t>(std::max(1, ctx.params.node_blk_size));
  const size_t cap_before =
      feature_blocks_.capacity() + bin_ranges_.capacity() +
      node_blocks_.capacity() + tasks_.capacity();
  node_blocks_.clear();
  for (size_t begin = 0; begin < nodes.size(); begin += nstep) {
    node_blocks_.push_back(
        nodes.subspan(begin, std::min(nstep, nodes.size() - begin)));
  }

  // Kernel selected once per staging: with a single bin range there is no
  // filtering, and with a single feature block the fb indirection drops
  // out of the inner loop.
  quant_ = ctx.quant;
  simd_ = ctx.simd;
  total_bins_ = ctx.matrix.TotalBins();
  km_ = MakeHistKernelMatrix(ctx.matrix, ctx.partitioner,
                             quant_ != nullptr ? quant_->packed.data()
                                               : nullptr);
  const bool full_bins = bin_ranges_.size() == 1;
  const bool full_features = feature_blocks_.size() == 1;
  if (quant_ != nullptr) {
    qkernel_ = SelectQuantHistKernel(ctx.partitioner.use_membuf(), full_bins,
                                     full_features, simd_);
  } else {
    kernel_ = SelectHistKernel(ctx.partitioner.use_membuf(), full_bins,
                               full_features, simd_);
  }

  // Task = one <node_blk x feature_blk x bin_blk> cube. Distinct tasks
  // write disjoint regions of the shared histograms, so no replicas and no
  // reduction are needed; the price is one re-read of the node's rows per
  // (feature block, bin range).
  tasks_.clear();
  for (uint32_t nb = 0; nb < node_blocks_.size(); ++nb) {
    for (uint32_t fb = 0; fb < feature_blocks_.size(); ++fb) {
      for (uint32_t bb = 0; bb < bin_ranges_.size(); ++bb) {
        tasks_.push_back(Task{nb, fb, bb});
      }
    }
  }

  // Histogram pointers and row sources resolved up front: Get() takes the
  // pool lock, and resolving inside tasks would serialize them.
  if (hist_of_.size() < nodes.size()) hist_of_.resize(nodes.size());
  if (source_of_.size() < nodes.size()) source_of_.resize(nodes.size());
  if (rows_of_.size() < nodes.size()) rows_of_.resize(nodes.size());
  const size_t pos_needed = static_cast<size_t>(
      nodes.empty() ? 0 : 1 + *std::max_element(nodes.begin(), nodes.end()));
  if (node_pos_.size() < pos_needed) node_pos_.resize(pos_needed);
  for (size_t i = 0; i < nodes.size(); ++i) {
    hist_of_[i] = ctx.hists.Get(nodes[i]);
    source_of_[i] = MakeHistRowSource(ctx.partitioner, nodes[i]);
    rows_of_[i] = ctx.partitioner.NodeSize(nodes[i]);
    node_pos_[static_cast<size_t>(nodes[i])] = i;
  }
  // Quantized mode: cube tasks accumulate into a flat arena of int64
  // cells (one aligned stride per node — cubes of different nodes must
  // not share a cache line) instead of the pool's f64 histograms;
  // DequantizeNode converts when a node's cubes have all drained. The
  // arena is cleared here, in serial staging: it is the int64 analogue of
  // the pool zeroing the f64 buffers at Acquire.
  staged_nodes_ = nodes.size();
  if (quant_ != nullptr) {
    qstride_ = AlignedSlotCount<int64_t>(total_bins_);
    const size_t needed = nodes.size() * qstride_;
    if (qhists_.size() < needed) {
      qhists_.resize(needed);
      ++grow_events_;
    }
    if (qhist_of_.size() < nodes.size()) qhist_of_.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      qhist_of_[i] = qhists_.data() + i * qstride_;
    }
    ClearHistogramI64(qhists_.data(), needed);
  }
  const size_t cap_after =
      feature_blocks_.capacity() + bin_ranges_.capacity() +
      node_blocks_.capacity() + tasks_.capacity();
  if (cap_after != cap_before) ++grow_events_;
  return tasks_.size();
}

void HistBuilderMP::RunTask(const BuildContext& ctx,
                            size_t task_index) const {
  (void)ctx;
  const Task& task = tasks_[task_index];
  const Range fb = feature_blocks_[task.feature_block];
  const Range bins = bin_ranges_[task.bin_range];
  for (int node : node_blocks_[task.node_block]) {
    const size_t pos = node_pos_[static_cast<size_t>(node)];
    if (quant_ != nullptr) {
      qkernel_(km_, source_of_[pos], 0, rows_of_[pos], qhist_of_[pos], fb,
               bins);
    } else {
      kernel_(km_, source_of_[pos], 0, rows_of_[pos], hist_of_[pos], fb,
              bins);
    }
  }
}

void HistBuilderMP::DequantizeNode(int node) const {
  if (quant_ == nullptr) return;
  const size_t pos = node_pos_[static_cast<size_t>(node)];
  DequantizeHistogram(qhist_of_[pos], hist_of_[pos], total_bins_,
                      quant_->scales, static_cast<int>(simd_));
}

std::span<const int> HistBuilderMP::TaskNodes(size_t task_index) const {
  return node_blocks_[tasks_[task_index].node_block];
}

void HistBuilderMP::Build(const BuildContext& ctx,
                          std::span<const int> nodes) {
  const size_t num_tasks = StageTasks(ctx, nodes);
  ctx.pool.ParallelForDynamic(
      static_cast<int64_t>(num_tasks), 1,
      [&](int64_t begin, int64_t end, int) {
        for (int64_t t = begin; t < end; ++t) {
          RunTask(ctx, static_cast<size_t>(t));
        }
      });
  if (quant_ != nullptr) {
    ctx.pool.ParallelForDynamic(
        static_cast<int64_t>(nodes.size()), 1,
        [&](int64_t begin, int64_t end, int) {
          for (int64_t i = begin; i < end; ++i) {
            DequantizeNode(nodes[static_cast<size_t>(i)]);
          }
        });
  }
}

void BuildHistSerial(const BuildContext& ctx, int node_id, GHPair* hist) {
  // ASYNC node tasks never quantize (the tree builder gates it off); they
  // do honour the resolved SIMD level for the f64 kernels.
  HARP_CHECK(ctx.quant == nullptr)
      << "BuildHistSerial has no quantized path";
  const auto feature_blocks = MakeFeatureBlocks(
      ctx.matrix.num_features(), ctx.params.feature_blk_size);
  const HistKernelMatrix km =
      MakeHistKernelMatrix(ctx.matrix, ctx.partitioner);
  const HistKernelFn kernel =
      SelectHistKernel(ctx.partitioner.use_membuf(), /*full_bin_range=*/true,
                       /*full_feature_block=*/feature_blocks.size() == 1,
                       ctx.simd);
  const HistRowSource src = MakeHistRowSource(ctx.partitioner, node_id);
  const uint32_t rows = ctx.partitioner.NodeSize(node_id);
  for (const Range& fb : feature_blocks) {
    kernel(km, src, 0, rows, hist, fb, {0u, 256u});
  }
}

}  // namespace harp
