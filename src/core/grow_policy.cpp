#include "core/grow_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace harp {

bool GrowQueue::Before(const Candidate& a, const Candidate& b) const {
  if (policy_ == GrowPolicy::kDepthwise) {
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.node_id < b.node_id;
  }
  // Gain order; node-id tie-break keeps pops deterministic.
  if (a.split.gain != b.split.gain) return a.split.gain > b.split.gain;
  return a.node_id < b.node_id;
}

void GrowQueue::FixUp() {
  // Sift the newly pushed element up.
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Candidate GrowQueue::PopTop() {
  HARP_CHECK(!heap_.empty());
  Candidate top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift down.
  size_t i = 0;
  const size_t n = heap_.size();
  for (;;) {
    const size_t l = 2 * i + 1;
    const size_t r = l + 1;
    size_t best = i;
    if (l < n && Before(heap_[l], heap_[best])) best = l;
    if (r < n && Before(heap_[r], heap_[best])) best = r;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

void GrowQueue::PopBatchInto(int k, int max_batch,
                             std::vector<Candidate>* out) {
  out->clear();
  if (heap_.empty() || max_batch <= 0) return;

  int budget = max_batch;
  switch (policy_) {
    case GrowPolicy::kLeafwise:
      budget = std::min(budget, 1);
      break;
    case GrowPolicy::kTopK:
      budget = std::min(budget, std::max(1, k));
      break;
    case GrowPolicy::kDepthwise:
      break;  // bounded by the level size below
  }

  const int level = heap_.front().depth;
  while (!heap_.empty() && static_cast<int>(out->size()) < budget) {
    if (policy_ == GrowPolicy::kDepthwise && heap_.front().depth != level) {
      break;  // only drain one level per batch
    }
    out->push_back(PopTop());
  }
}

std::vector<Candidate> GrowQueue::PopBatch(int k, int max_batch) {
  std::vector<Candidate> batch;
  PopBatchInto(k, max_batch, &batch);
  return batch;
}

}  // namespace harp
