#include "core/split_evaluator.h"

#include <vector>

namespace harp {

SplitInfo SplitEvaluator::FindBestSplit(const BinnedMatrix& matrix,
                                        const GHPair* hist,
                                        const GHPair& node_sum,
                                        uint32_t feature_begin,
                                        uint32_t feature_end,
                                        const uint8_t* column_mask) const {
  SplitInfo best;
  // Running prefix sums of the present bins, one entry per bin id. Reused
  // across features and calls; thread_local because FindBestSplit runs
  // concurrently from find tasks.
  thread_local std::vector<GHPair> prefix;
  for (uint32_t f = feature_begin; f < feature_end; ++f) {
    if (column_mask != nullptr && column_mask[f] == 0) continue;
    const uint32_t offset = matrix.BinOffset(f);
    const uint32_t num_bins = matrix.NumBins(f);  // includes missing bin 0
    if (num_bins < 3) continue;  // need at least two value bins to split
    const GHPair missing = hist[offset];
    // Left/right default decisions are identical when the node has no
    // missing rows for this feature; hoisting the check skips the
    // duplicate default_left branch for the whole feature.
    const bool has_missing = missing.g != 0.0 || missing.h != 0.0;

    // Ascending prefix scan of the present bins: prefix[b] is the left
    // sum at split bin b, and prefix[num_bins - 1] is the present-values
    // total — the same left-to-right accumulation order (hence the same
    // floating-point values) as summing them in the split loop, in one
    // pass instead of two. Using node_sum - missing for the total would
    // be wrong: rows missing in OTHER features still count here.
    if (prefix.size() < num_bins) prefix.resize(num_bins);
    GHPair running;
    for (uint32_t b = 1; b < num_bins; ++b) {
      running += hist[offset + b];
      prefix[b] = running;
    }
    const GHPair present_total = prefix[num_bins - 1];

    for (uint32_t b = 1; b + 1 < num_bins; ++b) {
      const GHPair left_present = prefix[b];
      // Missing goes right (default_left = false).
      {
        const GHPair left = left_present;
        const GHPair right = node_sum - left;
        if (SatisfiesChildWeight(left) && SatisfiesChildWeight(right)) {
          const double gain = SplitGain(node_sum, left, right);
          SplitInfo candidate{gain, f, b, /*default_left=*/false, left, right};
          if (candidate.IsValid() && candidate.BetterThan(best)) {
            best = candidate;
          }
        }
      }
      // Missing goes left (default_left = true).
      if (has_missing) {
        const GHPair right = present_total - left_present;
        const GHPair left = node_sum - right;
        if (SatisfiesChildWeight(left) && SatisfiesChildWeight(right)) {
          const double gain = SplitGain(node_sum, left, right);
          SplitInfo candidate{gain, f, b, /*default_left=*/true, left, right};
          if (candidate.IsValid() && candidate.BetterThan(best)) {
            best = candidate;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace harp
