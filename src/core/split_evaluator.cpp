#include "core/split_evaluator.h"

namespace harp {

SplitInfo SplitEvaluator::FindBestSplit(const BinnedMatrix& matrix,
                                        const GHPair* hist,
                                        const GHPair& node_sum,
                                        uint32_t feature_begin,
                                        uint32_t feature_end,
                                        const uint8_t* column_mask) const {
  SplitInfo best;
  for (uint32_t f = feature_begin; f < feature_end; ++f) {
    if (column_mask != nullptr && column_mask[f] == 0) continue;
    const uint32_t offset = matrix.BinOffset(f);
    const uint32_t num_bins = matrix.NumBins(f);  // includes missing bin 0
    if (num_bins < 3) continue;  // need at least two value bins to split
    const GHPair missing = hist[offset];

    // Present-values total for this feature. Using node_sum - missing
    // would be wrong: rows missing in OTHER features still count here, so
    // accumulate the present bins directly.
    GHPair present_total;
    for (uint32_t b = 1; b < num_bins; ++b) present_total += hist[offset + b];

    GHPair left_present;
    for (uint32_t b = 1; b + 1 < num_bins; ++b) {
      left_present += hist[offset + b];
      const GHPair right_present = present_total - left_present;

      // Missing goes right (default_left = false).
      {
        const GHPair left = left_present;
        const GHPair right = node_sum - left;
        if (SatisfiesChildWeight(left) && SatisfiesChildWeight(right)) {
          const double gain = SplitGain(node_sum, left, right);
          SplitInfo candidate{gain, f, b, /*default_left=*/false, left, right};
          if (candidate.IsValid() && candidate.BetterThan(best)) {
            best = candidate;
          }
        }
      }
      // Missing goes left (default_left = true). Skip when there are no
      // missing rows in this node: it would duplicate the case above.
      if (missing.g != 0.0 || missing.h != 0.0) {
        const GHPair right = right_present;
        const GHPair left = node_sum - right;
        if (SatisfiesChildWeight(left) && SatisfiesChildWeight(right)) {
          const double gain = SplitGain(node_sum, left, right);
          SplitInfo candidate{gain, f, b, /*default_left=*/true, left, right};
          if (candidate.IsValid() && candidate.BetterThan(best)) {
            best = candidate;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace harp
