#include "core/model_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace harp {
namespace {

constexpr const char* kHeader = "harpgbdt-model v1";

void AppendLine(std::string* out, const std::string& line) {
  out->append(line);
  out->push_back('\n');
}

// Hex-float formatting for exact roundtrips.
std::string F(double v) { return StrFormat("%a", v); }
std::string F(float v) { return StrFormat("%a", static_cast<double>(v)); }

bool ParseHex(std::string_view text, double* out) {
  return ParseDouble(text, out);  // strtod accepts %a output
}

}  // namespace

std::string SerializeModel(const GbdtModel& model) {
  std::string out;
  AppendLine(&out, kHeader);
  AppendLine(&out, "objective " + ToString(model.objective()));
  // Only quantile models carry a knob the transform consumer needs; other
  // objectives keep the pre-existing byte layout.
  if (model.objective() == ObjectiveKind::kQuantile) {
    AppendLine(&out, "quantile_alpha " + F(model.quantile_alpha()));
  }
  AppendLine(&out, "base_margin " + F(model.base_margin()));

  const QuantileCuts& cuts = model.cuts();
  AppendLine(&out, StrFormat("cuts %u %d", cuts.num_features(),
                             cuts.max_bins()));
  {
    std::string line = "cut_ptr";
    for (uint32_t v : cuts.cut_ptr()) line += StrFormat(" %u", v);
    AppendLine(&out, line);
  }
  {
    std::string line = "cut_values";
    for (float v : cuts.cuts()) line += " " + F(v);
    AppendLine(&out, line);
  }

  AppendLine(&out, StrFormat("trees %zu", model.NumTrees()));
  for (const RegTree& tree : model.trees()) {
    AppendLine(&out, StrFormat("tree %d", tree.num_nodes()));
    for (const TreeNode& n : tree.nodes()) {
      AppendLine(&out,
                 StrFormat("node %d %d %d %d %u %u %s %d %s %s %s %s %u",
                           n.parent, n.left, n.right, n.depth,
                           n.split_feature, n.split_bin,
                           F(n.split_value).c_str(), n.default_left ? 1 : 0,
                           F(n.gain).c_str(), F(n.leaf_value).c_str(),
                           F(n.sum.g).c_str(), F(n.sum.h).c_str(),
                           n.num_rows));
    }
  }
  return out;
}

bool DeserializeModel(const std::string& text, GbdtModel* out,
                      std::string* error) {
  std::istringstream stream(text);
  std::string line;
  auto next_line = [&](const char* what) -> bool {
    if (!std::getline(stream, line)) {
      *error = std::string("unexpected end of input, expected ") + what;
      return false;
    }
    return true;
  };

  if (!next_line("header") || Trim(line) != kHeader) {
    *error = "bad header";
    return false;
  }

  GbdtModel model;
  if (!next_line("objective")) return false;
  {
    const auto parts = SplitWhitespace(line);
    ObjectiveKind kind;
    if (parts.size() != 2 || parts[0] != "objective" ||
        !ParseObjectiveKind(std::string(parts[1]), &kind)) {
      *error = "bad objective line";
      return false;
    }
    model.set_objective(kind);
  }
  if (!next_line("base_margin")) return false;
  // Optional quantile_alpha line (written by quantile models; absent in
  // older files and for every other objective).
  {
    const auto parts = SplitWhitespace(line);
    if (!parts.empty() && parts[0] == "quantile_alpha") {
      double alpha = 0.0;
      if (parts.size() != 2 || !ParseHex(parts[1], &alpha) || alpha <= 0.0 ||
          alpha >= 1.0) {
        *error = "bad quantile_alpha line";
        return false;
      }
      model.set_quantile_alpha(alpha);
      if (!next_line("base_margin")) return false;
    }
  }
  {
    const auto parts = SplitWhitespace(line);
    double margin = 0.0;
    if (parts.size() != 2 || parts[0] != "base_margin" ||
        !ParseHex(parts[1], &margin)) {
      *error = "bad base_margin line";
      return false;
    }
    model.set_base_margin(margin);
  }

  // Cuts.
  if (!next_line("cuts")) return false;
  int64_t num_features = 0;
  int64_t max_bins = 0;
  {
    const auto parts = SplitWhitespace(line);
    if (parts.size() != 3 || parts[0] != "cuts" ||
        !ParseInt(parts[1], &num_features) || !ParseInt(parts[2], &max_bins)) {
      *error = "bad cuts line";
      return false;
    }
  }
  std::vector<uint32_t> cut_ptr;
  if (!next_line("cut_ptr")) return false;
  {
    const auto parts = SplitWhitespace(line);
    if (parts.empty() || parts[0] != "cut_ptr" ||
        parts.size() != static_cast<size_t>(num_features) + 2) {
      *error = "bad cut_ptr line";
      return false;
    }
    for (size_t i = 1; i < parts.size(); ++i) {
      int64_t v = 0;
      if (!ParseInt(parts[i], &v)) {
        *error = "bad cut_ptr value";
        return false;
      }
      cut_ptr.push_back(static_cast<uint32_t>(v));
    }
  }
  std::vector<float> cut_values;
  if (!next_line("cut_values")) return false;
  {
    const auto parts = SplitWhitespace(line);
    if (parts.empty() || parts[0] != "cut_values" ||
        parts.size() != static_cast<size_t>(cut_ptr.back()) + 1) {
      *error = "bad cut_values line";
      return false;
    }
    for (size_t i = 1; i < parts.size(); ++i) {
      double v = 0.0;
      if (!ParseHex(parts[i], &v)) {
        *error = "bad cut value";
        return false;
      }
      cut_values.push_back(static_cast<float>(v));
    }
  }
  model.set_cuts(QuantileCuts::FromRaw(std::move(cut_values),
                                       std::move(cut_ptr),
                                       static_cast<int>(max_bins)));

  // Trees.
  if (!next_line("trees")) return false;
  int64_t num_trees = 0;
  {
    const auto parts = SplitWhitespace(line);
    if (parts.size() != 2 || parts[0] != "trees" ||
        !ParseInt(parts[1], &num_trees)) {
      *error = "bad trees line";
      return false;
    }
  }
  for (int64_t t = 0; t < num_trees; ++t) {
    if (!next_line("tree")) return false;
    int64_t num_nodes = 0;
    {
      const auto parts = SplitWhitespace(line);
      if (parts.size() != 2 || parts[0] != "tree" ||
          !ParseInt(parts[1], &num_nodes) || num_nodes < 1) {
        *error = "bad tree line";
        return false;
      }
    }
    RegTree tree;
    tree.mutable_nodes().resize(static_cast<size_t>(num_nodes));
    for (int64_t i = 0; i < num_nodes; ++i) {
      if (!next_line("node")) return false;
      const auto parts = SplitWhitespace(line);
      if (parts.size() != 14 || parts[0] != "node") {
        *error = StrFormat("bad node line: '%s'", line.c_str());
        return false;
      }
      int64_t ints[6];
      for (int k = 0; k < 6; ++k) {
        if (!ParseInt(parts[static_cast<size_t>(k) + 1], &ints[k])) {
          *error = "bad node int field";
          return false;
        }
      }
      double split_value = 0.0;
      int64_t default_left = 0;
      double gain = 0.0;
      double leaf_value = 0.0;
      double sum_g = 0.0;
      double sum_h = 0.0;
      int64_t num_rows = 0;
      if (!ParseHex(parts[7], &split_value) ||
          !ParseInt(parts[8], &default_left) || !ParseHex(parts[9], &gain) ||
          !ParseHex(parts[10], &leaf_value) || !ParseHex(parts[11], &sum_g) ||
          !ParseHex(parts[12], &sum_h) || !ParseInt(parts[13], &num_rows)) {
        *error = "bad node float field";
        return false;
      }
      TreeNode& n = tree.mutable_nodes()[static_cast<size_t>(i)];
      n.parent = static_cast<int32_t>(ints[0]);
      n.left = static_cast<int32_t>(ints[1]);
      n.right = static_cast<int32_t>(ints[2]);
      n.depth = static_cast<int32_t>(ints[3]);
      n.split_feature = static_cast<uint32_t>(ints[4]);
      n.split_bin = static_cast<uint32_t>(ints[5]);
      n.split_value = static_cast<float>(split_value);
      n.default_left = default_left != 0;
      n.gain = gain;
      n.leaf_value = leaf_value;
      n.sum.g = sum_g;
      n.sum.h = sum_h;
      n.num_rows = static_cast<uint32_t>(num_rows);
    }
    if (!tree.CheckValid()) {
      *error = "invalid tree structure";
      return false;
    }
    model.AddTree(std::move(tree));
  }
  *out = std::move(model);
  return true;
}

bool SaveModel(const std::string& path, const GbdtModel& model,
               std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  const std::string text = SerializeModel(model);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file.good()) {
    *error = "write failed for " + path;
    return false;
  }
  return true;
}

bool LoadModel(const std::string& path, GbdtModel* out, std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializeModel(buffer.str(), out, error);
}

}  // namespace harp
