// Trained model: tree ensemble + the metadata needed to predict on raw
// feature values.
#pragma once

#include <string>
#include <vector>

#include "core/objective.h"
#include "core/params.h"
#include "core/tree.h"
#include "data/binned_matrix.h"
#include "data/dataset.h"
#include "data/quantile.h"

namespace harp {

class FlatForest;
class ThreadPool;

class GbdtModel {
 public:
  GbdtModel() = default;
  GbdtModel(ObjectiveKind objective, double base_margin, QuantileCuts cuts)
      : objective_(objective),
        base_margin_(base_margin),
        cuts_(std::move(cuts)) {}

  void AddTree(RegTree tree) { trees_.push_back(std::move(tree)); }

  size_t NumTrees() const { return trees_.size(); }
  const RegTree& tree(size_t i) const { return trees_[i]; }
  const std::vector<RegTree>& trees() const { return trees_; }
  ObjectiveKind objective() const { return objective_; }
  double base_margin() const { return base_margin_; }
  const QuantileCuts& cuts() const { return cuts_; }

  // Raw margin of one row of `dataset`, using the first `num_trees` trees
  // (0 = all). Missing values follow each split's default direction.
  // Single-row reference path on RegTree::PredictRaw; batch prediction
  // goes through the flat Predictor (src/predict/) instead.
  double PredictMarginRow(const Dataset& dataset, uint32_t row,
                          size_t num_trees = 0) const;

  // Margins for every row via the block-wise FlatForest Predictor
  // (parallel when a pool is given); bit-identical to looping
  // PredictMarginRow.
  std::vector<double> PredictMargins(const Dataset& dataset,
                                     ThreadPool* pool = nullptr,
                                     size_t num_trees = 0) const;

  // User-facing predictions: probabilities for logistic, values for
  // squared error.
  std::vector<double> Predict(const Dataset& dataset,
                              ThreadPool* pool = nullptr,
                              size_t num_trees = 0) const;

  // Fast path: margins for a matrix binned with THIS model's cuts (1-byte
  // bin comparisons instead of float comparisons). Use BinDataset() to
  // produce a compatible matrix.
  std::vector<double> PredictMarginsBinned(const BinnedMatrix& matrix,
                                           ThreadPool* pool = nullptr,
                                           size_t num_trees = 0) const;

  // Flattens the ensemble into the SoA inference layout. The Predict*
  // methods above build this per call; callers predicting repeatedly
  // (serving loops, benches) should flatten once and drive a Predictor
  // directly. The returned forest snapshots the current trees — rebuild
  // after mutating the model.
  FlatForest Flatten() const;

  // Bins new raw data with the model's training-time cuts.
  BinnedMatrix BinDataset(const Dataset& dataset,
                          ThreadPool* pool = nullptr) const;

  // Leaf index reached in tree `tree_index` for every binned row
  // (embedding extraction, debugging).
  std::vector<int> PredictLeafIndices(const BinnedMatrix& matrix,
                                      size_t tree_index,
                                      ThreadPool* pool = nullptr) const;

  // Margin transform for a single value.
  double Transform(double margin) const;

  // Total node count across trees (model-size reporting).
  int64_t TotalNodes() const;

  // Mutable access for model IO.
  std::vector<RegTree>& mutable_trees() { return trees_; }
  void set_objective(ObjectiveKind kind) { objective_ = kind; }
  void set_base_margin(double margin) { base_margin_ = margin; }
  void set_cuts(QuantileCuts cuts) { cuts_ = std::move(cuts); }

 private:
  std::vector<RegTree> trees_;
  ObjectiveKind objective_ = ObjectiveKind::kLogistic;
  double base_margin_ = 0.0;
  QuantileCuts cuts_;
};

}  // namespace harp
