// Trained model: tree ensemble + the metadata needed to predict on raw
// feature values.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/objective.h"
#include "core/params.h"
#include "core/tree.h"
#include "data/binned_matrix.h"
#include "data/dataset.h"
#include "data/quantile.h"

namespace harp {

class FlatForest;
class ThreadPool;

class GbdtModel {
 public:
  GbdtModel() = default;
  GbdtModel(ObjectiveKind objective, double base_margin, QuantileCuts cuts)
      : objective_(objective),
        base_margin_(base_margin),
        cuts_(std::move(cuts)) {}

  // Copies/moves transfer the cached flat snapshot (it is immutable and
  // describes the same trees); the cache mutex itself is never
  // transferred. Moves must not race with concurrent use of the source.
  GbdtModel(const GbdtModel& other);
  GbdtModel& operator=(const GbdtModel& other);
  GbdtModel(GbdtModel&& other) noexcept;
  GbdtModel& operator=(GbdtModel&& other) noexcept;

  void AddTree(RegTree tree) {
    trees_.push_back(std::move(tree));
    InvalidateFlatCache();
  }

  size_t NumTrees() const { return trees_.size(); }
  const RegTree& tree(size_t i) const { return trees_[i]; }
  const std::vector<RegTree>& trees() const { return trees_; }
  ObjectiveKind objective() const { return objective_; }
  double base_margin() const { return base_margin_; }
  const QuantileCuts& cuts() const { return cuts_; }

  // Raw margin of one row of `dataset`, using the first `num_trees` trees
  // (0 = all). Missing values follow each split's default direction.
  // Single-row reference path on RegTree::PredictRaw; batch prediction
  // goes through the flat Predictor (src/predict/) instead.
  double PredictMarginRow(const Dataset& dataset, uint32_t row,
                          size_t num_trees = 0) const;

  // Margins for every row via the block-wise FlatForest Predictor
  // (parallel when a pool is given); bit-identical to looping
  // PredictMarginRow.
  std::vector<double> PredictMargins(const Dataset& dataset,
                                     ThreadPool* pool = nullptr,
                                     size_t num_trees = 0) const;

  // User-facing predictions: probabilities for logistic, values for
  // squared error.
  std::vector<double> Predict(const Dataset& dataset,
                              ThreadPool* pool = nullptr,
                              size_t num_trees = 0) const;

  // Fast path: margins for a matrix binned with THIS model's cuts (1-byte
  // bin comparisons instead of float comparisons). Use BinDataset() to
  // produce a compatible matrix.
  std::vector<double> PredictMarginsBinned(const BinnedMatrix& matrix,
                                           ThreadPool* pool = nullptr,
                                           size_t num_trees = 0) const;

  // Flattens the ensemble into the SoA inference layout. Always builds a
  // fresh forest; prefer FlatSnapshot() unless you need an independent
  // copy (e.g. to mutate the model while keeping the old layout).
  FlatForest Flatten() const;

  // Cached flat snapshot, built on first use and shared by every caller:
  // repeated Predict* calls (and a model server's reload path) flatten
  // once instead of per call. Any model mutation — AddTree, mutable_trees,
  // set_base_margin, set_cuts — invalidates the cache; holders of the
  // returned pointer keep the old (still-consistent) snapshot alive.
  // Thread-safe: concurrent FlatSnapshot()/Predict* calls are fine.
  std::shared_ptr<const FlatForest> FlatSnapshot() const;

  // Bins new raw data with the model's training-time cuts.
  BinnedMatrix BinDataset(const Dataset& dataset,
                          ThreadPool* pool = nullptr) const;

  // Leaf index reached in tree `tree_index` for every binned row
  // (embedding extraction, debugging).
  std::vector<int> PredictLeafIndices(const BinnedMatrix& matrix,
                                      size_t tree_index,
                                      ThreadPool* pool = nullptr) const;

  // Margin transform for a single value.
  double Transform(double margin) const;

  // Total node count across trees (model-size reporting).
  int64_t TotalNodes() const;

  // Mutable access for model IO. Taking the reference conservatively
  // drops the flat cache — the caller may mutate through it at any time.
  std::vector<RegTree>& mutable_trees() {
    InvalidateFlatCache();
    return trees_;
  }
  void set_objective(ObjectiveKind kind) { objective_ = kind; }
  // Quantile models carry their alpha so loaded models report which
  // quantile their predictions estimate. Ignored by other objectives.
  double quantile_alpha() const { return quantile_alpha_; }
  void set_quantile_alpha(double alpha) { quantile_alpha_ = alpha; }
  void set_base_margin(double margin) {
    base_margin_ = margin;
    InvalidateFlatCache();
  }
  void set_cuts(QuantileCuts cuts) {
    cuts_ = std::move(cuts);
    InvalidateFlatCache();
  }

 private:
  void InvalidateFlatCache() {
    std::lock_guard<std::mutex> lock(flat_mutex_);
    flat_cache_.reset();
  }

  std::vector<RegTree> trees_;
  ObjectiveKind objective_ = ObjectiveKind::kLogistic;
  double quantile_alpha_ = 0.5;
  double base_margin_ = 0.0;
  QuantileCuts cuts_;
  mutable std::mutex flat_mutex_;
  mutable std::shared_ptr<const FlatForest> flat_cache_;
};

}  // namespace harp
