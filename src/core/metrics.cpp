#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace harp {

double Auc(const std::vector<float>& labels,
           const std::vector<double>& scores) {
  HARP_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] < scores[b];
  });

  // Rank-sum (Mann-Whitney U) with midranks for ties.
  double positives = 0.0;
  double negatives = 0.0;
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    // Average rank of the tie group (1-based ranks).
    const double mid_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) * 0.5;
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        positives += 1.0;
        rank_sum_pos += mid_rank;
      } else {
        negatives += 1.0;
      }
    }
    i = j;
  }
  if (positives == 0.0 || negatives == 0.0) return 0.5;
  const double u = rank_sum_pos - positives * (positives + 1.0) * 0.5;
  return u / (positives * negatives);
}

double LogLoss(const std::vector<float>& labels,
               const std::vector<double>& probabilities) {
  HARP_CHECK_EQ(labels.size(), probabilities.size());
  HARP_CHECK(!labels.empty());
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double p = std::clamp(probabilities[i], 1e-15, 1.0 - 1e-15);
    sum += labels[i] > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return sum / static_cast<double>(labels.size());
}

double Rmse(const std::vector<float>& labels,
            const std::vector<double>& predictions) {
  HARP_CHECK_EQ(labels.size(), predictions.size());
  HARP_CHECK(!labels.empty());
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double d = predictions[i] - static_cast<double>(labels[i]);
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(labels.size()));
}

double ErrorRate(const std::vector<float>& labels,
                 const std::vector<double>& probabilities) {
  HARP_CHECK_EQ(labels.size(), probabilities.size());
  HARP_CHECK(!labels.empty());
  size_t wrong = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool predicted = probabilities[i] >= 0.5;
    const bool actual = labels[i] > 0.5f;
    if (predicted != actual) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(labels.size());
}

}  // namespace harp
