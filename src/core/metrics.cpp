#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "core/params.h"

namespace harp {

double Auc(const std::vector<float>& labels,
           const std::vector<double>& scores) {
  HARP_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] < scores[b];
  });

  // Rank-sum (Mann-Whitney U) with midranks for ties.
  double positives = 0.0;
  double negatives = 0.0;
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    // Average rank of the tie group (1-based ranks).
    const double mid_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) * 0.5;
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        positives += 1.0;
        rank_sum_pos += mid_rank;
      } else {
        negatives += 1.0;
      }
    }
    i = j;
  }
  if (positives == 0.0 || negatives == 0.0) return 0.5;
  const double u = rank_sum_pos - positives * (positives + 1.0) * 0.5;
  return u / (positives * negatives);
}

double LogLoss(const std::vector<float>& labels,
               const std::vector<double>& probabilities) {
  HARP_CHECK_EQ(labels.size(), probabilities.size());
  HARP_CHECK(!labels.empty());
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double p = std::clamp(probabilities[i], 1e-15, 1.0 - 1e-15);
    sum += labels[i] > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return sum / static_cast<double>(labels.size());
}

double Rmse(const std::vector<float>& labels,
            const std::vector<double>& predictions) {
  HARP_CHECK_EQ(labels.size(), predictions.size());
  HARP_CHECK(!labels.empty());
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double d = predictions[i] - static_cast<double>(labels[i]);
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(labels.size()));
}

double ErrorRate(const std::vector<float>& labels,
                 const std::vector<double>& probabilities) {
  HARP_CHECK_EQ(labels.size(), probabilities.size());
  HARP_CHECK(!labels.empty());
  size_t wrong = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool predicted = probabilities[i] >= 0.5;
    const bool actual = labels[i] > 0.5f;
    if (predicted != actual) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(labels.size());
}

double PinballLoss(const std::vector<float>& labels,
                   const std::vector<double>& predictions, double alpha) {
  HARP_CHECK_EQ(labels.size(), predictions.size());
  HARP_CHECK(!labels.empty());
  HARP_CHECK_GT(alpha, 0.0);
  HARP_CHECK_LT(alpha, 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double d = static_cast<double>(labels[i]) - predictions[i];
    sum += d >= 0.0 ? alpha * d : (alpha - 1.0) * d;
  }
  return sum / static_cast<double>(labels.size());
}

double MeanPoissonDeviance(const std::vector<float>& labels,
                           const std::vector<double>& rates) {
  HARP_CHECK_EQ(labels.size(), rates.size());
  HARP_CHECK(!labels.empty());
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double y = static_cast<double>(labels[i]);
    HARP_CHECK_GE(y, 0.0) << "poisson labels must be non-negative";
    const double mu = std::max(rates[i], 1e-15);
    // y log(y/mu) -> 0 as y -> 0.
    const double ylog = y > 0.0 ? y * std::log(y / mu) : 0.0;
    sum += 2.0 * (ylog - y + mu);
  }
  return sum / static_cast<double>(labels.size());
}

namespace {

double DcgGain(float rel) { return std::pow(2.0, rel) - 1.0; }

double DcgDiscount(size_t rank_1based) {
  return 1.0 / std::log2(static_cast<double>(rank_1based) + 1.0);
}

}  // namespace

double NdcgAtK(const std::vector<float>& labels,
               const std::vector<double>& scores,
               const std::vector<uint32_t>& group_ptr, int k) {
  HARP_CHECK_EQ(labels.size(), scores.size());
  HARP_CHECK_GE(group_ptr.size(), 2u);
  HARP_CHECK_EQ(group_ptr.front(), 0u);
  HARP_CHECK_EQ(static_cast<size_t>(group_ptr.back()), labels.size());
  HARP_CHECK_GE(k, 1);

  double ndcg_sum = 0.0;
  size_t scored_queries = 0;
  std::vector<uint32_t> order;
  std::vector<float> sorted_rel;
  for (size_t q = 0; q + 1 < group_ptr.size(); ++q) {
    const uint32_t begin = group_ptr[q];
    const uint32_t n = group_ptr[q + 1] - begin;
    if (n == 0) continue;
    order.resize(n);
    std::iota(order.begin(), order.end(), 0u);
    // Score desc, ties by row index asc — same order the objective uses.
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const double sa = scores[begin + a];
      const double sb = scores[begin + b];
      if (sa != sb) return sa > sb;
      return a < b;
    });
    sorted_rel.assign(labels.begin() + begin, labels.begin() + begin + n);
    std::sort(sorted_rel.begin(), sorted_rel.end(), std::greater<float>());

    const size_t top = std::min<size_t>(n, static_cast<size_t>(k));
    double ideal = 0.0;
    double dcg = 0.0;
    for (size_t p = 0; p < top; ++p) {
      ideal += DcgGain(sorted_rel[p]) * DcgDiscount(p + 1);
      dcg += DcgGain(labels[begin + order[p]]) * DcgDiscount(p + 1);
    }
    if (ideal <= 0.0) continue;  // no relevant docs: any order is perfect
    ndcg_sum += dcg / ideal;
    ++scored_queries;
  }
  if (scored_queries == 0) return 1.0;
  return ndcg_sum / static_cast<double>(scored_queries);
}

namespace {

// Adapters from the free functions to the registry interface.

class LogLossMetric final : public Metric {
 public:
  std::string name() const override { return "logloss"; }
  double Evaluate(const std::vector<float>& labels,
                  const std::vector<double>& predictions,
                  const std::vector<uint32_t>*) const override {
    return LogLoss(labels, predictions);
  }
};

class RmseMetric final : public Metric {
 public:
  std::string name() const override { return "rmse"; }
  double Evaluate(const std::vector<float>& labels,
                  const std::vector<double>& predictions,
                  const std::vector<uint32_t>*) const override {
    return Rmse(labels, predictions);
  }
};

class AucMetric final : public Metric {
 public:
  std::string name() const override { return "auc"; }
  bool higher_is_better() const override { return true; }
  double Evaluate(const std::vector<float>& labels,
                  const std::vector<double>& predictions,
                  const std::vector<uint32_t>*) const override {
    return Auc(labels, predictions);
  }
};

class ErrorMetric final : public Metric {
 public:
  std::string name() const override { return "error"; }
  double Evaluate(const std::vector<float>& labels,
                  const std::vector<double>& predictions,
                  const std::vector<uint32_t>*) const override {
    return ErrorRate(labels, predictions);
  }
};

class PinballMetric final : public Metric {
 public:
  explicit PinballMetric(double alpha) : alpha_(alpha) {}
  std::string name() const override { return "pinball"; }
  double Evaluate(const std::vector<float>& labels,
                  const std::vector<double>& predictions,
                  const std::vector<uint32_t>*) const override {
    return PinballLoss(labels, predictions, alpha_);
  }

 private:
  double alpha_;
};

class PoissonDevianceMetric final : public Metric {
 public:
  std::string name() const override { return "poisson-deviance"; }
  double Evaluate(const std::vector<float>& labels,
                  const std::vector<double>& predictions,
                  const std::vector<uint32_t>*) const override {
    return MeanPoissonDeviance(labels, predictions);
  }
};

class NdcgMetric final : public Metric {
 public:
  explicit NdcgMetric(int k) : k_(k) {}
  std::string name() const override {
    return "ndcg@" + std::to_string(k_);
  }
  bool higher_is_better() const override { return true; }
  bool needs_groups() const override { return true; }
  double Evaluate(const std::vector<float>& labels,
                  const std::vector<double>& predictions,
                  const std::vector<uint32_t>* group_ptr) const override {
    HARP_CHECK(group_ptr != nullptr && group_ptr->size() >= 2)
        << "ndcg requires query groups (qid: columns)";
    return NdcgAtK(labels, predictions, *group_ptr, k_);
  }

 private:
  int k_;
};

}  // namespace

std::unique_ptr<Metric> Metric::Create(const std::string& name,
                                       const MetricConfig& config) {
  if (name == "logloss") return std::make_unique<LogLossMetric>();
  if (name == "rmse") return std::make_unique<RmseMetric>();
  if (name == "auc") return std::make_unique<AucMetric>();
  if (name == "error") return std::make_unique<ErrorMetric>();
  if (name == "pinball") {
    return std::make_unique<PinballMetric>(config.quantile_alpha);
  }
  if (name == "poisson-deviance") {
    return std::make_unique<PoissonDevianceMetric>();
  }
  if (name == "ndcg") return std::make_unique<NdcgMetric>(config.ndcg_k);
  if (name.rfind("ndcg@", 0) == 0) {
    const std::string suffix = name.substr(5);
    HARP_CHECK(!suffix.empty() &&
               suffix.find_first_not_of("0123456789") == std::string::npos)
        << "bad ndcg truncation in metric name '" << name << "'";
    const int k = std::stoi(suffix);
    HARP_CHECK_GE(k, 1);
    return std::make_unique<NdcgMetric>(k);
  }
  HARP_CHECK(false) << "unknown metric '" << name
                    << "' (expected logloss|rmse|auc|error|pinball|"
                       "poisson-deviance|ndcg|ndcg@<k>)";
  return nullptr;
}

std::string Metric::DefaultName(ObjectiveKind kind, const MetricConfig& config) {
  switch (kind) {
    case ObjectiveKind::kLogistic: return "logloss";
    case ObjectiveKind::kSquaredError: return "rmse";
    case ObjectiveKind::kQuantile: return "pinball";
    case ObjectiveKind::kPoisson: return "poisson-deviance";
    case ObjectiveKind::kLambdaRank:
      return "ndcg@" + std::to_string(config.ndcg_k);
  }
  HARP_CHECK(false) << "unknown objective";
  return "";
}

}  // namespace harp
