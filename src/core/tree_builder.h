// Tree construction: Algorithm 1 with TopK growth (Section IV-B) and the
// four parallelism modes of Table II.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/grow_policy.h"
#include "core/hist_builder.h"
#include "core/histogram.h"
#include "core/params.h"
#include "core/row_partitioner.h"
#include "core/split_evaluator.h"
#include "core/train_stats.h"
#include "core/tree.h"
#include "data/binned_matrix.h"
#include "parallel/thread_pool.h"

namespace harp {

// Interface shared by HarpGBDT and the reimplemented baselines so one
// boosting driver (RunBoosting in gbdt.h) trains with any of them.
class TreeBuilderBase {
 public:
  virtual ~TreeBuilderBase() = default;

  // Builds one tree for the given per-row gradients. Leaf values in the
  // returned tree are already scaled by the learning rate.
  virtual RegTree BuildTree(const std::vector<GradientPair>& gradients,
                            TrainStats* stats) = 0;

  // Adds the freshly built tree's leaf values to the training margins,
  // using whatever row-membership state the builder kept from BuildTree.
  virtual void UpdateMargins(const RegTree& tree,
                             std::vector<double>* margins) = 0;

  // Restricts split search to features with a non-zero mask byte for
  // subsequent BuildTree calls (per-tree column sampling); nullptr clears
  // the restriction. Builders without sampling support may ignore it.
  virtual void SetColumnMask(const std::vector<uint8_t>* mask) {
    (void)mask;
  }
};

// Margin update for builders that keep a RowPartitioner: scatters each
// leaf's value to its rows (leaves own disjoint rows, so they run
// concurrently).
void ScatterLeafValues(const RegTree& tree, const RowPartitioner& partitioner,
                       ThreadPool& pool, std::vector<double>* margins);

// HarpGBDT's builder: block-wise DP/MP, SYNC phase mixing, ASYNC node
// parallelism, MemBuf, optional histogram subtraction.
class HarpTreeBuilder final : public TreeBuilderBase {
 public:
  HarpTreeBuilder(const BinnedMatrix& matrix, const TrainParams& params,
                  ThreadPool& pool);

  RegTree BuildTree(const std::vector<GradientPair>& gradients,
                    TrainStats* stats) override;

  void UpdateMargins(const RegTree& tree,
                     std::vector<double>* margins) override {
    ScatterLeafValues(tree, partitioner_, pool_, margins);
  }

  void SetColumnMask(const std::vector<uint8_t>* mask) override {
    column_mask_ = mask;
  }

  // Row membership of the most recently built tree (tests, diagnostics).
  const RowPartitioner& partitioner() const { return partitioner_; }

  // Number of grow steps whose member scratch (batch / children / build
  // plan / find grid vectors) changed capacity — 0 across steady-state
  // trees once the working set has been reached (zero-alloc tests).
  int64_t scratch_grow_events() const { return scratch_grows_; }

 private:
  BuildContext Context() {
    return BuildContext{matrix_,
                        params_,
                        pool_,
                        partitioner_,
                        hists_,
                        use_quant_ ? &quant_round_ : nullptr,
                        simd_level_};
  }

  // Picks DP or MP for one batch. For SYNC this implements the (DP, MP,
  // DP) phase schedule of Table II: DP while there are fewer candidates
  // than threads (beginning), DP again when nodes have shrunk below a
  // task-granularity threshold (end), MP in between.
  ParallelMode ChooseMode(size_t batch_nodes, int64_t batch_rows) const;

  // Batch-synchronous growth loop; stops early when `stop` returns true
  // (used by ASYNC's DP ramp-up phase). Returns via out-params so the
  // async phase can continue from the same state.
  void SyncGrow(RegTree& tree, GrowQueue& queue, int64_t& leaves,
                TrainStats* stats, const std::function<bool()>& stop);

  // Node-parallel growth (Section IV-D); defined in async_builder.cpp.
  void AsyncGrow(RegTree& tree, GrowQueue& queue, int64_t& leaves,
                 TrainStats* stats);

  // --- one grow step, region-per-phase path (the bit-identity oracle) ---

  // Applies batch_'s splits to the tree and stages the partitioner tasks
  // (serial; shared with the fused path).
  void StageApply(RegTree& tree);
  // StageApply + batched row partition + child num_rows (fills children_).
  void ApplySplitBatch(RegTree& tree);
  // Decides which children get a direct build vs. parent - sibling
  // subtraction, acquires child histograms, picks the batch's DP/MP mode
  // (fills build_list_ / subtract_list_ / plan_mode_; shared).
  void PlanBuild(RegTree& tree);
  // PlanBuild + histogram build + subtraction + FindSplitsBatch over the
  // children (fills found_, one Candidate per child, possibly invalid).
  void BuildAndFind(RegTree& tree);
  // FindSplit for nodes whose histograms are live (fills found_).
  void FindSplitsBatch(const RegTree& tree, std::span<const int> nodes);

  // Shared find pieces: stage the nodes x feature-block grid, run one
  // grid cell, serially merge the partials into found_ (fixed fb order,
  // so the merge is schedule-independent).
  void PrepareFind(const RegTree& tree, std::span<const int> nodes);
  void RunFindTask(size_t grid_index);
  void MergeFound(const RegTree& tree);

  // --- one grow step, fused path (tree_builder_fused.cpp) ---

  // Runs apply / build / subtract / find as phases of ONE FusedRegion:
  // exactly one region launch per TopK batch. Bit-identical outputs to
  // ApplySplitBatch + BuildAndFind.
  void FusedStep(RegTree& tree);
  // Barrier epilogue after the partition: child num_rows, PlanBuild, and
  // (MP) overlap-graph staging.
  void PlanAfterPartition(RegTree& tree);
  // Stages the MP overlap work-graph: cube tasks, per-node drain
  // counters, and the slot ring seeded with the build tasks.
  void StageOverlap(const RegTree& tree);
  // Per-thread overlap scheduler loop: pops the slot ring until all
  // build + subtract + find tasks have run.
  void OverlapRun(ThreadPool::FusedRegion& region, int thread_id);
  void RunOverlapTask(const BuildContext& ctx, int32_t id);
  void PushTask(int32_t id);
  void PushFinds(uint32_t child_pos);
  // Final barrier epilogue: merge find partials, release parent
  // histograms, stamp the step-end timestamp.
  void FinishStep(RegTree& tree);

  // Sets leaf_value on every leaf from its gradient sum.
  void FinalizeLeaves(RegTree& tree) const;

  // Capacity fingerprint of the per-step member scratch (zero-alloc
  // accounting; see scratch_grow_events()).
  size_t ScratchCapacity() const;

  const BinnedMatrix& matrix_;
  const TrainParams& params_;
  ThreadPool& pool_;
  SplitEvaluator evaluator_;
  HistogramPool hists_;
  RowPartitioner partitioner_;
  HistBuilderDP dp_;
  HistBuilderMP mp_;
  GrowQueue queue_;
  bool use_subtraction_;  // forced off for ASYNC (see .cpp)
  bool use_fused_;        // forced off for ASYNC (own scheduler)
  bool use_quant_;        // forced off for ASYNC (see .cpp)
  SimdLevel simd_level_;  // resolved once from params.simd
  // Per-tree quantization state (scales + packed rows); valid only while
  // use_quant_ and refreshed at the top of every BuildTree.
  QuantRound quant_round_;
  const std::vector<uint8_t>* column_mask_ = nullptr;

  // Per-step member scratch (grow-only; steady-state growth reuses it
  // without allocating).
  std::vector<SplitTask> split_tasks_;
  std::vector<Candidate> batch_;
  std::vector<int> children_;
  std::vector<int> build_list_;
  struct SubtractJob {
    int child;            // large child: parent - sibling
    int sibling;          // small child (directly built)
    int parent;
    uint32_t child_pos;   // index of `child` in children_
    GHPair* child_h;      // resolved in PlanBuild, after Acquire
    GHPair* parent_h;
    GHPair* sibling_h;
  };
  std::vector<SubtractJob> subtract_list_;
  std::vector<Candidate> found_;
  int64_t build_rows_ = 0;
  ParallelMode plan_mode_ = ParallelMode::kDP;

  // Find grid scratch. fblocks_ is fixed at construction (params and
  // thread count never change), which keeps find task ids stable.
  std::vector<Range> fblocks_;
  std::span<const int> find_nodes_;
  std::vector<SplitInfo> find_partial_;
  std::vector<const GHPair*> find_hist_;
  std::vector<GHPair> find_sums_;

  // MP overlap work-graph state. Task ids: [0, B) = staged MP cubes,
  // [B, B+S) = subtract jobs, [B+S, B+S+F) = find grid cells (node-major,
  // so find id f maps to find_partial_[f]). slots_ is a single-pass ring:
  // every task id is pushed exactly once (builds pre-seeded, the rest
  // pushed by the event that makes them runnable) and popped exactly once
  // via qhead_.
  std::unique_ptr<std::atomic<int32_t>[]> slots_;
  size_t slots_cap_ = 0;
  std::unique_ptr<std::atomic<int32_t>[]> node_remaining_;
  size_t node_remaining_cap_ = 0;
  std::vector<int32_t> build_pos_;        // node id -> build_list_ index
  std::vector<uint32_t> build_child_pos_; // build_list_ index -> children_ index
  std::vector<int32_t> sub_of_build_;     // build_list_ index -> subtract index or -1
  alignas(64) std::atomic<int64_t> qhead_{0};
  alignas(64) std::atomic<int64_t> qtail_{0};
  std::atomic<int32_t> builds_left_{0};
  std::atomic<int64_t> t_build_done_{0};
  int64_t overlap_total_ = 0;
  int32_t overlap_builds_ = 0;
  int32_t overlap_subs_ = 0;

  // Phase accumulators for the current BuildTree call.
  int64_t build_ns_ = 0;
  int64_t reduce_ns_ = 0;
  int64_t find_ns_ = 0;
  int64_t apply_ns_ = 0;
  int64_t quantize_ns_ = 0;
  int64_t trees_built_ = 0;  // rounds completed (stochastic-rounding seed)
  int64_t hist_updates_ = 0;
  // Fused-step phase boundary timestamps (written in barrier epilogues).
  int64_t t_apply_end_ = 0;
  int64_t t_build_end_ = 0;
  int64_t t_find_end_ = 0;
  int64_t topk_batches_ = 0;
  int64_t scratch_grows_ = 0;
};

}  // namespace harp
