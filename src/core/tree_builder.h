// Tree construction: Algorithm 1 with TopK growth (Section IV-B) and the
// four parallelism modes of Table II.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/grow_policy.h"
#include "core/hist_builder.h"
#include "core/histogram.h"
#include "core/params.h"
#include "core/row_partitioner.h"
#include "core/split_evaluator.h"
#include "core/train_stats.h"
#include "core/tree.h"
#include "data/binned_matrix.h"
#include "parallel/thread_pool.h"

namespace harp {

// Interface shared by HarpGBDT and the reimplemented baselines so one
// boosting driver (RunBoosting in gbdt.h) trains with any of them.
class TreeBuilderBase {
 public:
  virtual ~TreeBuilderBase() = default;

  // Builds one tree for the given per-row gradients. Leaf values in the
  // returned tree are already scaled by the learning rate.
  virtual RegTree BuildTree(const std::vector<GradientPair>& gradients,
                            TrainStats* stats) = 0;

  // Adds the freshly built tree's leaf values to the training margins,
  // using whatever row-membership state the builder kept from BuildTree.
  virtual void UpdateMargins(const RegTree& tree,
                             std::vector<double>* margins) = 0;

  // Restricts split search to features with a non-zero mask byte for
  // subsequent BuildTree calls (per-tree column sampling); nullptr clears
  // the restriction. Builders without sampling support may ignore it.
  virtual void SetColumnMask(const std::vector<uint8_t>* mask) {
    (void)mask;
  }
};

// Margin update for builders that keep a RowPartitioner: scatters each
// leaf's value to its rows (leaves own disjoint rows, so they run
// concurrently).
void ScatterLeafValues(const RegTree& tree, const RowPartitioner& partitioner,
                       ThreadPool& pool, std::vector<double>* margins);

// HarpGBDT's builder: block-wise DP/MP, SYNC phase mixing, ASYNC node
// parallelism, MemBuf, optional histogram subtraction.
class HarpTreeBuilder final : public TreeBuilderBase {
 public:
  HarpTreeBuilder(const BinnedMatrix& matrix, const TrainParams& params,
                  ThreadPool& pool);

  RegTree BuildTree(const std::vector<GradientPair>& gradients,
                    TrainStats* stats) override;

  void UpdateMargins(const RegTree& tree,
                     std::vector<double>* margins) override {
    ScatterLeafValues(tree, partitioner_, pool_, margins);
  }

  void SetColumnMask(const std::vector<uint8_t>* mask) override {
    column_mask_ = mask;
  }

  // Row membership of the most recently built tree (tests, diagnostics).
  const RowPartitioner& partitioner() const { return partitioner_; }

 private:
  BuildContext Context() {
    return BuildContext{matrix_, params_, pool_, partitioner_, hists_};
  }

  // Picks DP or MP for one batch. For SYNC this implements the (DP, MP,
  // DP) phase schedule of Table II: DP while there are fewer candidates
  // than threads (beginning), DP again when nodes have shrunk below a
  // task-granularity threshold (end), MP in between.
  ParallelMode ChooseMode(size_t batch_nodes, int64_t batch_rows) const;

  // Batch-synchronous growth loop; stops early when `stop` returns true
  // (used by ASYNC's DP ramp-up phase). Returns via out-params so the
  // async phase can continue from the same state.
  void SyncGrow(RegTree& tree, GrowQueue& queue, int64_t& leaves,
                TrainStats* stats, const std::function<bool()>& stop);

  // Node-parallel growth (Section IV-D); defined in async_builder.cpp.
  void AsyncGrow(RegTree& tree, GrowQueue& queue, int64_t& leaves,
                 TrainStats* stats);

  // Applies the batch's splits to tree + partitioner; returns children ids
  // (pairs in batch order). Updates child num_rows.
  std::vector<int> ApplySplitBatch(RegTree& tree,
                                   std::span<const Candidate> batch);

  // Builds histograms for `children` (with parent subtraction when
  // enabled), then finds their best splits. Returns one Candidate per
  // child (possibly invalid). Manages histogram lifetimes.
  std::vector<Candidate> BuildAndFind(RegTree& tree,
                                      std::span<const Candidate> batch,
                                      std::span<const int> children,
                                      TrainStats* stats);

  // FindSplit for a set of nodes whose histograms are live.
  std::vector<Candidate> FindSplitsBatch(const RegTree& tree,
                                         std::span<const int> nodes);

  // Sets leaf_value on every leaf from its gradient sum.
  void FinalizeLeaves(RegTree& tree) const;

  const BinnedMatrix& matrix_;
  const TrainParams& params_;
  ThreadPool& pool_;
  SplitEvaluator evaluator_;
  HistogramPool hists_;
  RowPartitioner partitioner_;
  HistBuilderDP dp_;
  HistBuilderMP mp_;
  bool use_subtraction_;  // forced off for ASYNC (see .cpp)
  const std::vector<uint8_t>* column_mask_ = nullptr;
  // Per-batch SplitTask staging for the partitioner's batched apply
  // (grow-only, reused across batches).
  std::vector<SplitTask> split_tasks_;

  // Phase accumulators for the current BuildTree call.
  int64_t build_ns_ = 0;
  int64_t reduce_ns_ = 0;
  int64_t find_ns_ = 0;
  int64_t apply_ns_ = 0;
  int64_t hist_updates_ = 0;
};

}  // namespace harp
