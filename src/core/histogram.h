// Node histogram storage (the GHSum structure of Fig. 5).
//
// Each node's histogram is a flat array of TotalBins() GHPair slots
// (16 bytes each), indexed by BinOffset(feature) + bin. A pool recycles
// buffers across nodes and trees — at most O(active nodes) buffers live at
// once — and supports the parent-minus-sibling subtraction trick. Acquire/
// Release are guarded by a spin mutex so ASYNC worker threads can allocate
// node histograms concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/aligned.h"
#include "core/gh.h"
#include "parallel/spin_mutex.h"

namespace harp {

class ThreadPool;

class HistogramPool {
 public:
  explicit HistogramPool(size_t total_bins) : total_bins_(total_bins) {}

  size_t total_bins() const { return total_bins_; }

  // Returns a zeroed histogram registered under `node_id`; the node must
  // not already own one. Thread safe.
  GHPair* Acquire(int node_id);

  // Histogram of `node_id` (must exist). Thread safe.
  GHPair* Get(int node_id);
  const GHPair* Get(int node_id) const;

  bool Has(int node_id) const;

  // Returns the buffer of `node_id` to the free list. Thread safe.
  void Release(int node_id);

  // Releases everything (start of a new tree).
  void ReleaseAll();

  // High-water mark of simultaneously live buffers x bytes per buffer.
  size_t PeakBytes() const;

 private:
  using Buffer = AlignedVector<GHPair>;

  size_t total_bins_;
  mutable SpinMutex mutex_;
  std::vector<Buffer> free_list_;
  std::unordered_map<int, Buffer> in_use_;
  size_t peak_in_use_ = 0;
};

// dst[i] += src[i] over `n` slots.
void AddHistogram(GHPair* dst, const GHPair* src, size_t n);

// out[i] = parent[i] - sibling[i] over `n` slots (the subtraction trick:
// the larger child's histogram for free).
void SubtractHistogram(GHPair* out, const GHPair* parent,
                       const GHPair* sibling, size_t n);

// Zeroes `n` slots.
void ClearHistogram(GHPair* hist, size_t n);

// Sums all slots (used to cross-check against the node's gradient total).
GHPair SumHistogramFeature(const GHPair* hist, uint32_t offset,
                           uint32_t num_bins);

}  // namespace harp
