// Loss functions: gradients/hessians of Eq. 1 and prediction transforms.
//
// Two gradient entry points:
//   RowGradient       — the per-row kernel of point-wise losses (logistic,
//                       squared error, quantile, Poisson);
//   ComputeGradients  — the batch interface the trainer calls. Its default
//                       implementation parallelizes RowGradient over rows,
//                       so point-wise objectives implement only the kernel.
//                       List-wise losses that cannot be expressed per row
//                       (LambdaRank) override the batch method instead and
//                       parallelize over query groups.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/gh.h"
#include "core/params.h"

namespace harp {

class ThreadPool;

// Everything an objective may need beyond the margins. Groups are query
// boundaries (num_groups + 1 entries, group g = rows [g, g+1)); null for
// ungrouped data — objectives with NeedsGroups() CHECK it is present.
struct GradientContext {
  const std::vector<float>* labels = nullptr;
  const std::vector<double>* margins = nullptr;
  const std::vector<uint32_t>* group_ptr = nullptr;
};

// Per-objective knobs (a subset of TrainParams, so model-side users can
// rebuild the transform without the full training config).
struct ObjectiveConfig {
  ObjectiveKind kind = ObjectiveKind::kLogistic;
  double quantile_alpha = 0.5;  // kQuantile
  double max_delta_step = 0.7;  // kPoisson
  int ndcg_k = 10;              // kLambdaRank
};

class Objective {
 public:
  virtual ~Objective() = default;

  // First/second-order gradients of the loss at the current margins.
  // labels/margins/out have equal length; out is resized. The default
  // implementation evaluates RowGradient per row (parallel over rows when
  // a pool is given) — bit-identical for any thread count. List-wise
  // overrides must also be thread-count invariant (parallel over queries,
  // serial within a query).
  virtual void ComputeGradients(const GradientContext& ctx,
                                std::vector<GradientPair>* out,
                                ThreadPool* pool = nullptr) const;

  // Convenience wrapper for ungrouped point-wise callers.
  void ComputeGradients(const std::vector<float>& labels,
                        const std::vector<double>& margins,
                        std::vector<GradientPair>* out,
                        ThreadPool* pool = nullptr) const {
    GradientContext ctx;
    ctx.labels = &labels;
    ctx.margins = &margins;
    ComputeGradients(ctx, out, pool);
  }

  // Gradient of one row (the default ComputeGradients kernel). List-wise
  // objectives have no per-row gradient; the base implementation
  // CHECK-fails.
  virtual GradientPair RowGradient(float label, double margin) const;

  // Margin -> user-facing prediction (sigmoid for logistic, exp for
  // Poisson, identity for the regression and ranking losses).
  virtual double Transform(double margin) const = 0;

  // Initial margin corresponding to base_score.
  virtual double InitialMargin(double base_score) const = 0;

  // True when ComputeGradients requires ctx.group_ptr (LambdaRank).
  virtual bool NeedsGroups() const { return false; }

  virtual ObjectiveKind kind() const = 0;

  static std::unique_ptr<Objective> Create(const ObjectiveConfig& config);
  // Default-config convenience (point-wise objectives without knobs).
  static std::unique_ptr<Objective> Create(ObjectiveKind kind);
  // The objective knobs embedded in a training config.
  static ObjectiveConfig ConfigFromParams(const TrainParams& params);
};

}  // namespace harp
