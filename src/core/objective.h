// Loss functions: gradients/hessians of Eq. 1 and prediction transforms.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/gh.h"
#include "core/params.h"

namespace harp {

class ThreadPool;

class Objective {
 public:
  virtual ~Objective() = default;

  // First/second-order gradients of the loss at the current margins.
  // margins are raw scores (pre-transform); labels/margins/out have equal
  // length. Parallelized over rows when a pool is given.
  void ComputeGradients(const std::vector<float>& labels,
                        const std::vector<double>& margins,
                        std::vector<GradientPair>* out,
                        ThreadPool* pool = nullptr) const;

  // Gradient of one row (the ComputeGradients kernel).
  virtual GradientPair RowGradient(float label, double margin) const = 0;

  // Margin -> user-facing prediction (sigmoid for logistic, identity for
  // squared error).
  virtual double Transform(double margin) const = 0;

  // Initial margin corresponding to base_score.
  virtual double InitialMargin(double base_score) const = 0;

  virtual ObjectiveKind kind() const = 0;

  static std::unique_ptr<Objective> Create(ObjectiveKind kind);
};

}  // namespace harp
