#include "core/hist_kernels.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include <algorithm>

#include "common/logging.h"

namespace harp {
namespace {

// Rows accumulated per inner iteration. Four gives one histogram sweep per
// four rows and four independent add chains per feature; it is also the
// group size the remainder-path tests exercise.
constexpr uint32_t kRowGroup = 4;
// Bin bytes (and gathered gradient pairs) are prefetched this many rows
// ahead — two groups, far enough to cover a row's worth of accumulation.
constexpr uint32_t kRowPrefetchDist = 2 * kRowGroup;
// Two-level cache blocking for the full-feature kernels: rows are walked
// in tiles small enough that their bin rows stay cache-resident while the
// feature loop re-visits them, and features in tiles that confine the
// histogram write window (16 features x 256 bins x 16 B = 64 KB worst
// case, L1/L2-resident). Per-slot accumulation order is still ascending
// row id — a slot belongs to exactly one feature — so tiling cannot
// change results, only locality.
constexpr uint32_t kRowTile = 2048;
constexpr uint32_t kFeatureTile = 16;
// Write-prefetching the histogram slots of the next row group measured as
// a clear net loss on the bench fixture (the feature-tiled write window is
// already cache-resident, so the extra 4 bin loads + 4 prefetches per
// feature only cost ports). The code path is kept compiled behind this
// switch for write windows that outgrow the cache.
constexpr bool kPrefetchHistSlots = false;

#if defined(__GNUC__) || defined(__clang__)
#define HARP_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 3)
#define HARP_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define HARP_PREFETCH_READ(addr) ((void)(addr))
#define HARP_PREFETCH_WRITE(addr) ((void)(addr))
#endif

#if defined(__SSE2__)
// One fused 16-byte load/add/store per slot update. addpd performs the
// same two IEEE-754 double additions as GHPair::Add, so results stay
// bit-identical to the scalar reference — only the instruction count per
// update drops (1 load + 1 add + 1 store instead of 2 of each).
struct GHVec {
  __m128d v;
  GHVec() = default;
  explicit GHVec(float gf, float hf)
      : v(_mm_set_pd(static_cast<double>(hf), static_cast<double>(gf))) {}
  inline void AddTo(GHPair* slot) const {
    _mm_storeu_pd(reinterpret_cast<double*>(slot),
                  _mm_add_pd(_mm_loadu_pd(reinterpret_cast<double*>(slot)),
                             v));
  }
};
#else
struct GHVec {
  double g, h;
  GHVec() = default;
  explicit GHVec(float gf, float hf)
      : g(static_cast<double>(gf)), h(static_cast<double>(hf)) {}
  inline void AddTo(GHPair* slot) const {
    slot->g += g;
    slot->h += h;
  }
};
#endif

template <bool kMemBuf>
inline uint32_t RowIdAt(const HistKernelMatrix& m, const HistRowSource& src,
                        uint32_t i) {
  (void)m;
  if constexpr (kMemBuf) {
    return src.entries[i].rid;
  } else {
    return src.row_ids[i];
  }
}

template <bool kMemBuf>
inline void LoadRow(const HistKernelMatrix& m, const HistRowSource& src,
                    uint32_t i, const uint8_t** row_bins, float* g, float* h) {
  if constexpr (kMemBuf) {
    const MemBufEntry& e = src.entries[i];
    *row_bins = m.bins + static_cast<size_t>(e.rid) * m.num_features;
    *g = e.g;
    *h = e.h;
  } else {
    const uint32_t rid = src.row_ids[i];
    *row_bins = m.bins + static_cast<size_t>(rid) * m.num_features;
    *g = m.gradients[rid].g;
    *h = m.gradients[rid].h;
  }
}

// One row, scalar — the ramp-down path for groups smaller than kRowGroup.
template <bool kFullBins>
inline void AccumulateOne(const uint8_t* row_bins, float g, float h,
                          const uint32_t* offsets, GHPair* hist,
                          uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                          uint32_t bin_hi) {
  for (uint32_t f = f_begin; f < f_end; ++f) {
    const uint8_t bin = row_bins[f];
    if constexpr (!kFullBins) {
      if (bin < bin_lo || bin >= bin_hi) continue;
    }
    hist[offsets[f] + bin].Add(g, h);
  }
}

// Feature sweep over one 4-row group. While the group is accumulated, the
// histogram slots the NEXT group will touch are prefetched (pf[0..3] are
// that group's bin rows); kPrefetchHist is compile-time so the common tail
// group pays no per-feature branch.
template <bool kFullBins, bool kPrefetchHist>
inline void AccumulateGroup(const uint8_t* const b[kRowGroup],
                            const float g[kRowGroup], const float h[kRowGroup],
                            const uint8_t* const pf[kRowGroup],
                            const uint32_t* offsets, GHPair* hist,
                            uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                            uint32_t bin_hi) {
  // float->double widening hoisted out of the feature sweep: once per
  // group instead of once per slot update. (Constant-bound u loops below
  // fully unroll at the kernel TU's -O3.)
  GHVec vs[kRowGroup];
  for (uint32_t u = 0; u < kRowGroup; ++u) vs[u] = GHVec(g[u], h[u]);
  for (uint32_t f = f_begin; f < f_end; ++f) {
    const uint32_t off = offsets[f];
    if constexpr (kPrefetchHist) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        HARP_PREFETCH_WRITE(hist + off + pf[u][f]);
      }
    }
    if constexpr (kFullBins) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        vs[u].AddTo(hist + off + b[u][f]);
      }
    } else {
      // Slot order within the group is still ascending row index, so the
      // filtered variant stays bit-identical to the scalar reference.
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        const uint8_t bin = b[u][f];
        if (bin >= bin_lo && bin < bin_hi) vs[u].AddTo(hist + off + bin);
      }
    }
  }
}

// The 4-row interleaved sweep over one (row range, feature range) tile.
template <bool kMemBuf, bool kFullBins>
void AccumulateTile(const HistKernelMatrix& m, const HistRowSource& src,
                    uint32_t begin, uint32_t end, GHPair* hist,
                    uint32_t f_begin, uint32_t f_end, uint32_t bin_lo,
                    uint32_t bin_hi) {
  const uint32_t* const offsets = m.bin_offsets;

  const uint8_t* b[kRowGroup];
  const uint8_t* pf[kRowGroup];
  float g[kRowGroup];
  float h[kRowGroup];

  uint32_t i = begin;
  for (; i + kRowGroup <= end; i += kRowGroup) {
    // Stream-ahead prefetch: bin bytes (and gathered gradients) of the
    // group after next, so they are resident by the time it is loaded.
    if (i + kRowPrefetchDist + kRowGroup <= end) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        const uint32_t rid = RowIdAt<kMemBuf>(m, src, i + kRowPrefetchDist + u);
        HARP_PREFETCH_READ(m.bins + static_cast<size_t>(rid) * m.num_features +
                           f_begin);
        if constexpr (!kMemBuf) HARP_PREFETCH_READ(m.gradients + rid);
      }
    }
    for (uint32_t u = 0; u < kRowGroup; ++u) {
      LoadRow<kMemBuf>(m, src, i + u, &b[u], &g[u], &h[u]);
    }
    if (kPrefetchHistSlots && i + 2 * kRowGroup <= end) {
      for (uint32_t u = 0; u < kRowGroup; ++u) {
        pf[u] = m.bins + static_cast<size_t>(RowIdAt<kMemBuf>(
                             m, src, i + kRowGroup + u)) *
                             m.num_features;
      }
      AccumulateGroup<kFullBins, true>(b, g, h, pf, offsets, hist, f_begin,
                                       f_end, bin_lo, bin_hi);
    } else {
      AccumulateGroup<kFullBins, false>(b, g, h, b, offsets, hist, f_begin,
                                        f_end, bin_lo, bin_hi);
    }
  }
  // Remainder rows (row lists are rarely multiples of four).
  for (; i < end; ++i) {
    const uint8_t* row_bins;
    float gr;
    float hr;
    LoadRow<kMemBuf>(m, src, i, &row_bins, &gr, &hr);
    AccumulateOne<kFullBins>(row_bins, gr, hr, offsets, hist, f_begin, f_end,
                             bin_lo, bin_hi);
  }
}

template <bool kMemBuf, bool kFullBins, bool kFullFeatures>
void AccumulateRange(const HistKernelMatrix& m, const HistRowSource& src,
                     uint32_t begin, uint32_t end, GHPair* hist, Range fb,
                     Range bins) {
  const uint32_t bin_lo = bins.first;
  const uint32_t bin_hi = bins.second;
  if constexpr (kFullFeatures) {
    // The kernel owns the whole feature space, so it is free to impose
    // the cache blocking itself: feature tiles keep the histogram write
    // window resident, row tiles keep the re-visited bin rows resident.
    const uint32_t nf = m.num_features;
    if (nf <= kFeatureTile) {
      AccumulateTile<kMemBuf, kFullBins>(m, src, begin, end, hist, 0u, nf,
                                         bin_lo, bin_hi);
      return;
    }
    for (uint32_t r = begin; r < end; r += kRowTile) {
      const uint32_t r_end = std::min(end, r + kRowTile);
      for (uint32_t f = 0; f < nf; f += kFeatureTile) {
        AccumulateTile<kMemBuf, kFullBins>(m, src, r, r_end, hist, f,
                                           std::min(nf, f + kFeatureTile),
                                           bin_lo, bin_hi);
      }
    }
  } else {
    // Caller-tiled feature block: accumulate it as one tile.
    AccumulateTile<kMemBuf, kFullBins>(m, src, begin, end, hist, fb.first,
                                       fb.second, bin_lo, bin_hi);
  }
}

}  // namespace

HistKernelFn SelectHistKernel(bool use_membuf, bool full_bin_range,
                              bool full_feature_block) {
  // [membuf][full bins][full features]
  static constexpr HistKernelFn kTable[2][2][2] = {
      {{&AccumulateRange<false, false, false>,
        &AccumulateRange<false, false, true>},
       {&AccumulateRange<false, true, false>,
        &AccumulateRange<false, true, true>}},
      {{&AccumulateRange<true, false, false>,
        &AccumulateRange<true, false, true>},
       {&AccumulateRange<true, true, false>,
        &AccumulateRange<true, true, true>}},
  };
  return kTable[use_membuf][full_bin_range][full_feature_block];
}

HistKernelMatrix MakeHistKernelMatrix(const BinnedMatrix& matrix,
                                      const RowPartitioner& partitioner) {
  HistKernelMatrix m;
  m.bins = matrix.BinData();
  m.bin_offsets = matrix.BinOffsetsData();
  m.num_features = matrix.num_features();
  m.gradients = partitioner.gradient_data();
  HARP_CHECK(partitioner.use_membuf() || m.gradients != nullptr)
      << "gather kernels need the gradient array (call Reset first)";
  return m;
}

HistRowSource MakeHistRowSource(const RowPartitioner& partitioner,
                                int node_id) {
  HistRowSource src;
  if (partitioner.use_membuf()) {
    src.entries = partitioner.NodeEntries(node_id).data();
  } else {
    src.row_ids = partitioner.NodeRowIds(node_id).data();
  }
  return src;
}

}  // namespace harp
