// The scalar (portable-flags) kernel TU plus the dispatch glue shared by
// both tables. The template bodies live in hist_kernels_impl.h, which
// hist_kernels_avx2.cpp compiles a second time under -mavx2 -mfma; this
// file must stay free of ISA-specific flags so every harp binary runs on
// any baseline machine.
#include "core/hist_kernels.h"

#define HARP_KERNEL_NS kernels_scalar
#include "core/hist_kernels_impl.h"
#undef HARP_KERNEL_NS

#include "common/logging.h"

namespace harp {

const HistKernelTables& ScalarKernelTables() {
  return kernels_scalar::Tables();
}

#if defined(HARP_HAVE_AVX2_TU)
namespace kernels_avx2 {
const HistKernelTables& Tables();
}  // namespace kernels_avx2

const HistKernelTables* Avx2KernelTables() { return &kernels_avx2::Tables(); }
#else
const HistKernelTables* Avx2KernelTables() { return nullptr; }
#endif

const HistKernelTables& KernelTables(SimdLevel level) {
  if (level == SimdLevel::kAVX2) {
    const HistKernelTables* t = Avx2KernelTables();
    HARP_CHECK(t != nullptr)
        << "avx2 kernel table requested but not compiled in "
           "(build with HARP_ENABLE_AVX2)";
    return *t;
  }
  return ScalarKernelTables();
}

HistKernelFn SelectHistKernel(bool use_membuf, bool full_bin_range,
                              bool full_feature_block, SimdLevel level) {
  return KernelTables(level).f64[use_membuf][full_bin_range]
                                [full_feature_block];
}

QuantKernelFn SelectQuantHistKernel(bool use_membuf, bool full_bin_range,
                                    bool full_feature_block, SimdLevel level) {
  return KernelTables(level).quant[use_membuf][full_bin_range]
                                  [full_feature_block];
}

HistKernelMatrix MakeHistKernelMatrix(const BinnedMatrix& matrix,
                                      const RowPartitioner& partitioner,
                                      const int32_t* qgradients) {
  HistKernelMatrix m;
  m.bins = matrix.BinData();
  m.bin_offsets = matrix.BinOffsetsData();
  m.num_features = matrix.num_features();
  m.gradients = partitioner.gradient_data();
  m.qgradients = qgradients;
  HARP_CHECK(partitioner.use_membuf() || m.gradients != nullptr)
      << "gather kernels need the gradient array (call Reset first)";
  return m;
}

HistRowSource MakeHistRowSource(const RowPartitioner& partitioner,
                                int node_id) {
  HistRowSource src;
  if (partitioner.use_membuf()) {
    src.entries = partitioner.NodeEntries(node_id).data();
  } else {
    src.row_ids = partitioner.NodeRowIds(node_id).data();
  }
  return src;
}

}  // namespace harp
