#include "core/objective.h"

#include <cmath>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Binary logistic regression ("logistic regression loss for all the binary
// classification tasks", Section V-A4). g = p - y, h = p (1 - p).
class LogisticObjective final : public Objective {
 public:
  GradientPair RowGradient(float label, double margin) const override {
    const double p = Sigmoid(margin);
    return GradientPair{static_cast<float>(p - label),
                        static_cast<float>(std::max(p * (1.0 - p), 1e-16))};
  }

  double Transform(double margin) const override { return Sigmoid(margin); }

  double InitialMargin(double base_score) const override {
    return std::log(base_score / (1.0 - base_score));
  }

  ObjectiveKind kind() const override { return ObjectiveKind::kLogistic; }
};

// Squared error: g = margin - y, h = 1.
class SquaredErrorObjective final : public Objective {
 public:
  GradientPair RowGradient(float label, double margin) const override {
    return GradientPair{static_cast<float>(margin - label), 1.0f};
  }

  double Transform(double margin) const override { return margin; }

  double InitialMargin(double base_score) const override {
    return base_score;
  }

  ObjectiveKind kind() const override { return ObjectiveKind::kSquaredError; }
};

}  // namespace

void Objective::ComputeGradients(const std::vector<float>& labels,
                                 const std::vector<double>& margins,
                                 std::vector<GradientPair>* out,
                                 ThreadPool* pool) const {
  HARP_CHECK_EQ(labels.size(), margins.size());
  out->resize(labels.size());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) {
      (*out)[static_cast<size_t>(i)] = RowGradient(
          labels[static_cast<size_t>(i)], margins[static_cast<size_t>(i)]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(labels.size()), kernel);
  } else {
    kernel(0, static_cast<int64_t>(labels.size()), 0);
  }
}

std::unique_ptr<Objective> Objective::Create(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kLogistic:
      return std::make_unique<LogisticObjective>();
    case ObjectiveKind::kSquaredError:
      return std::make_unique<SquaredErrorObjective>();
  }
  HARP_CHECK(false) << "unknown objective";
  return nullptr;
}

}  // namespace harp
