#include "core/objective.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Binary logistic regression ("logistic regression loss for all the binary
// classification tasks", Section V-A4). g = p - y, h = p (1 - p).
class LogisticObjective final : public Objective {
 public:
  GradientPair RowGradient(float label, double margin) const override {
    const double p = Sigmoid(margin);
    return GradientPair{static_cast<float>(p - label),
                        static_cast<float>(std::max(p * (1.0 - p), 1e-16))};
  }

  double Transform(double margin) const override { return Sigmoid(margin); }

  double InitialMargin(double base_score) const override {
    return std::log(base_score / (1.0 - base_score));
  }

  ObjectiveKind kind() const override { return ObjectiveKind::kLogistic; }
};

// Squared error: g = margin - y, h = 1.
class SquaredErrorObjective final : public Objective {
 public:
  GradientPair RowGradient(float label, double margin) const override {
    return GradientPair{static_cast<float>(margin - label), 1.0f};
  }

  double Transform(double margin) const override { return margin; }

  double InitialMargin(double base_score) const override {
    return base_score;
  }

  ObjectiveKind kind() const override { return ObjectiveKind::kSquaredError; }
};

// Quantile (pinball) regression: L = (y - m)(alpha - 1[y < m]). The loss
// is piecewise linear, so the gradient is the constant subgradient of the
// active branch (ties take the upper branch) and the hessian is taken as 1
// — the leaf value then moves each leaf toward the alpha-quantile of its
// residuals at learning-rate speed.
class QuantileObjective final : public Objective {
 public:
  explicit QuantileObjective(double alpha) : alpha_(alpha) {}

  GradientPair RowGradient(float label, double margin) const override {
    return margin >= label
               ? GradientPair{static_cast<float>(1.0 - alpha_), 1.0f}
               : GradientPair{static_cast<float>(-alpha_), 1.0f};
  }

  double Transform(double margin) const override { return margin; }

  double InitialMargin(double base_score) const override {
    return base_score;
  }

  ObjectiveKind kind() const override { return ObjectiveKind::kQuantile; }

 private:
  double alpha_;
};

// Poisson regression with log link: l = exp(m) - y m (negative
// log-likelihood up to the constant log y!). g = exp(m) - y; the hessian
// exp(m) is inflated to exp(m + max_delta_step), which caps the newton
// step g/h at ~max_delta_step in log space for near-empty leaves (the
// standard XGBoost stabilization).
class PoissonObjective final : public Objective {
 public:
  explicit PoissonObjective(double max_delta_step)
      : max_delta_step_(max_delta_step) {}

  // Labels must be non-negative counts/rates (enforced once by the
  // deviance metric and the CLI, not per row in this hot kernel).
  GradientPair RowGradient(float label, double margin) const override {
    const double mu = std::exp(margin);
    return GradientPair{
        static_cast<float>(mu - label),
        static_cast<float>(
            std::max(std::exp(margin + max_delta_step_), 1e-16))};
  }

  double Transform(double margin) const override { return std::exp(margin); }

  double InitialMargin(double base_score) const override {
    return std::log(base_score);
  }

  ObjectiveKind kind() const override { return ObjectiveKind::kPoisson; }

 private:
  double max_delta_step_;
};

// LambdaRank with |delta NDCG@k| pair weights (Burges' lambda gradients).
// For every in-query pair with unequal relevance, the higher-relevance doc
// is pushed up and the lower pushed down by
//   lambda = |dNDCG@k of swapping the pair| * sigmoid(-(s_hi - s_lo)),
// with hessian lambda' = |dNDCG| * rho (1 - rho). Gradients of different
// queries are independent, so the batch pass parallelizes over query
// groups (dynamic schedule — per-query cost is O(docs^2)) and stays
// bit-identical for any thread count: each query is computed serially and
// written to its own disjoint row range.
class LambdaRankObjective final : public Objective {
 public:
  explicit LambdaRankObjective(int ndcg_k) : ndcg_k_(ndcg_k) {}

  void ComputeGradients(const GradientContext& ctx,
                        std::vector<GradientPair>* out,
                        ThreadPool* pool = nullptr) const override {
    HARP_CHECK(ctx.labels != nullptr && ctx.margins != nullptr);
    HARP_CHECK_EQ(ctx.labels->size(), ctx.margins->size());
    HARP_CHECK(ctx.group_ptr != nullptr && ctx.group_ptr->size() >= 2)
        << "lambdarank requires query groups (qid: columns)";
    const std::vector<uint32_t>& groups = *ctx.group_ptr;
    HARP_CHECK_EQ(static_cast<size_t>(groups.back()), ctx.labels->size());
    out->assign(ctx.labels->size(), GradientPair{});

    const int64_t num_groups = static_cast<int64_t>(groups.size()) - 1;
    const int num_threads = pool != nullptr ? pool->num_threads() : 1;
    std::vector<QueryScratch> scratch(static_cast<size_t>(num_threads));
    auto kernel = [&](int64_t begin, int64_t end, int thread_id) {
      QueryScratch& s = scratch[static_cast<size_t>(thread_id)];
      for (int64_t q = begin; q < end; ++q) {
        const size_t k = static_cast<size_t>(q);
        QueryLambdas(*ctx.labels, *ctx.margins, groups[k], groups[k + 1],
                     out->data(), &s);
      }
    };
    if (pool != nullptr) {
      pool->ParallelForDynamic(num_groups, 1, kernel);
    } else {
      kernel(0, num_groups, 0);
    }
  }

  double Transform(double margin) const override { return margin; }

  // Ranking scores are relative; the base score is irrelevant and the
  // ensemble starts from 0.
  double InitialMargin(double /*base_score*/) const override { return 0.0; }

  bool NeedsGroups() const override { return true; }

  ObjectiveKind kind() const override { return ObjectiveKind::kLambdaRank; }

 private:
  struct QueryScratch {
    std::vector<uint32_t> order;   // docs sorted by score desc
    std::vector<uint32_t> rank;    // 1-based rank of each doc
    std::vector<float> sorted_rel; // relevances sorted desc (ideal list)
    std::vector<double> g;         // double accumulators per doc
    std::vector<double> h;
  };

  static double Gain(float rel) { return std::pow(2.0, rel) - 1.0; }

  double Discount(uint32_t rank_1based) const {
    if (static_cast<int>(rank_1based) > ndcg_k_) return 0.0;
    return 1.0 / std::log2(static_cast<double>(rank_1based) + 1.0);
  }

  void QueryLambdas(const std::vector<float>& labels,
                    const std::vector<double>& margins, uint32_t begin,
                    uint32_t end, GradientPair* out,
                    QueryScratch* s) const {
    const uint32_t n = end - begin;
    if (n < 2) return;
    s->order.resize(n);
    std::iota(s->order.begin(), s->order.end(), 0u);
    // Deterministic order: score desc, ties broken by row index asc.
    std::sort(s->order.begin(), s->order.end(),
              [&](uint32_t a, uint32_t b) {
                const double sa = margins[begin + a];
                const double sb = margins[begin + b];
                if (sa != sb) return sa > sb;
                return a < b;
              });
    s->rank.resize(n);
    for (uint32_t pos = 0; pos < n; ++pos) {
      s->rank[s->order[pos]] = pos + 1;
    }
    s->sorted_rel.assign(labels.begin() + begin, labels.begin() + end);
    std::sort(s->sorted_rel.begin(), s->sorted_rel.end(),
              std::greater<float>());
    double max_dcg = 0.0;
    const uint32_t top = std::min(n, static_cast<uint32_t>(ndcg_k_));
    for (uint32_t p = 0; p < top; ++p) {
      max_dcg += Gain(s->sorted_rel[p]) * Discount(p + 1);
    }
    if (max_dcg <= 0.0) return;  // no relevant docs: every order is ideal
    const double inv_max_dcg = 1.0 / max_dcg;

    s->g.assign(n, 0.0);
    s->h.assign(n, 0.0);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        const float rel_i = labels[begin + i];
        const float rel_j = labels[begin + j];
        if (rel_i == rel_j) continue;
        const uint32_t hi = rel_i > rel_j ? i : j;
        const uint32_t lo = rel_i > rel_j ? j : i;
        const double delta_ndcg =
            (Gain(labels[begin + hi]) - Gain(labels[begin + lo])) *
            std::abs(Discount(s->rank[hi]) - Discount(s->rank[lo])) *
            inv_max_dcg;
        if (delta_ndcg <= 0.0) continue;  // both outside the top-k cutoff
        const double rho =
            Sigmoid(-(margins[begin + hi] - margins[begin + lo]));
        const double lambda = delta_ndcg * rho;
        const double hess = delta_ndcg * rho * (1.0 - rho);
        s->g[hi] -= lambda;
        s->g[lo] += lambda;
        s->h[hi] += hess;
        s->h[lo] += hess;
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      out[begin + i] =
          GradientPair{static_cast<float>(s->g[i]),
                       static_cast<float>(std::max(s->h[i], 1e-16))};
    }
  }

  int ndcg_k_;
};

}  // namespace

void Objective::ComputeGradients(const GradientContext& ctx,
                                 std::vector<GradientPair>* out,
                                 ThreadPool* pool) const {
  HARP_CHECK(ctx.labels != nullptr && ctx.margins != nullptr);
  HARP_CHECK_EQ(ctx.labels->size(), ctx.margins->size());
  const std::vector<float>& labels = *ctx.labels;
  const std::vector<double>& margins = *ctx.margins;
  out->resize(labels.size());
  auto kernel = [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) {
      (*out)[static_cast<size_t>(i)] = RowGradient(
          labels[static_cast<size_t>(i)], margins[static_cast<size_t>(i)]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(labels.size()), kernel);
  } else {
    kernel(0, static_cast<int64_t>(labels.size()), 0);
  }
}

GradientPair Objective::RowGradient(float /*label*/,
                                    double /*margin*/) const {
  HARP_CHECK(false) << "objective '" << ToString(kind())
                    << "' is list-wise and has no per-row gradient";
  return GradientPair{};
}

std::unique_ptr<Objective> Objective::Create(const ObjectiveConfig& config) {
  switch (config.kind) {
    case ObjectiveKind::kLogistic:
      return std::make_unique<LogisticObjective>();
    case ObjectiveKind::kSquaredError:
      return std::make_unique<SquaredErrorObjective>();
    case ObjectiveKind::kQuantile:
      HARP_CHECK_GT(config.quantile_alpha, 0.0);
      HARP_CHECK_LT(config.quantile_alpha, 1.0);
      return std::make_unique<QuantileObjective>(config.quantile_alpha);
    case ObjectiveKind::kPoisson:
      HARP_CHECK_GE(config.max_delta_step, 0.0);
      return std::make_unique<PoissonObjective>(config.max_delta_step);
    case ObjectiveKind::kLambdaRank:
      HARP_CHECK_GE(config.ndcg_k, 1);
      return std::make_unique<LambdaRankObjective>(config.ndcg_k);
  }
  HARP_CHECK(false) << "unknown objective";
  return nullptr;
}

std::unique_ptr<Objective> Objective::Create(ObjectiveKind kind) {
  ObjectiveConfig config;
  config.kind = kind;
  return Create(config);
}

ObjectiveConfig Objective::ConfigFromParams(const TrainParams& params) {
  ObjectiveConfig config;
  config.kind = params.objective;
  config.quantile_alpha = params.quantile_alpha;
  config.max_delta_step = params.max_delta_step;
  config.ndcg_k = params.ndcg_k;
  return config;
}

}  // namespace harp
