// Row-to-node membership (the NodeMap of Fig. 5) with the MemBuf
// optimization of Fig. 7.
//
// Each tree node owns the list of training rows it contains. With MemBuf
// enabled (Section IV-E) the list stores (rowid, g, h) triples, so
// BuildHist streams gradients sequentially instead of gathering them from
// the global gradient array through non-contiguous row ids; with MemBuf
// disabled it stores row ids only, reproducing the random-gather behaviour
// (the Table V "+MemBuf" ablation toggles exactly this).
//
// ApplySplit partitions a node's list into its two children. The partition
// is *stable* (row order preserved) and deterministic regardless of thread
// count, which is what makes DP/MP/SYNC builds reproduce identical trees.
//
// Concurrency contract: Reset() preallocates per-node slots for every node
// id below its max_nodes bound, so ASYNC workers may call ApplySplit /
// ForEachRow on *disjoint* nodes concurrently without any reallocation of
// shared state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/gh.h"
#include "data/binned_matrix.h"

namespace harp {

class ThreadPool;

// One MemBuf element: 12 bytes.
struct MemBufEntry {
  uint32_t rid = 0;
  float g = 0.0f;
  float h = 0.0f;
};

class RowPartitioner {
 public:
  // use_membuf selects the (rowid, g, h) layout; otherwise gradients are
  // fetched from the `gradients` array passed to Reset.
  RowPartitioner(uint32_t num_rows, bool use_membuf)
      : num_rows_(num_rows), use_membuf_(use_membuf) {}

  // Starts a new tree: node 0 (the root) owns every row, and storage slots
  // exist for node ids < max_nodes (a tree with L leaves has 2L-1 nodes).
  // The gradients vector must stay valid until the next Reset.
  void Reset(const std::vector<GradientPair>& gradients, int max_nodes,
             ThreadPool* pool = nullptr);

  bool use_membuf() const { return use_membuf_; }
  uint32_t num_rows() const { return num_rows_; }
  int max_nodes() const { return max_nodes_; }

  uint32_t NodeSize(int node_id) const;

  // Row ids of a node (only valid when MemBuf is off).
  std::span<const uint32_t> NodeRowIds(int node_id) const;
  // MemBuf entries of a node (only valid when MemBuf is on).
  std::span<const MemBufEntry> NodeEntries(int node_id) const;
  // Global gradient array passed to Reset (gather-mode kernels index it by
  // row id); null before the first Reset.
  const GradientPair* gradient_data() const {
    return gradients_ != nullptr ? gradients_->data() : nullptr;
  }

  // Invokes fn(rid, g, h) for every row of the node, in stored order.
  template <typename Fn>
  void ForEachRow(int node_id, Fn&& fn) const {
    ForEachRowRange(node_id, 0, NodeSize(node_id), fn);
  }

  // Like ForEachRow but over the subrange [begin, end) of the node's list
  // (row-block tasks in the DP builder).
  template <typename Fn>
  void ForEachRowRange(int node_id, uint32_t begin, uint32_t end,
                       Fn&& fn) const {
    const size_t idx = static_cast<size_t>(node_id);
    if (use_membuf_) {
      const MemBufEntry* entries = entries_[idx].data();
      for (uint32_t i = begin; i < end; ++i) {
        const MemBufEntry& e = entries[i];
        fn(e.rid, e.g, e.h);
      }
    } else {
      const uint32_t* ids = row_ids_[idx].data();
      const GradientPair* grads = gradients_->data();
      for (uint32_t i = begin; i < end; ++i) {
        const uint32_t rid = ids[i];
        fn(rid, grads[rid].g, grads[rid].h);
      }
    }
  }

  // Gradient sum of a node's rows. Parallel when a pool is given.
  GHPair NodeSum(int node_id, ThreadPool* pool = nullptr) const;

  // Splits `node_id`'s rows between `left_id` and `right_id` using the
  // split predicate (bin 0 -> default side; else bin <= split_bin left).
  // The parent's storage is freed. Parallel (stable) when a pool is given;
  // serial otherwise. Distinct nodes may be split concurrently (serial
  // variant only).
  void ApplySplit(int node_id, int left_id, int right_id,
                  const BinnedMatrix& matrix, uint32_t feature,
                  uint32_t split_bin, bool default_left,
                  ThreadPool* pool = nullptr);

  // margins[rid] += value for every row of the node (leaf-value scatter at
  // the end of a tree). Distinct nodes may run concurrently.
  void AddToMargins(int node_id, double value,
                    std::vector<double>* margins) const;

 private:
  void CheckNode(int node_id) const;

  uint32_t num_rows_;
  bool use_membuf_;
  int max_nodes_ = 0;
  const std::vector<GradientPair>* gradients_ = nullptr;

  // Indexed by node id; sized to max_nodes_ at Reset (never reallocated
  // while a tree is being built). Exactly one is populated per layout.
  std::vector<std::vector<MemBufEntry>> entries_;
  std::vector<std::vector<uint32_t>> row_ids_;
};

}  // namespace harp
