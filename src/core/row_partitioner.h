// Row-to-node membership (the NodeMap of Fig. 5) with the MemBuf
// optimization of Fig. 7, stored in a flat double-buffered arena.
//
// Each tree node owns a contiguous [begin, end) window of one of two
// persistent num_rows-sized buffers. With MemBuf enabled (Section IV-E) the
// buffers store (rowid, g, h) triples, so BuildHist streams gradients
// sequentially instead of gathering them from the global gradient array
// through non-contiguous row ids; with MemBuf disabled they store row ids
// only, reproducing the random-gather behaviour (the Table V "+MemBuf"
// ablation toggles exactly this).
//
// ApplySplit partitions a node's window into its two children with a
// three-phase count / exclusive-scan / scatter over a fixed 4096-row chunk
// grid: one read pass to count, one write pass that moves each element
// exactly once into the opposite buffer (children reuse the parent's
// window: left at [begin, begin+n_left), right at [begin+n_left, end)).
// The chunk grid depends only on the node size, never on the thread count,
// so the partition is *stable* (row order preserved) and bit-deterministic
// regardless of how chunks are scheduled — which is what makes DP/MP/SYNC
// builds reproduce identical trees. The count pass additionally fuses the
// children's gradient-pair sums (per-chunk partials over the parent's
// chunk grid, reduced in ascending chunk order), so NodeSum on a freshly
// split child is O(1). Fused sums are the node's canonical sum: a
// function of the tree path only, bit-identical across apply paths and
// thread counts (they associate adds by the parent grid, so they agree
// with a fresh scan of the child to ~1 ulp, not bitwise).
//
// ApplySplitBatch partitions all K nodes of a TopK batch under a single
// pair of parallel regions (count pass + scatter pass over the union of
// all chunk tasks) instead of K separate partitions — the ApplySplit-phase
// extension of the paper's barriers ∝ 2^D/K argument.
//
// Steady state allocates nothing: the arena buffers, per-node windows, and
// all partition scratch persist across trees and only ever grow (tracked
// by the grow_events counter in PartitionStats).
//
// Concurrency contract: Reset() sizes the per-node window table for every
// node id below max_nodes, and disjoint nodes occupy disjoint row windows
// in BOTH buffers, so ASYNC workers may call the serial ApplySplit /
// ForEachRow on *disjoint* nodes concurrently without touching shared
// state (the serial path keeps its scratch thread-local; counters are
// relaxed atomics). The batched/pooled paths and NodeSum(pool) use member
// scratch and must only be called from the orchestration thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include <functional>

#include "common/aligned.h"
#include "core/gh.h"
#include "data/binned_matrix.h"
#include "parallel/thread_pool.h"

namespace harp {

// One MemBuf element: 12 bytes.
struct MemBufEntry {
  uint32_t rid = 0;
  float g = 0.0f;
  float h = 0.0f;
};

// A GHPair padded to a full cache line. Used for every per-chunk /
// per-thread partial-sum buffer (NodeSum partials, the fused child sums of
// the scatter pass) so concurrent writers never share a line regardless of
// the GHPair layout.
struct alignas(kHistAlignBytes) PaddedGHPair {
  GHPair value;
};
static_assert(sizeof(PaddedGHPair) == kHistAlignBytes);

// One split to apply: partition `node_id`'s rows between `left_id` and
// `right_id` (bin 0 -> default side; else bin <= split_bin goes left).
struct SplitTask {
  int node_id = -1;
  int left_id = -1;
  int right_id = -1;
  uint32_t feature = 0;
  uint32_t split_bin = 0;
  bool default_left = false;
};

// Monotonic partition-phase counters (snapshot; builders report deltas via
// TrainStats).
struct PartitionStats {
  int64_t grow_events = 0;  // arena / window-table / scratch (re)allocations
  int64_t splits = 0;       // nodes partitioned
  int64_t batches = 0;      // batched (single-pass-pair) applications
  int64_t barriers = 0;     // count/scatter partition passes (2 per batch;
                            // region launches OR in-region phases,
                            // depending on the scheduler driving them)
  int64_t bytes_moved = 0;  // payload bytes written by scatter passes
};

class RowPartitioner {
 public:
  // use_membuf selects the (rowid, g, h) layout; otherwise gradients are
  // fetched from the `gradients` array passed to Reset.
  RowPartitioner(uint32_t num_rows, bool use_membuf)
      : num_rows_(num_rows), use_membuf_(use_membuf) {}

  // Starts a new tree: node 0 (the root) owns every row, and window slots
  // exist for node ids < max_nodes (a tree with L leaves has 2L-1 nodes).
  // The gradients vector must stay valid until the next Reset. Allocates
  // only when num_rows/max_nodes outgrow what previous trees used.
  void Reset(const std::vector<GradientPair>& gradients, int max_nodes,
             ThreadPool* pool = nullptr);

  bool use_membuf() const { return use_membuf_; }
  uint32_t num_rows() const { return num_rows_; }
  int max_nodes() const { return max_nodes_; }

  uint32_t NodeSize(int node_id) const;

  // Row ids of a node (only valid when MemBuf is off). A view into the
  // node's arena window — invalidated by the split of this node.
  std::span<const uint32_t> NodeRowIds(int node_id) const;
  // MemBuf entries of a node (only valid when MemBuf is on).
  std::span<const MemBufEntry> NodeEntries(int node_id) const;
  // Global gradient array passed to Reset (gather-mode kernels index it by
  // row id); null before the first Reset.
  const GradientPair* gradient_data() const {
    return gradients_ != nullptr ? gradients_->data() : nullptr;
  }

  // Invokes fn(rid, g, h) for every row of the node, in stored order.
  template <typename Fn>
  void ForEachRow(int node_id, Fn&& fn) const {
    ForEachRowRange(node_id, 0, NodeSize(node_id), fn);
  }

  // Like ForEachRow but over the subrange [begin, end) of the node's
  // window (row-block tasks in the DP builder).
  template <typename Fn>
  void ForEachRowRange(int node_id, uint32_t begin, uint32_t end,
                       Fn&& fn) const {
    const NodeSpan& s = spans_[static_cast<size_t>(node_id)];
    if (use_membuf_) {
      const MemBufEntry* entries = entry_arena_[s.buf].data() + s.begin;
      for (uint32_t i = begin; i < end; ++i) {
        const MemBufEntry& e = entries[i];
        fn(e.rid, e.g, e.h);
      }
    } else {
      const uint32_t* ids = rid_arena_[s.buf].data() + s.begin;
      const GradientPair* grads = gradients_->data();
      for (uint32_t i = begin; i < end; ++i) {
        const uint32_t rid = ids[i];
        fn(rid, grads[rid].g, grads[rid].h);
      }
    }
  }

  // Gradient sum of a node's rows. O(1) for nodes produced by a split (the
  // scatter pass fused their sums); otherwise a chunk-grid scan whose
  // result is bit-identical for any thread count, serial included.
  // Parallel (pool non-null) only from the orchestration thread.
  GHPair NodeSum(int node_id, ThreadPool* pool = nullptr) const;

  // Whether NodeSum(node_id) is a cached fused sum (tests, diagnostics).
  bool HasFusedSum(int node_id) const;

  // Splits `node_id`'s rows between `left_id` and `right_id`. The parent's
  // window becomes empty. Internally parallel (two regions: count +
  // scatter) for large nodes when a pool is given; serial otherwise.
  // Distinct nodes may be split concurrently (serial variant only).
  void ApplySplit(int node_id, int left_id, int right_id,
                  const BinnedMatrix& matrix, uint32_t feature,
                  uint32_t split_bin, bool default_left,
                  ThreadPool* pool = nullptr);

  // Applies all of a batch's splits under one count region + one scatter
  // region spanning every task's chunks (instead of per-node regions).
  // Tasks must name disjoint live nodes. Serial fallback when pool is null
  // or the total row count is small. Orchestration thread only.
  void ApplySplitBatch(std::span<const SplitTask> tasks,
                       const BinnedMatrix& matrix, ThreadPool* pool);

  // ---- Fused-step protocol (ThreadPool::FusedRegion) ----
  // Serial staging called BEFORE the region: validates the batch, decides
  // chunk-grid vs per-task-serial execution (the same kParallelRows rule
  // as ApplySplitBatch, so both schedulers take identical code paths) and
  // builds the chunk task list. Returns false for an empty batch.
  // Orchestration thread only.
  bool PrepareSplitBatch(std::span<const SplitTask> tasks);

  // Collective: every region thread calls this with its thread id and the
  // SAME tasks span given to PrepareSplitBatch. Runs the count pass
  // (dynamic chunks), the serial exclusive scan (barrier epilogue), the
  // scatter pass, and the child-window/fused-sum publication; then
  // `after_finish` runs inside the final barrier's epilogue, after the
  // children are live (builder glue: child row counts, histogram
  // acquisition, next-phase task staging). Small batches run serially on
  // thread 0 instead (the serial path's thread_local scratch stays on the
  // orchestration thread, keeping grow_events deterministic). Results are
  // bit-identical to ApplySplitBatch.
  void ApplySplitBatchInRegion(std::span<const SplitTask> tasks,
                               const BinnedMatrix& matrix,
                               ThreadPool::FusedRegion& region, int thread_id,
                               const std::function<void()>& after_finish);

  // margins[rid] += value for every row of the node (leaf-value scatter at
  // the end of a tree). Distinct nodes may run concurrently.
  void AddToMargins(int node_id, double value,
                    std::vector<double>* margins) const;

  // Snapshot of the monotonic partition counters.
  PartitionStats stats() const;

 private:
  // Rows per partition chunk: the unit of the count/scan/scatter grid and
  // of every deterministic partial-sum reduction. Fixed (never derived
  // from the thread count) so results are schedule-independent.
  static constexpr uint32_t kChunkRows = 4096;
  // Below this many total rows a parallel region costs more than it saves.
  static constexpr uint32_t kParallelRows = 8192;

  // A node's arena window: [begin, end) of buffer `buf`.
  struct NodeSpan {
    uint32_t begin = 0;
    uint32_t end = 0;
    uint8_t buf = 0;
  };

  // One chunk of one task's parent window (absolute arena offsets).
  struct ChunkRef {
    uint32_t task = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  void CheckNode(int node_id) const;
  void CheckTask(const SplitTask& t) const;

  template <typename Layout>
  void PartitionSerial(const SplitTask& t, const BinnedMatrix& matrix);
  template <typename Layout>
  GHPair NodeSumScan(int node_id, ThreadPool* pool) const;

  // Batched-apply pieces shared by the region-per-phase path
  // (ApplySplitBatch) and the fused path (ApplySplitBatchInRegion); all
  // operate on the chunk grid staged by PrepareSplitBatch.
  void BuildChunkGrid(std::span<const SplitTask> tasks);
  void CountChunkRange(std::span<const SplitTask> tasks,
                       const BinnedMatrix& matrix, int64_t begin, int64_t end);
  void ScanTasksSerial(std::span<const SplitTask> tasks);
  void ScatterChunkRange(std::span<const SplitTask> tasks,
                         const BinnedMatrix& matrix, int64_t begin,
                         int64_t end);
  void FinishBatchSerial(std::span<const SplitTask> tasks);
  void PartitionBatchSerial(std::span<const SplitTask> tasks,
                            const BinnedMatrix& matrix);
  template <typename Layout>
  void CountChunkRangeT(std::span<const SplitTask> tasks,
                        const BinnedMatrix& matrix, int64_t begin,
                        int64_t end);
  template <typename Layout>
  void ScatterChunkRangeT(std::span<const SplitTask> tasks,
                          const BinnedMatrix& matrix, int64_t begin,
                          int64_t end);

  // Records the split's outcome: child/parent windows, fused sums, bytes.
  void FinishSplit(const SplitTask& t, uint32_t left_count,
                   const GHPair& left_sum, const GHPair& right_sum);

  uint32_t num_rows_;
  bool use_membuf_;
  int max_nodes_ = 0;
  const std::vector<GradientPair>* gradients_ = nullptr;

  // Double-buffered arena; exactly one pair is populated per layout. A
  // split reads the parent's window from one buffer and writes both
  // children into the same window of the other, so concurrent splits of
  // disjoint nodes touch disjoint memory.
  AlignedVector<MemBufEntry> entry_arena_[2];
  AlignedVector<uint32_t> rid_arena_[2];
  // Per-row go-left predicate cache, indexed by source arena offset: the
  // count pass evaluates the predicate (one bin-matrix read per row) and
  // stores it here; the scatter pass reads the byte instead of re-reading
  // the bin matrix. Disjoint node windows use disjoint ranges, so the
  // concurrent-serial-splits contract holds.
  AlignedVector<uint8_t> left_flags_;

  // Indexed by node id; sized to max_nodes_ at Reset (grow-only).
  std::vector<NodeSpan> spans_;
  // Fused per-node gradient sums filled by the scatter pass.
  std::vector<GHPair> fused_sums_;
  std::vector<uint8_t> fused_valid_;

  // Batched-path staging (set by PrepareSplitBatch).
  bool prepared_parallel_ = false;
  size_t prepared_chunks_ = 0;

  // Batched-path scratch (orchestration thread only; grow-only).
  std::vector<ChunkRef> chunk_refs_;
  std::vector<uint32_t> chunk_left_;        // counts, then in-task offsets
  std::vector<uint32_t> task_left_total_;   // per task
  std::vector<PaddedGHPair> chunk_left_sum_;
  std::vector<PaddedGHPair> chunk_right_sum_;
  // NodeSum(pool) per-chunk partials (orchestration thread only).
  mutable std::vector<PaddedGHPair> sum_scratch_;

  // Relaxed atomics: the ASYNC serial path updates them concurrently.
  // Mutable because const NodeSum may grow its scratch (a grow event).
  mutable std::atomic<int64_t> grow_events_{0};
  std::atomic<int64_t> splits_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> barriers_{0};
  std::atomic<int64_t> bytes_moved_{0};
};

}  // namespace harp
