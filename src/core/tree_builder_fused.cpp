// Fused-step grow scheduler: one TopK batch = ONE persistent parallel
// region. The step's phases (apply count/scatter, histogram build, DP
// reduce, subtraction, find) are sequenced through in-region PhaseBarriers
// instead of one RunOnAllThreads launch per phase, turning the per-step
// synchronization cost from region launches (cond-var epoch handoff) into
// sense-reversing barrier rendezvous.
//
// Two build schedules run inside the region:
//
//   DP: barriered phases, mirroring the region-per-phase path one barrier
//   per former region (HistBuilderDP::BuildInRegion), then subtract, then
//   the find grid. Replica reduction makes cross-phase overlap pointless
//   here: no child histogram is final before the reduce barrier anyway.
//
//   MP: an overlap work-graph. Cube tasks write disjoint regions of the
//   shared child histograms, so a node's histogram is final the moment the
//   last cube of its node block drains — long before other nodes finish.
//   A per-block drain counter detects that moment and pushes the node's
//   subtract job (if it is the built sibling) and find-grid cells into a
//   single-pass slot ring that every thread pops; subtract completion
//   pushes the large child's find cells. A node's subtract + find overlap
//   other nodes' builds, with no barrier between the phases at all.
//
// Bit-identity with the region-per-phase path holds because nothing
// schedule-dependent touches the numbers: cubes write disjoint slots in
// sequential row order, the partition chunk grid is fixed, the DP reduce
// keeps ascending thread order, and find partials merge serially in fixed
// feature-block order (tests/test_fused_step.cpp sweeps the matrix).
#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "core/tree_builder.h"

namespace harp {

void HarpTreeBuilder::PlanAfterPartition(RegTree& tree) {
  for (int child : children_) {
    tree.mutable_node(child).num_rows = partitioner_.NodeSize(child);
  }
  PlanBuild(tree);
  if (plan_mode_ == ParallelMode::kMP) StageOverlap(tree);
}

void HarpTreeBuilder::StageOverlap(const RegTree& tree) {
  const BuildContext ctx = Context();
  const size_t num_builds = mp_.StageTasks(ctx, build_list_);
  const size_t num_subs = subtract_list_.size();
  const size_t num_finds = children_.size() * fblocks_.size();
  HARP_CHECK(num_builds > 0);
  PrepareFind(tree, children_);

  // node id -> build_list_ index, for drain-counter lookups from cubes.
  size_t max_node = 0;
  for (int node : build_list_) {
    max_node = std::max(max_node, static_cast<size_t>(node));
  }
  if (build_pos_.size() <= max_node) build_pos_.resize(max_node + 1);
  for (size_t j = 0; j < build_list_.size(); ++j) {
    build_pos_[static_cast<size_t>(build_list_[j])] =
        static_cast<int32_t>(j);
  }

  // Drain counters: node j is complete when every cube of its node block
  // has run; each cube decrements every node of its block once.
  if (node_remaining_cap_ < build_list_.size()) {
    node_remaining_ = std::make_unique<std::atomic<int32_t>[]>(
        build_list_.size());
    node_remaining_cap_ = build_list_.size();
  }
  for (size_t j = 0; j < build_list_.size(); ++j) {
    node_remaining_[j].store(0, std::memory_order_relaxed);
  }
  for (size_t t = 0; t < num_builds; ++t) {
    for (int node : mp_.TaskNodes(t)) {
      node_remaining_[static_cast<size_t>(
                          build_pos_[static_cast<size_t>(node)])]
          .fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Slot ring seeded with the build tasks; subtract/find slots start
  // empty and are published by the event that makes them runnable.
  const size_t total = num_builds + num_subs + num_finds;
  if (slots_cap_ < total) {
    slots_ = std::make_unique<std::atomic<int32_t>[]>(total);
    slots_cap_ = total;
  }
  for (size_t s = 0; s < total; ++s) {
    slots_[s].store(s < num_builds ? static_cast<int32_t>(s) : -1,
                    std::memory_order_relaxed);
  }
  qtail_.store(static_cast<int64_t>(num_builds), std::memory_order_relaxed);
  qhead_.store(0, std::memory_order_relaxed);
  builds_left_.store(static_cast<int32_t>(build_list_.size()),
                     std::memory_order_relaxed);
  t_build_done_.store(0, std::memory_order_relaxed);
  overlap_total_ = static_cast<int64_t>(total);
  overlap_builds_ = static_cast<int32_t>(num_builds);
  overlap_subs_ = static_cast<int32_t>(num_subs);
  // No release fences needed: this runs in a barrier epilogue, and the
  // barrier's generation publish orders it before every peer's next read.
}

void HarpTreeBuilder::PushTask(int32_t id) {
  const int64_t s = qtail_.fetch_add(1, std::memory_order_relaxed);
  slots_[static_cast<size_t>(s)].store(id, std::memory_order_release);
}

void HarpTreeBuilder::PushFinds(uint32_t child_pos) {
  const int32_t base = overlap_builds_ + overlap_subs_;
  const int32_t nfb = static_cast<int32_t>(fblocks_.size());
  for (int32_t k = 0; k < nfb; ++k) {
    PushTask(base + static_cast<int32_t>(child_pos) * nfb + k);
  }
}

void HarpTreeBuilder::RunOverlapTask(const BuildContext& ctx, int32_t id) {
  const int32_t num_builds = overlap_builds_;
  const int32_t num_subs = overlap_subs_;
  if (id < num_builds) {
    mp_.RunTask(ctx, static_cast<size_t>(id));
    for (int node : mp_.TaskNodes(static_cast<size_t>(id))) {
      const size_t j = static_cast<size_t>(
          build_pos_[static_cast<size_t>(node)]);
      // acq_rel so the LAST decrementer synchronizes with every earlier
      // cube's histogram writes (release sequence on the counter): the
      // finds/subtract it publishes observe the node's complete histogram.
      if (node_remaining_[j].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Quantized mode: the drained accumulator becomes the node's f64
        // histogram HERE, before the subtract/find tasks that read it are
        // published (their slot-ring release stores order the conversion
        // before any consumer's acquire load).
        mp_.DequantizeNode(node);
        PushFinds(build_child_pos_[j]);
        if (sub_of_build_[j] >= 0) {
          PushTask(num_builds + sub_of_build_[j]);
        }
        if (builds_left_.fetch_sub(1, std::memory_order_relaxed) == 1) {
          t_build_done_.store(NowNs(), std::memory_order_relaxed);
        }
      }
    }
  } else if (id < num_builds + num_subs) {
    const SubtractJob& job =
        subtract_list_[static_cast<size_t>(id - num_builds)];
    SubtractHistogram(job.child_h, job.parent_h, job.sibling_h,
                      matrix_.TotalBins());
    PushFinds(job.child_pos);
  } else {
    RunFindTask(static_cast<size_t>(id - num_builds - num_subs));
  }
}

void HarpTreeBuilder::OverlapRun(ThreadPool::FusedRegion& region,
                                 int thread_id) {
  const BuildContext ctx = Context();
  for (;;) {
    const int64_t s = qhead_.fetch_add(1, std::memory_order_relaxed);
    if (s >= overlap_total_) break;
    // Every slot below overlap_total_ is eventually published (each task
    // id is pushed exactly once, and pushes precede the pops that need
    // them — see the drain-counter invariant above), so spinning here
    // cannot deadlock; it is waiting for upstream work, accounted as wait.
    int32_t id = slots_[static_cast<size_t>(s)].load(
        std::memory_order_acquire);
    if (id < 0) {
      const int64_t spin_start = NowNs();
      int spins = 0;
      while ((id = slots_[static_cast<size_t>(s)].load(
                  std::memory_order_acquire)) < 0) {
        region.ThrowIfFailed();
        if ((++spins & 4095) == 0) std::this_thread::yield();
      }
      pool_.ReclassifyBusyAsWait(thread_id, NowNs() - spin_start);
    }
    RunOverlapTask(ctx, id);
    pool_.CountTask(thread_id);
  }
}

void HarpTreeBuilder::FinishStep(RegTree& tree) {
  MergeFound(tree);
  // Parent histograms have served their purpose (subtraction inputs).
  if (!subtract_list_.empty()) {
    for (const Candidate& cand : batch_) hists_.Release(cand.node_id);
  }
  t_find_end_ = NowNs();
}

void HarpTreeBuilder::FusedStep(RegTree& tree) {
  const int64_t step_start = NowNs();
  StageApply(tree);
  partitioner_.PrepareSplitBatch(split_tasks_);

  ThreadPool::FusedRegion region(pool_);
  const BuildContext ctx = Context();
  region.Run([&](int thread_id) {
    partitioner_.ApplySplitBatchInRegion(
        split_tasks_, matrix_, region, thread_id,
        // Epilogue of the partition's last barrier: rows are final, so
        // plan the build/subtract/find work before peers resume.
        [this, &tree] {
          PlanAfterPartition(tree);
          t_apply_end_ = NowNs();
        });

    if (plan_mode_ == ParallelMode::kDP) {
      dp_.BuildInRegion(ctx, build_list_, region, thread_id, &reduce_ns_);
      if (!subtract_list_.empty()) {
        region.ForDynamic(
            thread_id, static_cast<int64_t>(subtract_list_.size()), 1,
            [&](int64_t begin, int64_t end, int) {
              for (int64_t i = begin; i < end; ++i) {
                const SubtractJob& job =
                    subtract_list_[static_cast<size_t>(i)];
                SubtractHistogram(job.child_h, job.parent_h, job.sibling_h,
                                  matrix_.TotalBins());
              }
            });
      }
      region.Barrier(thread_id, [this, &tree] {
        t_build_end_ = NowNs();
        PrepareFind(tree, children_);
      });
      region.ForDynamic(
          thread_id,
          static_cast<int64_t>(children_.size() * fblocks_.size()), 1,
          [&](int64_t begin, int64_t end, int) {
            for (int64_t g = begin; g < end; ++g) {
              RunFindTask(static_cast<size_t>(g));
            }
          });
      region.Barrier(thread_id, [this, &tree] { FinishStep(tree); });
    } else {
      OverlapRun(region, thread_id);
      region.Barrier(thread_id, [this, &tree] {
        t_build_end_ = t_build_done_.load(std::memory_order_relaxed);
        FinishStep(tree);
      });
    }
  });

  apply_ns_ += t_apply_end_ - step_start;
  build_ns_ += t_build_end_ - t_apply_end_;
  find_ns_ += t_find_end_ - t_build_end_;
}

}  // namespace harp
