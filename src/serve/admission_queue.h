// Admission queue: coalesces concurrent single-row Submit() calls into
// Predictor-sized row blocks.
//
// The flat Predictor amortizes its costs (tree-group planning, cache-
// resident node walks, interleaved lanes) over blocks of kRowBlock rows;
// serving traffic arrives one row at a time. The queue bridges the two:
// submitters copy their row into the currently open batch under a spin
// mutex (the critical section is a memcpy plus a few stores, exactly the
// regime the training-side SpinMutex was built for), and a batch is
// sealed — handed to the dispatch side — when it fills or when a flush
// deadline expires, whichever comes first. Full seals happen inline on
// the submitting thread; deadline seals are driven by the server's
// flusher thread through SealExpired(). That is the adaptive flush
// policy: under load batches fill in well under the deadline and latency
// is dominated by service time, while a trickle of traffic still gets
// out within ~deadline instead of waiting for 255 neighbours.
//
// Completion flows backwards through the batch itself: dispatch workers
// write per-row margins into the batch and call MarkDone(); submitters
// hold a ServeTicket (shared ownership of the batch + their row index)
// and either block on Wait() or get their callback fired by the server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "parallel/notify.h"
#include "parallel/spin_mutex.h"

namespace harp {

// One coalesced block of submitted rows moving through the serve
// pipeline as a unit. Rows are stored densely (size * num_features
// floats, row-major) so dispatch can hand the buffer straight to
// Predictor::AccumulateMarginsDense.
class RequestBatch {
 public:
  RequestBatch(uint64_t seq, uint32_t capacity, uint32_t num_features);

  RequestBatch(const RequestBatch&) = delete;
  RequestBatch& operator=(const RequestBatch&) = delete;

  uint64_t seq() const { return seq_; }
  uint32_t capacity() const { return capacity_; }
  uint32_t num_features() const { return num_features_; }
  uint32_t size() const { return size_; }

  const float* row(uint32_t i) const {
    return rows_.data() + static_cast<size_t>(i) * num_features_;
  }
  float* rows() { return rows_.data(); }
  double* margins() { return margins_.data(); }
  double margin(uint32_t i) const { return margins_[i]; }
  int64_t submit_ns(uint32_t i) const { return submit_ns_[i]; }

  // Timeline + provenance, written by the pipeline stages.
  int64_t first_submit_ns = 0;  // admission: first row landed
  int64_t sealed_ns = 0;        // admission: handed to the ready queue
  int64_t dispatch_ns = 0;      // worker: popped for processing
  int64_t done_ns = 0;          // worker: margins complete
  bool deadline_seal = false;   // sealed by flush deadline, not by filling
  uint64_t served_version = 0;  // model snapshot version that served it

  // Completion latch. MarkDone() publishes the margins written before it;
  // Wait()/TryWait() on the other side synchronize with that write.
  void MarkDone();
  void WaitDone();
  bool done() const { return done_.load(std::memory_order_acquire); }

 private:
  friend class AdmissionQueue;

  const uint64_t seq_;
  const uint32_t capacity_;
  const uint32_t num_features_;
  uint32_t size_ = 0;

  std::vector<float> rows_;
  std::vector<double> margins_;
  std::vector<int64_t> submit_ns_;
  // Allocated lazily on the first callback submission (ticket-only
  // traffic never touches it).
  std::vector<std::function<void(double)>> callbacks_;
  bool has_callbacks_ = false;

  std::atomic<bool> done_{false};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

 public:
  bool has_callbacks() const { return has_callbacks_; }
  // Valid only when has_callbacks(); entries may be empty (ticket rows).
  std::vector<std::function<void(double)>>& callbacks() { return callbacks_; }
};

// Handle a submitter keeps for one row: shared ownership of the batch
// plus the row's slot in it. Wait() blocks until the batch is served and
// returns the row's raw margin.
class ServeTicket {
 public:
  ServeTicket() = default;
  ServeTicket(std::shared_ptr<RequestBatch> batch, uint32_t index)
      : batch_(std::move(batch)), index_(index) {}

  bool valid() const { return batch_ != nullptr; }
  bool ready() const { return batch_ != nullptr && batch_->done(); }

  // Blocks until the batch completes; returns this row's margin.
  double Wait() {
    batch_->WaitDone();
    return batch_->margin(index_);
  }

  uint32_t index() const { return index_; }
  const RequestBatch& batch() const { return *batch_; }

 private:
  std::shared_ptr<RequestBatch> batch_;
  uint32_t index_ = 0;
};

// Counters the queue maintains (snapshot-readable while running).
struct AdmissionCounters {
  int64_t submitted = 0;       // rows accepted
  int64_t batches = 0;         // batches sealed
  int64_t full_seals = 0;      // sealed because the block filled
  int64_t deadline_seals = 0;  // sealed by the flush deadline
  int64_t forced_seals = 0;    // sealed by Flush()/shutdown drain
};

class AdmissionQueue {
 public:
  AdmissionQueue(uint32_t block_rows, uint32_t num_features);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  uint32_t block_rows() const { return block_rows_; }
  uint32_t num_features() const { return num_features_; }

  // Copies `row` (num_features() floats) into the open batch, sealing it
  // inline if it fills. `callback`, when non-null, is fired by the server
  // after the batch completes (in global submission order); pass nullptr
  // to consume the result through the returned ticket instead.
  // Must not be called after Stop().
  ServeTicket Submit(const float* row, std::function<void(double)> callback);

  // Seals the open batch if its deadline (first_submit + deadline_ns) has
  // passed at `now_ns`, or unconditionally when `force` is set. Returns
  // the absolute ns deadline of the (possibly new) open batch, or -1 when
  // no batch is open — the flusher sleeps on that. Thread-safe.
  int64_t SealExpired(int64_t now_ns, int64_t deadline_ns, bool force);

  // Dispatch side: blocks for the next sealed batch. Returns false only
  // after Stop() once the ready queue has drained — every sealed batch is
  // always handed to some worker.
  bool WaitPop(std::shared_ptr<RequestBatch>* out);

  // Stops admission (further Submit calls are a programming error) and
  // wakes dispatch waiters so they can drain and exit. Does NOT seal the
  // open batch — callers force a final SealExpired first so no row is
  // dropped.
  void Stop();

  // Signaled when a submit opens a fresh batch (re-arms the flusher) and
  // on Stop().
  AutoResetEvent& flush_event() { return flush_event_; }

  AdmissionCounters GetCounters() const;
  // Contention counters of the admission lock (observability).
  SpinCounters GetSpinCounters() const { return admit_mutex_.GetCounters(); }

 private:
  // Moves a sealed batch to the ready queue and wakes one worker.
  void Enqueue(std::shared_ptr<RequestBatch> batch);

  const uint32_t block_rows_;
  const uint32_t num_features_;

  // Admission side: open batch under a spin lock (short critical
  // sections: row memcpy + bookkeeping).
  mutable SpinMutex admit_mutex_;
  std::shared_ptr<RequestBatch> open_;
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
  AdmissionCounters counters_;

  AutoResetEvent flush_event_;

  // Dispatch side: sealed batches in seal order.
  std::mutex ready_mutex_;
  std::condition_variable ready_cv_;
  std::deque<std::shared_ptr<RequestBatch>> ready_;
  bool stop_dispatch_ = false;
};

}  // namespace harp
