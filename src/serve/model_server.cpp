#include "serve/model_server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/model.h"
#include "parallel/thread_pool.h"
#include "predict/flat_forest.h"

namespace harp {

namespace {

// The flusher parks on the flush event; a submit that opens a batch
// re-arms it, so the idle timeout is only a safety net.
constexpr int64_t kIdleParkNs = 50 * 1000 * 1000;  // 50 ms

}  // namespace

std::string ServeStats::Summary() const {
  std::string out;
  out += StrFormat(
      "serve: %lld rows in %lld batches (fill %.1f/%u-row blocks), "
      "seals full=%lld deadline=%lld forced=%lld\n",
      static_cast<long long>(rows_served),
      static_cast<long long>(batches_served), avg_batch_fill,
      static_cast<unsigned>(Predictor::kRowBlock),
      static_cast<long long>(full_seals),
      static_cast<long long>(deadline_seals),
      static_cast<long long>(forced_seals));
  out += StrFormat(
      "serve: model v%llu, %lld reloads, snapshots retired=%lld "
      "freed=%lld\n",
      static_cast<unsigned long long>(model_version),
      static_cast<long long>(reloads),
      static_cast<long long>(snapshots_retired),
      static_cast<long long>(snapshots_freed));
  out += StrFormat(
      "serve: admission lock %lld acquires, %lld contended, "
      "%.3f ms spinning\n",
      static_cast<long long>(admission_lock.acquires),
      static_cast<long long>(admission_lock.contended),
      NsToMs(admission_lock.wait_ns));
  out += request_ns.Summary("serve: request") + "\n";
  out += queue_ns.Summary("serve: queued ") + "\n";
  out += service_ns.Summary("serve: service");
  return out;
}

ModelServer::ModelServer(const GbdtModel& model, ServeConfig config)
    : config_(config) {
  HARP_CHECK_GE(config_.block_rows, 1u);
  HARP_CHECK_GE(config_.flush_deadline_ns, 0);

  const std::shared_ptr<const FlatForest> flat = model.FlatSnapshot();
  row_width_ = std::max<uint32_t>(
      {1u, model.cuts().num_features(), flat->min_features()});

  const int threads = config_.num_threads > 0
                          ? config_.num_threads
                          : ThreadPool::DefaultThreads();
  pool_ = std::make_unique<ThreadPool>(threads);
  holder_ = std::make_unique<SnapshotHolder>(
      threads, std::make_unique<const ModelSnapshot>(flat, /*version=*/1));
  queue_ = std::make_unique<AdmissionQueue>(config_.block_rows, row_width_);
  worker_stats_ = std::make_unique<WorkerStats[]>(static_cast<size_t>(threads));

  flusher_ = std::thread([this] { FlusherLoop(); });
  // The pool's threads enter one region for the server's whole lifetime;
  // RunOnAllThreads blocks its caller (who participates as thread 0), so
  // a dedicated host thread carries the region.
  region_host_ = std::thread([this] {
    pool_->RunOnAllThreads([this](int thread_id) { WorkerLoop(thread_id); });
  });
}

ModelServer::~ModelServer() { Shutdown(); }

ServeTicket ModelServer::Submit(const float* row, uint32_t num_features) {
  HARP_CHECK_EQ(num_features, row_width_);
  return queue_->Submit(row, nullptr);
}

void ModelServer::SubmitWithCallback(const float* row, uint32_t num_features,
                                     std::function<void(double)> done) {
  HARP_CHECK_EQ(num_features, row_width_);
  HARP_CHECK(done != nullptr);
  queue_->Submit(row, std::move(done));
}

void ModelServer::Reload(const GbdtModel& model) {
  const std::shared_ptr<const FlatForest> flat = model.FlatSnapshot();
  HARP_CHECK_LE(flat->min_features(), row_width_)
      << "reloaded model references features beyond the serving row width";
  std::lock_guard<std::mutex> lock(reload_mutex_);
  holder_->Publish(
      std::make_unique<const ModelSnapshot>(flat, next_version_++));
  reloads_.fetch_add(1, std::memory_order_relaxed);
}

void ModelServer::Flush() {
  queue_->SealExpired(NowNs(), config_.flush_deadline_ns, /*force=*/true);
}

void ModelServer::Shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  stop_.store(true, std::memory_order_release);
  // Seal any straggler rows, then let the workers drain the ready queue
  // and exit the region. Queue::Stop checks nothing was left unsealed.
  queue_->SealExpired(NowNs(), config_.flush_deadline_ns, /*force=*/true);
  queue_->Stop();
  if (flusher_.joinable()) flusher_.join();
  if (region_host_.joinable()) region_host_.join();
  // Workers are gone, so every pin is released: all retired generations
  // are reclaimable now (post-shutdown stats show retired == freed).
  holder_->TryReclaim();
}

void ModelServer::FlusherLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int64_t next_deadline =
        queue_->SealExpired(NowNs(), config_.flush_deadline_ns,
                            /*force=*/false);
    if (next_deadline < 0) {
      // No open batch: park until a submit opens one (event re-arms us).
      queue_->flush_event().WaitFor(kIdleParkNs);
      continue;
    }
    const int64_t now = NowNs();
    if (next_deadline > now) {
      // Sleep to the deadline; an earlier full-seal + new batch also
      // wakes us via the event and we just recompute.
      queue_->flush_event().WaitFor(next_deadline - now);
    }
  }
}

void ModelServer::WorkerLoop(int thread_id) {
  std::shared_ptr<RequestBatch> batch;
  while (queue_->WaitPop(&batch)) {
    ProcessBatch(thread_id, std::move(batch));
    batch.reset();
  }
}

void ModelServer::ProcessBatch(int thread_id,
                               std::shared_ptr<RequestBatch> batch) {
  {
    const SnapshotHolder::ReadGuard guard = holder_->Acquire(thread_id);
    const FlatForest& forest = guard->forest();
    batch->served_version = guard->version();
    const uint32_t rows = batch->size();
    double* margins = batch->margins();
    std::fill_n(margins, rows, forest.base_margin());
    guard->predictor().AccumulateMarginsDense(
        batch->rows(), rows, batch->num_features(), margins,
        /*tree_begin=*/0, /*tree_end=*/forest.num_trees());
  }  // release the snapshot pin before waking waiters
  batch->done_ns = NowNs();

  // Account BEFORE signalling completion: a client that has watched its
  // last ticket resolve must find those rows in Stats() already.
  WorkerStats& stats = worker_stats_[static_cast<size_t>(thread_id)];
  {
    std::lock_guard<std::mutex> lock(stats.mutex);
    ++stats.batches;
    stats.rows += batch->size();
    stats.service_ns.Record(batch->done_ns - batch->dispatch_ns);
    for (uint32_t i = 0; i < batch->size(); ++i) {
      stats.request_ns.Record(batch->done_ns - batch->submit_ns(i));
      stats.queue_ns.Record(batch->dispatch_ns - batch->submit_ns(i));
    }
  }

  batch->MarkDone();
  RetireBatch(std::move(batch));
}

void ModelServer::RetireBatch(std::shared_ptr<RequestBatch> batch) {
  // Single-drainer sequence gate: whoever arrives while nobody is
  // draining takes over and fires callbacks for every consecutive ready
  // seq, strictly in order. Other workers deposit and leave — they never
  // fire callbacks concurrently, which is what makes the order global.
  {
    std::lock_guard<std::mutex> lock(retire_mutex_);
    pending_retire_.emplace(batch->seq(), std::move(batch));
    if (retiring_) return;
    retiring_ = true;
  }
  for (;;) {
    std::shared_ptr<RequestBatch> ready;
    {
      std::lock_guard<std::mutex> lock(retire_mutex_);
      auto it = pending_retire_.find(next_retire_seq_);
      if (it == pending_retire_.end()) {
        retiring_ = false;
        return;
      }
      ready = std::move(it->second);
      pending_retire_.erase(it);
      ++next_retire_seq_;
    }
    if (ready->has_callbacks()) {
      auto& callbacks = ready->callbacks();
      for (uint32_t i = 0; i < ready->size(); ++i) {
        if (callbacks[i]) callbacks[i](ready->margin(i));
      }
    }
  }
}

ServeStats ModelServer::Stats() const {
  ServeStats out;
  const AdmissionCounters admission = queue_->GetCounters();
  out.rows_submitted = admission.submitted;
  out.full_seals = admission.full_seals;
  out.deadline_seals = admission.deadline_seals;
  out.forced_seals = admission.forced_seals;
  out.reloads = reloads_.load(std::memory_order_relaxed);
  out.snapshots_retired = holder_->retired_total();
  out.snapshots_freed = holder_->freed_total();
  out.model_version = holder_->CurrentVersion();
  out.admission_lock = queue_->GetSpinCounters();
  for (int t = 0; t < pool_->num_threads(); ++t) {
    const WorkerStats& stats = worker_stats_[static_cast<size_t>(t)];
    std::lock_guard<std::mutex> lock(stats.mutex);
    out.rows_served += stats.rows;
    out.batches_served += stats.batches;
    out.request_ns.Merge(stats.request_ns);
    out.queue_ns.Merge(stats.queue_ns);
    out.service_ns.Merge(stats.service_ns);
  }
  out.avg_batch_fill =
      out.batches_served > 0
          ? static_cast<double>(out.rows_served) /
                static_cast<double>(out.batches_served)
          : 0.0;
  return out;
}

}  // namespace harp
