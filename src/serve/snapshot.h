// Lock-free model snapshots with epoch-based reclamation.
//
// A serving process must answer two asks that pull in opposite
// directions: readers (batch dispatch workers) want to reach the current
// model with zero synchronization on every batch, and the control plane
// wants to hot-swap the model under load without ever letting an
// in-flight batch observe a half-replaced ("torn") ensemble. The classic
// answer — and the one this file implements — is an immutable snapshot
// behind an atomic pointer plus epoch-based reclamation for the retire
// side:
//
//   * ModelSnapshot is immutable: a FlatForest (shared with the model's
//     own cache, so a reload does not re-flatten) plus a ready-made
//     Predictor and a monotonically increasing version.
//   * SnapshotHolder::Acquire is wait-free for readers: announce the
//     global epoch in the reader's own padded slot, confirm the epoch did
//     not move, load the current pointer. No locks, no reference count
//     ping-pong on a shared cache line.
//   * Publish swaps the pointer, then retires the old snapshot tagged
//     with the pre-bump epoch E. A retired snapshot is freed only once
//     every announced reader epoch is > E — any reader that could still
//     hold the old pointer pinned an epoch <= E, so waiting for the pins
//     to advance past E is exactly "no reader can still see it".
//
// Readers therefore never block a swap and a swap never invalidates a
// running batch: both generations stay alive until the last pin on the
// old one is released. Writers (Publish) are serialized by a mutex — the
// control plane is not a hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "predict/flat_forest.h"
#include "predict/predictor.h"

namespace harp {

// One immutable served generation: the flat ensemble, its predictor
// (tree-group plan precomputed), and a version for observability.
class ModelSnapshot {
 public:
  ModelSnapshot(std::shared_ptr<const FlatForest> forest, uint64_t version)
      : forest_(std::move(forest)),
        predictor_(*forest_),
        version_(version) {}

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  const FlatForest& forest() const { return *forest_; }
  const Predictor& predictor() const { return predictor_; }
  uint64_t version() const { return version_; }

 private:
  std::shared_ptr<const FlatForest> forest_;
  Predictor predictor_;
  uint64_t version_;
};

class SnapshotHolder {
 public:
  // `max_readers` fixes the pin-slot table; every reader must present a
  // distinct slot in [0, max_readers) (dispatch workers use their pool
  // thread id). Takes ownership of the initial snapshot.
  SnapshotHolder(int max_readers,
                 std::unique_ptr<const ModelSnapshot> initial);
  ~SnapshotHolder();

  SnapshotHolder(const SnapshotHolder&) = delete;
  SnapshotHolder& operator=(const SnapshotHolder&) = delete;

  // RAII read pin. The snapshot stays valid (never freed, never mutated)
  // until the guard is destroyed, across any number of concurrent
  // Publish calls.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : holder_(std::exchange(other.holder_, nullptr)),
          slot_(other.slot_),
          snapshot_(other.snapshot_) {}
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;
    ~ReadGuard() {
      if (holder_ != nullptr) holder_->Release(slot_);
    }

    const ModelSnapshot* operator->() const { return snapshot_; }
    const ModelSnapshot& operator*() const { return *snapshot_; }

   private:
    friend class SnapshotHolder;
    ReadGuard(SnapshotHolder* holder, int slot,
              const ModelSnapshot* snapshot)
        : holder_(holder), slot_(slot), snapshot_(snapshot) {}

    SnapshotHolder* holder_;
    int slot_;
    const ModelSnapshot* snapshot_;
  };

  // Wait-free reader entry; `slot` must not be pinned already.
  ReadGuard Acquire(int slot);

  // Installs `snapshot` as current, retires the previous generation, and
  // frees any retired generation no reader can still hold.
  void Publish(std::unique_ptr<const ModelSnapshot> snapshot);

  // Frees quiescent retired snapshots; returns how many remain retired
  // (still possibly pinned). Publish already reclaims; this exists for
  // shutdown paths and tests.
  size_t TryReclaim();

  // Version of the currently published snapshot. Tracked in its own
  // atomic so unpinned observers (stats paths) never dereference a
  // pointer a concurrent Publish may already have reclaimed.
  uint64_t CurrentVersion() const {
    return published_version_.load(std::memory_order_acquire);
  }

  int max_readers() const { return static_cast<int>(slots_.size()); }

  // Lifetime counters (reporting): snapshots retired / freed so far.
  int64_t retired_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  int64_t freed_total() const {
    return freed_total_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineBytes) PinSlot {
    // 0 = idle; otherwise the global epoch announced by this reader.
    std::atomic<uint64_t> epoch{0};
  };

  void Release(int slot) {
    slots_[static_cast<size_t>(slot)].epoch.store(
        0, std::memory_order_release);
  }

  // Frees retired snapshots with retire epoch < every announced pin.
  // Caller holds writer_mutex_.
  void ReclaimLocked();

  std::atomic<const ModelSnapshot*> current_;
  std::atomic<uint64_t> global_epoch_{1};
  std::atomic<uint64_t> published_version_{0};
  std::vector<PinSlot> slots_;

  // Writer side (Publish / reclamation), serialized.
  std::mutex writer_mutex_;
  std::vector<std::pair<uint64_t, const ModelSnapshot*>> retired_;
  std::atomic<int64_t> retired_total_{0};
  std::atomic<int64_t> freed_total_{0};
};

}  // namespace harp
