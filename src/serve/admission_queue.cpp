#include "serve/admission_queue.h"

#include <cstring>

#include "common/logging.h"
#include "common/timer.h"

namespace harp {

RequestBatch::RequestBatch(uint64_t seq, uint32_t capacity,
                           uint32_t num_features)
    : seq_(seq), capacity_(capacity), num_features_(num_features) {
  rows_.resize(static_cast<size_t>(capacity) * num_features);
  margins_.resize(capacity);
  submit_ns_.resize(capacity);
}

void RequestBatch::MarkDone() {
  if (done_ns == 0) done_ns = NowNs();  // server stamps it pre-accounting
  {
    // The lock pairs with the one in WaitDone: a waiter that misses the
    // atomic fast path cannot park between its predicate check and the
    // notify.
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_.store(true, std::memory_order_release);
  }
  done_cv_.notify_all();
}

void RequestBatch::WaitDone() {
  if (done_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock,
                [&] { return done_.load(std::memory_order_acquire); });
}

AdmissionQueue::AdmissionQueue(uint32_t block_rows, uint32_t num_features)
    : block_rows_(block_rows), num_features_(num_features) {
  HARP_CHECK_GE(block_rows_, 1u);
  HARP_CHECK_GE(num_features_, 1u);
}

ServeTicket AdmissionQueue::Submit(const float* row,
                                   std::function<void(double)> callback) {
  const int64_t now = NowNs();
  std::shared_ptr<RequestBatch> sealed;
  ServeTicket ticket;
  bool opened = false;
  {
    std::lock_guard<SpinMutex> lock(admit_mutex_);
    HARP_CHECK(!stopped_) << "Submit after Stop";
    if (open_ == nullptr) {
      open_ = std::make_shared<RequestBatch>(next_seq_++, block_rows_,
                                             num_features_);
      open_->first_submit_ns = now;
      opened = true;
    }
    RequestBatch& batch = *open_;
    const uint32_t slot = batch.size_++;
    std::memcpy(batch.rows_.data() +
                    static_cast<size_t>(slot) * num_features_,
                row, static_cast<size_t>(num_features_) * sizeof(float));
    batch.submit_ns_[slot] = now;
    if (callback) {
      if (batch.callbacks_.empty()) batch.callbacks_.resize(block_rows_);
      batch.callbacks_[slot] = std::move(callback);
      batch.has_callbacks_ = true;
    }
    ticket = ServeTicket(open_, slot);
    ++counters_.submitted;
    if (batch.size_ == batch.capacity_) {
      sealed = std::move(open_);
      ++counters_.full_seals;
      ++counters_.batches;
    }
  }
  // Queue handoff happens outside the spin lock: Enqueue takes a real
  // mutex and may wake a sleeping worker, neither belongs in a spin
  // critical section.
  if (sealed != nullptr) {
    Enqueue(std::move(sealed));
  } else if (opened) {
    // First row of a fresh batch: re-arm the flusher so its sleep covers
    // this batch's deadline.
    flush_event_.Set();
  }
  return ticket;
}

int64_t AdmissionQueue::SealExpired(int64_t now_ns, int64_t deadline_ns,
                                    bool force) {
  std::shared_ptr<RequestBatch> sealed;
  int64_t next_deadline = -1;
  {
    std::lock_guard<SpinMutex> lock(admit_mutex_);
    if (open_ != nullptr && open_->size_ > 0) {
      const int64_t expires = open_->first_submit_ns + deadline_ns;
      if (force || now_ns >= expires) {
        sealed = std::move(open_);
        sealed->deadline_seal = !force;
        ++(force ? counters_.forced_seals : counters_.deadline_seals);
        ++counters_.batches;
      } else {
        next_deadline = expires;
      }
    }
  }
  if (sealed != nullptr) Enqueue(std::move(sealed));
  return next_deadline;
}

void AdmissionQueue::Enqueue(std::shared_ptr<RequestBatch> batch) {
  batch->sealed_ns = NowNs();
  {
    std::lock_guard<std::mutex> lock(ready_mutex_);
    ready_.push_back(std::move(batch));
  }
  ready_cv_.notify_one();
}

bool AdmissionQueue::WaitPop(std::shared_ptr<RequestBatch>* out) {
  std::unique_lock<std::mutex> lock(ready_mutex_);
  ready_cv_.wait(lock, [&] { return !ready_.empty() || stop_dispatch_; });
  if (ready_.empty()) return false;  // stopped and drained
  *out = std::move(ready_.front());
  ready_.pop_front();
  lock.unlock();
  (*out)->dispatch_ns = NowNs();
  return true;
}

void AdmissionQueue::Stop() {
  {
    std::lock_guard<SpinMutex> lock(admit_mutex_);
    stopped_ = true;
    HARP_CHECK(open_ == nullptr || open_->size_ == 0)
        << "Stop with unsealed rows; force SealExpired first";
  }
  {
    std::lock_guard<std::mutex> lock(ready_mutex_);
    stop_dispatch_ = true;
  }
  ready_cv_.notify_all();
  flush_event_.Set();
}

AdmissionCounters AdmissionQueue::GetCounters() const {
  std::lock_guard<SpinMutex> lock(admit_mutex_);
  return counters_;
}

}  // namespace harp
