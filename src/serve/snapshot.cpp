#include "serve/snapshot.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace harp {

SnapshotHolder::SnapshotHolder(int max_readers,
                               std::unique_ptr<const ModelSnapshot> initial)
    : slots_(static_cast<size_t>(std::max(1, max_readers))) {
  HARP_CHECK(initial != nullptr);
  published_version_.store(initial->version(), std::memory_order_release);
  current_.store(initial.release(), std::memory_order_release);
}

SnapshotHolder::~SnapshotHolder() {
  // By contract no reader is active at destruction; everything retired
  // plus the current generation can go.
  for (auto& [epoch, snapshot] : retired_) {
    (void)epoch;
    delete snapshot;
    freed_total_.fetch_add(1, std::memory_order_relaxed);
  }
  retired_.clear();
  delete current_.load(std::memory_order_acquire);
}

SnapshotHolder::ReadGuard SnapshotHolder::Acquire(int slot) {
  HARP_CHECK_GE(slot, 0);
  HARP_CHECK_LT(slot, max_readers());
  PinSlot& pin = slots_[static_cast<size_t>(slot)];
  // Announce-and-confirm: after the seq_cst store of epoch e, either the
  // confirm load still sees e — in which case any Publish that retires a
  // snapshot at an epoch >= e scans the slots after its own bump and
  // observes this pin — or the epoch moved and we re-announce. Either
  // way, the pointer loaded below is from a generation the pinned epoch
  // protects.
  for (;;) {
    const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    pin.epoch.store(e, std::memory_order_seq_cst);
    if (global_epoch_.load(std::memory_order_seq_cst) == e) break;
  }
  const ModelSnapshot* snapshot = current_.load(std::memory_order_seq_cst);
  return ReadGuard(this, slot, snapshot);
}

void SnapshotHolder::Publish(std::unique_ptr<const ModelSnapshot> snapshot) {
  HARP_CHECK(snapshot != nullptr);
  std::lock_guard<std::mutex> lock(writer_mutex_);
  published_version_.store(snapshot->version(), std::memory_order_release);
  const ModelSnapshot* old =
      current_.exchange(snapshot.release(), std::memory_order_seq_cst);
  // Retire the old generation at the pre-bump epoch E: every reader that
  // could have loaded `old` announced an epoch <= E (anyone announcing
  // after the bump re-reads current_ after our exchange in the seq_cst
  // order and gets the new pointer).
  const uint64_t retire_epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.emplace_back(retire_epoch, old);
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  ReclaimLocked();
}

void SnapshotHolder::ReclaimLocked() {
  uint64_t min_pinned = std::numeric_limits<uint64_t>::max();
  for (const PinSlot& pin : slots_) {
    const uint64_t e = pin.epoch.load(std::memory_order_seq_cst);
    if (e != 0) min_pinned = std::min(min_pinned, e);
  }
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    if (it->first < min_pinned) {
      delete it->second;
      freed_total_.fetch_add(1, std::memory_order_relaxed);
    } else {
      *keep++ = *it;
    }
  }
  retired_.erase(keep, retired_.end());
}

size_t SnapshotHolder::TryReclaim() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  ReclaimLocked();
  return retired_.size();
}

}  // namespace harp
